// Command benchdiff gates benchmark regressions: it parses `go test -bench`
// output, compares it against a committed JSON baseline, and exits non-zero
// when any baseline benchmark got more than a threshold slower (ns/op) or
// more allocation-heavy (allocs/op). Faster-is-fine: improvements are
// reported but never fail the gate, so the baseline only needs refreshing
// when the code actually gets better.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./internal/obsreport/ \
//	    | benchdiff -baseline BENCH_obsreport.json
//
// Flags:
//
//	-baseline file   committed baseline JSON (required unless -ratio)
//	-in file         bench output to read (- for stdin, the default)
//	-threshold f     allowed fractional regression, default 0.30 (30%)
//	-update          rewrite the baseline from the measured run and exit
//	-ratio NEW/REF   gate NEW's ns/op against REF's from the same run
//
// With -count > 1 runs, the best (minimum) ns/op and allocs/op per
// benchmark are compared, which damps scheduler noise on shared CI runners.
// A small absolute slack on allocs/op keeps near-zero baselines from
// failing on a single incidental allocation.
//
// -ratio compares two benchmarks measured in the same run instead of a
// committed baseline: it fails when NEW's best ns/op exceeds REF's by more
// than -threshold. Because both sides ran on the same machine in the same
// process, machine-to-machine noise cancels, so tight budgets (a few
// percent) are gateable — it backs the "fault injection disabled costs
// <2%" guarantee (BenchmarkFaultOff vs BenchmarkRunNilScope).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// allocSlack is the absolute allocs/op increase tolerated regardless of the
// fractional threshold: a 0-alloc baseline must not fail on noise like a
// one-time sync.Pool fill.
const allocSlack = 8

// baselineFile mirrors the committed BENCH_*.json schema.
type baselineFile struct {
	Package    string      `json:"package"`
	Recorded   string      `json:"recorded"`
	Go         string      `json:"go"`
	CPU        string      `json:"cpu"`
	Note       string      `json:"note"`
	Benchmarks []benchLine `json:"benchmarks"`
}

type benchLine struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// result holds one benchmark's best measurements from the run under test.
type result struct {
	ns, mbps, bytes, allocs float64
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		baseline  = fs.String("baseline", "", "baseline JSON file to compare against")
		in        = fs.String("in", "-", "go test -bench output to read (- for stdin)")
		threshold = fs.Float64("threshold", 0.30, "allowed fractional regression")
		update    = fs.Bool("update", false, "rewrite the baseline from this run instead of comparing")
		ratioSpec = fs.String("ratio", "", "gate NEW against REF from the same run (NEW/REF); no baseline file involved")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" && *ratioSpec == "" {
		return fmt.Errorf("-baseline is required (or use -ratio)")
	}
	if *baseline != "" && *ratioSpec != "" {
		return fmt.Errorf("-baseline and -ratio are mutually exclusive")
	}
	if *threshold < 0 {
		return fmt.Errorf("-threshold must be >= 0, got %g", *threshold)
	}

	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	results, cpu, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	if *ratioSpec != "" {
		return compareRatio(stdout, results, *ratioSpec, *threshold)
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		return err
	}
	if *update {
		return writeBaseline(*baseline, base, results, cpu)
	}
	return compare(stdout, base, results, *threshold)
}

// parseBench extracts per-benchmark measurements (best-of when a benchmark
// appears more than once) and the host CPU from go test -bench output.
func parseBench(r io.Reader) (map[string]result, string, error) {
	results := make(map[string]result)
	var cpu string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "cpu:") {
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed text
		}
		var res result
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.ns, ok = v, true
			case "MB/s":
				res.mbps = v
			case "B/op":
				res.bytes = v
			case "allocs/op":
				res.allocs = v
			}
		}
		if !ok {
			continue
		}
		if prev, seen := results[name]; seen {
			if prev.ns <= res.ns {
				res.ns = prev.ns
			}
			if prev.allocs <= res.allocs {
				res.allocs = prev.allocs
			}
			if prev.mbps > res.mbps {
				res.mbps = prev.mbps
			}
			if prev.bytes < res.bytes {
				res.bytes = prev.bytes
			}
		}
		results[name] = res
	}
	return results, cpu, sc.Err()
}

// trimProcSuffix drops go test's -GOMAXPROCS suffix: BenchmarkFoo-4 → BenchmarkFoo.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func readBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baselineFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: baseline has no benchmarks", path)
	}
	return &b, nil
}

// compare prints a per-benchmark delta table and fails on any regression
// past the threshold. Benchmarks present in the run but absent from the
// baseline are listed as new (refresh with -update to start gating them);
// baseline benchmarks missing from the run are hard failures, so a deleted
// or broken benchmark cannot silently drop out of the gate.
func compare(w io.Writer, base *baselineFile, results map[string]result, threshold float64) error {
	var failures []string
	for _, b := range base.Benchmarks {
		r, ok := results[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in this run", b.Name))
			continue
		}
		nsDelta := ratio(r.ns, b.NsPerOp)
		allocDelta := ratio(r.allocs, b.AllocsPerOp)
		fmt.Fprintf(w, "%-32s ns/op %12.0f -> %12.0f (%+6.1f%%)   allocs/op %8.0f -> %8.0f (%+6.1f%%)\n",
			b.Name, b.NsPerOp, r.ns, 100*nsDelta, b.AllocsPerOp, r.allocs, 100*allocDelta)
		if nsDelta > threshold {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (%.0f -> %.0f, limit %.0f%%)",
				b.Name, 100*nsDelta, b.NsPerOp, r.ns, 100*threshold))
		}
		if allocDelta > threshold && r.allocs-b.AllocsPerOp > allocSlack {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed %.1f%% (%.0f -> %.0f, limit %.0f%%)",
				b.Name, 100*allocDelta, b.AllocsPerOp, r.allocs, 100*threshold))
		}
	}
	known := make(map[string]bool, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		known[b.Name] = true
	}
	var fresh []string
	for name := range results {
		if !known[name] {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(w, "%-32s new benchmark (not gated; add with -update)\n", name)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "ok: %d benchmark(s) within %.0f%% of baseline\n", len(base.Benchmarks), 100*threshold)
	return nil
}

// compareRatio gates benchmark NEW against benchmark REF measured in the
// same run: it fails when NEW's best ns/op exceeds REF's by more than
// threshold. Same-run comparison cancels machine noise, which is what makes
// a single-digit-percent budget enforceable in CI.
func compareRatio(w io.Writer, results map[string]result, spec string, threshold float64) error {
	newName, refName, ok := strings.Cut(spec, "/")
	if !ok || newName == "" || refName == "" {
		return fmt.Errorf("-ratio wants NEW/REF benchmark names, got %q", spec)
	}
	nr, ok := results[newName]
	if !ok {
		return fmt.Errorf("%s: not measured in this run", newName)
	}
	rr, ok := results[refName]
	if !ok {
		return fmt.Errorf("%s: not measured in this run", refName)
	}
	if rr.ns == 0 {
		return fmt.Errorf("%s: zero ns/op reference", refName)
	}
	over := ratio(nr.ns, rr.ns)
	fmt.Fprintf(w, "%s ns/op %.0f vs %s ns/op %.0f: %+.2f%% (budget %+.1f%%)\n",
		newName, nr.ns, refName, rr.ns, 100*over, 100*threshold)
	if over > threshold {
		return fmt.Errorf("%s is %.2f%% slower than %s, budget %.1f%%",
			newName, 100*over, refName, 100*threshold)
	}
	fmt.Fprintf(w, "ok: %s within %.1f%% of %s\n", newName, 100*threshold, refName)
	return nil
}

// ratio returns (got-want)/want, treating a zero baseline as regressed only
// when the measurement is nonzero.
func ratio(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return (got - want) / want
}

// writeBaseline rewrites the baseline file from this run's measurements,
// preserving the package/note metadata and keeping existing benchmark order
// (new benchmarks append alphabetically).
func writeBaseline(path string, base *baselineFile, results map[string]result, cpu string) error {
	out := *base
	out.Recorded = time.Now().UTC().Format("2006-01-02")
	out.Go = runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH
	if cpu != "" {
		out.CPU = cpu
	}
	out.Benchmarks = nil
	seen := make(map[string]bool)
	for _, b := range base.Benchmarks {
		r, ok := results[b.Name]
		if !ok {
			continue // benchmark deleted: drop it from the refreshed baseline
		}
		seen[b.Name] = true
		out.Benchmarks = append(out.Benchmarks, toLine(b.Name, r))
	}
	var fresh []string
	for name := range results {
		if !seen[name] {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		out.Benchmarks = append(out.Benchmarks, toLine(name, results[name]))
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func toLine(name string, r result) benchLine {
	return benchLine{Name: name, NsPerOp: r.ns, MBPerS: r.mbps, BytesPerOp: r.bytes, AllocsPerOp: r.allocs}
}
