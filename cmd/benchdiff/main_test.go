package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: mobilestorage/internal/obsreport
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDecodeNDJSON-4   	     380	   3100000 ns/op	 225.00 MB/s	 2871207 B/op	      33 allocs/op
BenchmarkReports-4        	    2716	    431284 ns/op	  132272 B/op	      69 allocs/op
BenchmarkQuantile-4       	 5308966	     225.7 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	mobilestorage/internal/obsreport	5.080s
`

func writeBaselineFile(t *testing.T, benches []benchLine) string {
	t.Helper()
	b := baselineFile{
		Package:    "mobilestorage/internal/obsreport",
		Recorded:   "2026-01-01",
		Go:         "go1.24.0 linux/amd64",
		CPU:        "test",
		Note:       "test baseline",
		Benchmarks: benches,
	}
	data, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, baseline, input string, extra ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	args := append([]string{"-baseline", baseline}, extra...)
	err := run(args, strings.NewReader(input), &out)
	return out.String(), err
}

func TestParseBench(t *testing.T) {
	results, cpu, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	d, ok := results["BenchmarkDecodeNDJSON"]
	if !ok {
		t.Fatalf("DecodeNDJSON missing from %v", results)
	}
	if d.ns != 3100000 || d.mbps != 225 || d.bytes != 2871207 || d.allocs != 33 {
		t.Errorf("DecodeNDJSON parsed as %+v", d)
	}
	if q := results["BenchmarkQuantile"]; q.ns != 225.7 || q.allocs != 0 {
		t.Errorf("Quantile parsed as %+v", q)
	}
	if len(results) != 3 {
		t.Errorf("parsed %d benchmarks, want 3", len(results))
	}
}

// Repeated benchmarks (go test -count) keep the best measurement per metric.
func TestParseBenchBestOf(t *testing.T) {
	input := "BenchmarkX-4 100 2000 ns/op 50 allocs/op\n" +
		"BenchmarkX-4 100 1500 ns/op 60 allocs/op\n"
	results, _, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if x := results["BenchmarkX"]; x.ns != 1500 || x.allocs != 50 {
		t.Errorf("best-of = %+v, want ns 1500 / allocs 50", x)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkDecodeNDJSON-4":  "BenchmarkDecodeNDJSON",
		"BenchmarkDecodeNDJSON-16": "BenchmarkDecodeNDJSON",
		"BenchmarkDecodeNDJSON":    "BenchmarkDecodeNDJSON",
		"BenchmarkP99-latency-8":   "BenchmarkP99-latency",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestComparePass(t *testing.T) {
	baseline := writeBaselineFile(t, []benchLine{
		{Name: "BenchmarkDecodeNDJSON", NsPerOp: 3200000, MBPerS: 220, BytesPerOp: 2871207, AllocsPerOp: 33},
		{Name: "BenchmarkReports", NsPerOp: 431284, BytesPerOp: 132272, AllocsPerOp: 69},
		{Name: "BenchmarkQuantile", NsPerOp: 225.7},
	})
	out, err := runDiff(t, baseline, sampleBench)
	if err != nil {
		t.Fatalf("gate failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok: 3 benchmark(s)") {
		t.Errorf("output: %s", out)
	}
}

func TestCompareFailsOnNsRegression(t *testing.T) {
	baseline := writeBaselineFile(t, []benchLine{
		// Measured 3100000 ns/op is a 55% regression over this.
		{Name: "BenchmarkDecodeNDJSON", NsPerOp: 2000000, AllocsPerOp: 33},
	})
	out, err := runDiff(t, baseline, sampleBench)
	if err == nil || !strings.Contains(err.Error(), "ns/op regressed") {
		t.Errorf("err = %v\n%s", err, out)
	}
	// A looser threshold lets the same run pass.
	if out, err := runDiff(t, baseline, sampleBench, "-threshold", "0.6"); err != nil {
		t.Errorf("60%% threshold should pass: %v\n%s", err, out)
	}
}

func TestCompareFailsOnAllocRegression(t *testing.T) {
	baseline := writeBaselineFile(t, []benchLine{
		// Measured 33 allocs/op: over 30% and past the absolute slack.
		{Name: "BenchmarkDecodeNDJSON", NsPerOp: 3200000, AllocsPerOp: 20},
	})
	if out, err := runDiff(t, baseline, sampleBench); err == nil || !strings.Contains(err.Error(), "allocs/op regressed") {
		t.Errorf("err = %v\n%s", err, out)
	}
	// Within the absolute slack: 2 -> 8 allocs/op is a 300% ratio, but the
	// +6 absolute increase stays under the slack, so tiny baselines never
	// fail on an incidental allocation.
	slack := writeBaselineFile(t, []benchLine{
		{Name: "BenchmarkTiny", NsPerOp: 100, AllocsPerOp: 2},
	})
	input := "BenchmarkTiny-4 100 100 ns/op 8 allocs/op\n"
	if out, err := runDiff(t, slack, input); err != nil {
		t.Errorf("within-slack run failed: %v\n%s", err, out)
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	baseline := writeBaselineFile(t, []benchLine{
		{Name: "BenchmarkDecodeNDJSON", NsPerOp: 3200000, AllocsPerOp: 33},
		{Name: "BenchmarkGone", NsPerOp: 100, AllocsPerOp: 1},
	})
	if _, err := runDiff(t, baseline, sampleBench); err == nil || !strings.Contains(err.Error(), "BenchmarkGone") {
		t.Errorf("err = %v, want missing-benchmark failure", err)
	}
}

func TestCompareReportsNewBenchmarks(t *testing.T) {
	baseline := writeBaselineFile(t, []benchLine{
		{Name: "BenchmarkDecodeNDJSON", NsPerOp: 3200000, AllocsPerOp: 33},
	})
	out, err := runDiff(t, baseline, sampleBench)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "BenchmarkReports") || !strings.Contains(out, "new benchmark") {
		t.Errorf("new benchmarks not reported:\n%s", out)
	}
}

func TestUpdateRewritesBaseline(t *testing.T) {
	baseline := writeBaselineFile(t, []benchLine{
		{Name: "BenchmarkQuantile", NsPerOp: 999, AllocsPerOp: 5},
		{Name: "BenchmarkGone", NsPerOp: 100},
	})
	if _, err := runDiff(t, baseline, sampleBench, "-update"); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if got.Package != "mobilestorage/internal/obsreport" || got.Note != "test baseline" {
		t.Errorf("metadata not preserved: %+v", got)
	}
	if got.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu not taken from run: %q", got.CPU)
	}
	byName := make(map[string]benchLine)
	for _, b := range got.Benchmarks {
		byName[b.Name] = b
	}
	if byName["BenchmarkQuantile"].NsPerOp != 225.7 {
		t.Errorf("Quantile not refreshed: %+v", byName["BenchmarkQuantile"])
	}
	if _, ok := byName["BenchmarkGone"]; ok {
		t.Error("deleted benchmark kept in refreshed baseline")
	}
	if _, ok := byName["BenchmarkReports"]; !ok {
		t.Error("new benchmark not added on -update")
	}
	// Existing order first (Quantile), then new ones alphabetically.
	if got.Benchmarks[0].Name != "BenchmarkQuantile" {
		t.Errorf("order: %v", got.Benchmarks)
	}
	// The refreshed file must itself pass the gate against the same run.
	if out, err := runDiff(t, baseline, sampleBench); err != nil {
		t.Errorf("refreshed baseline fails its own run: %v\n%s", err, out)
	}
}

// -ratio gates one benchmark against another from the same run; best-of
// across -count repetitions applies to both sides.
func TestRatioMode(t *testing.T) {
	input := `cpu: test
BenchmarkRunNilScope-4    200    1000000 ns/op    100 B/op    5 allocs/op
BenchmarkRunNilScope-4    200    1050000 ns/op    100 B/op    5 allocs/op
BenchmarkFaultOff-4       200    1015000 ns/op    100 B/op    5 allocs/op
BenchmarkFaultOff-4       200    1090000 ns/op    100 B/op    5 allocs/op
PASS
`
	runRatio := func(spec string, threshold string) (string, error) {
		var out bytes.Buffer
		err := run([]string{"-ratio", spec, "-threshold", threshold}, strings.NewReader(input), &out)
		return out.String(), err
	}

	// Best-of: 1015000 vs 1000000 = +1.5%, inside a 2% budget.
	out, err := runRatio("BenchmarkFaultOff/BenchmarkRunNilScope", "0.02")
	if err != nil {
		t.Fatalf("within budget failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok:") {
		t.Errorf("output: %q", out)
	}

	// The same measurements fail a 1% budget.
	if _, err := runRatio("BenchmarkFaultOff/BenchmarkRunNilScope", "0.01"); err == nil {
		t.Error("+1.5% passed a 1% budget")
	}
	// Faster-is-fine in either direction of the spec.
	if _, err := runRatio("BenchmarkRunNilScope/BenchmarkFaultOff", "0.0"); err != nil {
		t.Errorf("faster NEW failed: %v", err)
	}

	if _, err := runRatio("BenchmarkFaultOff/BenchmarkMissing", "0.02"); err == nil {
		t.Error("missing reference accepted")
	}
	if _, err := runRatio("BenchmarkMissing/BenchmarkRunNilScope", "0.02"); err == nil {
		t.Error("missing subject accepted")
	}
	if _, err := runRatio("NoSlashHere", "0.02"); err == nil {
		t.Error("malformed spec accepted")
	}

	// -ratio and -baseline are mutually exclusive.
	var out2 bytes.Buffer
	if err := run([]string{"-ratio", "A/B", "-baseline", "x.json"}, strings.NewReader(input), &out2); err == nil {
		t.Error("-ratio with -baseline accepted")
	}
}

func TestUsageErrors(t *testing.T) {
	if _, err := runDiff(t, "", sampleBench); err == nil {
		t.Error("missing -baseline accepted")
	}
	baseline := writeBaselineFile(t, []benchLine{{Name: "BenchmarkX", NsPerOp: 1}})
	if _, err := runDiff(t, baseline, "no benchmarks here\n"); err == nil {
		t.Error("input without benchmark lines accepted")
	}
	if _, err := runDiff(t, baseline, sampleBench, "-threshold", "-1"); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := runDiff(t, filepath.Join(t.TempDir(), "missing.json"), sampleBench); err == nil {
		t.Error("missing baseline file accepted")
	}
}
