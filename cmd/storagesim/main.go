// Command storagesim runs one trace-driven storage simulation and prints
// the paper-style result: energy in joules plus read/write response-time
// statistics.
//
// Examples:
//
//	storagesim -trace mac -device cu140
//	storagesim -trace dos -device intel -utilization 0.95
//	storagesim -trace hp -device sdp5 -async -dram 0
//	storagesim -tracefile mytrace.txt -device kh -sram 32768
//	storagesim -trace synth -array mirror:2xflashcard -member-faults members.json
//	storagesim -trace index-btree -mix read-heavy -device intel
package main

import (
	"bytes"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"mobilestorage/internal/array"
	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/fleet"
	"mobilestorage/internal/index"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "storagesim:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		traceName = flag.String("trace", "mac", "built-in workload: mac, dos, hp, synth, index-btree, index-lsm")
		traceFile = flag.String("tracefile", "", "trace file to replay (overrides -trace)")
		seed      = flag.Int64("seed", 1, "workload generation seed")
		devName   = flag.String("device", "cu140", "device: cu140, kh, sdp10, sdp5, intel, intel2+")
		source    = flag.String("source", "", "parameter source: measured or datasheet (default: best available)")
		dramKB    = flag.Int64("dram", -1, "DRAM cache size in KB (default: 2048, 0 for hp)")
		sramKB    = flag.Int64("sram", -1, "SRAM write buffer in KB (default: 32 for disks, 0 for flash)")
		spinDown  = flag.Float64("spindown", 5, "disk spin-down threshold in seconds (0 = never)")
		util      = flag.Float64("utilization", 0.8, "flash storage utilization")
		capMB     = flag.Int64("capacity", 0, "explicit flash capacity in MB (overrides utilization)")
		storedMB  = flag.Int64("stored", 0, "live data preallocated in flash, MB (default: trace footprint)")
		async     = flag.Bool("async", false, "asynchronous flash-disk erasure (SDP5A)")
		policy    = flag.String("cleaning", "greedy", "flash-card cleaning policy: greedy, cost-benefit, fifo")
		onDemand  = flag.Bool("ondemand", false, "clean flash card only on demand")
		writeBack = flag.Bool("writeback", false, "use a write-back DRAM cache (paper default is write-through)")
		verbose   = flag.Bool("v", false, "print component energy breakdown and device counters")
		opLog     = flag.String("oplog", "", "write a per-operation CSV log to this file")
		events    = flag.String("events", "", "write structured simulator events (NDJSON) to this file")
		metrics   = flag.Bool("metrics", false, "print the observability counter registry after the run")
		sample    = flag.Float64("sample", 0, "snapshot metrics every N simulated seconds (0 = off)")
		faults    = flag.String("faults", "", "fault-injection plan (JSON file, see docs/FAULTS.md)")
		faultSeed = flag.Int64("fault-seed", 1, "fault-injection RNG seed")
		arraySpec = flag.String("array", "", "replace the device with an array, e.g. mirror:2xflashcard or stripe:3xflashcard (see docs/ARRAYS.md; -device is ignored)")
		memFaults = flag.String("member-faults", "", "per-member fault plans for -array (JSON file keyed m0, m1, ... or *)")
		mixName   = flag.String("mix", "", "op mix for index-* traces: default or read-heavy")
		timeline  = flag.String("timeline", "", "write the sampled metric timeline as CSV to this file (requires -sample)")
		serve     = flag.String("serve", "", "serve /metrics, /healthz, /plot/<report>, and /debug/pprof on this address during the run")
		service   = flag.Bool("service", false, "run as a long-lived fleet simulation service on the -serve address (POST /jobs, SSE /events/<id>; SIGINT/SIGTERM drains and exits 130)")
		drainS    = flag.Float64("drain", 30, "service mode: seconds to wait for in-flight jobs on shutdown before cancelling them")
	)
	flag.Parse()

	if *service {
		if *serve == "" {
			return errors.New("-service requires -serve ADDR")
		}
		return runService(*serve, *drainS)
	}

	t, indexStats, err := buildTrace(*traceFile, *traceName, *seed, *mixName)
	if err != nil {
		return err
	}

	cfg := core.Config{
		Trace:            t,
		WriteBack:        *writeBack,
		SpinDown:         units.FromSeconds(*spinDown),
		AsyncErase:       *async,
		CleaningPolicy:   *policy,
		OnDemandCleaning: *onDemand,
		FlashUtilization: *util,
		FlashCapacity:    units.Bytes(*capMB) * units.MB,
		StoredData:       units.Bytes(*storedMB) * units.MB,
	}
	if *arraySpec != "" {
		spec, err := array.ParseSpec(*arraySpec)
		if err != nil {
			return err
		}
		cfg.Array = spec
		// Array members use fixed measured parameters: the Intel Series 2
		// card for "flashcard" members and the CU140 for "disk" members.
		cfg.FlashCardParams = device.IntelSeries2Measured()
		cfg.Disk = device.CU140Measured()
	} else if err := fleet.SelectDevice(&cfg, *devName, *source); err != nil {
		return err
	}
	if *memFaults != "" {
		if *arraySpec == "" {
			return errors.New("-member-faults requires -array")
		}
		data, err := os.ReadFile(*memFaults)
		if err != nil {
			return err
		}
		set, err := fault.ParsePlanSet(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *memFaults, err)
		}
		cfg.MemberFaults = set
		cfg.FaultSeed = *faultSeed
	}
	if *faults != "" {
		data, err := os.ReadFile(*faults)
		if err != nil {
			return err
		}
		plan, err := fault.ParsePlan(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *faults, err)
		}
		cfg.Faults = plan
		cfg.FaultSeed = *faultSeed
	}

	// DRAM default: 2 MB, except the hp trace which was captured below the
	// buffer cache (§4.1).
	switch {
	case *dramKB >= 0:
		cfg.DRAMBytes = units.Bytes(*dramKB) * units.KB
	case t.Name == "hp":
		cfg.DRAMBytes = 0
	default:
		cfg.DRAMBytes = 2 * units.MB
	}
	// SRAM default: 32 KB in front of disks (the paper's deferred spin-up
	// configuration), none in front of flash or arrays (Kind is ignored for
	// arrays and would otherwise zero-value to MagneticDisk).
	switch {
	case *sramKB >= 0:
		cfg.SRAMBytes = units.Bytes(*sramKB) * units.KB
	case cfg.Array == nil && cfg.Kind == core.MagneticDisk:
		cfg.SRAMBytes = 32 * units.KB
	}

	if *timeline != "" && *sample <= 0 {
		return errors.New("-timeline requires -sample")
	}
	cfg.SampleEvery = units.FromSeconds(*sample)

	// Output files are closed through deferred closers so a failure partway
	// through the run still flushes what was written and reports every
	// close error, not just the first exit path's. The same closer list
	// backs the SIGINT handler, so an interrupted run flushes its -events
	// and -oplog sinks instead of truncating them; the mutex and the done
	// flag keep the two exit paths from double-closing.
	var (
		closerMu sync.Mutex
		closers  []func() error
		closed   bool
	)
	addCloser := func(f func() error) {
		closerMu.Lock()
		closers = append(closers, f)
		closerMu.Unlock()
	}
	runClosers := func() error {
		closerMu.Lock()
		defer closerMu.Unlock()
		if closed {
			return nil
		}
		closed = true
		var err error
		for i := len(closers) - 1; i >= 0; i-- {
			err = errors.Join(err, closers[i]())
		}
		return err
	}
	defer func() { err = errors.Join(err, runClosers()) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "storagesim: interrupted; flushing output sinks")
		if cerr := runClosers(); cerr != nil {
			fmt.Fprintln(os.Stderr, "storagesim:", cerr)
		}
		os.Exit(130)
	}()

	if *opLog != "" {
		f, err := os.Create(*opLog)
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		addCloser(func() error {
			w.Flush()
			return errors.Join(w.Error(), f.Close())
		})
		if err := w.Write([]string{"index", "arrival_us", "response_us", "op", "cache_hit", "size_bytes"}); err != nil {
			return err
		}
		cfg.Observer = func(o core.OpObservation) {
			w.Write([]string{
				strconv.Itoa(o.Index),
				strconv.FormatInt(int64(o.Arrival), 10),
				strconv.FormatInt(int64(o.Response), 10),
				o.Op.String(),
				strconv.FormatBool(o.CacheHit),
				strconv.FormatInt(int64(o.Size), 10),
			})
		}
	}

	// The sampler and the /metrics endpoint both need a live registry.
	var reg *obs.Registry
	if *metrics || *sample > 0 || *serve != "" {
		reg = obs.NewRegistry()
	}
	var tr obs.Tracer
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		sink := obs.NewNDJSONSink(f)
		addCloser(func() error {
			return errors.Join(sink.Flush(), f.Close())
		})
		tr = sink
	}
	var live *liveFigures
	if *serve != "" {
		live = newLiveFigures()
		tr = obs.Tee(tr, live)
	}
	cfg.Scope = obs.NewScope(reg, tr)
	if indexStats != nil {
		// Summarize the engine-level write amplification into the event
		// stream so obsreport's cleaning report can show the index.writeamp
		// column next to the cleaner's own amplification.
		cfg.Scope.Emit(obs.Event{
			Kind: obs.EvIndexWriteAmp,
			Dev:  indexStats.Engine,
			Addr: int64(indexStats.LogicalBytes),
			Size: int64(indexStats.WrittenBytes),
		})
	}

	if *serve != "" {
		shutdown, addr, err := startServer(*serve, reg, live, nil)
		if err != nil {
			return err
		}
		addCloser(shutdown)
		fmt.Fprintf(os.Stderr, "storagesim: serving metrics on http://%s/metrics and live figures on http://%s/plot/<report>\n", addr, addr)
	}

	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			return err
		}
		addCloser(f.Close)
		if err := obsreport.WriteTimelineCSV(f, res.Timeline); err != nil {
			return err
		}
	}
	printResult(res, *verbose)
	if reg != nil {
		fmt.Print(reg.String())
	}
	return nil
}

// buildTrace resolves the -tracefile/-trace flags to a replayable trace.
// The index-btree and index-lsm names generate a database-index workload —
// a B+tree or LSM engine run converted to a block trace through its pager —
// and also return the engine's stats so the run can emit the index-level
// write amplification into the event stream.
func buildTrace(traceFile, traceName string, seed int64, mixName string) (*trace.Trace, *index.Stats, error) {
	if traceFile != "" {
		t, err := readTrace(traceFile)
		return t, nil, err
	}
	if strings.HasPrefix(traceName, "index-") {
		kind := index.EngineKind(strings.TrimPrefix(traceName, "index-"))
		cfg, err := index.BenchTraceConfigMix(kind, seed, mixName)
		if err != nil {
			return nil, nil, err
		}
		t, st, err := index.GenerateTrace(cfg)
		if err != nil {
			return nil, nil, err
		}
		return t, &st, nil
	}
	if mixName != "" && mixName != "default" {
		return nil, nil, fmt.Errorf("-mix %s only applies to index-* traces", mixName)
	}
	t, err := workload.GenerateByName(traceName, seed)
	return t, nil, err
}

// readTrace loads a trace file in either format, sniffing the binary magic.
func readTrace(path string) (*trace.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("MSTB1")) {
		return trace.DecodeBinary(bytes.NewReader(data))
	}
	return trace.Decode(bytes.NewReader(data))
}

func printResult(res *core.Result, verbose bool) {
	fmt.Printf("trace    %s\n", res.TraceName)
	fmt.Printf("device   %s\n", res.Device)
	fmt.Printf("energy   %.0f J\n", res.EnergyJ)
	fmt.Printf("read     mean %.2f ms, max %.1f ms, σ %.1f ms (%d ops)\n",
		res.Read.Mean(), res.Read.Max(), res.Read.StdDev(), res.Read.N())
	fmt.Printf("write    mean %.2f ms, max %.1f ms, σ %.1f ms (%d ops)\n",
		res.Write.Mean(), res.Write.Max(), res.Write.StdDev(), res.Write.N())
	if f := res.Faults; f != nil {
		fmt.Printf("faults   %d injected (%d read / %d write / %d erase), %d retries, %d exhausted, %.1f ms backoff\n",
			f.ReadFaults+f.WriteFaults+f.EraseFaults, f.ReadFaults, f.WriteFaults, f.EraseFaults,
			f.Retries, f.Exhausted, float64(f.BackoffTime)/1000)
		if f.Remaps+f.SparesExhausted > 0 {
			fmt.Printf("badblock %d remapped to spares, %d beyond spare capacity\n", f.Remaps, f.SparesExhausted)
		}
		if f.Reclaims > 0 {
			fmt.Printf("reclaim  %d retired units pressed back into service under capacity pressure\n", f.Reclaims)
		}
		if f.PowerFailures > 0 {
			fmt.Printf("powerfail %d failures, %d buffered blocks replayed, %d acknowledged writes lost\n",
				f.PowerFailures, f.ReplayedBlocks, f.LostWrites)
		}
		if f.DeviceDeaths > 0 {
			fmt.Printf("death    %d device deaths, %d mirror rebuilds (%.1f ms rebuilding)\n",
				f.DeviceDeaths, f.Rebuilds, float64(f.RebuildTime)/1000)
		}
		if f.LatentSeeded+f.LatentFaults > 0 {
			fmt.Printf("latent   %d blocks poisoned at write, %d surfaced and scrubbed on read\n",
				f.LatentSeeded, f.LatentFaults)
		}
		if f.BacklogCarried > 0 {
			fmt.Printf("backlog  %d cleaning jobs carried across power failures, %.1f ms drained at recovery\n",
				f.BacklogCarried, float64(f.BacklogTime)/1000)
		}
		for _, v := range f.Violations {
			fmt.Printf("VIOLATION %s\n", v)
		}
	}
	if !verbose {
		return
	}
	fmt.Printf("read  p50/p95/p99  ≤ %.2f / %.1f / %.1f ms\n",
		res.ReadP(0.50), res.ReadP(0.95), res.ReadP(0.99))
	fmt.Printf("write p50/p95/p99  ≤ %.2f / %.1f / %.1f ms\n",
		res.WriteP(0.50), res.WriteP(0.95), res.WriteP(0.99))
	keys := make([]string, 0, len(res.EnergyByComponent))
	for k := range res.EnergyByComponent {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("energy.%-8s %.1f J\n", k, res.EnergyByComponent[k])
	}
	if res.CacheHits+res.CacheMisses > 0 {
		fmt.Printf("cache    %.1f%% hit (%d/%d)\n",
			res.HitRate()*100, res.CacheHits, res.CacheHits+res.CacheMisses)
	}
	if res.SpinUps > 0 {
		fmt.Printf("spinups  %d\n", res.SpinUps)
	}
	if res.Erases > 0 {
		fmt.Printf("erases   %d (max/unit %d, mean/unit %.2f)\n",
			res.Erases, res.MaxEraseCount, res.MeanEraseCount)
		fmt.Printf("cleaner  copied %d blocks for %d host blocks (amplification %.2f), %d stalled writes\n",
			res.CopiedBlocks, res.HostBlocks, res.WriteAmplification(), res.WriteStalls)
	}
}
