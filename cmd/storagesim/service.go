package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobilestorage/internal/fleet"
	"mobilestorage/internal/obs"
)

// runService runs storagesim as a long-lived fleet simulation service: the
// job API, SSE streams, per-job figures, and the metrics/pprof surface on
// addr until SIGINT or SIGTERM. Shutdown is graceful — new jobs are
// rejected with 503, in-flight runs drain for up to drainS seconds (then
// their jobs are cancelled; started runs still complete and merge), the
// HTTP server flushes, and the process exits 130 like an interrupted
// single-run invocation.
func runService(addr string, drainS float64) error {
	reg := obs.NewRegistry()
	svc := fleet.NewService(reg)
	shutdown, bound, err := startServer(addr, reg, nil, svc)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "storagesim: fleet service on http://%s/ (POST /jobs, GET /jobs/<id>, /events/<id>, /metrics)\n", bound)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	signal.Stop(sigc)

	drain := time.Duration(drainS * float64(time.Second))
	fmt.Fprintf(os.Stderr, "storagesim: %v; draining in-flight jobs (deadline %s)\n", sig, drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "storagesim: drain deadline exceeded; cancelled remaining runs")
	}
	if err := shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "storagesim:", err)
	}
	os.Exit(130)
	return nil // unreachable
}
