package main

import (
	"bytes"
	"sync"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
)

// liveFigures is a Tracer that keeps every report builder aggregating live,
// so the -serve endpoints can render any /plot/<report> figure while the
// simulation is still going. Emit runs on the simulation path and SVG on
// HTTP handler goroutines, so both serialize on the mutex.
type liveFigures struct {
	mu sync.Mutex
	f  *obsreport.FigureSet
}

func newLiveFigures() *liveFigures {
	return &liveFigures{f: obsreport.NewFigureSet()}
}

// Emit implements obs.Tracer.
func (p *liveFigures) Emit(e obs.Event) {
	p.mu.Lock()
	p.f.Observe(e)
	p.mu.Unlock()
}

// SVG renders a snapshot of one report kind from the events seen so far.
// Unknown kinds return obsreport.UnknownKindError.
func (p *liveFigures) SVG(kind string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, err := p.f.Chart(kind)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
