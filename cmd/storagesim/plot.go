package main

import (
	"bytes"
	"sync"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
)

// livePlot is a Tracer that keeps a live energy aggregation so the -serve
// endpoint can render the run's cumulative-energy figure while the
// simulation is still going. Emit runs on the simulation path and SVG on
// HTTP handler goroutines, so both serialize on the mutex; the energy
// builder only sees sample.energy events, so the lock is off the hot path
// for everything else.
type livePlot struct {
	mu sync.Mutex
	b  *obsreport.EnergyBuilder
}

func newLivePlot() *livePlot {
	return &livePlot{b: obsreport.NewEnergyBuilder()}
}

// Emit implements obs.Tracer.
func (p *livePlot) Emit(e obs.Event) {
	if e.Kind != obs.EvEnergySample {
		return
	}
	p.mu.Lock()
	p.b.Observe(e)
	p.mu.Unlock()
}

// SVG renders a snapshot of the energy chart from the samples seen so far.
func (p *livePlot) SVG() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf bytes.Buffer
	if err := obsreport.EnergyChart(p.b.Finish()).Render(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
