package main

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"mobilestorage/internal/obs"
)

// promNamespace prefixes every exposed metric name.
const promNamespace = "storagesim"

// newMux builds the telemetry handler: Prometheus text exposition of the
// live registry at /metrics, a liveness probe at /healthz, a live SVG of
// the energy figure at /plot, and the standard pprof endpoints. A dedicated
// mux (not http.DefaultServeMux) keeps the surface explicit. plot may be
// nil, in which case /plot explains itself instead of rendering.
func newMux(reg *obs.Registry, plot *livePlot) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WritePrometheus(w, reg, promNamespace); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/plot", func(w http.ResponseWriter, r *http.Request) {
		if plot == nil {
			http.Error(w, "no live plot attached to this server", http.StatusNotFound)
			return
		}
		svg, err := plot.SVG()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		w.Write(svg)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startServer listens on addr and serves the telemetry mux in the
// background. It returns a shutdown func (drains in-flight scrapes, then
// closes) and the bound address — useful when addr ends in :0.
func startServer(addr string, reg *obs.Registry, plot *livePlot) (shutdown func() error, bound string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{
		Handler: newMux(reg, plot),
		// A stalled client must not pin a connection forever: bound the
		// header read, and the whole response write. The write timeout
		// exceeds the default 30 s pprof profile window so profiling still
		// works.
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      90 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	shutdown = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
	return shutdown, ln.Addr().String(), nil
}
