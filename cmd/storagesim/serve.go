package main

import (
	"context"
	"fmt"
	"html/template"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"mobilestorage/internal/fleet"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
)

// promNamespace prefixes every exposed metric name.
const promNamespace = "storagesim"

// newMux builds the service handler: Prometheus text exposition of the live
// registry at /metrics, a liveness probe at /healthz, live SVG figures at
// /plot/{kind} (bare /plot aliases the energy figure), the fleet job API
// (when svc is non-nil), an HTML dashboard at /, and the standard pprof
// endpoints. A dedicated mux (not http.DefaultServeMux) keeps the surface
// explicit. live may be nil (service mode has no single foreground run), in
// which case /plot explains itself instead of rendering.
func newMux(reg *obs.Registry, live *liveFigures, svc *fleet.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WritePrometheus(w, reg, promNamespace); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	servePlot := func(w http.ResponseWriter, r *http.Request, kind string) {
		if live == nil {
			http.Error(w, "no live run attached to this server (figures for submitted jobs are at /jobs/<id>/plot/<report>)", http.StatusNotFound)
			return
		}
		svg, err := live.SVG(kind)
		if err != nil {
			// The only SVG error for a live set is an unknown kind; answer
			// 404 with the valid names so the endpoint documents itself.
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		w.Write(svg)
	}
	// Bare /plot (and a trailing slash) keeps the pre-fleet contract: it is
	// the energy figure, the paper's headline curve.
	mux.HandleFunc("GET /plot", func(w http.ResponseWriter, r *http.Request) { servePlot(w, r, "energy") })
	mux.HandleFunc("GET /plot/{$}", func(w http.ResponseWriter, r *http.Request) { servePlot(w, r, "energy") })
	mux.HandleFunc("GET /plot/{kind}", func(w http.ResponseWriter, r *http.Request) {
		servePlot(w, r, r.PathValue("kind"))
	})
	if svc != nil {
		svc.RegisterRoutes(mux)
	}
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		serveIndex(w, live, svc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// indexTmpl is the dashboard: every live-run figure inline, plus the job
// table with live SSE-driven progress. It is server-rendered per request;
// the only client script subscribes unfinished jobs to their /events/<id>
// streams and rewrites the row (and refreshes the figures) as frames land.
var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>storagesim</title>
<style>
body{font-family:sans-serif;margin:1.5em;max-width:75em}
img{max-width:100%;border:1px solid #ccc;margin:.25em 0}
table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:.3em .6em;text-align:left}
code{background:#f4f4f4;padding:0 .2em}
</style></head><body>
<h1>storagesim</h1>
{{if .HaveLive}}
<h2>Live run</h2>
{{range .Kinds}}<h3>{{.}}</h3><img src="/plot/{{.}}" alt="{{.}} figure">
{{end}}
{{end}}
{{if .HaveFleet}}
<h2>Jobs</h2>
<p>Submit with <code>POST /jobs</code>; each job streams progress at <code>/events/&lt;id&gt;</code>.</p>
{{if .Jobs}}
<table><tr><th>job</th><th>name</th><th>state</th><th>progress</th><th>failed</th><th>energy (J)</th><th>figures</th></tr>
{{range .Jobs}}<tr data-job="{{.ID}}" data-finished="{{.Finished}}">
<td><a href="/jobs/{{.ID}}">{{.ID}}</a></td><td>{{.Name}}</td>
<td class="state">{{.State}}</td>
<td class="progress">{{.Done}}/{{.Total}}</td>
<td class="failed">{{.Failed}}</td>
<td class="energy">{{printf "%.0f" .Report.Energy.TotalJ}}</td>
<td>{{$id := .ID}}{{range $.Kinds}}<a href="/jobs/{{$id}}/plot/{{.}}">{{.}}</a> {{end}}</td>
</tr>{{end}}</table>
<h3>Latest job figures</h3>
<div id="jobfigs">
{{range .Kinds}}<h4>{{.}}</h4><img src="/jobs/{{$.Latest}}/plot/{{.}}" alt="{{.}} figure">
{{end}}</div>
{{else}}<p>No jobs yet.</p>{{end}}
<script>
document.querySelectorAll("tr[data-job]").forEach(function (row) {
  if (row.dataset.finished === "true") return;
  var es = new EventSource("/events/" + row.dataset.job);
  var apply = function (d) {
    row.querySelector(".state").textContent = d.state || d.State || "";
    var done = d.done !== undefined ? d.done : d.Done;
    var total = d.total !== undefined ? d.total : d.Total;
    row.querySelector(".progress").textContent = done + "/" + total;
    row.querySelector(".failed").textContent = d.failed !== undefined ? d.failed : d.Failed;
    var e = d.energy_j !== undefined ? d.energy_j : (d.report ? d.report.energy.total_j : 0);
    row.querySelector(".energy").textContent = Math.round(e);
  };
  es.addEventListener("progress", function (ev) { apply(JSON.parse(ev.data)); });
  es.addEventListener("done", function (ev) {
    apply(JSON.parse(ev.data));
    es.close();
    document.querySelectorAll("#jobfigs img").forEach(function (img) {
      img.src = img.src.split("?")[0] + "?t=" + Date.now();
    });
  });
});
</script>
{{end}}
</body></html>
`))

type indexData struct {
	HaveLive  bool
	HaveFleet bool
	Kinds     []string
	Jobs      []*fleet.Status
	Latest    string
}

func serveIndex(w http.ResponseWriter, live *liveFigures, svc *fleet.Service) {
	d := indexData{
		HaveLive:  live != nil,
		HaveFleet: svc != nil,
		Kinds:     obsreport.FigureKinds(),
	}
	if svc != nil {
		for _, j := range svc.JobsSnapshot() {
			d.Jobs = append(d.Jobs, j.Status())
		}
		if n := len(d.Jobs); n > 0 {
			d.Latest = d.Jobs[n-1].ID
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTmpl.Execute(w, d); err != nil {
		// Headers are gone; all we can do is log to the response tail.
		fmt.Fprintf(w, "\n<!-- template error: %v -->\n", err)
	}
}

// startServer listens on addr and serves the mux in the background. It
// returns a shutdown func (drains in-flight requests, then closes) and the
// bound address — useful when addr ends in :0. live and svc may each be nil.
func startServer(addr string, reg *obs.Registry, live *liveFigures, svc *fleet.Service) (shutdown func() error, bound string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{
		Handler: newMux(reg, live, svc),
		// A stalled client must not pin a connection forever: bound the
		// header read, and the whole response write. The write timeout
		// exceeds the default 30 s pprof profile window so profiling still
		// works; the SSE handler is the one audited exception — it clears
		// its connection's deadline via ResponseController.
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      90 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	shutdown = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
	return shutdown, ln.Addr().String(), nil
}
