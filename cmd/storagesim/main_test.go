package main

import (
	"os"
	"path/filepath"
	"testing"

	"mobilestorage/internal/core"
	"mobilestorage/internal/fleet"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

func TestSelectDevice(t *testing.T) {
	cases := []struct {
		name, source string
		kind         core.StorageKind
		wantErr      bool
	}{
		{"cu140", "", core.MagneticDisk, false},
		{"cu140", "measured", core.MagneticDisk, false},
		{"cu140", "datasheet", core.MagneticDisk, false},
		{"kh", "datasheet", core.MagneticDisk, false},
		{"kh", "measured", 0, true}, // no measured kh numbers exist
		{"sdp10", "", core.FlashDisk, false},
		{"sdp5", "datasheet", core.FlashDisk, false},
		{"sdp5", "measured", 0, true},
		{"intel", "", core.FlashCard, false},
		{"intel2+", "datasheet", core.FlashCard, false},
		{"intel2+", "measured", 0, true},
		{"floppy", "", 0, true},
		{"cu140", "vibes", 0, true},
	}
	for _, c := range cases {
		var cfg core.Config
		err := fleet.SelectDevice(&cfg, c.name, c.source)
		if c.wantErr {
			if err == nil {
				t.Errorf("selectDevice(%q, %q) accepted", c.name, c.source)
			}
			continue
		}
		if err != nil {
			t.Errorf("selectDevice(%q, %q): %v", c.name, c.source, err)
			continue
		}
		if cfg.Kind != c.kind {
			t.Errorf("selectDevice(%q): kind %v, want %v", c.name, cfg.Kind, c.kind)
		}
	}
}

func TestReadTraceBothFormats(t *testing.T) {
	tr, err := workload.Synth(workload.SynthConfig{Seed: 1, Ops: 100})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	textPath := filepath.Join(dir, "t.trace")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	binPath := filepath.Join(dir, "t.btrace")
	f, err = os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, path := range []string{textPath, binPath} {
		got, err := readTrace(path)
		if err != nil {
			t.Fatalf("readTrace(%s): %v", path, err)
		}
		if len(got.Records) != len(tr.Records) {
			t.Errorf("%s: %d records, want %d", path, len(got.Records), len(tr.Records))
		}
		if got.BlockSize != 512*units.B {
			t.Errorf("%s: block size %v", path, got.BlockSize)
		}
	}

	if _, err := readTrace(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestBuildTraceIndexWorkloads covers the index-btree/index-lsm trace
// names: both engines generate a valid trace plus stats, unknown engines
// fail, and the classic names still route to the workload generator.
func TestBuildTraceIndexWorkloads(t *testing.T) {
	for _, name := range []string{"index-btree", "index-lsm"} {
		tr, st, err := buildTrace("", name, 1, "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid trace: %v", name, err)
		}
		if st == nil || st.WriteAmplification() <= 1 {
			t.Fatalf("%s: stats %+v", name, st)
		}
		if tr.Name != name {
			t.Errorf("%s: trace named %q", name, tr.Name)
		}
	}
	if _, _, err := buildTrace("", "index-btrie", 1, ""); err == nil {
		t.Error("unknown index engine accepted")
	}
	if tr, st, err := buildTrace("", "synth", 1, ""); err != nil || st != nil || tr == nil {
		t.Errorf("synth: tr=%v st=%v err=%v", tr, st, err)
	}

	// The -mix flag routes through MixByName: read-heavy reshapes the index
	// trace, unknown mixes fail, and non-index traces reject a mix.
	tr, _, err := buildTrace("", "index-btree", 1, "read-heavy")
	if err != nil || tr == nil {
		t.Fatalf("read-heavy mix: tr=%v err=%v", tr, err)
	}
	if _, _, err := buildTrace("", "index-btree", 1, "write-mostly"); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, _, err := buildTrace("", "synth", 1, "read-heavy"); err == nil {
		t.Error("mix on a non-index trace accepted")
	}
}
