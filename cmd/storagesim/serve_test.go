package main

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("cache.hits").Add(42)
	reg.Gauge("energy.total_j").Set(3.5)

	shutdown, addr, err := startServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + addr

	code, body := getBody(t, base+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz: %d %q", code, body)
	}

	code, body = getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE storagesim_cache_hits_total counter",
		"storagesim_cache_hits_total 42",
		"storagesim_energy_total_j 3.5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Live registry: a scrape after more activity sees the new value.
	reg.Counter("cache.hits").Add(8)
	_, body = getBody(t, base+"/metrics")
	if !strings.Contains(body, "storagesim_cache_hits_total 50") {
		t.Error("second scrape did not observe the counter increment")
	}

	code, body = getBody(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}
	code, _ = getBody(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}

	code, _ = getBody(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path: %d, want 404", code)
	}
}

// Every exposed line must match the Prometheus text format grammar.
func TestServeMetricsGrammar(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a.b").Add(1)
	reg.Gauge("g").Set(-0.25)
	h := reg.Histogram("lat", obs.LogBuckets(1, 100))
	h.Observe(3)
	h.Observe(5000)

	shutdown, addr, err := startServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	_, body := getBody(t, "http://"+addr+"/metrics")
	lineRE := regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_][a-zA-Z0-9_]* .*|[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN))$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !lineRE.MatchString(line) {
			t.Errorf("bad exposition line: %q", line)
		}
	}
}
