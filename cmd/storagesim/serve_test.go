package main

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"mobilestorage/internal/fleet"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("cache.hits").Add(42)
	reg.Gauge("energy.total_j").Set(3.5)

	shutdown, addr, err := startServer("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + addr

	code, body := getBody(t, base+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz: %d %q", code, body)
	}

	code, body = getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE storagesim_cache_hits_total counter",
		"storagesim_cache_hits_total 42",
		"storagesim_energy_total_j 3.5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Live registry: a scrape after more activity sees the new value.
	reg.Counter("cache.hits").Add(8)
	_, body = getBody(t, base+"/metrics")
	if !strings.Contains(body, "storagesim_cache_hits_total 50") {
		t.Error("second scrape did not observe the counter increment")
	}

	code, body = getBody(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}
	code, _ = getBody(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}

	code, _ = getBody(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path: %d, want 404", code)
	}

	// No live figures attached: /plot exists but reports 404, not a panic.
	code, _ = getBody(t, base+"/plot")
	if code != http.StatusNotFound {
		t.Errorf("/plot without a live plot: %d, want 404", code)
	}
}

func TestServePlot(t *testing.T) {
	plot := newLiveFigures()
	// Feed the tracer the way a run does: energy samples interleaved with
	// events the plot must ignore.
	plot.Emit(obs.Event{T: 1_000_000, Kind: obs.EvCacheHit, Size: 512})
	plot.Emit(obs.Event{T: 1_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 2_000_000})
	plot.Emit(obs.Event{T: 2_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 3_500_000})
	plot.Emit(obs.Event{T: 2_000_000, Kind: obs.EvEnergySample, Dev: "storage", Size: 900_000})

	shutdown, addr, err := startServer("127.0.0.1:0", obs.NewRegistry(), plot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addr + "/plot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/plot: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("/plot content-type %q, want image/svg+xml", ct)
	}
	doc := string(body)
	if !strings.HasPrefix(doc, "<svg") || !strings.Contains(doc, "</svg>") {
		t.Errorf("/plot body is not an SVG document:\n%.300s", doc)
	}
	for _, want := range []string{"total", "storage", "Cumulative energy"} {
		if !strings.Contains(doc, want) {
			t.Errorf("/plot missing %q", want)
		}
	}

	// The plot is live: more samples show up on the next fetch.
	plot.Emit(obs.Event{T: 3_000_000, Kind: obs.EvEnergySample, Dev: "dram", Size: 400_000})
	_, doc = getBody(t, "http://"+addr+"/plot")
	if !strings.Contains(doc, "dram") {
		t.Error("second fetch did not observe the new component")
	}
}

// Every exposed line must match the Prometheus text format grammar.
func TestServeMetricsGrammar(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a.b").Add(1)
	reg.Gauge("g").Set(-0.25)
	h := reg.Histogram("lat", obs.LogBuckets(1, 100))
	h.Observe(3)
	h.Observe(5000)

	shutdown, addr, err := startServer("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	_, body := getBody(t, "http://"+addr+"/metrics")
	lineRE := regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_][a-zA-Z0-9_]* .*|[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN))$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !lineRE.MatchString(line) {
			t.Errorf("bad exposition line: %q", line)
		}
	}
}

// Every figure kind is live at /plot/<kind>; bare /plot is the energy
// figure; unknown kinds 404 with a body that names the valid ones.
func TestServePlotKinds(t *testing.T) {
	live := newLiveFigures()
	live.Emit(obs.Event{T: 1_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 2_000_000})
	live.Emit(obs.Event{T: 1_500_000, Kind: obs.EvDiskSpinDown})
	live.Emit(obs.Event{T: 2_000_000, Kind: obs.EvDiskSpinUp, Dur: 500_000})
	live.Emit(obs.Event{T: 2_500_000, Kind: obs.EvCardErase, Addr: 0, Size: 1})
	live.Emit(obs.Event{T: 3_000_000, Kind: obs.EvCardClean, Dur: 1500})

	shutdown, addr, err := startServer("127.0.0.1:0", obs.NewRegistry(), live, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	base := "http://" + addr

	for _, kind := range obsreport.FigureKinds() {
		code, body := getBody(t, base+"/plot/"+kind)
		if code != http.StatusOK {
			t.Errorf("/plot/%s: %d (%s)", kind, code, body)
			continue
		}
		if !strings.Contains(body, "<svg") {
			t.Errorf("/plot/%s is not an SVG", kind)
		}
	}

	// Bare /plot and /plot/ serve the same figure as /plot/energy.
	_, canonical := getBody(t, base+"/plot/energy")
	for _, path := range []string{"/plot", "/plot/"} {
		code, body := getBody(t, base+path)
		if code != http.StatusOK || body != canonical {
			t.Errorf("%s does not alias /plot/energy (code %d)", path, code)
		}
	}

	code, body := getBody(t, base+"/plot/pie")
	if code != http.StatusNotFound {
		t.Errorf("/plot/pie: %d, want 404", code)
	}
	for _, kind := range obsreport.FigureKinds() {
		if !strings.Contains(body, kind) {
			t.Errorf("/plot/pie 404 body does not list %q: %s", kind, body)
		}
	}
}

// The index page embeds every live figure and, in service mode, the job
// table wired to the SSE streams.
func TestServeIndex(t *testing.T) {
	live := newLiveFigures()
	live.Emit(obs.Event{T: 1_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 2_000_000})

	shutdown, addr, err := startServer("127.0.0.1:0", obs.NewRegistry(), live, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	code, body := getBody(t, "http://"+addr+"/")
	if code != http.StatusOK {
		t.Fatalf("/: %d", code)
	}
	for _, kind := range obsreport.FigureKinds() {
		if !strings.Contains(body, `<img src="/plot/`+kind+`"`) {
			t.Errorf("index missing live figure img for %q", kind)
		}
	}
	// Run mode has no fleet section.
	if strings.Contains(body, "POST /jobs") {
		t.Error("index advertises the job API without a fleet service")
	}
}

// Service mode end to end through the real server: submit a grid job over
// HTTP, watch it finish, and check the dashboard reflects it.
func TestServeFleetService(t *testing.T) {
	reg := obs.NewRegistry()
	svc := fleet.NewService(reg)
	shutdown, addr, err := startServer("127.0.0.1:0", reg, nil, svc)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	base := "http://" + addr

	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"name": "smoke", "synth_ops": 200, "replicas": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	var st fleet.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || st.Total != 2 {
		t.Fatalf("POST /jobs: %d, %+v", resp.StatusCode, st)
	}

	j := svc.Get(st.ID)
	select {
	case <-j.Finished():
	case <-time.After(60 * time.Second):
		t.Fatal("job did not finish")
	}

	code, body := getBody(t, base+"/")
	if code != http.StatusOK {
		t.Fatalf("/: %d", code)
	}
	for _, want := range []string{
		"POST /jobs",
		`data-job="` + st.ID + `"`,
		">smoke<",
		"2/2",
		"/jobs/" + st.ID + "/plot/energy",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("service index missing %q", want)
		}
	}

	code, body = getBody(t, base+"/jobs/"+st.ID+"/plot/latency")
	if code != http.StatusOK || !strings.Contains(body, "<svg") {
		t.Errorf("job plot: %d", code)
	}

	// /metrics carries the per-job fleet counters.
	_, body = getBody(t, base+"/metrics")
	if !strings.Contains(body, "storagesim_fleet_jobs_submitted_total 1") {
		t.Errorf("/metrics missing fleet counters:\n%.500s", body)
	}
}
