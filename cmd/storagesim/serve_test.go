package main

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("cache.hits").Add(42)
	reg.Gauge("energy.total_j").Set(3.5)

	shutdown, addr, err := startServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + addr

	code, body := getBody(t, base+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz: %d %q", code, body)
	}

	code, body = getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE storagesim_cache_hits_total counter",
		"storagesim_cache_hits_total 42",
		"storagesim_energy_total_j 3.5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Live registry: a scrape after more activity sees the new value.
	reg.Counter("cache.hits").Add(8)
	_, body = getBody(t, base+"/metrics")
	if !strings.Contains(body, "storagesim_cache_hits_total 50") {
		t.Error("second scrape did not observe the counter increment")
	}

	code, body = getBody(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}
	code, _ = getBody(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}

	code, _ = getBody(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path: %d, want 404", code)
	}

	// No livePlot attached: /plot exists but reports 404, not a panic.
	code, _ = getBody(t, base+"/plot")
	if code != http.StatusNotFound {
		t.Errorf("/plot without a live plot: %d, want 404", code)
	}
}

func TestServePlot(t *testing.T) {
	plot := newLivePlot()
	// Feed the tracer the way a run does: energy samples interleaved with
	// events the plot must ignore.
	plot.Emit(obs.Event{T: 1_000_000, Kind: obs.EvCacheHit, Size: 512})
	plot.Emit(obs.Event{T: 1_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 2_000_000})
	plot.Emit(obs.Event{T: 2_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 3_500_000})
	plot.Emit(obs.Event{T: 2_000_000, Kind: obs.EvEnergySample, Dev: "storage", Size: 900_000})

	shutdown, addr, err := startServer("127.0.0.1:0", obs.NewRegistry(), plot)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addr + "/plot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/plot: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("/plot content-type %q, want image/svg+xml", ct)
	}
	doc := string(body)
	if !strings.HasPrefix(doc, "<svg") || !strings.Contains(doc, "</svg>") {
		t.Errorf("/plot body is not an SVG document:\n%.300s", doc)
	}
	for _, want := range []string{"total", "storage", "Cumulative energy"} {
		if !strings.Contains(doc, want) {
			t.Errorf("/plot missing %q", want)
		}
	}

	// The plot is live: more samples show up on the next fetch.
	plot.Emit(obs.Event{T: 3_000_000, Kind: obs.EvEnergySample, Dev: "dram", Size: 400_000})
	_, doc = getBody(t, "http://"+addr+"/plot")
	if !strings.Contains(doc, "dram") {
		t.Error("second fetch did not observe the new component")
	}
}

// Every exposed line must match the Prometheus text format grammar.
func TestServeMetricsGrammar(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a.b").Add(1)
	reg.Gauge("g").Set(-0.25)
	h := reg.Histogram("lat", obs.LogBuckets(1, 100))
	h.Observe(3)
	h.Observe(5000)

	shutdown, addr, err := startServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	_, body := getBody(t, "http://"+addr+"/metrics")
	lineRE := regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_][a-zA-Z0-9_]* .*|[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN))$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !lineRE.MatchString(line) {
			t.Errorf("bad exposition line: %q", line)
		}
	}
}
