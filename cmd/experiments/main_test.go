package main

import (
	"testing"

	"mobilestorage/internal/experiments"
)

func TestRunOne(t *testing.T) {
	reg := experiments.Registry()
	// A fast experiment (catalog dump) succeeds.
	if err := runOne(reg, "table2", 1); err != nil {
		t.Errorf("table2: %v", err)
	}
	// Unknown IDs error.
	if err := runOne(reg, "table9000", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestIDsAllRegistered(t *testing.T) {
	reg := experiments.Registry()
	for _, id := range experiments.IDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("IDs() lists unregistered %q", id)
		}
	}
}
