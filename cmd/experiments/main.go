// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list          # show available experiment IDs
//	experiments -run table4a   # run one experiment
//	experiments -all           # run the full suite in paper order
//	experiments -csv out/      # write the figures as CSVs for plotting
//	experiments -svg out/      # render SVG figures (index small multiples)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mobilestorage/internal/experiments"
)

func main() {
	var (
		list = flag.Bool("list", false, "list experiment IDs")
		run  = flag.String("run", "", "experiment ID to run")
		all  = flag.Bool("all", false, "run every experiment")
		csv  = flag.String("csv", "", "write figure CSVs into this directory")
		svg  = flag.String("svg", "", "write SVG figures into this directory")
		seed = flag.Int64("seed", experiments.DefaultSeed, "workload generation seed")
	)
	flag.Parse()

	reg := experiments.Registry()
	switch {
	case *svg != "":
		files, err := writeSVGs(*svg, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
	case *csv != "":
		files, err := experiments.WriteCSVs(*csv, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Printf("%-20s %s\n", id, reg[id].Description)
		}
	case *all:
		for _, id := range experiments.IDs() {
			if err := runOne(reg, id, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	case *run != "":
		if err := runOne(reg, *run, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeSVGs renders the figure-shaped experiments as SVG documents.
func writeSVGs(dir string, seed int64) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	points, err := experiments.IndexBench(seed)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "indexbench.svg")
	if err := os.WriteFile(path, []byte(experiments.IndexBenchGrid(points).SVG()), 0o644); err != nil {
		return nil, err
	}
	return []string{path}, nil
}

func runOne(reg map[string]experiments.Experiment, id string, seed int64) error {
	e, ok := reg[id]
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", id)
	}
	out, err := e.Run(seed)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	fmt.Println(out)
	return nil
}
