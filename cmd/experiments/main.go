// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list          # show available experiment IDs
//	experiments -run table4a   # run one experiment
//	experiments -all           # run the full suite in paper order
//	experiments -csv out/      # write the figures as CSVs for plotting
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilestorage/internal/experiments"
)

func main() {
	var (
		list = flag.Bool("list", false, "list experiment IDs")
		run  = flag.String("run", "", "experiment ID to run")
		all  = flag.Bool("all", false, "run every experiment")
		csv  = flag.String("csv", "", "write figure CSVs into this directory")
		seed = flag.Int64("seed", experiments.DefaultSeed, "workload generation seed")
	)
	flag.Parse()

	reg := experiments.Registry()
	switch {
	case *csv != "":
		files, err := experiments.WriteCSVs(*csv, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Printf("%-20s %s\n", id, reg[id].Description)
		}
	case *all:
		for _, id := range experiments.IDs() {
			if err := runOne(reg, id, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	case *run != "":
		if err := runOne(reg, *run, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(reg map[string]experiments.Experiment, id string, seed int64) error {
	e, ok := reg[id]
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", id)
	}
	out, err := e.Run(seed)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	fmt.Println(out)
	return nil
}
