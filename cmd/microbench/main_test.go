package main

import "testing"

func TestRunDispatch(t *testing.T) {
	// table1 is the cheapest real benchmark; unknown names error.
	if err := run("table1", 1); err != nil {
		t.Errorf("table1: %v", err)
	}
	if err := run("fig9", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
