// Command microbench runs the §3 hardware micro-benchmarks on the emulated
// OmniBook: Table 1 throughput, the Figure 1 write-latency curves, and the
// Figure 3 overwrite-throughput curves.
//
//	microbench -bench table1
//	microbench -bench fig1
//	microbench -bench fig3 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilestorage/internal/experiments"
)

func main() {
	var (
		bench = flag.String("bench", "table1", "benchmark: table1, fig1, fig3")
		seed  = flag.Int64("seed", experiments.DefaultSeed, "seed for randomized access patterns")
	)
	flag.Parse()
	if err := run(*bench, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
}

func run(bench string, seed int64) error {
	switch bench {
	case "table1":
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
	case "fig1":
		series, err := experiments.Fig1()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig1(series))
	case "fig3":
		series, err := experiments.Fig3(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig3(series))
	default:
		return fmt.Errorf("unknown benchmark %q (want table1, fig1, fig3)", bench)
	}
	return nil
}
