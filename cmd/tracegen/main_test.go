package main

import (
	"os"
	"path/filepath"
	"testing"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/workload"
)

func TestReadTraceSniffsFormats(t *testing.T) {
	tr, err := workload.Synth(workload.SynthConfig{Seed: 1, Ops: 50})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, c := range []struct {
		name   string
		encode func(f *os.File) error
	}{
		{"text", func(f *os.File) error { return trace.Encode(f, tr) }},
		{"binary", func(f *os.File) error { return trace.EncodeBinary(f, tr) }},
	} {
		path := filepath.Join(dir, c.name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.encode(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		got, err := readTrace(path)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(got.Records) != len(tr.Records) {
			t.Errorf("%s: %d records, want %d", c.name, len(got.Records), len(tr.Records))
		}
	}
	if _, err := readTrace(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing file accepted")
	}
	// Garbage content errors rather than panicking.
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("MSTB1garbage"), 0o644)
	if _, err := readTrace(bad); err == nil {
		t.Error("corrupt binary accepted")
	}
}
