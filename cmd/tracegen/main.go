// Command tracegen generates the synthetic workloads and writes them in
// the text trace format, or prints their Table 3-style characteristics.
//
//	tracegen -workload mac -o mac.trace
//	tracegen -workload mac -binary -o mac.btrace
//	tracegen -workload synth -ops 50000 -o synth.trace
//	tracegen -workload dos -summary
//	tracegen -describe mac.trace
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name     = flag.String("workload", "mac", "workload: mac, dos, hp, synth")
		seed     = flag.Int64("seed", 1, "generation seed")
		ops      = flag.Int("ops", 0, "operation count for synth (default 20000)")
		out      = flag.String("o", "", "output trace file (default stdout)")
		binFmt   = flag.Bool("binary", false, "write the compact binary format")
		summary  = flag.Bool("summary", false, "print Table 3-style characteristics instead of the trace")
		check    = flag.Bool("check", false, "compare the generated trace against its published Table 3 targets")
		describe = flag.String("describe", "", "characterize an existing trace file and exit")
	)
	flag.Parse()

	if *describe != "" {
		t, err := readTrace(*describe)
		if err != nil {
			return err
		}
		printSummary(t)
		return nil
	}

	var t *trace.Trace
	var err error
	if *name == "synth" {
		t, err = workload.Synth(workload.SynthConfig{Seed: *seed, Ops: *ops})
	} else {
		t, err = workload.GenerateByName(*name, *seed)
	}
	if err != nil {
		return err
	}

	if *check {
		tgt, err := workload.PaperTargets(*name)
		if err != nil {
			return err
		}
		devs := workload.Fidelity(t, tgt)
		fmt.Print(workload.RenderFidelity(devs))
		fmt.Printf("worst deviation: %.1f%%\n", workload.WorstDeviation(devs)*100)
		return nil
	}

	if *summary {
		printSummary(t)
		return nil
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *binFmt {
		return trace.EncodeBinary(w, t)
	}
	return trace.Encode(w, t)
}

// readTrace loads either format, sniffing the binary magic.
func readTrace(path string) (*trace.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("MSTB1")) {
		return trace.DecodeBinary(bytes.NewReader(data))
	}
	return trace.Decode(bytes.NewReader(data))
}

func printSummary(t *trace.Trace) {
	c := trace.Characterize(t, 0.1)
	fmt.Printf("trace            %s\n", c.Name)
	fmt.Printf("records          %d (%d deletes)\n", c.Records, c.Deletes)
	fmt.Printf("duration         %v\n", c.Duration)
	fmt.Printf("distinct KB      %.0f\n", c.DistinctKBytes)
	fmt.Printf("fraction reads   %.2f\n", c.FractionReads)
	fmt.Printf("block size       %v\n", c.BlockSize)
	fmt.Printf("mean read size   %.1f blocks\n", c.MeanReadBlocks)
	fmt.Printf("mean write size  %.1f blocks\n", c.MeanWriteBlocks)
	fmt.Printf("inter-arrival    mean %.3fs, max %.1fs, σ %.1fs\n",
		c.InterArrival.Mean(), c.InterArrival.Max(), c.InterArrival.StdDev())
}
