// Command obsreport computes derived reports from a simulator event stream
// (the NDJSON file written by storagesim -events).
//
// Usage:
//
//	obsreport <report> [flags]
//
// Reports:
//
//	timeline   per-device spin-state history and idle-time distribution
//	latency    per-event-kind duration quantiles (p50/p90/p99/max)
//	wear       per-segment flash erase counts and wear spread
//	energy     cumulative energy over time per component (needs -sample)
//	cleaning   flash-card cleaner work and live-blocks-per-clean
//	faults     injected faults, retries/backoff, remaps, and power failures
//	array      member deaths, mirror degradations/rebuilds, latent faults, backlog
//
// Ingestion is streaming: events flow from the input straight into the
// report builder, so multi-gigabyte captures — including ones piped on
// stdin — process at constant memory. -in may be repeated; the shards are
// decoded in parallel but always aggregated in argument order, so the
// output is identical to concatenating the files first.
//
// A malformed line normally aborts the report. -lenient skips such lines
// instead; the skip count goes to stderr and, for text output, a
// malformed_lines row after the report. Add -strict to still exit non-zero
// when anything was skipped — the full report for humans, a failing status
// for CI.
//
// -format svg renders the report as a standalone SVG figure — the paper's
// curves without external tooling. -vs run2.ndjson aggregates a second run
// independently and compares the two: text/csv/json render a delta table
// (run A, run B, B−A per quantity), svg overlays both runs' curves on one
// chart.
//
// Examples:
//
//	storagesim -trace mac -device cu140 -events ev.ndjson
//	obsreport timeline -in ev.ndjson
//	obsreport latency -in ev.ndjson -format csv -out lat.csv
//	obsreport energy -in ev.ndjson -format svg -out fig2.svg
//	obsreport energy -in spindown.ndjson -vs alwayson.ndjson
//	obsreport wear -in sweep-a.ndjson -in sweep-b.ndjson -format json
//	zcat huge.ndjson.gz | obsreport cleaning -in -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mobilestorage/internal/obsreport"
	"mobilestorage/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

// handle is one report aggregation in flight: the streaming reporter plus
// renderers bound to it. diff compares this handle's finished report
// against another handle of the same kind (the -vs run).
type handle struct {
	reporter obsreport.Reporter
	render   func(w io.Writer, f obsreport.Format) error
	chart    func() *plot.Chart
	diff     func(other *handle) []obsreport.DeltaRow
}

// reports maps each subcommand to its handle factory. The diff closures
// type-assert the other handle's reporter; -vs always builds both handles
// from the same factory, so the assertion cannot fail.
var reports = map[string]func() *handle{
	"timeline": func() *handle {
		b := obsreport.NewTimelineBuilder()
		return &handle{
			reporter: b,
			render:   func(w io.Writer, f obsreport.Format) error { return obsreport.WriteTimelines(w, b.Finish(), f) },
			chart:    func() *plot.Chart { return obsreport.TimelineChart(b.Finish()) },
			diff: func(o *handle) []obsreport.DeltaRow {
				return obsreport.DiffTimelines(b.Finish(), o.reporter.(*obsreport.TimelineBuilder).Finish())
			},
		}
	},
	"latency": func() *handle {
		b := obsreport.NewLatencyBuilder()
		return &handle{
			reporter: b,
			render:   func(w io.Writer, f obsreport.Format) error { return obsreport.WriteLatency(w, b.Finish(), f) },
			chart:    func() *plot.Chart { return obsreport.LatencyChart(b.Finish()) },
			diff: func(o *handle) []obsreport.DeltaRow {
				return obsreport.DiffLatency(b.Finish(), o.reporter.(*obsreport.LatencyBuilder).Finish())
			},
		}
	},
	"wear": func() *handle {
		b := obsreport.NewWearBuilder()
		return &handle{
			reporter: b,
			render:   func(w io.Writer, f obsreport.Format) error { return obsreport.WriteWear(w, b.Finish(), f) },
			chart:    func() *plot.Chart { return obsreport.WearChart(b.Finish()) },
			diff: func(o *handle) []obsreport.DeltaRow {
				return obsreport.DiffWear(b.Finish(), o.reporter.(*obsreport.WearBuilder).Finish())
			},
		}
	},
	"energy": func() *handle {
		b := obsreport.NewEnergyBuilder()
		return &handle{
			reporter: b,
			render:   func(w io.Writer, f obsreport.Format) error { return obsreport.WriteEnergy(w, b.Finish(), f) },
			chart:    func() *plot.Chart { return obsreport.EnergyChart(b.Finish()) },
			diff: func(o *handle) []obsreport.DeltaRow {
				return obsreport.DiffEnergy(b.Finish(), o.reporter.(*obsreport.EnergyBuilder).Finish())
			},
		}
	},
	"cleaning": func() *handle {
		b := obsreport.NewCleaningBuilder()
		return &handle{
			reporter: b,
			render:   func(w io.Writer, f obsreport.Format) error { return obsreport.WriteCleaning(w, b.Finish(), f) },
			chart:    func() *plot.Chart { return obsreport.CleaningChart(b.Finish()) },
			diff: func(o *handle) []obsreport.DeltaRow {
				return obsreport.DiffCleaning(b.Finish(), o.reporter.(*obsreport.CleaningBuilder).Finish())
			},
		}
	},
	"faults": func() *handle {
		b := obsreport.NewFaultsBuilder()
		return &handle{
			reporter: b,
			render:   func(w io.Writer, f obsreport.Format) error { return obsreport.WriteFaults(w, b.Finish(), f) },
			chart:    func() *plot.Chart { return obsreport.FaultsChart(b.Finish()) },
			diff: func(o *handle) []obsreport.DeltaRow {
				return obsreport.DiffFaults(b.Finish(), o.reporter.(*obsreport.FaultsBuilder).Finish())
			},
		}
	},
	"array": func() *handle {
		b := obsreport.NewArrayBuilder()
		return &handle{
			reporter: b,
			render:   func(w io.Writer, f obsreport.Format) error { return obsreport.WriteArray(w, b.Finish(), f) },
			chart:    func() *plot.Chart { return obsreport.ArrayChart(b.Finish()) },
			diff: func(o *handle) []obsreport.DeltaRow {
				return obsreport.DiffArray(b.Finish(), o.reporter.(*obsreport.ArrayBuilder).Finish())
			},
		}
	},
}

// inputList collects repeated -in flags.
type inputList []string

func (l *inputList) String() string { return fmt.Sprint([]string(*l)) }

func (l *inputList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return usageError(stderr)
	}
	name := args[0]
	newHandle, ok := reports[name]
	if !ok {
		fmt.Fprintf(stderr, "unknown report %q\n", name)
		return usageError(stderr)
	}

	fs := flag.NewFlagSet("obsreport "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ins inputList
	fs.Var(&ins, "in", "NDJSON event stream to read (- for stdin); repeat to aggregate shards")
	var (
		format  = fs.String("format", "text", "output format: text, csv, json, svg")
		out     = fs.String("out", "-", "output file (- for stdout)")
		lenient = fs.Bool("lenient", false, "skip malformed lines instead of aborting")
		strict  = fs.Bool("strict", false, "exit non-zero if any malformed lines were skipped (pairs with -lenient)")
		workers = fs.Int("workers", 0, "parallel decode workers for multi-file input (0 = all cores)")
		vs      = fs.String("vs", "", "second run to compare against (NDJSON file, - for stdin)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	f, err := obsreport.ParseFormat(*format)
	if err != nil {
		return err
	}
	if len(ins) == 0 {
		ins = inputList{"-"}
	}
	stdins := 0
	for _, in := range ins {
		if in == "-" {
			stdins++
		}
	}
	if *vs == "-" {
		stdins++
	}
	if stdins > 1 {
		return fmt.Errorf("stdin (-) may be given at most once across -in and -vs")
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}

	opt := obsreport.StreamOptions{Lenient: *lenient, Workers: *workers, Stdin: stdin}
	a := newHandle()
	stats, err := obsreport.StreamFiles(ins, opt, a.reporter)
	if err != nil {
		return err
	}
	if stats.Skipped > 0 {
		fmt.Fprintf(stderr, "obsreport: skipped %d malformed lines\n", stats.Skipped)
	}

	skipped := stats.Skipped
	render := a.render
	if *vs != "" {
		b := newHandle()
		vsStats, err := obsreport.StreamFiles([]string{*vs}, opt, b.reporter)
		if err != nil {
			return err
		}
		if vsStats.Skipped > 0 {
			fmt.Fprintf(stderr, "obsreport: skipped %d malformed lines in -vs stream\n", vsStats.Skipped)
		}
		skipped += vsStats.Skipped
		labelA, labelB := runLabels(ins[0], *vs)
		render = func(w io.Writer, f obsreport.Format) error {
			if f == obsreport.SVG {
				return obsreport.MergeCharts(a.chart(), b.chart(), labelA, labelB).Render(w)
			}
			return obsreport.WriteDelta(w, a.diff(b), f)
		}
	}

	// Corruption is part of the answer, not just a side note: in lenient
	// mode a skipped line means the report is computed from a subset of the
	// capture, so the text rendering carries a malformed_lines row. The row
	// is appended here rather than inside the Write* renderers so streaming
	// and slice renders of a clean capture stay byte-identical, and the
	// structured formats (csv/json/svg) stay schema-clean.
	if skipped > 0 {
		inner := render
		render = func(w io.Writer, f obsreport.Format) error {
			if err := inner(w, f); err != nil {
				return err
			}
			if f == obsreport.Text {
				fmt.Fprintf(w, "\nmalformed_lines  %d (report computed without them)\n", skipped)
			}
			return nil
		}
	}

	if *out != "-" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := render(file, f); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
	} else if err := render(stdout, f); err != nil {
		return err
	}
	if *strict && skipped > 0 {
		return fmt.Errorf("%d malformed lines skipped (-strict)", skipped)
	}
	return nil
}

// runLabels derives legend labels for a two-run comparison from the input
// paths, disambiguating when both runs share a base name (e.g. self-diff).
func runLabels(inPath, vsPath string) (string, string) {
	name := func(p string) string {
		if p == "-" {
			return "stdin"
		}
		return filepath.Base(p)
	}
	a, b := name(inPath), name(vsPath)
	if a == b {
		return a + " (A)", b + " (B)"
	}
	return a, b
}

func usageError(w io.Writer) error {
	fmt.Fprintln(w, "usage: obsreport <timeline|latency|wear|energy|cleaning|faults|array> [-in events.ndjson ...] [-vs run2.ndjson] [-format text|csv|json|svg] [-out file] [-lenient] [-strict] [-workers n]")
	return fmt.Errorf("missing or unknown report")
}
