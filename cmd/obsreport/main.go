// Command obsreport computes derived reports from a simulator event stream
// (the NDJSON file written by storagesim -events).
//
// Usage:
//
//	obsreport <report> [flags]
//
// Reports:
//
//	timeline   per-device spin-state history and idle-time distribution
//	latency    per-event-kind duration quantiles (p50/p90/p99/max)
//	wear       per-segment flash erase counts and wear spread
//	energy     cumulative energy over time per component (needs -sample)
//	cleaning   flash-card cleaner work and live-blocks-per-clean
//
// Examples:
//
//	storagesim -trace mac -device cu140 -events ev.ndjson
//	obsreport timeline -in ev.ndjson
//	obsreport latency -in ev.ndjson -format csv -out lat.csv
//	obsreport wear -in ev.ndjson -format json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

// reports maps each subcommand to its renderer.
var reports = map[string]func(io.Writer, []obs.Event, obsreport.Format) error{
	"timeline": func(w io.Writer, ev []obs.Event, f obsreport.Format) error {
		return obsreport.WriteTimelines(w, obsreport.StateTimelines(ev), f)
	},
	"latency": func(w io.Writer, ev []obs.Event, f obsreport.Format) error {
		return obsreport.WriteLatency(w, obsreport.Latency(ev), f)
	},
	"wear": func(w io.Writer, ev []obs.Event, f obsreport.Format) error {
		return obsreport.WriteWear(w, obsreport.Wear(ev), f)
	},
	"energy": func(w io.Writer, ev []obs.Event, f obsreport.Format) error {
		return obsreport.WriteEnergy(w, obsreport.Energy(ev), f)
	},
	"cleaning": func(w io.Writer, ev []obs.Event, f obsreport.Format) error {
		return obsreport.WriteCleaning(w, obsreport.Cleaning(ev), f)
	},
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return usageError(stderr)
	}
	name := args[0]
	render, ok := reports[name]
	if !ok {
		fmt.Fprintf(stderr, "unknown report %q\n", name)
		return usageError(stderr)
	}

	fs := flag.NewFlagSet("obsreport "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in      = fs.String("in", "-", "NDJSON event stream to read (- for stdin)")
		format  = fs.String("format", "text", "output format: text, csv, json")
		out     = fs.String("out", "-", "output file (- for stdout)")
		lenient = fs.Bool("lenient", false, "skip malformed lines instead of aborting")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	f, err := obsreport.ParseFormat(*format)
	if err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		file, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer file.Close()
		r = file
	}
	var events []obs.Event
	if *lenient {
		var skipped int
		events, skipped, err = obsreport.ReadEventsLenient(r)
		if err == nil && skipped > 0 {
			fmt.Fprintf(stderr, "obsreport: skipped %d malformed lines\n", skipped)
		}
	} else {
		events, err = obsreport.ReadEvents(r)
	}
	if err != nil {
		return err
	}

	w := stdout
	if *out != "-" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := render(file, events, f); err != nil {
			file.Close()
			return err
		}
		return file.Close()
	}
	return render(w, events, f)
}

func usageError(w io.Writer) error {
	fmt.Fprintln(w, "usage: obsreport <timeline|latency|wear|energy|cleaning> [-in events.ndjson] [-format text|csv|json] [-out file] [-lenient]")
	return fmt.Errorf("missing or unknown report")
}
