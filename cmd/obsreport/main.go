// Command obsreport computes derived reports from a simulator event stream
// (the NDJSON file written by storagesim -events).
//
// Usage:
//
//	obsreport <report> [flags]
//
// Reports:
//
//	timeline   per-device spin-state history and idle-time distribution
//	latency    per-event-kind duration quantiles (p50/p90/p99/max)
//	wear       per-segment flash erase counts and wear spread
//	energy     cumulative energy over time per component (needs -sample)
//	cleaning   flash-card cleaner work and live-blocks-per-clean
//
// Ingestion is streaming: events flow from the input straight into the
// report builder, so multi-gigabyte captures — including ones piped on
// stdin — process at constant memory. -in may be repeated; the shards are
// decoded in parallel but always aggregated in argument order, so the
// output is identical to concatenating the files first.
//
// Examples:
//
//	storagesim -trace mac -device cu140 -events ev.ndjson
//	obsreport timeline -in ev.ndjson
//	obsreport latency -in ev.ndjson -format csv -out lat.csv
//	obsreport wear -in sweep-a.ndjson -in sweep-b.ndjson -format json
//	zcat huge.ndjson.gz | obsreport cleaning -in -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobilestorage/internal/obsreport"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

// renderFunc renders a finished builder to w.
type renderFunc func(w io.Writer, f obsreport.Format) error

// reports maps each subcommand to a factory returning the streaming
// reporter and a renderer bound to it.
var reports = map[string]func() (obsreport.Reporter, renderFunc){
	"timeline": func() (obsreport.Reporter, renderFunc) {
		b := obsreport.NewTimelineBuilder()
		return b, func(w io.Writer, f obsreport.Format) error { return obsreport.WriteTimelines(w, b.Finish(), f) }
	},
	"latency": func() (obsreport.Reporter, renderFunc) {
		b := obsreport.NewLatencyBuilder()
		return b, func(w io.Writer, f obsreport.Format) error { return obsreport.WriteLatency(w, b.Finish(), f) }
	},
	"wear": func() (obsreport.Reporter, renderFunc) {
		b := obsreport.NewWearBuilder()
		return b, func(w io.Writer, f obsreport.Format) error { return obsreport.WriteWear(w, b.Finish(), f) }
	},
	"energy": func() (obsreport.Reporter, renderFunc) {
		b := obsreport.NewEnergyBuilder()
		return b, func(w io.Writer, f obsreport.Format) error { return obsreport.WriteEnergy(w, b.Finish(), f) }
	},
	"cleaning": func() (obsreport.Reporter, renderFunc) {
		b := obsreport.NewCleaningBuilder()
		return b, func(w io.Writer, f obsreport.Format) error { return obsreport.WriteCleaning(w, b.Finish(), f) }
	},
}

// inputList collects repeated -in flags.
type inputList []string

func (l *inputList) String() string { return fmt.Sprint([]string(*l)) }

func (l *inputList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return usageError(stderr)
	}
	name := args[0]
	newReport, ok := reports[name]
	if !ok {
		fmt.Fprintf(stderr, "unknown report %q\n", name)
		return usageError(stderr)
	}

	fs := flag.NewFlagSet("obsreport "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ins inputList
	fs.Var(&ins, "in", "NDJSON event stream to read (- for stdin); repeat to aggregate shards")
	var (
		format  = fs.String("format", "text", "output format: text, csv, json")
		out     = fs.String("out", "-", "output file (- for stdout)")
		lenient = fs.Bool("lenient", false, "skip malformed lines instead of aborting")
		workers = fs.Int("workers", 0, "parallel decode workers for multi-file input (0 = all cores)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	f, err := obsreport.ParseFormat(*format)
	if err != nil {
		return err
	}
	if len(ins) == 0 {
		ins = inputList{"-"}
	}
	stdins := 0
	for _, in := range ins {
		if in == "-" {
			stdins++
		}
	}
	if stdins > 1 {
		return fmt.Errorf("-in - (stdin) may be given at most once")
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}

	reporter, render := newReport()
	stats, err := obsreport.StreamFiles(ins, obsreport.StreamOptions{
		Lenient: *lenient,
		Workers: *workers,
		Stdin:   stdin,
	}, reporter)
	if err != nil {
		return err
	}
	if stats.Skipped > 0 {
		fmt.Fprintf(stderr, "obsreport: skipped %d malformed lines\n", stats.Skipped)
	}

	if *out != "-" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := render(file, f); err != nil {
			file.Close()
			return err
		}
		return file.Close()
	}
	return render(stdout, f)
}

func usageError(w io.Writer) error {
	fmt.Fprintln(w, "usage: obsreport <timeline|latency|wear|energy|cleaning> [-in events.ndjson ...] [-format text|csv|json] [-out file] [-lenient] [-workers n]")
	return fmt.Errorf("missing or unknown report")
}
