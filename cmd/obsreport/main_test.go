package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// writeEventFile runs a sampled flash-card simulation and captures its
// event stream to an NDJSON file, the same way storagesim -events does.
func writeEventFile(t *testing.T) string {
	t.Helper()
	tr, err := workload.Synth(workload.SynthConfig{Seed: 11, Ops: 3000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewNDJSONSink(&buf)
	cfg := core.Config{
		Trace:           tr,
		Kind:            core.FlashCard,
		FlashCardParams: device.IntelSeries2Datasheet(),
		DRAMBytes:       256 * units.KB,
		SampleEvery:     units.FromSeconds(20),
		Scope:           obs.NewScope(obs.NewRegistry(), sink),
	}
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.ndjson")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	return runCLIStdin(t, strings.NewReader(""), args...)
}

func runCLIStdin(t *testing.T, stdin io.Reader, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, stdin, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

// The acceptance bar: the CLI reproduces at least three derived reports
// from one stream, deterministically across repeated invocations.
func TestReportsDeterministic(t *testing.T) {
	path := writeEventFile(t)
	for _, report := range []string{"latency", "wear", "energy", "cleaning"} {
		for _, format := range []string{"text", "csv", "json"} {
			first, _, err := runCLI(t, report, "-in", path, "-format", format)
			if err != nil {
				t.Fatalf("%s/%s: %v", report, format, err)
			}
			if first == "" {
				t.Fatalf("%s/%s: empty output", report, format)
			}
			second, _, err := runCLI(t, report, "-in", path, "-format", format)
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", report, format, err)
			}
			if first != second {
				t.Errorf("%s/%s: output differs between runs", report, format)
			}
		}
	}
}

func TestReportContent(t *testing.T) {
	path := writeEventFile(t)

	out, _, err := runCLI(t, "wear", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "erases across") {
		t.Errorf("wear output: %q", out)
	}

	out, _, err = runCLI(t, "energy", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total") || !strings.Contains(out, "storage") {
		t.Errorf("energy output missing components: %q", out)
	}

	out, _, err = runCLI(t, "cleaning", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cleans relocated") {
		t.Errorf("cleaning output: %q", out)
	}

	// timeline on a flash-card stream: no spin events, graceful message.
	out, _, err = runCLI(t, "timeline", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no spin-state events") {
		t.Errorf("timeline output: %q", out)
	}
}

func TestOutFileAndErrors(t *testing.T) {
	path := writeEventFile(t)
	outPath := filepath.Join(t.TempDir(), "wear.json")
	if _, _, err := runCLI(t, "wear", "-in", path, "-format", "json", "-out", outPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "total_erases") {
		t.Errorf("out file content: %.80s", data)
	}

	if _, _, err := runCLI(t); err == nil {
		t.Error("no args accepted")
	}
	if _, _, err := runCLI(t, "bogus"); err == nil {
		t.Error("unknown report accepted")
	}
	if _, _, err := runCLI(t, "wear", "-in", path, "-format", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, _, err := runCLI(t, "wear", "-in", "/nonexistent/events"); err == nil {
		t.Error("missing input accepted")
	}
}

// Reading from stdin via -in - (and via the default when -in is absent)
// must match reading the same bytes from a file.
func TestStdinInput(t *testing.T) {
	path := writeEventFile(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, _, err := runCLI(t, "wear", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	fromStdin, _, err := runCLIStdin(t, bytes.NewReader(data), "wear", "-in", "-")
	if err != nil {
		t.Fatal(err)
	}
	if fromStdin != fromFile {
		t.Errorf("stdin render differs from file render")
	}
	fromDefault, _, err := runCLIStdin(t, bytes.NewReader(data), "wear")
	if err != nil {
		t.Fatal(err)
	}
	if fromDefault != fromFile {
		t.Errorf("default-input render differs from file render")
	}
}

// Repeated -in aggregates shards in argument order; the result matches the
// concatenated stream, and stdin may ride along as one shard.
func TestMultipleInputs(t *testing.T) {
	path := writeEventFile(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Split at a line boundary near the middle.
	cut := bytes.Index(data[len(data)/2:], []byte("\n")) + len(data)/2 + 1
	dir := t.TempDir()
	a := filepath.Join(dir, "a.ndjson")
	b := filepath.Join(dir, "b.ndjson")
	if err := os.WriteFile(a, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, data[cut:], 0o644); err != nil {
		t.Fatal(err)
	}

	whole, _, err := runCLI(t, "wear", "-in", path, "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	split, _, err := runCLI(t, "wear", "-in", a, "-in", b, "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	if split != whole {
		t.Errorf("sharded render differs from whole-file render")
	}
	withStdin, _, err := runCLIStdin(t, bytes.NewReader(data[cut:]), "wear", "-in", a, "-in", "-", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	if withStdin != whole {
		t.Errorf("file+stdin shard render differs from whole-file render")
	}
	bounded, _, err := runCLI(t, "wear", "-in", a, "-in", b, "-format", "json", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	if bounded != whole {
		t.Errorf("-workers 1 render differs from whole-file render")
	}
}

func TestConflictingFlagCombinations(t *testing.T) {
	path := writeEventFile(t)
	if _, _, err := runCLI(t, "wear", "-in", "-", "-in", "-"); err == nil {
		t.Error("stdin given twice accepted")
	}
	if _, _, err := runCLI(t, "wear", "-in", path, "-workers", "-3"); err == nil {
		t.Error("negative -workers accepted")
	}
	if _, _, err := runCLI(t, "wear", "-in", path, "-in", "-", "-in", "-"); err == nil {
		t.Error("mixed files with repeated stdin accepted")
	}
}

func TestLenientFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ndjson")
	content := `{"t_us":1,"kind":"flashcard.erase","addr":1,"size":1}` + "\n" +
		"garbage\n" +
		`{"t_us":2,"kind":"flashcard.erase","addr":2,"size":1}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "wear", "-in", path); err == nil {
		t.Error("strict mode accepted a malformed stream")
	}
	out, errOut, err := runCLI(t, "wear", "-in", path, "-lenient")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 erases") {
		t.Errorf("lenient wear output: %q", out)
	}
	if !strings.Contains(errOut, "skipped 1") {
		t.Errorf("stderr: %q", errOut)
	}
}
