package main

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// writeEventFile runs a sampled flash-card simulation and captures its
// event stream to an NDJSON file, the same way storagesim -events does.
func writeEventFile(t *testing.T) string {
	return writeEventFileSeed(t, 11)
}

func writeEventFileSeed(t *testing.T, seed int64) string {
	t.Helper()
	tr, err := workload.Synth(workload.SynthConfig{Seed: seed, Ops: 3000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewNDJSONSink(&buf)
	cfg := core.Config{
		Trace:           tr,
		Kind:            core.FlashCard,
		FlashCardParams: device.IntelSeries2Datasheet(),
		DRAMBytes:       256 * units.KB,
		SampleEvery:     units.FromSeconds(20),
		Scope:           obs.NewScope(obs.NewRegistry(), sink),
	}
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.ndjson")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	return runCLIStdin(t, strings.NewReader(""), args...)
}

func runCLIStdin(t *testing.T, stdin io.Reader, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, stdin, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

// The acceptance bar: the CLI reproduces at least three derived reports
// from one stream, deterministically across repeated invocations.
func TestReportsDeterministic(t *testing.T) {
	path := writeEventFile(t)
	for _, report := range []string{"latency", "wear", "energy", "cleaning"} {
		for _, format := range []string{"text", "csv", "json"} {
			first, _, err := runCLI(t, report, "-in", path, "-format", format)
			if err != nil {
				t.Fatalf("%s/%s: %v", report, format, err)
			}
			if first == "" {
				t.Fatalf("%s/%s: empty output", report, format)
			}
			second, _, err := runCLI(t, report, "-in", path, "-format", format)
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", report, format, err)
			}
			if first != second {
				t.Errorf("%s/%s: output differs between runs", report, format)
			}
		}
	}
}

func TestReportContent(t *testing.T) {
	path := writeEventFile(t)

	out, _, err := runCLI(t, "wear", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "erases across") {
		t.Errorf("wear output: %q", out)
	}

	out, _, err = runCLI(t, "energy", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total") || !strings.Contains(out, "storage") {
		t.Errorf("energy output missing components: %q", out)
	}

	out, _, err = runCLI(t, "cleaning", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cleans relocated") {
		t.Errorf("cleaning output: %q", out)
	}

	// timeline on a flash-card stream: no spin events, graceful message.
	out, _, err = runCLI(t, "timeline", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no spin-state events") {
		t.Errorf("timeline output: %q", out)
	}
}

func TestOutFileAndErrors(t *testing.T) {
	path := writeEventFile(t)
	outPath := filepath.Join(t.TempDir(), "wear.json")
	if _, _, err := runCLI(t, "wear", "-in", path, "-format", "json", "-out", outPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "total_erases") {
		t.Errorf("out file content: %.80s", data)
	}

	if _, _, err := runCLI(t); err == nil {
		t.Error("no args accepted")
	}
	if _, _, err := runCLI(t, "bogus"); err == nil {
		t.Error("unknown report accepted")
	}
	if _, _, err := runCLI(t, "wear", "-in", path, "-format", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, _, err := runCLI(t, "wear", "-in", "/nonexistent/events"); err == nil {
		t.Error("missing input accepted")
	}
}

// Reading from stdin via -in - (and via the default when -in is absent)
// must match reading the same bytes from a file.
func TestStdinInput(t *testing.T) {
	path := writeEventFile(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, _, err := runCLI(t, "wear", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	fromStdin, _, err := runCLIStdin(t, bytes.NewReader(data), "wear", "-in", "-")
	if err != nil {
		t.Fatal(err)
	}
	if fromStdin != fromFile {
		t.Errorf("stdin render differs from file render")
	}
	fromDefault, _, err := runCLIStdin(t, bytes.NewReader(data), "wear")
	if err != nil {
		t.Fatal(err)
	}
	if fromDefault != fromFile {
		t.Errorf("default-input render differs from file render")
	}
}

// Repeated -in aggregates shards in argument order; the result matches the
// concatenated stream, and stdin may ride along as one shard.
func TestMultipleInputs(t *testing.T) {
	path := writeEventFile(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Split at a line boundary near the middle.
	cut := bytes.Index(data[len(data)/2:], []byte("\n")) + len(data)/2 + 1
	dir := t.TempDir()
	a := filepath.Join(dir, "a.ndjson")
	b := filepath.Join(dir, "b.ndjson")
	if err := os.WriteFile(a, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, data[cut:], 0o644); err != nil {
		t.Fatal(err)
	}

	whole, _, err := runCLI(t, "wear", "-in", path, "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	split, _, err := runCLI(t, "wear", "-in", a, "-in", b, "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	if split != whole {
		t.Errorf("sharded render differs from whole-file render")
	}
	withStdin, _, err := runCLIStdin(t, bytes.NewReader(data[cut:]), "wear", "-in", a, "-in", "-", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	if withStdin != whole {
		t.Errorf("file+stdin shard render differs from whole-file render")
	}
	bounded, _, err := runCLI(t, "wear", "-in", a, "-in", b, "-format", "json", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	if bounded != whole {
		t.Errorf("-workers 1 render differs from whole-file render")
	}
}

func TestConflictingFlagCombinations(t *testing.T) {
	path := writeEventFile(t)
	if _, _, err := runCLI(t, "wear", "-in", "-", "-in", "-"); err == nil {
		t.Error("stdin given twice accepted")
	}
	if _, _, err := runCLI(t, "wear", "-in", path, "-workers", "-3"); err == nil {
		t.Error("negative -workers accepted")
	}
	if _, _, err := runCLI(t, "wear", "-in", path, "-in", "-", "-in", "-"); err == nil {
		t.Error("mixed files with repeated stdin accepted")
	}
}

func TestLenientFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ndjson")
	content := `{"t_us":1,"kind":"flashcard.erase","addr":1,"size":1}` + "\n" +
		"garbage\n" +
		`{"t_us":2,"kind":"flashcard.erase","addr":2,"size":1}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "wear", "-in", path); err == nil {
		t.Error("strict mode accepted a malformed stream")
	}
	out, errOut, err := runCLI(t, "wear", "-in", path, "-lenient")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 erases") {
		t.Errorf("lenient wear output: %q", out)
	}
	if !strings.Contains(errOut, "skipped 1") {
		t.Errorf("stderr: %q", errOut)
	}
	if !strings.Contains(out, "malformed_lines  1") {
		t.Errorf("text output missing malformed_lines row: %q", out)
	}

	// Structured formats stay schema-clean: no malformed_lines row injected.
	out, _, err = runCLI(t, "wear", "-in", path, "-lenient", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "malformed_lines") {
		t.Errorf("json output polluted by malformed_lines row: %q", out)
	}
	var parsed map[string]any
	if jerr := json.Unmarshal([]byte(out), &parsed); jerr != nil {
		t.Errorf("lenient json output does not parse: %v", jerr)
	}
}

// -strict pairs with -lenient: the report still renders in full, but the
// exit status flags the corruption for CI.
func TestStrictFlag(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ndjson")
	content := `{"t_us":1,"kind":"flashcard.erase","addr":1,"size":1}` + "\ngarbage\n"
	if err := os.WriteFile(bad, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	out, _, err := runCLI(t, "wear", "-in", bad, "-lenient", "-strict")
	if err == nil {
		t.Error("-strict with skipped lines exited zero")
	} else if !strings.Contains(err.Error(), "1 malformed lines") {
		t.Errorf("strict error: %v", err)
	}
	if !strings.Contains(out, "1 erases") {
		t.Errorf("-strict suppressed the report: %q", out)
	}

	// A clean stream under -strict is not an error.
	clean := writeEventFile(t)
	if out, _, err := runCLI(t, "wear", "-in", clean, "-lenient", "-strict"); err != nil {
		t.Fatal(err)
	} else if strings.Contains(out, "malformed_lines") {
		t.Errorf("clean stream grew a malformed_lines row: %q", out)
	}

	// Skipped lines in the -vs stream count too.
	if _, _, err := runCLI(t, "wear", "-in", clean, "-vs", bad, "-lenient", "-strict"); err == nil {
		t.Error("-strict ignored malformed lines in the -vs stream")
	}
}

// xmlWellFormed fails the test unless doc parses cleanly as XML.
func xmlWellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		if _, err := dec.Token(); err == io.EOF {
			return
		} else if err != nil {
			t.Fatalf("output is not well-formed XML: %v\n%.300s", err, doc)
		}
	}
}

// Every report renders -format svg: a complete, well-formed, deterministic
// SVG document.
func TestSVGFormat(t *testing.T) {
	path := writeEventFile(t)
	for _, report := range []string{"timeline", "latency", "wear", "energy", "cleaning"} {
		t.Run(report, func(t *testing.T) {
			first, _, err := runCLI(t, report, "-in", path, "-format", "svg")
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(first, "<svg") || !strings.Contains(first, "</svg>") {
				t.Fatalf("not an SVG document: %.120s", first)
			}
			xmlWellFormed(t, first)
			second, _, err := runCLI(t, report, "-in", path, "-format", "svg")
			if err != nil {
				t.Fatal(err)
			}
			if first != second {
				t.Error("svg output differs between runs")
			}
		})
	}
}

// -vs against the same file must report all-zero deltas in every report —
// the self-diff property the fuzz target generalizes.
func TestVsSelfDiffZero(t *testing.T) {
	path := writeEventFile(t)
	for _, report := range []string{"timeline", "latency", "wear", "energy", "cleaning"} {
		out, _, err := runCLI(t, report, "-in", path, "-vs", path, "-format", "json")
		if err != nil {
			t.Fatalf("%s: %v", report, err)
		}
		var rows []struct {
			Name  string  `json:"name"`
			Delta float64 `json:"delta"`
		}
		if err := json.Unmarshal([]byte(out), &rows); err != nil {
			t.Fatalf("%s: %v in %q", report, err, out)
		}
		// The flash-card stream has no spin events, so the timeline diff is
		// legitimately empty; every other report must produce rows.
		if len(rows) == 0 && report != "timeline" {
			t.Errorf("%s: self-diff produced no rows", report)
		}
		for _, r := range rows {
			if r.Delta != 0 {
				t.Errorf("%s: self-diff row %s has delta %g", report, r.Name, r.Delta)
			}
		}
	}
}

// -vs of two different runs renders a delta table (text/csv) and a merged
// two-run chart (svg).
func TestVsTwoRuns(t *testing.T) {
	a := writeEventFileSeed(t, 11)
	b := writeEventFileSeed(t, 23)

	out, _, err := runCLI(t, "energy", "-in", a, "-vs", b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "run A") || !strings.Contains(out, "total.final_j") {
		t.Errorf("text delta table: %q", out)
	}

	out, _, err = runCLI(t, "wear", "-in", a, "-vs", b, "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "name,a,b,delta\n") || !strings.Contains(out, "total_erases") {
		t.Errorf("csv delta table: %q", out)
	}

	out, _, err = runCLI(t, "energy", "-in", a, "-vs", b, "-format", "svg")
	if err != nil {
		t.Fatal(err)
	}
	xmlWellFormed(t, out)
	if !strings.Contains(out, " vs ") || !strings.Contains(out, "[events.ndjson") {
		t.Errorf("merged chart missing run labels: %.200s", out)
	}

	// Deterministic across repeated invocations.
	again, _, err := runCLI(t, "energy", "-in", a, "-vs", b, "-format", "svg")
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Error("-vs svg output differs between runs")
	}
}

// New-flag usage errors, table-driven.
func TestNewFlagErrors(t *testing.T) {
	path := writeEventFile(t)
	cases := []struct {
		name string
		args []string
	}{
		{"vs with stdin twice", []string{"energy", "-in", "-", "-vs", "-"}},
		{"vs stdin with in stdin default conflict", []string{"energy", "-vs", "-"}},
		{"vs missing file", []string{"energy", "-in", path, "-vs", "/nonexistent/run2"}},
		{"unknown format still rejected", []string{"energy", "-in", path, "-format", "png"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := runCLI(t, tc.args...); err == nil {
				t.Errorf("args %v accepted", tc.args)
			}
		})
	}
}

// -vs streams honor -lenient, and svg respects -out.
func TestVsLenientAndOutFile(t *testing.T) {
	path := writeEventFile(t)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ndjson")
	content := `{"t_us":1,"kind":"flashcard.erase","addr":1,"size":1}` + "\ngarbage\n"
	if err := os.WriteFile(bad, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "wear", "-in", path, "-vs", bad); err == nil {
		t.Error("strict mode accepted a malformed -vs stream")
	}
	_, errOut, err := runCLI(t, "wear", "-in", path, "-vs", bad, "-lenient")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "skipped 1 malformed lines in -vs stream") {
		t.Errorf("stderr: %q", errOut)
	}

	svgPath := filepath.Join(dir, "fig.svg")
	if _, _, err := runCLI(t, "energy", "-in", path, "-format", "svg", "-out", svgPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("svg out file content: %.80s", data)
	}
}
