#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the fleet service.
#
# Boots `storagesim -service` on an ephemeral port, submits a small grid
# job over POST /jobs, polls GET /jobs/<id> until it finishes, fetches
# every fleet figure and the dashboard index, then shuts the service down
# with SIGINT and checks the graceful exit status (130). Needs only a Go
# toolchain and curl. Run from the repo root: `make serve-smoke`.
set -eu

workdir=$(mktemp -d)
logfile="$workdir/serve.log"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$logfile" >&2 || true
    exit 1
}

echo "serve-smoke: building storagesim"
go build -o "$workdir/storagesim" ./cmd/storagesim

"$workdir/storagesim" -service -serve 127.0.0.1:0 -drain 30 >"$logfile" 2>&1 &
pid=$!

# The service logs its bound address; wait for it.
base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's#.*fleet service on \(http://[0-9.:]*\)/.*#\1#p' "$logfile" | head -1)
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || fail "service exited during startup"
    sleep 0.1
done
[ -n "$base" ] || fail "service never logged its address"
echo "serve-smoke: service up at $base"

curl -fsS "$base/healthz" >/dev/null || fail "healthz"

spec='{
  "name": "smoke",
  "devices": ["cu140", "intel"],
  "utilizations": [0.7, 0.9],
  "synth_ops": 2000,
  "replicas": 2,
  "workers": 4
}'
status=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$spec" "$base/jobs") \
    || fail "POST /jobs"
job=$(printf '%s' "$status" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$job" ] || fail "no job id in response: $status"
echo "serve-smoke: submitted job $job"

finished=""
for _ in $(seq 1 300); do
    status=$(curl -fsS "$base/jobs/$job") || fail "GET /jobs/$job"
    case "$status" in
    *'"finished":true'*) finished=yes; break ;;
    esac
    sleep 0.1
done
[ -n "$finished" ] || fail "job did not finish: $status"
case "$status" in
*'"state":"done"'*) ;;
*) fail "job finished but not done: $status" ;;
esac
case "$status" in
*'"failed":0'*) ;;
*) fail "job has failed runs: $status" ;;
esac
echo "serve-smoke: job done"

for kind in timeline latency wear energy cleaning faults; do
    svg=$(curl -fsS "$base/jobs/$job/plot/$kind") || fail "plot $kind"
    case "$svg" in
    '<svg'*) ;;
    *) fail "plot $kind is not an SVG" ;;
    esac
done
echo "serve-smoke: all six figures render"

index=$(curl -fsS "$base/") || fail "GET /"
case "$index" in
*"$job"*) ;;
*) fail "index does not show job $job" ;;
esac

curl -fsS "$base/metrics" | grep -q 'storagesim_fleet_jobs_submitted_total 1' \
    || fail "metrics missing fleet counters"

# Graceful shutdown: SIGINT drains and exits 130.
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 130 ] || fail "service exited $rc, want 130"

echo "serve-smoke: PASS"
