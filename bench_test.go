// Package mobilestorage's benchmark harness regenerates every table and
// figure of the paper under `go test -bench`. One benchmark per artifact;
// headline quantities are attached as custom metrics so `-benchmem` runs
// double as a quick reproduction report:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable4 -benchtime=1x
//
// Each benchmark runs the corresponding experiment end to end (workload
// generation + simulation), so ns/op measures the cost of a full
// reproduction of that artifact.
package mobilestorage

import (
	"testing"

	"mobilestorage/internal/array"
	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/experiments"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/index"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

const seed = experiments.DefaultSeed

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Device == "intel" && r.Operation == "write" {
					b.ReportMetric(r.Compressed4K, "intel-wr-4K-KB/s")
					b.ReportMetric(r.Compressed1M, "intel-wr-1M-KB/s")
				}
			}
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2()) == 0 {
			b.Fatal("empty catalog")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Name == "mac" {
					b.ReportMetric(r.DistinctKBytes, "mac-distinct-KB")
				}
			}
		}
	}
}

func benchTable4(b *testing.B, traceName string) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(traceName, seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				switch {
				case r.Device.Name == "cu140" && r.Device.Source == "datasheet":
					b.ReportMetric(r.EnergyJ, "disk-J")
				case r.Device.Name == "intel" && r.Device.Source == "datasheet":
					b.ReportMetric(r.EnergyJ, "flashcard-J")
				}
			}
		}
	}
}

func BenchmarkTable4Mac(b *testing.B) { benchTable4(b, "mac") }
func BenchmarkTable4Dos(b *testing.B) { benchTable4(b, "dos") }
func BenchmarkTable4HP(b *testing.B)  { benchTable4(b, "hp") }

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				if s.Label == "intel compressed" {
					b.ReportMetric(s.Points[len(s.Points)-1].LatencyMs, "intel-final-lat-ms")
				}
			}
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig2(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var lo, hi float64
			for _, p := range points {
				if p.Trace == "mac" && p.Utilization == 0.40 {
					lo = p.EnergyJ
				}
				if p.Trace == "mac" && p.Utilization == 0.95 {
					hi = p.EnergyJ
				}
			}
			if lo > 0 {
				b.ReportMetric(hi/lo, "mac-energy-95/40")
			}
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig3(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(series) == 3 {
			last := series[2].Points
			b.ReportMetric(last[len(last)-1].ThroughputKBs, "9.5MB-live-KB/s")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig4(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var e34, e35 float64
			for _, p := range points {
				if p.Device == "intel" && p.DRAMKB == 0 {
					switch p.FlashMB {
					case 34:
						e34 = p.EnergyJ
					case 35:
						e35 = p.EnergyJ
					}
				}
			}
			if e34 > 0 {
				b.ReportMetric((1-e35/e34)*100, "energy-drop-34to35-%")
			}
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig5(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				if p.Trace == "mac" && p.SRAMKB == 32 && p.NormalizedWrite > 0 {
					b.ReportMetric(1/p.NormalizedWrite, "mac-32KB-write-speedup")
				}
			}
		}
	}
}

func BenchmarkAsyncCleaning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AsyncCleaning(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Trace == "mac" {
					b.ReportMetric(r.Improvement*100, "mac-write-improvement-%")
				}
			}
		}
	}
}

func BenchmarkValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Validate(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Device == "sdp10" {
					b.ReportMetric(r.WriteRatio, "sdp10-sim/testbed")
				}
			}
		}
	}
}

func BenchmarkWear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Wear(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Trace == "mac" && r.Utilization == 0.95 {
					b.ReportMetric(float64(r.MaxErase), "mac-95%-max-erase")
				}
			}
		}
	}
}

func BenchmarkBatteryLife(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BatteryLife(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Trace == "mac" && r.Alternative == "intel/datasheet" && r.StorageFraction == 0.20 {
					b.ReportMetric(r.LifeExtension*100, "headline-extension-%")
				}
			}
		}
	}
}

func BenchmarkAblateCleaner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CleanerPolicies(seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateFlashSRAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FlashSRAM(seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateSeries2Plus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Series2Plus(seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateWriteBack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WriteBack(seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateSpinDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SpinDownPolicies(seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateWearLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WearLeveling(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Trace == "mac" && r.Leveling != "off" {
					b.ReportMetric(r.Spread, "mac-leveled-max/mean")
				}
			}
		}
	}
}

func BenchmarkHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.HybridComparison(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var disk, hyb float64
			for _, r := range rows {
				if r.Trace == "mac" {
					switch {
					case r.SpinUps > 0 && disk == 0:
						disk = r.EnergyJ
					default:
						hyb = r.EnergyJ
					}
				}
			}
			if disk > 0 && hyb > 0 {
				b.ReportMetric((1-hyb/disk)*100, "mac-hybrid-saving-%")
			}
		}
	}
}

func BenchmarkEnvy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Envy(seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Utilization == 0.80 {
					b.ReportMetric(r.CleaningFraction*100, "cleaning-at-80%-%")
				}
			}
		}
	}
}

// Observability overhead guard: the same flash-card simulation with a nil
// scope (instrumentation compiled in but disabled), with a live metrics
// registry, and with full event tracing into a ring buffer. The nil-scope
// run is the hot path every experiment takes; its ns/op must stay within
// 2% of what it was before the obs layer existed (numbers documented in
// docs/OBSERVABILITY.md). Compare with:
//
//	go test -bench='BenchmarkRun(Nil|Active|Tracing)' -count=10 | benchstat
func benchRunScope(b *testing.B, sc *obs.Scope) { benchRunFaults(b, sc, nil) }

func benchRunFaults(b *testing.B, sc *obs.Scope, plan *fault.Plan) {
	tr, err := workload.Synth(workload.SynthConfig{Seed: 7, Ops: 4000})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Kind:            core.FlashCard,
		Trace:           tr,
		FlashCardParams: device.IntelSeries2Datasheet(),
		DRAMBytes:       512 * units.KB,
		Scope:           sc,
		Faults:          plan,
		FaultSeed:       1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunNilScope(b *testing.B) { benchRunScope(b, nil) }

// BenchmarkFaultOff pins the fault-layer overhead budget. It runs the same
// flash-card simulation as BenchmarkRunNilScope with a fault plan armed
// that can never fire — zero error rates and an unreachable wear-out
// threshold — so every per-operation injector hook (attempt draws, wear-out
// checks, power-fail schedule lookups) executes while injecting nothing.
// The simulated result is identical to the plan-free run; only the hook
// cost differs. `make bench-gate` compares the two from the same process
// (benchdiff -ratio) and fails past +2%, the same budget the disabled
// observability layer lives under (docs/OBSERVABILITY.md).
func BenchmarkFaultOff(b *testing.B) {
	benchRunFaults(b, nil, &fault.Plan{WearOutAfter: 1 << 60})
}

// BenchmarkArrayMirror pins the array layer's healthy-path overhead
// budget. It runs the BenchmarkRunNilScope simulation through a one-member
// mirror — the composite device machinery (fan-out loop, acked-write
// ledger, death checks) wrapped around the same single flash card — so the
// simulated result matches the bare-card run and only the wrapper cost
// differs. `make bench-gate` compares the two from the same process
// (benchdiff -ratio) and fails past +5%.
func BenchmarkArrayMirror(b *testing.B) {
	spec, err := array.ParseSpec("mirror:1xflashcard")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Synth(workload.SynthConfig{Seed: 7, Ops: 4000})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Trace:           tr,
		Array:           spec,
		FlashCardParams: device.IntelSeries2Datasheet(),
		DRAMBytes:       512 * units.KB,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunActiveScope(b *testing.B) {
	benchRunScope(b, obs.NewScope(obs.NewRegistry(), nil))
}

func BenchmarkRunTracingScope(b *testing.B) {
	benchRunScope(b, obs.NewScope(obs.NewRegistry(), obs.NewRing(1<<16)))
}

func BenchmarkSeedSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SeedSensitivity("mac", []int64{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Device == "intel datasheet" {
					b.ReportMetric(r.DiskRatio.Mean(), "disk/intel-ratio")
				}
			}
		}
	}
}

// BenchmarkExtentCoalesce measures trace preprocessing — validation,
// placement, and extent-run coalescing — over the largest generated
// workload. The figure sweeps memoize PrepareTrace, so this pins its
// standalone cost and the coalescer's throughput on a real record stream.
func BenchmarkExtentCoalesce(b *testing.B) {
	tr, err := experiments.Workload("mac", seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.PrepareTrace(tr)
		if p.Err() != nil {
			b.Fatal(p.Err())
		}
	}
}

// BenchmarkFig2Seq replays a sequential-heavy variant of the Figure 2
// flash-card sweep: the dos generator pushed to a 0.95 sequential fraction
// produces long byte-contiguous runs, the best case for extent batching.
// (The real traces coalesce to mean run lengths of only 1.2–1.3, so this
// bounds what batching can deliver rather than what the figures see.)
func BenchmarkFig2Seq(b *testing.B) {
	wc := workload.Dos(seed)
	wc.Name = "dos-seq"
	wc.SequentialFraction = 0.95
	wc.WriteBurstStickiness = 0.90
	tr, err := workload.Generate(wc)
	if err != nil {
		b.Fatal(err)
	}
	prep := core.PrepareTrace(tr)
	if prep.Err() != nil {
		b.Fatal(prep.Err())
	}
	utils := []float64{0.40, 0.60, 0.80, 0.95}
	seg := device.IntelSeries2Datasheet().SegmentSize
	capacity := units.CeilDiv(units.Bytes(float64(prep.Footprint())/utils[0]), seg) * seg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, util := range utils {
			cfg := core.Config{
				Trace:           tr,
				Prep:            prep,
				DRAMBytes:       2 * units.MB,
				Kind:            core.FlashCard,
				FlashCardParams: device.IntelSeries2Datasheet(),
				FlashCapacity:   capacity,
				StoredData:      units.Bytes(float64(capacity) * util),
			}
			if _, err := core.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchIndex regenerates one engine's indexbench sweep (4 devices × 8
// utilizations) end to end: index-engine trace generation is memoized, so
// ns/op measures the 32 device replays — the cost that dominates the
// indexbench figure. The reported metric pins the engine's index-level
// write amplification, the quantity the figure's story turns on.
func benchIndex(b *testing.B, engine string) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.IndexBenchEngine(index.EngineKind(engine), seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(points[0].IndexAmp, "index-write-amp")
		}
	}
}

func BenchmarkIndexBTree(b *testing.B) { benchIndex(b, "btree") }
func BenchmarkIndexLSM(b *testing.B)   { benchIndex(b, "lsm") }
