// Package mobilestorage is a trace-driven simulator of mobile-computer
// storage hierarchies: a from-scratch reproduction of Douglis et al.,
// "Storage Alternatives for Mobile Computers" (OSDI 1994).
//
// The implementation lives under internal/ (see README.md for the map);
// the executables under cmd/ and the runnable examples under examples/
// are the supported entry points. This root package exists to host the
// module documentation and the per-table/figure benchmark harness
// (bench_test.go).
package mobilestorage
