package flashdisk

import (
	"math"
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

func params() device.FlashDiskParams { return device.SDP5Datasheet() }

func wr(at units.Time, size units.Bytes) device.Request {
	return device.Request{Time: at, Op: trace.Write, File: 1, Addr: 0, Size: size}
}

func rd(at units.Time, size units.Bytes) device.Request {
	return device.Request{Time: at, Op: trace.Read, File: 1, Addr: 0, Size: size}
}

func TestSyncWriteTime(t *testing.T) {
	f, err := New(params(), 10*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	// Coupled erase+write: 75 KB at 75 KB/s = 1 s, plus 1 ms latency.
	done := f.Access(wr(0, 75*units.KB))
	want := units.Second + units.Millisecond
	if math.Abs(float64(done-want)) > 1000 {
		t.Errorf("sync write completion = %v, want ≈%v", done, want)
	}
}

func TestReadTime(t *testing.T) {
	f, _ := New(params(), 10*units.MB)
	// 800 KB/s reads: 80 KB in 100 ms + 1 ms latency.
	done := f.Access(rd(0, 80*units.KB))
	want := 101 * units.Millisecond
	if math.Abs(float64(done-want)) > 1000 {
		t.Errorf("read completion = %v, want ≈%v", done, want)
	}
}

func TestAsyncFastPath(t *testing.T) {
	f, err := New(params(), 10*units.MB, WithAsyncErase())
	if err != nil {
		t.Fatal(err)
	}
	if f.PreErased() == 0 {
		t.Fatal("async disk shipped with no pre-erased spares")
	}
	// A small write into pre-erased sectors runs at 400 KB/s.
	done := f.Access(wr(0, 4*units.KB))
	want := units.Millisecond + units.TransferTime(4*units.KB, 400)
	if math.Abs(float64(done-want)) > 1000 {
		t.Errorf("async write completion = %v, want ≈%v", done, want)
	}
}

func TestAsyncPoolDepletion(t *testing.T) {
	f, _ := New(params(), 10*units.MB, WithAsyncErase())
	pool := f.PreErased()
	// One write bigger than the pool: the shortfall pays erase+write.
	size := units.Bytes(pool+100) * 512
	done := f.Access(wr(0, size))
	fastOnly := units.Millisecond + units.TransferTime(size, 400)
	if done <= fastOnly {
		t.Errorf("oversized write (%v) did not pay synchronous erasure", done)
	}
	if f.PreErased() != 0 {
		t.Errorf("pool not depleted: %d", f.PreErased())
	}
}

func TestAsyncBackgroundReplenish(t *testing.T) {
	f, _ := New(params(), 10*units.MB, WithAsyncErase())
	pool := f.PreErased()
	size := units.Bytes(pool) * 512
	done := f.Access(wr(0, size)) // exactly drains the pool
	if f.PreErased() != 0 {
		t.Fatalf("pool = %d after draining write", f.PreErased())
	}
	// Idle long enough to erase everything stale: pool*512B at 150 KB/s.
	need := units.TransferTime(size, 150)
	f.Idle(done + need + units.Second)
	if f.PreErased() != pool {
		t.Errorf("pool = %d after idle, want %d", f.PreErased(), pool)
	}
	if j := f.Meter().StateJ(energy.StateErase); j <= 0 {
		t.Error("background erasure charged no energy")
	}
}

func TestAsyncPartialIdleProgress(t *testing.T) {
	f, _ := New(params(), 10*units.MB, WithAsyncErase())
	pool := f.PreErased()
	done := f.Access(wr(0, units.Bytes(pool)*512))
	// Give the eraser only enough time for half the sectors.
	half := units.TransferTime(units.Bytes(pool)*512, 150) / 2
	f.Idle(done + half)
	got := f.PreErased()
	if got < pool/2-2 || got > pool/2+2 {
		t.Errorf("pool = %d after half the erase time, want ≈%d", got, pool/2)
	}
}

func TestAsyncRequiresCapableDevice(t *testing.T) {
	if _, err := New(device.SDP10Datasheet(), 10*units.MB, WithAsyncErase()); err == nil {
		t.Error("sdp10 accepted async erase")
	}
}

func TestUtilizationIndependence(t *testing.T) {
	// §5.2: the flash disk is immune to storage utilization — write time
	// does not depend on how full the disk is. Emulate by writing after
	// varying amounts of pre-existing traffic.
	service := func(preWrites int) units.Time {
		f, _ := New(params(), 10*units.MB)
		var clock units.Time
		for i := 0; i < preWrites; i++ {
			clock = f.Access(wr(clock, 32*units.KB))
		}
		done := f.Access(wr(clock, 8*units.KB))
		return done - clock
	}
	if a, b := service(0), service(200); a != b {
		t.Errorf("write time depends on history: %v vs %v", a, b)
	}
}

func TestWearReporting(t *testing.T) {
	f, _ := New(params(), units.MB)
	f.Access(wr(0, 100*512))
	counts := f.EraseCounts()
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != 100 {
		t.Errorf("total erases = %d, want 100", sum)
	}
	// Wear-leveled: max and min differ by at most 1.
	var mn, mx int64 = counts[0], counts[0]
	for _, c := range counts {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	if mx-mn > 1 {
		t.Errorf("wear not leveled: min %d max %d", mn, mx)
	}
	if f.EnduranceCycles() != 100_000 {
		t.Errorf("endurance = %d", f.EnduranceCycles())
	}
}

func TestDeleteIsFree(t *testing.T) {
	f, _ := New(params(), units.MB)
	if done := f.Access(device.Request{Time: 7, Op: trace.Delete, Size: units.KB}); done != 7 {
		t.Errorf("delete completion = %v", done)
	}
}

func TestQueueing(t *testing.T) {
	f, _ := New(params(), 10*units.MB)
	first := f.Access(wr(0, 75*units.KB)) // ~1 s
	second := f.Access(rd(first/2, units.KB))
	if second <= first {
		t.Error("read did not queue behind the long write")
	}
}

func TestStandbyEnergy(t *testing.T) {
	f, _ := New(params(), units.MB)
	f.Finish(1000 * units.Second)
	want := 1000 * params().StandbyW
	if got := f.Meter().TotalJ(); math.Abs(got-want) > 0.01 {
		t.Errorf("standby energy = %g J, want %g", got, want)
	}
}

func TestCapacityValidation(t *testing.T) {
	if _, err := New(params(), 100); err == nil {
		t.Error("sub-sector capacity accepted")
	}
	p := params()
	p.ReadKBs = 0
	if _, err := New(p, units.MB); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestNames(t *testing.T) {
	f, _ := New(params(), units.MB)
	if f.Name() != "sdp5-datasheet" {
		t.Errorf("Name = %q", f.Name())
	}
	fa, _ := New(params(), units.MB, WithAsyncErase())
	if fa.Name() != "sdp5-datasheet-async" {
		t.Errorf("async Name = %q", fa.Name())
	}
}
