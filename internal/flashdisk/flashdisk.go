// Package flashdisk models a flash disk emulator (SunDisk SDP series): a
// flash memory card behind a conventional disk interface that transfers in
// multiples of a 512-byte sector and erases one sector at a time.
//
// Two erase disciplines are modeled (§5.3):
//
//   - On-demand (SDP10, SDP5): erasure is coupled with the write, giving
//     the low effective write bandwidth of Table 2 (50–75 KB/s).
//   - Asynchronous (SDP5A): sectors freed by overwrites are erased in the
//     background at the standalone erase bandwidth (150 KB/s); writes that
//     find pre-erased sectors proceed at the much higher pre-erased write
//     bandwidth (400 KB/s).
//
// Because the erase unit equals the transfer unit, the flash disk never
// copies live data, so — unlike the flash card — its behavior is immune to
// storage utilization (§5.2).
package flashdisk

import (
	"fmt"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// FlashDisk is a flash disk emulator device model.
type FlashDisk struct {
	p     device.FlashDiskParams
	meter *energy.Meter

	asyncErase bool
	capacity   units.Bytes

	lastUpdate units.Time
	busyUntil  units.Time

	// Sector pools for the asynchronous-erase discipline. The device remaps
	// logical sectors internally: an overwrite lands in a pre-erased
	// physical sector and the stale previous copy joins the erase queue.
	preErased  int64 // sectors erased and ready to accept writes
	stale      int64 // sectors awaiting background erasure
	spareTotal int64 // total spare sectors (preErased + stale + in-flight)

	// eraseProgress holds background erase progress (µs of work done toward
	// the next stale sector) across idle periods.
	eraseProgress units.Time

	totalErases  int64
	totalSectors int64
	ops          int64

	// Memoized transfer times for the part's fixed datasheet bandwidths;
	// results are bit-identical to calling units.TransferTime directly.
	// perSectorErase is the constant background-erase time per sector.
	readMemo       units.TransferMemo
	coupledMemo    units.TransferMemo
	preErasedMemo  units.TransferMemo
	eraseMemo      units.TransferMemo
	perSectorErase units.Time

	// inj injects transient errors and wear-out; deadSectors counts sectors
	// retired after crossing the wear-out threshold (the controller
	// wear-levels uniformly, so one sector dies per threshold's worth of
	// total erasures).
	inj         *fault.Injector
	deadSectors int64

	// Observability (nil-safe no-ops without a scope).
	sc      *obs.Scope
	evName  string
	cErases *obs.Counter
	cWrites *obs.Counter
	cReads  *obs.Counter
}

// Option configures a FlashDisk.
type Option func(*FlashDisk)

// WithAsyncErase enables the SDP5A asynchronous-erasure discipline. It is
// an error to enable it on a part whose parameters lack standalone erase
// bandwidths; New reports that.
func WithAsyncErase() Option {
	return func(f *FlashDisk) { f.asyncErase = true }
}

// WithScope attaches an observability scope: write/erase counters and
// events. A nil scope is free.
func WithScope(sc *obs.Scope) Option {
	return func(f *FlashDisk) {
		f.sc = sc
		f.cErases = sc.Counter("flashdisk.erased_sectors")
		f.cWrites = sc.Counter("flashdisk.writes")
		f.cReads = sc.Counter("flashdisk.reads")
	}
}

// WithFaults attaches a fault injector: transient read/write errors are
// retried (each physical attempt charges full time, energy, and — for
// writes — erasures), and wear-out retires sectors: under the asynchronous
// discipline each death shrinks the spare pool, degrading write performance
// toward the coupled path. A nil injector is free.
func WithFaults(in *fault.Injector) Option {
	return func(f *FlashDisk) { f.inj = in }
}

// spareSectors is the pool of spare sectors available for remapping under
// the asynchronous discipline. SunDisk did not publish the spare-area
// size; a small fixed pool (16 KB) is what makes large or tightly clustered
// writes fall back to coupled erase+write, keeping the §5.3 improvement in
// the paper's 56-61% band rather than at the 400/75 bandwidth ratio.
const spareSectors = 32

// New builds a flash disk of the given capacity.
func New(p device.FlashDiskParams, capacity units.Bytes, opts ...Option) (*FlashDisk, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if capacity < p.SectorSize {
		return nil, fmt.Errorf("flashdisk %s: capacity %v below one sector", p.Name, capacity)
	}
	f := &FlashDisk{
		p:              p,
		meter:          energy.NewMeter(),
		capacity:       capacity,
		totalSectors:   int64(capacity / p.SectorSize),
		readMemo:       units.NewTransferMemo(p.ReadKBs),
		coupledMemo:    units.NewTransferMemo(p.WriteCoupledKBs),
		preErasedMemo:  units.NewTransferMemo(p.WritePreErasedKBs),
		eraseMemo:      units.NewTransferMemo(p.EraseKBs),
		perSectorErase: units.TransferTime(p.SectorSize, p.EraseKBs),
	}
	for _, o := range opts {
		o(f)
	}
	f.evName = f.Name()
	if f.asyncErase {
		if !p.SupportsAsyncErase() {
			return nil, fmt.Errorf("flashdisk %s: part does not support asynchronous erasure", p.Name)
		}
		f.spareTotal = spareSectors
		if f.spareTotal > f.totalSectors/2 {
			f.spareTotal = f.totalSectors / 2
		}
		f.preErased = f.spareTotal // spares ship erased
	}
	return f, nil
}

// Name implements device.Device.
func (f *FlashDisk) Name() string {
	mode := ""
	if f.asyncErase {
		mode = "-async"
	}
	return fmt.Sprintf("%s-%s%s", f.p.Name, f.p.Source, mode)
}

// Meter implements device.Device.
func (f *FlashDisk) Meter() *energy.Meter { return f.meter }

// Params returns the device parameters.
func (f *FlashDisk) Params() device.FlashDiskParams { return f.p }

// PreErased returns the current pre-erased sector count (async mode).
func (f *FlashDisk) PreErased() int64 { return f.preErased }

// TotalErases returns the total number of sector erasures performed.
func (f *FlashDisk) TotalErases() int64 { return f.totalErases }

// Idle implements device.Device: standby energy plus background erasure.
func (f *FlashDisk) Idle(now units.Time) { f.advance(now) }

// Finish implements device.Device.
func (f *FlashDisk) Finish(now units.Time) { f.advance(now) }

// Access implements device.Device.
func (f *FlashDisk) Access(req device.Request) units.Time {
	if req.Op == trace.Delete {
		// The disk interface has no delete; freed sectors become stale only
		// when overwritten. Metadata-only, instantaneous.
		return req.Time
	}
	start := units.Max(req.Time, f.busyUntil)
	f.advance(start)

	var service units.Time
	switch req.Op {
	case trace.Read:
		service = f.p.AccessLatency + f.readMemo.Time(req.Size)
		f.meter.AccrueSlot(energy.SlotActive, f.p.ActiveW, service)
		if f.inj != nil {
			if att, backoff := f.inj.Attempts(fault.OpRead, f.evName, start); att > 1 {
				extra := service * units.Time(att-1)
				f.meter.AccrueSlot(energy.SlotActive, f.p.ActiveW, extra)
				f.meter.AccrueSlot(energy.SlotStandby, f.p.StandbyW, backoff)
				service += extra + backoff
			}
		}
		f.cReads.Inc()
	case trace.Write:
		service = f.writeTime(req.Size, start)
		if f.inj != nil {
			// Each failed program attempt repeats the whole transfer — with
			// its full energy, pool movement, and erasures — plus the
			// backoff wait at standby power.
			att, backoff := f.inj.Attempts(fault.OpWrite, f.evName, start)
			for a := int64(1); a < att; a++ {
				service += f.writeTime(req.Size, start+service)
			}
			if backoff > 0 {
				f.meter.AccrueSlot(energy.SlotStandby, f.p.StandbyW, backoff)
				service += backoff
			}
		}
		f.cWrites.Inc()
		if f.sc.Tracing() {
			f.sc.Emit(obs.Event{T: int64(start), Kind: obs.EvFlashDiskWrite, Dev: f.evName,
				Addr: int64(req.Addr), Size: int64(req.Size), Dur: int64(service)})
		}
	}
	completion := start + service
	f.lastUpdate = completion
	f.busyUntil = completion
	f.ops++
	return completion
}

// ReadExtent services a coalesced run of read requests back to back,
// equivalent by construction to Idle(reqs[k].Time) followed by
// Access(reqs[k]) for each k in order. completions[k] receives request k's
// completion time.
func (f *FlashDisk) ReadExtent(reqs []device.Request, completions []units.Time) {
	for k := range reqs {
		f.advance(reqs[k].Time)
		completions[k] = f.Access(reqs[k])
	}
}

// WriteExtent is ReadExtent's write-path counterpart.
func (f *FlashDisk) WriteExtent(reqs []device.Request, completions []units.Time) {
	for k := range reqs {
		f.advance(reqs[k].Time)
		completions[k] = f.Access(reqs[k])
	}
}

// writeTime computes and accounts the service time of a write arriving at
// start (the instant is only used for event timestamps).
func (f *FlashDisk) writeTime(size units.Bytes, start units.Time) units.Time {
	sectors := int64(units.CeilDiv(size, f.p.SectorSize))
	if !f.asyncErase {
		// Erase coupled with write at the low combined bandwidth.
		t := f.p.AccessLatency + f.coupledMemo.Time(size)
		f.meter.AccrueSlot(energy.SlotActive, f.p.WriteW, t)
		f.recordErases(sectors, start, true)
		return t
	}
	// Asynchronous discipline: use pre-erased sectors first, erase the
	// shortfall synchronously.
	fast := sectors
	if fast > f.preErased {
		fast = f.preErased
	}
	slow := sectors - fast
	f.preErased -= fast
	// Every overwritten sector leaves a stale previous copy behind, bounded
	// by the spare pool.
	f.stale += sectors
	if f.preErased+f.stale > f.spareTotal {
		f.stale = f.spareTotal - f.preErased
	}

	t := f.p.AccessLatency
	if fast > 0 {
		t += f.preErasedMemo.Time(units.Bytes(fast) * f.p.SectorSize)
	}
	if slow > 0 {
		b := units.Bytes(slow) * f.p.SectorSize
		t += f.eraseMemo.Time(b) + f.preErasedMemo.Time(b)
		f.recordErases(slow, start, true)
	}
	f.meter.AccrueSlot(energy.SlotActive, f.p.WriteW, t)
	return t
}

// recordErases accounts sector erasures for both the totals and the
// observability layer. sync marks erasures performed on the write path.
func (f *FlashDisk) recordErases(sectors int64, at units.Time, sync bool) {
	f.totalErases += sectors
	f.cErases.Add(sectors)
	if f.sc.Tracing() {
		var addr int64
		if sync {
			addr = 1
		}
		f.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvFlashDiskErase, Dev: f.evName,
			Addr: addr, Size: sectors})
	}
	if f.inj != nil {
		f.checkWear(at)
	}
}

// checkWear retires sectors that crossed the wear-out threshold. The SDP
// controller wear-levels uniformly (see EraseCounts), so one sector dies
// per WearOutEvery total erasures. Under the asynchronous discipline each
// death permanently shrinks the spare pool — capacity degradation that
// pushes writes back onto the coupled erase+write path; without spares the
// death is recorded as remapping capacity the model cannot shrink further.
func (f *FlashDisk) checkWear(at units.Time) {
	every := f.inj.WearOutEvery()
	if every == 0 {
		return
	}
	worn := f.totalErases / every
	for f.deadSectors < worn {
		unit := f.deadSectors
		f.deadSectors++
		if f.asyncErase && f.spareTotal > 1 {
			f.spareTotal--
			if f.preErased > f.spareTotal {
				f.preErased = f.spareTotal
			}
			if f.preErased+f.stale > f.spareTotal {
				f.stale = f.spareTotal - f.preErased
			}
			f.inj.RecordRemap(f.evName, unit, f.spareTotal, at)
		} else {
			f.inj.RecordSpareExhausted(f.evName, unit, at)
		}
	}
}

// DeadSectors returns the number of sectors retired by injected wear-out.
func (f *FlashDisk) DeadSectors() int64 { return f.deadSectors }

// Crash implements device.Crasher: a power failure drops the controller's
// in-flight background-erase progress; flash contents and the remapping
// tables survive in non-volatile media.
func (f *FlashDisk) Crash(at units.Time) {
	f.advance(at)
	f.eraseProgress = 0
	if f.busyUntil > at {
		f.busyUntil = at
	}
}

// Recover implements device.Crasher: the controller re-checks its pool
// bookkeeping on restart; an inconsistent pool would be a model bug.
func (f *FlashDisk) Recover(at units.Time) units.Time {
	if f.preErased < 0 || f.stale < 0 || f.preErased+f.stale > f.spareTotal {
		f.inj.Violatef("flashdisk %s: pool inconsistent after crash: preErased=%d stale=%d spareTotal=%d",
			f.p.Name, f.preErased, f.stale, f.spareTotal)
	}
	return at
}

// advance integrates standby energy and, in async mode, background erasure
// over [lastUpdate, now].
func (f *FlashDisk) advance(now units.Time) {
	if now <= f.lastUpdate {
		return
	}
	gap := now - f.lastUpdate
	var spent units.Time // erase time spent within this gap
	if f.asyncErase && f.stale > 0 {
		perSector := f.perSectorErase
		progress := f.eraseProgress + gap
		erased := int64(progress / perSector)
		if erased >= f.stale {
			// Background eraser drains the queue and goes quiet.
			erased = f.stale
			spent = units.Time(erased)*perSector - f.eraseProgress
			f.eraseProgress = 0
		} else {
			// The whole gap goes to erasing; save partial progress.
			spent = gap
			f.eraseProgress = progress - units.Time(erased)*perSector
		}
		f.stale -= erased
		f.preErased += erased
		if erased > 0 {
			f.recordErases(erased, f.lastUpdate+spent, false)
		}
		f.meter.AccrueSlot(energy.SlotErase, f.p.WriteW, spent)
	}
	f.meter.AccrueSlot(energy.SlotStandby, f.p.StandbyW, gap-spent)
	f.lastUpdate = now
}

// EraseCounts implements device.WearReporter. The SDP controller
// wear-levels internally, so erasures are reported as uniformly spread
// across all sectors.
func (f *FlashDisk) EraseCounts() []int64 {
	per := f.totalErases / f.totalSectors
	rem := f.totalErases % f.totalSectors
	counts := make([]int64, f.totalSectors)
	for i := range counts {
		counts[i] = per
		if int64(i) < rem {
			counts[i]++
		}
	}
	return counts
}

// EnduranceCycles implements device.WearReporter.
func (f *FlashDisk) EnduranceCycles() int64 { return f.p.EnduranceCycles }

var (
	_ device.Device       = (*FlashDisk)(nil)
	_ device.WearReporter = (*FlashDisk)(nil)
	_ device.Crasher      = (*FlashDisk)(nil)
)
