package flashdisk

import (
	"math"
	"testing"

	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/units"
)

// TestWriteRetryChargesWearPerAttempt pins the satellite fix on the flash
// disk: every failed-then-retried program attempt repeats the whole coupled
// erase+write — time, energy, AND erasures — so retries age the media.
func TestWriteRetryChargesWearPerAttempt(t *testing.T) {
	base, _ := New(params(), 10*units.MB)
	baseDone := base.Access(wr(0, 2*units.KB))
	baseErases := base.TotalErases()
	baseActiveJ := base.Meter().StateJ(energy.StateActive)
	if baseErases == 0 {
		t.Fatal("baseline coupled write performed no erasures")
	}

	in := fault.NewInjector(&fault.Plan{
		WriteErrorRate: 1, MaxRetries: 1, BackoffUs: 500,
	}, 1, nil)
	f, err := New(params(), 10*units.MB, WithFaults(in))
	if err != nil {
		t.Fatal(err)
	}
	done := f.Access(wr(0, 2*units.KB))

	const attempts, backoffUs = 2, 500
	if want := baseDone*attempts + backoffUs; done != want {
		t.Errorf("retried write completion = %v, want %v", done, want)
	}
	if got := f.TotalErases(); got != attempts*baseErases {
		t.Errorf("retried write erased %d sectors, want %d (wear per physical attempt)",
			got, attempts*baseErases)
	}
	if got := f.Meter().StateJ(energy.StateActive); math.Abs(got-attempts*baseActiveJ) > 1e-12 {
		t.Errorf("active energy = %g J, want %d × %g J", got, attempts, baseActiveJ)
	}
	rep := in.Report()
	if rep.WriteFaults != attempts || rep.Retries != 1 || rep.Exhausted != 1 {
		t.Errorf("report = %+v, want 2 faults / 1 retry / 1 exhausted", rep)
	}
}

// TestWearOutShrinksSparePool drives the flash disk past its wear-out
// threshold and verifies the uniform-wear retirement: one sector dies per
// WearOutEvery total erasures, each death shrinking the async spare pool
// (capacity degradation) until only the structural floor remains.
func TestWearOutShrinksSparePool(t *testing.T) {
	in := fault.NewInjector(&fault.Plan{WearOutAfter: 4}, 1, nil)
	f, err := New(params(), 10*units.MB, WithAsyncErase(), WithFaults(in))
	if err != nil {
		t.Fatal(err)
	}
	pool := f.spareTotal
	at := units.Time(0)
	for i := 0; i < 40; i++ {
		at = f.Access(wr(at, 2*units.KB)) + units.Second
		f.Idle(at) // background eraser refills the pool, adding erasures
	}
	if f.DeadSectors() != f.TotalErases()/4 {
		t.Errorf("dead sectors = %d, want totalErases/4 = %d", f.DeadSectors(), f.TotalErases()/4)
	}
	if f.DeadSectors() == 0 {
		t.Fatal("workload never crossed the wear-out threshold")
	}
	if f.spareTotal >= pool {
		t.Errorf("spare pool did not shrink: %d → %d", pool, f.spareTotal)
	}
	if f.preErased+f.stale > f.spareTotal {
		t.Errorf("pool bookkeeping inconsistent: preErased=%d stale=%d spareTotal=%d",
			f.preErased, f.stale, f.spareTotal)
	}
	rep := in.Report()
	if rep.Remaps == 0 {
		t.Error("no remaps recorded")
	}
	if rep.Remaps+rep.SparesExhausted != f.DeadSectors() {
		t.Errorf("remaps (%d) + spares exhausted (%d) != dead sectors (%d)",
			rep.Remaps, rep.SparesExhausted, f.DeadSectors())
	}
}

// TestCrashDropsEraseProgress pins flash-disk crash semantics: in-flight
// background-erase progress is volatile and lost; the pools stay consistent
// and recovery reports no violations.
func TestCrashDropsEraseProgress(t *testing.T) {
	in := fault.NewInjector(&fault.Plan{PowerFailAtUs: []int64{1}}, 1, nil)
	f, err := New(params(), 10*units.MB, WithAsyncErase(), WithFaults(in))
	if err != nil {
		t.Fatal(err)
	}
	done := f.Access(wr(0, units.Bytes(f.spareTotal)*f.p.SectorSize))
	// Let the background eraser make partial progress on one sector.
	f.Idle(done + units.Millisecond)
	f.Crash(done + units.Millisecond)
	if f.eraseProgress != 0 {
		t.Error("partial erase progress survived the crash")
	}
	f.Recover(done + units.Millisecond)
	if v := in.Report().Violations; len(v) != 0 {
		t.Errorf("recovery violations: %v", v)
	}
}
