// Package cache models the DRAM buffer cache that fronts every storage
// configuration in the paper (§2, §4.2): block-granular, LRU, and
// write-through by default ("this models the behavior of the Macintosh
// operating system and until recently the DOS file system"). A write-back
// mode is provided for the ablation the paper mentions but does not
// simulate ("a write-back cache might avoid some erasures at the cost of
// occasional data loss").
//
// The implementation is allocation-free on the lookup/insert hot path: all
// LRU nodes live in one slab sized at construction, linked by index, and
// block numbers resolve through a flat table (small block numbers) or a
// spill map (adversarial ones). RefCache keeps the original map-and-pointer
// implementation for differential testing.
package cache

import (
	"fmt"
	"math/bits"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/units"
)

// Extent is a contiguous byte range in device address space.
type Extent struct {
	Addr units.Bytes
	Size units.Bytes
}

// denseBlockLimit bounds the flat block-index table: block numbers below it
// index a slice (grown on demand, ≤ 8 MB fully grown), numbers at or above
// it fall back to a map. Real replays stay far below it — block numbers are
// bounded by the trace footprint over the block size.
const denseBlockLimit = 1 << 21

// nilNode marks list ends and empty free lists in the node slab.
const nilNode = int32(-1)

// node is one cached block in the slab-backed intrusive LRU list.
type node struct {
	block      int64
	prev, next int32
	dirty      bool
}

// Cache is a block-granular LRU buffer cache.
type Cache struct {
	params    device.MemoryParams
	size      units.Bytes
	blockSize units.Bytes
	capBlocks int
	writeBack bool

	// blockShift replaces the per-access division by blockSize with a shift
	// when the block size is a power of two (it always is in practice).
	blockShift uint8
	shiftOK    bool

	// nodes is the slab holding every LRU entry; alloc bump-allocates
	// never-used slots, free chains returned ones through next.
	nodes []node
	alloc int32
	free  int32
	used  int
	// head is most-recently used; tail is least-recently used.
	head, tail int32

	// denseIdx[b] is the slab index + 1 of block b's node (0 = absent);
	// sparseIdx covers blocks ≥ denseBlockLimit, nil until needed.
	denseIdx  []int32
	sparseIdx map[int64]int32

	// xferMemo caches DRAM transfer times per size (bit-identical to
	// params.AccessTime, which divides by the same fixed bandwidth).
	xferMemo units.TransferMemo

	// scratch buffers slab indices between Contains's presence pass and its
	// touch pass so each block resolves through the index exactly once.
	scratch []int32

	meter      *energy.Meter
	lastUpdate units.Time

	hits, misses int64

	// Observability (nil-safe no-ops without a scope).
	cHits   *obs.Counter
	cMisses *obs.Counter
}

// Option configures a Cache.
type Option func(*Cache)

// WithScope attaches an observability scope: hit/miss counters. Events are
// emitted by the simulation core, which knows the request timestamps. A nil
// scope is free.
func WithScope(sc *obs.Scope) Option {
	return func(c *Cache) {
		c.cHits = sc.Counter("cache.hits")
		c.cMisses = sc.Counter("cache.misses")
	}
}

// New builds a cache of the given total size; size must hold at least one
// block. The zero-size case is handled by callers (they bypass the cache
// entirely, as the hp simulations require).
func New(params device.MemoryParams, size, blockSize units.Bytes, writeBack bool, opts ...Option) (*Cache, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cache: block size must be positive")
	}
	capBlocks := int(size / blockSize)
	if capBlocks < 1 {
		return nil, fmt.Errorf("cache: size %v holds no %v blocks", size, blockSize)
	}
	if capBlocks > 1<<30 {
		return nil, fmt.Errorf("cache: size %v holds %d blocks, beyond the supported 2^30", size, capBlocks)
	}
	c := &Cache{
		params:    params,
		size:      size,
		blockSize: blockSize,
		capBlocks: capBlocks,
		writeBack: writeBack,
		nodes:     make([]node, capBlocks),
		free:      nilNode,
		head:      nilNode,
		tail:      nilNode,
		meter:     energy.NewMeter(),
		xferMemo:  units.NewTransferMemo(params.TransferKBs),
	}
	if blockSize&(blockSize-1) == 0 {
		c.shiftOK = true
		c.blockShift = uint8(bits.TrailingZeros64(uint64(blockSize)))
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Size returns the configured capacity in bytes.
func (c *Cache) Size() units.Bytes { return c.size }

// Meter exposes the cache's energy accounting.
func (c *Cache) Meter() *energy.Meter { return c.meter }

// Hits and Misses report lookup outcomes.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return c.used }

// AccessTime returns the DRAM transfer time for size bytes and charges the
// active energy for it.
func (c *Cache) AccessTime(size units.Bytes) units.Time {
	t := c.xferMemo.Time(size)
	c.meter.AccrueSlot(energy.SlotActive, c.params.ActiveW, t)
	return t
}

// AccrueStandby integrates retention (refresh) power up to now. The paper's
// §5.4 trade-off — extra DRAM costs energy even when idle — comes from
// exactly this term.
func (c *Cache) AccrueStandby(now units.Time) {
	if now <= c.lastUpdate {
		return
	}
	c.meter.AccrueSlot(energy.SlotStandby, c.params.StandbyWPerMB*c.size.MBytes(), now-c.lastUpdate)
	c.lastUpdate = now
}

// Contains reports whether every block of [addr, addr+size) is cached,
// touching the blocks' recency and recording a hit or miss.
func (c *Cache) Contains(addr, size units.Bytes) bool {
	if size <= 0 {
		return false
	}
	first, last := c.blockRange(addr, size)
	n := last - first + 1
	if int64(len(c.scratch)) < n {
		c.scratch = make([]int32, n)
	}
	for b := first; b <= last; b++ {
		idx, ok := c.lookup(b)
		if !ok {
			c.misses++
			c.cMisses.Inc()
			return false
		}
		c.scratch[b-first] = idx
	}
	// Touching is deferred until every block is known present: a miss on a
	// later block must leave recency untouched, exactly as the original
	// two-pass lookup did.
	for _, idx := range c.scratch[:n] {
		c.touch(idx)
	}
	c.hits++
	c.cHits.Inc()
	return true
}

// Insert caches every block of [addr, addr+size), marking them dirty when
// requested (write-back mode). It returns the dirty extents evicted to make
// room, which the caller must write to the device. In write-through mode
// nothing is ever dirty and the returned slice is always empty.
func (c *Cache) Insert(addr, size units.Bytes, dirty bool) []Extent {
	if size <= 0 {
		return nil
	}
	if !c.writeBack {
		dirty = false
	}
	var evicted []Extent
	first, last := c.blockRange(addr, size)
	for b := first; b <= last; b++ {
		if idx, ok := c.lookup(b); ok {
			n := &c.nodes[idx]
			n.dirty = n.dirty || dirty
			c.touch(idx)
			continue
		}
		for c.used >= c.capBlocks {
			if e := c.evictLRU(); e != nil {
				evicted = append(evicted, *e)
			}
		}
		idx := c.allocNode(b, dirty)
		c.setIndex(b, idx)
		c.pushFront(idx)
		c.used++
	}
	if evicted == nil {
		// The common case for write-through (nothing is ever dirty): skip
		// the coalesce call entirely.
		return nil
	}
	return coalesce(evicted)
}

// Invalidate drops any cached blocks of [addr, addr+size) without writing
// them back (used for file deletion).
func (c *Cache) Invalidate(addr, size units.Bytes) {
	if size <= 0 {
		return
	}
	first, last := c.blockRange(addr, size)
	for b := first; b <= last; b++ {
		if idx, ok := c.lookup(b); ok {
			c.unlink(idx)
			c.clearIndex(b)
			c.freeNode(idx)
			c.used--
		}
	}
}

// DirtyExtents returns all dirty data as coalesced extents and marks it
// clean (the final write-back flush).
func (c *Cache) DirtyExtents() []Extent {
	var out []Extent
	for idx := c.head; idx != nilNode; idx = c.nodes[idx].next {
		if n := &c.nodes[idx]; n.dirty {
			n.dirty = false
			out = append(out, Extent{Addr: units.Bytes(n.block) * c.blockSize, Size: c.blockSize})
		}
	}
	return coalesce(out)
}

// Crash empties the cache — DRAM loses everything at power failure — and
// returns how many of the lost blocks were dirty. A non-zero return means
// acknowledged writes were lost, which only the write-back ablation can
// legitimately produce; write-through configurations never hold dirty data.
func (c *Cache) Crash() int {
	dirty := 0
	for idx := c.head; idx != nilNode; idx = c.nodes[idx].next {
		if c.nodes[idx].dirty {
			dirty++
		}
	}
	clear(c.denseIdx)
	c.sparseIdx = nil
	c.alloc = 0
	c.free = nilNode
	c.used = 0
	c.head, c.tail = nilNode, nilNode
	return dirty
}

func (c *Cache) blockRange(addr, size units.Bytes) (first, last int64) {
	if c.shiftOK {
		return int64(addr >> c.blockShift), int64((addr + size - 1) >> c.blockShift)
	}
	return int64(addr / c.blockSize), int64((addr + size - 1) / c.blockSize)
}

// lookup resolves a block number to its slab index.
func (c *Cache) lookup(b int64) (int32, bool) {
	if uint64(b) < uint64(len(c.denseIdx)) {
		v := c.denseIdx[b]
		return v - 1, v > 0
	}
	if b >= 0 && b < denseBlockLimit {
		return 0, false // inside the dense range but table not grown there
	}
	v, ok := c.sparseIdx[b]
	return v - 1, ok
}

// setIndex records a block's slab index, growing the dense table on demand.
func (c *Cache) setIndex(b int64, idx int32) {
	if b >= 0 && b < denseBlockLimit {
		if b >= int64(len(c.denseIdx)) {
			if b < int64(cap(c.denseIdx)) {
				// The tail of the backing array is always zero: writes only
				// land below len, and Crash clears everything below len.
				c.denseIdx = c.denseIdx[:b+1]
			} else {
				n := 2 * cap(c.denseIdx)
				if n < 1024 {
					n = 1024
				}
				if b >= int64(n) {
					n = int(b) + 1
				}
				grown := make([]int32, int(b)+1, n)
				copy(grown, c.denseIdx)
				c.denseIdx = grown
			}
		}
		c.denseIdx[b] = idx + 1
		return
	}
	if c.sparseIdx == nil {
		c.sparseIdx = make(map[int64]int32)
	}
	c.sparseIdx[b] = idx + 1
}

func (c *Cache) clearIndex(b int64) {
	if uint64(b) < uint64(len(c.denseIdx)) {
		c.denseIdx[b] = 0
		return
	}
	delete(c.sparseIdx, b)
}

// allocNode takes a slab slot for a new block: reuse a freed slot first,
// else bump-allocate a never-used one.
func (c *Cache) allocNode(b int64, dirty bool) int32 {
	var idx int32
	if c.free != nilNode {
		idx = c.free
		c.free = c.nodes[idx].next
	} else {
		idx = c.alloc
		c.alloc++
	}
	c.nodes[idx] = node{block: b, dirty: dirty, prev: nilNode, next: nilNode}
	return idx
}

func (c *Cache) freeNode(idx int32) {
	c.nodes[idx].next = c.free
	c.free = idx
}

// evictLRU removes the least-recently-used block, returning its extent if
// it was dirty.
func (c *Cache) evictLRU() *Extent {
	idx := c.tail
	if idx == nilNode {
		panic("cache: eviction from empty cache")
	}
	c.unlink(idx)
	n := c.nodes[idx]
	c.clearIndex(n.block)
	c.freeNode(idx)
	c.used--
	if n.dirty {
		return &Extent{Addr: units.Bytes(n.block) * c.blockSize, Size: c.blockSize}
	}
	return nil
}

func (c *Cache) touch(idx int32) {
	if c.head == idx {
		return
	}
	c.unlink(idx)
	c.pushFront(idx)
}

func (c *Cache) pushFront(idx int32) {
	n := &c.nodes[idx]
	n.prev = nilNode
	n.next = c.head
	if c.head != nilNode {
		c.nodes[c.head].prev = idx
	}
	c.head = idx
	if c.tail == nilNode {
		c.tail = idx
	}
}

func (c *Cache) unlink(idx int32) {
	n := &c.nodes[idx]
	if n.prev != nilNode {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nilNode {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nilNode, nilNode
}

// coalesce merges adjacent extents (sorted by address) to turn per-block
// evictions into the fewest device writes.
func coalesce(extents []Extent) []Extent {
	if len(extents) < 2 {
		return extents
	}
	// Insertion sort: eviction batches are tiny.
	for i := 1; i < len(extents); i++ {
		for j := i; j > 0 && extents[j].Addr < extents[j-1].Addr; j-- {
			extents[j], extents[j-1] = extents[j-1], extents[j]
		}
	}
	out := extents[:1]
	for _, e := range extents[1:] {
		lastIdx := len(out) - 1
		if out[lastIdx].Addr+out[lastIdx].Size == e.Addr {
			out[lastIdx].Size += e.Size
		} else {
			out = append(out, e)
		}
	}
	return out
}
