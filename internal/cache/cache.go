// Package cache models the DRAM buffer cache that fronts every storage
// configuration in the paper (§2, §4.2): block-granular, LRU, and
// write-through by default ("this models the behavior of the Macintosh
// operating system and until recently the DOS file system"). A write-back
// mode is provided for the ablation the paper mentions but does not
// simulate ("a write-back cache might avoid some erasures at the cost of
// occasional data loss").
package cache

import (
	"fmt"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/units"
)

// Extent is a contiguous byte range in device address space.
type Extent struct {
	Addr units.Bytes
	Size units.Bytes
}

// node is one cached block in the intrusive LRU list.
type node struct {
	block      int64
	dirty      bool
	prev, next *node
}

// Cache is a block-granular LRU buffer cache.
type Cache struct {
	params    device.MemoryParams
	size      units.Bytes
	blockSize units.Bytes
	capBlocks int
	writeBack bool

	blocks map[int64]*node
	// head is most-recently used; tail is least-recently used.
	head, tail *node

	meter      *energy.Meter
	lastUpdate units.Time

	hits, misses int64

	// Observability (nil-safe no-ops without a scope).
	cHits   *obs.Counter
	cMisses *obs.Counter
}

// Option configures a Cache.
type Option func(*Cache)

// WithScope attaches an observability scope: hit/miss counters. Events are
// emitted by the simulation core, which knows the request timestamps. A nil
// scope is free.
func WithScope(sc *obs.Scope) Option {
	return func(c *Cache) {
		c.cHits = sc.Counter("cache.hits")
		c.cMisses = sc.Counter("cache.misses")
	}
}

// New builds a cache of the given total size; size must hold at least one
// block. The zero-size case is handled by callers (they bypass the cache
// entirely, as the hp simulations require).
func New(params device.MemoryParams, size, blockSize units.Bytes, writeBack bool, opts ...Option) (*Cache, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cache: block size must be positive")
	}
	capBlocks := int(size / blockSize)
	if capBlocks < 1 {
		return nil, fmt.Errorf("cache: size %v holds no %v blocks", size, blockSize)
	}
	c := &Cache{
		params:    params,
		size:      size,
		blockSize: blockSize,
		capBlocks: capBlocks,
		writeBack: writeBack,
		blocks:    make(map[int64]*node, capBlocks),
		meter:     energy.NewMeter(),
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Size returns the configured capacity in bytes.
func (c *Cache) Size() units.Bytes { return c.size }

// Meter exposes the cache's energy accounting.
func (c *Cache) Meter() *energy.Meter { return c.meter }

// Hits and Misses report lookup outcomes.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return len(c.blocks) }

// AccessTime returns the DRAM transfer time for size bytes and charges the
// active energy for it.
func (c *Cache) AccessTime(size units.Bytes) units.Time {
	t := c.params.AccessTime(size)
	c.meter.Accrue(energy.StateActive, c.params.ActiveW, t)
	return t
}

// AccrueStandby integrates retention (refresh) power up to now. The paper's
// §5.4 trade-off — extra DRAM costs energy even when idle — comes from
// exactly this term.
func (c *Cache) AccrueStandby(now units.Time) {
	if now <= c.lastUpdate {
		return
	}
	c.meter.Accrue(energy.StateStandby, c.params.StandbyWPerMB*c.size.MBytes(), now-c.lastUpdate)
	c.lastUpdate = now
}

// Contains reports whether every block of [addr, addr+size) is cached,
// touching the blocks' recency and recording a hit or miss.
func (c *Cache) Contains(addr, size units.Bytes) bool {
	if size <= 0 {
		return false
	}
	first, last := c.blockRange(addr, size)
	for b := first; b <= last; b++ {
		if _, ok := c.blocks[b]; !ok {
			c.misses++
			c.cMisses.Inc()
			return false
		}
	}
	for b := first; b <= last; b++ {
		c.touch(c.blocks[b])
	}
	c.hits++
	c.cHits.Inc()
	return true
}

// Insert caches every block of [addr, addr+size), marking them dirty when
// requested (write-back mode). It returns the dirty extents evicted to make
// room, which the caller must write to the device. In write-through mode
// nothing is ever dirty and the returned slice is always empty.
func (c *Cache) Insert(addr, size units.Bytes, dirty bool) []Extent {
	if size <= 0 {
		return nil
	}
	if !c.writeBack {
		dirty = false
	}
	var evicted []Extent
	first, last := c.blockRange(addr, size)
	for b := first; b <= last; b++ {
		if n, ok := c.blocks[b]; ok {
			n.dirty = n.dirty || dirty
			c.touch(n)
			continue
		}
		for len(c.blocks) >= c.capBlocks {
			if e := c.evictLRU(); e != nil {
				evicted = append(evicted, *e)
			}
		}
		n := &node{block: b, dirty: dirty}
		c.blocks[b] = n
		c.pushFront(n)
	}
	return coalesce(evicted)
}

// Invalidate drops any cached blocks of [addr, addr+size) without writing
// them back (used for file deletion).
func (c *Cache) Invalidate(addr, size units.Bytes) {
	if size <= 0 {
		return
	}
	first, last := c.blockRange(addr, size)
	for b := first; b <= last; b++ {
		if n, ok := c.blocks[b]; ok {
			c.unlink(n)
			delete(c.blocks, b)
		}
	}
}

// DirtyExtents returns all dirty data as coalesced extents and marks it
// clean (the final write-back flush).
func (c *Cache) DirtyExtents() []Extent {
	var out []Extent
	for b, n := range c.blocks {
		if n.dirty {
			n.dirty = false
			out = append(out, Extent{Addr: units.Bytes(b) * c.blockSize, Size: c.blockSize})
		}
	}
	return coalesce(out)
}

// Crash empties the cache — DRAM loses everything at power failure — and
// returns how many of the lost blocks were dirty. A non-zero return means
// acknowledged writes were lost, which only the write-back ablation can
// legitimately produce; write-through configurations never hold dirty data.
func (c *Cache) Crash() int {
	dirty := 0
	for _, n := range c.blocks {
		if n.dirty {
			dirty++
		}
	}
	c.blocks = make(map[int64]*node, c.capBlocks)
	c.head, c.tail = nil, nil
	return dirty
}

func (c *Cache) blockRange(addr, size units.Bytes) (first, last int64) {
	return int64(addr / c.blockSize), int64((addr + size - 1) / c.blockSize)
}

// evictLRU removes the least-recently-used block, returning its extent if
// it was dirty.
func (c *Cache) evictLRU() *Extent {
	n := c.tail
	if n == nil {
		panic("cache: eviction from empty cache")
	}
	c.unlink(n)
	delete(c.blocks, n.block)
	if n.dirty {
		return &Extent{Addr: units.Bytes(n.block) * c.blockSize, Size: c.blockSize}
	}
	return nil
}

func (c *Cache) touch(n *node) {
	c.unlink(n)
	c.pushFront(n)
}

func (c *Cache) pushFront(n *node) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// coalesce merges adjacent extents (sorted by address) to turn per-block
// evictions into the fewest device writes.
func coalesce(extents []Extent) []Extent {
	if len(extents) < 2 {
		return extents
	}
	// Insertion sort: eviction batches are tiny.
	for i := 1; i < len(extents); i++ {
		for j := i; j > 0 && extents[j].Addr < extents[j-1].Addr; j-- {
			extents[j], extents[j-1] = extents[j-1], extents[j]
		}
	}
	out := extents[:1]
	for _, e := range extents[1:] {
		lastIdx := len(out) - 1
		if out[lastIdx].Addr+out[lastIdx].Size == e.Addr {
			out[lastIdx].Size += e.Size
		} else {
			out = append(out, e)
		}
	}
	return out
}
