package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
)

func newCache(t *testing.T, size units.Bytes, writeBack bool) *Cache {
	t.Helper()
	c, err := New(device.NECDRAM(), size, units.KB, writeBack)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestContainsAfterInsert(t *testing.T) {
	c := newCache(t, 8*units.KB, false)
	if c.Contains(0, units.KB) {
		t.Error("empty cache claims a hit")
	}
	c.Insert(0, 4*units.KB, false)
	if !c.Contains(0, 4*units.KB) {
		t.Error("inserted range missing")
	}
	if !c.Contains(units.KB, units.KB) {
		t.Error("sub-range missing")
	}
	if c.Contains(0, 5*units.KB) {
		t.Error("partially-cached range reported as full hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	c := newCache(t, 4*units.KB, false) // 4 blocks
	c.Insert(0, 4*units.KB, false)      // blocks 0-3
	c.Contains(0, units.KB)             // touch block 0: MRU
	c.Insert(8*units.KB, units.KB, false)
	// Block 1 was LRU, so it is gone; block 0 survives.
	if !c.Contains(0, units.KB) {
		t.Error("recently used block evicted")
	}
	if c.Contains(units.KB, units.KB) {
		t.Error("LRU block not evicted")
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}

func TestWriteThroughNeverDirty(t *testing.T) {
	c := newCache(t, 2*units.KB, false)
	// Even with dirty=true requested, write-through mode holds nothing back.
	if ev := c.Insert(0, 4*units.KB, true); len(ev) != 0 {
		t.Errorf("write-through produced dirty evictions: %v", ev)
	}
	if d := c.DirtyExtents(); len(d) != 0 {
		t.Errorf("write-through has dirty extents: %v", d)
	}
}

func TestWriteBackEvictions(t *testing.T) {
	c := newCache(t, 2*units.KB, true)
	c.Insert(0, 2*units.KB, true)
	ev := c.Insert(4*units.KB, 2*units.KB, false)
	if len(ev) == 0 {
		t.Fatal("no dirty evictions when dirty blocks were displaced")
	}
	var total units.Bytes
	for _, e := range ev {
		total += e.Size
	}
	if total != 2*units.KB {
		t.Errorf("evicted %v dirty bytes, want 2KB", total)
	}
}

func TestDirtyExtentsCoalesced(t *testing.T) {
	c := newCache(t, 8*units.KB, true)
	c.Insert(0, 3*units.KB, true)
	d := c.DirtyExtents()
	if len(d) != 1 || d[0].Addr != 0 || d[0].Size != 3*units.KB {
		t.Errorf("dirty extents = %v, want one 3KB extent at 0", d)
	}
	// Second call: already clean.
	if d := c.DirtyExtents(); len(d) != 0 {
		t.Errorf("second DirtyExtents = %v", d)
	}
}

func TestInvalidate(t *testing.T) {
	c := newCache(t, 8*units.KB, true)
	c.Insert(0, 4*units.KB, true)
	c.Invalidate(0, 2*units.KB)
	if c.Contains(0, units.KB) {
		t.Error("invalidated block still cached")
	}
	if !c.Contains(2*units.KB, 2*units.KB) {
		t.Error("surviving blocks lost")
	}
	// Invalidated dirty data must not come back out.
	for _, e := range c.DirtyExtents() {
		if e.Addr < 2*units.KB {
			t.Errorf("invalidated dirty extent emitted: %+v", e)
		}
	}
}

func TestAccessTimeAndEnergy(t *testing.T) {
	c := newCache(t, 8*units.KB, false)
	d := c.AccessTime(units.KB)
	if d <= 0 {
		t.Error("access time not positive")
	}
	if c.Meter().TotalJ() <= 0 {
		t.Error("no active energy charged")
	}
	before := c.Meter().TotalJ()
	c.AccrueStandby(units.Hour)
	if c.Meter().TotalJ() <= before {
		t.Error("no standby energy accrued")
	}
	// Standby accrual is monotonic in time and idempotent at the same time.
	at := c.Meter().TotalJ()
	c.AccrueStandby(units.Hour)
	if c.Meter().TotalJ() != at {
		t.Error("standby accrued twice for the same instant")
	}
}

func TestConstructionErrors(t *testing.T) {
	if _, err := New(device.NECDRAM(), 100, units.KB, false); err == nil {
		t.Error("sub-block cache accepted")
	}
	if _, err := New(device.NECDRAM(), units.KB, 0, false); err == nil {
		t.Error("zero block size accepted")
	}
}

// TestCacheNeverExceedsCapacity: under random traffic, Len() ≤ capacity and
// every reported hit is truthful (the block was inserted and not evicted or
// invalidated since — verified via a shadow map + LRU order check is too
// strict, so we check capacity and hit consistency only).
func TestCacheNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const capBlocks = 16
		c, err := New(device.NECDRAM(), capBlocks*units.KB, units.KB, rng.Intn(2) == 0)
		if err != nil {
			return false
		}
		inCache := map[int64]bool{} // superset tracking: false = definitely absent
		for i := 0; i < 500; i++ {
			blk := int64(rng.Intn(64))
			addr := units.Bytes(blk) * units.KB
			switch rng.Intn(3) {
			case 0:
				c.Insert(addr, units.KB, rng.Intn(2) == 0)
				inCache[blk] = true
			case 1:
				c.Invalidate(addr, units.KB)
				inCache[blk] = false
			case 2:
				if c.Contains(addr, units.KB) && !inCache[blk] {
					return false // hit on a block never inserted / invalidated
				}
			}
			if c.Len() > capBlocks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWriteBackConservation: every dirty byte inserted is either evicted,
// invalidated, or still present at the end — no dirty data is silently lost.
func TestWriteBackConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(device.NECDRAM(), 8*units.KB, units.KB, true)
		if err != nil {
			return false
		}
		dirty := map[int64]bool{} // blocks that should be dirty somewhere
		// note marks evicted dirty blocks as flushed: their dirty bytes
		// reached the device, so they are no longer owed by the cache.
		note := func(extents []Extent) {
			for _, e := range extents {
				for b := int64(e.Addr / units.KB); b < int64((e.Addr+e.Size)/units.KB); b++ {
					delete(dirty, b)
				}
			}
		}
		for i := 0; i < 300; i++ {
			blk := int64(rng.Intn(32))
			addr := units.Bytes(blk) * units.KB
			switch rng.Intn(3) {
			case 0:
				ev := c.Insert(addr, units.KB, true)
				dirty[blk] = true
				note(ev)
			case 1:
				ev := c.Insert(addr, units.KB, false)
				note(ev)
			case 2:
				c.Invalidate(addr, units.KB)
				delete(dirty, blk)
			}
		}
		// Whatever remains dirty must come out of the final flush.
		final := map[int64]bool{}
		for _, e := range c.DirtyExtents() {
			for b := int64(e.Addr / units.KB); b < int64((e.Addr+e.Size)/units.KB); b++ {
				final[b] = true
			}
		}
		for b := range dirty {
			if !final[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
