package cache

import (
	"fmt"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/units"
)

// refNode is one cached block in RefCache's pointer-based intrusive LRU
// list.
type refNode struct {
	block      int64
	dirty      bool
	prev, next *refNode
}

// RefCache is the original map-and-pointer buffer-cache implementation,
// frozen as the behavioral reference for the simulator's differential test
// harness (internal/core/difftest). It must stay observably identical to
// Cache: same hits, misses, evictions, dirty extents, and energy accrual
// order. Do not optimize this type — its value is being the slow,
// obviously-correct path the fast one is diffed against.
type RefCache struct {
	params    device.MemoryParams
	size      units.Bytes
	blockSize units.Bytes
	capBlocks int
	writeBack bool

	blocks map[int64]*refNode
	// head is most-recently used; tail is least-recently used.
	head, tail *refNode

	meter      *energy.Meter
	lastUpdate units.Time

	hits, misses int64

	cHits   *obs.Counter
	cMisses *obs.Counter
}

// NewRef builds a reference cache with the same construction rules as New.
// sc may be nil (no metrics).
func NewRef(params device.MemoryParams, size, blockSize units.Bytes, writeBack bool, sc *obs.Scope) (*RefCache, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cache: block size must be positive")
	}
	capBlocks := int(size / blockSize)
	if capBlocks < 1 {
		return nil, fmt.Errorf("cache: size %v holds no %v blocks", size, blockSize)
	}
	c := &RefCache{
		params:    params,
		size:      size,
		blockSize: blockSize,
		capBlocks: capBlocks,
		writeBack: writeBack,
		blocks:    make(map[int64]*refNode, capBlocks),
		meter:     energy.NewMeter(),
	}
	c.cHits = sc.Counter("cache.hits")
	c.cMisses = sc.Counter("cache.misses")
	return c, nil
}

// Size returns the configured capacity in bytes.
func (c *RefCache) Size() units.Bytes { return c.size }

// Meter exposes the cache's energy accounting.
func (c *RefCache) Meter() *energy.Meter { return c.meter }

// Hits and Misses report lookup outcomes.
func (c *RefCache) Hits() int64   { return c.hits }
func (c *RefCache) Misses() int64 { return c.misses }

// Len returns the number of cached blocks.
func (c *RefCache) Len() int { return len(c.blocks) }

// AccessTime returns the DRAM transfer time for size bytes and charges the
// active energy for it.
func (c *RefCache) AccessTime(size units.Bytes) units.Time {
	t := c.params.AccessTime(size)
	c.meter.Accrue(energy.StateActive, c.params.ActiveW, t)
	return t
}

// AccrueStandby integrates retention (refresh) power up to now.
func (c *RefCache) AccrueStandby(now units.Time) {
	if now <= c.lastUpdate {
		return
	}
	c.meter.Accrue(energy.StateStandby, c.params.StandbyWPerMB*c.size.MBytes(), now-c.lastUpdate)
	c.lastUpdate = now
}

// Contains reports whether every block of [addr, addr+size) is cached,
// touching the blocks' recency and recording a hit or miss.
func (c *RefCache) Contains(addr, size units.Bytes) bool {
	if size <= 0 {
		return false
	}
	first, last := c.blockRange(addr, size)
	for b := first; b <= last; b++ {
		if _, ok := c.blocks[b]; !ok {
			c.misses++
			c.cMisses.Inc()
			return false
		}
	}
	for b := first; b <= last; b++ {
		c.touch(c.blocks[b])
	}
	c.hits++
	c.cHits.Inc()
	return true
}

// Insert caches every block of [addr, addr+size), marking them dirty when
// requested (write-back mode). It returns the dirty extents evicted to make
// room.
func (c *RefCache) Insert(addr, size units.Bytes, dirty bool) []Extent {
	if size <= 0 {
		return nil
	}
	if !c.writeBack {
		dirty = false
	}
	var evicted []Extent
	first, last := c.blockRange(addr, size)
	for b := first; b <= last; b++ {
		if n, ok := c.blocks[b]; ok {
			n.dirty = n.dirty || dirty
			c.touch(n)
			continue
		}
		for len(c.blocks) >= c.capBlocks {
			if e := c.evictLRU(); e != nil {
				evicted = append(evicted, *e)
			}
		}
		n := &refNode{block: b, dirty: dirty}
		c.blocks[b] = n
		c.pushFront(n)
	}
	return coalesce(evicted)
}

// Invalidate drops any cached blocks of [addr, addr+size) without writing
// them back.
func (c *RefCache) Invalidate(addr, size units.Bytes) {
	if size <= 0 {
		return
	}
	first, last := c.blockRange(addr, size)
	for b := first; b <= last; b++ {
		if n, ok := c.blocks[b]; ok {
			c.unlink(n)
			delete(c.blocks, b)
		}
	}
}

// DirtyExtents returns all dirty data as coalesced extents and marks it
// clean.
func (c *RefCache) DirtyExtents() []Extent {
	var out []Extent
	for b, n := range c.blocks {
		if n.dirty {
			n.dirty = false
			out = append(out, Extent{Addr: units.Bytes(b) * c.blockSize, Size: c.blockSize})
		}
	}
	return coalesce(out)
}

// Crash empties the cache and returns how many of the lost blocks were
// dirty.
func (c *RefCache) Crash() int {
	dirty := 0
	for _, n := range c.blocks {
		if n.dirty {
			dirty++
		}
	}
	c.blocks = make(map[int64]*refNode, c.capBlocks)
	c.head, c.tail = nil, nil
	return dirty
}

func (c *RefCache) blockRange(addr, size units.Bytes) (first, last int64) {
	return int64(addr / c.blockSize), int64((addr + size - 1) / c.blockSize)
}

func (c *RefCache) evictLRU() *Extent {
	n := c.tail
	if n == nil {
		panic("cache: eviction from empty cache")
	}
	c.unlink(n)
	delete(c.blocks, n.block)
	if n.dirty {
		return &Extent{Addr: units.Bytes(n.block) * c.blockSize, Size: c.blockSize}
	}
	return nil
}

func (c *RefCache) touch(n *refNode) {
	c.unlink(n)
	c.pushFront(n)
}

func (c *RefCache) pushFront(n *refNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *RefCache) unlink(n *refNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
