package experiments

import (
	"fmt"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
)

// SpinDownRow compares one spin-down policy on one trace.
type SpinDownRow struct {
	Trace      string
	Policy     string
	EnergyJ    float64
	SpinUps    int64
	ReadMeanMs float64
	ReadMaxMs  float64
}

// SpinDownPolicies runs the spin-down policy ablation on the CU140: the
// policy space the paper's §2/§5.1 discussion rests on (citing Douglis,
// Krishnan & Marsh and Li et al.): keeping the disk spinning burns idle
// watts; spinning down immediately pays a spin-up (energy and ~1 s of
// latency) on every burst; the paper's fixed 5 s threshold and an adaptive
// threshold sit between.
func SpinDownPolicies(seed int64) ([]SpinDownRow, error) {
	type pol struct {
		label    string
		policy   string
		spinDown units.Time
	}
	policies := []pol{
		{"always-on", "always-on", 0},
		{"immediate", "immediate", 0},
		{"fixed-1s", "", 1 * units.Second},
		{"fixed-5s (paper)", "", 5 * units.Second},
		{"fixed-30s", "", 30 * units.Second},
		{"adaptive", "adaptive", 0},
	}
	var rows []SpinDownRow
	for _, name := range []string{"mac", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		for _, p := range policies {
			cfg := core.Config{
				Trace:      t,
				DRAMBytes:  dramFor(name),
				Kind:       core.MagneticDisk,
				Disk:       device.CU140Datasheet(),
				SpinDown:   p.spinDown,
				SpinPolicy: p.policy,
				SRAMBytes:  defaultSRAM,
			}
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("spindown %s/%s: %w", name, p.label, err)
			}
			rows = append(rows, SpinDownRow{
				Trace:      name,
				Policy:     p.label,
				EnergyJ:    res.EnergyJ,
				SpinUps:    res.SpinUps,
				ReadMeanMs: res.Read.Mean(),
				ReadMaxMs:  res.Read.Max(),
			})
		}
	}
	return rows, nil
}

// RenderSpinDown formats the spin-down ablation.
func RenderSpinDown(rows []SpinDownRow) string {
	t := &table{header: []string{"Trace", "Policy", "Energy (J)", "Spin-ups", "Rd mean (ms)", "Rd max (ms)"}}
	for _, r := range rows {
		t.addRow(r.Trace, r.Policy, f0(r.EnergyJ), fmt.Sprintf("%d", r.SpinUps), f2(r.ReadMeanMs), f1(r.ReadMaxMs))
	}
	return "Ablation: disk spin-down policies on the CU140 (§2, §5.1)\n" + t.String()
}
