// Package experiments reproduces every table and figure in the paper's
// evaluation, plus the §5 analyses and a set of ablations. Each experiment
// is a function returning structured rows; Render* helpers produce the
// paper-style text tables shared by cmd/experiments and the benchmark
// harness.
//
// Absolute values depend on synthetic-workload calibration (the original
// traces are unavailable); the quantities that must hold are the paper's
// orderings and ratios. EXPERIMENTS.md records paper-vs-measured for every
// cell.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// DefaultSeed is the workload seed used by all experiments, so every run of
// the suite sees identical traces.
const DefaultSeed = 1

// Paper defaults shared across experiments (§4.2, Table 4 notes).
const (
	// defaultSpinDown is the disk spin-down threshold: "a good compromise
	// between energy consumption and response time".
	defaultSpinDown = 5 * units.Second
	// defaultDRAM fronts the mac and dos traces; hp runs cacheless.
	defaultDRAM = 2 * units.MB
	// defaultSRAM is the disk write buffer (§5.5).
	defaultSRAM = 32 * units.KB
	// table4FlashCapacity: the paper treats the flash devices as 40 MB
	// parts ("we treated the flash devices as though they too stored
	// 40 Mbytes", §3) ...
	table4FlashCapacity = 40 * units.MB
	// table4StoredData: ... 80% utilized for the Table 4 runs.
	table4StoredData = 32 * units.MB
)

// traceCache memoizes generated workloads: experiments share them, and
// generation (especially hp) is the expensive part.
var traceCache sync.Map // name/seed key → *trace.Trace

// Workload returns the named workload for a seed, memoized.
func Workload(name string, seed int64) (*trace.Trace, error) {
	key := fmt.Sprintf("%s/%d", name, seed)
	if v, ok := traceCache.Load(key); ok {
		return v.(*trace.Trace), nil
	}
	t, err := workload.GenerateByName(name, seed)
	if err != nil {
		return nil, err
	}
	traceCache.Store(key, t)
	return t, nil
}

// prepCache memoizes trace preprocessing the same way: a TracePrep is a
// pure function of the (immutable, cached) trace, and the figure sweeps
// re-prepare the same traces on every call.
var prepCache sync.Map // *trace.Trace → *core.TracePrep

// prepare returns the memoized TracePrep for a cached trace.
func prepare(t *trace.Trace) *core.TracePrep {
	if v, ok := prepCache.Load(t); ok {
		return v.(*core.TracePrep)
	}
	p := core.PrepareTrace(t)
	prepCache.Store(t, p)
	return p
}

// dramFor returns the DRAM cache size for a trace: the hp trace was
// captured below the buffer cache, so it must run cacheless (§4.1).
func dramFor(traceName string) units.Bytes {
	if traceName == "hp" {
		return 0
	}
	return defaultDRAM
}

// DeviceSpec identifies one device row of Table 4.
type DeviceSpec struct {
	// Name is the device ("cu140", "kh", "sdp10", "sdp5", "intel").
	Name string
	// Source is measured or datasheet.
	Source device.ParamSource
}

// Table4Devices lists the seven rows of Tables 4(a)–(c) in paper order.
func Table4Devices() []DeviceSpec {
	return []DeviceSpec{
		{"cu140", device.Measured},
		{"cu140", device.Datasheet},
		{"kh", device.Datasheet},
		{"sdp10", device.Measured},
		{"sdp5", device.Datasheet},
		{"intel", device.Measured},
		{"intel", device.Datasheet},
	}
}

// Configure fills a core.Config's device fields for a spec, applying the
// paper's defaults (spin-down, SRAM for disks, 40 MB flash at 80%).
func (d DeviceSpec) Configure(cfg *core.Config) error {
	switch d.Name {
	case "cu140":
		cfg.Kind = core.MagneticDisk
		if d.Source == device.Measured {
			cfg.Disk = device.CU140Measured()
		} else {
			cfg.Disk = device.CU140Datasheet()
		}
	case "kh":
		cfg.Kind = core.MagneticDisk
		cfg.Disk = device.KittyhawkDatasheet()
	case "sdp10":
		cfg.Kind = core.FlashDisk
		if d.Source == device.Measured {
			cfg.FlashDiskParams = device.SDP10Measured()
		} else {
			cfg.FlashDiskParams = device.SDP10Datasheet()
		}
	case "sdp5":
		cfg.Kind = core.FlashDisk
		cfg.FlashDiskParams = device.SDP5Datasheet()
	case "sdp5a":
		cfg.Kind = core.FlashDisk
		cfg.FlashDiskParams = device.SDP5Datasheet()
		cfg.AsyncErase = true
	case "intel":
		cfg.Kind = core.FlashCard
		if d.Source == device.Measured {
			cfg.FlashCardParams = device.IntelSeries2Measured()
		} else {
			cfg.FlashCardParams = device.IntelSeries2Datasheet()
		}
	case "intel2+":
		cfg.Kind = core.FlashCard
		cfg.FlashCardParams = device.IntelSeries2PlusDatasheet()
	default:
		return fmt.Errorf("experiments: unknown device %q", d.Name)
	}
	switch cfg.Kind {
	case core.MagneticDisk:
		cfg.SpinDown = defaultSpinDown
		cfg.SRAMBytes = defaultSRAM
	case core.FlashDisk, core.FlashCard:
		cfg.FlashCapacity = table4FlashCapacity
		cfg.StoredData = table4StoredData
	}
	return nil
}

// String renders "cu140 measured" style labels.
func (d DeviceSpec) String() string { return d.Name + " " + string(d.Source) }

// table is a tiny column-aligned text table builder used by the Render
// helpers.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
