package experiments

import (
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes the whole registry end to end: every
// table, figure, analysis, ablation, and extension must produce a
// non-empty rendered report without error. This is the top-level
// integration test of the reproduction.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full evaluation suite")
	}
	reg := Registry()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := reg[id].Run(DefaultSeed)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(out) == 0 {
				t.Fatalf("%s: empty report", id)
			}
			// Every report is a titled table: header line + separator.
			if !strings.Contains(out, "\n") || !strings.Contains(out, "-") {
				t.Errorf("%s: does not look like a rendered table:\n%s", id, out)
			}
		})
	}
}

func TestDescriptionsPresent(t *testing.T) {
	for id, e := range Registry() {
		if e.Description == "" {
			t.Errorf("%s: empty description", id)
		}
		if e.ID != id {
			t.Errorf("registry key %q holds experiment %q", id, e.ID)
		}
	}
}
