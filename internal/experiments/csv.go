package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSVs regenerates every figure and writes one CSV per figure into
// dir, for plotting with gnuplot/matplotlib/spreadsheets. Returns the list
// of files written.
func WriteCSVs(dir string, seed int64) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	emit := func(name string, header []string, rows [][]string) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			return err
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

	// Figure 1.
	fig1, err := Fig1()
	if err != nil {
		return nil, err
	}
	{
		header := []string{"cumulative_kb"}
		for _, s := range fig1 {
			header = append(header, s.Label+"_lat_ms", s.Label+"_kbps")
		}
		var rows [][]string
		if len(fig1) > 0 {
			for i := range fig1[0].Points {
				row := []string{ff(fig1[0].Points[i].CumulativeKB)}
				for _, s := range fig1 {
					row = append(row, ff(s.Points[i].LatencyMs), ff(s.Points[i].ThroughputKBs))
				}
				rows = append(rows, row)
			}
		}
		if err := emit("fig1.csv", header, rows); err != nil {
			return nil, err
		}
	}

	// Figure 2.
	fig2, err := Fig2(seed)
	if err != nil {
		return nil, err
	}
	{
		var rows [][]string
		for _, p := range fig2 {
			rows = append(rows, []string{
				p.Trace, ff(p.Utilization), ff(p.EnergyJ), ff(p.WriteMeanMs),
				strconv.FormatInt(p.Erases, 10), strconv.FormatInt(p.MaxErase, 10), ff(p.MeanErase),
			})
		}
		if err := emit("fig2.csv",
			[]string{"trace", "utilization", "energy_j", "write_mean_ms", "erases", "max_erase", "mean_erase"},
			rows); err != nil {
			return nil, err
		}
	}

	// Figure 3.
	fig3, err := Fig3(seed)
	if err != nil {
		return nil, err
	}
	{
		header := []string{"cumulative_mb"}
		for _, s := range fig3 {
			header = append(header, fmt.Sprintf("live_%s_kbps", s.LiveData))
		}
		var rows [][]string
		if len(fig3) > 0 {
			for i := range fig3[0].Points {
				row := []string{ff(fig3[0].Points[i].CumulativeMB)}
				for _, s := range fig3 {
					row = append(row, ff(s.Points[i].ThroughputKBs))
				}
				rows = append(rows, row)
			}
		}
		if err := emit("fig3.csv", header, rows); err != nil {
			return nil, err
		}
	}

	// Figure 4.
	fig4, err := Fig4(seed)
	if err != nil {
		return nil, err
	}
	{
		var rows [][]string
		for _, p := range fig4 {
			rows = append(rows, []string{
				p.Device, strconv.Itoa(p.FlashMB), strconv.FormatInt(p.DRAMKB, 10),
				ff(p.Utilization), ff(p.EnergyJ), ff(p.OverallMeanMs),
			})
		}
		if err := emit("fig4.csv",
			[]string{"device", "flash_mb", "dram_kb", "utilization", "energy_j", "overall_mean_ms"},
			rows); err != nil {
			return nil, err
		}
	}

	// Table 4 with the observability counters: one row per device per trace,
	// so spin-up/erase/cleaning activity can be plotted alongside energy.
	{
		var rows [][]string
		for _, traceName := range []string{"mac", "dos"} {
			t4, err := Table4(traceName, seed)
			if err != nil {
				return nil, err
			}
			for _, r := range t4 {
				res := r.Result
				rows = append(rows, []string{
					traceName, r.Device.Name, string(r.Device.Source),
					ff(r.EnergyJ), ff(r.ReadMean), ff(r.WriteMean),
					strconv.FormatInt(res.SpinUps, 10),
					strconv.FormatInt(res.SpinDowns, 10),
					strconv.FormatInt(res.Erases, 10),
					strconv.FormatInt(res.CopiedBlocks, 10),
					strconv.FormatInt(res.HostBlocks, 10),
					strconv.FormatInt(res.WriteStalls, 10),
					strconv.FormatInt(res.SRAMFlushes, 10),
					strconv.FormatInt(res.SRAMStalledWrites, 10),
					strconv.FormatInt(res.CacheHits, 10),
					strconv.FormatInt(res.CacheMisses, 10),
				})
			}
		}
		if err := emit("table4.csv",
			[]string{"trace", "device", "source", "energy_j", "read_mean_ms", "write_mean_ms",
				"spin_ups", "spin_downs", "erases", "copied_blocks", "host_blocks",
				"write_stalls", "sram_flushes", "sram_stalled_writes", "cache_hits", "cache_misses"},
			rows); err != nil {
			return nil, err
		}
	}

	// Figure 5.
	fig5, err := Fig5(seed)
	if err != nil {
		return nil, err
	}
	{
		var rows [][]string
		for _, p := range fig5 {
			rows = append(rows, []string{
				p.Trace, strconv.FormatInt(p.SRAMKB, 10), ff(p.EnergyJ), ff(p.WriteMeanMs),
				ff(p.NormalizedEnergy), ff(p.NormalizedWrite),
			})
		}
		if err := emit("fig5.csv",
			[]string{"trace", "sram_kb", "energy_j", "write_mean_ms", "norm_energy", "norm_write"},
			rows); err != nil {
			return nil, err
		}
	}

	// Index workload family (B+tree vs. LSM × device × utilization).
	idx, err := IndexBench(seed)
	if err != nil {
		return nil, err
	}
	{
		var rows [][]string
		for _, p := range idx {
			rows = append(rows, []string{
				p.Engine, p.Device, ff(p.Utilization), ff(p.EnergyJ),
				ff(p.ReadMeanMs), ff(p.WriteMeanMs),
				strconv.FormatInt(p.Erases, 10), strconv.FormatInt(p.MaxErase, 10),
				ff(p.CleanerAmp), ff(p.IndexAmp),
			})
		}
		if err := emit("indexbench.csv",
			[]string{"engine", "device", "utilization", "energy_j", "read_mean_ms", "write_mean_ms",
				"erases", "max_erase", "cleaner_amp", "index_amp"},
			rows); err != nil {
			return nil, err
		}
	}
	return written, nil
}
