package experiments

import (
	"fmt"

	"mobilestorage/internal/compress"
	"mobilestorage/internal/mffs"
	"mobilestorage/internal/testbed"
	"mobilestorage/internal/units"
)

// MFFSRow compares MFFS 2.00 against a hypothetical repaired MFFS on the
// Figure 1 micro-benchmark.
type MFFSRow struct {
	Model          string
	FirstLatencyMs float64
	LastLatencyMs  float64
	Growth         float64 // last/first
	Write1MKBs     float64 // Table 1-style 1 MB-file write throughput
	Read1MKBs      float64
}

// MFFSFixed runs §7's software fix: "Newer versions of the Microsoft Flash
// File System should address the degradation imposed by large files."
// The repaired model drops the linear rewrite anomaly and the linked-list
// read scans; everything else (compression, fixed overheads, the card
// itself) stays.
func MFFSFixed() ([]MFFSRow, error) {
	models := []struct {
		name  string
		model mffs.Model
	}{
		{"mffs 2.00", mffs.New()},
		{"repaired", mffs.Fixed()},
	}
	var rows []MFFSRow
	for _, m := range models {
		model := m.model
		cfg := testbed.Config{Kind: testbed.IntelCard, Data: compress.MobyDick, MFFS: &model}
		pts, err := testbed.WriteLatencyCurve(cfg)
		if err != nil {
			return nil, err
		}
		w1m, r1m, err := testbed.Throughput(cfg, units.MB, 4*units.MB)
		if err != nil {
			return nil, err
		}
		row := MFFSRow{
			Model:          m.name,
			FirstLatencyMs: pts[0].LatencyMs,
			LastLatencyMs:  pts[len(pts)-1].LatencyMs,
			Write1MKBs:     w1m,
			Read1MKBs:      r1m,
		}
		if row.FirstLatencyMs > 0 {
			row.Growth = row.LastLatencyMs / row.FirstLatencyMs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderMFFSFixed formats the MFFS ablation.
func RenderMFFSFixed(rows []MFFSRow) string {
	t := &table{header: []string{"Model", "First lat (ms)", "Last lat (ms)", "Growth", "1MB wr (KB/s)", "1MB rd (KB/s)"}}
	for _, r := range rows {
		t.addRow(r.Model, f1(r.FirstLatencyMs), f1(r.LastLatencyMs),
			fmt.Sprintf("%.1f×", r.Growth), f0(r.Write1MKBs), f0(r.Read1MKBs))
	}
	return "Ablation (§7): MFFS 2.00 vs. a repaired MFFS on the Figure 1 benchmark\n" + t.String()
}
