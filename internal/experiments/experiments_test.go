package experiments

import (
	"strings"
	"testing"

	"mobilestorage/internal/core"
)

// The experiment tests assert the paper's load-bearing orderings and
// ratios — the "shape" of every table and figure — not absolute values.
// They run full traces, so the heavyweight ones are skipped under -short.

func find4(rows []Table4Row, name, source string) Table4Row {
	for _, r := range rows {
		if r.Device.Name == name && string(r.Device.Source) == source {
			return r
		}
	}
	return Table4Row{}
}

func TestTable4MacShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	rows, err := Table4("mac", DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	cu := find4(rows, "cu140", "datasheet")
	kh := find4(rows, "kh", "datasheet")
	sdp10 := find4(rows, "sdp10", "measured")
	sdp5 := find4(rows, "sdp5", "datasheet")
	intelM := find4(rows, "intel", "measured")
	intelD := find4(rows, "intel", "datasheet")

	// Headline: flash reduces energy by roughly an order of magnitude.
	for _, flash := range []Table4Row{sdp10, sdp5, intelD} {
		ratio := cu.EnergyJ / flash.EnergyJ
		if ratio < 4 {
			t.Errorf("disk/flash energy ratio %.1f for %s, want ≥4 (paper ≈6-10×)", ratio, flash.Device)
		}
	}
	// §7: "the flash disk file system can save 59–86% of the energy of the
	// disk file system" and the flash card saves ≈90%.
	if s := 1 - sdp5.EnergyJ/cu.EnergyJ; s < 0.55 {
		t.Errorf("sdp5 energy savings %.2f, want ≥0.55", s)
	}
	if s := 1 - intelD.EnergyJ/cu.EnergyJ; s < 0.80 {
		t.Errorf("intel energy savings %.2f, want ≥0.80", s)
	}

	// The Kittyhawk fares worse than the CU140 (Table 4a ordering).
	if kh.EnergyJ <= cu.EnergyJ {
		t.Errorf("kh energy %.0f not above cu140 %.0f", kh.EnergyJ, cu.EnergyJ)
	}
	if kh.ReadMean <= cu.ReadMean {
		t.Errorf("kh read mean %.2f not above cu140 %.2f", kh.ReadMean, cu.ReadMean)
	}

	// Flash reads beat disk reads (§7: "3–6 times faster"); flash writes
	// are several times worse than a disk with an SRAM buffer.
	if sdp5.ReadMean >= cu.ReadMean {
		t.Errorf("sdp5 read %.2f not below disk %.2f", sdp5.ReadMean, cu.ReadMean)
	}
	if sdp5.WriteMean < 4*cu.WriteMean {
		t.Errorf("sdp5 write %.2f not ≥4× disk %.2f", sdp5.WriteMean, cu.WriteMean)
	}
	// Disk maxima dwarf flash maxima (spin-ups).
	if cu.ReadMax <= sdp5.ReadMax {
		t.Errorf("disk read max %.0f not above flash %.0f", cu.ReadMax, sdp5.ReadMax)
	}

	// Measured (MFFS) flash card is slower than the flash disk; datasheet
	// flash card is the fastest of all (§5.1's discrepancy discussion).
	if intelM.WriteMean <= sdp10.WriteMean {
		t.Errorf("intel-measured write %.2f not above sdp10-measured %.2f", intelM.WriteMean, sdp10.WriteMean)
	}
	if intelD.ReadMean >= sdp5.ReadMean {
		t.Errorf("intel-datasheet read %.2f not below sdp5 %.2f", intelD.ReadMean, sdp5.ReadMean)
	}

	// Energy ordering within flash: intel-datasheet < sdp5 < sdp10-measured.
	if !(intelD.EnergyJ < sdp5.EnergyJ && sdp5.EnergyJ < sdp10.EnergyJ) {
		t.Errorf("flash energy ordering broken: intel %.0f, sdp5 %.0f, sdp10 %.0f",
			intelD.EnergyJ, sdp5.EnergyJ, sdp10.EnergyJ)
	}
}

func TestFig2UtilizationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	points, err := Fig2(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byTrace := map[string][]Fig2Point{}
	for _, p := range points {
		byTrace[p.Trace] = append(byTrace[p.Trace], p)
	}
	for name, pts := range byTrace {
		lo, hi := pts[0], pts[len(pts)-1]
		if lo.Utilization != 0.40 || hi.Utilization != 0.95 {
			t.Fatalf("%s: unexpected sweep endpoints", name)
		}
		// §5.2: 40% → 95% increases energy by 70–190%.
		growth := hi.EnergyJ/lo.EnergyJ - 1
		if growth < 0.4 {
			t.Errorf("%s: energy growth %.0f%% at 95%%, want ≥40%% (paper 70–190%%)", name, growth*100)
		}
		// Erasures grow 2–3× ("burning out the flash two to three times
		// faster").
		if hi.MeanErase < 2*lo.MeanErase {
			t.Errorf("%s: mean erases %.2f → %.2f did not double", name, lo.MeanErase, hi.MeanErase)
		}
		// Energy is monotone in utilization.
		for i := 1; i < len(pts); i++ {
			if pts[i].EnergyJ < pts[i-1].EnergyJ {
				t.Errorf("%s: energy not monotone at %.0f%%", name, pts[i].Utilization*100)
			}
		}
		// Write response holds steady until very high utilization
		// (the Figure 2(e) knee): the 80% point is within 30% of the 40%
		// point for every trace.
		var p80 Fig2Point
		for _, p := range pts {
			if p.Utilization == 0.80 {
				p80 = p
			}
		}
		if p80.WriteMeanMs > lo.WriteMeanMs*1.3 {
			t.Errorf("%s: write response rose early: %.2f at 40%% vs %.2f at 80%%",
				name, lo.WriteMeanMs, p80.WriteMeanMs)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	points, err := Fig4(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	get := func(dev string, flashMB int, dramKB int64) Fig4Point {
		for _, p := range points {
			if p.Device == dev && p.FlashMB == flashMB && p.DRAMKB == dramKB {
				return p
			}
		}
		t.Fatalf("missing point %s/%d/%d", dev, flashMB, dramKB)
		return Fig4Point{}
	}
	// §5.4: +1 MB of flash (34→35) cuts energy substantially (paper 25%).
	i34, i35 := get("intel", 34, 0), get("intel", 35, 0)
	if drop := 1 - i35.EnergyJ/i34.EnergyJ; drop < 0.10 {
		t.Errorf("energy drop 34→35MB = %.0f%%, want ≥10%% (paper 25%%)", drop*100)
	}
	// Adding DRAM to the flash card burns energy with no appreciable
	// response benefit.
	i34d := get("intel", 34, 4096)
	if i34d.EnergyJ <= i34.EnergyJ {
		t.Error("4MB of DRAM did not increase flash-card energy")
	}
	if i34.OverallMeanMs-i34d.OverallMeanMs > 0.2*i34.OverallMeanMs {
		t.Errorf("DRAM 'benefit' too large: %.2f → %.2f ms", i34.OverallMeanMs, i34d.OverallMeanMs)
	}
	// The SDP5 gains nothing from DRAM either, and pays for it.
	s0, s4 := get("sdp5", 34, 0), get("sdp5", 34, 4096)
	if s4.EnergyJ <= s0.EnergyJ {
		t.Error("DRAM did not increase sdp5 energy")
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	points, err := Fig5(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byTrace := map[string][]Fig5Point{}
	for _, p := range points {
		byTrace[p.Trace] = append(byTrace[p.Trace], p)
	}
	for name, pts := range byTrace {
		if pts[0].SRAMKB != 0 {
			t.Fatalf("%s: first point not the baseline", name)
		}
		p32 := pts[1]
		// §5.5: a 32 KB buffer improves mean write response by a factor of
		// 20 or more for mac and dos, at least 2× for hp.
		want := 20.0
		if name == "hp" {
			want = 2.0
		}
		if ratio := 1 / p32.NormalizedWrite; ratio < want {
			t.Errorf("%s: 32KB write improvement %.1f×, want ≥%.0f×", name, ratio, want)
		}
		// Energy never increases with the buffer.
		for _, p := range pts[1:] {
			if p.NormalizedEnergy > 1.02 {
				t.Errorf("%s: SRAM %dKB increased energy ×%.2f", name, p.SRAMKB, p.NormalizedEnergy)
			}
		}
	}
}

func TestAsyncCleaningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	rows, err := AsyncCleaning(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// §5.3: asynchronous erasure improves write response by ≥ factor
		// 2.5 with small energy impact.
		if r.Improvement < 0.5 {
			t.Errorf("%s: async improvement %.0f%%, want ≥50%%", r.Trace, r.Improvement*100)
		}
		if r.EnergyChange > 0.05 || r.EnergyChange < -0.5 {
			t.Errorf("%s: async energy change %.0f%% out of range", r.Trace, r.EnergyChange*100)
		}
	}
}

func TestBatteryHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	rows, err := BatteryLife(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.Trace == "mac" && r.Alternative == "intel/datasheet" && r.StorageFraction == 0.20 {
			found = true
			// The paper's "22% extension of battery life" headline.
			if r.LifeExtension < 0.15 || r.LifeExtension > 0.30 {
				t.Errorf("headline extension %.0f%%, want ≈22%%", r.LifeExtension*100)
			}
		}
		if r.LifeExtension < 0 || r.LifeExtension > 1.5 {
			t.Errorf("%s/%s extension %.2f out of the paper's 20–100%% band",
				r.Trace, r.Alternative, r.LifeExtension)
		}
	}
	if !found {
		t.Error("headline row missing")
	}
}

func TestWearShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	rows, err := Wear(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byTrace := map[string][]WearRow{}
	for _, r := range rows {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	for name, rs := range byTrace {
		lo, hi := rs[0], rs[len(rs)-1]
		if hi.MaxErase < 2*lo.MaxErase {
			t.Errorf("%s: max erases %d → %d did not double (paper: 7 → 34)", name, lo.MaxErase, hi.MaxErase)
		}
		if hi.LifetimeFraction <= lo.LifetimeFraction {
			t.Errorf("%s: lifetime consumption not increasing", name)
		}
	}
}

func TestTable1Render(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(rows)
	for _, dev := range []string{"cu140", "sdp10", "intel"} {
		if !strings.Contains(out, dev) {
			t.Errorf("render missing %s:\n%s", dev, out)
		}
	}
}

func TestTable2(t *testing.T) {
	out := RenderTable2(Table2())
	for _, want := range []string{"cu140", "spin up", "erase", "2125"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	wanted := []string{
		"table1", "table2", "table3", "table4a", "table4b", "table4c",
		"fig1", "fig2", "fig3", "fig4", "fig5",
		"async", "validate", "wear", "battery",
		"ablate-cleaner", "ablate-flash-sram", "ablate-series2plus", "ablate-writeback",
	}
	for _, id := range wanted {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	ids := IDs()
	if len(ids) != len(reg) {
		t.Errorf("IDs() returned %d of %d", len(ids), len(reg))
	}
	if ids[0] != "table1" {
		t.Errorf("IDs not in paper order: %v", ids)
	}
}

func TestDeviceSpecConfigureErrors(t *testing.T) {
	bad := DeviceSpec{Name: "nope"}
	var c core.Config
	if err := bad.Configure(&c); err == nil {
		t.Error("unknown device accepted")
	}
}
