package experiments

import "testing"

func TestSpinDownShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	rows, err := SpinDownPolicies(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	get := func(trace, policy string) SpinDownRow {
		for _, r := range rows {
			if r.Trace == trace && r.Policy == policy {
				return r
			}
		}
		t.Fatalf("missing %s/%s", trace, policy)
		return SpinDownRow{}
	}
	// hp (long idle periods): always-on burns an order of magnitude more
	// than any spin-down policy; immediate pays response time.
	hpOn := get("hp", "always-on")
	hpFixed := get("hp", "fixed-5s (paper)")
	hpImm := get("hp", "immediate")
	if hpOn.EnergyJ < 5*hpFixed.EnergyJ {
		t.Errorf("hp always-on %.0f J not ≫ fixed-5s %.0f J", hpOn.EnergyJ, hpFixed.EnergyJ)
	}
	if hpImm.ReadMeanMs < hpFixed.ReadMeanMs {
		t.Errorf("hp immediate read %.1f not above fixed-5s %.1f", hpImm.ReadMeanMs, hpFixed.ReadMeanMs)
	}
	if hpImm.SpinUps <= hpFixed.SpinUps {
		t.Error("immediate policy did not spin up more often")
	}
	// mac (short gaps): immediate is the WORST energy choice — spin-ups
	// dominate; the 5s threshold is near-optimal (the paper's point).
	macOn := get("mac", "always-on")
	macImm := get("mac", "immediate")
	macFixed := get("mac", "fixed-5s (paper)")
	if macImm.EnergyJ < macOn.EnergyJ {
		t.Errorf("mac immediate %.0f J cheaper than always-on %.0f J", macImm.EnergyJ, macOn.EnergyJ)
	}
	if macFixed.EnergyJ > macOn.EnergyJ*1.05 && macFixed.EnergyJ > macImm.EnergyJ {
		t.Errorf("mac fixed-5s %.0f J not competitive", macFixed.EnergyJ)
	}
	// The adaptive policy lands within 10% of the best fixed choice on both
	// traces without per-trace tuning.
	for _, name := range []string{"mac", "hp"} {
		best := get(name, "fixed-5s (paper)").EnergyJ
		for _, p := range []string{"fixed-1s", "fixed-30s"} {
			if e := get(name, p).EnergyJ; e < best {
				best = e
			}
		}
		if ad := get(name, "adaptive").EnergyJ; ad > best*1.25 {
			t.Errorf("%s: adaptive %.0f J more than 25%% above best fixed %.0f J", name, ad, best)
		}
	}
}

func TestWearLevelingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	rows, err := WearLeveling(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byTrace := map[string][]WearLevelRow{}
	for _, r := range rows {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	for name, rs := range byTrace {
		off, on := rs[0], rs[1]
		if on.Spread > off.Spread {
			t.Errorf("%s: leveling worsened spread %.2f → %.2f", name, off.Spread, on.Spread)
		}
		if on.CopiedBlocks < off.CopiedBlocks {
			t.Errorf("%s: leveling copied fewer blocks (%d vs %d)?", name, on.CopiedBlocks, off.CopiedBlocks)
		}
		if on.MaxErase > off.MaxErase {
			t.Errorf("%s: leveling increased max wear %d → %d", name, off.MaxErase, on.MaxErase)
		}
	}
}

func TestHybridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	rows, err := HybridComparison(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byTrace := map[string][]HybridRow{}
	for _, r := range rows {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	for name, rs := range byTrace {
		disk, flash, hyb := rs[0], rs[1], rs[2]
		// The hybrid saves energy over the pure disk (Marsh et al.'s
		// claim: the disk spends more time spun down) ...
		if hyb.EnergyJ >= disk.EnergyJ {
			t.Errorf("%s: hybrid %.0f J not below disk %.0f J", name, hyb.EnergyJ, disk.EnergyJ)
		}
		// ... but cannot beat pure flash, which never spins anything.
		if hyb.EnergyJ <= flash.EnergyJ {
			t.Errorf("%s: hybrid %.0f J below pure flash %.0f J", name, hyb.EnergyJ, flash.EnergyJ)
		}
		// Hybrid writes complete at flash speed (no SRAM, so slower than
		// the buffered disk, comparable to the flash card).
		if hyb.WriteMeanMs > 2*flash.WriteMeanMs {
			t.Errorf("%s: hybrid writes %.2f ms not near flash %.2f ms", name, hyb.WriteMeanMs, flash.WriteMeanMs)
		}
	}
}

func TestEnvyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	rows, err := Envy(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("only %d rows", len(rows))
	}
	// Cleaning fraction rises monotonically with utilization and the
	// cleaner saturates (write response collapses) above 80% — eNVy's
	// "performance was severely degraded at higher utilizations".
	for i := 1; i < len(rows); i++ {
		if rows[i].CleaningFraction < rows[i-1].CleaningFraction {
			t.Errorf("cleaning fraction not monotone at %.0f%%", rows[i].Utilization*100)
		}
	}
	var at80, at95 EnvyRow
	for _, r := range rows {
		if r.Utilization == 0.80 {
			at80 = r
		}
		if r.Utilization == 0.95 {
			at95 = r
		}
	}
	if at80.CleaningFraction < 0.40 {
		t.Errorf("cleaning fraction at 80%% = %.0f%%, want ≥40%% (eNVy: 45%%)", at80.CleaningFraction*100)
	}
	if at95.WriteMeanMs < 20*at80.WriteMeanMs {
		t.Errorf("write response did not collapse above 80%%: %.2f → %.2f ms", at80.WriteMeanMs, at95.WriteMeanMs)
	}
	if at95.WriteStalls == 0 {
		t.Error("no stalled writes at 95%")
	}
}

func TestCSVExport(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	dir := t.TempDir()
	files, err := WriteCSVs(dir, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 7 {
		t.Errorf("wrote %d CSVs, want 7", len(files))
	}
}

func TestSeedSensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs Table 4 five times")
	}
	rows, err := SeedSensitivity("mac", []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Energy.N() != 3 {
			t.Fatalf("%s: %d samples", r.Device, r.Energy.N())
		}
		// The workload generator is a stochastic fit: headline quantities
		// must be stable across seeds (CV under 10%).
		if cv := r.Energy.StdDev() / r.Energy.Mean(); cv > 0.10 {
			t.Errorf("%s: energy CV %.2f across seeds", r.Device, cv)
		}
	}
	// The order-of-magnitude claim holds for every seed: the flash devices'
	// min ratio stays well above 1.
	for _, r := range rows {
		if r.Device == "intel datasheet" || r.Device == "sdp5 datasheet" {
			if r.DiskRatio.Min() < 4 {
				t.Errorf("%s: disk/flash ratio dipped to %.1f on some seed", r.Device, r.DiskRatio.Min())
			}
		}
	}
}
