package experiments

import (
	"fmt"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
	"mobilestorage/internal/units"
)

// ---------------------------------------------------------- energy vs. time

// energySamples is how many sampler intervals the energy-over-time curves
// use; the interval is derived from the trace duration so every
// configuration shares the same time axis.
const energySamples = 24

// EnergyCurve is one configuration's cumulative energy over the mac trace.
type EnergyCurve struct {
	Label  string
	TimesS []float64
	Joules []float64
}

// Final returns the curve's last (total) energy.
func (c EnergyCurve) Final() float64 {
	if len(c.Joules) == 0 {
		return 0
	}
	return c.Joules[len(c.Joules)-1]
}

// EnergyOverTime traces cumulative storage-system energy across the mac
// trace for three configurations the paper contrasts: the CU140 disk with
// the 5 s spin-down policy, the same disk never spun down, and the Intel
// flash card. The curves come from the simulated-time sampler (the
// energy.total_j gauge), so this is also an end-to-end exercise of the
// sampling path.
func EnergyOverTime(seed int64) ([]EnergyCurve, error) {
	t, err := Workload("mac", seed)
	if err != nil {
		return nil, err
	}
	interval := t.Duration() / energySamples
	if interval < units.Second {
		interval = units.Second
	}

	type spec struct {
		label     string
		configure func(cfg *core.Config)
	}
	specs := []spec{
		{"cu140 spin-down 5s", func(cfg *core.Config) {
			cfg.Kind = core.MagneticDisk
			cfg.Disk = device.CU140Measured()
			cfg.SpinDown = defaultSpinDown
			cfg.SRAMBytes = defaultSRAM
		}},
		{"cu140 always on", func(cfg *core.Config) {
			cfg.Kind = core.MagneticDisk
			cfg.Disk = device.CU140Measured()
			cfg.SpinDown = 0 // never spin down
			cfg.SRAMBytes = defaultSRAM
		}},
		{"intel flash card", func(cfg *core.Config) {
			cfg.Kind = core.FlashCard
			cfg.FlashCardParams = device.IntelSeries2Measured()
			cfg.FlashCapacity = table4FlashCapacity
			cfg.StoredData = table4StoredData
		}},
	}

	curves := make([]EnergyCurve, len(specs))
	var firstErr firstError
	pmap(len(specs), func(i int) {
		cfg := core.Config{
			Trace:       t,
			DRAMBytes:   dramFor("mac"),
			SampleEvery: interval,
			Scope:       obs.NewScope(obs.NewRegistry(), nil),
		}
		specs[i].configure(&cfg)
		res, err := core.Run(cfg)
		if err != nil {
			firstErr.set(fmt.Errorf("energy-over-time %s: %w", specs[i].label, err))
			return
		}
		tl := res.Timeline
		if tl == nil || len(tl.Points) == 0 {
			firstErr.set(fmt.Errorf("energy-over-time %s: no sampler timeline", specs[i].label))
			return
		}
		c := EnergyCurve{Label: specs[i].label}
		for _, p := range tl.Points {
			c.TimesS = append(c.TimesS, float64(p.TUs)/1e6)
			c.Joules = append(c.Joules, p.Gauges["energy.total_j"])
		}
		curves[i] = c
	})
	if err := firstErr.get(); err != nil {
		return nil, err
	}
	return curves, nil
}

// RenderEnergyOverTime prints the curves as a shared-axis table (curves
// share sampler boundaries; only the final end-of-run point differs).
func RenderEnergyOverTime(curves []EnergyCurve) string {
	t := &table{header: []string{"t (s)"}}
	longest := 0
	for i, c := range curves {
		t.header = append(t.header, c.Label+" (J)")
		if len(c.TimesS) > len(curves[longest].TimesS) {
			longest = i
		}
	}
	for i := range curves[longest].TimesS {
		row := []string{f0(curves[longest].TimesS[i])}
		for _, c := range curves {
			if i < len(c.TimesS) {
				row = append(row, f1(c.Joules[i]))
			} else {
				row = append(row, "")
			}
		}
		t.addRow(row...)
	}
	out := "Cumulative storage energy over the mac trace (sampler timeline)\n\n" + t.String()
	for _, c := range curves {
		out += fmt.Sprintf("final %-22s %s J\n", c.Label, f1(c.Final()))
	}
	return out
}

// ------------------------------------------------- cleaning vs. utilization

// CleaningPoint is one utilization step of the cleaning-efficiency sweep.
type CleaningPoint struct {
	Utilization  float64
	Cleans       int64
	CopiedBlocks int64
	LivePerClean float64 // mean live blocks relocated per clean
	P90LivePerGC float64
	WriteStalls  int64
	CleanSeconds float64
}

// CleaningEfficiency sweeps flash-card utilization on the dos trace and
// derives the cleaner's efficiency from the event stream (an in-process
// obs.Collector feeding obsreport.Cleaning): as utilization rises, each
// victim segment holds more live data, so the cleaner copies more per
// erase — the §5.3 overhead curve behind Figure 2.
func CleaningEfficiency(seed int64) ([]CleaningPoint, error) {
	t, err := Workload("dos", seed)
	if err != nil {
		return nil, err
	}
	utils := []float64{0.80, 0.85, 0.90, 0.95}
	seg := device.IntelSeries2Datasheet().SegmentSize
	capacity := units.CeilDiv(units.Bytes(float64(core.Footprint(t))/utils[0]), seg) * seg

	points := make([]CleaningPoint, len(utils))
	var firstErr firstError
	pmap(len(utils), func(i int) {
		util := utils[i]
		keep := func(e obs.Event) bool {
			return e.Kind == obs.EvCardClean || e.Kind == obs.EvCardStall
		}
		col := obs.NewCollector(keep)
		cfg := core.Config{
			Trace:           t,
			DRAMBytes:       dramFor("dos"),
			Kind:            core.FlashCard,
			FlashCardParams: device.IntelSeries2Datasheet(),
			FlashCapacity:   capacity,
			StoredData:      units.Bytes(float64(capacity) * util),
			Scope:           obs.NewScope(nil, col),
		}
		res, err := core.Run(cfg)
		if err != nil {
			firstErr.set(fmt.Errorf("cleaning-efficiency util %.2f: %w", util, err))
			return
		}
		rep := obsreport.Cleaning(col.Events())
		// Cross-check the derived report against the run's own counters.
		if rep.CopiedBlocks != res.CopiedBlocks || rep.Stalls != res.WriteStalls {
			firstErr.set(fmt.Errorf("cleaning-efficiency util %.2f: stream (%d copied, %d stalls) disagrees with result (%d, %d)",
				util, rep.CopiedBlocks, rep.Stalls, res.CopiedBlocks, res.WriteStalls))
			return
		}
		points[i] = CleaningPoint{
			Utilization:  util,
			Cleans:       rep.Cleans,
			CopiedBlocks: rep.CopiedBlocks,
			LivePerClean: rep.MeanLivePerClean,
			P90LivePerGC: rep.LivePerClean.Quantile(0.90),
			WriteStalls:  rep.Stalls,
			CleanSeconds: float64(rep.TotalCleanUs) / 1e6,
		}
	})
	if err := firstErr.get(); err != nil {
		return nil, err
	}
	return points, nil
}

// RenderCleaningEfficiency prints the sweep.
func RenderCleaningEfficiency(points []CleaningPoint) string {
	t := &table{header: []string{"util", "cleans", "copied", "live/clean", "p90 live", "stalls", "clean s"}}
	for _, p := range points {
		t.addRow(f2(p.Utilization), fmt.Sprint(p.Cleans), fmt.Sprint(p.CopiedBlocks),
			f2(p.LivePerClean), f1(p.P90LivePerGC), fmt.Sprint(p.WriteStalls), f1(p.CleanSeconds))
	}
	return "Cleaning efficiency vs. utilization, dos trace, Intel Series 2 card\n" +
		"(derived from the flashcard.clean event stream)\n\n" + t.String()
}
