package experiments

import (
	"fmt"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// EnvyRow reports the cleaning-time fraction at one utilization under a
// TPC-A-like transaction load.
type EnvyRow struct {
	Utilization      float64
	CleaningFraction float64
	WriteMeanMs      float64
	WriteStalls      int64
	Amplification    float64
}

// Envy reproduces the eNVy observation the paper quotes in §6: under a
// uniform small-update transaction load (TPC-A), "at a utilization of 80%,
// 45% of the time is spent erasing or copying data within flash, while
// performance was severely degraded at higher utilizations". Uniform
// updates are the cleaner's worst case — every segment decays at the same
// slow rate, so victims are always half-full.
func Envy(seed int64) ([]EnvyRow, error) {
	t, err := workload.TPCA(workload.TPCAConfig{Seed: seed, Ops: 80000, DataMB: 16, TPS: 40})
	if err != nil {
		return nil, err
	}
	params := device.IntelSeries2Datasheet()
	capacity := units.CeilDiv(units.Bytes(float64(core.Footprint(t))/0.40), params.SegmentSize) * params.SegmentSize
	var rows []EnvyRow
	for _, util := range []float64{0.40, 0.60, 0.80, 0.90, 0.95} {
		cfg := core.Config{
			Trace:           t,
			Kind:            core.FlashCard,
			FlashCardParams: params,
			FlashCapacity:   capacity,
			StoredData:      units.Bytes(float64(capacity) * util),
		}
		res, err := core.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("envy util %.2f: %w", util, err)
		}
		rows = append(rows, EnvyRow{
			Utilization:      util,
			CleaningFraction: res.CleaningFraction(),
			WriteMeanMs:      res.Write.Mean(),
			WriteStalls:      res.WriteStalls,
			Amplification:    res.WriteAmplification(),
		})
	}
	return rows, nil
}

// RenderEnvy formats the eNVy comparison.
func RenderEnvy(rows []EnvyRow) string {
	t := &table{header: []string{"Utilization", "Cleaning time", "Wr mean (ms)", "Stalled writes", "Write amp"}}
	for _, r := range rows {
		t.addRow(fmt.Sprintf("%.0f%%", r.Utilization*100),
			fmt.Sprintf("%.0f%%", r.CleaningFraction*100),
			f2(r.WriteMeanMs), fmt.Sprintf("%d", r.WriteStalls), f2(r.Amplification))
	}
	return "Extension (§6, eNVy): cleaning-time fraction under a TPC-A-like load (paper quote: 45% at 80%)\n" + t.String()
}
