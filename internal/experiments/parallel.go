package experiments

import (
	"runtime"
	"sync"
)

// pmap runs f(0..n-1) across a bounded worker pool and blocks until all
// complete. Experiment sweeps are independent simulations, so they
// parallelize perfectly; each f writes only to its own index of a
// pre-allocated result slice, keeping output order — and therefore rendered
// tables — deterministic.
func pmap(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// firstError collects the first non-nil error from concurrent workers.
type firstError struct {
	mu  sync.Mutex
	err error
}

func (e *firstError) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
	}
}

func (e *firstError) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
