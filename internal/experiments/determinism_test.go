package experiments

import (
	"runtime"
	"testing"
)

// TestPmapOrderDeterminism runs the same pmap workload serially
// (GOMAXPROCS=1) and fully parallel, requiring identical output: pmap's
// contract is that each worker writes only its own index, so scheduling must
// never leak into results or row order.
func TestPmapOrderDeterminism(t *testing.T) {
	build := func() []int {
		out := make([]int, 64)
		pmap(len(out), func(i int) { out[i] = i * i })
		return out
	}
	old := runtime.GOMAXPROCS(1)
	serial := build()
	runtime.GOMAXPROCS(old)
	parallel := build()
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d vs parallel %d", i, serial[i], parallel[i])
		}
	}
}

// TestTable4Determinism is the experiment-level determinism lock: the full
// Table 4 sweep must produce bit-identical results whether the seven device
// simulations run serially or concurrently, and across repeated runs with
// the same seed.
func TestTable4Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace simulation")
	}
	const seed = 3
	run := func() []Table4Row {
		rows, err := Table4("synth", seed)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	old := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(old)
	parallel := run()
	again := run()

	compare := func(label string, a, b []Table4Row) {
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d rows", label, len(a), len(b))
		}
		for i := range a {
			ra, rb := a[i], b[i]
			if ra.Device != rb.Device {
				t.Fatalf("%s row %d: device order differs: %v vs %v", label, i, ra.Device, rb.Device)
			}
			if ra.EnergyJ != rb.EnergyJ || ra.ReadMean != rb.ReadMean || ra.WriteMean != rb.WriteMean ||
				ra.ReadMax != rb.ReadMax || ra.WriteMax != rb.WriteMax {
				t.Errorf("%s row %d (%v): results differ: %+v vs %+v", label, i, ra.Device, ra, rb)
			}
			if ra.Result.EndTime != rb.Result.EndTime || ra.Result.Erases != rb.Result.Erases ||
				ra.Result.SpinUps != rb.Result.SpinUps {
				t.Errorf("%s row %d (%v): counters differ", label, i, ra.Device)
			}
		}
	}
	compare("serial-vs-parallel", serial, parallel)
	compare("repeat", parallel, again)
}
