package experiments

import (
	"fmt"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
)

// WearLevelRow compares the flash card with and without static wear
// leveling on one trace.
type WearLevelRow struct {
	Trace         string
	Leveling      string
	MaxErase      int64
	MeanErase     float64
	Spread        float64 // max / mean: 1.0 = perfectly level
	CopiedBlocks  int64
	EnergyJ       float64
	LifetimeYears float64 // years to wear out the worst segment at this rate
}

// WearLeveling runs the §2 load-spreading aside: static wear leveling
// bounds the erase-count spread (extending the card's effective lifetime,
// which ends when the *worst* segment hits the endurance limit) at the
// cost of extra cleaning copies.
func WearLeveling(seed int64) ([]WearLevelRow, error) {
	var rows []WearLevelRow
	for _, name := range []string{"mac", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		params := device.IntelSeries2Datasheet()
		capacity := units.CeilDiv(units.Bytes(float64(core.Footprint(t))/0.90), params.SegmentSize) * params.SegmentSize
		for _, level := range []int64{0, 8} {
			cfg := core.Config{
				Trace:           t,
				DRAMBytes:       dramFor(name),
				Kind:            core.FlashCard,
				FlashCardParams: params,
				FlashCapacity:   capacity,
				WearLeveling:    level,
			}
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("wearlevel %s/%d: %w", name, level, err)
			}
			label := "off"
			if level > 0 {
				label = fmt.Sprintf("threshold %d", level)
			}
			row := WearLevelRow{
				Trace:        name,
				Leveling:     label,
				MaxErase:     res.MaxEraseCount,
				MeanErase:    res.MeanEraseCount,
				CopiedBlocks: res.CopiedBlocks,
				EnergyJ:      res.EnergyJ,
			}
			if row.MeanErase > 0 {
				row.Spread = float64(row.MaxErase) / row.MeanErase
			}
			// Lifetime: the worst segment consumed MaxErase of its 100k
			// cycles over the trace span; extrapolate to years.
			if row.MaxErase > 0 {
				tracesPerLife := float64(params.EnduranceCycles) / float64(row.MaxErase)
				row.LifetimeYears = tracesPerLife * res.EndTime.Seconds() / (365.25 * 86400)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderWearLevel formats the wear-leveling ablation.
func RenderWearLevel(rows []WearLevelRow) string {
	t := &table{header: []string{"Trace", "Leveling", "Max/unit", "Mean/unit", "Max/mean", "Copied", "Energy (J)", "Lifetime (yr)"}}
	for _, r := range rows {
		t.addRow(r.Trace, r.Leveling, fmt.Sprintf("%d", r.MaxErase), f2(r.MeanErase), f2(r.Spread),
			fmt.Sprintf("%d", r.CopiedBlocks), f0(r.EnergyJ), f1(r.LifetimeYears))
	}
	return "Ablation (§2): static wear leveling at 90% utilization\n" + t.String()
}
