package experiments

import (
	"fmt"
	"sync"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/index"
	"mobilestorage/internal/plot"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// IndexBenchPoint is one (engine, device, utilization) sample of the
// database-index workload family: a B+tree or LSM run replayed on one
// storage alternative at one storage utilization.
type IndexBenchPoint struct {
	Engine      string
	Device      string
	Utilization float64
	EnergyJ     float64
	ReadMeanMs  float64
	WriteMeanMs float64
	Erases      int64
	MaxErase    int64
	// CleanerAmp is the device-level write amplification (host+copied over
	// host blocks); IndexAmp is the engine-level amplification (pages
	// physically written over bytes logically changed). The paper's cleaner
	// only sees the former; Kim/Whang/Song's page-differential argument is
	// about the product of the two.
	CleanerAmp float64
	IndexAmp   float64
}

// IndexBenchUtilizations is the swept storage-utilization axis — the same
// eight points as Figure 2, so the index family reads against the paper's
// file-system results.
var IndexBenchUtilizations = Fig2Utilizations

// IndexBenchDevices lists the four storage alternatives in display order.
var IndexBenchDevices = []string{"cu140", "sdp5", "intel", "hybrid"}

// indexTraceCache memoizes generated index workloads with their engine
// stats, keyed by engine/seed.
var indexTraceCache sync.Map

type indexTraceEntry struct {
	trace *trace.Trace
	stats index.Stats
}

// IndexWorkload returns the canonical index trace for an engine and seed,
// memoized like Workload; the returned stats carry the engine-level write
// amplification.
func IndexWorkload(engine index.EngineKind, seed int64) (*trace.Trace, index.Stats, error) {
	return IndexWorkloadMix(engine, seed, "default")
}

// IndexWorkloadMix is IndexWorkload with a named op mix ("default" or
// "read-heavy", per index.MixByName).
func IndexWorkloadMix(engine index.EngineKind, seed int64, mixName string) (*trace.Trace, index.Stats, error) {
	cfg, err := index.BenchTraceConfigMix(engine, seed, mixName)
	if err != nil {
		return nil, index.Stats{}, err
	}
	key := fmt.Sprintf("%s/%d/%s", engine, seed, mixName)
	if v, ok := indexTraceCache.Load(key); ok {
		e := v.(indexTraceEntry)
		return e.trace, e.stats, nil
	}
	t, st, err := index.GenerateTrace(cfg)
	if err != nil {
		return nil, index.Stats{}, err
	}
	indexTraceCache.Store(key, indexTraceEntry{trace: t, stats: st})
	return t, st, nil
}

// indexBenchConfig builds the core.Config for one (device, utilization)
// cell. Flash capacity follows the Figure 2 idiom: sized so the lowest
// swept utilization still holds the trace footprint, utilization set by
// filler. The hybrid's axis is its cache size: the flash cache is sized so
// the index footprint occupies util of it. The magnetic disk has no
// utilization knob — its flat curve across the sweep is the result. No
// DRAM cache is configured anywhere: the index's own buffer pool is the
// cache, and double-caching would hide the device traffic under test.
func indexBenchConfig(dev string, util float64, t *trace.Trace, prep *core.TracePrep) (core.Config, error) {
	cfg := core.Config{Trace: t, Prep: prep}
	seg := device.IntelSeries2Datasheet().SegmentSize
	minUtil := IndexBenchUtilizations[0]
	capacity := units.CeilDiv(units.Bytes(float64(prep.Footprint())/minUtil), seg) * seg
	// The index footprint is small next to the file-system traces, so the
	// footprint-derived capacity is dominated by a different bound: at 95%
	// utilization the prefill must still fit beside the card's two reserve
	// segments, which needs 2/(1-0.95) = 40 segments. Utilization is then
	// set by filler — the index shares the card with other resident data,
	// as on a real PDA.
	maxUtil := IndexBenchUtilizations[len(IndexBenchUtilizations)-1]
	if minCap := units.CeilDiv(2*seg, units.Bytes(float64(seg)*(1-maxUtil))) * seg; capacity < minCap {
		capacity = minCap
	}
	switch dev {
	case "cu140":
		cfg.Kind = core.MagneticDisk
		cfg.Disk = device.CU140Datasheet()
		cfg.SpinDown = defaultSpinDown
		cfg.SRAMBytes = defaultSRAM
	case "sdp5":
		cfg.Kind = core.FlashDisk
		cfg.FlashDiskParams = device.SDP5Datasheet()
		cfg.FlashCapacity = capacity
		cfg.StoredData = units.Bytes(float64(capacity) * util)
	case "intel":
		cfg.Kind = core.FlashCard
		cfg.FlashCardParams = device.IntelSeries2Datasheet()
		cfg.FlashCapacity = capacity
		cfg.StoredData = units.Bytes(float64(capacity) * util)
	case "hybrid":
		cfg.Kind = core.FlashCache
		cfg.Disk = device.CU140Datasheet()
		cfg.FlashCardParams = device.IntelSeries2Datasheet()
		cfg.SpinDown = 2 * units.Second
		// The hybrid's axis is its cache: sized so the index footprint
		// occupies util of it. No segment rounding — at these footprints
		// rounding would collapse adjacent utilizations onto one size.
		cfg.FlashCacheBytes = units.Bytes(float64(prep.Footprint()) / util)
	default:
		return core.Config{}, fmt.Errorf("indexbench: unknown device %q", dev)
	}
	return cfg, nil
}

// IndexBenchEngine replays one index engine's trace over every storage
// alternative at 40–95% utilization. The trace is generated once (memoized)
// and the device × utilization grid is swept in parallel.
func IndexBenchEngine(engine index.EngineKind, seed int64) ([]IndexBenchPoint, error) {
	return IndexBenchEngineMix(engine, seed, "default")
}

// IndexBenchEngineMix is IndexBenchEngine under a named op mix.
func IndexBenchEngineMix(engine index.EngineKind, seed int64, mixName string) ([]IndexBenchPoint, error) {
	t, st, err := IndexWorkloadMix(engine, seed, mixName)
	if err != nil {
		return nil, fmt.Errorf("indexbench %s: %w", engine, err)
	}
	prep := prepare(t)
	type cell struct {
		dev  string
		util float64
	}
	var cells []cell
	for _, dev := range IndexBenchDevices {
		for _, util := range IndexBenchUtilizations {
			cells = append(cells, cell{dev, util})
		}
	}
	points := make([]IndexBenchPoint, len(cells))
	var firstErr firstError
	pmap(len(cells), func(i int) {
		c := cells[i]
		cfg, err := indexBenchConfig(c.dev, c.util, t, prep)
		if err != nil {
			firstErr.set(err)
			return
		}
		res, err := core.Run(cfg)
		if err != nil {
			firstErr.set(fmt.Errorf("indexbench %s/%s util %.2f: %w", engine, c.dev, c.util, err))
			return
		}
		points[i] = IndexBenchPoint{
			Engine:      string(engine),
			Device:      c.dev,
			Utilization: c.util,
			EnergyJ:     res.EnergyJ,
			ReadMeanMs:  res.Read.Mean(),
			WriteMeanMs: res.Write.Mean(),
			Erases:      res.Erases,
			MaxErase:    res.MaxEraseCount,
			CleanerAmp:  res.WriteAmplification(),
			IndexAmp:    st.WriteAmplification(),
		}
	})
	if err := firstErr.get(); err != nil {
		return nil, err
	}
	return points, nil
}

// IndexBench replays both index engines over every storage alternative at
// 40–95% utilization: the database-index counterpart of Table 4 + Figure 2.
// The headline interaction is the LSM's sequential compaction writes
// against the flash card's segment cleaner.
func IndexBench(seed int64) ([]IndexBenchPoint, error) {
	return IndexBenchMix(seed, "default")
}

// IndexBenchMix is IndexBench under a named op mix — "read-heavy" replays
// index.ReadHeavyMix (a settled database serving mostly queries), where the
// cleaner pressure drops and read latency dominates the comparison.
func IndexBenchMix(seed int64, mixName string) ([]IndexBenchPoint, error) {
	var points []IndexBenchPoint
	for _, eng := range index.EngineKinds {
		ps, err := IndexBenchEngineMix(eng, seed, mixName)
		if err != nil {
			return nil, err
		}
		points = append(points, ps...)
	}
	return points, nil
}

// RenderIndexBench prints the sweep as a paper-style table.
func RenderIndexBench(points []IndexBenchPoint) string {
	t := &table{header: []string{"Engine", "Device", "Util", "Energy (J)", "Rd mean (ms)", "Wr mean (ms)",
		"Erases", "Max/unit", "Cleaner amp", "Index amp"}}
	for _, p := range points {
		t.addRow(p.Engine, p.Device, fmt.Sprintf("%.0f%%", p.Utilization*100),
			f1(p.EnergyJ), f2(p.ReadMeanMs), f2(p.WriteMeanMs),
			fmt.Sprintf("%d", p.Erases), fmt.Sprintf("%d", p.MaxErase),
			f2(p.CleanerAmp), f2(p.IndexAmp))
	}
	return "Index workloads: B+tree vs. LSM across the storage alternatives (40–95% utilization)\n" + t.String()
}

// IndexBenchGrid renders the sweep as small multiples: metric rows
// (write latency, energy, erases) × device columns, two series per panel
// (one per engine), utilization on the x axis.
func IndexBenchGrid(points []IndexBenchPoint) *plot.Grid {
	metrics := []struct {
		label string
		get   func(IndexBenchPoint) float64
	}{
		{"write mean (ms)", func(p IndexBenchPoint) float64 { return p.WriteMeanMs }},
		{"energy (J)", func(p IndexBenchPoint) float64 { return p.EnergyJ }},
		{"erases", func(p IndexBenchPoint) float64 { return float64(p.Erases) }},
	}
	g := &plot.Grid{
		Title: "index engines × storage alternatives vs. utilization",
		Cols:  len(IndexBenchDevices),
	}
	for _, m := range metrics {
		for _, dev := range IndexBenchDevices {
			cell := plot.Chart{
				Title:  dev + ": " + m.label,
				XLabel: "utilization",
				YLabel: m.label,
			}
			for _, eng := range index.EngineKinds {
				var pts []plot.Point
				for _, p := range points {
					if p.Device == dev && p.Engine == string(eng) {
						pts = append(pts, plot.Point{X: p.Utilization, Y: m.get(p)})
					}
				}
				cell.Series = append(cell.Series, plot.Series{Name: string(eng), Points: pts})
			}
			g.Cells = append(g.Cells, cell)
		}
	}
	return g
}
