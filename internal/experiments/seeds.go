package experiments

import (
	"fmt"

	"mobilestorage/internal/stats"
)

// SeedRow reports, for one Table 4 device on one trace, the spread of a
// headline quantity across workload seeds.
type SeedRow struct {
	Trace   string
	Device  string
	Energy  stats.Summary // J, across seeds
	ReadMs  stats.Summary
	WriteMs stats.Summary
	// DiskRatio is the per-seed mean of cu140-datasheet energy divided by
	// this device's energy — the "order of magnitude" headline — so its
	// spread shows whether the conclusion depends on the seed.
	DiskRatio stats.Summary
}

// SeedSensitivity reruns the Table 4(a) comparison across several workload
// seeds. The original traces are gone; what stands in for them is a
// stochastic generator, so the reproduction's conclusions should be
// properties of the *distribution*, not of seed 1. A conclusion whose
// spread straddles 1× would be an artifact; the paper's orderings hold for
// every seed.
func SeedSensitivity(traceName string, seeds []int64) ([]SeedRow, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	specs := Table4Devices()
	rows := make([]SeedRow, len(specs))
	for i, spec := range specs {
		rows[i] = SeedRow{Trace: traceName, Device: spec.String()}
	}
	for _, seed := range seeds {
		t4, err := Table4(traceName, seed)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		var diskJ float64
		for _, r := range t4 {
			if r.Device.Name == "cu140" && r.Device.Source == "datasheet" {
				diskJ = r.EnergyJ
			}
		}
		for i, r := range t4 {
			rows[i].Energy.Add(r.EnergyJ)
			rows[i].ReadMs.Add(r.ReadMean)
			rows[i].WriteMs.Add(r.WriteMean)
			if r.EnergyJ > 0 {
				rows[i].DiskRatio.Add(diskJ / r.EnergyJ)
			}
		}
	}
	return rows, nil
}

// RenderSeeds formats the seed-sensitivity analysis.
func RenderSeeds(rows []SeedRow) string {
	t := &table{header: []string{"Trace", "Device", "Energy J (mean±σ)", "Rd ms", "Wr ms", "disk/this energy"}}
	pm := func(s stats.Summary) string {
		return fmt.Sprintf("%.0f±%.0f", s.Mean(), s.StdDev())
	}
	pm2 := func(s stats.Summary) string {
		return fmt.Sprintf("%.2f±%.2f", s.Mean(), s.StdDev())
	}
	for _, r := range rows {
		t.addRow(r.Trace, r.Device, pm(r.Energy), pm2(r.ReadMs), pm2(r.WriteMs), pm2(r.DiskRatio))
	}
	return "Robustness: Table 4 across workload seeds (the conclusions must not be seed artifacts)\n" + t.String()
}
