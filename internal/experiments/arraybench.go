package experiments

import (
	"fmt"

	"mobilestorage/internal/array"
	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
)

// ArrayBenchRow is one (topology, utilization, health) sample of the
// degraded-mode array sweep: a mirrored or striped flash-card array
// replaying the synth trace either healthy or with member m0 dying halfway
// through.
type ArrayBenchRow struct {
	Topology    string
	Utilization float64
	// Degraded marks the runs where member m0 dies at the trace midpoint
	// (the mirror rebuilds onto a replacement; the stripe limps on with
	// dead shares paying retry backoff).
	Degraded    bool
	EnergyJ     float64
	ReadMeanMs  float64
	WriteMeanMs float64
	Erases      int64
	Rebuilds    int64
	RebuildMs   float64
	Exhausted   int64
	Violations  int
}

// ArrayBenchTopologies lists the swept array shapes.
var ArrayBenchTopologies = []string{"mirror:2xflashcard", "stripe:2xflashcard"}

// ArrayBenchUtilizations is the swept utilization axis — the ends and
// middle of the Figure 2 range keep the 2×3×2 grid fast.
var ArrayBenchUtilizations = []float64{0.40, 0.80, 0.95}

// ArrayBench sweeps array topology × utilization, healthy and degraded: the
// robustness counterpart of Figure 2. The invariant half of the result is
// that every degraded mirror cell completes with zero violations — no
// acknowledged write is lost while a replica survives.
func ArrayBench(seed int64) ([]ArrayBenchRow, error) {
	t, err := Workload("synth", seed)
	if err != nil {
		return nil, err
	}
	prep := prepare(t)
	type cell struct {
		topo     string
		util     float64
		degraded bool
	}
	var cells []cell
	for _, topo := range ArrayBenchTopologies {
		for _, util := range ArrayBenchUtilizations {
			for _, degraded := range []bool{false, true} {
				cells = append(cells, cell{topo, util, degraded})
			}
		}
	}
	rows := make([]ArrayBenchRow, len(cells))
	var firstErr firstError
	pmap(len(cells), func(i int) {
		c := cells[i]
		spec, err := array.ParseSpec(c.topo)
		if err != nil {
			firstErr.set(err)
			return
		}
		cfg := core.Config{
			Trace:            t,
			Prep:             prep,
			DRAMBytes:        defaultDRAM,
			Array:            spec,
			FlashCardParams:  device.IntelSeries2Measured(),
			FlashUtilization: c.util,
			FaultSeed:        seed,
		}
		if c.degraded {
			cfg.MemberFaults = fault.PlanSet{
				"m0": {DieAtUs: int64(t.Duration()) / 2, MaxRetries: 2, BackoffUs: 200, MaxBackoffUs: 5_000},
			}
		}
		res, err := core.Run(cfg)
		if err != nil {
			firstErr.set(fmt.Errorf("arraybench %s util %.2f degraded=%v: %w", c.topo, c.util, c.degraded, err))
			return
		}
		row := ArrayBenchRow{
			Topology:    c.topo,
			Utilization: c.util,
			Degraded:    c.degraded,
			EnergyJ:     res.EnergyJ,
			ReadMeanMs:  res.Read.Mean(),
			WriteMeanMs: res.Write.Mean(),
			Erases:      res.Erases,
		}
		if rep := res.Faults; rep != nil {
			row.Rebuilds = rep.Rebuilds
			row.RebuildMs = float64(rep.RebuildTime) / 1000
			row.Exhausted = rep.Exhausted
			row.Violations = len(rep.Violations)
		}
		rows[i] = row
	})
	if err := firstErr.get(); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderArrayBench prints the sweep as a paper-style table.
func RenderArrayBench(rows []ArrayBenchRow) string {
	t := &table{header: []string{"Array", "Util", "Health", "Energy (J)", "Rd mean (ms)", "Wr mean (ms)",
		"Erases", "Rebuilds", "Rebuild (ms)", "Dead-share IO", "Violations"}}
	for _, r := range rows {
		health := "healthy"
		if r.Degraded {
			health = "m0 dies"
		}
		t.addRow(r.Topology, fmt.Sprintf("%.0f%%", r.Utilization*100), health,
			f1(r.EnergyJ), f2(r.ReadMeanMs), f2(r.WriteMeanMs),
			fmt.Sprintf("%d", r.Erases), fmt.Sprintf("%d", r.Rebuilds), f1(r.RebuildMs),
			fmt.Sprintf("%d", r.Exhausted), fmt.Sprintf("%d", r.Violations))
	}
	return "Degraded-mode arrays: topology × utilization, healthy vs. one member dead at the midpoint\n" + t.String()
}
