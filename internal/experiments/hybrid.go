package experiments

import (
	"fmt"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
)

// HybridRow compares the four architectures — disk, flash disk, flash card,
// and the flash-cache hybrid — on one trace.
type HybridRow struct {
	Trace       string
	Device      string
	EnergyJ     float64
	ReadMeanMs  float64
	WriteMeanMs float64
	SpinUps     int64
}

// HybridComparison runs the §6 extension: Marsh, Douglis & Krishnan's
// flash-as-disk-cache architecture against the paper's three. The hybrid
// keeps the disk's capacity (and its cost per megabyte) while approaching
// flash energy: the disk wakes only for cache-miss reads and batched
// destages.
func HybridComparison(seed int64) ([]HybridRow, error) {
	var rows []HybridRow
	for _, name := range []string{"mac", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		configs := []core.Config{
			{
				Trace: t, DRAMBytes: dramFor(name),
				Kind: core.MagneticDisk, Disk: device.CU140Datasheet(),
				SpinDown: defaultSpinDown, SRAMBytes: defaultSRAM,
			},
			{
				Trace: t, DRAMBytes: dramFor(name),
				Kind: core.FlashCard, FlashCardParams: device.IntelSeries2Datasheet(),
				FlashCapacity: table4FlashCapacity, StoredData: table4StoredData,
			},
			{
				Trace: t, DRAMBytes: dramFor(name),
				Kind: core.FlashCache, Disk: device.CU140Datasheet(),
				FlashCardParams: device.IntelSeries2Datasheet(),
				// The hybrid's disk serves only cache misses and destages,
				// so an aggressive spin-down pays off.
				SpinDown:        2 * units.Second,
				FlashCacheBytes: 24 * units.MB,
			},
		}
		for _, cfg := range configs {
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("hybrid %s: %w", name, err)
			}
			rows = append(rows, HybridRow{
				Trace:       name,
				Device:      res.Device,
				EnergyJ:     res.EnergyJ,
				ReadMeanMs:  res.Read.Mean(),
				WriteMeanMs: res.Write.Mean(),
				SpinUps:     res.SpinUps,
			})
		}
	}
	return rows, nil
}

// RenderHybrid formats the architecture comparison.
func RenderHybrid(rows []HybridRow) string {
	t := &table{header: []string{"Trace", "Architecture", "Energy (J)", "Rd mean (ms)", "Wr mean (ms)", "Spin-ups"}}
	for _, r := range rows {
		t.addRow(r.Trace, r.Device, f0(r.EnergyJ), f2(r.ReadMeanMs), f2(r.WriteMeanMs), fmt.Sprintf("%d", r.SpinUps))
	}
	return "Extension (§6): flash-as-disk-cache hybrid (Marsh et al., 24 MB cache) vs. the paper’s architectures\n" + t.String()
}
