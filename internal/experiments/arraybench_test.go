package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilestorage/internal/core"
	"mobilestorage/internal/index"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// TestArrayBenchShape sweeps the full grid and checks the robustness
// claims the table makes: every cell completes, zero invariant violations
// anywhere, every degraded mirror rebuilds exactly once, and every
// degraded stripe pays dead-share retries.
func TestArrayBenchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid replay")
	}
	rows, err := ArrayBench(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	want := len(ArrayBenchTopologies) * len(ArrayBenchUtilizations) * 2
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("%s util %.2f degraded=%v: %d invariant violations", r.Topology, r.Utilization, r.Degraded, r.Violations)
		}
		if r.EnergyJ <= 0 || r.Erases == 0 {
			t.Errorf("%s util %.2f degraded=%v: no work done (energy %.1f, erases %d)",
				r.Topology, r.Utilization, r.Degraded, r.EnergyJ, r.Erases)
		}
		switch {
		case !r.Degraded:
			if r.Rebuilds != 0 || r.Exhausted != 0 {
				t.Errorf("healthy %s util %.2f: rebuilds=%d exhausted=%d, want zero", r.Topology, r.Utilization, r.Rebuilds, r.Exhausted)
			}
		case strings.HasPrefix(r.Topology, "mirror"):
			if r.Rebuilds != 1 || r.RebuildMs <= 0 {
				t.Errorf("degraded mirror util %.2f: rebuilds=%d (%.1f ms), want exactly one timed rebuild", r.Utilization, r.Rebuilds, r.RebuildMs)
			}
		default: // stripe
			if r.Rebuilds != 0 {
				t.Errorf("degraded stripe util %.2f rebuilt %d members", r.Utilization, r.Rebuilds)
			}
			if r.Exhausted == 0 {
				t.Errorf("degraded stripe util %.2f: no dead-share IO counted", r.Utilization)
			}
		}
	}
	if out := RenderArrayBench(rows); !strings.Contains(out, "m0 dies") || !strings.Contains(out, "mirror:2xflashcard") {
		t.Error("rendered table missing expected rows")
	}
}

// TestIndexBenchReadHeavyGoldenRow pins one cell of the read-heavy
// indexbench variant — btree on the flash card at 80% utilization — to a
// golden file. The read-heavy mix must also actually bite: lookups have
// to reach the device (the variant runs BenchOpsReadHeavy ops so its
// settled index outgrows the pager pool — at BenchOps everything would
// be pool hits and the sweep would measure nothing), and per-op cleaner
// pressure must drop below the default write-heavy mix's in the same
// cell.
func TestIndexBenchReadHeavyGoldenRow(t *testing.T) {
	row := func(mixName string) IndexBenchPoint {
		t.Helper()
		tr, st, err := IndexWorkloadMix(index.EngineBTree, DefaultSeed, mixName)
		if err != nil {
			t.Fatal(err)
		}
		prep := prepare(tr)
		cfg, err := indexBenchConfig("intel", 0.80, tr, prep)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return IndexBenchPoint{
			Engine: "btree", Device: "intel", Utilization: 0.80,
			EnergyJ: res.EnergyJ, ReadMeanMs: res.Read.Mean(), WriteMeanMs: res.Write.Mean(),
			Erases: res.Erases, MaxErase: res.MaxEraseCount,
			CleanerAmp: res.WriteAmplification(), IndexAmp: st.WriteAmplification(),
		}
	}
	got := row("read-heavy")

	path := filepath.Join("testdata", "golden", "indexbench-readheavy-row.json")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	var want IndexBenchPoint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("read-heavy golden row drifted:\n got %+v\nwant %+v", got, want)
	}

	if got.ReadMeanMs <= 0 {
		t.Error("read-heavy mix produced no device reads; the settled index fits the pager pool")
	}
	def := row("default")
	gotPerOp := float64(got.Erases) / float64(index.BenchOpsReadHeavy)
	defPerOp := float64(def.Erases) / float64(index.BenchOps)
	if gotPerOp >= defPerOp {
		t.Errorf("read-heavy mix should erase less per op than the default write-heavy mix: %.6f vs %.6f",
			gotPerOp, defPerOp)
	}
}
