package experiments

import (
	"fmt"

	"mobilestorage/internal/compress"
	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/testbed"
	"mobilestorage/internal/units"
)

// ---------------------------------------------------------------- Figure 1

// Fig1Series is one curve of Figure 1: per-write latency and instantaneous
// throughput for 4 KB writes to a 1 MB file.
type Fig1Series struct {
	Label  string
	Points []testbed.WriteLatencyPoint
}

// Fig1 reruns the Figure 1 measurement for the paper's five configurations.
// The Intel/MFFS latency grows linearly with cumulative data; the others
// stay flat.
func Fig1() ([]Fig1Series, error) {
	configs := []struct {
		label string
		cfg   testbed.Config
	}{
		{"cu140 uncompressed", testbed.Config{Kind: testbed.CU140, Data: compress.Random}},
		{"cu140 compressed", testbed.Config{Kind: testbed.CU140, Compression: true, Data: compress.MobyDick}},
		{"sdp10 uncompressed", testbed.Config{Kind: testbed.SDP10, Data: compress.Random}},
		{"sdp10 compressed", testbed.Config{Kind: testbed.SDP10, Compression: true, Data: compress.MobyDick}},
		{"intel compressed", testbed.Config{Kind: testbed.IntelCard, Data: compress.MobyDick}},
	}
	var out []Fig1Series
	for _, c := range configs {
		pts, err := testbed.WriteLatencyCurve(c.cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig1Series{Label: c.label, Points: pts})
	}
	return out, nil
}

// RenderFig1 prints the Figure 1 series as columns.
func RenderFig1(series []Fig1Series) string {
	t := &table{header: []string{"Cumulative KB"}}
	for _, s := range series {
		t.header = append(t.header, s.Label+" lat(ms)", s.Label+" KB/s")
	}
	if len(series) == 0 || len(series[0].Points) == 0 {
		return "Figure 1: no data\n"
	}
	for i := range series[0].Points {
		cells := []string{f0(series[0].Points[i].CumulativeKB)}
		for _, s := range series {
			cells = append(cells, f1(s.Points[i].LatencyMs), f0(s.Points[i].ThroughputKBs))
		}
		t.addRow(cells...)
	}
	return "Figure 1: 4 KB writes to a 1 MB file (per-32KB averages)\n" + t.String()
}

// ---------------------------------------------------------------- Figure 2

// Fig2Point is one utilization sample of Figure 2 for one trace.
type Fig2Point struct {
	Trace        string
	Utilization  float64
	EnergyJ      float64
	WriteMeanMs  float64
	Erases       int64
	MaxErase     int64
	MeanErase    float64
	WriteStalls  int64
	CopiedBlocks int64
}

// Fig2Utilizations are the storage utilizations swept in Figure 2.
var Fig2Utilizations = []float64{0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95}

// Fig2 sweeps flash-card storage utilization for each trace (Intel
// datasheet parameters, 128 KB segments). The flash capacity is fixed per
// trace — large relative to the trace footprint — and utilization is set by
// preallocating filler data, exactly like §5.2.
func Fig2(seed int64) ([]Fig2Point, error) {
	var out []Fig2Point
	for _, name := range []string{"mac", "dos", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		// One prep per trace: the eight utilization runs share the same
		// validation, hints, and footprint.
		prep := prepare(t)
		// Fix the card size so the lowest utilization in the sweep still
		// holds the whole trace footprint, then set utilization by filler.
		seg := device.IntelSeries2Datasheet().SegmentSize
		minUtil := Fig2Utilizations[0]
		capacity := units.CeilDiv(units.Bytes(float64(prep.Footprint())/minUtil), seg) * seg
		points := make([]Fig2Point, len(Fig2Utilizations))
		var firstErr firstError
		pmap(len(Fig2Utilizations), func(i int) {
			util := Fig2Utilizations[i]
			stored := units.Bytes(float64(capacity) * util)
			cfg := core.Config{
				Trace:           t,
				Prep:            prep,
				DRAMBytes:       dramFor(name),
				Kind:            core.FlashCard,
				FlashCardParams: device.IntelSeries2Datasheet(),
				FlashCapacity:   capacity,
				StoredData:      stored,
			}
			res, err := core.Run(cfg)
			if err != nil {
				firstErr.set(fmt.Errorf("fig2 %s util %.2f: %w", name, util, err))
				return
			}
			points[i] = Fig2Point{
				Trace:        name,
				Utilization:  util,
				EnergyJ:      res.EnergyJ,
				WriteMeanMs:  res.Write.Mean(),
				Erases:       res.Erases,
				MaxErase:     res.MaxEraseCount,
				MeanErase:    res.MeanEraseCount,
				WriteStalls:  res.WriteStalls,
				CopiedBlocks: res.CopiedBlocks,
			}
		})
		if err := firstErr.get(); err != nil {
			return nil, err
		}
		out = append(out, points...)
	}
	return out, nil
}

// RenderFig2 prints the Figure 2 sweep.
func RenderFig2(points []Fig2Point) string {
	t := &table{header: []string{"Trace", "Utilization", "Energy (J)", "Wr mean (ms)",
		"Erases", "Max/unit", "Mean/unit", "Stalled writes"}}
	for _, p := range points {
		t.addRow(p.Trace, fmt.Sprintf("%.0f%%", p.Utilization*100), f0(p.EnergyJ), f2(p.WriteMeanMs),
			fmt.Sprintf("%d", p.Erases), fmt.Sprintf("%d", p.MaxErase), f2(p.MeanErase),
			fmt.Sprintf("%d", p.WriteStalls))
	}
	return "Figure 2 (+§5.2 endurance): flash card vs. storage utilization\n" + t.String()
}

// ---------------------------------------------------------------- Figure 3

// Fig3Series is one live-data curve of Figure 3.
type Fig3Series struct {
	LiveData units.Bytes
	Points   []testbed.OverwritePoint
}

// Fig3 reruns the Figure 3 measurement: 20 × 1 MB of random 4 KB
// overwrites on a 10 MB Intel card holding 1, 9, and 9.5 MB of live data.
func Fig3(seed int64) ([]Fig3Series, error) {
	var out []Fig3Series
	for _, live := range []units.Bytes{1 * units.MB, 9 * units.MB, 9*units.MB + 512*units.KB} {
		pts, err := testbed.OverwriteCurve(live, 20, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig3Series{LiveData: live, Points: pts})
	}
	return out, nil
}

// RenderFig3 prints the Figure 3 curves.
func RenderFig3(series []Fig3Series) string {
	t := &table{header: []string{"Cumulative MB"}}
	for _, s := range series {
		t.header = append(t.header, s.LiveData.String()+" live (KB/s)")
	}
	if len(series) == 0 {
		return "Figure 3: no data\n"
	}
	for i := range series[0].Points {
		cells := []string{f0(series[0].Points[i].CumulativeMB)}
		for _, s := range series {
			cells = append(cells, f1(s.Points[i].ThroughputKBs))
		}
		t.addRow(cells...)
	}
	return "Figure 3: overwrite throughput on a 10 MB Intel card under MFFS\n" + t.String()
}

// ---------------------------------------------------------------- Figure 4

// Fig4Point is one (device, flash size, DRAM size) sample of Figure 4.
type Fig4Point struct {
	Device        string
	FlashMB       int
	DRAMKB        int64
	Utilization   float64
	EnergyJ       float64
	OverallMeanMs float64
}

// Fig4DRAMSizes are the cache sizes swept (0–4 MB).
var Fig4DRAMSizes = []units.Bytes{0, 512 * units.KB, 1 * units.MB, 2 * units.MB, 3 * units.MB, 4 * units.MB}

// Fig4 reproduces the DRAM-vs-flash trade-off: the dos trace with 32 MB of
// stored data, flash sizes 34–38 MB (Intel) plus a 34 MB SDP5, and DRAM
// from 0 to 4 MB (§5.4).
func Fig4(seed int64) ([]Fig4Point, error) {
	t, err := Workload("dos", seed)
	if err != nil {
		return nil, err
	}
	const stored = 32 * units.MB
	prep := prepare(t)
	var out []Fig4Point
	for flashMB := 34; flashMB <= 38; flashMB++ {
		for _, dram := range Fig4DRAMSizes {
			cfg := core.Config{
				Trace:           t,
				Prep:            prep,
				DRAMBytes:       dram,
				Kind:            core.FlashCard,
				FlashCardParams: device.IntelSeries2Datasheet(),
				FlashCapacity:   units.Bytes(flashMB) * units.MB,
				StoredData:      stored,
			}
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig4 intel %dMB dram %v: %w", flashMB, dram, err)
			}
			out = append(out, Fig4Point{
				Device:        "intel",
				FlashMB:       flashMB,
				DRAMKB:        int64(dram / units.KB),
				Utilization:   float64(stored) / float64(units.Bytes(flashMB)*units.MB),
				EnergyJ:       res.EnergyJ,
				OverallMeanMs: res.Overall.Mean(),
			})
		}
	}
	// SDP5 at 34 MB: flash-disk behavior is independent of its size (§5.4).
	for _, dram := range Fig4DRAMSizes {
		cfg := core.Config{
			Trace:           t,
			Prep:            prep,
			DRAMBytes:       dram,
			Kind:            core.FlashDisk,
			FlashDiskParams: device.SDP5Datasheet(),
			FlashCapacity:   34 * units.MB,
			StoredData:      stored,
		}
		res, err := core.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig4 sdp5 dram %v: %w", dram, err)
		}
		out = append(out, Fig4Point{
			Device:        "sdp5",
			FlashMB:       34,
			DRAMKB:        int64(dram / units.KB),
			Utilization:   float64(stored) / float64(34*units.MB),
			EnergyJ:       res.EnergyJ,
			OverallMeanMs: res.Overall.Mean(),
		})
	}
	return out, nil
}

// RenderFig4 prints the Figure 4 sweep.
func RenderFig4(points []Fig4Point) string {
	t := &table{header: []string{"Device", "Flash (MB)", "Util", "DRAM (KB)", "Energy (J)", "Overall mean (ms)"}}
	for _, p := range points {
		t.addRow(p.Device, fmt.Sprintf("%d", p.FlashMB), fmt.Sprintf("%.1f%%", p.Utilization*100),
			fmt.Sprintf("%d", p.DRAMKB), f0(p.EnergyJ), f2(p.OverallMeanMs))
	}
	return "Figure 4: energy and over-all response vs. DRAM and flash size (dos)\n" + t.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Point is one (trace, SRAM size) sample of Figure 5, normalized to the
// no-SRAM configuration of the same trace.
type Fig5Point struct {
	Trace            string
	SRAMKB           int64
	EnergyJ          float64
	WriteMeanMs      float64
	NormalizedEnergy float64
	NormalizedWrite  float64
}

// Fig5SRAMSizes are the buffer sizes swept (0, 32 KB, 512 KB, 1 MB).
var Fig5SRAMSizes = []units.Bytes{0, 32 * units.KB, 512 * units.KB, 1 * units.MB}

// Fig5 sweeps the SRAM write-buffer size in front of the CU140 for each
// trace (§5.5), normalizing to the no-SRAM case.
func Fig5(seed int64) ([]Fig5Point, error) {
	var out []Fig5Point
	for _, name := range []string{"mac", "dos", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		prep := prepare(t)
		var baseEnergy, baseWrite float64
		for _, sram := range Fig5SRAMSizes {
			cfg := core.Config{
				Trace:     t,
				Prep:      prep,
				DRAMBytes: dramFor(name),
				Kind:      core.MagneticDisk,
				Disk:      device.CU140Datasheet(),
				SpinDown:  defaultSpinDown,
				SRAMBytes: sram,
			}
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s sram %v: %w", name, sram, err)
			}
			p := Fig5Point{
				Trace:       name,
				SRAMKB:      int64(sram / units.KB),
				EnergyJ:     res.EnergyJ,
				WriteMeanMs: res.Write.Mean(),
			}
			if sram == 0 {
				baseEnergy, baseWrite = p.EnergyJ, p.WriteMeanMs
			}
			if baseEnergy > 0 {
				p.NormalizedEnergy = p.EnergyJ / baseEnergy
			}
			if baseWrite > 0 {
				p.NormalizedWrite = p.WriteMeanMs / baseWrite
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// RenderFig5 prints the Figure 5 sweep.
func RenderFig5(points []Fig5Point) string {
	t := &table{header: []string{"Trace", "SRAM (KB)", "Energy (J)", "Wr mean (ms)", "Norm energy", "Norm write"}}
	for _, p := range points {
		t.addRow(p.Trace, fmt.Sprintf("%d", p.SRAMKB), f0(p.EnergyJ), f2(p.WriteMeanMs),
			f2(p.NormalizedEnergy), fmt.Sprintf("%.3f", p.NormalizedWrite))
	}
	return "Figure 5: CU140 + SRAM write buffer, normalized to no SRAM\n" + t.String()
}
