package experiments

import (
	"fmt"
	"sort"
)

// Experiment is a runnable reproduction unit: it executes and returns the
// rendered text report.
type Experiment struct {
	ID          string
	Description string
	Run         func(seed int64) (string, error)
}

// Registry returns every experiment keyed by ID.
func Registry() map[string]Experiment {
	exps := []Experiment{
		{"table1", "measured device throughput on the emulated OmniBook", func(int64) (string, error) {
			rows, err := Table1()
			if err != nil {
				return "", err
			}
			return RenderTable1(rows), nil
		}},
		{"table2", "manufacturers' specifications (device catalog)", func(int64) (string, error) {
			return RenderTable2(Table2()), nil
		}},
		{"table3", "trace characteristics", func(seed int64) (string, error) {
			rows, err := Table3(seed)
			if err != nil {
				return "", err
			}
			return RenderTable3(rows), nil
		}},
		{"table4a", "energy and response per device, mac trace", table4Runner("mac")},
		{"table4b", "energy and response per device, dos trace", table4Runner("dos")},
		{"table4c", "energy and response per device, hp trace", table4Runner("hp")},
		{"fig1", "write latency/throughput vs. cumulative data (MFFS anomaly)", func(int64) (string, error) {
			series, err := Fig1()
			if err != nil {
				return "", err
			}
			return RenderFig1(series), nil
		}},
		{"fig2", "flash card energy/response vs. storage utilization", func(seed int64) (string, error) {
			pts, err := Fig2(seed)
			if err != nil {
				return "", err
			}
			return RenderFig2(pts), nil
		}},
		{"fig3", "overwrite throughput vs. live data on a 10 MB card", func(seed int64) (string, error) {
			series, err := Fig3(seed)
			if err != nil {
				return "", err
			}
			return RenderFig3(series), nil
		}},
		{"fig4", "energy/response vs. DRAM and flash size (dos)", func(seed int64) (string, error) {
			pts, err := Fig4(seed)
			if err != nil {
				return "", err
			}
			return RenderFig4(pts), nil
		}},
		{"fig5", "energy/write response vs. SRAM size", func(seed int64) (string, error) {
			pts, err := Fig5(seed)
			if err != nil {
				return "", err
			}
			return RenderFig5(pts), nil
		}},
		{"async", "§5.3 asynchronous flash-disk erasure", func(seed int64) (string, error) {
			rows, err := AsyncCleaning(seed)
			if err != nil {
				return "", err
			}
			return RenderAsync(rows), nil
		}},
		{"validate", "§5.1 simulator vs. testbed on the synth trace", func(seed int64) (string, error) {
			rows, err := Validate(seed)
			if err != nil {
				return "", err
			}
			return RenderValidation(rows), nil
		}},
		{"wear", "§5.2 endurance vs. utilization", func(seed int64) (string, error) {
			rows, err := Wear(seed)
			if err != nil {
				return "", err
			}
			return RenderWear(rows), nil
		}},
		{"battery", "battery-life extension headline", func(seed int64) (string, error) {
			rows, err := BatteryLife(seed)
			if err != nil {
				return "", err
			}
			return RenderBattery(rows), nil
		}},
		{"ablate-cleaner", "cleaning-policy comparison", func(seed int64) (string, error) {
			rows, err := CleanerPolicies(seed)
			if err != nil {
				return "", err
			}
			return RenderCleaner(rows), nil
		}},
		{"ablate-flash-sram", "SRAM write buffer in front of flash (§7)", func(seed int64) (string, error) {
			rows, err := FlashSRAM(seed)
			if err != nil {
				return "", err
			}
			return RenderFlashSRAM(rows), nil
		}},
		{"ablate-series2plus", "Series 2 vs. Series 2+ erase generation (§7)", func(seed int64) (string, error) {
			rows, err := Series2Plus(seed)
			if err != nil {
				return "", err
			}
			return RenderSeries2Plus(rows), nil
		}},
		{"ablate-writeback", "write-back vs. write-through cache (§4.2)", func(seed int64) (string, error) {
			rows, err := WriteBack(seed)
			if err != nil {
				return "", err
			}
			return RenderWriteBack(rows), nil
		}},
		{"ablate-spindown", "disk spin-down policy comparison (§2, §5.1)", func(seed int64) (string, error) {
			rows, err := SpinDownPolicies(seed)
			if err != nil {
				return "", err
			}
			return RenderSpinDown(rows), nil
		}},
		{"ablate-wearlevel", "static wear leveling (§2)", func(seed int64) (string, error) {
			rows, err := WearLeveling(seed)
			if err != nil {
				return "", err
			}
			return RenderWearLevel(rows), nil
		}},
		{"hybrid", "flash-as-disk-cache architecture (§6, Marsh et al.)", func(seed int64) (string, error) {
			rows, err := HybridComparison(seed)
			if err != nil {
				return "", err
			}
			return RenderHybrid(rows), nil
		}},
		{"envy", "cleaning-time fraction under TPC-A (§6, eNVy)", func(seed int64) (string, error) {
			rows, err := Envy(seed)
			if err != nil {
				return "", err
			}
			return RenderEnvy(rows), nil
		}},
		{"ablate-mffs", "MFFS 2.00 vs. a repaired MFFS (§7)", func(int64) (string, error) {
			rows, err := MFFSFixed()
			if err != nil {
				return "", err
			}
			return RenderMFFSFixed(rows), nil
		}},
		{"seeds", "Table 4 robustness across workload seeds", func(seed int64) (string, error) {
			rows, err := SeedSensitivity("mac", []int64{seed, seed + 1, seed + 2, seed + 3, seed + 4})
			if err != nil {
				return "", err
			}
			return RenderSeeds(rows), nil
		}},
		{"energy-time", "cumulative energy over the mac trace (sampler timeline)", func(seed int64) (string, error) {
			curves, err := EnergyOverTime(seed)
			if err != nil {
				return "", err
			}
			return RenderEnergyOverTime(curves), nil
		}},
		{"cleaning-efficiency", "cleaner work vs. utilization from the event stream (§5.3)", func(seed int64) (string, error) {
			points, err := CleaningEfficiency(seed)
			if err != nil {
				return "", err
			}
			return RenderCleaningEfficiency(points), nil
		}},
		{"indexbench", "B+tree vs. LSM index workloads across devices and utilizations", func(seed int64) (string, error) {
			points, err := IndexBench(seed)
			if err != nil {
				return "", err
			}
			return RenderIndexBench(points), nil
		}},
		{"indexbench-readheavy", "index workloads under the read-heavy op mix (settled database)", func(seed int64) (string, error) {
			points, err := IndexBenchMix(seed, "read-heavy")
			if err != nil {
				return "", err
			}
			return "Op mix: read-heavy (15/65/15/5 insert/lookup/scan/delete)\n" + RenderIndexBench(points), nil
		}},
		{"arraybench", "degraded-mode device arrays: mirror/stripe × utilization, healthy vs. one member dead", func(seed int64) (string, error) {
			rows, err := ArrayBench(seed)
			if err != nil {
				return "", err
			}
			return RenderArrayBench(rows), nil
		}},
	}
	m := make(map[string]Experiment, len(exps))
	for _, e := range exps {
		m[e.ID] = e
	}
	return m
}

func table4Runner(traceName string) func(int64) (string, error) {
	return func(seed int64) (string, error) {
		rows, err := Table4(traceName, seed)
		if err != nil {
			return "", err
		}
		return RenderTable4(traceName, rows), nil
	}
}

// IDs returns experiment IDs in a stable order: tables, figures, analyses,
// ablations.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return orderKey(ids[i]) < orderKey(ids[j]) })
	return ids
}

func orderKey(id string) string {
	order := map[string]int{
		"table1": 0, "table2": 1, "table3": 2, "table4a": 3, "table4b": 4, "table4c": 5,
		"fig1": 6, "fig2": 7, "fig3": 8, "fig4": 9, "fig5": 10,
		"async": 11, "validate": 12, "wear": 13, "battery": 14,
		"ablate-cleaner": 15, "ablate-flash-sram": 16, "ablate-series2plus": 17, "ablate-writeback": 18,
		"ablate-spindown": 19, "ablate-wearlevel": 20, "hybrid": 21, "envy": 22,
		"ablate-mffs": 23, "seeds": 24, "energy-time": 25, "cleaning-efficiency": 26,
		"indexbench": 27, "indexbench-readheavy": 28, "arraybench": 29,
	}
	if n, ok := order[id]; ok {
		return fmt.Sprintf("%02d", n)
	}
	return "99" + id
}
