package experiments

import (
	"strings"
	"testing"
)

func TestEnergyOverTime(t *testing.T) {
	if testing.Short() {
		t.Skip("full mac-trace sweep")
	}
	curves, err := EnergyOverTime(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("%d curves, want 3", len(curves))
	}
	byLabel := make(map[string]EnergyCurve)
	for _, c := range curves {
		byLabel[c.Label] = c
		if len(c.Joules) < energySamples {
			t.Errorf("%s: only %d points", c.Label, len(c.Joules))
		}
		for i := 1; i < len(c.Joules); i++ {
			if c.Joules[i] < c.Joules[i-1] {
				t.Errorf("%s: energy decreases at point %d (%g → %g)",
					c.Label, i, c.Joules[i-1], c.Joules[i])
			}
			if c.TimesS[i] <= c.TimesS[i-1] {
				t.Errorf("%s: time not increasing at point %d", c.Label, i)
			}
		}
	}
	// The paper's ordering: spinning the disk down saves energy, and the
	// flash card beats both disk configurations on the mac trace.
	spin := byLabel["cu140 spin-down 5s"].Final()
	always := byLabel["cu140 always on"].Final()
	flash := byLabel["intel flash card"].Final()
	if spin <= 0 || always <= 0 || flash <= 0 {
		t.Fatalf("non-positive finals: %g %g %g", spin, always, flash)
	}
	if spin >= always {
		t.Errorf("spin-down %g J not below always-on %g J", spin, always)
	}
	if flash >= spin {
		t.Errorf("flash card %g J not below spun-down disk %g J", flash, spin)
	}

	out := RenderEnergyOverTime(curves)
	if !strings.Contains(out, "final") || !strings.Contains(out, "t (s)") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestCleaningEfficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("full dos-trace sweep")
	}
	points, err := CleaningEfficiency(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points, want 4", len(points))
	}
	for i, p := range points {
		if p.Cleans <= 0 {
			t.Errorf("util %.2f: no cleans", p.Utilization)
		}
		if i > 0 && p.LivePerClean < points[i-1].LivePerClean {
			t.Errorf("live/clean fell from %.2f to %.2f as utilization rose %.2f → %.2f",
				points[i-1].LivePerClean, p.LivePerClean,
				points[i-1].Utilization, p.Utilization)
		}
	}
	// At 95% utilization the cleaner must relocate strictly more per clean
	// than at 80% — the §5.3 overhead effect.
	if points[len(points)-1].LivePerClean <= points[0].LivePerClean {
		t.Errorf("live/clean at 0.95 (%.2f) not above 0.80 (%.2f)",
			points[len(points)-1].LivePerClean, points[0].LivePerClean)
	}

	out := RenderCleaningEfficiency(points)
	if !strings.Contains(out, "live/clean") {
		t.Errorf("render output:\n%s", out)
	}
}
