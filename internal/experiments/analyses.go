package experiments

import (
	"fmt"

	"mobilestorage/internal/compress"
	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/testbed"
	"mobilestorage/internal/units"
)

// ------------------------------------------------------- §5.3 async erase

// AsyncRow compares the SDP5 with on-demand vs. asynchronous erasure on one
// trace.
type AsyncRow struct {
	Trace          string
	SyncWriteMs    float64
	AsyncWriteMs   float64
	Improvement    float64 // fractional write-time reduction (paper: 56–61%)
	SyncEnergyJ    float64
	AsyncEnergyJ   float64
	EnergyChange   float64 // fractional (paper: minimal)
	SyncReadMeanMs float64
}

// AsyncCleaning runs §5.3: the SDP5A's decoupled erasure against the
// on-demand SDP5 across all three traces.
func AsyncCleaning(seed int64) ([]AsyncRow, error) {
	var rows []AsyncRow
	for _, name := range []string{"mac", "dos", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		run := func(async bool) (*core.Result, error) {
			cfg := core.Config{
				Trace:           t,
				DRAMBytes:       dramFor(name),
				Kind:            core.FlashDisk,
				FlashDiskParams: device.SDP5Datasheet(),
				AsyncErase:      async,
				FlashCapacity:   table4FlashCapacity,
				StoredData:      table4StoredData,
			}
			return core.Run(cfg)
		}
		sync, err := run(false)
		if err != nil {
			return nil, err
		}
		async, err := run(true)
		if err != nil {
			return nil, err
		}
		row := AsyncRow{
			Trace:          name,
			SyncWriteMs:    sync.Write.Mean(),
			AsyncWriteMs:   async.Write.Mean(),
			SyncEnergyJ:    sync.EnergyJ,
			AsyncEnergyJ:   async.EnergyJ,
			SyncReadMeanMs: sync.Read.Mean(),
		}
		if row.SyncWriteMs > 0 {
			row.Improvement = 1 - row.AsyncWriteMs/row.SyncWriteMs
		}
		if row.SyncEnergyJ > 0 {
			row.EnergyChange = row.AsyncEnergyJ/row.SyncEnergyJ - 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAsync formats the §5.3 comparison.
func RenderAsync(rows []AsyncRow) string {
	t := &table{header: []string{"Trace", "Sync wr (ms)", "Async wr (ms)", "Write improvement",
		"Sync E (J)", "Async E (J)", "Energy change"}}
	for _, r := range rows {
		t.addRow(r.Trace, f2(r.SyncWriteMs), f2(r.AsyncWriteMs),
			fmt.Sprintf("%.0f%%", r.Improvement*100),
			f0(r.SyncEnergyJ), f0(r.AsyncEnergyJ), fmt.Sprintf("%+.1f%%", r.EnergyChange*100))
	}
	return "§5.3: SDP5A asynchronous vs. on-demand erasure (paper: write time −56–61%, energy ≈unchanged)\n" + t.String()
}

// ------------------------------------------------------ §5.1 validation

// ValidationRow compares the simulator against the emulated OmniBook on the
// synth trace for one device.
type ValidationRow struct {
	Device           string
	TestbedReadMs    float64
	SimReadMs        float64
	TestbedWriteMs   float64
	SimWriteMs       float64
	ReadRatio        float64 // sim/testbed
	WriteRatio       float64
	TestbedReadMaxMs float64
	SimReadMaxMs     float64
}

// Validate reruns the §5.1 check: the 6 MB synth trace through both the
// testbed (OmniBook emulation, DOS + MFFS software path) and the simulator
// configured with the measured device parameters. The paper found all
// simulated numbers within a few percent of measured, except flash-card
// reads (4× off, due to cleaning + decompression overhead the controlled
// benchmarks missed) and CU140 writes (2× off, due to the optimistic seek
// assumption).
func Validate(seed int64) ([]ValidationRow, error) {
	synth, err := Workload("synth", seed)
	if err != nil {
		return nil, err
	}
	type devCase struct {
		name    string
		tbCfg   testbed.Config
		simSpec DeviceSpec
		kind    core.StorageKind
	}
	cases := []devCase{
		{"cu140", testbed.Config{Kind: testbed.CU140, Data: compress.Random}, DeviceSpec{"cu140", device.Measured}, core.MagneticDisk},
		{"sdp10", testbed.Config{Kind: testbed.SDP10, Data: compress.Random}, DeviceSpec{"sdp10", device.Measured}, core.FlashDisk},
		{"intel", testbed.Config{Kind: testbed.IntelCard, Data: compress.MobyDick}, DeviceSpec{"intel", device.Measured}, core.FlashCard},
	}
	var rows []ValidationRow
	for _, c := range cases {
		tb, err := testbed.Replay(c.tbCfg, synth, 0.1)
		if err != nil {
			return nil, err
		}
		// Simulator side: measured parameters, no DRAM cache (the OmniBook
		// ran DOS without one), 10 MB devices like the hardware.
		cfg := core.Config{Trace: synth, DRAMBytes: 0}
		if err := c.simSpec.Configure(&cfg); err != nil {
			return nil, err
		}
		cfg.FlashCapacity = 10 * units.MB
		cfg.StoredData = 0 // trace footprint (6 MB)
		cfg.SRAMBytes = 0  // the OmniBook's drive had no deferred spin-up buffer
		res, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		row := ValidationRow{
			Device:           c.name,
			TestbedReadMs:    tb.Read.Mean(),
			SimReadMs:        res.Read.Mean(),
			TestbedWriteMs:   tb.Write.Mean(),
			SimWriteMs:       res.Write.Mean(),
			TestbedReadMaxMs: tb.Read.Max(),
			SimReadMaxMs:     res.Read.Max(),
		}
		if row.TestbedReadMs > 0 {
			row.ReadRatio = row.SimReadMs / row.TestbedReadMs
		}
		if row.TestbedWriteMs > 0 {
			row.WriteRatio = row.SimWriteMs / row.TestbedWriteMs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderValidation formats the §5.1 comparison.
func RenderValidation(rows []ValidationRow) string {
	t := &table{header: []string{"Device", "Testbed rd (ms)", "Sim rd (ms)", "rd sim/tb",
		"Testbed wr (ms)", "Sim wr (ms)", "wr sim/tb"}}
	for _, r := range rows {
		t.addRow(r.Device, f2(r.TestbedReadMs), f2(r.SimReadMs), f2(r.ReadRatio),
			f2(r.TestbedWriteMs), f2(r.SimWriteMs), f2(r.WriteRatio))
	}
	return "§5.1: simulator vs. emulated OmniBook on the synth trace\n" + t.String()
}

// ------------------------------------------------------- §5.2 endurance

// WearRow reports endurance numbers for one (trace, utilization) pair.
type WearRow struct {
	Trace       string
	Utilization float64
	Erases      int64
	MaxErase    int64
	MeanErase   float64
	// LifetimeFraction is max-erase / endurance: how much of the
	// worst-case segment's life this trace consumed.
	LifetimeFraction float64
}

// Wear runs the §5.2 endurance analysis: erase counts at 40% vs. 95%
// utilization for the mac and hp traces (the paper: mac max per-segment
// erases 7 → 34, mean 0.9 → 1.9; hp erase count tripled).
func Wear(seed int64) ([]WearRow, error) {
	var rows []WearRow
	for _, name := range []string{"mac", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		params := device.IntelSeries2Datasheet()
		seg := params.SegmentSize
		capacity := units.CeilDiv(units.Bytes(float64(core.Footprint(t))/0.40), seg) * seg
		for _, util := range []float64{0.40, 0.80, 0.95} {
			cfg := core.Config{
				Trace:           t,
				DRAMBytes:       dramFor(name),
				Kind:            core.FlashCard,
				FlashCardParams: params,
				FlashCapacity:   capacity,
				StoredData:      units.Bytes(float64(capacity) * util),
			}
			res, err := core.Run(cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, WearRow{
				Trace:            name,
				Utilization:      util,
				Erases:           res.Erases,
				MaxErase:         res.MaxEraseCount,
				MeanErase:        res.MeanEraseCount,
				LifetimeFraction: float64(res.MaxEraseCount) / float64(params.EnduranceCycles),
			})
		}
	}
	return rows, nil
}

// RenderWear formats the endurance analysis.
func RenderWear(rows []WearRow) string {
	t := &table{header: []string{"Trace", "Utilization", "Erases", "Max/unit", "Mean/unit", "Worst-case life used"}}
	for _, r := range rows {
		t.addRow(r.Trace, fmt.Sprintf("%.0f%%", r.Utilization*100),
			fmt.Sprintf("%d", r.Erases), fmt.Sprintf("%d", r.MaxErase), f2(r.MeanErase),
			fmt.Sprintf("%.4f%%", r.LifetimeFraction*100))
	}
	return "§5.2: flash endurance vs. storage utilization (Intel card, 100k-cycle limit)\n" + t.String()
}

// ---------------------------------------------------------- battery life

// BatteryRow reports the battery-life extension for one alternative device
// against the CU140, at one storage-energy share.
type BatteryRow struct {
	Trace           string
	Alternative     string
	StorageFraction float64
	StorageSavings  float64
	LifeExtension   float64
}

// BatteryLife computes the §1/§7 headline: flash storage savings translated
// into battery-life extension across the 20–54% storage-share range Marsh &
// Zenel measured [14]. At a 20% share and ~90% savings this yields the
// paper's "22% extension of battery life".
func BatteryLife(seed int64) ([]BatteryRow, error) {
	var rows []BatteryRow
	for _, name := range []string{"mac", "dos", "hp"} {
		t4, err := Table4(name, seed)
		if err != nil {
			return nil, err
		}
		byDevice := make(map[string]float64)
		for _, r := range t4 {
			byDevice[r.Device.Name+"/"+string(r.Device.Source)] = r.EnergyJ
		}
		base := byDevice["cu140/datasheet"]
		for _, alt := range []string{"sdp5/datasheet", "intel/datasheet"} {
			for _, share := range []float64{0.20, 0.54} {
				m := energy.BatteryModel{
					StorageFraction: share,
					BaselineJ:       base,
					AlternativeJ:    byDevice[alt],
				}
				rows = append(rows, BatteryRow{
					Trace:           name,
					Alternative:     alt,
					StorageFraction: share,
					StorageSavings:  m.StorageSavings(),
					LifeExtension:   m.LifeExtension(),
				})
			}
		}
	}
	return rows, nil
}

// RenderBattery formats the battery-life analysis.
func RenderBattery(rows []BatteryRow) string {
	t := &table{header: []string{"Trace", "Alternative", "Storage share", "Storage savings", "Battery life"}}
	for _, r := range rows {
		t.addRow(r.Trace, r.Alternative, fmt.Sprintf("%.0f%%", r.StorageFraction*100),
			fmt.Sprintf("%.0f%%", r.StorageSavings*100), fmt.Sprintf("+%.0f%%", r.LifeExtension*100))
	}
	return "Battery-life extension vs. CU140 (paper: +20–100%, 22% headline)\n" + t.String()
}
