package experiments

import (
	"strings"
	"testing"
)

// TestIndexBenchShape replays both engines over the full device ×
// utilization grid and checks the structural claims the figure makes:
// every cell present, the disk flat across utilization, and the flash
// card's cleaner awake at the top of the sweep.
func TestIndexBenchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid replay")
	}
	points, err := IndexBench(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * len(IndexBenchDevices) * len(IndexBenchUtilizations)
	if len(points) != want {
		t.Fatalf("got %d points, want %d", len(points), want)
	}

	byEngDev := map[string][]IndexBenchPoint{}
	for _, p := range points {
		if p.EnergyJ <= 0 {
			t.Fatalf("%s/%s util %.2f: energy %.3f ≤ 0", p.Engine, p.Device, p.Utilization, p.EnergyJ)
		}
		if p.IndexAmp <= 1 {
			t.Fatalf("%s/%s: index write amplification %.2f ≤ 1", p.Engine, p.Device, p.IndexAmp)
		}
		byEngDev[p.Engine+"/"+p.Device] = append(byEngDev[p.Engine+"/"+p.Device], p)
	}
	for _, eng := range []string{"btree", "lsm"} {
		disk := byEngDev[eng+"/cu140"]
		for _, p := range disk[1:] {
			if p.EnergyJ != disk[0].EnergyJ || p.Erases != 0 {
				t.Errorf("%s/cu140: disk should be flat across utilization, got %+v vs %+v", eng, p, disk[0])
			}
		}
		card := byEngDev[eng+"/intel"]
		lo, hi := card[0], card[len(card)-1]
		if hi.CleanerAmp <= lo.CleanerAmp || hi.Erases <= lo.Erases {
			t.Errorf("%s/intel: cleaner should wake up at 95%% utilization: lo %+v hi %+v", eng, lo, hi)
		}
	}
	// The LSM's sequential flush/compaction writes must be gentler on the
	// card's cleaner than the B+tree's scattered page rewrites.
	bt := byEngDev["btree/intel"]
	ls := byEngDev["lsm/intel"]
	if bt[len(bt)-1].Erases <= ls[len(ls)-1].Erases {
		t.Errorf("at 95%% the B+tree should out-erase the LSM: btree %d, lsm %d",
			bt[len(bt)-1].Erases, ls[len(ls)-1].Erases)
	}
}

// TestIndexBenchGridDeterministic pins the figure's shape: one panel per
// metric × device, two series per panel, byte-identical across renders.
func TestIndexBenchGridDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid replay")
	}
	points, err := IndexBench(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	g := IndexBenchGrid(points)
	if got, want := len(g.Cells), 3*len(IndexBenchDevices); got != want {
		t.Fatalf("grid has %d cells, want %d", got, want)
	}
	for _, c := range g.Cells {
		if len(c.Series) != 2 {
			t.Fatalf("panel %q has %d series, want 2", c.Title, len(c.Series))
		}
		for _, s := range c.Series {
			if len(s.Points) != len(IndexBenchUtilizations) {
				t.Fatalf("panel %q series %q has %d points, want %d",
					c.Title, s.Name, len(s.Points), len(IndexBenchUtilizations))
			}
		}
	}
	first := g.SVG()
	points2, err := IndexBench(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if again := IndexBenchGrid(points2).SVG(); again != first {
		t.Fatal("indexbench figure not deterministic across runs")
	}
	if !strings.Contains(first, "index engines") {
		t.Fatal("figure missing title")
	}
}
