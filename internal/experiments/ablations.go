package experiments

import (
	"fmt"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
)

// The ablations exercise the design choices DESIGN.md calls out, plus the
// extensions the paper's §7 proposes as future work.

// --------------------------------------------------- cleaning policies

// CleanerRow compares one cleaning policy on one trace.
type CleanerRow struct {
	Trace         string
	Policy        string
	EnergyJ       float64
	WriteMeanMs   float64
	Erases        int64
	MaxErase      int64
	Amplification float64
}

// CleanerPolicies compares greedy (MFFS), cost-benefit (LFS/eNVy), and FIFO
// victim selection at 90% utilization, where the policy choice matters
// most.
func CleanerPolicies(seed int64) ([]CleanerRow, error) {
	var rows []CleanerRow
	for _, name := range []string{"mac", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		params := device.IntelSeries2Datasheet()
		capacity := units.CeilDiv(units.Bytes(float64(core.Footprint(t))/0.90), params.SegmentSize) * params.SegmentSize
		for _, policy := range []string{"greedy", "cost-benefit", "fifo"} {
			cfg := core.Config{
				Trace:           t,
				DRAMBytes:       dramFor(name),
				Kind:            core.FlashCard,
				FlashCardParams: params,
				FlashCapacity:   capacity,
				CleaningPolicy:  policy,
			}
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("cleaner %s/%s: %w", name, policy, err)
			}
			rows = append(rows, CleanerRow{
				Trace:         name,
				Policy:        policy,
				EnergyJ:       res.EnergyJ,
				WriteMeanMs:   res.Write.Mean(),
				Erases:        res.Erases,
				MaxErase:      res.MaxEraseCount,
				Amplification: res.WriteAmplification(),
			})
		}
	}
	return rows, nil
}

// RenderCleaner formats the cleaning-policy ablation.
func RenderCleaner(rows []CleanerRow) string {
	t := &table{header: []string{"Trace", "Policy", "Energy (J)", "Wr mean (ms)", "Erases", "Max/unit", "Write amp"}}
	for _, r := range rows {
		t.addRow(r.Trace, r.Policy, f0(r.EnergyJ), f2(r.WriteMeanMs),
			fmt.Sprintf("%d", r.Erases), fmt.Sprintf("%d", r.MaxErase), f2(r.Amplification))
	}
	return "Ablation: flash-card cleaning policy at 90% utilization\n" + t.String()
}

// --------------------------------------------------- SRAM in front of flash

// FlashSRAMRow compares a flash device with and without an SRAM write
// buffer.
type FlashSRAMRow struct {
	Trace         string
	Device        string
	WriteMs       float64
	BufferedMs    float64
	Improvement   float64
	EnergyJ       float64
	BufferedJ     float64
	EnergyPenalty float64
}

// FlashSRAM runs the §7 suggestion: "Adding a nonvolatile SRAM write buffer
// to a flash disk should enable it to compete with newer magnetic disks
// that are coupled with SRAM buffers."
func FlashSRAM(seed int64) ([]FlashSRAMRow, error) {
	var rows []FlashSRAMRow
	for _, name := range []string{"mac", "dos", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		for _, dev := range []DeviceSpec{{"sdp5", device.Datasheet}, {"intel", device.Datasheet}} {
			run := func(sram units.Bytes) (*core.Result, error) {
				cfg := core.Config{Trace: t, DRAMBytes: dramFor(name)}
				if err := dev.Configure(&cfg); err != nil {
					return nil, err
				}
				cfg.SRAMBytes = sram
				return core.Run(cfg)
			}
			bare, err := run(0)
			if err != nil {
				return nil, err
			}
			buffered, err := run(defaultSRAM)
			if err != nil {
				return nil, err
			}
			row := FlashSRAMRow{
				Trace:      name,
				Device:     dev.Name,
				WriteMs:    bare.Write.Mean(),
				BufferedMs: buffered.Write.Mean(),
				EnergyJ:    bare.EnergyJ,
				BufferedJ:  buffered.EnergyJ,
			}
			if row.WriteMs > 0 {
				row.Improvement = 1 - row.BufferedMs/row.WriteMs
			}
			if row.EnergyJ > 0 {
				row.EnergyPenalty = row.BufferedJ/row.EnergyJ - 1
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderFlashSRAM formats the flash+SRAM ablation.
func RenderFlashSRAM(rows []FlashSRAMRow) string {
	t := &table{header: []string{"Trace", "Device", "Wr (ms)", "Wr+SRAM (ms)", "Improvement", "E (J)", "E+SRAM (J)"}}
	for _, r := range rows {
		t.addRow(r.Trace, r.Device, f2(r.WriteMs), f2(r.BufferedMs),
			fmt.Sprintf("%.0f%%", r.Improvement*100), f0(r.EnergyJ), f0(r.BufferedJ))
	}
	return "Ablation (§7): 32 KB SRAM write buffer in front of flash\n" + t.String()
}

// --------------------------------------------------- Series 2 vs Series 2+

// Series2PlusRow compares erase generations at high utilization.
type Series2PlusRow struct {
	Trace         string
	Device        string
	WriteMeanMs   float64
	WriteMaxMs    float64
	WriteStalls   int64
	EnergyJ       float64
	LifetimeFrac  float64
	EraseTimeDesc string
}

// Series2Plus runs the §7 hardware extension: the 16-Mbit Series 2+ erases
// blocks in 300 ms (vs. 1.6 s) and endures 1M cycles (vs. 100k), which
// shrinks cleaning stalls at high utilization.
func Series2Plus(seed int64) ([]Series2PlusRow, error) {
	var rows []Series2PlusRow
	for _, name := range []string{"mac", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		for _, params := range []device.FlashCardParams{
			device.IntelSeries2Datasheet(), device.IntelSeries2PlusDatasheet(),
		} {
			capacity := units.CeilDiv(units.Bytes(float64(core.Footprint(t))/0.95), params.SegmentSize) * params.SegmentSize
			cfg := core.Config{
				Trace:           t,
				DRAMBytes:       dramFor(name),
				Kind:            core.FlashCard,
				FlashCardParams: params,
				FlashCapacity:   capacity,
			}
			res, err := core.Run(cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Series2PlusRow{
				Trace:         name,
				Device:        params.Name,
				WriteMeanMs:   res.Write.Mean(),
				WriteMaxMs:    res.Write.Max(),
				WriteStalls:   res.WriteStalls,
				EnergyJ:       res.EnergyJ,
				LifetimeFrac:  float64(res.MaxEraseCount) / float64(params.EnduranceCycles),
				EraseTimeDesc: params.EraseTime.String(),
			})
		}
	}
	return rows, nil
}

// RenderSeries2Plus formats the erase-generation ablation.
func RenderSeries2Plus(rows []Series2PlusRow) string {
	t := &table{header: []string{"Trace", "Device", "Erase", "Wr mean (ms)", "Wr max (ms)", "Stalls", "Energy (J)", "Life used"}}
	for _, r := range rows {
		t.addRow(r.Trace, r.Device, r.EraseTimeDesc, f2(r.WriteMeanMs), f1(r.WriteMaxMs),
			fmt.Sprintf("%d", r.WriteStalls), f0(r.EnergyJ), fmt.Sprintf("%.4f%%", r.LifetimeFrac*100))
	}
	return "Ablation (§7): Intel Series 2 vs. Series 2+ at 95% utilization\n" + t.String()
}

// --------------------------------------------------- write-back cache

// WriteBackRow compares write-through and write-back DRAM caches.
type WriteBackRow struct {
	Trace        string
	Device       string
	WTWriteMs    float64
	WBWriteMs    float64
	WTEnergyJ    float64
	WBEnergyJ    float64
	WTErases     int64
	WBErases     int64
	EraseSavings float64
}

// WriteBack runs the §4.2 aside: "A write-back cache might avoid some
// erasures at the cost of occasional data loss."
func WriteBack(seed int64) ([]WriteBackRow, error) {
	var rows []WriteBackRow
	for _, name := range []string{"mac", "dos"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		for _, dev := range []DeviceSpec{{"cu140", device.Datasheet}, {"intel", device.Datasheet}} {
			run := func(writeBack bool) (*core.Result, error) {
				cfg := core.Config{Trace: t, DRAMBytes: dramFor(name), WriteBack: writeBack}
				if err := dev.Configure(&cfg); err != nil {
					return nil, err
				}
				return core.Run(cfg)
			}
			wt, err := run(false)
			if err != nil {
				return nil, err
			}
			wb, err := run(true)
			if err != nil {
				return nil, err
			}
			row := WriteBackRow{
				Trace:     name,
				Device:    dev.Name,
				WTWriteMs: wt.Write.Mean(),
				WBWriteMs: wb.Write.Mean(),
				WTEnergyJ: wt.EnergyJ,
				WBEnergyJ: wb.EnergyJ,
				WTErases:  wt.Erases,
				WBErases:  wb.Erases,
			}
			if wt.Erases > 0 {
				row.EraseSavings = 1 - float64(wb.Erases)/float64(wt.Erases)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderWriteBack formats the write-back ablation.
func RenderWriteBack(rows []WriteBackRow) string {
	t := &table{header: []string{"Trace", "Device", "WT wr (ms)", "WB wr (ms)", "WT E (J)", "WB E (J)", "WT erases", "WB erases"}}
	for _, r := range rows {
		t.addRow(r.Trace, r.Device, f2(r.WTWriteMs), f2(r.WBWriteMs),
			f0(r.WTEnergyJ), f0(r.WBEnergyJ), fmt.Sprintf("%d", r.WTErases), fmt.Sprintf("%d", r.WBErases))
	}
	return "Ablation (§4.2): write-back vs. write-through DRAM cache\n" + t.String()
}
