package experiments

import (
	"fmt"

	"mobilestorage/internal/compress"
	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/testbed"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// ---------------------------------------------------------------- Table 1

// Table1Row is one device/operation row of Table 1: measured throughput in
// KB/s for 4 KB accesses to 4 KB and 1 MB files, with and without
// compression.
type Table1Row struct {
	Device    string
	Operation string // "read" or "write"
	// Uncompressed4K/1M: raw data path (random payload for the Intel card,
	// whose compression cannot be disabled).
	Uncompressed4K, Uncompressed1M float64
	// Compressed4K/1M: DoubleSpace / Stacker / MFFS compression with the
	// Moby-Dick payload.
	Compressed4K, Compressed1M float64
}

// table1Total is how much data each micro-benchmark moves.
const table1Total = 4 * units.MB

// Table1 reruns the §3 micro-benchmarks on the emulated OmniBook.
func Table1() ([]Table1Row, error) {
	type setup struct {
		kind testbed.StorageKind
		name string
	}
	setups := []setup{{testbed.CU140, "cu140"}, {testbed.SDP10, "sdp10"}, {testbed.IntelCard, "intel"}}
	var rows []Table1Row
	for _, s := range setups {
		read := Table1Row{Device: s.name, Operation: "read"}
		write := Table1Row{Device: s.name, Operation: "write"}
		for _, compressed := range []bool{false, true} {
			data := compress.Random
			if compressed {
				data = compress.MobyDick
			}
			cfg := testbed.Config{Kind: s.kind, Compression: compressed, Data: data}
			w4, r4, err := testbed.Throughput(cfg, 4*units.KB, table1Total)
			if err != nil {
				return nil, err
			}
			w1m, r1m, err := testbed.Throughput(cfg, 1*units.MB, table1Total)
			if err != nil {
				return nil, err
			}
			if compressed {
				read.Compressed4K, read.Compressed1M = r4, r1m
				write.Compressed4K, write.Compressed1M = w4, w1m
			} else {
				read.Uncompressed4K, read.Uncompressed1M = r4, r1m
				write.Uncompressed4K, write.Uncompressed1M = w4, w1m
			}
		}
		rows = append(rows, read, write)
	}
	return rows, nil
}

// RenderTable1 formats Table 1 like the paper.
func RenderTable1(rows []Table1Row) string {
	t := &table{header: []string{"Device", "Op", "raw 4KB", "raw 1MB", "compr 4KB", "compr 1MB"}}
	for _, r := range rows {
		t.addRow(r.Device, r.Operation,
			f0(r.Uncompressed4K), f0(r.Uncompressed1M), f0(r.Compressed4K), f0(r.Compressed1M))
	}
	return "Table 1: measured throughput (KB/s), 4 KB transfers\n" + t.String()
}

// ---------------------------------------------------------------- Table 2

// Table2 returns the manufacturer-specification rows (the device catalog).
func Table2() []device.CatalogEntry { return device.Catalog() }

// RenderTable2 formats the catalog like the paper's Table 2.
func RenderTable2(entries []device.CatalogEntry) string {
	t := &table{header: []string{"Device", "Operation", "Latency", "Throughput (KB/s)", "Power (W)"}}
	for _, e := range entries {
		lat, thr := "-", "-"
		if e.Latency > 0 {
			lat = e.Latency.String()
		}
		if e.Throughput > 0 {
			thr = f0(e.Throughput)
		}
		t.addRow(e.Device, e.Operation, lat, thr, f2(e.PowerW))
	}
	return "Table 2: manufacturers' specifications\n" + t.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row summarizes one generated trace the way Table 3 does.
type Table3Row struct {
	trace.Characteristics
}

// Table3 generates the three non-synthetic workloads and characterizes the
// post-warm-start portion, exactly as the paper's Table 3 does.
func Table3(seed int64) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range []string{"mac", "dos", "hp"} {
		t, err := Workload(name, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{trace.Characterize(t, 0.1)})
	}
	return rows, nil
}

// RenderTable3 formats trace characteristics like the paper.
func RenderTable3(rows []Table3Row) string {
	t := &table{header: []string{"Trace", "Duration", "Distinct KB", "Frac reads",
		"Block", "Read blks", "Write blks", "IA mean (s)", "IA max", "IA σ", "Records"}}
	for _, r := range rows {
		t.addRow(r.Name, r.Duration.String(), f0(r.DistinctKBytes), f2(r.FractionReads),
			r.BlockSize.String(), f1(r.MeanReadBlocks), f1(r.MeanWriteBlocks),
			fmt.Sprintf("%.3f", r.InterArrival.Mean()), f1(r.InterArrival.Max()),
			f1(r.InterArrival.StdDev()), fmt.Sprintf("%d", r.Records))
	}
	return "Table 3: trace characteristics (post-warm-start)\n" + t.String()
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one device row of Tables 4(a)–(c).
type Table4Row struct {
	Device  DeviceSpec
	EnergyJ float64
	// Response times in ms.
	ReadMean, ReadMax, ReadSD    float64
	WriteMean, WriteMax, WriteSD float64
	Result                       *core.Result
}

// Table4 runs all seven device configurations of Table 4 against one trace
// ("mac" → 4(a), "dos" → 4(b), "hp" → 4(c)).
func Table4(traceName string, seed int64) ([]Table4Row, error) {
	t, err := Workload(traceName, seed)
	if err != nil {
		return nil, err
	}
	specs := Table4Devices()
	rows := make([]Table4Row, len(specs))
	var firstErr firstError
	pmap(len(specs), func(i int) {
		spec := specs[i]
		cfg := core.Config{Trace: t, DRAMBytes: dramFor(traceName)}
		if err := spec.Configure(&cfg); err != nil {
			firstErr.set(err)
			return
		}
		res, err := core.Run(cfg)
		if err != nil {
			firstErr.set(fmt.Errorf("table4 %s on %s: %w", spec, traceName, err))
			return
		}
		rows[i] = Table4Row{
			Device:    spec,
			EnergyJ:   res.EnergyJ,
			ReadMean:  res.Read.Mean(),
			ReadMax:   res.Read.Max(),
			ReadSD:    res.Read.StdDev(),
			WriteMean: res.Write.Mean(),
			WriteMax:  res.Write.Max(),
			WriteSD:   res.Write.StdDev(),
			Result:    res,
		}
	})
	if err := firstErr.get(); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable4 formats one of Tables 4(a)–(c).
func RenderTable4(traceName string, rows []Table4Row) string {
	t := &table{header: []string{"Device", "Params", "Energy (J)",
		"Rd mean", "Rd max", "Rd σ", "Wr mean", "Wr max", "Wr σ"}}
	for _, r := range rows {
		t.addRow(r.Device.Name, string(r.Device.Source), f0(r.EnergyJ),
			f2(r.ReadMean), f1(r.ReadMax), f1(r.ReadSD),
			f2(r.WriteMean), f1(r.WriteMax), f1(r.WriteSD))
	}
	return fmt.Sprintf("Table 4 (%s): energy and response time (ms)\n", traceName) + t.String() +
		"\n" + renderTable4Counters(traceName, rows)
}

// renderTable4Counters is the observability companion to Table 4: the
// device-activity counters behind each energy number.
func renderTable4Counters(traceName string, rows []Table4Row) string {
	t := &table{header: []string{"Device", "Params", "Spin-ups", "Erases",
		"Copied", "Host blks", "Stalls", "SRAM flushes", "Cache hit%"}}
	for _, r := range rows {
		res := r.Result
		if res == nil {
			continue
		}
		t.addRow(r.Device.Name, string(r.Device.Source),
			fmt.Sprintf("%d", res.SpinUps), fmt.Sprintf("%d", res.Erases),
			fmt.Sprintf("%d", res.CopiedBlocks), fmt.Sprintf("%d", res.HostBlocks),
			fmt.Sprintf("%d", res.WriteStalls), fmt.Sprintf("%d", res.SRAMFlushes),
			f1(res.HitRate()*100))
	}
	return fmt.Sprintf("Table 4 (%s) device activity\n", traceName) + t.String()
}
