package core

import (
	"strings"
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

func TestBuildStackErrors(t *testing.T) {
	tr := smallTrace()
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"bad disk params", func(c *Config) {
			c.Kind = MagneticDisk
			c.Disk = device.DiskParams{Name: "junk"}
		}, "non-physical"},
		{"bad flashdisk params", func(c *Config) {
			c.Kind = FlashDisk
			c.FlashDiskParams = device.FlashDiskParams{Name: "junk"}
		}, "non-physical"},
		{"bad flashcard params", func(c *Config) {
			c.Kind = FlashCard
			c.FlashCardParams = device.FlashCardParams{Name: "junk"}
		}, "non-physical"},
		{"bad spin policy", func(c *Config) {
			c.Kind = MagneticDisk
			c.Disk = device.CU140Datasheet()
			c.SpinPolicy = "psychic"
		}, "unknown spin policy"},
		{"bad sram size", func(c *Config) {
			c.Kind = MagneticDisk
			c.Disk = device.CU140Datasheet()
			c.SRAMBytes = 1 // below one block
		}, "below one"},
		{"undersized hybrid cache", func(c *Config) {
			c.Kind = FlashCache
			c.Disk = device.CU140Datasheet()
			c.FlashCardParams = device.IntelSeries2Datasheet()
			c.FlashCacheBytes = units.KB
		}, "holds under"},
	}
	for _, c := range cases {
		cfg := Config{Trace: tr}
		c.mut(&cfg)
		_, err := Run(cfg)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestRunInvalidTrace(t *testing.T) {
	bad := &trace.Trace{Name: "bad", BlockSize: units.KB, Records: []trace.Record{
		{Time: 10, Op: trace.Read, Size: units.KB},
		{Time: 5, Op: trace.Read, Size: units.KB}, // out of order
	}}
	_, err := Run(Config{Trace: bad, Kind: FlashDisk, FlashDiskParams: device.SDP5Datasheet()})
	if err == nil {
		t.Error("unsorted trace accepted")
	}
}

func TestDeleteOfUntouchedFile(t *testing.T) {
	// A trace that deletes a file it never read or wrote must be harmless.
	tr := &trace.Trace{Name: "del", BlockSize: units.KB, Records: []trace.Record{
		{Time: 0, Op: trace.Write, File: 1, Size: units.KB},
		{Time: units.Second, Op: trace.Delete, File: 99, Size: units.KB},
		{Time: 2 * units.Second, Op: trace.Read, File: 1, Size: units.KB},
	}}
	res, err := Run(Config{Trace: tr, WarmFraction: -1, Kind: FlashCard,
		FlashCardParams: device.IntelSeries2Datasheet()})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredOps != 2 {
		t.Errorf("measured %d ops, want 2", res.MeasuredOps)
	}
}

func TestObserverSeesEveryOp(t *testing.T) {
	tr := smallTrace()
	var seen int
	var hits int
	cfg := Config{
		Trace: tr, WarmFraction: -1, DRAMBytes: 64 * units.KB,
		Kind: FlashDisk, FlashDiskParams: device.SDP5Datasheet(),
		Observer: func(o OpObservation) {
			seen++
			if o.Response < 0 {
				t.Errorf("op %d: negative response", o.Index)
			}
			if o.CacheHit {
				hits++
			}
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seen != res.MeasuredOps {
		t.Errorf("observer saw %d ops, result measured %d", seen, res.MeasuredOps)
	}
	if int64(hits) != res.CacheHits {
		t.Errorf("observer hits %d ≠ result hits %d", hits, res.CacheHits)
	}
}

func TestSRAMOnFlash(t *testing.T) {
	// The §7 extension path: SRAM in front of a flash device builds and
	// absorbs writes.
	tr := smallTrace()
	res, err := Run(Config{
		Trace: tr, Kind: FlashDisk, FlashDiskParams: device.SDP5Datasheet(),
		SRAMBytes: 32 * units.KB,
	})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := Run(Config{Trace: tr, Kind: FlashDisk, FlashDiskParams: device.SDP5Datasheet()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Write.Mean() >= bare.Write.Mean() {
		t.Errorf("SRAM did not improve flash writes: %.2f vs %.2f", res.Write.Mean(), bare.Write.Mean())
	}
	if res.EnergyByComponent["sram"] <= 0 {
		t.Error("no SRAM energy accounted")
	}
}
