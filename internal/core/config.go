// Package core is the paper's primary contribution: a trace-driven
// simulator of mobile-computer storage hierarchies (§4.2). It composes a
// DRAM buffer cache, an optional battery-backed SRAM write buffer, and one
// of three storage device models (magnetic disk, flash disk emulator, flash
// memory card), replays a file-level trace through the stack, and reports
// energy consumption, response-time statistics, and flash endurance.
package core

import (
	"fmt"

	"mobilestorage/internal/array"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// StorageKind selects the non-volatile storage architecture (§2).
type StorageKind uint8

// The three architectures the paper compares, plus the flash-as-disk-cache
// hybrid its related work (§6, Marsh et al.) proposes.
const (
	MagneticDisk StorageKind = iota
	FlashDisk
	FlashCard
	FlashCache
)

// String names the storage kind.
func (k StorageKind) String() string {
	switch k {
	case MagneticDisk:
		return "disk"
	case FlashDisk:
		return "flashdisk"
	case FlashCard:
		return "flashcard"
	case FlashCache:
		return "flashcache"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Config describes one simulation run: a workload replayed through a
// storage hierarchy. Zero values give the paper's defaults where the paper
// defines one.
type Config struct {
	// Trace is the workload to replay.
	Trace *trace.Trace
	// WarmFraction of the records warm the cache before statistics start
	// (§4.2). Negative disables warm-up; zero means the paper's 0.1.
	WarmFraction float64

	// DRAMBytes sizes the buffer cache; zero bypasses it entirely, which is
	// how the hp trace must be run (§4.1). DRAM parameters default to the
	// NEC part from the catalog.
	DRAMBytes units.Bytes
	DRAM      *device.MemoryParams
	// WriteBack enables the write-back cache ablation (the paper simulates
	// write-through only).
	WriteBack bool

	// Kind selects the storage architecture; the matching parameter struct
	// below must be set.
	Kind StorageKind

	// Disk configures MagneticDisk runs.
	Disk device.DiskParams
	// SpinDown is the host spin-down policy timeout (the paper's default
	// experiments use 5 s). Zero means never spin down.
	SpinDown units.Time
	// SpinPolicy, when non-empty, selects a named spin-down policy instead
	// of the fixed SpinDown threshold: "immediate", "adaptive", or
	// "always-on". Used by the spin-down ablation.
	SpinPolicy string

	// SRAMBytes adds a battery-backed write buffer in front of the storage
	// device. The paper's disk simulations use 32 KB "except where noted";
	// it can also front flash devices (the §7 extension). SRAM parameters
	// default to the NEC part.
	SRAMBytes units.Bytes
	SRAM      *device.MemoryParams

	// FlashDiskParams configures FlashDisk runs.
	FlashDiskParams device.FlashDiskParams
	// AsyncErase enables the SDP5A asynchronous-erasure discipline (§5.3).
	AsyncErase bool

	// FlashCardParams configures FlashCard runs.
	FlashCardParams device.FlashCardParams
	// CleaningPolicy names the victim-selection policy ("greedy" default,
	// "cost-benefit", "fifo").
	CleaningPolicy string
	// OnDemandCleaning disables background cleaning (§4.2's "on-demand"
	// cleaning parameter).
	OnDemandCleaning bool
	// WearLeveling, when positive, enables static wear leveling with the
	// given erase-count imbalance threshold (§2's load-spreading aside).
	WearLeveling int64

	// FlashUtilization is the fraction of flash occupied by live data at
	// the start of the run (§4.2, §5.2). Zero means the paper's default of
	// 0.80. Applies to FlashCard runs when FlashCapacity is zero.
	FlashUtilization float64
	// FlashCapacity, when non-zero, fixes the flash size explicitly
	// (Figure 4 sweeps 34–38 MB); otherwise capacity is derived from the
	// stored data and FlashUtilization.
	FlashCapacity units.Bytes
	// StoredData, when non-zero, is the amount of live data preallocated in
	// flash (Figure 4 stores 32 MB); otherwise the trace's own footprint is
	// used. Must be at least the trace footprint.
	StoredData units.Bytes

	// FlashCacheBytes sizes the flash block cache of the FlashCache hybrid
	// (disk + flash cache, §6). Defaults to 4 MB. The hybrid also uses
	// Disk, SpinDown, and FlashCardParams.
	FlashCacheBytes units.Bytes

	// Array, when non-nil, replaces the single storage device with a
	// striped or mirrored composite (internal/array): members are built
	// from the same parameter structs as single-device runs ("flashcard"
	// members share FlashCardParams and the cleaning knobs, "disk" members
	// share Disk/SpinDown). Kind is ignored when Array is set. Parse a
	// topology string ("mirror:2xflashcard") with array.ParseSpec.
	Array *array.Spec
	// MemberFaults assigns each array member its own fault plan, keyed
	// "m0", "m1", … with "*" as the default (fault.ParsePlanSet). Member
	// plans may use die_at_us / die_after_erases / latent_error_rate /
	// carry_cleaning_backlog in addition to the transient-fault knobs;
	// power failures stay system-wide in Faults. Requires Array.
	MemberFaults fault.PlanSet

	// Faults, when non-nil and non-empty, enables deterministic fault
	// injection: transient read/write/erase errors with retry and backoff,
	// wear-out bad-block retirement with spare provisioning, and scheduled
	// power failures with crash recovery. Results for a given trace, plan,
	// and FaultSeed are reproducible. Nil keeps the fault-free path
	// byte-identical to a build without fault injection.
	Faults *fault.Plan
	// FaultSeed seeds the fault injector's deterministic generator.
	FaultSeed int64

	// Observer, when non-nil, receives every measured operation as it
	// completes — an op-level log for debugging and external analysis.
	// It must not retain the observation beyond the call.
	Observer func(OpObservation)

	// Scope, when non-nil, receives metrics and (if it carries a tracer)
	// structured events from every layer of the stack. Instrumentation is
	// strictly read-only: attaching a scope never changes simulation
	// results. Nil disables observability at zero cost.
	Scope *obs.Scope

	// Prep, when non-nil and built from this exact Trace, supplies the
	// per-trace preprocessing (validation, file-size hints, footprint) so
	// repeated runs over one trace — parameter sweeps, figure experiments —
	// skip the redundant whole-trace walks. A Prep built from a different
	// Trace is ignored and the preprocessing recomputed; results are
	// byte-identical either way. Build one with PrepareTrace.
	Prep *TracePrep

	// Reference routes the run through the frozen reference replay loop
	// (runReference): the original map-backed layout, buffer cache, and
	// interface-dispatched device calls, kept verbatim as the
	// obviously-correct baseline. The differential test harness
	// (internal/core/difftest) runs every configuration both ways and
	// requires byte-identical results; production callers leave this false.
	Reference bool

	// SampleEvery, when positive, snapshots Scope's registry every
	// SampleEvery of simulated time into Result.Timeline, adding derived
	// energy gauges (energy.total_j and per-component) at each point and —
	// when Scope carries a tracer — sample.energy events into the stream.
	// Requires a Scope with a registry; zero disables sampling at the cost
	// of one nil check per trace record.
	SampleEvery units.Time
}

// OpObservation is one completed trace operation as seen by the simulator.
type OpObservation struct {
	// Index is the record's position in the trace.
	Index int
	// Arrival and Response describe the operation's timing.
	Arrival  units.Time
	Response units.Time
	// Op is the operation type; CacheHit reports whether the DRAM cache
	// absorbed it.
	Op       trace.Op
	CacheHit bool
	// Size is the transfer size.
	Size units.Bytes
}

// withDefaults returns the config with the paper's defaults filled in.
func (c Config) withDefaults() Config {
	if c.WarmFraction == 0 {
		c.WarmFraction = 0.1
	}
	if c.WarmFraction < 0 {
		c.WarmFraction = 0
	}
	if c.DRAM == nil {
		p := device.NECDRAM()
		c.DRAM = &p
	}
	if c.SRAM == nil {
		p := device.NECSRAM()
		c.SRAM = &p
	}
	if c.FlashUtilization == 0 {
		c.FlashUtilization = 0.80
	}
	if c.CleaningPolicy == "" {
		c.CleaningPolicy = "greedy"
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Trace == nil {
		return fmt.Errorf("core: no trace configured")
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	return c.validateNonTrace()
}

// validateNonTrace checks everything Validate does except the O(records)
// trace walk, which Run skips when a matching TracePrep already vouched for
// the trace.
func (c Config) validateNonTrace() error {
	if c.FlashUtilization < 0 || c.FlashUtilization > 0.99 {
		return fmt.Errorf("core: flash utilization %.2f out of (0, 0.99]", c.FlashUtilization)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		if c.Faults.DieAtUs > 0 || c.Faults.DieAfterErases > 0 {
			return fmt.Errorf("core: die_at_us/die_after_erases are per-member fault-domain fields; put them in MemberFaults (an array member plan), not the system plan")
		}
	}
	if len(c.MemberFaults) > 0 {
		if c.Array == nil {
			return fmt.Errorf("core: MemberFaults requires an Array configuration")
		}
		if err := c.MemberFaults.Validate(); err != nil {
			return err
		}
	}
	if c.Array != nil {
		if len(c.Array.Members) == 0 {
			return fmt.Errorf("core: array spec has no members")
		}
		return nil // member kinds pick their own params; Kind is ignored
	}
	switch c.Kind {
	case MagneticDisk, FlashDisk, FlashCard, FlashCache:
		return nil
	default:
		return fmt.Errorf("core: unknown storage kind %d", c.Kind)
	}
}
