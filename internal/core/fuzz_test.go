package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mobilestorage/internal/device"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// randomTrace builds a structurally valid but adversarial trace: bursty
// arrivals, overlapping extents, interleaved deletions and recreations,
// files of wildly different sizes.
func randomTrace(rng *rand.Rand, records int) *trace.Trace {
	t := &trace.Trace{Name: "fuzz", BlockSize: 512}
	const nfiles = 24
	sizes := make([]units.Bytes, nfiles)
	for i := range sizes {
		sizes[i] = units.Bytes(rng.Intn(64)+1) * 512
	}
	deleted := make(map[uint32]bool)
	var now units.Time
	for i := 0; i < records; i++ {
		// Bursty clock: mostly sub-millisecond gaps, occasional long idles.
		if rng.Intn(20) == 0 {
			now += units.Time(rng.Intn(30)) * units.Second
		} else {
			now += units.Time(rng.Intn(2000)) * units.Microsecond
		}
		f := uint32(rng.Intn(nfiles))
		switch rng.Intn(10) {
		case 0:
			if deleted[f] {
				continue
			}
			deleted[f] = true
			t.Records = append(t.Records, trace.Record{Time: now, Op: trace.Delete, File: f, Size: sizes[f]})
			continue
		case 1, 2, 3, 4, 5:
			delete(deleted, f)
			off := units.Bytes(rng.Intn(int(sizes[f]/512))) * 512
			sz := units.Bytes(rng.Intn(int(sizes[f]-off)/512)+1) * 512
			t.Records = append(t.Records, trace.Record{Time: now, Op: trace.Write, File: f, Offset: off, Size: sz})
		default:
			if deleted[f] {
				continue
			}
			off := units.Bytes(rng.Intn(int(sizes[f]/512))) * 512
			sz := units.Bytes(rng.Intn(int(sizes[f]-off)/512)+1) * 512
			t.Records = append(t.Records, trace.Record{Time: now, Op: trace.Read, File: f, Offset: off, Size: sz})
		}
	}
	return t
}

// TestRunSurvivesRandomTraces drives randomized traces through every
// storage architecture and configuration corner, asserting the simulator
// neither panics nor produces non-physical results:
//   - energy non-negative, finite, and consistent with component sums;
//   - response times non-negative and finite;
//   - write amplification ≥ 1.
func TestRunSurvivesRandomTraces(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 400)
		if err := tr.Validate(); err != nil {
			t.Logf("generated invalid trace: %v", err)
			return false
		}
		configs := []Config{
			{Trace: tr, Kind: MagneticDisk, Disk: device.CU140Datasheet(),
				SpinDown:  units.Time(rng.Intn(10)) * units.Second,
				SRAMBytes: units.Bytes(rng.Intn(16)) * units.KB, DRAMBytes: units.Bytes(rng.Intn(64)) * units.KB},
			{Trace: tr, Kind: MagneticDisk, Disk: device.KittyhawkDatasheet(),
				SpinPolicy: []string{"adaptive", "immediate", "always-on"}[rng.Intn(3)]},
			{Trace: tr, Kind: FlashDisk, FlashDiskParams: device.SDP5Datasheet(),
				AsyncErase: rng.Intn(2) == 0, DRAMBytes: units.Bytes(rng.Intn(64)) * units.KB},
			{Trace: tr, Kind: FlashCard, FlashCardParams: device.IntelSeries2Datasheet(),
				FlashUtilization: 0.4 + 0.55*rng.Float64(),
				CleaningPolicy:   []string{"greedy", "cost-benefit", "fifo"}[rng.Intn(3)],
				OnDemandCleaning: rng.Intn(2) == 0,
				WearLeveling:     int64(rng.Intn(3) * 4),
				WriteBack:        rng.Intn(2) == 0,
				DRAMBytes:        units.Bytes(rng.Intn(64)) * units.KB},
		}
		for _, cfg := range configs {
			if cfg.SRAMBytes > 0 && cfg.SRAMBytes < tr.BlockSize {
				cfg.SRAMBytes = tr.BlockSize
			}
			res, err := Run(cfg)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if res.EnergyJ < 0 || math.IsNaN(res.EnergyJ) || math.IsInf(res.EnergyJ, 0) {
				t.Logf("seed %d: bad energy %g", seed, res.EnergyJ)
				return false
			}
			for _, v := range []float64{res.Read.Mean(), res.Read.Max(), res.Write.Mean(), res.Write.Max()} {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Logf("seed %d: bad response %g", seed, v)
					return false
				}
			}
			if res.WriteAmplification() < 1 {
				t.Logf("seed %d: amplification %g < 1", seed, res.WriteAmplification())
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPercentilesOrdered: on a real run, the percentile bounds are
// monotonic and bracket the mean sensibly.
func TestPercentilesOrdered(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(1)), 500)
	res, err := Run(Config{Trace: tr, Kind: FlashDisk, FlashDiskParams: device.SDP5Datasheet()})
	if err != nil {
		t.Fatal(err)
	}
	p50, p95, p99 := res.WriteP(0.50), res.WriteP(0.95), res.WriteP(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("percentiles not ordered: %g %g %g", p50, p95, p99)
	}
	if p99 < res.Write.Mean()/10 {
		t.Errorf("p99 %g implausibly below mean %g", p99, res.Write.Mean())
	}
}
