package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// faultPlan returns the stress plan the fault presets share: transient
// errors on every op class, aggressive wear-out with spares, and three
// power failures spread across the run.
func faultPlan(t *testing.T) *fault.Plan {
	t.Helper()
	dur := goldenTrace(t).Trace.Duration()
	return &fault.Plan{
		ReadErrorRate:  0.01,
		WriteErrorRate: 0.02,
		EraseErrorRate: 0.05,
		MaxRetries:     3,
		BackoffUs:      200,
		MaxBackoffUs:   5_000,
		WearOutAfter:   40,
		SpareSegments:  4,
		PowerFailAtUs:  []int64{int64(dur) / 4, int64(dur) / 2, 3 * int64(dur) / 4},
	}
}

// faultPresets layers the shared fault plan over one configuration of each
// storage architecture (disk+SRAM, flash disk async, flash card, hybrid).
func faultPresets(t *testing.T) []goldenPreset {
	base := func() Config {
		c := *goldenTrace(t)
		c.Faults = faultPlan(t)
		c.FaultSeed = 99
		return c
	}
	return []goldenPreset{
		{"fault-disk-sram", func() Config {
			c := base()
			c.Kind = MagneticDisk
			c.Disk = device.CU140Measured()
			c.SpinDown = 5 * units.Second
			c.SRAMBytes = 32 * units.KB
			return c
		}},
		{"fault-flashdisk-async", func() Config {
			c := base()
			c.Kind = FlashDisk
			c.FlashDiskParams = device.SDP5Datasheet()
			c.AsyncErase = true
			return c
		}},
		{"fault-flashcard", func() Config {
			c := base()
			c.Kind = FlashCard
			c.FlashCardParams = device.IntelSeries2Measured()
			return c
		}},
		{"fault-flashcache-hybrid", func() Config {
			c := base()
			c.Kind = FlashCache
			c.Disk = device.CU140Measured()
			c.SpinDown = 5 * units.Second
			c.FlashCardParams = device.IntelSeries2Measured()
			c.FlashCacheBytes = 4 * units.MB
			return c
		}},
	}
}

// faultSnapshot pins a faulted run: the regular golden snapshot plus the
// fault report.
type faultSnapshot struct {
	goldenSnapshot
	Faults *fault.Report `json:"faults"`
}

// TestFaultGolden pins each faulted preset — results, counters, event-stream
// digest, and the full fault report — to a golden file. Same trace, plan,
// and seed must reproduce these bytes exactly on any toolchain. Regenerate
// intentionally with -update and review the diff.
func TestFaultGolden(t *testing.T) {
	for _, p := range faultPresets(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			res, reg, events, n := runObserved(t, p.cfg())
			got := faultSnapshot{goldenSnapshot: snapshot(res, reg, events, n), Faults: res.Faults}

			path := filepath.Join("testdata", "golden", p.name+".json")
			if *update {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			var want faultSnapshot
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			gotJSON, _ := json.MarshalIndent(got, "", "  ")
			wantJSON, _ := json.MarshalIndent(want, "", "  ")
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Errorf("fault golden mismatch for %s:\n--- want\n%s\n--- got\n%s", p.name, wantJSON, gotJSON)
			}
		})
	}
}

// TestFaultDeterminism runs each faulted preset twice: identical trace,
// plan, and seed must produce byte-identical event streams and identical
// fault reports — the reproducibility contract that makes fault runs
// debuggable.
func TestFaultDeterminism(t *testing.T) {
	for _, p := range faultPresets(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			r1, _, ev1, n1 := runObserved(t, p.cfg())
			r2, _, ev2, n2 := runObserved(t, p.cfg())
			if n1 != n2 || !bytes.Equal(ev1, ev2) {
				t.Error("event streams not byte-identical across identical faulted runs")
			}
			if r1.EnergyJ != r2.EnergyJ || r1.EndTime != r2.EndTime ||
				r1.Read.Mean() != r2.Read.Mean() || r1.Write.Mean() != r2.Write.Mean() {
				t.Error("results differ across identical faulted runs")
			}
			if !reflect.DeepEqual(r1.Faults, r2.Faults) {
				t.Errorf("fault reports differ:\n%+v\n%+v", r1.Faults, r2.Faults)
			}
			// A different seed must actually change the injections.
			alt := p.cfg()
			alt.FaultSeed++
			r3, err := Run(alt)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(r1.Faults, r3.Faults) {
				t.Error("different seeds produced identical fault reports")
			}
		})
	}
}

// TestFaultInvariants asserts the recovery contract on every faulted
// preset: all scheduled power failures fired, faults were injected and
// retried, no acknowledged write was lost (all presets are write-through),
// and zero recovery-invariant violations.
func TestFaultInvariants(t *testing.T) {
	for _, p := range faultPresets(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			res, err := Run(p.cfg())
			if err != nil {
				t.Fatal(err)
			}
			rep := res.Faults
			if rep == nil {
				t.Fatal("faulted run produced no fault report")
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("recovery invariant violations:\n%s", rep.Violations)
			}
			if rep.PowerFailures != 3 {
				t.Errorf("power failures = %d, want 3", rep.PowerFailures)
			}
			if rep.LostWrites != 0 {
				t.Errorf("write-through configuration lost %d acknowledged writes", rep.LostWrites)
			}
			if rep.ReadFaults+rep.WriteFaults+rep.EraseFaults == 0 {
				t.Error("plan with non-zero rates injected nothing")
			}
			if rep.Retries == 0 || rep.BackoffTime == 0 {
				t.Error("injected faults produced no retries/backoff")
			}
		})
	}
}

// TestFaultsSlowAndCostMore sanity-checks the physics: the same workload
// with injected transient faults must take at least as long and use at
// least as much energy as the fault-free run. The comparison plan carries
// only error rates: spares add capacity (which would correctly make the
// faulted flash card faster by easing cleaning pressure) and power
// failures truncate queued background work, so both are excluded.
func TestFaultsSlowAndCostMore(t *testing.T) {
	for _, p := range faultPresets(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			cfg := p.cfg()
			plan := *cfg.Faults
			plan.WearOutAfter = 0
			plan.SpareSegments = 0
			plan.PowerFailAtUs = nil
			cfg.Faults = &plan
			faulted, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			clean := p.cfg()
			clean.Faults = nil
			base, err := Run(clean)
			if err != nil {
				t.Fatal(err)
			}
			if faulted.Faults == nil || base.Faults != nil {
				t.Fatal("fault report presence does not track the plan")
			}
			if faulted.Overall.Mean() < base.Overall.Mean() {
				t.Errorf("faulted mean response %.3f ms below fault-free %.3f ms",
					faulted.Overall.Mean(), base.Overall.Mean())
			}
			if faulted.EnergyJ < base.EnergyJ {
				t.Errorf("faulted energy %.1f J below fault-free %.1f J", faulted.EnergyJ, base.EnergyJ)
			}
		})
	}
}

// TestFaultOvercommitRecovers pins the scenario that used to wedge the
// flash-card cleaner (storagesim -device intel -trace synth with the
// example plan, seed 7): wear_out_after 3 retires segments while the synth
// trace's live set is still growing, until the survivors cannot hold the
// full footprint plus the cleaning reserve. The run must complete by
// pressing retired segments back into service, not panic with "no erased
// space and no cleanable victim".
func TestFaultOvercommitRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("full synth trace")
	}
	tr, err := workload.GenerateByName("synth", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Trace:            tr,
		DRAMBytes:        2 * units.MB,
		Kind:             FlashCard,
		FlashCardParams:  device.IntelSeries2Measured(),
		FlashUtilization: 0.8,
		Faults: &fault.Plan{
			ReadErrorRate:  0.01,
			WriteErrorRate: 0.02,
			EraseErrorRate: 0.05,
			MaxRetries:     3,
			BackoffUs:      200,
			MaxBackoffUs:   5_000,
			WearOutAfter:   3,
			SpareSegments:  4,
			PowerFailAtUs:  []int64{60_000_000, 180_000_000},
		},
		FaultSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Reclaims == 0 {
		t.Error("overcommitted card completed without reclaiming retired segments")
	}
	if len(res.Faults.Violations) != 0 {
		t.Errorf("recovery invariant violations:\n%s", res.Faults.Violations)
	}
}

// TestWriteBackAblationReportsLostWrites runs the write-back DRAM ablation
// through a power failure and verifies the loss is reported as data loss
// (the configuration volunteered for it) rather than an invariant violation.
func TestWriteBackAblationReportsLostWrites(t *testing.T) {
	tr, err := workload.Synth(workload.SynthConfig{Seed: 7, Ops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Trace:     tr,
		DRAMBytes: 512 * units.KB,
		WriteBack: true,
		Kind:      MagneticDisk,
		Disk:      device.CU140Measured(),
		SpinDown:  5 * units.Second,
		Faults:    &fault.Plan{PowerFailAtUs: []int64{int64(tr.Duration()) / 2}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.PowerFailures != 1 {
		t.Fatalf("power failures = %d, want 1", res.Faults.PowerFailures)
	}
	if res.Faults.LostWrites == 0 {
		t.Error("write-back cache lost nothing across a mid-run power failure (dirty data expected)")
	}
	if len(res.Faults.Violations) != 0 {
		t.Errorf("write-back loss misreported as violations: %v", res.Faults.Violations)
	}
}

// TestFaultCountersMatchReport cross-checks the observability counters
// against the fault report — two independent accounting paths that must
// agree exactly.
func TestFaultCountersMatchReport(t *testing.T) {
	for _, p := range faultPresets(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			res, reg, _, _ := runObserved(t, p.cfg())
			m := reg.Counters()
			rep := res.Faults
			check := func(name string, want int64) {
				t.Helper()
				if got := m[name]; got != want {
					t.Errorf("counter %s = %d, report says %d", name, got, want)
				}
			}
			check("fault.injected", rep.ReadFaults+rep.WriteFaults+rep.EraseFaults)
			check("fault.retries", rep.Retries)
			check("fault.exhausted", rep.Exhausted)
			check("fault.remaps", rep.Remaps)
			check("fault.reclaims", rep.Reclaims)
			check("fault.power_failures", rep.PowerFailures)
			check("fault.replayed_blocks", rep.ReplayedBlocks)
			check("fault.lost_writes", rep.LostWrites)
		})
	}
}

// FuzzPowerFail fuzzes the power-failure schedule and seed across all four
// storage architectures: whatever the crash timing, recovery must complete
// with zero invariant violations and zero lost acknowledged writes.
func FuzzPowerFail(f *testing.F) {
	f.Add(int64(1), int64(1_000_000), int64(30_000_000), int64(200_000_000), uint8(0))
	f.Add(int64(2), int64(0), int64(0), int64(0), uint8(2))
	f.Add(int64(3), int64(5), int64(6), int64(7), uint8(1))
	f.Add(int64(-9), int64(1<<40), int64(17), int64(999_999_999), uint8(3))
	f.Fuzz(func(t *testing.T, seed, t1, t2, t3 int64, kind uint8) {
		tr, err := workload.Synth(workload.SynthConfig{Seed: 11, Ops: 600})
		if err != nil {
			t.Fatal(err)
		}
		clamp := func(v int64) int64 {
			if v < 0 {
				v = -v
			}
			if v < 0 { // MinInt64
				v = 0
			}
			return v % (2 * int64(tr.Duration()))
		}
		cfg := Config{
			Trace:           tr,
			DRAMBytes:       256 * units.KB,
			Kind:            StorageKind(kind % 4),
			Disk:            device.CU140Measured(),
			SpinDown:        5 * units.Second,
			FlashDiskParams: device.SDP10Measured(),
			FlashCardParams: device.IntelSeries2Measured(),
			Faults: &fault.Plan{
				WriteErrorRate: 0.01,
				EraseErrorRate: 0.02,
				PowerFailAtUs:  []int64{clamp(t1), clamp(t2), clamp(t3)},
			},
			FaultSeed: seed,
		}
		if cfg.Kind == MagneticDisk {
			cfg.SRAMBytes = 32 * units.KB
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Faults.Violations) != 0 {
			t.Fatalf("kind %v: recovery invariant violations:\n%s", cfg.Kind, res.Faults.Violations)
		}
		if res.Faults.LostWrites != 0 {
			t.Fatalf("kind %v: lost %d acknowledged writes in a write-through config",
				cfg.Kind, res.Faults.LostWrites)
		}
	})
}
