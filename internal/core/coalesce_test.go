package core

import (
	"testing"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// rec builds a record with millisecond timestamps for readability.
func rec(ms int64, op trace.Op, file uint32, off, size units.Bytes) trace.Record {
	return trace.Record{Time: units.Time(ms) * units.Millisecond, Op: op, File: file, Offset: off, Size: size}
}

// runEndsOf prepares a hand-built 1 KB-block trace and returns its run table.
func runEndsOf(t *testing.T, recs ...trace.Record) []int32 {
	t.Helper()
	tr := &trace.Trace{Name: "unit", BlockSize: units.KB, Records: recs}
	p := PrepareTrace(tr)
	if p.err != nil {
		t.Fatalf("PrepareTrace: %v", p.err)
	}
	return p.runEnds
}

func wantEnds(t *testing.T, got []int32, want ...int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("runEnds length: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("runEnds = %v, want %v", got, want)
		}
	}
}

// TestCoalesceRuns pins the boundary behaviour of the extent coalescer: runs
// extend only across consecutive same-op, same-file, byte-contiguous
// records, and every record inside a chain sees the same (capped) end.
func TestCoalesceRuns(t *testing.T) {
	k := units.KB

	t.Run("op change splits", func(t *testing.T) {
		ends := runEndsOf(t,
			rec(0, trace.Write, 0, 0, k),
			rec(1, trace.Write, 0, k, k),
			rec(2, trace.Write, 0, 2*k, k),
			rec(3, trace.Read, 0, 0, k),
			rec(4, trace.Read, 0, k, k),
		)
		wantEnds(t, ends, 3, 3, 3, 5, 5)
	})

	t.Run("file change splits", func(t *testing.T) {
		ends := runEndsOf(t,
			rec(0, trace.Write, 0, 0, k),
			rec(1, trace.Write, 0, k, k),
			rec(2, trace.Write, 1, 0, k),
			rec(3, trace.Write, 1, k, k),
		)
		wantEnds(t, ends, 2, 2, 4, 4)
	})

	t.Run("offset gap splits", func(t *testing.T) {
		ends := runEndsOf(t,
			rec(0, trace.Write, 0, 0, k),
			rec(1, trace.Write, 0, 3*k, k), // hole at [1k, 3k)
		)
		wantEnds(t, ends, 1, 2)
	})

	t.Run("rewrite of the same offset splits", func(t *testing.T) {
		ends := runEndsOf(t,
			rec(0, trace.Write, 0, 0, k),
			rec(1, trace.Write, 0, 0, k),
		)
		wantEnds(t, ends, 1, 2)
	})

	t.Run("sub-block records chain when offsets are dense", func(t *testing.T) {
		// Placement is file base + offset, so byte-dense sub-block writes
		// still form an extent; the 1 KB block size does not quantize runs.
		ends := runEndsOf(t,
			rec(0, trace.Write, 0, 0, 512),
			rec(1, trace.Write, 0, 512, 512),
			rec(2, trace.Write, 0, k, k),
		)
		wantEnds(t, ends, 3, 3, 3)
	})

	t.Run("mixed sizes chain", func(t *testing.T) {
		ends := runEndsOf(t,
			rec(0, trace.Write, 0, 0, 3*k),
			rec(1, trace.Write, 0, 3*k, k),
		)
		wantEnds(t, ends, 2, 2)
	})

	t.Run("delete is always a singleton and splits its neighbours", func(t *testing.T) {
		ends := runEndsOf(t,
			rec(0, trace.Write, 0, 0, k),
			rec(1, trace.Write, 0, k, k),
			rec(2, trace.Delete, 0, 0, 2*k),
			rec(3, trace.Write, 0, 0, k),
		)
		wantEnds(t, ends, 2, 2, 3, 4)
	})

	t.Run("cap at maxExtentLen", func(t *testing.T) {
		n := maxExtentLen + 6
		recs := make([]trace.Record, n)
		for i := range recs {
			recs[i] = rec(int64(i), trace.Write, 0, units.Bytes(i)*k, k)
		}
		ends := runEndsOf(t, recs...)
		for i := range ends {
			want := int32(i + maxExtentLen)
			if want > int32(n) {
				want = int32(n)
			}
			if ends[i] != want {
				t.Fatalf("ends[%d] = %d, want %d (cap %d over chain of %d)",
					i, ends[i], want, maxExtentLen, n)
			}
		}
	})

	t.Run("singletons", func(t *testing.T) {
		ends := runEndsOf(t,
			rec(0, trace.Write, 0, 0, k),
			rec(1, trace.Read, 0, 0, k),
			rec(2, trace.Write, 1, 0, k),
		)
		wantEnds(t, ends, 1, 2, 3)
	})
}
