package core

import (
	"fmt"

	"mobilestorage/internal/array"
	"mobilestorage/internal/cache"
	"mobilestorage/internal/device"
	"mobilestorage/internal/disk"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/flashcard"
	"mobilestorage/internal/flashdisk"
	"mobilestorage/internal/hybrid"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/sram"
	"mobilestorage/internal/stats"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// stack is the composed storage hierarchy for one run, with typed handles
// to each component for statistics extraction.
type stack struct {
	top    device.Device
	disk   *disk.Disk
	fdisk  *flashdisk.FlashDisk
	fcard  *flashcard.Card
	hyb    *hybrid.Cache
	arr    *array.Array
	buffer *sram.Buffer
}

// meters returns every energy meter in the stack. Each populated component
// is checked independently: buildStack only ever sets one base device, but a
// hand-assembled stack (tests, future composites) must report every meter
// exactly once rather than just the first match.
func (s *stack) meters() []*energy.Meter {
	var ms []*energy.Meter
	if s.disk != nil {
		ms = append(ms, s.disk.Meter())
	}
	if s.fdisk != nil {
		ms = append(ms, s.fdisk.Meter())
	}
	if s.fcard != nil {
		ms = append(ms, s.fcard.Meter())
	}
	if s.hyb != nil {
		ms = append(ms, s.hyb.Meter())
	}
	if s.arr != nil {
		ms = append(ms, s.arr.Meters()...)
	}
	if s.buffer != nil {
		ms = append(ms, s.buffer.Meter())
	}
	return ms
}

// access dispatches a request to the top of the stack through a concrete
// type where one is known. Run calls this once per record (plus once per
// dirty eviction); the devirtualized calls save the itab dispatch and let
// the compiler see the callee. The order puts the SRAM buffer first — when
// present it wraps the base device and is the top — then the base devices.
func (s *stack) access(req device.Request) units.Time {
	switch {
	case s.buffer != nil:
		return s.buffer.Access(req)
	case s.fcard != nil:
		return s.fcard.Access(req)
	case s.disk != nil:
		return s.disk.Access(req)
	case s.fdisk != nil:
		return s.fdisk.Access(req)
	case s.hyb != nil:
		return s.hyb.Access(req)
	case s.arr != nil:
		return s.arr.Access(req)
	default:
		return s.top.Access(req)
	}
}

// idle is the devirtualized counterpart of access for the per-record
// top-of-stack Idle call.
func (s *stack) idle(now units.Time) {
	switch {
	case s.buffer != nil:
		s.buffer.Idle(now)
	case s.fcard != nil:
		s.fcard.Idle(now)
	case s.disk != nil:
		s.disk.Idle(now)
	case s.fdisk != nil:
		s.fdisk.Idle(now)
	case s.hyb != nil:
		s.hyb.Idle(now)
	case s.arr != nil:
		s.arr.Idle(now)
	default:
		s.top.Idle(now)
	}
}

// readExtent dispatches a coalesced run of read requests to the top of the
// stack through a concrete type where one is known, filling completions[k]
// with request k's completion time. Each device's extent method is
// equivalent by construction to Idle(reqs[k].Time) then Access(reqs[k]) per
// request, so the fallback loop below defines the semantics.
func (s *stack) readExtent(reqs []device.Request, completions []units.Time) {
	switch {
	case s.buffer != nil:
		s.buffer.ReadExtent(reqs, completions)
	case s.fcard != nil:
		s.fcard.ReadExtent(reqs, completions)
	case s.disk != nil:
		s.disk.ReadExtent(reqs, completions)
	case s.fdisk != nil:
		s.fdisk.ReadExtent(reqs, completions)
	case s.hyb != nil:
		s.hyb.ReadExtent(reqs, completions)
	case s.arr != nil:
		s.arr.ReadExtent(reqs, completions)
	default:
		for k := range reqs {
			s.top.Idle(reqs[k].Time)
			completions[k] = s.top.Access(reqs[k])
		}
	}
}

// writeExtent is readExtent's write-path counterpart.
func (s *stack) writeExtent(reqs []device.Request, completions []units.Time) {
	switch {
	case s.buffer != nil:
		s.buffer.WriteExtent(reqs, completions)
	case s.fcard != nil:
		s.fcard.WriteExtent(reqs, completions)
	case s.disk != nil:
		s.disk.WriteExtent(reqs, completions)
	case s.fdisk != nil:
		s.fdisk.WriteExtent(reqs, completions)
	case s.hyb != nil:
		s.hyb.WriteExtent(reqs, completions)
	case s.arr != nil:
		s.arr.WriteExtent(reqs, completions)
	default:
		for k := range reqs {
			s.top.Idle(reqs[k].Time)
			completions[k] = s.top.Access(reqs[k])
		}
	}
}

// dramCache is the buffer-cache surface the simulator's setup, teardown,
// and crash helpers need. Both the fast cache.Cache and the frozen
// cache.RefCache satisfy it, so the helpers are shared between Run's hot
// path (which holds the concrete *cache.Cache) and runReference.
type dramCache interface {
	Meter() *energy.Meter
	AccessTime(size units.Bytes) units.Time
	AccrueStandby(now units.Time)
	Contains(addr, size units.Bytes) bool
	Insert(addr, size units.Bytes, dirty bool) []cache.Extent
	Invalidate(addr, size units.Bytes)
	DirtyExtents() []cache.Extent
	Crash() int
	Hits() int64
	Misses() int64
}

// TracePrep is the cached per-trace preprocessing Run performs before
// replay: validation, per-file maximum extents (placement hints), and the
// storage footprint. It is immutable once built and safe to share across
// concurrent runs, which is exactly what parameter sweeps over one trace
// want — build it once with PrepareTrace and put it in Config.Prep.
type TracePrep struct {
	trace     *trace.Trace
	err       error
	hints     *trace.FileSizes
	footprint units.Bytes
	// placements[i] is record i's device byte address. Placement is a pure
	// function of the record sequence — the layout evolves identically
	// regardless of device or cache configuration — so it is computed once
	// per trace and shared by every run in a sweep instead of being replayed
	// through a fresh Layout per run. Delete records (which need the whole
	// extent, and may be no-ops) live in the deletions side table; their
	// placements entry is unused.
	placements []units.Bytes
	deletions  map[int]delExtent
	// runEnds[i] is the exclusive end of the longest batchable run starting
	// at record i: consecutive same-op, same-file records whose placements
	// are byte-contiguous, capped at maxExtentLen. Run replays [i, runEnds[i])
	// as one extent (after trimming for crashes, sampling boundaries, and the
	// warm-start snapshot). Delete records always get runEnds[i] == i+1.
	runEnds []int32
}

// maxExtentLen caps coalesced runs; it bounds the replay loop's stack
// scratch buffers and keeps trim scans short.
const maxExtentLen = 64

// coalesceRuns computes TracePrep.runEnds. A run extends while the op and
// file stay the same and each record's placement starts exactly where the
// previous record's data ended — the condition under which devices see a
// sequential extent. Within a maximal chain [a, b) every suffix is itself a
// chain, so runEnds[k] = min(b, k+maxExtentLen).
func coalesceRuns(t *trace.Trace, placements []units.Bytes) []int32 {
	recs := t.Records
	out := make([]int32, len(recs))
	for i := 0; i < len(recs); {
		if recs[i].Op == trace.Delete {
			out[i] = int32(i + 1)
			i++
			continue
		}
		j := i + 1
		for j < len(recs) && recs[j].Op == recs[i].Op && recs[j].File == recs[i].File &&
			placements[j] == placements[j-1]+recs[j-1].Size {
			j++
		}
		for k := i; k < j; k++ {
			e := k + maxExtentLen
			if e > j {
				e = j
			}
			out[k] = int32(e)
		}
		i = j
	}
	return out
}

// delExtent is the extent a Delete record releases.
type delExtent struct {
	off, size units.Bytes
}

// placeRecords replays the layout over the trace once, recording each
// record's placement, and returns the high-water footprint of the same
// replay (block-rounded by construction). Deletes of never-placed files are
// simply absent from the deletions table.
func placeRecords(t *trace.Trace, blockSize units.Bytes, hints *trace.FileSizes) ([]units.Bytes, map[int]delExtent, units.Bytes) {
	l := trace.NewLayout(blockSize)
	out := make([]units.Bytes, len(t.Records))
	var dels map[int]delExtent
	for i, rec := range t.Records {
		switch rec.Op {
		case trace.Delete:
			off, size, ok := l.Extent(rec.File)
			if !ok {
				continue
			}
			if dels == nil {
				dels = make(map[int]delExtent)
			}
			dels[i] = delExtent{off: off, size: size}
			l.Delete(rec.File)
		default:
			out[i] = l.Place(rec.File, rec.Offset, hints.Get(rec.File))
		}
	}
	return out, dels, l.HighWater()
}

// PrepareTrace validates the trace and precomputes the placement hints and
// footprint Run needs. The result is tied to this exact *Trace; mutating
// the trace afterwards invalidates it.
func PrepareTrace(t *trace.Trace) *TracePrep {
	p := &TracePrep{trace: t}
	if err := t.Validate(); err != nil {
		p.err = err
		return p
	}
	p.hints = t.MaxFileExtents()
	p.placements, p.deletions, p.footprint = placeRecords(t, t.BlockSize, p.hints)
	p.runEnds = coalesceRuns(t, p.placements)
	return p
}

// Footprint returns the trace's storage footprint (0 for an invalid trace).
func (p *TracePrep) Footprint() units.Bytes { return p.footprint }

// Err returns the trace validation error, if any.
func (p *TracePrep) Err() error { return p.err }

// Run replays the configured trace through the configured storage hierarchy
// and returns the paper-style result.
func Run(cfg Config) (*Result, error) {
	if cfg.Reference {
		return runReference(cfg)
	}
	cfg = cfg.withDefaults()
	if cfg.Trace == nil {
		return nil, fmt.Errorf("core: no trace configured")
	}
	prep := cfg.Prep
	if prep == nil || prep.trace != cfg.Trace {
		prep = PrepareTrace(cfg.Trace)
	}
	if prep.err != nil {
		return nil, prep.err
	}
	if err := cfg.validateNonTrace(); err != nil {
		return nil, err
	}
	t := cfg.Trace
	blockSize := t.BlockSize

	// Preprocessing (footprint sizes the flash devices; per-record placements
	// replace the per-run layout replay) comes from the prep — shared across
	// a sweep's runs or computed fresh above.
	placements := prep.placements
	deletions := prep.deletions
	footprint := prep.footprint

	// Nil when the plan injects nothing: the fault-free path stays
	// byte-identical to a build without fault injection.
	inj := fault.NewInjector(cfg.Faults, cfg.FaultSeed, cfg.Scope)

	st, err := buildStack(cfg, blockSize, footprint, inj)
	if err != nil {
		return nil, err
	}
	var dram *cache.Cache
	if cfg.DRAMBytes > 0 {
		dram, err = cache.New(*cfg.DRAM, cfg.DRAMBytes, blockSize, cfg.WriteBack, cache.WithScope(cfg.Scope))
		if err != nil {
			return nil, err
		}
	}
	// dc is the nil-safe interface view of dram for the shared helpers: a
	// typed nil *cache.Cache inside the interface would defeat their
	// dram != nil checks.
	var dc dramCache
	if dram != nil {
		dc = dram
	}
	sc := cfg.Scope
	tracing := sc.Tracing()
	smp := newSampler(cfg, sc, st, dc)

	res := &Result{
		TraceName:         t.Name,
		Device:            st.top.Name(),
		EnergyByComponent: make(map[string]float64),
		ReadHist:          stats.NewLatencyHistogram(),
		WriteHist:         stats.NewLatencyHistogram(),
	}

	warmIdx := t.WarmSplit(cfg.WarmFraction)
	var warmSnapshot float64
	snapshotTaken := warmIdx == 0

	crashes := inj.PowerFailSchedule()
	ci := 0

	observer := cfg.Observer
	var lastCompletion units.Time
	recs := t.Records
	runEnds := prep.runEnds
	// Per-extent scratch, bounded by maxExtentLen so it lives on the stack.
	var reqBuf [maxExtentLen]device.Request
	var compBuf, respBuf [maxExtentLen]units.Time
	var hitBuf [maxExtentLen]bool
	for i := 0; i < len(recs); {
		rec := &recs[i]
		for ci < len(crashes) && crashes[ci] <= rec.Time {
			crashAndRecover(st, dc, inj, cfg, crashes[ci])
			ci++
		}
		st.idle(rec.Time)
		smp.Tick(int64(rec.Time))
		if !snapshotTaken && i >= warmIdx {
			if dram != nil {
				dram.AccrueStandby(rec.Time)
			}
			warmSnapshot = totalEnergy(st, dc)
			snapshotTaken = true
		}

		if rec.Op == trace.Delete {
			if pl, ok := deletions[i]; ok {
				if dram != nil {
					dram.Invalidate(pl.off, pl.size)
				}
				st.access(device.Request{Time: rec.Time, Op: trace.Delete, File: rec.File, Addr: pl.off, Size: pl.size})
			}
			i++
			continue
		}

		if int(runEnds[i]) == i+1 {
			// Single-record run (most records in non-sequential workloads):
			// the per-record body, with none of the extent machinery.
			addr := placements[i]
			var resp units.Time
			hit := false
			if rec.Op == trace.Read {
				if dram != nil && dram.Contains(addr, rec.Size) {
					hit = true
					if tracing {
						sc.Emit(obs.Event{T: int64(rec.Time), Kind: obs.EvCacheHit, Size: int64(rec.Size)})
					}
					resp = dram.AccessTime(rec.Size)
				} else {
					if tracing && dram != nil {
						sc.Emit(obs.Event{T: int64(rec.Time), Kind: obs.EvCacheMiss, Size: int64(rec.Size)})
					}
					completion := st.access(device.Request{
						Time: rec.Time, Op: trace.Read, File: rec.File, Addr: addr, Size: rec.Size,
					})
					if completion > lastCompletion {
						lastCompletion = completion
					}
					if dram != nil {
						writeEvicted(st, dram.Insert(addr, rec.Size, false), completion)
					}
					resp = completion - rec.Time
				}
				if i >= warmIdx {
					res.Read.AddTime(resp)
					res.ReadHist.Add(resp.Milliseconds())
					res.Overall.AddTime(resp)
					res.MeasuredOps++
				}
				if observer != nil {
					observer(OpObservation{Index: i, Arrival: rec.Time, Response: resp,
						Op: trace.Read, CacheHit: hit, Size: rec.Size})
				}
			} else {
				if cfg.WriteBack && dram != nil {
					resp = dram.AccessTime(rec.Size)
					writeEvicted(st, dram.Insert(addr, rec.Size, true), rec.Time+resp)
				} else {
					completion := st.access(device.Request{
						Time: rec.Time, Op: trace.Write, File: rec.File, Addr: addr, Size: rec.Size,
					})
					if completion > lastCompletion {
						lastCompletion = completion
					}
					if dram != nil {
						dram.AccessTime(rec.Size) // parallel cache update energy
						writeEvicted(st, dram.Insert(addr, rec.Size, false), completion)
					}
					resp = completion - rec.Time
				}
				if i >= warmIdx {
					res.Write.AddTime(resp)
					res.WriteHist.Add(resp.Milliseconds())
					res.Overall.AddTime(resp)
					res.MeasuredOps++
				}
				if observer != nil {
					observer(OpObservation{Index: i, Arrival: rec.Time, Response: resp,
						Op: trace.Write, Size: rec.Size})
				}
			}
			i++
			continue
		}

		// The precomputed run [i, runEnds[i]) is trimmed so that no power
		// failure, sampling boundary, or warm-start snapshot falls inside it:
		// each of those must interleave with device work exactly where the
		// per-record loop would put it. The trims leave at least record i.
		j := int(runEnds[i])
		for j > i+1 && ci < len(crashes) && crashes[ci] <= recs[j-1].Time {
			j--
		}
		for next := smp.Next(); j > i+1 && int64(recs[j-1].Time) >= next; {
			j--
		}
		if !snapshotTaken && warmIdx < j {
			// i < warmIdx here (the snapshot check above just ran), so the
			// extent stops at the warm boundary and stays unmeasured.
			j = warmIdx
		}
		measured := i >= warmIdx
		n := j - i

		switch rec.Op {
		case trace.Read:
			if dram == nil {
				// Uncached reads: one devirtualized extent call covers the run.
				reqs := reqBuf[:n]
				comps := compBuf[:n]
				for k := 0; k < n; k++ {
					r := &recs[i+k]
					reqs[k] = device.Request{Time: r.Time, Op: trace.Read, File: r.File, Addr: placements[i+k], Size: r.Size}
				}
				st.readExtent(reqs, comps)
				for k := 0; k < n; k++ {
					if comps[k] > lastCompletion {
						lastCompletion = comps[k]
					}
					respBuf[k] = comps[k] - recs[i+k].Time
				}
			} else {
				// Cached reads stay per-record: an Insert can evict a block a
				// later Contains in the same run would otherwise hit, and
				// hit/miss events interleave with device events record by
				// record. Only the loop-invariant checks and the stats are
				// hoisted out.
				for k := i; k < j; k++ {
					r := &recs[k]
					st.idle(r.Time)
					addr := placements[k]
					var resp units.Time
					hit := false
					if dram.Contains(addr, r.Size) {
						hit = true
						if tracing {
							sc.Emit(obs.Event{T: int64(r.Time), Kind: obs.EvCacheHit, Size: int64(r.Size)})
						}
						resp = dram.AccessTime(r.Size)
					} else {
						if tracing {
							sc.Emit(obs.Event{T: int64(r.Time), Kind: obs.EvCacheMiss, Size: int64(r.Size)})
						}
						completion := st.access(device.Request{
							Time: r.Time, Op: trace.Read, File: r.File, Addr: addr, Size: r.Size,
						})
						if completion > lastCompletion {
							lastCompletion = completion
						}
						writeEvicted(st, dram.Insert(addr, r.Size, false), completion)
						resp = completion - r.Time
					}
					respBuf[k-i] = resp
					hitBuf[k-i] = hit
				}
			}
			if measured {
				addRespRun(&res.Read, res.ReadHist, &res.Overall, respBuf[:n])
				res.MeasuredOps += n
			}
			if observer != nil {
				for k := 0; k < n; k++ {
					r := &recs[i+k]
					observer(OpObservation{Index: i + k, Arrival: r.Time, Response: respBuf[k],
						Op: trace.Read, CacheHit: hitBuf[k], Size: r.Size})
				}
			}

		case trace.Write:
			if cfg.WriteBack && dram != nil {
				// Write-back ablation: the write completes at DRAM speed;
				// dirty evictions trickle out asynchronously — per record,
				// because an eviction's device write interleaves with the
				// next record's cache update.
				for k := i; k < j; k++ {
					r := &recs[k]
					st.idle(r.Time)
					resp := dram.AccessTime(r.Size)
					writeEvicted(st, dram.Insert(placements[k], r.Size, true), r.Time+resp)
					respBuf[k-i] = resp
				}
			} else {
				// Paper default: write-through. The device services the whole
				// run as one extent call; the cache updates follow. The
				// reorder is unobservable: write-through inserts are never
				// dirty (no eviction writes back to the device), the cache
				// emits no events on writes, and each meter's internal
				// accrual order is unchanged.
				reqs := reqBuf[:n]
				comps := compBuf[:n]
				for k := 0; k < n; k++ {
					r := &recs[i+k]
					reqs[k] = device.Request{Time: r.Time, Op: trace.Write, File: r.File, Addr: placements[i+k], Size: r.Size}
				}
				st.writeExtent(reqs, comps)
				for k := 0; k < n; k++ {
					if comps[k] > lastCompletion {
						lastCompletion = comps[k]
					}
					respBuf[k] = comps[k] - recs[i+k].Time
				}
				if dram != nil {
					for k := 0; k < n; k++ {
						r := &recs[i+k]
						dram.AccessTime(r.Size) // parallel cache update energy
						writeEvicted(st, dram.Insert(placements[i+k], r.Size, false), comps[k])
					}
				}
			}
			if measured {
				addRespRun(&res.Write, res.WriteHist, &res.Overall, respBuf[:n])
				res.MeasuredOps += n
			}
			if observer != nil {
				for k := 0; k < n; k++ {
					r := &recs[i+k]
					observer(OpObservation{Index: i + k, Arrival: r.Time, Response: respBuf[k],
						Op: trace.Write, Size: r.Size})
				}
			}
		}
		i = j
	}

	end := units.Max(t.Duration(), lastCompletion)
	// Power failures scheduled after the last record but within the run
	// still fire (the trace's tail idle period).
	for ; ci < len(crashes) && crashes[ci] <= end; ci++ {
		crashAndRecover(st, dc, inj, cfg, crashes[ci])
	}
	// Final write-back flush happens off the books: it is an artifact of
	// ending the simulation, not of the workload.
	if cfg.WriteBack && dram != nil {
		writeEvicted(st, dram.DirtyExtents(), end)
	}
	st.top.Finish(end)
	if dram != nil {
		dram.AccrueStandby(end)
	}

	// The final sample lands after the device and cache wind-down above, so
	// the timeline's last point carries the run's complete counter and
	// energy state.
	smp.Finish(int64(end))
	res.Timeline = smp.Timeline()

	res.EndTime = end
	fillEnergy(res, st, dc, warmSnapshot)
	fillDeviceStats(res, st, dc)
	res.Faults = inj.Report()
	if st.arr != nil {
		if ar := st.arr.FaultReport(); ar != nil {
			if res.Faults == nil {
				res.Faults = ar
			} else {
				res.Faults.Merge(ar)
			}
		}
	}
	if reg := sc.Registry(); reg != nil {
		res.Metrics = reg.Counters()
	}
	return res, nil
}

// crashAndRecover injects one power failure at the given instant and runs
// the recovery pass, checking the stack-level recovery invariants:
//
//   - a write-through DRAM cache never loses acknowledged writes (it holds
//     no dirty data); only the write-back ablation may report lost writes;
//   - the flash card's cleaner never loses live blocks to a crash;
//   - the battery-backed SRAM buffer is empty after its recovery replay.
//
// Violations are recorded on the injector's report — tests fail on any.
func crashAndRecover(st *stack, dram dramCache, inj *fault.Injector, cfg Config, at units.Time) {
	st.top.Idle(at)
	inj.RecordPowerFail(at)

	var card *flashcard.Card
	switch {
	case st.fcard != nil:
		card = st.fcard
	case st.hyb != nil:
		card = st.hyb.Card()
	}
	var preLive int64
	if card != nil {
		preLive = card.LiveBlocks()
	}

	if dram != nil {
		if lost := dram.Crash(); lost > 0 {
			inj.RecordLostWrites(int64(lost), at)
			if !cfg.WriteBack {
				inj.Violatef("core: write-through DRAM cache lost %d dirty blocks at power failure t=%dµs", lost, int64(at))
			}
		}
	}
	if cr, ok := st.top.(device.Crasher); ok {
		cr.Crash(at)
		cr.Recover(at)
	}

	if card != nil {
		if post := card.LiveBlocks(); post < preLive {
			inj.Violatef("core: flash card lost %d live blocks across power failure t=%dµs", preLive-post, int64(at))
		}
	}
	if st.buffer != nil && st.buffer.BufferedBytes() != 0 {
		inj.Violatef("core: SRAM buffer holds %v after recovery at t=%dµs", st.buffer.BufferedBytes(), int64(at))
	}
}

// addRespRun records an extent's response times into the per-op summary,
// its histogram, and the overall summary, collapsing equal consecutive
// values into single AddN calls. Each accumulator still sees its samples in
// record order (AddN applies the same per-sample update n times), so the
// results are bit-identical to per-record AddTime/Add calls.
func addRespRun(sum *stats.Summary, hist *stats.Histogram, overall *stats.Summary, resps []units.Time) {
	for a := 0; a < len(resps); {
		b := a + 1
		for b < len(resps) && resps[b] == resps[a] {
			b++
		}
		ms := resps[a].Milliseconds()
		n := int64(b - a)
		sum.AddN(ms, n)
		hist.AddN(ms, n)
		overall.AddN(ms, n)
		a = b
	}
}

// writeEvicted flushes dirty cache evictions to the device at the given
// time (asynchronous with respect to the response being measured).
func writeEvicted(st *stack, extents []cache.Extent, at units.Time) {
	for _, e := range extents {
		st.access(device.Request{
			Time: at, Op: trace.Write, File: ^uint32(0), Addr: e.Addr, Size: e.Size,
		})
	}
}

// totalEnergy sums all component meters.
func totalEnergy(st *stack, dram dramCache) float64 {
	var j float64
	for _, m := range st.meters() {
		j += m.TotalJ()
	}
	if dram != nil {
		j += dram.Meter().TotalJ()
	}
	return j
}

// fillEnergy computes post-warm-start energy totals and the component
// breakdown.
func fillEnergy(res *Result, st *stack, dram dramCache, warmSnapshot float64) {
	var storageJ float64
	switch {
	case st.disk != nil:
		storageJ = st.disk.Meter().TotalJ()
	case st.fdisk != nil:
		storageJ = st.fdisk.Meter().TotalJ()
	case st.fcard != nil:
		storageJ = st.fcard.Meter().TotalJ()
	case st.hyb != nil:
		storageJ = st.hyb.Meter().TotalJ()
	case st.arr != nil:
		for _, m := range st.arr.Meters() {
			storageJ += m.TotalJ()
		}
	}
	res.EnergyByComponent["storage"] = storageJ
	if st.buffer != nil {
		res.EnergyByComponent["sram"] = st.buffer.Meter().TotalJ()
	}
	if dram != nil {
		res.EnergyByComponent["dram"] = dram.Meter().TotalJ()
	}
	res.EnergyJ = totalEnergy(st, dram) - warmSnapshot
}

// fillDeviceStats extracts device-specific counters.
func fillDeviceStats(res *Result, st *stack, dram dramCache) {
	if dram != nil {
		res.CacheHits = dram.Hits()
		res.CacheMisses = dram.Misses()
	}
	if st.disk != nil {
		res.SpinUps = st.disk.SpinUps()
		res.SpinDowns = st.disk.SpinDowns()
	}
	if st.buffer != nil {
		res.SRAMFlushes = st.buffer.Flushes()
		res.SRAMStalledWrites = st.buffer.StalledWrites()
	}
	if st.hyb != nil {
		res.SpinUps = st.hyb.Disk().SpinUps()
		res.SpinDowns = st.hyb.Disk().SpinDowns()
		card := st.hyb.Card()
		res.Erases = card.TotalErases()
		res.CopiedBlocks = card.CopiedBlocks()
		res.HostBlocks = card.HostBlocks()
		res.WriteStalls = card.Stalls()
	}
	var wear device.WearReporter
	if st.fdisk != nil {
		wear = st.fdisk
	}
	if st.hyb != nil {
		wear = st.hyb.Card()
	}
	if st.fcard != nil {
		wear = st.fcard
		res.Erases = st.fcard.TotalErases()
		res.CopiedBlocks = st.fcard.CopiedBlocks()
		res.HostBlocks = st.fcard.HostBlocks()
		res.WriteStalls = st.fcard.Stalls()
		res.CleaningTime = st.fcard.CleaningTime()
		res.HostTime = st.fcard.HostTime()
	}
	if st.arr != nil {
		wear = st.arr
		res.Erases = st.arr.TotalErases()
		res.CopiedBlocks = st.arr.CopiedBlocks()
		res.HostBlocks = st.arr.HostBlocks()
		res.WriteStalls = st.arr.Stalls()
		res.CleaningTime = st.arr.CleaningTime()
		res.HostTime = st.arr.HostTime()
	}
	if wear != nil {
		counts := wear.EraseCounts()
		var sum, max int64
		for _, c := range counts {
			sum += c
			if c > max {
				max = c
			}
		}
		res.MaxEraseCount = max
		if len(counts) > 0 {
			res.MeanEraseCount = float64(sum) / float64(len(counts))
		}
		if res.Erases == 0 {
			res.Erases = sum
		}
	}
}

// Footprint returns the storage footprint of a trace: the maximum
// concurrent bytes placed over its lifetime. Experiments use it to size
// flash devices relative to the workload.
func Footprint(t *trace.Trace) units.Bytes {
	return traceFootprint(t, t.BlockSize, t.MaxFileExtents())
}

// traceFootprint dry-runs the layout over the whole trace and returns the
// maximum concurrent placement high-water mark, block-rounded.
func traceFootprint(t *trace.Trace, blockSize units.Bytes, hints *trace.FileSizes) units.Bytes {
	l := trace.NewLayout(blockSize)
	for _, rec := range t.Records {
		switch rec.Op {
		case trace.Delete:
			l.Delete(rec.File)
		default:
			l.Place(rec.File, rec.Offset, hints.Get(rec.File))
		}
	}
	return l.HighWater()
}

// buildStack constructs the configured storage hierarchy, threading the
// fault injector (nil = fault injection off) into every device layer.
func buildStack(cfg Config, blockSize, footprint units.Bytes, inj *fault.Injector) (*stack, error) {
	if cfg.Array != nil {
		return buildArrayStack(cfg, blockSize, footprint, inj)
	}
	st := &stack{}
	var base device.Device

	switch cfg.Kind {
	case MagneticDisk:
		policy, err := spinPolicy(cfg)
		if err != nil {
			return nil, err
		}
		d, err := disk.New(cfg.Disk, disk.WithPolicy(policy), disk.WithScope(cfg.Scope), disk.WithFaults(inj))
		if err != nil {
			return nil, err
		}
		st.disk = d
		base = d

	case FlashDisk:
		if err := cfg.FlashDiskParams.Validate(); err != nil {
			return nil, err
		}
		capacity := flashCapacity(cfg, footprint, cfg.FlashDiskParams.SectorSize)
		opts := []flashdisk.Option{flashdisk.WithScope(cfg.Scope), flashdisk.WithFaults(inj)}
		if cfg.AsyncErase {
			opts = append(opts, flashdisk.WithAsyncErase())
		}
		f, err := flashdisk.New(cfg.FlashDiskParams, capacity, opts...)
		if err != nil {
			return nil, err
		}
		st.fdisk = f
		base = f

	case FlashCard:
		if err := cfg.FlashCardParams.Validate(); err != nil {
			return nil, err
		}
		seg := cfg.FlashCardParams.SegmentSize
		capacity := cfg.FlashCapacity
		stored := cfg.StoredData
		if stored < footprint {
			stored = footprint
		}
		if capacity == 0 {
			capacity = flashCapacity(cfg, footprint, seg)
			// Guarantee the cleaning reserve above the stored data and the
			// card's structural minimum of four segments. An explicit
			// capacity is taken as-is and rejected downstream if too small.
			if capacity < stored+3*seg {
				capacity = units.CeilDiv(stored, seg)*seg + 3*seg
			}
			// Spare segments are extra physical flash provisioned beyond the
			// nominal capacity; wear-out retirements consume them before any
			// usable capacity is lost.
			capacity += units.Bytes(inj.SpareUnits()) * seg
		}
		opts := []flashcard.Option{flashcard.WithScope(cfg.Scope), flashcard.WithFaults(inj)}
		if cfg.OnDemandCleaning {
			opts = append(opts, flashcard.WithOnDemandCleaning())
		}
		if cfg.WearLeveling > 0 {
			opts = append(opts, flashcard.WithWearLeveling(cfg.WearLeveling))
		}
		if cfg.CleaningPolicy != "" {
			p, ok := flashcard.Policies()[cfg.CleaningPolicy]
			if !ok {
				return nil, fmt.Errorf("core: unknown cleaning policy %q", cfg.CleaningPolicy)
			}
			opts = append(opts, flashcard.WithPolicy(p))
		}
		c, err := flashcard.New(cfg.FlashCardParams, capacity, blockSize, opts...)
		if err != nil {
			return nil, err
		}
		if err := c.Prefill(stored); err != nil {
			return nil, err
		}
		st.fcard = c
		base = c

	case FlashCache:
		// Constructed below, after the switch (it composes two devices).
	default:
		return nil, fmt.Errorf("core: unknown storage kind %d", cfg.Kind)
	}

	if cfg.Kind == FlashCache {
		cacheBytes := cfg.FlashCacheBytes
		if cacheBytes == 0 {
			cacheBytes = 4 * units.MB
		}
		h, err := hybrid.New(hybrid.Config{
			Disk:      cfg.Disk,
			SpinDown:  cfg.SpinDown,
			Card:      cfg.FlashCardParams,
			CacheSize: cacheBytes,
			BlockSize: blockSize,
			Scope:     cfg.Scope,
			Faults:    inj,
		})
		if err != nil {
			return nil, err
		}
		st.hyb = h
		base = h
	}

	if cfg.SRAMBytes > 0 {
		b, err := sram.New(*cfg.SRAM, cfg.SRAMBytes, blockSize, base, sram.WithScope(cfg.Scope), sram.WithFaults(inj))
		if err != nil {
			return nil, err
		}
		st.buffer = b
		base = b
	}
	st.top = base
	return st, nil
}

// buildArrayStack constructs a composite-array stack from cfg.Array: every
// member is built from the same parameter structs a single-device run uses,
// but carries its own fault injector — its fault domain — seeded
// independently per slot. The system injector keeps power failures and the
// shared violation ledger; it never injects member-level faults.
func buildArrayStack(cfg Config, blockSize, footprint units.Bytes, inj *fault.Injector) (*stack, error) {
	spec := cfg.Array
	n := len(spec.Members)

	// Mirror members each hold the full data set; stripe members hold a 1/N
	// round-robin share of the block address space (one extra block covers
	// the uneven remainder slot).
	stored := cfg.StoredData
	if stored < footprint {
		stored = footprint
	}
	memberStored := stored
	if spec.Mode == array.Stripe {
		memberStored = units.CeilDiv(stored, units.Bytes(n)) + blockSize
	}

	members := make([]array.Member, n)
	for i, kind := range spec.Members {
		minj := fault.NewInjector(cfg.MemberFaults.Member(i), fault.MemberSeed(cfg.FaultSeed, i), cfg.Scope)
		switch kind {
		case "flashcard":
			dev, err := buildMemberCard(cfg, blockSize, memberStored, minj)
			if err != nil {
				return nil, fmt.Errorf("core: array member %d: %w", i, err)
			}
			members[i] = array.Member{
				Dev: dev,
				Inj: minj,
				// Replacements are fresh fault-free cards: the dead slot's
				// plan already fired, and a rebuilt card starts unworn.
				Replace: func() (device.Device, error) {
					return buildMemberCard(cfg, blockSize, memberStored, nil)
				},
			}
		case "disk":
			d, err := buildMemberDisk(cfg, minj)
			if err != nil {
				return nil, fmt.Errorf("core: array member %d: %w", i, err)
			}
			members[i] = array.Member{
				Dev: d,
				Inj: minj,
				Replace: func() (device.Device, error) {
					return buildMemberDisk(cfg, nil)
				},
			}
		default:
			return nil, fmt.Errorf("core: array member %d: unknown kind %q", i, kind)
		}
	}

	arr, err := array.New(array.Config{
		Mode:      spec.Mode,
		BlockSize: blockSize,
		Scope:     cfg.Scope,
		SysInj:    inj,
	}, members)
	if err != nil {
		return nil, err
	}
	st := &stack{arr: arr}
	var base device.Device = arr
	if cfg.SRAMBytes > 0 {
		b, err := sram.New(*cfg.SRAM, cfg.SRAMBytes, blockSize, base, sram.WithScope(cfg.Scope), sram.WithFaults(inj))
		if err != nil {
			return nil, err
		}
		st.buffer = b
		base = b
	}
	st.top = base
	return st, nil
}

// buildMemberCard constructs one flash-card array member sized for its
// share of the stored data. A nil injector builds the fault-free
// replacement card used by mirror rebuilds.
func buildMemberCard(cfg Config, blockSize, stored units.Bytes, minj *fault.Injector) (device.Device, error) {
	if err := cfg.FlashCardParams.Validate(); err != nil {
		return nil, err
	}
	seg := cfg.FlashCardParams.SegmentSize
	capacity := cfg.FlashCapacity
	if capacity == 0 {
		capacity = units.CeilDiv(units.Bytes(float64(stored)/cfg.FlashUtilization), seg) * seg
		if capacity < stored+3*seg {
			capacity = units.CeilDiv(stored, seg)*seg + 3*seg
		}
		capacity += units.Bytes(minj.SpareUnits()) * seg
	}
	opts := []flashcard.Option{flashcard.WithScope(cfg.Scope), flashcard.WithFaults(minj)}
	if cfg.OnDemandCleaning {
		opts = append(opts, flashcard.WithOnDemandCleaning())
	}
	if cfg.WearLeveling > 0 {
		opts = append(opts, flashcard.WithWearLeveling(cfg.WearLeveling))
	}
	if cfg.CleaningPolicy != "" {
		p, ok := flashcard.Policies()[cfg.CleaningPolicy]
		if !ok {
			return nil, fmt.Errorf("core: unknown cleaning policy %q", cfg.CleaningPolicy)
		}
		opts = append(opts, flashcard.WithPolicy(p))
	}
	c, err := flashcard.New(cfg.FlashCardParams, capacity, blockSize, opts...)
	if err != nil {
		return nil, err
	}
	if err := c.Prefill(stored); err != nil {
		return nil, err
	}
	return c, nil
}

// buildMemberDisk constructs one magnetic-disk array member.
func buildMemberDisk(cfg Config, minj *fault.Injector) (device.Device, error) {
	policy, err := spinPolicy(cfg)
	if err != nil {
		return nil, err
	}
	return disk.New(cfg.Disk, disk.WithPolicy(policy), disk.WithScope(cfg.Scope), disk.WithFaults(minj))
}

// spinPolicy resolves the configured spin-down policy.
func spinPolicy(cfg Config) (disk.SpinPolicy, error) {
	switch cfg.SpinPolicy {
	case "":
		return disk.FixedThreshold{Threshold: cfg.SpinDown}, nil
	case "always-on":
		return disk.FixedThreshold{}, nil
	case "immediate":
		return disk.Immediate{}, nil
	case "adaptive":
		return disk.NewAdaptive(), nil
	default:
		return nil, fmt.Errorf("core: unknown spin policy %q", cfg.SpinPolicy)
	}
}

// flashCapacity derives the flash device capacity from the config: explicit
// capacity wins; otherwise stored-data ÷ utilization, rounded up to the
// erase unit.
func flashCapacity(cfg Config, footprint, unit units.Bytes) units.Bytes {
	if cfg.FlashCapacity > 0 {
		return cfg.FlashCapacity
	}
	stored := cfg.StoredData
	if stored < footprint {
		stored = footprint
	}
	capacity := units.Bytes(float64(stored) / cfg.FlashUtilization)
	return units.CeilDiv(capacity, unit) * unit
}
