package core

import (
	"testing"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// TestFootprintZeroLength covers the degenerate traces: no records at all,
// and a delete-only stream (legal zero-size records) that never places
// anything.
func TestFootprintZeroLength(t *testing.T) {
	empty := &trace.Trace{Name: "empty", BlockSize: 512 * units.B}
	if got := Footprint(empty); got != 0 {
		t.Errorf("empty trace footprint = %v, want 0", got)
	}
	delOnly := &trace.Trace{
		Name:      "del-only",
		BlockSize: 512 * units.B,
		Records: []trace.Record{
			{Time: 0, Op: trace.Delete, File: 1},
			{Time: units.Second, Op: trace.Delete, File: 2},
		},
	}
	if got := Footprint(delOnly); got != 0 {
		t.Errorf("delete-only trace footprint = %v, want 0", got)
	}
}

// TestFootprintOverlappingWrites pins that overlapping accesses to the same
// file count the file's maximum extent once, not per access: the footprint
// is the block-rounded union of per-file extents.
func TestFootprintOverlappingWrites(t *testing.T) {
	const bs = 512 * units.B
	tr := &trace.Trace{
		Name:      "overlap",
		BlockSize: bs,
		Records: []trace.Record{
			{Time: 0, Op: trace.Write, File: 1, Offset: 0, Size: 1024 * units.B},
			{Time: 1, Op: trace.Write, File: 1, Offset: 512 * units.B, Size: 1024 * units.B},
			{Time: 2, Op: trace.Read, File: 1, Offset: 256 * units.B, Size: 512 * units.B},
			{Time: 3, Op: trace.Write, File: 2, Offset: 0, Size: 512 * units.B},
		},
	}
	// File 1 spans [0, 1536) across its overlapping accesses; file 2 adds
	// one block: 1536 + 512 = 2048 bytes.
	if got := Footprint(tr); got != 2048*units.B {
		t.Errorf("overlapping footprint = %v, want 2048", got)
	}
}

// TestFootprintDeleteRecreate pins that the footprint is the maximum
// CONCURRENT placement, not cumulative bytes written: space freed by a
// delete is reused by later files.
func TestFootprintDeleteRecreate(t *testing.T) {
	const bs = 512 * units.B
	tr := &trace.Trace{
		Name:      "churn",
		BlockSize: bs,
		Records: []trace.Record{
			{Time: 0, Op: trace.Write, File: 1, Offset: 0, Size: 2048 * units.B},
			{Time: 1, Op: trace.Delete, File: 1},
			{Time: 2, Op: trace.Write, File: 2, Offset: 0, Size: 2048 * units.B},
			{Time: 3, Op: trace.Delete, File: 2},
			{Time: 4, Op: trace.Write, File: 3, Offset: 0, Size: 2048 * units.B},
		},
	}
	if got := Footprint(tr); got != 2048*units.B {
		t.Errorf("churn footprint = %v, want 2048 (freed space must be reused)", got)
	}
}

// TestFootprintMatchesPrep pins that PrepareTrace's cached footprint (the
// one the replay loop actually consumes) agrees with the standalone
// dry-run for real generated workloads.
func TestFootprintMatchesPrep(t *testing.T) {
	tr, err := workload.Synth(workload.SynthConfig{Seed: 9, Ops: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := PrepareTrace(tr).Footprint(), Footprint(tr); got != want {
		t.Errorf("prep footprint %v != standalone footprint %v", got, want)
	}
}
