package core

import (
	"mobilestorage/internal/cache"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/stats"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// runReference is the frozen reference replay loop: a verbatim copy of Run
// as it stood before the hot-path overhaul, wired to the frozen reference
// implementations (trace.RefLayout, cache.RefCache, map-based file-size
// hints) and to interface-dispatched device calls. The differential test
// harness (internal/core/difftest) replays every configuration through both
// loops and requires byte-identical results.
//
// Do not optimize this function or share hot-loop code with Run — its whole
// value is being the slow, obviously-correct path the fast one is diffed
// against. Setup, teardown, and crash helpers are shared (via the dramCache
// interface) because they are not part of the replay loop under test.
func runReference(cfg Config) (*Result, error) {
	cfg.Reference = false
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := cfg.Trace
	blockSize := t.BlockSize

	// Preprocess with the frozen structures: map hints and the map-backed
	// layout, so device sizing is derived independently of the fast path.
	hints := t.MaxFileSizes()
	footprint := refTraceFootprint(t, blockSize, hints)

	inj := fault.NewInjector(cfg.Faults, cfg.FaultSeed, cfg.Scope)

	st, err := buildStack(cfg, blockSize, footprint, inj)
	if err != nil {
		return nil, err
	}
	var dram *cache.RefCache
	if cfg.DRAMBytes > 0 {
		dram, err = cache.NewRef(*cfg.DRAM, cfg.DRAMBytes, blockSize, cfg.WriteBack, cfg.Scope)
		if err != nil {
			return nil, err
		}
	}
	var dc dramCache
	if dram != nil {
		dc = dram
	}
	sc := cfg.Scope
	tracing := sc.Tracing()
	smp := newSampler(cfg, sc, st, dc)

	res := &Result{
		TraceName:         t.Name,
		Device:            st.top.Name(),
		EnergyByComponent: make(map[string]float64),
		ReadHist:          stats.NewLatencyHistogram(),
		WriteHist:         stats.NewLatencyHistogram(),
	}

	layout := trace.NewRefLayout(blockSize)
	warmIdx := t.WarmSplit(cfg.WarmFraction)
	var warmSnapshot float64
	snapshotTaken := warmIdx == 0

	crashes := inj.PowerFailSchedule()
	ci := 0

	var lastCompletion units.Time
	for i, rec := range t.Records {
		for ci < len(crashes) && crashes[ci] <= rec.Time {
			crashAndRecover(st, dc, inj, cfg, crashes[ci])
			ci++
		}
		st.top.Idle(rec.Time)
		smp.Tick(int64(rec.Time))
		if !snapshotTaken && i >= warmIdx {
			if dram != nil {
				dram.AccrueStandby(rec.Time)
			}
			warmSnapshot = totalEnergy(st, dc)
			snapshotTaken = true
		}

		switch rec.Op {
		case trace.Delete:
			off, size, ok := layout.Extent(rec.File)
			if !ok {
				continue // deleting a file the trace never touched
			}
			if dram != nil {
				dram.Invalidate(off, size)
			}
			st.top.Access(device.Request{Time: rec.Time, Op: trace.Delete, File: rec.File, Addr: off, Size: size})
			layout.Delete(rec.File)

		case trace.Read:
			addr := layout.Place(rec.File, rec.Offset, hints[rec.File])
			var resp units.Time
			hit := false
			if dram != nil && dram.Contains(addr, rec.Size) {
				hit = true
				if tracing {
					sc.Emit(obs.Event{T: int64(rec.Time), Kind: obs.EvCacheHit, Size: int64(rec.Size)})
				}
				resp = dram.AccessTime(rec.Size)
			} else {
				if tracing && dram != nil {
					sc.Emit(obs.Event{T: int64(rec.Time), Kind: obs.EvCacheMiss, Size: int64(rec.Size)})
				}
				completion := st.top.Access(device.Request{
					Time: rec.Time, Op: trace.Read, File: rec.File, Addr: addr, Size: rec.Size,
				})
				if completion > lastCompletion {
					lastCompletion = completion
				}
				if dram != nil {
					writeEvictedRef(st, dram.Insert(addr, rec.Size, false), completion)
				}
				resp = completion - rec.Time
			}
			if i >= warmIdx {
				res.Read.AddTime(resp)
				res.ReadHist.Add(resp.Milliseconds())
				res.Overall.AddTime(resp)
				res.MeasuredOps++
			}
			if cfg.Observer != nil {
				cfg.Observer(OpObservation{Index: i, Arrival: rec.Time, Response: resp,
					Op: trace.Read, CacheHit: hit, Size: rec.Size})
			}

		case trace.Write:
			addr := layout.Place(rec.File, rec.Offset, hints[rec.File])
			var resp units.Time
			if cfg.WriteBack && dram != nil {
				// Write-back ablation: the write completes at DRAM speed;
				// dirty evictions trickle out asynchronously.
				resp = dram.AccessTime(rec.Size)
				writeEvictedRef(st, dram.Insert(addr, rec.Size, true), rec.Time+resp)
			} else {
				// Paper default: write-through. The block lands in the
				// cache and the device; response is the device write.
				completion := st.top.Access(device.Request{
					Time: rec.Time, Op: trace.Write, File: rec.File, Addr: addr, Size: rec.Size,
				})
				if completion > lastCompletion {
					lastCompletion = completion
				}
				if dram != nil {
					dram.AccessTime(rec.Size) // parallel cache update energy
					writeEvictedRef(st, dram.Insert(addr, rec.Size, false), completion)
				}
				resp = completion - rec.Time
			}
			if i >= warmIdx {
				res.Write.AddTime(resp)
				res.WriteHist.Add(resp.Milliseconds())
				res.Overall.AddTime(resp)
				res.MeasuredOps++
			}
			if cfg.Observer != nil {
				cfg.Observer(OpObservation{Index: i, Arrival: rec.Time, Response: resp,
					Op: trace.Write, Size: rec.Size})
			}
		}
	}

	end := units.Max(t.Duration(), lastCompletion)
	for ; ci < len(crashes) && crashes[ci] <= end; ci++ {
		crashAndRecover(st, dc, inj, cfg, crashes[ci])
	}
	if cfg.WriteBack && dram != nil {
		writeEvictedRef(st, dram.DirtyExtents(), end)
	}
	st.top.Finish(end)
	if dram != nil {
		dram.AccrueStandby(end)
	}

	smp.Finish(int64(end))
	res.Timeline = smp.Timeline()

	res.EndTime = end
	fillEnergy(res, st, dc, warmSnapshot)
	fillDeviceStats(res, st, dc)
	res.Faults = inj.Report()
	if st.arr != nil {
		if ar := st.arr.FaultReport(); ar != nil {
			if res.Faults == nil {
				res.Faults = ar
			} else {
				res.Faults.Merge(ar)
			}
		}
	}
	if reg := sc.Registry(); reg != nil {
		res.Metrics = reg.Counters()
	}
	return res, nil
}

// writeEvictedRef is writeEvicted with interface dispatch, kept separate so
// the reference loop exercises none of the devirtualized paths.
func writeEvictedRef(st *stack, extents []cache.Extent, at units.Time) {
	for _, e := range extents {
		st.top.Access(device.Request{
			Time: at, Op: trace.Write, File: ^uint32(0), Addr: e.Addr, Size: e.Size,
		})
	}
}

// refTraceFootprint is traceFootprint on the frozen layout and map hints.
func refTraceFootprint(t *trace.Trace, blockSize units.Bytes, hints map[uint32]units.Bytes) units.Bytes {
	l := trace.NewRefLayout(blockSize)
	for _, rec := range t.Records {
		switch rec.Op {
		case trace.Delete:
			l.Delete(rec.File)
		default:
			l.Place(rec.File, rec.Offset, hints[rec.File])
		}
	}
	return l.HighWater()
}
