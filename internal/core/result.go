package core

import (
	"fmt"
	"strings"

	"mobilestorage/internal/fault"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/stats"
	"mobilestorage/internal/units"
)

// Result reports one simulation run in the shape of the paper's tables:
// total energy in joules plus mean/max/σ response times in milliseconds,
// split by reads and writes, over the post-warm-start portion of the trace.
type Result struct {
	TraceName string
	Device    string

	// EnergyJ is total post-warm-start energy across all components.
	EnergyJ float64
	// EnergyByComponent breaks EnergyJ down ("storage", "dram", "sram").
	EnergyByComponent map[string]float64

	// Read, Write, and Overall are response-time summaries in ms.
	Read    stats.Summary
	Write   stats.Summary
	Overall stats.Summary

	// ReadHist and WriteHist are log-bucketed latency distributions (ms),
	// for percentile reporting beyond the paper's mean/max/σ.
	ReadHist  *stats.Histogram
	WriteHist *stats.Histogram

	// Cache effectiveness (zero when no DRAM cache is configured).
	CacheHits   int64
	CacheMisses int64

	// Disk-specific.
	SpinUps   int64
	SpinDowns int64

	// Flash-specific.
	Erases         int64   // total erase operations
	MaxEraseCount  int64   // most-erased unit (§5.2 endurance)
	MeanEraseCount float64 // mean erasures per unit
	CopiedBlocks   int64   // cleaner relocations (write amplification)
	HostBlocks     int64   // host blocks written
	WriteStalls    int64   // writes that waited for erased space
	// CleaningTime and HostTime split the flash card's busy time between
	// cleaning (copy+erase) and host transfers; their ratio is eNVy's
	// "fraction of time spent erasing or copying" metric (§6).
	CleaningTime units.Time
	HostTime     units.Time

	// SRAM write-buffer activity (zero without an SRAM buffer).
	SRAMFlushes       int64 // background drains performed
	SRAMStalledWrites int64 // writes that waited for a drain

	// Run shape.
	MeasuredOps int        // operations contributing to statistics
	EndTime     units.Time // completion time of the run

	// Faults summarizes injected faults and device responses: fault counts
	// by class, retries, backoff time, remaps, power failures, recovery
	// replays, and any invariant violations. Nil when fault injection is
	// disabled. Deterministic for a given trace, plan, and seed.
	Faults *fault.Report

	// Metrics is a snapshot of the observability counters at the end of the
	// run, keyed by metric name. Nil unless Config.Scope carried a registry.
	Metrics map[string]int64

	// Timeline is the simulated-time sampler output: registry snapshots
	// every Config.SampleEvery plus a final point at EndTime. Nil unless
	// sampling was enabled. Its last point matches Metrics exactly.
	Timeline *obs.Timeline
}

// ReadP returns an upper bound on the q-quantile of read response time in
// ms (e.g. ReadP(0.99)); 0 without samples.
func (r *Result) ReadP(q float64) float64 {
	if r.ReadHist == nil {
		return 0
	}
	return r.ReadHist.Quantile(q)
}

// WriteP returns an upper bound on the q-quantile of write response time.
func (r *Result) WriteP(q float64) float64 {
	if r.WriteHist == nil {
		return 0
	}
	return r.WriteHist.Quantile(q)
}

// CleaningFraction returns cleaning time over total flash busy time
// (eNVy's §6 metric), or 0 for non-flash-card runs.
func (r *Result) CleaningFraction() float64 {
	total := r.CleaningTime + r.HostTime
	if total == 0 {
		return 0
	}
	return float64(r.CleaningTime) / float64(total)
}

// HitRate returns the DRAM cache hit rate, or 0 without a cache.
func (r *Result) HitRate() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// WriteAmplification returns (host+copied)/host blocks, or 1 when no blocks
// were written.
func (r *Result) WriteAmplification() float64 {
	if r.HostBlocks == 0 {
		return 1
	}
	return float64(r.HostBlocks+r.CopiedBlocks) / float64(r.HostBlocks)
}

// String renders the result as one paper-style table row.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: energy %.0f J", r.Device, r.TraceName, r.EnergyJ)
	fmt.Fprintf(&b, ", read ms mean=%.2f max=%.1f σ=%.1f", r.Read.Mean(), r.Read.Max(), r.Read.StdDev())
	fmt.Fprintf(&b, ", write ms mean=%.2f max=%.1f σ=%.1f", r.Write.Mean(), r.Write.Max(), r.Write.StdDev())
	return b.String()
}
