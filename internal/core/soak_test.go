package core

import (
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// TestSoakLongSynth drives a long, dense synthetic trace (200k operations,
// cycling a 6 MB dataset dozens of times) through every architecture and
// checks the invariants that only show up under sustained churn: cleaning
// keeps up or stalls gracefully, wear accumulates consistently, energy
// stays physical, and nothing wedges or panics.
func TestSoakLongSynth(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	tr, err := workload.Synth(workload.SynthConfig{Seed: 42, Ops: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]Config{
		"disk": {Trace: tr, Kind: MagneticDisk, Disk: device.CU140Datasheet(),
			SpinDown: 5 * units.Second, SRAMBytes: 32 * units.KB, DRAMBytes: units.MB},
		"flashdisk-async": {Trace: tr, Kind: FlashDisk, FlashDiskParams: device.SDP5Datasheet(),
			AsyncErase: true, DRAMBytes: units.MB},
		"flashcard-80": {Trace: tr, Kind: FlashCard, FlashCardParams: device.IntelSeries2Datasheet(),
			FlashUtilization: 0.80, DRAMBytes: units.MB},
		"flashcard-wearlevel": {Trace: tr, Kind: FlashCard, FlashCardParams: device.IntelSeries2Datasheet(),
			FlashUtilization: 0.75, WearLeveling: 8, CleaningPolicy: "cost-benefit"},
		"hybrid": {Trace: tr, Kind: FlashCache, Disk: device.CU140Datasheet(),
			FlashCardParams: device.IntelSeries2Datasheet(), SpinDown: 2 * units.Second,
			FlashCacheBytes: 4 * units.MB, DRAMBytes: units.MB},
	}
	for name, cfg := range configs {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.MeasuredOps < 150_000 {
				t.Errorf("measured only %d ops", res.MeasuredOps)
			}
			if res.EnergyJ <= 0 {
				t.Error("no energy")
			}
			// At sustainable utilizations, response times stay bounded by
			// something sane (a minute) — cleaning must keep up.
			if res.Write.Max() > 60_000 {
				t.Errorf("write max %.0f ms — cleaner fell behind", res.Write.Max())
			}
			if res.Erases > 0 {
				if res.MeanEraseCount <= 0 || res.MaxEraseCount < int64(res.MeanEraseCount) {
					t.Errorf("wear accounting inconsistent: max %d mean %.1f", res.MaxEraseCount, res.MeanEraseCount)
				}
			}
			if res.WriteAmplification() < 1 {
				t.Errorf("amplification %.2f", res.WriteAmplification())
			}
		})
	}
}

// TestSoakSaturatedCard runs the same dense trace against a 95%-utilized
// card — an offered load the hardware genuinely cannot sustain (cleaning
// reclaims ~6 KB per 2 s cycle against a ~10 KB/s write demand). The
// simulator must degrade honestly: the queue grows, writes stall, and all
// accounting stays finite and consistent; it must not wedge or panic.
func TestSoakSaturatedCard(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	tr, err := workload.Synth(workload.SynthConfig{Seed: 42, Ops: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Trace: tr, Kind: FlashCard, FlashCardParams: device.IntelSeries2Datasheet(),
		FlashUtilization: 0.95, DRAMBytes: units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteStalls == 0 {
		t.Error("saturated card recorded no stalls")
	}
	if res.Write.Max() <= res.Write.Mean() {
		t.Error("degenerate response statistics")
	}
	if res.EnergyJ <= 0 || res.Erases == 0 {
		t.Error("accounting lost under saturation")
	}
}
