package core

import (
	"math"

	"mobilestorage/internal/energy"
	"mobilestorage/internal/obs"
)

// Sampler gauge names: cumulative energy since the start of the run (not
// warm-start adjusted — samples before the warm boundary are meaningful
// too), refreshed at every sampling boundary.
const (
	gaugeEnergyTotal   = "energy.total_j"
	gaugeEnergyStorage = "energy.storage_j"
	gaugeEnergyDRAM    = "energy.dram_j"
	gaugeEnergySRAM    = "energy.sram_j"
)

// newSampler builds the run's simulated-time sampler, or nil when sampling
// is disabled (SampleEvery == 0 or no registry). The prepare hook refreshes
// the derived energy gauges and, when tracing, emits sample.energy events,
// so energy-over-time curves can be rebuilt from the NDJSON stream alone.
//
// Energy is read straight from the component meters without forcing lazy
// accruals: nudging a device's clock from instrumentation could perturb
// float summation order and violate the scope-never-changes-results
// invariant. Lazily-accrued standby energy (DRAM) therefore appears at its
// next natural accrual point.
func newSampler(cfg Config, sc *obs.Scope, st *stack, dram dramCache) *obs.Sampler {
	reg := sc.Registry()
	if cfg.SampleEvery <= 0 || reg == nil {
		return nil
	}
	total := sc.Gauge(gaugeEnergyTotal)
	storage := sc.Gauge(gaugeEnergyStorage)
	dramG := sc.Gauge(gaugeEnergyDRAM)
	sramG := sc.Gauge(gaugeEnergySRAM)
	// Scratch meter reused across ticks: the hybrid stack has no single
	// component meter, and rebuilding its disk+flash aggregate used to
	// allocate a fresh Meter every sampling boundary.
	scratch := energy.NewMeter()
	return obs.NewSampler(reg, int64(cfg.SampleEvery), func(tUs int64) {
		var storageJ, sramJ, dramJ float64
		switch {
		case st.disk != nil:
			storageJ = st.disk.Meter().TotalJ()
		case st.fdisk != nil:
			storageJ = st.fdisk.Meter().TotalJ()
		case st.fcard != nil:
			storageJ = st.fcard.Meter().TotalJ()
		case st.hyb != nil:
			st.hyb.MeterInto(scratch)
			storageJ = scratch.TotalJ()
		}
		if st.buffer != nil {
			sramJ = st.buffer.Meter().TotalJ()
		}
		if dram != nil {
			dramJ = dram.Meter().TotalJ()
		}
		totalJ := storageJ + sramJ + dramJ
		storage.Set(storageJ)
		sramG.Set(sramJ)
		dramG.Set(dramJ)
		total.Set(totalJ)
		if sc.Tracing() {
			sc.Emit(obs.Event{T: tUs, Kind: obs.EvEnergySample, Dev: "storage", Size: microjoules(storageJ)})
			if st.buffer != nil {
				sc.Emit(obs.Event{T: tUs, Kind: obs.EvEnergySample, Dev: "sram", Size: microjoules(sramJ)})
			}
			if dram != nil {
				sc.Emit(obs.Event{T: tUs, Kind: obs.EvEnergySample, Dev: "dram", Size: microjoules(dramJ)})
			}
			sc.Emit(obs.Event{T: tUs, Kind: obs.EvEnergySample, Dev: "total", Size: microjoules(totalJ)})
		}
	})
}

// microjoules converts joules to the integer µJ payload carried by
// sample.energy events.
func microjoules(j float64) int64 {
	return int64(math.Round(j * 1e6))
}
