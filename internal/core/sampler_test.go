package core

import (
	"reflect"
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// sampledConfig is a flash-card run with the sampler enabled: flash cards
// exercise the densest counter set (erases, cleans, copies, stalls).
func sampledConfig(t *testing.T, sc *obs.Scope) Config {
	t.Helper()
	tr, err := workload.Synth(workload.SynthConfig{Seed: 7, Ops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Trace:           tr,
		DRAMBytes:       256 * units.KB,
		Kind:            FlashCard,
		FlashCardParams: device.IntelSeries2Datasheet(),
		Scope:           sc,
		SampleEvery:     10 * units.Second,
	}
}

// The sampler's last point must equal the run's final counter snapshot:
// the timeline is a refinement of Result.Metrics, never a divergent copy
// (same invariant style as PR 1's metrics-vs-Result tests).
func TestSamplerTimelineTotalsMatchResult(t *testing.T) {
	sc := obs.NewScope(obs.NewRegistry(), nil)
	res, err := Run(sampledConfig(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if tl == nil || len(tl.Points) == 0 {
		t.Fatal("no timeline")
	}
	last := tl.Points[len(tl.Points)-1]
	if last.TUs != int64(res.EndTime) {
		t.Errorf("last sample at %d µs, want end time %d", last.TUs, int64(res.EndTime))
	}
	if !reflect.DeepEqual(last.Counters, res.Metrics) {
		t.Errorf("final sample counters diverge from Result.Metrics:\n%v\nvs\n%v", last.Counters, res.Metrics)
	}
	// Counters are monotone along the timeline.
	for name := range last.Counters {
		series := tl.Counter(name)
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1] {
				t.Errorf("counter %s not monotone at point %d: %v", name, i, series)
				break
			}
		}
	}
}

// With warm-up disabled, Result.EnergyJ is cumulative energy since t=0, so
// the final energy.total_j gauge must equal it exactly, and the series must
// be non-decreasing and consistent with the per-component breakdown.
func TestSamplerEnergyMatchesResult(t *testing.T) {
	sc := obs.NewScope(obs.NewRegistry(), nil)
	cfg := sampledConfig(t, sc)
	cfg.WarmFraction = -1 // statistics from the first record; no warm snapshot
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Timeline.Gauge(gaugeEnergyTotal)
	if len(total) == 0 {
		t.Fatal("no energy series")
	}
	if got := total[len(total)-1]; got != res.EnergyJ {
		t.Errorf("final energy gauge %g J, want Result.EnergyJ %g J", got, res.EnergyJ)
	}
	for i := 1; i < len(total); i++ {
		if total[i] < total[i-1] {
			t.Fatalf("energy series decreases at point %d: %v", i, total)
		}
	}
	last := res.Timeline.Points[len(res.Timeline.Points)-1]
	sum := last.Gauges[gaugeEnergyStorage] + last.Gauges[gaugeEnergySRAM] + last.Gauges[gaugeEnergyDRAM]
	if sum != last.Gauges[gaugeEnergyTotal] {
		t.Errorf("component gauges sum to %g, total gauge %g", sum, last.Gauges[gaugeEnergyTotal])
	}
}

// Two identical runs must produce bit-identical timelines: the sampler is
// driven by simulated time only.
func TestSamplerDeterministic(t *testing.T) {
	run := func() *obs.Timeline {
		sc := obs.NewScope(obs.NewRegistry(), nil)
		res, err := Run(sampledConfig(t, sc))
		if err != nil {
			t.Fatal(err)
		}
		return res.Timeline
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("timelines differ between identical runs")
	}
}

// Attaching the sampler must not change simulation results (the scope
// invariant extends to sampling).
func TestSamplerDoesNotChangeResults(t *testing.T) {
	plain := sampledConfig(t, nil)
	plain.SampleEvery = 0
	base, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(sampledConfig(t, obs.NewScope(obs.NewRegistry(), obs.NewRing(1024))))
	if err != nil {
		t.Fatal(err)
	}
	if base.EnergyJ != sampled.EnergyJ {
		t.Errorf("energy changed: %g vs %g", base.EnergyJ, sampled.EnergyJ)
	}
	if base.Read != sampled.Read || base.Write != sampled.Write {
		t.Error("response statistics changed under sampling")
	}
	if base.Erases != sampled.Erases {
		t.Errorf("erases changed: %d vs %d", base.Erases, sampled.Erases)
	}
}

// Sampling with a tracer interleaves sample.energy events into the stream,
// cumulative and labelled with the sample time.
func TestSamplerEmitsEnergyEvents(t *testing.T) {
	col := obs.NewCollector(func(e obs.Event) bool { return e.Kind == obs.EvEnergySample })
	sc := obs.NewScope(obs.NewRegistry(), col)
	res, err := Run(sampledConfig(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if len(events) == 0 {
		t.Fatal("no sample.energy events")
	}
	var lastTotal int64 = -1
	var totals int
	for _, e := range events {
		if e.Dev != "total" {
			continue
		}
		totals++
		if e.Size < lastTotal {
			t.Fatalf("total energy regressed: %d µJ after %d µJ", e.Size, lastTotal)
		}
		lastTotal = e.Size
	}
	if totals != len(res.Timeline.Points) {
		t.Errorf("%d total-energy events, want one per timeline point (%d)", totals, len(res.Timeline.Points))
	}
	// Final event agrees with the final gauge to within µJ rounding.
	wantUJ := microjoules(res.Timeline.Points[len(res.Timeline.Points)-1].Gauges[gaugeEnergyTotal])
	if lastTotal != wantUJ {
		t.Errorf("final event %d µJ, want %d", lastTotal, wantUJ)
	}
}

// Sampling without a registry (tracer-only scope) is a configured no-op.
func TestSamplerNeedsRegistry(t *testing.T) {
	cfg := sampledConfig(t, obs.NewScope(nil, obs.NewRing(16)))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil {
		t.Error("timeline produced without a registry")
	}
}
