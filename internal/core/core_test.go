package core

import (
	"math"
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// smallTrace builds a deterministic hand-written trace: a working set of
// four 8 KB files with interleaved reads, writes, and one delete.
func smallTrace() *trace.Trace {
	t := &trace.Trace{Name: "small", BlockSize: units.KB}
	add := func(at units.Time, op trace.Op, file uint32, off, size units.Bytes) {
		t.Records = append(t.Records, trace.Record{Time: at, Op: op, File: file, Offset: off, Size: size})
	}
	var now units.Time
	for i := 0; i < 40; i++ {
		now += 100 * units.Millisecond
		f := uint32(i % 4)
		switch i % 5 {
		case 0, 1:
			add(now, trace.Write, f, units.Bytes(i%8)*units.KB, units.KB)
		case 2, 3:
			add(now, trace.Read, f, units.Bytes(i%8)*units.KB, units.KB)
		case 4:
			if i == 24 {
				add(now, trace.Delete, f, 0, 8*units.KB)
			} else {
				add(now, trace.Read, f, 0, 2*units.KB)
			}
		}
	}
	return t
}

func diskConfig(t *trace.Trace) Config {
	return Config{
		Trace:     t,
		DRAMBytes: 64 * units.KB,
		Kind:      MagneticDisk,
		Disk:      device.CU140Datasheet(),
		SpinDown:  5 * units.Second,
		SRAMBytes: 8 * units.KB,
	}
}

func TestRunDisk(t *testing.T) {
	res, err := Run(diskConfig(smallTrace()))
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= 0 {
		t.Error("no energy consumed")
	}
	if res.Read.N() == 0 || res.Write.N() == 0 {
		t.Error("no measured operations")
	}
	if res.MeasuredOps != int(res.Read.N()+res.Write.N()) {
		t.Errorf("MeasuredOps %d ≠ reads %d + writes %d", res.MeasuredOps, res.Read.N(), res.Write.N())
	}
	if res.EnergyByComponent["storage"] <= 0 || res.EnergyByComponent["dram"] <= 0 || res.EnergyByComponent["sram"] <= 0 {
		t.Errorf("component energies: %v", res.EnergyByComponent)
	}
	if res.EndTime < 4*units.Second {
		t.Errorf("end time %v before the last record", res.EndTime)
	}
}

func TestRunFlashDisk(t *testing.T) {
	cfg := Config{
		Trace:           smallTrace(),
		DRAMBytes:       64 * units.KB,
		Kind:            FlashDisk,
		FlashDiskParams: device.SDP5Datasheet(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flash disk writes are far slower than reads (coupled erasure).
	if res.Write.Mean() <= res.Read.Mean() {
		t.Errorf("flash disk write mean %.2f not above read mean %.2f", res.Write.Mean(), res.Read.Mean())
	}
}

func TestRunFlashCard(t *testing.T) {
	cfg := Config{
		Trace:           smallTrace(),
		DRAMBytes:       64 * units.KB,
		Kind:            FlashCard,
		FlashCardParams: device.IntelSeries2Datasheet(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostBlocks == 0 {
		t.Error("no host blocks written")
	}
	if res.WriteAmplification() < 1 {
		t.Errorf("write amplification %.2f < 1", res.WriteAmplification())
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, kind := range []StorageKind{MagneticDisk, FlashDisk, FlashCard} {
		mk := func() Config {
			cfg := diskConfig(smallTrace())
			cfg.Kind = kind
			cfg.FlashDiskParams = device.SDP5Datasheet()
			cfg.FlashCardParams = device.IntelSeries2Datasheet()
			return cfg
		}
		a, err := Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		if a.EnergyJ != b.EnergyJ || a.Read.Mean() != b.Read.Mean() || a.Write.Mean() != b.Write.Mean() {
			t.Errorf("%v: non-deterministic results: %v vs %v", kind, a, b)
		}
	}
}

func TestCacheHitsSpeedReads(t *testing.T) {
	// With a cache covering the whole working set, repeated reads hit DRAM;
	// without one every read pays the device.
	tr := smallTrace()
	with := diskConfig(tr)
	with.SpinDown = 0 // isolate the cache effect from spin-ups
	res, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	without := with
	without.DRAMBytes = 0
	resNo, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Error("no cache hits")
	}
	if resNo.CacheHits != 0 || resNo.CacheMisses != 0 {
		t.Error("cacheless run recorded cache traffic")
	}
	if res.Read.Mean() >= resNo.Read.Mean() {
		t.Errorf("cached read mean %.2f not below cacheless %.2f", res.Read.Mean(), resNo.Read.Mean())
	}
}

func TestWriteBackFasterWrites(t *testing.T) {
	tr := smallTrace()
	wt := Config{Trace: tr, DRAMBytes: 64 * units.KB, Kind: FlashCard, FlashCardParams: device.IntelSeries2Datasheet()}
	wb := wt
	wb.WriteBack = true
	rwt, err := Run(wt)
	if err != nil {
		t.Fatal(err)
	}
	rwb, err := Run(wb)
	if err != nil {
		t.Fatal(err)
	}
	if rwb.Write.Mean() >= rwt.Write.Mean() {
		t.Errorf("write-back write mean %.3f not below write-through %.3f", rwb.Write.Mean(), rwt.Write.Mean())
	}
}

func TestWarmFractionExcludesWarmup(t *testing.T) {
	tr := smallTrace()
	all := Config{Trace: tr, Kind: FlashDisk, FlashDiskParams: device.SDP5Datasheet(), WarmFraction: -1}
	part := all
	part.WarmFraction = 0.5
	ra, err := Run(all)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(part)
	if err != nil {
		t.Fatal(err)
	}
	if rp.MeasuredOps >= ra.MeasuredOps {
		t.Errorf("warm start measured %d ops, full run %d", rp.MeasuredOps, ra.MeasuredOps)
	}
	if rp.EnergyJ >= ra.EnergyJ {
		t.Errorf("post-warm energy %.1f not below full energy %.1f", rp.EnergyJ, ra.EnergyJ)
	}
}

func TestFlashUtilizationDerivesCapacity(t *testing.T) {
	tr := smallTrace() // footprint 32 KB
	cfg := Config{
		Trace:            tr,
		Kind:             FlashCard,
		FlashCardParams:  device.IntelSeries2Datasheet(),
		FlashUtilization: 0.5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Explicit capacity below the footprint + reserve must error.
	bad := cfg
	bad.FlashCapacity = 128 * units.KB // one segment
	if _, err := Run(bad); err == nil {
		t.Error("undersized explicit capacity accepted")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := diskConfig(smallTrace())
	cfg.FlashUtilization = 1.5
	if _, err := Run(cfg); err == nil {
		t.Error("utilization > 0.99 accepted")
	}
	cfg = diskConfig(smallTrace())
	cfg.Kind = StorageKind(7)
	if _, err := Run(cfg); err == nil {
		t.Error("unknown kind accepted")
	}
	cfg = diskConfig(smallTrace())
	cfg.CleaningPolicy = "bogus"
	cfg.Kind = FlashCard
	cfg.FlashCardParams = device.IntelSeries2Datasheet()
	if _, err := Run(cfg); err == nil {
		t.Error("unknown cleaning policy accepted")
	}
}

func TestFootprint(t *testing.T) {
	tr := smallTrace()
	// All files are placed before the delete, so the footprint is the sum
	// of the files' maximum extents (block-rounded).
	var want units.Bytes
	for _, sz := range tr.MaxFileSizes() {
		want += units.CeilDiv(sz, tr.BlockSize) * tr.BlockSize
	}
	if fp := Footprint(tr); fp != want {
		t.Errorf("footprint = %v, want %v", fp, want)
	}
}

func TestStorageKindString(t *testing.T) {
	if MagneticDisk.String() != "disk" || FlashDisk.String() != "flashdisk" || FlashCard.String() != "flashcard" {
		t.Error("kind names wrong")
	}
}

// TestEnergyConservation: on a real workload, total energy equals the sum
// of the component energies (full-run meters), and the post-warm figure
// never exceeds the full-run figure.
func TestEnergyConservation(t *testing.T) {
	tr, err := workload.Synth(workload.SynthConfig{Seed: 2, Ops: 3000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Trace:           tr,
		DRAMBytes:       256 * units.KB,
		Kind:            FlashCard,
		FlashCardParams: device.IntelSeries2Datasheet(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, j := range res.EnergyByComponent {
		sum += j
	}
	if res.EnergyJ > sum+1e-6 {
		t.Errorf("post-warm energy %.3f exceeds component sum %.3f", res.EnergyJ, sum)
	}
	if res.EnergyJ <= 0 {
		t.Error("no energy")
	}
	if math.IsNaN(res.EnergyJ) {
		t.Error("NaN energy")
	}
}
