package difftest

import (
	"testing"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// fuzzBlockSize keeps generated traces block-aligned-ish but not exactly:
// offsets land on half-block boundaries too, exercising the partial-block
// rounding in the layout and cache.
const fuzzBlockSize = 512 * units.B

// traceFromBytes decodes fuzz input into a small valid trace: each 6-byte
// group becomes one record (op, file, offset, size, inter-arrival gap,
// sequential run length). The decoder is total — any byte string yields a
// valid trace — so the fuzzer explores structure, not the validator.
func traceFromBytes(data []byte) *trace.Trace {
	const maxRecords = 96
	tr := &trace.Trace{Name: "fuzz", BlockSize: fuzzBlockSize}
	var now units.Time
	for i := 0; i+6 <= len(data) && len(tr.Records) < maxRecords; i += 6 {
		op := trace.Op(0)
		switch data[i] % 5 {
		case 0, 1:
			op = trace.Read
		case 2, 3:
			op = trace.Write
		case 4:
			op = trace.Delete
		}
		file := uint32(data[i+1] % 12)
		offset := units.Bytes(data[i+2]%32) * 256 * units.B
		size := units.Bytes(data[i+3]%32+1) * 256 * units.B
		if op == trace.Delete {
			offset, size = 0, 0
		}
		now += units.Time(data[i+4]) * 997 * units.Microsecond
		tr.Records = append(tr.Records, trace.Record{
			Time: now, Op: op, File: file, Offset: offset, Size: size,
		})
		// Byte 5 extends the record into a sequential run: follow-on
		// records continue the same op on the same file at consecutive
		// byte offsets, the exact pattern the replay loop coalesces into
		// extents. Deletes never run (the coalescer keeps them single).
		if op != trace.Delete {
			for run := int(data[i+5] % 8); run > 0 && len(tr.Records) < maxRecords; run-- {
				offset += size
				now += 13 * units.Microsecond
				tr.Records = append(tr.Records, trace.Record{
					Time: now, Op: op, File: file, Offset: offset, Size: size,
				})
			}
		}
	}
	return tr
}

// FuzzRunEquivalence generates mini-traces from fuzz input and replays each
// through the reference and fast loops on a flash card (the device with the
// most background machinery) and a spin-down disk, fault-free and with a
// transient-fault plan, requiring byte-identical artifacts every time. Run
// as a plain test it covers the seed corpus; `go test -fuzz` explores.
func FuzzRunEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	// A read/write/delete churn over a few files with varied gaps.
	f.Add([]byte{
		2, 1, 4, 8, 50, 0,
		0, 1, 4, 8, 2, 0,
		4, 1, 0, 0, 200, 0,
		2, 1, 0, 31, 5, 0,
		3, 2, 16, 16, 0, 0,
		1, 2, 16, 1, 255, 0,
	})
	// Dense same-file rewrites: maximal cleaning pressure.
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 64; i++ {
			b = append(b, 2, 3, byte(i%4), 15, 3, 0)
		}
		return b
	}())
	// Sequential bursts: byte 5 spawns follow-on records that the replay
	// loop coalesces into multi-record extents, alternating write and read
	// sweeps over a few files.
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 10; i++ {
			b = append(b, 2, byte(i%3), 0, 7, 40, 7)
			b = append(b, 0, byte(i%3), 0, 7, 90, 5)
		}
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := traceFromBytes(data)
		if len(tr.Records) == 0 {
			return
		}
		plans := []*fault.Plan{nil, {ReadErrorRate: 0.05, WriteErrorRate: 0.05, EraseErrorRate: 0.1}}
		for _, plan := range plans {
			card := core.Config{
				Trace:     tr,
				DRAMBytes: 64 * units.KB,
				Kind:      core.FlashCard,
				Faults:    plan,
				FaultSeed: 5,
			}
			card.FlashCardParams = device.IntelSeries2Measured()
			refRun, fastRun := runBoth(t, card)
			requireIdentical(t, refRun, fastRun)

			disk := core.Config{
				Trace:     tr,
				DRAMBytes: 64 * units.KB,
				Kind:      core.MagneticDisk,
				SpinDown:  2 * units.Second,
				SRAMBytes: 32 * units.KB,
				Faults:    plan,
				FaultSeed: 5,
			}
			disk.Disk = device.CU140Measured()
			refRun, fastRun = runBoth(t, disk)
			requireIdentical(t, refRun, fastRun)
		}
	})
}
