package difftest

import (
	"testing"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/units"
)

// propertyConfigs is a representative slice of the matrix for the physics
// properties below: every device kind, with and without a DRAM cache, one
// fault plan.
func propertyConfigs(tb testing.TB) []core.Config {
	var out []core.Config
	for _, mt := range matrixTraces() {
		tr := mt.build(tb)
		prep := core.PrepareTrace(tr)
		for _, md := range matrixDevices() {
			for _, dram := range []units.Bytes{0, 512 * units.KB} {
				cfg := core.Config{Trace: tr, Prep: prep, DRAMBytes: dram}
				md.apply(&cfg)
				out = append(out, cfg)
			}
		}
	}
	return out
}

// TestResponseProperties checks the causal invariants of every observed
// operation: responses are never negative (completion precedes arrival) and
// arrivals never go backwards (the replay preserves trace order).
func TestResponseProperties(t *testing.T) {
	for _, cfg := range propertyConfigs(t) {
		run := runInstrumented(t, cfg)
		if len(run.obs) == 0 {
			t.Fatalf("%s/%v: no observations", cfg.Trace.Name, cfg.Kind)
		}
		var lastArrival units.Time
		for i, o := range run.obs {
			if o.Response < 0 {
				t.Fatalf("%s/%v: op %d has negative response %v", cfg.Trace.Name, cfg.Kind, i, o.Response)
			}
			if o.Arrival < lastArrival {
				t.Fatalf("%s/%v: op %d arrival %v before previous %v", cfg.Trace.Name, cfg.Kind, i, o.Arrival, lastArrival)
			}
			lastArrival = o.Arrival
		}
		if run.res.EndTime < cfg.Trace.Duration() {
			t.Errorf("%s/%v: end time %v before trace duration %v", cfg.Trace.Name, cfg.Kind, run.res.EndTime, cfg.Trace.Duration())
		}
	}
}

// TestEnergyProperties checks energy accounting: every component total is
// non-negative, and the post-warm-start figure never exceeds the sum of the
// component totals (the warm-up snapshot it subtracts cannot be negative).
func TestEnergyProperties(t *testing.T) {
	for _, cfg := range propertyConfigs(t) {
		run := runInstrumented(t, cfg)
		res := run.res
		if res.EnergyJ < 0 {
			t.Fatalf("%s/%v: negative post-warm energy %g", cfg.Trace.Name, cfg.Kind, res.EnergyJ)
		}
		var sum float64
		for comp, j := range res.EnergyByComponent {
			if j < 0 {
				t.Fatalf("%s/%v: component %s has negative energy %g", cfg.Trace.Name, cfg.Kind, comp, j)
			}
			sum += j
		}
		if res.EnergyJ > sum {
			t.Errorf("%s/%v: post-warm energy %g exceeds component sum %g", cfg.Trace.Name, cfg.Kind, res.EnergyJ, sum)
		}
	}
}

// TestWarmSnapshotConservation pins the warm-up bookkeeping: disabling the
// warm-up split must report at least as much energy as the default run
// (the difference is exactly the warm-up snapshot), over an identical
// simulated span.
func TestWarmSnapshotConservation(t *testing.T) {
	for _, cfg := range propertyConfigs(t) {
		warm := runInstrumented(t, cfg)
		full := cfg
		full.WarmFraction = -1
		cold := runInstrumented(t, full)
		if cold.res.EndTime != warm.res.EndTime {
			t.Fatalf("%s/%v: warm split changed the end time: %v vs %v",
				cfg.Trace.Name, cfg.Kind, warm.res.EndTime, cold.res.EndTime)
		}
		if cold.res.EnergyJ < warm.res.EnergyJ {
			t.Errorf("%s/%v: full-trace energy %g below post-warm energy %g",
				cfg.Trace.Name, cfg.Kind, cold.res.EnergyJ, warm.res.EnergyJ)
		}
		if cold.res.MeasuredOps < warm.res.MeasuredOps {
			t.Errorf("%s/%v: full-trace measured ops %d below post-warm %d",
				cfg.Trace.Name, cfg.Kind, cold.res.MeasuredOps, warm.res.MeasuredOps)
		}
	}
}

// TestWearProperties checks flash endurance accounting, fault-free and
// under wear-out injection: erase counts are consistent (max ≤ total,
// mean ≤ max), cleaning never reports negative work, and the fault
// injector's invariant ledger stays clean.
func TestWearProperties(t *testing.T) {
	tr := matrixTraces()[0].build(t)
	plans := []*fault.Plan{nil, {WearOutAfter: 25, SpareSegments: 2}}
	for _, plan := range plans {
		cfg := core.Config{
			Trace:     tr,
			DRAMBytes: 512 * units.KB,
			Kind:      core.FlashCard,
			Faults:    plan,
			FaultSeed: 17,
		}
		cfg.FlashCardParams = device.IntelSeries2Measured()
		run := runInstrumented(t, cfg)
		res := run.res
		if res.Erases <= 0 {
			t.Fatal("flashcard run performed no erases; workload too light to test wear")
		}
		if res.MaxEraseCount > res.Erases {
			t.Errorf("max erase count %d exceeds total erases %d", res.MaxEraseCount, res.Erases)
		}
		if res.MeanEraseCount < 0 || float64(res.MaxEraseCount) < res.MeanEraseCount {
			t.Errorf("erase count stats inconsistent: mean %g, max %d", res.MeanEraseCount, res.MaxEraseCount)
		}
		if res.CopiedBlocks < 0 || res.HostBlocks <= 0 {
			t.Errorf("block accounting inconsistent: copied %d, host %d", res.CopiedBlocks, res.HostBlocks)
		}
		if res.CleaningTime < 0 || res.HostTime < 0 {
			t.Errorf("negative busy time: cleaning %v, host %v", res.CleaningTime, res.HostTime)
		}
		if res.Faults != nil && len(res.Faults.Violations) > 0 {
			t.Errorf("fault invariants violated: %v", res.Faults.Violations)
		}
	}
}
