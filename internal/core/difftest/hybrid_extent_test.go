package difftest

import (
	"testing"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// extentTrace hand-builds a workload dominated by long sequential chains:
// six files written front to back in 1 KB records 100 ms apart, each chain
// long enough (48 records) to exceed nothing but stay one trim away from
// the maxExtentLen cap, then read back the same way. Chains are separated
// by 3 s idle gaps so a 2 s spin-down timer fires between them. The shape
// guarantees the replay loop's extent batching is active for nearly every
// record, so any boundary that must split a run (power failure, sampler
// tick, warm snapshot) lands strictly inside a precomputed extent.
func extentTrace() *trace.Trace {
	const (
		files    = 6
		perChain = 48
		recSize  = units.KB
	)
	gap := 100 * units.Millisecond
	pause := 3 * units.Second
	var recs []trace.Record
	now := units.Time(0)
	chain := func(op trace.Op, file uint32) {
		for i := 0; i < perChain; i++ {
			recs = append(recs, trace.Record{
				Time:   now,
				Op:     op,
				File:   file,
				Offset: units.Bytes(i) * recSize,
				Size:   recSize,
			})
			now += gap
		}
		now += pause
	}
	for f := uint32(0); f < files; f++ {
		chain(trace.Write, f)
	}
	for f := uint32(0); f < files; f++ {
		chain(trace.Read, f)
	}
	// Rewrite half the files so the flash cache sees dirty blocks it has
	// already admitted, forcing invalidation and cleaning pressure on the
	// card mid-extent.
	for f := uint32(0); f < files/2; f++ {
		chain(trace.Write, f)
	}
	return &trace.Trace{Name: "extents", BlockSize: units.KB, Records: recs}
}

// hybridExtentConfig is the FlashCache base every subtest mutates: the
// cache is deliberately smaller than the 288 KB working set so misses,
// evictions, and disk write-backs happen inside extents, and the disk's
// spin-down timer is shorter than the inter-chain gaps so spin state
// changes between runs.
func hybridExtentConfig(tr *trace.Trace) core.Config {
	return core.Config{
		Trace:           tr,
		Kind:            core.FlashCache,
		Disk:            device.CU140Measured(),
		SpinDown:        2 * units.Second,
		FlashCardParams: device.IntelSeries2Measured(),
		FlashCacheBytes: 192 * units.KB,
	}
}

// TestHybridExtentTrimEquivalence pins the extent-trim logic on the hybrid
// flash-cache device. The fast replay loop batches contiguous records into
// ReadExtent/WriteExtent calls and trims each precomputed run so that no
// power failure, sampling boundary, or warm-start snapshot falls inside
// it; the reference loop replays record by record and knows nothing about
// extents. Each subtest forces one (then all) of those boundaries to land
// mid-extent and requires the two paths to stay byte-identical.
func TestHybridExtentTrimEquivalence(t *testing.T) {
	tr := extentTrace()

	t.Run("warm-mid-run", func(t *testing.T) {
		cfg := hybridExtentConfig(tr)
		// 0.45 of 720 records is index 324, which is 36 records into a
		// read chain — the warm snapshot must split that extent.
		cfg.WarmFraction = 0.45
		if idx := tr.WarmSplit(cfg.WarmFraction); idx%48 == 0 {
			t.Fatalf("warm index %d sits on a chain boundary; the test needs it mid-extent", idx)
		}
		ref, fast := runBoth(t, cfg)
		requireIdentical(t, ref, fast)
	})

	t.Run("powerfail-mid-run", func(t *testing.T) {
		cfg := hybridExtentConfig(tr)
		// Chains start every 7.8 s; +1.25 s is 12½ records into a chain,
		// strictly between arrivals, so every crash splits an extent.
		cfg.Faults = &fault.Plan{PowerFailAtUs: []int64{1_250_000, 9_050_000, 32_450_000}}
		cfg.FaultSeed = 11
		ref, fast := runBoth(t, cfg)
		requireIdentical(t, ref, fast)
	})

	t.Run("sampler-mid-run", func(t *testing.T) {
		cfg := hybridExtentConfig(tr)
		// 730 ms is not a multiple of the 100 ms record spacing, so
		// sampler deadlines fall strictly between arrivals, inside runs.
		cfg.SampleEvery = 730 * units.Millisecond
		ref, fast := runBoth(t, cfg)
		requireIdentical(t, ref, fast)
	})

	t.Run("all-boundaries", func(t *testing.T) {
		cfg := hybridExtentConfig(tr)
		cfg.WarmFraction = 0.45
		cfg.SampleEvery = 730 * units.Millisecond
		cfg.Faults = &fault.Plan{PowerFailAtUs: []int64{1_250_000, 9_050_000, 32_450_000}}
		cfg.FaultSeed = 11
		// A write-back DRAM cache in front of the hybrid adds flush
		// traffic whose extents must trim identically too.
		cfg.DRAMBytes = 128 * units.KB
		cfg.WriteBack = true
		ref, fast := runBoth(t, cfg)
		requireIdentical(t, ref, fast)
	})
}
