package difftest

import (
	"testing"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/units"
)

// matrixDevices covers every storage architecture the simulator models,
// with the paper's measured parameter sets and the stack variants (SRAM
// write buffer on disk, async erase on the flash disk) that exercise the
// devirtualized dispatch paths.
func matrixDevices() []matrixDevice {
	return []matrixDevice{
		{"disk-sram", func(c *core.Config) {
			c.Kind = core.MagneticDisk
			c.Disk = device.CU140Measured()
			c.SpinDown = 5 * units.Second
			c.SRAMBytes = 32 * units.KB
		}},
		{"flashdisk-async", func(c *core.Config) {
			c.Kind = core.FlashDisk
			c.FlashDiskParams = device.SDP5Datasheet()
			c.AsyncErase = true
		}},
		{"flashcard", func(c *core.Config) {
			c.Kind = core.FlashCard
			c.FlashCardParams = device.IntelSeries2Measured()
		}},
		{"flashcard-ondemand", func(c *core.Config) {
			// On-demand cleaning defers all cleaning work to the write
			// path, so extent-batched writes hit the cleaner-threshold
			// check with maximal pressure mid-extent.
			c.Kind = core.FlashCard
			c.FlashCardParams = device.IntelSeries2Measured()
			c.OnDemandCleaning = true
		}},
		{"flashcache", func(c *core.Config) {
			c.Kind = core.FlashCache
			c.Disk = device.CU140Measured()
			c.SpinDown = 5 * units.Second
			c.FlashCardParams = device.IntelSeries2Measured()
			c.FlashCacheBytes = 2 * units.MB
		}},
	}
}

// matrixFault is the fault-plan axis: fault-free, transient errors with
// retry, wear-out with spare provisioning, and scheduled power failures.
type matrixFault struct {
	name string
	plan *fault.Plan
}

func matrixFaults() []matrixFault {
	return []matrixFault{
		{"nofault", nil},
		{"transient", &fault.Plan{ReadErrorRate: 0.02, WriteErrorRate: 0.02, EraseErrorRate: 0.05}},
		{"wearout", &fault.Plan{WearOutAfter: 25, SpareSegments: 2}},
		{"powerfail", &fault.Plan{PowerFailAtUs: []int64{5_000_000, 20_000_000}}},
	}
}

// TestRunEquivalence is the tentpole contract: the full matrix of traces ×
// devices × cache configurations × fault plans replayed through the frozen
// reference loop and the optimized loop, requiring byte-identical results,
// event streams, and observer logs. Sampler timelines are diffed on the
// flashcard leg of the matrix (the device with the richest background
// activity) by enabling simulated-time sampling there.
func TestRunEquivalence(t *testing.T) {
	for _, mt := range matrixTraces() {
		tr := mt.build(t)
		prep := core.PrepareTrace(tr)
		for _, md := range matrixDevices() {
			for _, mc := range matrixCaches() {
				for _, mf := range matrixFaults() {
					name := mt.name + "/" + md.name + "/" + mc.name + "/" + mf.name
					t.Run(name, func(t *testing.T) {
						cfg := core.Config{
							Trace:     tr,
							Prep:      prep,
							DRAMBytes: mc.dramBytes,
							WriteBack: mc.writeBack,
							Faults:    mf.plan,
							FaultSeed: 11,
						}
						md.apply(&cfg)
						if cfg.Kind == core.FlashCard {
							cfg.SampleEvery = 30 * units.Second
						}
						ref, fast := runBoth(t, cfg)
						requireIdentical(t, ref, fast)
					})
				}
			}
		}
	}
}

// TestPrepEquivalence pins the prepared-statement path: supplying a shared
// TracePrep must leave every run byte-identical to recomputing the
// preprocessing from scratch, on both replay loops.
func TestPrepEquivalence(t *testing.T) {
	for _, mt := range matrixTraces() {
		tr := mt.build(t)
		prep := core.PrepareTrace(tr)
		for _, md := range matrixDevices() {
			name := mt.name + "/" + md.name
			t.Run(name, func(t *testing.T) {
				cfg := core.Config{Trace: tr, DRAMBytes: 512 * units.KB}
				md.apply(&cfg)
				without := runInstrumented(t, cfg)
				cfg.Prep = prep
				with := runInstrumented(t, cfg)
				requireIdentical(t, without, with)
			})
		}
	}
}

// TestEquivalenceWithWrongPrep checks the guard against a stale prep: a
// TracePrep built from a different trace must be ignored, not applied.
func TestEquivalenceWithWrongPrep(t *testing.T) {
	traces := matrixTraces()
	trA := traces[0].build(t)
	trB := traces[1].build(t)
	cfg := core.Config{
		Trace:     trA,
		DRAMBytes: 512 * units.KB,
		Kind:      core.FlashCard,
	}
	cfg.FlashCardParams = device.IntelSeries2Measured()
	clean := runInstrumented(t, cfg)
	cfg.Prep = core.PrepareTrace(trB) // prep for the wrong trace
	stale := runInstrumented(t, cfg)
	requireIdentical(t, clean, stale)
}
