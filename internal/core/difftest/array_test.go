package difftest

import (
	"testing"

	"mobilestorage/internal/array"
	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// arraySpec parses a topology string or fails the test.
func arraySpec(tb testing.TB, s string) *array.Spec {
	tb.Helper()
	spec, err := array.ParseSpec(s)
	if err != nil {
		tb.Fatal(err)
	}
	return spec
}

// TestArrayEquivalence extends the differential contract to composite
// devices: mirrored and striped arrays, healthy and under per-member fault
// domains (a scheduled member death plus latent faults and backlog
// carryover across a system power failure), must replay byte-identically
// through the reference and fast loops.
func TestArrayEquivalence(t *testing.T) {
	tr := matrixTraces()[0].build(t)
	prep := core.PrepareTrace(tr)
	degraded := fault.PlanSet{
		"m0": {DieAtUs: int64(tr.Duration()) / 2, MaxRetries: 2, BackoffUs: 200, MaxBackoffUs: 5_000},
		"*":  {LatentErrorRate: 0.002, CarryCleaningBacklog: true},
	}
	sysFail := &fault.Plan{PowerFailAtUs: []int64{int64(tr.Duration()) / 3}}
	cases := []struct {
		name    string
		topo    string
		members fault.PlanSet
		sys     *fault.Plan
	}{
		{"mirror-healthy", "mirror:2xflashcard", nil, nil},
		{"mirror-degraded", "mirror:2xflashcard", degraded, sysFail},
		{"stripe-healthy", "stripe:2xflashcard", nil, nil},
		{"stripe-degraded", "stripe:2xflashcard", degraded, sysFail},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.Config{
				Trace:            tr,
				Prep:             prep,
				DRAMBytes:        512 * units.KB,
				Array:            arraySpec(t, tc.topo),
				FlashCardParams:  device.IntelSeries2Measured(),
				FlashUtilization: 0.80,
				MemberFaults:     tc.members,
				Faults:           tc.sys,
				FaultSeed:        11,
			}
			ref, fast := runBoth(t, cfg)
			requireIdentical(t, ref, fast)
		})
	}
}

// TestArrayMirrorMatchesSingle pins the mirror's read semantics: a healthy
// two-way mirror serves every read with exactly the response time of a
// single flash card, because reads go to the primary member and that member
// sees the identical request sequence the single-device stack would. Writes
// are only bounded below — the array completes at the slowest member, and
// the secondary's cleaning schedule differs since it never serves reads.
// Any read divergence means the mirror's geometry or primary-member state
// drifted from the single-device stack it replicates.
func TestArrayMirrorMatchesSingle(t *testing.T) {
	tr := matrixTraces()[0].build(t)
	prep := core.PrepareTrace(tr)
	base := core.Config{
		Trace:            tr,
		Prep:             prep,
		DRAMBytes:        512 * units.KB,
		FlashCardParams:  device.IntelSeries2Measured(),
		FlashUtilization: 0.80,
	}
	single := base
	single.Kind = core.FlashCard
	mirror := base
	mirror.Array = arraySpec(t, "mirror:2xflashcard")

	sRun := runInstrumented(t, single)
	mRun := runInstrumented(t, mirror)
	if len(sRun.obs) != len(mRun.obs) {
		t.Fatalf("op counts differ: single %d, mirror %d", len(sRun.obs), len(mRun.obs))
	}
	for i := range sRun.obs {
		s, m := sRun.obs[i], mRun.obs[i]
		if s.Op == trace.Read && s != m {
			t.Fatalf("read op %d diverged:\nsingle %+v\nmirror %+v", i, s, m)
		}
		if s.CacheHit != m.CacheHit {
			t.Fatalf("op %d cache behavior diverged:\nsingle %+v\nmirror %+v", i, s, m)
		}
	}
	if sRun.res.Read.Mean() != mRun.res.Read.Mean() {
		t.Errorf("read summaries diverged: single %.4f ms, mirror %.4f ms",
			sRun.res.Read.Mean(), mRun.res.Read.Mean())
	}
	if mRun.res.Write.Mean() < sRun.res.Write.Mean() {
		t.Errorf("mirror writes faster than the single card: %.4f ms vs %.4f ms",
			mRun.res.Write.Mean(), sRun.res.Write.Mean())
	}
	// The mirror holds two full copies, so it pays roughly double the
	// erases of the single card — replication is not free, just invisible
	// to read latency while healthy.
	if mRun.res.Erases < 2*sRun.res.Erases*95/100 {
		t.Errorf("mirror erases %d, want about double the single card's %d", mRun.res.Erases, sRun.res.Erases)
	}
}
