// Package difftest is the differential equivalence harness for the core
// simulator's hot-path overhaul. Every configuration in its matrix is
// replayed twice — once through the optimized replay loop (core.Run's
// default path) and once through the frozen reference loop
// (Config.Reference, wired to the original map-backed layout, buffer
// cache, and interface-dispatched device calls) — and the two runs must
// agree byte-for-byte: identical Results, identical NDJSON event streams,
// identical observer logs, identical sampler timelines.
//
// The harness is what makes the fast path trustworthy: any optimization
// that changes float evaluation order, block rounding, LRU recency, or
// event ordering fails here immediately, against an implementation simple
// enough to audit by eye.
package difftest

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"mobilestorage/internal/core"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// observedRun is everything one instrumented replay produces.
type observedRun struct {
	res    *core.Result
	events []byte
	obs    []core.OpObservation
}

// tryInstrumented executes cfg with a metrics registry, an NDJSON tracer,
// and an op observer attached, so every externally visible artifact of the
// run is captured for comparison. Configuration errors are returned, not
// fatal: a degenerate config (e.g. a delete-only trace too small for any
// flash device) must be rejected identically by both replay paths.
func tryInstrumented(tb testing.TB, cfg core.Config) (observedRun, error) {
	tb.Helper()
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	sink := obs.NewNDJSONSink(&buf)
	cfg.Scope = obs.NewScope(reg, sink)
	var observations []core.OpObservation
	cfg.Observer = func(o core.OpObservation) { observations = append(observations, o) }
	res, err := core.Run(cfg)
	if err != nil {
		return observedRun{}, err
	}
	if err := sink.Flush(); err != nil {
		tb.Fatal(err)
	}
	return observedRun{res: res, events: buf.Bytes(), obs: observations}, nil
}

// runInstrumented is tryInstrumented for configs that must succeed.
func runInstrumented(tb testing.TB, cfg core.Config) observedRun {
	tb.Helper()
	run, err := tryInstrumented(tb, cfg)
	if err != nil {
		tb.Fatalf("run (reference=%v): %v", cfg.Reference, err)
	}
	return run
}

// runBoth replays cfg through the reference and fast paths. Both must
// succeed, or both must fail with the same error (in which case the
// returned runs are empty and identical).
func runBoth(tb testing.TB, cfg core.Config) (ref, fast observedRun) {
	tb.Helper()
	refCfg := cfg
	refCfg.Reference = true
	ref, refErr := tryInstrumented(tb, refCfg)
	fastCfg := cfg
	fastCfg.Reference = false
	fast, fastErr := tryInstrumented(tb, fastCfg)
	switch {
	case refErr == nil && fastErr == nil:
	case refErr != nil && fastErr != nil:
		if refErr.Error() != fastErr.Error() {
			tb.Errorf("paths fail differently:\nreference: %v\nfast:      %v", refErr, fastErr)
		}
	default:
		tb.Errorf("only one path failed:\nreference err: %v\nfast err:      %v", refErr, fastErr)
	}
	return ref, fast
}

// requireIdentical fails unless the two runs are byte-identical in every
// captured artifact. Results are compared with reflect.DeepEqual, which
// covers every field — summaries, histograms, energy maps, fault reports,
// metrics, and sampler timelines — bit-for-bit on floats.
func requireIdentical(tb testing.TB, ref, fast observedRun) {
	tb.Helper()
	if !reflect.DeepEqual(ref.res, fast.res) {
		refJSON, _ := json.MarshalIndent(ref.res, "", "  ")
		fastJSON, _ := json.MarshalIndent(fast.res, "", "  ")
		tb.Errorf("results differ between reference and fast paths:\n--- reference\n%s\n--- fast\n%s", refJSON, fastJSON)
	}
	if !bytes.Equal(ref.events, fast.events) {
		tb.Errorf("NDJSON event streams differ: reference %d bytes, fast %d bytes", len(ref.events), len(fast.events))
	}
	if !reflect.DeepEqual(ref.obs, fast.obs) {
		tb.Errorf("observer streams differ: reference %d observations, fast %d", len(ref.obs), len(fast.obs))
	}
}

// matrixTrace is one workload axis entry.
type matrixTrace struct {
	name  string
	build func(tb testing.TB) *trace.Trace
}

// matrixTraces returns the workload axis: two synthetic profiles (the
// paper's stress mix at two seeds/dataset sizes, so cleaning pressure
// differs) and the generated dos trace, the smallest real preset, which is
// the only one with a meaningful delete stream.
func matrixTraces() []matrixTrace {
	synth := func(seed int64, ops, dataMB int) func(tb testing.TB) *trace.Trace {
		return func(tb testing.TB) *trace.Trace {
			tb.Helper()
			tr, err := workload.Synth(workload.SynthConfig{Seed: seed, Ops: ops, DataMB: dataMB})
			if err != nil {
				tb.Fatal(err)
			}
			return tr
		}
	}
	return []matrixTrace{
		{"synth7", synth(7, 2500, 0)},
		{"synth99-small", synth(99, 2500, 3)},
		{"dos", func(tb testing.TB) *trace.Trace {
			tb.Helper()
			tr, err := workload.GenerateByName("dos", 3)
			if err != nil {
				tb.Fatal(err)
			}
			return tr
		}},
	}
}

// matrixDevice configures the storage-architecture axis on top of a base
// config that already carries the trace and cache settings.
type matrixDevice struct {
	name  string
	apply func(c *core.Config)
}

// matrixCache is the DRAM buffer-cache axis.
type matrixCache struct {
	name      string
	dramBytes units.Bytes
	writeBack bool
}

func matrixCaches() []matrixCache {
	return []matrixCache{
		{"nocache", 0, false},
		{"dram512k", 512 * units.KB, false},
		{"writeback512k", 512 * units.KB, true},
	}
}
