package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenPreset is one paper storage configuration pinned by a golden file.
type goldenPreset struct {
	name string
	cfg  func() Config
}

// goldenTrace is the deterministic workload every golden preset replays: the
// paper's synthetic stress workload, short enough to keep the suite fast but
// long enough to exercise cleaning, spin-downs, and cache churn.
func goldenTrace(t *testing.T) *Config {
	t.Helper()
	tr, err := workload.Synth(workload.SynthConfig{Seed: 7, Ops: 4000})
	if err != nil {
		t.Fatal(err)
	}
	return &Config{Trace: tr, DRAMBytes: 512 * units.KB}
}

// goldenPresets mirrors the paper's Table 4 device set plus the hybrid
// architecture: every storage kind and parameter source the paper simulates.
func goldenPresets(t *testing.T) []goldenPreset {
	base := func() Config { return *goldenTrace(t) }
	return []goldenPreset{
		{"disk-cu140-measured", func() Config {
			c := base()
			c.Kind = MagneticDisk
			c.Disk = device.CU140Measured()
			c.SpinDown = 5 * units.Second
			c.SRAMBytes = 32 * units.KB
			return c
		}},
		{"disk-kh-datasheet", func() Config {
			c := base()
			c.Kind = MagneticDisk
			c.Disk = device.KittyhawkDatasheet()
			c.SpinDown = 5 * units.Second
			c.SRAMBytes = 32 * units.KB
			return c
		}},
		{"flashdisk-sdp10-measured", func() Config {
			c := base()
			c.Kind = FlashDisk
			c.FlashDiskParams = device.SDP10Measured()
			return c
		}},
		{"flashdisk-sdp5-async", func() Config {
			c := base()
			c.Kind = FlashDisk
			c.FlashDiskParams = device.SDP5Datasheet()
			c.AsyncErase = true
			return c
		}},
		{"flashcard-intel-measured", func() Config {
			c := base()
			c.Kind = FlashCard
			c.FlashCardParams = device.IntelSeries2Measured()
			return c
		}},
		{"flashcard-intel2plus-datasheet", func() Config {
			c := base()
			c.Kind = FlashCard
			c.FlashCardParams = device.IntelSeries2PlusDatasheet()
			return c
		}},
		{"flashcache-hybrid", func() Config {
			c := base()
			c.Kind = FlashCache
			c.Disk = device.CU140Measured()
			c.SpinDown = 5 * units.Second
			c.FlashCardParams = device.IntelSeries2Measured()
			c.FlashCacheBytes = 4 * units.MB
			return c
		}},
	}
}

// goldenSnapshot is the deterministic subset of a run pinned in the golden
// file: headline results, every device counter, the metrics registry, and a
// digest of the byte-exact event stream.
type goldenSnapshot struct {
	Device            string             `json:"device"`
	EnergyJ           float64            `json:"energy_j"`
	EnergyByComponent map[string]float64 `json:"energy_by_component"`
	ReadMeanMs        float64            `json:"read_mean_ms"`
	ReadMaxMs         float64            `json:"read_max_ms"`
	WriteMeanMs       float64            `json:"write_mean_ms"`
	WriteMaxMs        float64            `json:"write_max_ms"`
	MeasuredOps       int                `json:"measured_ops"`
	EndTimeUs         int64              `json:"end_time_us"`
	SpinUps           int64              `json:"spin_ups"`
	SpinDowns         int64              `json:"spin_downs"`
	Erases            int64              `json:"erases"`
	CopiedBlocks      int64              `json:"copied_blocks"`
	HostBlocks        int64              `json:"host_blocks"`
	WriteStalls       int64              `json:"write_stalls"`
	SRAMFlushes       int64              `json:"sram_flushes"`
	SRAMStalledWrites int64              `json:"sram_stalled_writes"`
	CacheHits         int64              `json:"cache_hits"`
	CacheMisses       int64              `json:"cache_misses"`
	Metrics           map[string]int64   `json:"metrics"`
	EventCount        int64              `json:"event_count"`
	EventsSHA256      string             `json:"events_sha256"`
}

// countingSink tees events into an NDJSON byte stream while counting them.
type countingSink struct {
	sink *obs.NDJSONSink
	n    int64
}

func (c *countingSink) Emit(e obs.Event) {
	c.n++
	c.sink.Emit(e)
}

// runObserved executes the config with a full observability scope attached
// and returns the result, the metrics snapshot, and the raw event stream.
func runObserved(t *testing.T, cfg Config) (*Result, *obs.Registry, []byte, int64) {
	t.Helper()
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	cs := &countingSink{sink: obs.NewNDJSONSink(&buf)}
	cfg.Scope = obs.NewScope(reg, cs)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, reg, buf.Bytes(), cs.n
}

func snapshot(res *Result, reg *obs.Registry, events []byte, n int64) goldenSnapshot {
	sum := sha256.Sum256(events)
	return goldenSnapshot{
		Device:            res.Device,
		EnergyJ:           res.EnergyJ,
		EnergyByComponent: res.EnergyByComponent,
		ReadMeanMs:        res.Read.Mean(),
		ReadMaxMs:         res.Read.Max(),
		WriteMeanMs:       res.Write.Mean(),
		WriteMaxMs:        res.Write.Max(),
		MeasuredOps:       res.MeasuredOps,
		EndTimeUs:         int64(res.EndTime),
		SpinUps:           res.SpinUps,
		SpinDowns:         res.SpinDowns,
		Erases:            res.Erases,
		CopiedBlocks:      res.CopiedBlocks,
		HostBlocks:        res.HostBlocks,
		WriteStalls:       res.WriteStalls,
		SRAMFlushes:       res.SRAMFlushes,
		SRAMStalledWrites: res.SRAMStalledWrites,
		CacheHits:         res.CacheHits,
		CacheMisses:       res.CacheMisses,
		Metrics:           reg.Counters(),
		EventCount:        n,
		EventsSHA256:      hex.EncodeToString(sum[:]),
	}
}

// TestGolden pins every paper preset to a golden file: the headline results,
// all device counters, the metrics registry, and the SHA-256 of the NDJSON
// event stream. Regenerate intentionally with `go test ./internal/core
// -run TestGolden -update` and review the diff.
func TestGolden(t *testing.T) {
	for _, p := range goldenPresets(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			res, reg, events, n := runObserved(t, p.cfg())
			got := snapshot(res, reg, events, n)

			path := filepath.Join("testdata", "golden", p.name+".json")
			if *update {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			var want goldenSnapshot
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			gotJSON, _ := json.MarshalIndent(got, "", "  ")
			wantJSON, _ := json.MarshalIndent(want, "", "  ")
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Errorf("golden mismatch for %s:\n--- want\n%s\n--- got\n%s", p.name, wantJSON, gotJSON)
			}
		})
	}
}

// TestObservabilityDoesNotChangeResults is the tentpole's core contract:
// attaching a metrics registry and tracer must leave every simulation result
// bit-identical to an un-instrumented run.
func TestObservabilityDoesNotChangeResults(t *testing.T) {
	for _, p := range goldenPresets(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			plain, err := Run(p.cfg())
			if err != nil {
				t.Fatal(err)
			}
			observed, _, _, _ := runObserved(t, p.cfg())
			if plain.EnergyJ != observed.EnergyJ {
				t.Errorf("energy changed under observation: %g vs %g", plain.EnergyJ, observed.EnergyJ)
			}
			if plain.Read.Mean() != observed.Read.Mean() || plain.Read.Max() != observed.Read.Max() ||
				plain.Write.Mean() != observed.Write.Mean() || plain.Write.Max() != observed.Write.Max() {
				t.Error("response times changed under observation")
			}
			if plain.EndTime != observed.EndTime || plain.MeasuredOps != observed.MeasuredOps {
				t.Error("run shape changed under observation")
			}
			if plain.SpinUps != observed.SpinUps || plain.Erases != observed.Erases ||
				plain.CopiedBlocks != observed.CopiedBlocks || plain.WriteStalls != observed.WriteStalls {
				t.Error("device counters changed under observation")
			}
			if plain.Metrics != nil {
				t.Error("un-instrumented run produced a metrics snapshot")
			}
		})
	}
}

// TestMetricsMatchResult cross-checks the metrics registry against the
// independently-maintained Result counters: the two accounting paths must
// agree exactly.
func TestMetricsMatchResult(t *testing.T) {
	for _, p := range goldenPresets(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			res, reg, _, _ := runObserved(t, p.cfg())
			m := reg.Counters()
			check := func(name string, want int64) {
				t.Helper()
				if got := m[name]; got != want {
					t.Errorf("metric %s = %d, Result says %d", name, got, want)
				}
			}
			if res.SpinUps > 0 {
				check("disk.spin_ups", res.SpinUps)
				check("disk.spin_downs", res.SpinDowns)
			}
			if res.CacheHits+res.CacheMisses > 0 {
				check("cache.hits", res.CacheHits)
				check("cache.misses", res.CacheMisses)
			}
			if res.SRAMFlushes > 0 {
				check("sram.flushes", res.SRAMFlushes)
				check("sram.stalled_writes", res.SRAMStalledWrites)
			}
			if res.Erases > 0 && (m["flashcard.erases"] > 0) {
				check("flashcard.erases", res.Erases)
				check("flashcard.copied_blocks", res.CopiedBlocks)
				check("flashcard.host_blocks", res.HostBlocks)
				check("flashcard.stalls", res.WriteStalls)
			}
			if res.Metrics == nil {
				t.Fatal("no metrics snapshot on an instrumented run")
			}
			for k, v := range m {
				if res.Metrics[k] != v {
					t.Errorf("Result.Metrics[%s] = %d, registry says %d", k, res.Metrics[k], v)
				}
			}
		})
	}
}

// TestEventStreamDeterministic runs each preset twice with the same seed and
// requires byte-identical NDJSON event streams — the property that makes
// event traces diffable across refactors.
func TestEventStreamDeterministic(t *testing.T) {
	for _, p := range goldenPresets(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			_, _, ev1, n1 := runObserved(t, p.cfg())
			_, _, ev2, n2 := runObserved(t, p.cfg())
			if n1 != n2 {
				t.Fatalf("event counts differ: %d vs %d", n1, n2)
			}
			if n1 == 0 {
				t.Fatal("preset emitted no events")
			}
			if !bytes.Equal(ev1, ev2) {
				t.Error("event streams not byte-identical across identical runs")
			}
		})
	}
}

// TestEventCountsMatchCounters pins the event stream to the counters: the
// number of spin-up (resp. erase) events must equal the spin-up (erase)
// counter, so neither accounting path can drift.
func TestEventCountsMatchCounters(t *testing.T) {
	count := func(events []byte, kind string) int64 {
		var n int64
		for _, line := range bytes.Split(events, []byte("\n")) {
			if bytes.Contains(line, []byte(`"kind":"`+kind+`"`)) {
				n++
			}
		}
		return n
	}
	for _, p := range goldenPresets(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			res, reg, events, _ := runObserved(t, p.cfg())
			m := reg.Counters()
			if res.SpinUps > 0 {
				if got := count(events, obs.EvDiskSpinUp); got != res.SpinUps {
					t.Errorf("%d spin-up events, %d spin-ups", got, res.SpinUps)
				}
			}
			if n := m["flashcard.erases"]; n > 0 {
				if got := count(events, obs.EvCardErase); got != n {
					t.Errorf("%d erase events, counter says %d", got, n)
				}
				if got := count(events, obs.EvCardClean); got != m["flashcard.cleans"] {
					t.Errorf("%d clean events, counter says %d", got, m["flashcard.cleans"])
				}
			}
		})
	}
}
