package core

import (
	"bytes"
	"reflect"
	"testing"

	"mobilestorage/internal/array"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// arrayConfig returns a golden-trace run over the given array topology.
func arrayConfig(t *testing.T, spec string) Config {
	t.Helper()
	cfg := *goldenTrace(t)
	sp, err := array.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Array = sp
	cfg.FlashCardParams = device.IntelSeries2Measured()
	cfg.Disk = device.CU140Measured()
	cfg.SpinDown = 5 * units.Second
	return cfg
}

func TestRunArrayMirror(t *testing.T) {
	res, err := Run(arrayConfig(t, "mirror:2xflashcard"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Device != "mirror:2xintel-measured" {
		t.Errorf("device name %q", res.Device)
	}
	if res.HostBlocks == 0 || res.Erases == 0 {
		t.Errorf("mirror did no flash work: host=%d erases=%d", res.HostBlocks, res.Erases)
	}
	// Every write lands on both replicas: the mirror must write at least
	// twice the host blocks a single card would.
	single := arrayConfig(t, "mirror:2xflashcard")
	single.Array = nil
	single.Kind = FlashCard
	base, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostBlocks < 2*base.HostBlocks {
		t.Errorf("mirror host blocks %d < 2× single-card %d", res.HostBlocks, base.HostBlocks)
	}
	if res.EnergyByComponent["storage"] <= base.EnergyByComponent["storage"] {
		t.Errorf("mirror storage energy %.1f J not above single card %.1f J",
			res.EnergyByComponent["storage"], base.EnergyByComponent["storage"])
	}
}

func TestRunArrayStripe(t *testing.T) {
	res, err := Run(arrayConfig(t, "stripe:3xflashcard"))
	if err != nil {
		t.Fatal(err)
	}
	if res.HostBlocks == 0 {
		t.Error("stripe did no flash work")
	}
	if res.MeasuredOps == 0 {
		t.Error("no measured operations")
	}
}

func TestRunArrayMirrorDiskFlash(t *testing.T) {
	res, err := Run(arrayConfig(t, "mirror:flashcard+disk"))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredOps == 0 {
		t.Error("no measured operations")
	}
	if res.EnergyByComponent["storage"] <= 0 {
		t.Error("no storage energy recorded")
	}
}

// TestArrayDeterminism: identical config and seeds must reproduce the event
// stream and fault report byte for byte, member deaths included.
func TestArrayDeterminism(t *testing.T) {
	mk := func() Config {
		cfg := arrayConfig(t, "mirror:2xflashcard")
		dur := int64(cfg.Trace.Duration())
		cfg.MemberFaults = fault.PlanSet{
			"m0": {DieAtUs: dur / 2},
			"*":  {LatentErrorRate: 0.05},
		}
		cfg.Faults = &fault.Plan{PowerFailAtUs: []int64{3 * dur / 4}}
		cfg.FaultSeed = 42
		return cfg
	}
	r1, _, ev1, n1 := runObserved(t, mk())
	r2, _, ev2, n2 := runObserved(t, mk())
	if n1 != n2 || !bytes.Equal(ev1, ev2) {
		t.Error("event streams not byte-identical across identical array runs")
	}
	if !reflect.DeepEqual(r1.Faults, r2.Faults) {
		t.Errorf("fault reports differ:\n%+v\n%+v", r1.Faults, r2.Faults)
	}
	if r1.EnergyJ != r2.EnergyJ || r1.EndTime != r2.EndTime {
		t.Error("results differ across identical array runs")
	}
}

// TestArrayMirrorMemberDeathLosesNothing is the headline degraded-mode
// scenario: one mirror member dies mid-trace, the array degrades, rebuilds
// onto a replacement, and finishes the trace with zero lost acknowledged
// writes — proved by the acked-write ledger at death, at every recovery,
// and by the absence of violations.
func TestArrayMirrorMemberDeathLosesNothing(t *testing.T) {
	cfg := arrayConfig(t, "mirror:2xflashcard")
	dur := int64(cfg.Trace.Duration())
	cfg.MemberFaults = fault.PlanSet{"m0": {DieAtUs: dur / 2}}
	cfg.FaultSeed = 7
	res, _, events, _ := runObserved(t, cfg)

	rep := res.Faults
	if rep == nil {
		t.Fatal("no fault report")
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("acked writes lost across member death:\n%s", rep.Violations)
	}
	if rep.DeviceDeaths != 1 {
		t.Errorf("device deaths = %d, want 1", rep.DeviceDeaths)
	}
	if rep.Rebuilds != 1 || rep.RebuildTime <= 0 {
		t.Errorf("rebuilds = %d (time %d), want exactly one timed rebuild", rep.Rebuilds, rep.RebuildTime)
	}
	for _, kind := range []string{`"device.die"`, `"array.degraded"`, `"array.rebuild"`} {
		if !bytes.Contains(events, []byte(`"kind":`+kind)) {
			t.Errorf("event stream missing %s", kind)
		}
	}
}

// TestArrayMirrorDeathPlusPowerFailure stacks both fault domains: a member
// death and later system power failures. Recovery must re-prove the
// acked-write invariant against the survivors every time.
func TestArrayMirrorDeathPlusPowerFailure(t *testing.T) {
	cfg := arrayConfig(t, "mirror:2xflashcard")
	dur := int64(cfg.Trace.Duration())
	cfg.MemberFaults = fault.PlanSet{"m1": {DieAtUs: dur / 3}}
	cfg.Faults = &fault.Plan{PowerFailAtUs: []int64{dur / 2, 5 * dur / 6}}
	cfg.FaultSeed = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Faults
	if len(rep.Violations) != 0 {
		t.Fatalf("violations:\n%s", rep.Violations)
	}
	if rep.PowerFailures != 2 || rep.DeviceDeaths != 1 {
		t.Errorf("power failures = %d deaths = %d, want 2 and 1", rep.PowerFailures, rep.DeviceDeaths)
	}
	if rep.LostWrites != 0 {
		t.Errorf("lost %d acknowledged writes", rep.LostWrites)
	}
}

// TestArrayStripeDeathDegrades: a striped array has no redundancy, so a
// member death leaves the dead shares paying the bounded retry/backoff
// schedule (counted exhausted) while the run still completes.
func TestArrayStripeDeathDegrades(t *testing.T) {
	cfg := arrayConfig(t, "stripe:2xflashcard")
	dur := int64(cfg.Trace.Duration())
	cfg.MemberFaults = fault.PlanSet{"m0": {DieAtUs: dur / 2, MaxRetries: 2, BackoffUs: 100, MaxBackoffUs: 1000}}
	res, _, events, _ := runObserved(t, cfg)
	rep := res.Faults
	if rep.DeviceDeaths != 1 {
		t.Fatalf("device deaths = %d, want 1", rep.DeviceDeaths)
	}
	if rep.Rebuilds != 0 {
		t.Errorf("stripe rebuilt %d members; stripes have no redundancy to rebuild from", rep.Rebuilds)
	}
	if rep.Exhausted == 0 || rep.BackoffTime == 0 {
		t.Errorf("dead stripe shares must exhaust retries with backoff: exhausted=%d backoff=%d",
			rep.Exhausted, rep.BackoffTime)
	}
	if !bytes.Contains(events, []byte(`"kind":"array.degraded"`)) {
		t.Error("no array.degraded event")
	}
}

// TestArrayEraseDeath kills a member by endurance rather than schedule.
func TestArrayEraseDeath(t *testing.T) {
	cfg := arrayConfig(t, "mirror:2xflashcard")
	cfg.MemberFaults = fault.PlanSet{"m0": {DieAfterErases: 20}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Faults
	if rep.DeviceDeaths != 1 {
		t.Fatalf("device deaths = %d, want 1 (erase threshold 20 not reached?)", rep.DeviceDeaths)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations:\n%s", rep.Violations)
	}
}

// TestArrayLatentReadFaults seeds write-time latent faults on both mirror
// members and checks they surface on later reads as scrub penalties.
func TestArrayLatentReadFaults(t *testing.T) {
	cfg := arrayConfig(t, "mirror:2xflashcard")
	cfg.MemberFaults = fault.PlanSet{"*": {LatentErrorRate: 0.10}}
	cfg.FaultSeed = 11
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Faults
	if rep.LatentSeeded == 0 {
		t.Fatal("no latent faults seeded at 10% write rate")
	}
	if rep.LatentFaults == 0 {
		t.Error("seeded latent faults never surfaced on reads")
	}
	clean := arrayConfig(t, "mirror:2xflashcard")
	base, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Read.Mean() < base.Read.Mean() {
		t.Errorf("latent-faulted read mean %.3f ms below clean %.3f ms", res.Read.Mean(), base.Read.Mean())
	}
}

// TestCleaningBacklogCarryRegression compares recovery timelines with and
// without crash-carried cleaning backlog on a single flash card: with
// carry_cleaning_backlog the in-flight cleaning job survives the power
// failure and drains during recovery (cleaning.backlog event, BacklogTime
// on the report); without it the historical semantics — job discarded, no
// backlog — must be byte-identical to before the feature existed.
func TestCleaningBacklogCarryRegression(t *testing.T) {
	tr, err := workload.Synth(workload.SynthConfig{Seed: 7, Ops: 4000})
	if err != nil {
		t.Fatal(err)
	}
	dur := int64(tr.Duration())
	// Many crash instants so at least one lands while the cleaner holds an
	// in-flight job; high utilization keeps the cleaner busy.
	var fails []int64
	for i := int64(1); i <= 12; i++ {
		fails = append(fails, i*dur/13)
	}
	mk := func(carry bool) Config {
		return Config{
			Trace:            tr,
			DRAMBytes:        512 * units.KB,
			Kind:             FlashCard,
			FlashCardParams:  device.IntelSeries2Measured(),
			FlashUtilization: 0.90,
			Faults:           &fault.Plan{PowerFailAtUs: fails, CarryCleaningBacklog: carry},
			FaultSeed:        5,
		}
	}
	carried, _, evCarried, _ := runObserved(t, mk(true))
	dropped, _, evDropped, _ := runObserved(t, mk(false))

	crep, drep := carried.Faults, dropped.Faults
	if len(crep.Violations)+len(drep.Violations) != 0 {
		t.Fatalf("violations:\ncarry: %v\ndrop: %v", crep.Violations, drep.Violations)
	}
	if crep.BacklogCarried == 0 || crep.BacklogTime <= 0 {
		t.Fatalf("no backlog carried across %d crashes (carried=%d, time=%d); tune the schedule",
			len(fails), crep.BacklogCarried, crep.BacklogTime)
	}
	if drep.BacklogCarried != 0 || drep.BacklogTime != 0 {
		t.Errorf("carry disabled but backlog recorded: carried=%d time=%d", drep.BacklogCarried, drep.BacklogTime)
	}
	if !bytes.Contains(evCarried, []byte(`"kind":"cleaning.backlog"`)) {
		t.Error("carried run emitted no cleaning.backlog event")
	}
	if bytes.Contains(evDropped, []byte(`"kind":"cleaning.backlog"`)) {
		t.Error("dropped run emitted a cleaning.backlog event")
	}
}

// FuzzArrayRecovery fuzzes a mirror member death against a system power
// failure (either order, any timing) with latent faults and backlog
// carryover in play: whatever the interleaving, recovery must complete with
// zero invariant violations and zero lost acknowledged writes.
func FuzzArrayRecovery(f *testing.F) {
	f.Add(int64(1), int64(10_000_000), int64(60_000_000), false)
	f.Add(int64(2), int64(90_000_000), int64(30_000_000), true)
	f.Add(int64(3), int64(0), int64(0), true)
	f.Add(int64(-4), int64(1<<40), int64(17), false)
	f.Fuzz(func(t *testing.T, seed, dieAt, failAt int64, stripe bool) {
		tr, err := workload.Synth(workload.SynthConfig{Seed: 11, Ops: 600})
		if err != nil {
			t.Fatal(err)
		}
		clamp := func(v int64) int64 {
			if v < 0 {
				v = -v
			}
			if v < 0 { // MinInt64
				v = 0
			}
			return v % (2 * int64(tr.Duration()))
		}
		spec := "mirror:2xflashcard"
		if stripe {
			spec = "stripe:2xflashcard"
		}
		sp, err := array.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Trace:           tr,
			DRAMBytes:       256 * units.KB,
			Array:           sp,
			FlashCardParams: device.IntelSeries2Measured(),
			MemberFaults: fault.PlanSet{
				"m0": {DieAtUs: clamp(dieAt), LatentErrorRate: 0.02, CarryCleaningBacklog: true},
				"m1": {LatentErrorRate: 0.02, CarryCleaningBacklog: true},
			},
			Faults:    &fault.Plan{PowerFailAtUs: []int64{clamp(failAt)}},
			FaultSeed: seed,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Faults.Violations) != 0 {
			t.Fatalf("%s: recovery invariant violations:\n%s", spec, res.Faults.Violations)
		}
		if res.Faults.LostWrites != 0 {
			t.Fatalf("%s: lost %d acknowledged writes", spec, res.Faults.LostWrites)
		}
	})
}
