package core

import (
	"math"
	"math/rand"
	"os"
	"os/exec"
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
)

// FuzzRun is the native fuzz target over the whole simulator: a seed drives
// the adversarial trace generator, kind and knobs select the architecture
// and its configuration corners. The target asserts the simulator's physical
// invariants; any panic or violation is a finding. Corpus seeds live under
// testdata/fuzz/FuzzRun; run with
//
//	go test ./internal/core -run='^$' -fuzz=FuzzRun -fuzztime=30s
func FuzzRun(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(2), uint8(1), uint8(3))
	f.Add(int64(3), uint8(2), uint8(5))
	f.Add(int64(4), uint8(3), uint8(7))
	f.Add(int64(99), uint8(2), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, kind, knobs uint8) {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 300)
		if err := tr.Validate(); err != nil {
			t.Skip() // generator contract violation, not a simulator bug
		}
		cfg := Config{Trace: tr}
		if knobs&1 != 0 {
			cfg.DRAMBytes = 64 * units.KB
		}
		if knobs&2 != 0 {
			cfg.WriteBack = true
		}
		switch kind % 4 {
		case 0:
			cfg.Kind = MagneticDisk
			cfg.Disk = device.CU140Datasheet()
			cfg.SpinDown = units.Time(knobs>>2) * units.Second
			if knobs&4 != 0 {
				cfg.SRAMBytes = 8 * units.KB
			}
		case 1:
			cfg.Kind = FlashDisk
			cfg.FlashDiskParams = device.SDP5Datasheet()
			cfg.AsyncErase = knobs&4 != 0
		case 2:
			cfg.Kind = FlashCard
			cfg.FlashCardParams = device.IntelSeries2Datasheet()
			cfg.OnDemandCleaning = knobs&4 != 0
			cfg.CleaningPolicy = []string{"greedy", "cost-benefit", "fifo"}[int(knobs>>3)%3]
			if knobs&64 != 0 {
				cfg.WearLeveling = 4
			}
		case 3:
			cfg.Kind = FlashCache
			cfg.Disk = device.CU140Datasheet()
			cfg.SpinDown = 5 * units.Second
			cfg.FlashCardParams = device.IntelSeries2Datasheet()
			cfg.FlashCacheBytes = 256 * units.KB
		}
		res, err := Run(cfg)
		if err != nil {
			t.Skip() // config rejected by validation, not a crash
		}
		if res.EnergyJ < 0 || math.IsNaN(res.EnergyJ) || math.IsInf(res.EnergyJ, 0) {
			t.Fatalf("bad energy %g", res.EnergyJ)
		}
		for _, v := range []float64{res.Read.Mean(), res.Read.Max(), res.Write.Mean(), res.Write.Max()} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("bad response time %g", v)
			}
		}
		if res.WriteAmplification() < 1 {
			t.Fatalf("write amplification %g < 1", res.WriteAmplification())
		}
		if res.EndTime < 0 {
			t.Fatalf("negative end time %v", res.EndTime)
		}
	})
}

// TestFuzzSmoke runs the fuzzer for a short burst when explicitly requested
// via MOBILESTORAGE_FUZZ_SMOKE=1 (CI's scheduled job sets it; normal test
// runs skip). A regression found by fuzzing lands in testdata/fuzz and
// reproduces forever after via the seed corpus.
func TestFuzzSmoke(t *testing.T) {
	if os.Getenv("MOBILESTORAGE_FUZZ_SMOKE") == "" {
		t.Skip("set MOBILESTORAGE_FUZZ_SMOKE=1 to run the fuzz smoke test")
	}
	cmd := exec.Command("go", "test", "-run=^$", "-fuzz=FuzzRun", "-fuzztime=10s", ".")
	cmd.Env = append(os.Environ(), "MOBILESTORAGE_FUZZ_SMOKE=") // no recursion
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("fuzz smoke failed: %v\n%s", err, out)
	}
}
