package core

import (
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/disk"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/flashcard"
	"mobilestorage/internal/flashdisk"
	"mobilestorage/internal/hybrid"
	"mobilestorage/internal/sram"
	"mobilestorage/internal/units"
)

// fullStack hand-assembles a stack with every component populated — a shape
// buildStack never produces (it sets exactly one base device) but one the
// stack helpers must still handle correctly.
func fullStack(t *testing.T) *stack {
	t.Helper()
	d, err := disk.New(device.CU140Measured())
	if err != nil {
		t.Fatal(err)
	}
	fd, err := flashdisk.New(device.SDP5Datasheet(), 4*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := flashcard.New(device.IntelSeries2Measured(), 2*units.MB, 512*units.B)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hybrid.New(hybrid.Config{
		Disk:      device.CU140Measured(),
		Card:      device.IntelSeries2Measured(),
		CacheSize: 1 * units.MB,
		BlockSize: 512 * units.B,
	})
	if err != nil {
		t.Fatal(err)
	}
	sramParams := device.NECSRAM()
	buf, err := sram.New(sramParams, 32*units.KB, 512*units.B, d)
	if err != nil {
		t.Fatal(err)
	}
	return &stack{top: buf, disk: d, fdisk: fd, fcard: fc, hyb: h, buffer: buf}
}

// TestStackMetersReportsEveryComponent pins the meters() contract: a stack
// with every component populated reports each component's meter exactly
// once. The original switch-based implementation stopped at the first
// non-nil device, silently dropping the rest from energy totals.
func TestStackMetersReportsEveryComponent(t *testing.T) {
	st := fullStack(t)
	// The hybrid composes a fresh merged meter per call, so identity is
	// checked against nil there; every other component returns its own
	// stable meter, checked by pointer.
	want := []*energy.Meter{
		st.disk.Meter(), st.fdisk.Meter(), st.fcard.Meter(), nil, st.buffer.Meter(),
	}
	got := st.meters()
	if len(got) != len(want) {
		t.Fatalf("meters() returned %d meters, want %d", len(got), len(want))
	}
	seen := make(map[*energy.Meter]bool)
	for i, m := range got {
		if m == nil {
			t.Fatalf("meters()[%d] is nil", i)
		}
		if seen[m] {
			t.Fatalf("meters()[%d] reported twice", i)
		}
		seen[m] = true
		if want[i] != nil && m != want[i] {
			t.Errorf("meters()[%d] is not the expected component meter", i)
		}
	}
}

// TestStackMetersPartial checks each single-component stack reports exactly
// its own meter — the shape buildStack actually produces.
func TestStackMetersPartial(t *testing.T) {
	full := fullStack(t)
	cases := []struct {
		name string
		st   stack
	}{
		{"disk-only", stack{disk: full.disk}},
		{"flashdisk-only", stack{fdisk: full.fdisk}},
		{"flashcard-only", stack{fcard: full.fcard}},
		{"hybrid-only", stack{hyb: full.hyb}},
		{"buffer-over-disk", stack{disk: full.disk, buffer: full.buffer}},
	}
	wantCounts := []int{1, 1, 1, 1, 2}
	for i, c := range cases {
		if got := len(c.st.meters()); got != wantCounts[i] {
			t.Errorf("%s: meters() returned %d meters, want %d", c.name, got, wantCounts[i])
		}
	}
}

// crashStub records the order of Device and Crasher calls.
type crashStub struct {
	meter      *energy.Meter
	calls      []string
	times      []units.Time
	recoverDur units.Time
}

func (s *crashStub) Access(req device.Request) units.Time { return req.Time }
func (s *crashStub) Idle(now units.Time) {
	s.calls = append(s.calls, "idle")
	s.times = append(s.times, now)
}
func (s *crashStub) Finish(now units.Time) {}
func (s *crashStub) Meter() *energy.Meter  { return s.meter }
func (s *crashStub) Name() string          { return "crash-stub" }
func (s *crashStub) Crash(at units.Time) {
	s.calls = append(s.calls, "crash")
	s.times = append(s.times, at)
}
func (s *crashStub) Recover(at units.Time) units.Time {
	s.calls = append(s.calls, "recover")
	s.times = append(s.times, at)
	return at + s.recoverDur
}

// TestCrashAndRecoverOrdering pins the power-failure protocol the core
// promises devices: Idle(at), then Crash(at), then Recover(at), all at the
// crash instant, with recovery completing no earlier than the crash.
func TestCrashAndRecoverOrdering(t *testing.T) {
	cases := []struct {
		name       string
		at         units.Time
		recoverDur units.Time
	}{
		{"at-zero", 0, 0},
		{"mid-run", 90 * units.Second, 3 * units.Millisecond},
		{"instant-recovery", 5 * units.Second, 0},
		{"slow-recovery", 12 * units.Hour, 2 * units.Second},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stub := &crashStub{meter: energy.NewMeter(), recoverDur: c.recoverDur}
			st := &stack{top: stub}
			crashAndRecover(st, nil, nil, Config{}, c.at)
			want := []string{"idle", "crash", "recover"}
			if len(stub.calls) != len(want) {
				t.Fatalf("calls = %v, want %v", stub.calls, want)
			}
			for i, call := range want {
				if stub.calls[i] != call {
					t.Fatalf("call %d = %q, want %q (sequence %v)", i, stub.calls[i], call, stub.calls)
				}
				if stub.times[i] != c.at {
					t.Errorf("%s called at %v, want crash instant %v", call, stub.times[i], c.at)
				}
			}
		})
	}
}

// TestRealDevicesRecoverAfterCrashInstant checks every Crasher device model
// honors the timing half of the protocol: Recover(at) never completes
// before the crash instant.
func TestRealDevicesRecoverAfterCrashInstant(t *testing.T) {
	full := fullStack(t)
	devices := []struct {
		name string
		dev  device.Device
	}{
		{"disk", full.disk},
		{"flashdisk", full.fdisk},
		{"flashcard", full.fcard},
		{"hybrid", full.hyb},
	}
	const at = 45 * units.Second
	for _, d := range devices {
		cr, ok := d.dev.(device.Crasher)
		if !ok {
			continue
		}
		d.dev.Idle(at)
		cr.Crash(at)
		if done := cr.Recover(at); done < at {
			t.Errorf("%s: recovery completed at %v, before crash instant %v", d.name, done, at)
		}
	}
}
