package core_test

import (
	"fmt"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// Example replays a small hand-written trace through the paper's flash-card
// configuration and prints the energy and mean write response. The run is
// fully deterministic.
func Example() {
	t := &trace.Trace{Name: "demo", BlockSize: units.KB}
	for i := 0; i < 20; i++ {
		t.Records = append(t.Records, trace.Record{
			Time: units.Time(i) * units.Second,
			Op:   trace.Write,
			File: uint32(i % 2),
			Size: 4 * units.KB,
		})
	}

	res, err := core.Run(core.Config{
		Trace:           t,
		WarmFraction:    -1, // measure everything
		Kind:            core.FlashCard,
		FlashCardParams: device.IntelSeries2Datasheet(),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("writes: %d, mean %.2f ms\n", res.Write.N(), res.Write.Mean())
	// Output:
	// writes: 20, mean 18.69 ms
}

// Example_architectures compares the three storage architectures on the
// same workload, the core comparison of the paper.
func Example_architectures() {
	t := &trace.Trace{Name: "demo", BlockSize: units.KB}
	for i := 0; i < 50; i++ {
		op := trace.Read
		if i%2 == 0 {
			op = trace.Write
		}
		t.Records = append(t.Records, trace.Record{
			Time: units.Time(i) * 200 * units.Millisecond,
			Op:   op, File: uint32(i % 4), Size: units.KB,
		})
	}
	configs := map[string]core.Config{
		"disk":      {Trace: t, Kind: core.MagneticDisk, Disk: device.CU140Datasheet(), SpinDown: 5 * units.Second},
		"flashdisk": {Trace: t, Kind: core.FlashDisk, FlashDiskParams: device.SDP5Datasheet()},
		"flashcard": {Trace: t, Kind: core.FlashCard, FlashCardParams: device.IntelSeries2Datasheet()},
	}
	for _, name := range []string{"disk", "flashdisk", "flashcard"} {
		res, err := core.Run(configs[name])
		if err != nil {
			fmt.Println(err)
			return
		}
		// Reads: the disk pays seeks; both flashes are far faster.
		fmt.Printf("%s read mean: %.1f ms\n", name, res.Read.Mean())
	}
	// Output:
	// disk read mean: 26.2 ms
	// flashdisk read mean: 2.2 ms
	// flashcard read mean: 0.1 ms
}
