package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mobilestorage/internal/units"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.StdDev() != 0 {
		t.Errorf("zero-value summary not all-zero: %v", &s)
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %g, want 5", s.Mean())
	}
	if s.StdDev() != 2 { // classic example with population σ = 2
		t.Errorf("StdDev = %g, want 2", s.StdDev())
	}
	if s.Max() != 9 || s.Min() != 2 {
		t.Errorf("Max/Min = %g/%g, want 9/2", s.Max(), s.Min())
	}
	if s.Sum() != 40 {
		t.Errorf("Sum = %g, want 40", s.Sum())
	}
}

func TestSummaryAddTime(t *testing.T) {
	var s Summary
	s.AddTime(25700 * units.Microsecond)
	if !almostEqual(s.Mean(), 25.7, 1e-12) {
		t.Errorf("AddTime mean = %g ms, want 25.7", s.Mean())
	}
}

// TestSummaryMatchesNaive compares the streaming statistics against a
// two-pass computation on random samples.
func TestSummaryMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, v := range raw {
			s.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		mx, mn := float64(raw[0]), float64(raw[0])
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
			mx = math.Max(mx, float64(v))
			mn = math.Min(mn, float64(v))
		}
		sd := math.Sqrt(m2 / float64(len(raw)))
		return almostEqual(s.Mean(), mean, 1e-9) &&
			almostEqual(s.StdDev(), sd, 1e-9) &&
			s.Max() == mx && s.Min() == mn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSummaryMerge checks Merge equals adding all samples to one summary.
func TestSummaryMerge(t *testing.T) {
	f := func(a, b []int16) bool {
		var sa, sb, all Summary
		for _, v := range a {
			sa.Add(float64(v))
			all.Add(float64(v))
		}
		for _, v := range b {
			sb.Add(float64(v))
			all.Add(float64(v))
		}
		sa.Merge(sb)
		if sa.N() != all.N() {
			return false
		}
		if sa.N() == 0 {
			return true
		}
		return almostEqual(sa.Mean(), all.Mean(), 1e-9) &&
			almostEqual(sa.StdDev(), all.StdDev(), 1e-9) &&
			sa.Max() == all.Max() && sa.Min() == all.Min()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, x := range []float64{0.5, 0.9, 5, 50, 500} {
		h.Add(x)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Overflow != 1 {
		t.Errorf("counts = %v overflow = %d", h.Counts, h.Overflow)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("Quantile(0.5) = %g, want 10", q)
	}
	if q := h.Quantile(1.0); !math.IsInf(q, 1) {
		t.Errorf("Quantile(1.0) = %g, want +Inf (overflow)", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram([]float64{1})
	if q := h.Quantile(0.9); q != 0 {
		t.Errorf("empty Quantile = %g, want 0", q)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("descending bounds did not panic")
		}
	}()
	NewHistogram([]float64{10, 1})
}
