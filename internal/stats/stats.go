// Package stats provides streaming summary statistics for response times and
// other simulator observables.
//
// The paper reports mean, maximum, and standard deviation for read and write
// response times (Tables 4(a)–(c)), so Summary tracks exactly those using
// Welford's online algorithm: numerically stable, O(1) memory, and exact for
// the mean regardless of sample count.
package stats

import (
	"fmt"
	"math"
	"sort"

	"mobilestorage/internal/units"
)

// Summary accumulates streaming mean/max/σ over float64 samples.
// The zero value is ready to use.
type Summary struct {
	n int64
	// fn mirrors n as a float64. The Welford update divides by the sample
	// count every Add, and fn keeps the int→float conversion off that
	// critical path; float64 holds counts exactly far past any trace size.
	fn   float64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
	max  float64
	min  float64
	sum  float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	s.fn++
	if s.n == 1 {
		s.max = x
		s.min = x
	} else {
		if x > s.max {
			s.max = x
		}
		if x < s.min {
			s.min = x
		}
	}
	s.sum += x
	delta := x - s.mean
	s.mean += delta / s.fn
	s.m2 += delta * (x - s.mean)
}

// AddN records the same sample n times, exactly as n consecutive Add calls
// would. The Welford update is inherently sequential (mean and m2 feed back
// into each step), so the loop stays — the win over caller-side loops is the
// single call and the hoisted min/max handling, not a closed form, which
// would change the float rounding and break bit-identical replay.
func (s *Summary) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	if s.n == 0 {
		s.max = x
		s.min = x
	} else {
		if x > s.max {
			s.max = x
		}
		if x < s.min {
			s.min = x
		}
	}
	for ; n > 0; n-- {
		s.n++
		s.fn++
		s.sum += x
		delta := x - s.mean
		s.mean += delta / s.fn
		s.m2 += delta * (x - s.mean)
	}
}

// AddTime records a duration sample in milliseconds, the unit the paper's
// tables use.
func (s *Summary) AddTime(t units.Time) { s.Add(t.Milliseconds()) }

// N returns the number of samples recorded.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Sum returns the total of all samples.
func (s *Summary) Sum() float64 { return s.sum }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// StdDev returns the population standard deviation (the paper's σ), or 0
// with fewer than two samples.
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// Merge folds other into s, as if all of other's samples had been Added.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	tot := n1 + n2
	s.mean += delta * n2 / tot
	s.m2 += other.m2 + delta*delta*n1*n2/tot
	s.n += other.n
	s.fn += other.fn
	s.sum += other.sum
	if other.max > s.max {
		s.max = other.max
	}
	if other.min < s.min {
		s.min = other.min
	}
}

// String renders "mean/max/σ" in the style of the paper's tables.
func (s *Summary) String() string {
	return fmt.Sprintf("mean=%.2f max=%.1f σ=%.1f (n=%d)", s.Mean(), s.Max(), s.StdDev(), s.n)
}

// NewLatencyHistogram returns a histogram with log-spaced bounds from 1 µs
// to ~1000 s (five buckets per decade), suitable for response times in
// milliseconds: fine resolution where flash operations live, coarse where
// disk spin-ups live.
func NewLatencyHistogram() *Histogram {
	var bounds []float64
	for exp := -3.0; v(exp) <= 1e6; exp += 0.2 {
		bounds = append(bounds, v(exp))
	}
	return NewHistogram(bounds)
}

func v(exp float64) float64 { return math.Pow(10, exp) }

// Histogram is a fixed-bucket histogram over non-negative float64 samples,
// used for latency distribution reporting (Figure 1-style plots).
type Histogram struct {
	// Bounds are the inclusive upper edges of each bucket; samples above the
	// last bound land in the overflow bucket.
	Bounds   []float64
	Counts   []int64
	Overflow int64

	// Two-entry memo for recent in-bounds samples: simulated latencies
	// repeat exact values (the same transfer size costs the same time), so
	// re-searching for an identical float is pure waste. Two entries matter
	// because streams often alternate between a pair of values (e.g. cache
	// hits and one device service time), which defeats a single entry.
	memoX   float64
	memoI   int32
	memoOK  bool
	memoX2  float64
	memoI2  int32
	memoOK2 bool
}

// NewHistogram builds a histogram with the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{Bounds: b, Counts: make([]int64, len(bounds))}
}

// Add records one sample. The binary search lands in the same bucket a
// linear first-bound-≥-x scan would: SearchFloat64s returns the smallest i
// with Bounds[i] >= x.
func (h *Histogram) Add(x float64) {
	if h.memoOK && x == h.memoX {
		h.Counts[h.memoI]++
		return
	}
	if h.memoOK2 && x == h.memoX2 {
		h.Counts[h.memoI2]++
		h.memoX, h.memoX2 = h.memoX2, h.memoX
		h.memoI, h.memoI2 = h.memoI2, h.memoI
		return
	}
	if i := sort.SearchFloat64s(h.Bounds, x); i < len(h.Bounds) {
		h.Counts[i]++
		h.memoX2, h.memoI2, h.memoOK2 = h.memoX, h.memoI, h.memoOK
		h.memoX, h.memoI, h.memoOK = x, int32(i), true
		return
	}
	h.Overflow++
}

// AddN records the same sample n times with a single bucket search: one
// count-weighted increment lands in exactly the bucket n Add calls would.
func (h *Histogram) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	if h.memoOK && x == h.memoX {
		h.Counts[h.memoI] += n
		return
	}
	if h.memoOK2 && x == h.memoX2 {
		h.Counts[h.memoI2] += n
		h.memoX, h.memoX2 = h.memoX2, h.memoX
		h.memoI, h.memoI2 = h.memoI2, h.memoI
		return
	}
	if i := sort.SearchFloat64s(h.Bounds, x); i < len(h.Bounds) {
		h.Counts[i] += n
		h.memoX2, h.memoI2, h.memoOK2 = h.memoX, h.memoI, h.memoOK
		h.memoX, h.memoI, h.memoOK = x, int32(i), true
		return
	}
	h.Overflow += n
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int64 {
	t := h.Overflow
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) using the
// bucket edges; it returns +Inf if the quantile falls in the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			return h.Bounds[i]
		}
	}
	return math.Inf(1)
}
