package testbed

import (
	"fmt"

	"mobilestorage/internal/compress"
	"mobilestorage/internal/stats"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// benchChunk is the transfer size of the paper's micro-benchmarks: "4-Kbyte
// reads and writes to 4-Kbyte and 1-Mbyte files" (Table 1).
const benchChunk = 4 * units.KB

// Throughput measures sequential write then read throughput (KB/s of
// logical data) over a fresh testbed: totalBytes moved through files of
// fileSize in 4 KB calls. This is the §3 micro-benchmark.
func Throughput(cfg Config, fileSize, totalBytes units.Bytes) (writeKBs, readKBs float64, err error) {
	tb, err := New(cfg)
	if err != nil {
		return 0, 0, err
	}
	nfiles := uint32(units.CeilDiv(totalBytes, fileSize))

	start := tb.Clock()
	for f := uint32(0); f < nfiles; f++ {
		for off := units.Bytes(0); off < fileSize; off += benchChunk {
			tb.Write(f, fileSize, chunkAt(off, fileSize))
		}
	}
	writeKBs = units.BandwidthKBs(totalBytes, tb.Clock()-start)

	start = tb.Clock()
	for f := uint32(0); f < nfiles; f++ {
		for off := units.Bytes(0); off < fileSize; off += benchChunk {
			tb.Read(f, off, chunkAt(off, fileSize))
		}
	}
	readKBs = units.BandwidthKBs(totalBytes, tb.Clock()-start)
	return writeKBs, readKBs, nil
}

// chunkAt returns the benchmark transfer size, clipped at end of file.
func chunkAt(off, fileSize units.Bytes) units.Bytes {
	if fileSize-off < benchChunk {
		return fileSize - off
	}
	return benchChunk
}

// WriteLatencyPoint is one Figure 1 sample: the latency and instantaneous
// throughput after writing a cumulative amount of data, averaged across
// 32 KB of writes like the paper's plots.
type WriteLatencyPoint struct {
	CumulativeKB  float64
	LatencyMs     float64
	ThroughputKBs float64
}

// WriteLatencyCurve reproduces Figure 1: 4 KB writes to a 1 MB file,
// reporting average latency and instantaneous throughput per 32 KB of
// cumulative logical data.
func WriteLatencyCurve(cfg Config) ([]WriteLatencyPoint, error) {
	tb, err := New(cfg)
	if err != nil {
		return nil, err
	}
	const fileSize = 1 * units.MB
	const window = 32 * units.KB
	var points []WriteLatencyPoint
	var windowTime units.Time
	var windowBytes units.Bytes
	for off := units.Bytes(0); off < fileSize; off += benchChunk {
		lat := tb.Write(0, fileSize, benchChunk)
		windowTime += lat
		windowBytes += benchChunk
		if windowBytes >= window {
			points = append(points, WriteLatencyPoint{
				CumulativeKB:  (off + benchChunk).KBytes(),
				LatencyMs:     windowTime.Milliseconds() / float64(windowBytes/benchChunk),
				ThroughputKBs: units.BandwidthKBs(windowBytes, windowTime),
			})
			windowTime, windowBytes = 0, 0
		}
	}
	return points, nil
}

// OverwritePoint is one Figure 3 sample: instantaneous throughput after a
// cumulative number of megabytes overwritten.
type OverwritePoint struct {
	CumulativeMB  float64
	ThroughputKBs float64
}

// OverwriteCurve reproduces Figure 3: on a 10 MB Intel card holding
// liveData of files, overwrite totalMB megabytes (4 KB at a time, randomly
// selected within the live data) and report throughput per megabyte.
// Throughput drops both with cumulative data (MFFS bookkeeping) and with
// the amount of live data (cleaning pressure).
func OverwriteCurve(liveData units.Bytes, totalMB int, seed int64) ([]OverwritePoint, error) {
	tb, err := New(Config{Kind: IntelCard, Data: compress.MobyDick})
	if err != nil {
		return nil, err
	}
	// Live data as 64 KB files, written once to populate the card.
	const fileSize = 64 * units.KB
	nfiles := uint32(liveData / fileSize)
	if nfiles == 0 {
		return nil, fmt.Errorf("testbed: live data %v below one file", liveData)
	}
	for f := uint32(0); f < nfiles; f++ {
		for off := units.Bytes(0); off < fileSize; off += benchChunk {
			tb.Write(f, fileSize, benchChunk)
		}
	}

	rng := newSplitMix(seed)
	var points []OverwritePoint
	for mb := 0; mb < totalMB; mb++ {
		start := tb.Clock()
		for written := units.Bytes(0); written < units.MB; written += benchChunk {
			f := uint32(rng.next() % uint64(nfiles))
			tb.Write(f, fileSize, benchChunk)
		}
		points = append(points, OverwritePoint{
			CumulativeMB:  float64(mb + 1),
			ThroughputKBs: units.BandwidthKBs(units.MB, tb.Clock()-start),
		})
	}
	return points, nil
}

// ReplayResult summarizes a trace replay on the testbed (§5.1 validation).
type ReplayResult struct {
	Read  stats.Summary // ms
	Write stats.Summary // ms
}

// Replay runs a file-level trace against the testbed, honoring the trace's
// inter-arrival gaps so background cleaning gets its idle time. Used to
// validate the simulator against the "hardware" (§5.1): the same synth
// trace runs through both and the response times are compared.
func Replay(cfg Config, t *trace.Trace, warmFraction float64) (*ReplayResult, error) {
	tb, err := New(cfg)
	if err != nil {
		return nil, err
	}
	sizes := t.MaxFileSizes()
	if err := tb.Preload(sizes); err != nil {
		return nil, err
	}
	warm := t.WarmSplit(warmFraction)
	res := &ReplayResult{}
	for i, r := range t.Records {
		tb.Idle(r.Time)
		switch r.Op {
		case trace.Delete:
			tb.Delete(r.File)
		case trace.Write:
			tb.Write(r.File, sizes[r.File], r.Size)
			if i >= warm {
				res.Write.AddTime(tb.Clock() - r.Time)
			}
		case trace.Read:
			tb.Read(r.File, r.Offset, r.Size)
			if i >= warm {
				res.Read.AddTime(tb.Clock() - r.Time)
			}
		}
	}
	return res, nil
}

// splitMix is a tiny deterministic RNG for benchmark file selection
// (math/rand would work too; this keeps the dependency local and the
// sequence stable).
type splitMix struct{ state uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{state: uint64(seed)*2654435769 + 1} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
