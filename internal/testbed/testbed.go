// Package testbed emulates the paper's hardware measurement platform (§3):
// an HP OmniBook 300 (25 MHz 386SXLV, MS-DOS 5.0) driving one of the three
// storage devices through the DOS file system, optionally through a
// compression layer (DoubleSpace on the CU140, Stacker on the SDP10, and
// MFFS's built-in compression on the Intel card).
//
// The testbed reproduces the micro-benchmarks behind Table 1, Figure 1, and
// Figure 3, and replays the synth trace for the §5.1 simulator validation.
// Device service times come from the same parameter catalog the simulator
// uses; the DOS software-path constants are fits to Table 1.
package testbed

import (
	"fmt"
	"sort"

	"mobilestorage/internal/compress"
	"mobilestorage/internal/device"
	"mobilestorage/internal/disk"
	"mobilestorage/internal/flashcard"
	"mobilestorage/internal/flashdisk"
	"mobilestorage/internal/mffs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// DOS software-path constants on the 25 MHz OmniBook, fit to Table 1.
const (
	// syscallOverhead is charged per read/write call.
	syscallOverhead = 2200 * units.Microsecond
	// fileOpenOverhead is charged when switching to a different file.
	fileOpenOverhead = 3500 * units.Microsecond
	// fileCreateOverhead is charged when a file is first written.
	// Compressed volumes (DoubleSpace/Stacker) preallocate the host file,
	// so creation inside them costs a quarter of a FAT create.
	fileCreateOverhead = 19 * units.Millisecond
)

// StorageKind selects the device under test.
type StorageKind uint8

// The three devices measured in §3.
const (
	CU140 StorageKind = iota
	SDP10
	IntelCard
)

// String names the device under test.
func (k StorageKind) String() string {
	switch k {
	case CU140:
		return "cu140"
	case SDP10:
		return "sdp10"
	case IntelCard:
		return "intel"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Config describes one testbed setup.
type Config struct {
	Kind StorageKind
	// Compression enables DoubleSpace (CU140) or Stacker (SDP10).
	// The Intel card always compresses (MFFS 2.00).
	Compression bool
	// Data is the benchmark payload (Random or MobyDick).
	Data compress.Data
	// CardCapacity sizes the Intel card (default 10 MB, the measured part).
	CardCapacity units.Bytes
	// MFFS overrides the MFFS model (default mffs.New(); mffs.Fixed() for
	// the repaired-MFFS ablation).
	MFFS *mffs.Model
}

// fileState tracks one benchmark file.
type fileState struct {
	base    units.Bytes // device address of the file's extent
	extent  units.Bytes // extent size
	cursor  units.Bytes // next append position within the extent
	created bool
	mf      mffs.File
}

// Testbed is an OmniBook emulation driving one device.
type Testbed struct {
	cfg   Config
	clock units.Time

	dsk   *disk.Disk
	fdsk  *flashdisk.FlashDisk
	card  *flashcard.Card
	comp  *compress.Model
	model mffs.Model

	files    map[uint32]*fileState
	nextAddr units.Bytes
	lastFile uint32
	hasLast  bool

	// DoubleSpace/Stacker write batching.
	batch units.Bytes
}

// New builds a testbed. The Intel card starts completely erased, matching
// the paper's procedure ("The Intel flash card was completely erased prior
// to each benchmark").
func New(cfg Config) (*Testbed, error) {
	t := &Testbed{cfg: cfg, files: make(map[uint32]*fileState)}
	var err error
	switch cfg.Kind {
	case CU140:
		// The disk is continuously accessed during the benchmarks, so it
		// never spins down (Figure 1 caption).
		t.dsk, err = disk.New(device.CU140Datasheet(), disk.WithSpinDown(0))
		if cfg.Compression {
			m := compress.DoubleSpace()
			t.comp = &m
		}
	case SDP10:
		t.fdsk, err = flashdisk.New(device.SDP10Datasheet(), 10*units.MB)
		if cfg.Compression {
			m := compress.Stacker()
			t.comp = &m
		}
	case IntelCard:
		capacity := cfg.CardCapacity
		if capacity == 0 {
			capacity = 10 * units.MB
		}
		t.card, err = flashcard.New(device.IntelSeries2Datasheet(), capacity, 512*units.B)
		if cfg.MFFS != nil {
			t.model = *cfg.MFFS
		} else {
			t.model = mffs.New()
		}
	default:
		return nil, fmt.Errorf("testbed: unknown device kind %d", cfg.Kind)
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Clock returns the current virtual time.
func (t *Testbed) Clock() units.Time { return t.clock }

// Card exposes the Intel card under test (nil for other devices), so
// experiments can inspect cleaning state.
func (t *Testbed) Card() *flashcard.Card { return t.card }

// Preload materializes files on the device without charging time or
// energy, modeling a dataset that exists before a trace replay begins (the
// paper preloads the 6 MB synth dataset before running it, §5.1). sizes
// maps file IDs to their full sizes; files are placed in ID order so the
// flash card's Prefill covers exactly their extents.
func (t *Testbed) Preload(sizes map[uint32]units.Bytes) error {
	if t.nextAddr != 0 {
		return fmt.Errorf("testbed: Preload after I/O")
	}
	ids := make([]uint32, 0, len(sizes))
	for id := range sizes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := t.alloc(id, sizes[id])
		f.created = true
		if t.cfg.Kind == IntelCard {
			// The preloaded data is already compressed on the card.
			var mf mffs.File
			t.model.WriteCost(&mf, sizes[id], t.cfg.Data)
			f.mf = mf
		}
	}
	if t.card != nil {
		return t.card.Prefill(t.nextAddr)
	}
	return nil
}

// alloc places a file of the given maximum size.
func (t *Testbed) alloc(id uint32, size units.Bytes) *fileState {
	f, ok := t.files[id]
	if ok {
		return f
	}
	f = &fileState{base: t.nextAddr, extent: size}
	t.nextAddr += size
	t.files[id] = f
	return f
}

// Write appends size logical bytes to the file, returning the operation's
// latency. maxSize is the file's eventual size (extent allocation).
func (t *Testbed) Write(id uint32, maxSize, size units.Bytes) units.Time {
	f := t.alloc(id, maxSize)
	start := t.clock
	lat := t.softwareOverhead(id)
	if !f.created {
		if t.comp != nil {
			lat += fileCreateOverhead / 4
		} else {
			lat += fileCreateOverhead
		}
		f.created = true
	}

	switch t.cfg.Kind {
	case IntelCard:
		deviceBytes, software := t.model.WriteCost(&f.mf, size, t.cfg.Data)
		lat += software
		lat += t.deviceWrite(f, deviceBytes, id, start+lat)
	default:
		payload := size
		if t.comp != nil {
			payload = t.comp.CompressedSize(size, t.cfg.Data)
			lat += t.comp.CPUTime(size, t.cfg.Data)
			// DoubleSpace/Stacker batch small compressed writes and push
			// them to the device in bulk (Table 1: compressed small writes
			// beat the device's raw speed).
			t.batch += payload
			if t.batch >= t.comp.BatchBytes {
				lat += t.deviceWrite(f, t.batch, id, start+lat)
				t.batch = 0
			}
		} else {
			lat += t.deviceWrite(f, payload, id, start+lat)
		}
	}
	t.clock = start + lat
	return lat
}

// Read reads size logical bytes at the given offset, returning the latency.
func (t *Testbed) Read(id uint32, offset, size units.Bytes) units.Time {
	f, ok := t.files[id]
	if !ok {
		panic(fmt.Sprintf("testbed: read of unwritten file %d", id))
	}
	start := t.clock
	lat := t.softwareOverhead(id)

	switch t.cfg.Kind {
	case IntelCard:
		deviceBytes, software := t.model.ReadCost(offset, size, t.cfg.Data)
		lat += software
		lat += t.deviceRead(f, offset, deviceBytes, id, start+lat)
	default:
		payload := size
		if t.comp != nil {
			payload = t.comp.CompressedSize(size, t.cfg.Data)
			lat += t.comp.CPUTime(size, t.cfg.Data)
		}
		lat += t.deviceRead(f, offset, payload, id, start+lat)
	}
	t.clock = start + lat
	return lat
}

// Delete removes a file: MFFS state resets and flash blocks invalidate.
func (t *Testbed) Delete(id uint32) {
	f, ok := t.files[id]
	if !ok {
		return
	}
	f.created = false
	f.cursor = 0
	f.mf.Reset()
	if t.card != nil {
		t.card.Access(device.Request{Time: t.clock, Op: trace.Delete, File: id, Addr: f.base, Size: f.extent})
	}
	t.hasLast = false
}

// Idle advances the virtual clock without I/O, letting background work
// (flash cleaning) proceed — used when replaying traces with real
// inter-arrival gaps.
func (t *Testbed) Idle(until units.Time) {
	if until <= t.clock {
		return
	}
	t.clock = until
	switch {
	case t.dsk != nil:
		t.dsk.Idle(until)
	case t.fdsk != nil:
		t.fdsk.Idle(until)
	case t.card != nil:
		t.card.Idle(until)
	}
}

// softwareOverhead charges the DOS per-call cost plus a file switch.
func (t *Testbed) softwareOverhead(id uint32) units.Time {
	lat := syscallOverhead
	if !t.hasLast || t.lastFile != id {
		lat += fileOpenOverhead
	}
	t.lastFile = id
	t.hasLast = true
	return lat
}

// deviceWrite pushes payload bytes at the file's append cursor and returns
// the device time.
func (t *Testbed) deviceWrite(f *fileState, payload units.Bytes, id uint32, at units.Time) units.Time {
	if payload <= 0 {
		return 0
	}
	if payload > f.extent {
		payload = f.extent
	}
	addr := f.base + f.cursor
	if f.cursor+payload > f.extent {
		addr = f.base
		f.cursor = 0
	}
	f.cursor += payload
	req := device.Request{Time: at, Op: trace.Write, File: id, Addr: addr, Size: payload}
	return t.access(req) - at
}

// deviceRead fetches payload bytes and returns the device time.
func (t *Testbed) deviceRead(f *fileState, offset, payload units.Bytes, id uint32, at units.Time) units.Time {
	if payload <= 0 {
		return 0
	}
	addr := f.base + offset%f.extent
	if addr+payload > f.base+f.extent {
		addr = f.base
	}
	req := device.Request{Time: at, Op: trace.Read, File: id, Addr: addr, Size: payload}
	return t.access(req) - at
}

func (t *Testbed) access(req device.Request) units.Time {
	switch {
	case t.dsk != nil:
		t.dsk.Idle(req.Time)
		return t.dsk.Access(req)
	case t.fdsk != nil:
		t.fdsk.Idle(req.Time)
		return t.fdsk.Access(req)
	default:
		t.card.Idle(req.Time)
		return t.card.Access(req)
	}
}
