package testbed

import (
	"testing"

	"mobilestorage/internal/compress"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

func TestThroughputOrderings(t *testing.T) {
	// The load-bearing qualitative claims of Table 1.
	type result struct{ w4, r4, w1m, r1m float64 }
	measure := func(kind StorageKind, comp bool, data compress.Data) result {
		cfg := Config{Kind: kind, Compression: comp, Data: data}
		w4, r4, err := Throughput(cfg, 4*units.KB, 2*units.MB)
		if err != nil {
			t.Fatal(err)
		}
		w1m, r1m, err := Throughput(cfg, units.MB, 2*units.MB)
		if err != nil {
			t.Fatal(err)
		}
		return result{w4, r4, w1m, r1m}
	}
	cu := measure(CU140, false, compress.Random)
	sd := measure(SDP10, false, compress.Random)
	ic := measure(IntelCard, false, compress.Random)

	// "the Caviar Ultralite cu140 provides the best write throughput".
	if cu.w1m <= sd.w1m || cu.w1m <= ic.w1m {
		t.Errorf("cu140 1MB write %f not the best (sdp %f, intel %f)", cu.w1m, sd.w1m, ic.w1m)
	}
	// "Read throughput of the flash card is much better than the other
	// devices for small files".
	if ic.r4 <= cu.r4 || ic.r4 <= sd.r4 {
		t.Errorf("intel 4KB read %f not the best (cu %f, sdp %f)", ic.r4, cu.r4, sd.r4)
	}
	// "Throughput is unexpectedly poor for reading or writing large files"
	// (the MFFS 2.00 anomaly).
	if ic.r1m >= ic.r4/4 {
		t.Errorf("intel 1MB read %f did not collapse vs 4KB read %f", ic.r1m, ic.r4)
	}
	if ic.w1m >= ic.w4/2 {
		t.Errorf("intel 1MB write %f did not collapse vs 4KB write %f", ic.w1m, ic.w4)
	}
	// The flash disk is far slower to write than to read.
	if sd.w4 >= sd.r4 {
		t.Errorf("sdp write %f not below read %f", sd.w4, sd.r4)
	}

	// "Compression similarly helps the performance of small file writes on
	// the flash disk, resulting in write throughput greater than the
	// theoretical limit of the SunDisk sdp10" (50 KB/s).
	sdc := measure(SDP10, true, compress.MobyDick)
	if sdc.w4 <= 50 {
		t.Errorf("compressed sdp 4KB writes %f not above the 50 KB/s raw limit", sdc.w4)
	}
}

func TestWriteLatencyCurveMFFSAnomaly(t *testing.T) {
	pts, err := WriteLatencyCurve(Config{Kind: IntelCard, Data: compress.MobyDick})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("only %d points", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	// Figure 1: latency grows roughly linearly; by 1 MB it is several times
	// the initial latency, and throughput has collapsed correspondingly.
	if last.LatencyMs < 3*first.LatencyMs {
		t.Errorf("intel latency %f → %f did not grow ≥3×", first.LatencyMs, last.LatencyMs)
	}
	if last.ThroughputKBs > first.ThroughputKBs/2 {
		t.Errorf("intel throughput %f → %f did not halve", first.ThroughputKBs, last.ThroughputKBs)
	}
	// Monotone growth (within per-window noise): check a middle point too.
	mid := pts[len(pts)/2]
	if !(first.LatencyMs < mid.LatencyMs && mid.LatencyMs < last.LatencyMs) {
		t.Errorf("latency not increasing: %f, %f, %f", first.LatencyMs, mid.LatencyMs, last.LatencyMs)
	}

	// The disk stays flat (Figure 1: "the cu140 was continuously accessed").
	cu, err := WriteLatencyCurve(Config{Kind: CU140, Data: compress.Random})
	if err != nil {
		t.Fatal(err)
	}
	cf, cl := cu[0], cu[len(cu)-1]
	if cl.LatencyMs > cf.LatencyMs*1.5 {
		t.Errorf("cu140 latency grew %f → %f", cf.LatencyMs, cl.LatencyMs)
	}
}

func TestOverwriteCurveLiveDataEffect(t *testing.T) {
	// Figure 3: more live data → lower throughput (cleaning pressure), and
	// throughput declines with cumulative data in all configurations.
	avg := func(live units.Bytes) (first, rest float64) {
		pts, err := OverwriteCurve(live, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		first = pts[0].ThroughputKBs
		for _, p := range pts[2:] {
			rest += p.ThroughputKBs
		}
		rest /= float64(len(pts) - 2)
		return first, rest
	}
	_, low := avg(1 * units.MB)
	_, high := avg(9 * units.MB)
	_, higher := avg(9*units.MB + 512*units.KB)
	if high >= low {
		t.Errorf("9MB live throughput %f not below 1MB live %f", high, low)
	}
	if higher > high*1.1 {
		t.Errorf("9.5MB live throughput %f above 9MB live %f", higher, high)
	}
}

func TestReplaySynth(t *testing.T) {
	synth, err := workload.Synth(workload.SynthConfig{Seed: 1, Ops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []StorageKind{CU140, SDP10, IntelCard} {
		res, err := Replay(Config{Kind: kind, Data: compress.Random}, synth, 0.1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Read.N() == 0 || res.Write.N() == 0 {
			t.Errorf("%v: empty replay stats", kind)
		}
		if res.Read.Mean() <= 0 || res.Write.Mean() <= 0 {
			t.Errorf("%v: non-positive response times", kind)
		}
	}
}

func TestPreloadAfterIORejected(t *testing.T) {
	tb, err := New(Config{Kind: CU140, Data: compress.Random})
	if err != nil {
		t.Fatal(err)
	}
	tb.Write(1, units.KB, units.KB)
	if err := tb.Preload(map[uint32]units.Bytes{2: units.KB}); err == nil {
		t.Error("preload after I/O accepted")
	}
}

func TestDeleteResetsMFFSState(t *testing.T) {
	tb, err := New(Config{Kind: IntelCard, Data: compress.MobyDick})
	if err != nil {
		t.Fatal(err)
	}
	// Grow a file, delete it, rewrite: the first write after deletion must
	// cost like a fresh file (no rewrite anomaly carry-over).
	for i := 0; i < 32; i++ {
		tb.Write(1, units.MB, 4*units.KB)
	}
	grown := tb.Write(1, units.MB, 4*units.KB)
	tb.Delete(1)
	fresh := tb.Write(1, units.MB, 4*units.KB)
	if fresh >= grown {
		t.Errorf("write after delete (%v) as slow as grown file (%v)", fresh, grown)
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := New(Config{Kind: StorageKind(9)}); err == nil {
		t.Error("unknown kind accepted")
	}
	if StorageKind(9).String() == "" {
		t.Error("empty name for unknown kind")
	}
}
