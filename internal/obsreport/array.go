package obsreport

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/plot"
)

// ArrayDevice is one device's share of the degraded-mode activity: deaths,
// mirror degradations and rebuilds, latent faults scrubbed on read, and
// cleaning backlog carried across power failures. For array runs the Dev is
// usually the member device ("intel-measured#0"); single-device runs with
// latent or backlog plans show up here too.
type ArrayDevice struct {
	Dev string `json:"dev"`
	// Deaths counts whole-device deaths; EraseDeaths is the subset caused
	// by die_after_erases (the rest were scheduled die_at_us deaths).
	Deaths      int64 `json:"deaths"`
	EraseDeaths int64 `json:"erase_deaths"`
	// Degradations counts mirror transitions to degraded mode attributed to
	// this array; Rebuilds the completed replacement copies.
	Degradations  int64 `json:"degradations"`
	Rebuilds      int64 `json:"rebuilds"`
	RebuildBlocks int64 `json:"rebuild_blocks"`
	RebuildUs     int64 `json:"rebuild_us"`
	// LatentSurfaced counts poisoned blocks scrubbed on read; ScrubUs is
	// the read-latency penalty those scrubs charged.
	LatentSurfaced int64 `json:"latent_surfaced"`
	ScrubUs        int64 `json:"scrub_us"`
	// Backlogs counts interrupted cleaning jobs carried across power
	// failures; BacklogBlocks the live blocks still to relocate at the
	// crash; DrainUs the recovery time the drains added.
	Backlogs      int64 `json:"backlogs"`
	BacklogBlocks int64 `json:"backlog_blocks"`
	DrainUs       int64 `json:"drain_us"`
	// LatentTimesUs are the simulated times latent faults surfaced on this
	// device, in stream order — the raw series behind the chart.
	LatentTimesUs []int64 `json:"latent_times_us"`
}

// ArrayReport summarizes a run's degraded-mode activity from device.die,
// array.degraded, array.rebuild, fault.latent, and cleaning.backlog events:
// which members died and when, how long the array ran degraded before each
// rebuild completed, how much silent rot surfaced, and what the carried
// cleaning backlog cost at recovery.
type ArrayReport struct {
	Devices        []ArrayDevice `json:"devices"`
	Deaths         int64         `json:"deaths"`
	EraseDeaths    int64         `json:"erase_deaths"`
	Degradations   int64         `json:"degradations"`
	Rebuilds       int64         `json:"rebuilds"`
	RebuildBlocks  int64         `json:"rebuild_blocks"`
	RebuildUs      int64         `json:"rebuild_us"`
	LatentSurfaced int64         `json:"latent_surfaced"`
	ScrubUs        int64         `json:"scrub_us"`
	Backlogs       int64         `json:"backlogs"`
	BacklogBlocks  int64         `json:"backlog_blocks"`
	DrainUs        int64         `json:"drain_us"`
	// DeathUs and RebuildDoneUs carry the individual death and
	// rebuild-completion times (dropped by Merge, which keeps only the
	// counts) — the vertical markers on the chart.
	DeathUs       []int64 `json:"death_us"`
	RebuildDoneUs []int64 `json:"rebuild_done_us"`
}

// ArrayBuilder accumulates degraded-mode array activity incrementally.
type ArrayBuilder struct {
	r     *ArrayReport
	byDev map[string]*ArrayDevice
}

// NewArrayBuilder returns an empty array builder.
func NewArrayBuilder() *ArrayBuilder {
	return &ArrayBuilder{
		r:     &ArrayReport{},
		byDev: make(map[string]*ArrayDevice),
	}
}

func (b *ArrayBuilder) get(dev string) *ArrayDevice {
	d, ok := b.byDev[dev]
	if !ok {
		d = &ArrayDevice{Dev: dev}
		b.byDev[dev] = d
	}
	return d
}

// Observe implements Reporter. device.die carries the member index in Addr
// and 1 in Size for an endurance death; array.degraded carries the dead
// member in Addr and the survivor count in Size; array.rebuild carries the
// rebuilt member in Addr, copied blocks in Size, and the rebuild duration
// in Dur; fault.latent carries the surfaced block count in Size and the
// scrub penalty in Dur; cleaning.backlog carries the victim segment in
// Addr, the live blocks in Size, and the drain time in Dur.
func (b *ArrayBuilder) Observe(e obs.Event) {
	switch e.Kind {
	case obs.EvDeviceDie:
		d := b.get(e.Dev)
		d.Deaths++
		b.r.Deaths++
		if e.Size != 0 {
			d.EraseDeaths++
			b.r.EraseDeaths++
		}
		b.r.DeathUs = append(b.r.DeathUs, e.T)
	case obs.EvArrayDegraded:
		d := b.get(e.Dev)
		d.Degradations++
		b.r.Degradations++
	case obs.EvArrayRebuild:
		d := b.get(e.Dev)
		d.Rebuilds++
		d.RebuildBlocks += e.Size
		d.RebuildUs += e.Dur
		b.r.Rebuilds++
		b.r.RebuildBlocks += e.Size
		b.r.RebuildUs += e.Dur
		b.r.RebuildDoneUs = append(b.r.RebuildDoneUs, e.T)
	case obs.EvFaultLatent:
		d := b.get(e.Dev)
		d.LatentSurfaced += e.Size
		d.ScrubUs += e.Dur
		d.LatentTimesUs = append(d.LatentTimesUs, e.T)
		b.r.LatentSurfaced += e.Size
		b.r.ScrubUs += e.Dur
	case obs.EvCleaningBacklog:
		d := b.get(e.Dev)
		d.Backlogs++
		d.BacklogBlocks += e.Size
		d.DrainUs += e.Dur
		b.r.Backlogs++
		b.r.BacklogBlocks += e.Size
		b.r.DrainUs += e.Dur
	}
}

// Finish returns the report with devices in sorted name order.
func (b *ArrayBuilder) Finish() *ArrayReport {
	devs := make([]string, 0, len(b.byDev))
	for d := range b.byDev {
		devs = append(devs, d)
	}
	sort.Strings(devs)
	b.r.Devices = b.r.Devices[:0]
	for _, d := range devs {
		b.r.Devices = append(b.r.Devices, *b.byDev[d])
	}
	return b.r
}

// Merge folds o's degraded-mode activity into b: totals and per-device
// counters. The raw death, rebuild, and latent timestamp series are
// per-run detail and are not merged; the merged counts still reflect
// every event.
func (b *ArrayBuilder) Merge(o *ArrayBuilder) {
	if o == nil || b == o {
		return
	}
	for dev, od := range o.byDev {
		d := b.get(dev)
		d.Deaths += od.Deaths
		d.EraseDeaths += od.EraseDeaths
		d.Degradations += od.Degradations
		d.Rebuilds += od.Rebuilds
		d.RebuildBlocks += od.RebuildBlocks
		d.RebuildUs += od.RebuildUs
		d.LatentSurfaced += od.LatentSurfaced
		d.ScrubUs += od.ScrubUs
		d.Backlogs += od.Backlogs
		d.BacklogBlocks += od.BacklogBlocks
		d.DrainUs += od.DrainUs
	}
	b.r.Deaths += o.r.Deaths
	b.r.EraseDeaths += o.r.EraseDeaths
	b.r.Degradations += o.r.Degradations
	b.r.Rebuilds += o.r.Rebuilds
	b.r.RebuildBlocks += o.r.RebuildBlocks
	b.r.RebuildUs += o.r.RebuildUs
	b.r.LatentSurfaced += o.r.LatentSurfaced
	b.r.ScrubUs += o.r.ScrubUs
	b.r.Backlogs += o.r.Backlogs
	b.r.BacklogBlocks += o.r.BacklogBlocks
	b.r.DrainUs += o.r.DrainUs
}

// Array derives the degraded-mode report from the stream. The report is
// zero-valued for runs with no array or recovery activity.
func Array(events []obs.Event) *ArrayReport {
	b := NewArrayBuilder()
	observeAll(b, events)
	return b.Finish()
}

// empty reports whether the run had no degraded-mode activity at all.
func (r *ArrayReport) empty() bool {
	return r.Deaths == 0 && r.Degradations == 0 && r.Rebuilds == 0 &&
		r.LatentSurfaced == 0 && r.Backlogs == 0
}

// WriteArray renders the degraded-mode array report.
func WriteArray(w io.Writer, r *ArrayReport, f Format) error {
	switch f {
	case JSON:
		return writeJSON(w, r)
	case SVG:
		return ArrayChart(r).Render(w)
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"dev", "deaths", "erase_deaths", "degradations",
			"rebuilds", "rebuild_blocks", "rebuild_us", "latent_surfaced", "scrub_us",
			"backlogs", "backlog_blocks", "drain_us"}); err != nil {
			return err
		}
		for _, d := range r.Devices {
			cw.Write([]string{d.Dev, itoa(d.Deaths), itoa(d.EraseDeaths), itoa(d.Degradations),
				itoa(d.Rebuilds), itoa(d.RebuildBlocks), itoa(d.RebuildUs),
				itoa(d.LatentSurfaced), itoa(d.ScrubUs),
				itoa(d.Backlogs), itoa(d.BacklogBlocks), itoa(d.DrainUs)})
		}
		cw.Flush()
		return cw.Error()
	default:
		if r.empty() {
			fmt.Fprintln(w, "no array or recovery events in stream (run storagesim with -array or per-member faults)")
			return nil
		}
		if r.Deaths > 0 {
			fmt.Fprintf(w, "%d device deaths (%d from erase wear-out) at t =", r.Deaths, r.EraseDeaths)
			for _, t := range r.DeathUs {
				fmt.Fprintf(w, " %.1f s", float64(t)/1e6)
			}
			fmt.Fprintln(w)
		}
		if r.Degradations > 0 {
			fmt.Fprintf(w, "%d mirror degradations, %d rebuilds (%d blocks copied, %.1f ms rebuilding)\n",
				r.Degradations, r.Rebuilds, r.RebuildBlocks, float64(r.RebuildUs)/1e3)
		}
		if r.LatentSurfaced > 0 {
			fmt.Fprintf(w, "%d latent faults surfaced on read, %.1f ms scrub penalty\n",
				r.LatentSurfaced, float64(r.ScrubUs)/1e3)
		}
		if r.Backlogs > 0 {
			fmt.Fprintf(w, "%d cleaning jobs carried across power failures (%d live blocks, %.1f ms drained at recovery)\n",
				r.Backlogs, r.BacklogBlocks, float64(r.DrainUs)/1e3)
		}
		if len(r.Devices) > 0 {
			fmt.Fprintf(w, "%-22s %7s %9s %9s %11s %7s %9s %9s\n",
				"dev", "deaths", "rebuilds", "reb ms", "latent", "scrub ms", "backlogs", "drain ms")
			for _, d := range r.Devices {
				name := d.Dev
				if name == "" {
					name = "(unnamed)"
				}
				fmt.Fprintf(w, "%-22s %7d %9d %9.1f %11d %8.1f %9d %9.1f\n",
					name, d.Deaths, d.Rebuilds, float64(d.RebuildUs)/1e3,
					d.LatentSurfaced, float64(d.ScrubUs)/1e3,
					d.Backlogs, float64(d.DrainUs)/1e3)
			}
		}
		return nil
	}
}

// ArrayChart renders cumulative latent faults surfaced over simulated
// time, one line per device, with vertical markers at member deaths and
// rebuild completions — the degraded window reads directly off the gap
// between a die marker and its rebuild marker.
func ArrayChart(r *ArrayReport) *plot.Chart {
	c := &plot.Chart{
		Title:  "Degraded-mode activity over time",
		XLabel: "simulated time (s)",
		YLabel: "cumulative latent faults",
	}
	var peak float64
	for _, d := range r.Devices {
		if len(d.LatentTimesUs) == 0 {
			continue
		}
		name := d.Dev
		if name == "" {
			name = "(unnamed)"
		}
		pts := make([]plot.Point, 0, len(d.LatentTimesUs)+1)
		pts = append(pts, plot.Point{X: 0, Y: 0})
		for i, t := range d.LatentTimesUs {
			pts = append(pts, plot.Point{X: float64(t) / 1e6, Y: float64(i + 1)})
		}
		if n := float64(len(d.LatentTimesUs)); n > peak {
			peak = n
		}
		c.Series = append(c.Series, plot.Series{Name: name, Step: true, Points: pts})
	}
	if peak == 0 {
		peak = 1
	}
	for i, t := range r.DeathUs {
		x := float64(t) / 1e6
		c.Series = append(c.Series, plot.Series{
			Name:   fmt.Sprintf("device.die %d", i+1),
			Points: []plot.Point{{X: x, Y: 0}, {X: x, Y: peak}},
		})
	}
	for i, t := range r.RebuildDoneUs {
		x := float64(t) / 1e6
		c.Series = append(c.Series, plot.Series{
			Name:   fmt.Sprintf("rebuild %d", i+1),
			Points: []plot.Point{{X: x, Y: 0}, {X: x, Y: peak}},
		})
	}
	return c
}

// DiffArray compares degraded-mode totals between two runs.
func DiffArray(a, b *ArrayReport) []DeltaRow {
	return []DeltaRow{
		row("deaths", float64(a.Deaths), float64(b.Deaths)),
		row("erase_deaths", float64(a.EraseDeaths), float64(b.EraseDeaths)),
		row("degradations", float64(a.Degradations), float64(b.Degradations)),
		row("rebuilds", float64(a.Rebuilds), float64(b.Rebuilds)),
		row("rebuild_ms", float64(a.RebuildUs)/1e3, float64(b.RebuildUs)/1e3),
		row("latent_surfaced", float64(a.LatentSurfaced), float64(b.LatentSurfaced)),
		row("scrub_ms", float64(a.ScrubUs)/1e3, float64(b.ScrubUs)/1e3),
		row("backlogs", float64(a.Backlogs), float64(b.Backlogs)),
		row("drain_ms", float64(a.DrainUs)/1e3, float64(b.DrainUs)/1e3),
	}
}
