package obsreport

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary byte streams to both decoder modes. The
// invariants: no panic, strict mode never returns events past the first
// error line, and lenient mode accounts for every non-blank line as
// either an event or a skip (so nothing is silently dropped).
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"t_us":1,"kind":"disk.spinup","dev":"cu140","dur_us":1000}` + "\n"),
		[]byte(`{"t_us":2,"kind":"flashcard.erase","addr":7,"size":3}` + "\n" +
			`{"t_us":3,"kind":"sample.energy","dev":"total","size":123456}` + "\n"),
		[]byte(`{"t_us":1,"kind":"disk.spinup"` + "\n"), // truncated record
		[]byte("not json\n"),
		[]byte(`{"t_us":"x","kind":"y"}` + "\n"), // wrong field type
		[]byte(`{"t_us":1}` + "\n"),              // missing kind
		[]byte(`{"t_us":1,"kind":"some.future.kind","size":-9}` + "\n"),
		[]byte("\n\n\n"),
		[]byte("{}"),
		[]byte("{\"kind\":\"\u0000\"}\n"),
		{0xff, 0xfe, 0x00, '\n'},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadEvents(bytes.NewReader(data))
		for _, e := range events {
			if e.Kind == "" {
				t.Fatalf("strict mode returned an event with empty kind: %+v", e)
			}
		}
		_ = err

		lenientEvents, skipped, lerr := ReadEventsLenient(bytes.NewReader(data))
		if lerr == nil {
			// Mirror bufio.ScanLines framing: split on \n, strip one
			// trailing \r, and only zero-length lines are blank.
			nonBlank := 0
			for _, line := range bytes.Split(data, []byte("\n")) {
				line = bytes.TrimSuffix(line, []byte("\r"))
				if len(line) > 0 {
					nonBlank++
				}
			}
			if len(lenientEvents)+skipped != nonBlank {
				t.Fatalf("lenient mode lost lines: %d events + %d skipped != %d non-blank",
					len(lenientEvents), skipped, nonBlank)
			}
		}
		// Lenient mode can only succeed where it recovers at least as many
		// events as strict mode decoded before erroring.
		if lerr == nil && len(lenientEvents) < len(events) {
			t.Fatalf("lenient decoded %d events, strict decoded %d", len(lenientEvents), len(events))
		}
	})
}
