package obsreport

import (
	"bytes"
	"io"
	"testing"

	"mobilestorage/internal/obs"
)

// FuzzDecode feeds arbitrary byte streams to both decoder modes. The
// invariants: no panic, strict mode never returns events past the first
// error line, and lenient mode accounts for every non-blank line as
// either an event or a skip (so nothing is silently dropped).
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"t_us":1,"kind":"disk.spinup","dev":"cu140","dur_us":1000}` + "\n"),
		[]byte(`{"t_us":2,"kind":"flashcard.erase","addr":7,"size":3}` + "\n" +
			`{"t_us":3,"kind":"sample.energy","dev":"total","size":123456}` + "\n"),
		[]byte(`{"t_us":1,"kind":"disk.spinup"` + "\n"), // truncated record
		[]byte("not json\n"),
		[]byte(`{"t_us":"x","kind":"y"}` + "\n"), // wrong field type
		[]byte(`{"t_us":1}` + "\n"),              // missing kind
		[]byte(`{"t_us":1,"kind":"some.future.kind","size":-9}` + "\n"),
		[]byte("\n\n\n"),
		[]byte("{}"),
		[]byte("{\"kind\":\"\u0000\"}\n"),
		{0xff, 0xfe, 0x00, '\n'},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadEvents(bytes.NewReader(data))
		for _, e := range events {
			if e.Kind == "" {
				t.Fatalf("strict mode returned an event with empty kind: %+v", e)
			}
		}
		_ = err

		lenientEvents, skipped, lerr := ReadEventsLenient(bytes.NewReader(data))
		if lerr == nil {
			// Mirror bufio.ScanLines framing: split on \n, strip one
			// trailing \r, and only zero-length lines are blank.
			nonBlank := 0
			for _, line := range bytes.Split(data, []byte("\n")) {
				line = bytes.TrimSuffix(line, []byte("\r"))
				if len(line) > 0 {
					nonBlank++
				}
			}
			if len(lenientEvents)+skipped != nonBlank {
				t.Fatalf("lenient mode lost lines: %d events + %d skipped != %d non-blank",
					len(lenientEvents), skipped, nonBlank)
			}
		}
		// Lenient mode can only succeed where it recovers at least as many
		// events as strict mode decoded before erroring.
		if lerr == nil && len(lenientEvents) < len(events) {
			t.Fatalf("lenient decoded %d events, strict decoded %d", len(lenientEvents), len(events))
		}
	})
}

// readAllMode drains a stream through the decoder with the fast scanner on
// or off, collecting events until the first error.
func readAllMode(data []byte, noFast bool) (events []obs.Event, line int, err error) {
	d := NewDecoder(bytes.NewReader(data))
	d.noFast = noFast
	for {
		e, nerr := d.Next()
		if nerr == io.EOF {
			return events, d.line, nil
		}
		if nerr != nil {
			return events, d.line, nerr
		}
		events = append(events, e)
	}
}

// FuzzScanDifferential pins the hand-rolled fast scanner to the
// encoding/json reference path: for ANY byte stream, decoding with the
// fast path enabled must yield the same events, consume the same number of
// lines, and fail (or not) on the same line with the same message. The
// fast scanner is allowed to bail to the fallback, never to disagree.
func FuzzScanDifferential(f *testing.F) {
	seeds := [][]byte{
		// The canonical emitter shape.
		[]byte(`{"t_us":1,"kind":"disk.spinup","dev":"cu140","dur_us":1000}` + "\n"),
		// Escaped strings: force the fallback for captured and skipped values.
		[]byte(`{"t_us":1,"kind":"disk.spinup","dev":"cu\"140"}` + "\n"),
		[]byte(`{"kind":"k","note":"tab\there é 😀"}` + "\n"),
		// Huge numbers: int64 edges, overflow, floats, exponents.
		[]byte(`{"t_us":9223372036854775807,"kind":"k","addr":-9223372036854775808}` + "\n" +
			`{"t_us":9223372036854775808,"kind":"k"}` + "\n" +
			`{"t_us":1e308,"kind":"k","size":0.5}` + "\n" +
			`{"kind":"k","x":123456789012345678901234567890}` + "\n"),
		// Duplicate keys, including case-folded duplicates.
		[]byte(`{"kind":"a","kind":"b","KIND":"c","t_us":1,"t_us":2}` + "\n"),
		// CRLF line endings.
		[]byte("{\"t_us\":1,\"kind\":\"a\"}\r\n{\"t_us\":2,\"kind\":\"b\"}\r\n"),
		// Null fields, unknown nested values, odd whitespace.
		[]byte("{ \"kind\" : \"k\" , \"dev\" : null , \"extra\" : [ {\"a\": [1,2,{}]} , null ] }\n"),
		// Malformed tails and non-objects.
		[]byte(`{"kind":"k"} trailing` + "\n" + `[]` + "\n" + `{"kind":"k"` + "\n"),
		// Invalid UTF-8 inside strings (reference replaces with U+FFFD).
		[]byte("{\"kind\":\"k\",\"dev\":\"\xff\xfe\"}\n"),
		[]byte("{\"kind\":\"\xc3\x28\"}\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fastEvents, fastLine, fastErr := readAllMode(data, false)
		refEvents, refLine, refErr := readAllMode(data, true)

		if len(fastEvents) != len(refEvents) {
			t.Fatalf("fast decoded %d events, reference %d", len(fastEvents), len(refEvents))
		}
		for i := range fastEvents {
			if fastEvents[i] != refEvents[i] {
				t.Fatalf("event %d: fast %+v != reference %+v", i, fastEvents[i], refEvents[i])
			}
		}
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("error disagreement: fast %v, reference %v", fastErr, refErr)
		}
		if fastLine != refLine {
			t.Fatalf("line disagreement: fast consumed %d lines, reference %d", fastLine, refLine)
		}
		if fastErr != nil && fastErr.Error() != refErr.Error() {
			t.Fatalf("error text disagreement:\n fast %v\n  ref %v", fastErr, refErr)
		}
	})
}
