package obsreport

// SVG figure builders: each report maps onto a plot.Chart so the paper's
// curves render without external tooling — energy over time (Fig. 2–3),
// latency and cleaning distributions (Fig. 4–5), wear histograms, and
// spin-state timelines. Chart construction is deterministic: series follow
// the reports' already-sorted orders, so rendering inherits the builders'
// byte-reproducibility.

import (
	"fmt"

	"mobilestorage/internal/plot"
)

// TimelineChart renders per-device spin state over time: 1 = spinning,
// 0 = asleep. Devices are drawn as overlaid square waves reconstructed
// from the completed sleep intervals (plus a trailing open sleep, if the
// device ended the run spun down).
func TimelineChart(tls []*DeviceTimeline) *plot.Chart {
	c := &plot.Chart{
		Title:  "Spin state over time",
		XLabel: "simulated time (s)",
		YLabel: "state (1 = spinning)",
	}
	for _, tl := range tls {
		name := tl.Dev
		if name == "" {
			name = "(unnamed)"
		}
		var pts []plot.Point
		cursor := 0.0 // the device starts the run spinning at t=0
		for _, iv := range tl.Sleeps {
			s, e := float64(iv.StartUs)/1e6, float64(iv.EndUs)/1e6
			pts = append(pts, plot.Point{X: cursor, Y: 1}, plot.Point{X: s, Y: 1},
				plot.Point{X: s, Y: 0}, plot.Point{X: e, Y: 0})
			cursor = e
		}
		if tl.OpenSleepUs >= 0 {
			s := float64(tl.OpenSleepUs) / 1e6
			pts = append(pts, plot.Point{X: cursor, Y: 1}, plot.Point{X: s, Y: 1},
				plot.Point{X: s, Y: 0})
		} else if len(pts) > 0 {
			last := pts[len(pts)-1]
			pts = append(pts, plot.Point{X: last.X, Y: 1})
		}
		c.Series = append(c.Series, plot.Series{Name: name, Points: pts})
	}
	return c
}

// LatencyChart renders each kind's duration histogram as a step outline
// over log-spaced bucket bounds.
func LatencyChart(kinds []KindLatency) *plot.Chart {
	c := &plot.Chart{
		Title:  "Event duration distributions",
		XLabel: "duration (ms)",
		YLabel: "events per bucket",
		LogX:   true,
	}
	for _, k := range kinds {
		c.Series = append(c.Series, plot.Series{Name: k.Kind, Step: true, Points: HistPoints(k.Hist)})
	}
	return c
}

// WearChart renders per-segment erase counts, with a flat mean reference
// line (perfect wear leveling would put every segment on it).
func WearChart(r *WearReport) *plot.Chart {
	c := &plot.Chart{
		Title:  "Flash wear by segment",
		XLabel: "segment",
		YLabel: "erases",
	}
	if len(r.Segments) == 0 {
		return c
	}
	var pts []plot.Point
	for _, s := range r.Segments {
		pts = append(pts, plot.Point{X: float64(s.Segment), Y: float64(s.Erases)})
	}
	first, last := pts[0].X, pts[len(pts)-1].X
	c.Series = append(c.Series,
		plot.Series{Name: "erases", Step: true, Points: pts},
		plot.Series{Name: fmt.Sprintf("mean %.1f", r.MeanErase), Points: []plot.Point{
			{X: first, Y: r.MeanErase}, {X: last, Y: r.MeanErase},
		}},
	)
	return c
}

// EnergyChart renders cumulative energy over simulated time, one line per
// component — the Figure 2–3 reproduction.
func EnergyChart(series []EnergySeries) *plot.Chart {
	c := &plot.Chart{
		Title:  "Cumulative energy",
		XLabel: "simulated time (s)",
		YLabel: "energy (J)",
	}
	for _, s := range series {
		var pts []plot.Point
		for _, p := range s.Points {
			pts = append(pts, plot.Point{X: float64(p.TUs) / 1e6, Y: p.Joules})
		}
		c.Series = append(c.Series, plot.Series{Name: s.Component, Points: pts})
	}
	return c
}

// CleaningChart renders the live-blocks-per-clean distribution — the
// cleaning-efficiency curve behind the §5.3 overhead analysis.
func CleaningChart(r *CleaningReport) *plot.Chart {
	c := &plot.Chart{
		Title:  "Cleaning efficiency",
		XLabel: "live blocks copied per clean",
		YLabel: "cleans per bucket",
		LogX:   true,
	}
	if r.Cleans > 0 {
		c.Series = append(c.Series, plot.Series{Name: "cleans", Step: true, Points: HistPoints(r.LivePerClean)})
	}
	return c
}

// HistPoints converts a histogram to step-outline points over its bucket
// upper bounds, trimming the all-zero tail (but keeping interior zeros so
// gaps in the distribution stay visible). The overflow count, if any,
// lands one bucket ratio past the last bound.
func HistPoints(h *Hist) []plot.Point {
	if h == nil {
		return nil
	}
	last := -1
	for i, c := range h.Counts {
		if c > 0 {
			last = i
		}
	}
	var pts []plot.Point
	for i := 0; i <= last; i++ {
		pts = append(pts, plot.Point{X: h.Bounds[i], Y: float64(h.Counts[i])})
	}
	if h.Overflow > 0 && len(h.Bounds) >= 2 {
		n := len(h.Bounds)
		ratio := h.Bounds[n-1] / h.Bounds[n-2]
		pts = append(pts, plot.Point{X: h.Bounds[n-1] * ratio, Y: float64(h.Overflow)})
	}
	return pts
}
