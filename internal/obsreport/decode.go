// Package obsreport is the analysis half of the observability stack: it
// consumes the structured event stream emitted by internal/obs (from an
// NDJSON file written with storagesim -events, or in-process from an
// obs.Collector/obs.Ring) and computes the derived reports behind the
// paper's time-dependent claims — per-device spin state timelines and
// idle-time histograms (Table 5), energy-over-time series (Figures 2–4),
// latency quantiles, per-segment wear distributions (§5.2), and cleaning
// overhead (§5.3/eNVy).
//
// Everything here is deterministic: reports are pure functions of the
// event slice, maps are rendered in sorted order, and quantiles come from
// a reproducible bucket-interpolation estimator.
package obsreport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mobilestorage/internal/obs"
)

// maxLineBytes bounds one NDJSON line; a simulator event serializes to well
// under 200 bytes, so anything beyond this is a corrupt stream, reported as
// an error rather than an unbounded allocation.
const maxLineBytes = 1 << 20

// DecodeError reports a malformed NDJSON line with its 1-based position.
type DecodeError struct {
	Line int
	Err  error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("obsreport: line %d: %v", e.Line, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// eventJSON mirrors the NDJSON field names of obs.NDJSONSink.
type eventJSON struct {
	T    int64  `json:"t_us"`
	Kind string `json:"kind"`
	Dev  string `json:"dev"`
	Addr int64  `json:"addr"`
	Size int64  `json:"size"`
	Dur  int64  `json:"dur_us"`
}

// Decoder reads an NDJSON event stream line by line. Each line is first
// parsed by the hand-rolled fast scanner (scan.go), which handles the
// canonical emitter shape with zero allocations per event; lines outside
// the fast grammar — escape sequences, non-ASCII strings, floats, unknown
// JSON features — fall back to encoding/json, which is also where every
// malformed-line error comes from. FuzzScanDifferential pins the two paths
// to byte-for-byte agreement.
type Decoder struct {
	sc   *bufio.Scanner
	line int
	// noFast disables the hand-rolled scanner so every line goes through
	// encoding/json — the reference path the differential fuzz target and
	// benchmarks compare against.
	noFast bool
	// strs interns Kind/Dev strings across lines (see Decoder.intern).
	strs map[string]string
	// malformed counts lines that produced a *DecodeError while the framing
	// stayed intact — the lines a lenient caller skips.
	malformed int
}

// NewDecoder returns a decoder over r.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLineBytes)
	return &Decoder{sc: sc}
}

// Next returns the next event. It returns io.EOF at end of stream and a
// *DecodeError for malformed lines (the decoder stays usable: callers may
// skip the bad line and continue). Blank lines are ignored. Unknown event
// kinds are not an error — forward compatibility with future emitters.
func (d *Decoder) Next() (obs.Event, error) {
	for d.sc.Scan() {
		d.line++
		raw := d.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		ev, ok := obs.Event{}, false
		if !d.noFast {
			ev, ok = d.scanEvent(raw)
		}
		if !ok {
			var ej eventJSON
			if err := json.Unmarshal(raw, &ej); err != nil {
				d.malformed++
				return obs.Event{}, &DecodeError{Line: d.line, Err: err}
			}
			ev = obs.Event{T: ej.T, Kind: ej.Kind, Dev: ej.Dev, Addr: ej.Addr, Size: ej.Size, Dur: ej.Dur}
		}
		if ev.Kind == "" {
			d.malformed++
			return obs.Event{}, &DecodeError{Line: d.line, Err: fmt.Errorf("missing event kind")}
		}
		return ev, nil
	}
	if err := d.sc.Err(); err != nil {
		d.line++
		return obs.Event{}, &DecodeError{Line: d.line, Err: err}
	}
	return obs.Event{}, io.EOF
}

// Line returns the number of lines consumed so far.
func (d *Decoder) Line() int { return d.line }

// Malformed returns how many lines so far failed to decode with the framing
// intact — exactly the lines a lenient caller skips. Scanner-level failures
// (oversized line, read error) are not counted: past them nothing more can
// be decoded, so they always surface as a terminal error instead.
func (d *Decoder) Malformed() int { return d.malformed }

// ReadEvents decodes an entire NDJSON stream strictly: the first malformed
// line aborts with a *DecodeError naming it.
func ReadEvents(r io.Reader) ([]obs.Event, error) {
	var out []obs.Event
	d := NewDecoder(r)
	for {
		e, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// ReadEventsLenient decodes a stream, skipping malformed lines; it returns
// the good events and how many lines were skipped. A scanner-level error
// (line too long, read failure) still aborts: past it the framing is gone.
func ReadEventsLenient(r io.Reader) (events []obs.Event, skipped int, err error) {
	d := NewDecoder(r)
	for {
		e, nerr := d.Next()
		if nerr == io.EOF {
			return events, d.Malformed(), nil
		}
		if nerr != nil {
			if d.sc.Err() == nil { // malformed line, framing intact
				continue
			}
			return events, d.Malformed(), nerr
		}
		events = append(events, e)
	}
}
