package obsreport

// The zero-allocation NDJSON fast path. scanEvent parses one line of the
// canonical emitter shape (obs.NDJSONSink output and near relatives) with a
// hand-rolled scanner: no encoding/json, no per-event map or interface
// values, and Kind/Dev strings interned so a steady-state stream allocates
// nothing per event.
//
// The scanner is deliberately conservative: any construct outside its
// grammar — escape sequences, non-ASCII strings, floats or exponents in
// integer fields, oversized numbers, unusual whitespace — makes it bail
// with ok=false, and the caller re-parses the line with encoding/json (the
// lenient fallback path). The fast path therefore never has to reproduce
// encoding/json's error behavior, only its successes; the differential
// fuzz target FuzzScanDifferential pins that agreement byte for byte.

import (
	"math"

	"mobilestorage/internal/obs"
)

// maxSkipDepth bounds nesting while skipping unknown-field values. Deeper
// documents fall back to encoding/json (which allows ~10000 levels), so the
// cap costs correctness nothing and keeps the scanner's recursion shallow.
const maxSkipDepth = 64

// maxInternStrings caps the Kind/Dev interning table so a hostile stream
// with unbounded name cardinality cannot grow memory; past the cap new
// names are still returned, just not retained.
const maxInternStrings = 1024

// Field indices for the known event shape.
const (
	fUnknown = iota
	fT
	fKind
	fDev
	fAddr
	fSize
	fDur
)

// fieldOf resolves a member key to a known event field. Exact matches are
// the emitter's spelling; the ASCII-lowercase retry mirrors encoding/json's
// case-insensitive key matching (non-ASCII keys never reach here — the key
// grammar already forced a fallback).
func fieldOf(key []byte) int {
	if f := fieldExact(key); f != fUnknown {
		return f
	}
	if len(key) > 6 {
		return fUnknown
	}
	var low [6]byte
	for i, c := range key {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		low[i] = c
	}
	return fieldExact(low[:len(key)])
}

func fieldExact(key []byte) int {
	switch string(key) { // compiler-optimized, no allocation
	case "t_us":
		return fT
	case "kind":
		return fKind
	case "dev":
		return fDev
	case "addr":
		return fAddr
	case "size":
		return fSize
	case "dur_us":
		return fDur
	}
	return fUnknown
}

// intern returns a string for b, reusing a previously built string with the
// same bytes. Event kinds and device names are tiny fixed vocabularies, so
// after warm-up no decode allocates for them.
func (d *Decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.strs[string(b)]; ok { // map lookup on []byte key: no alloc
		return s
	}
	s := string(b)
	if d.strs == nil {
		d.strs = make(map[string]string, 16)
	}
	if len(d.strs) < maxInternStrings {
		d.strs[s] = s
	}
	return s
}

// scanEvent parses one NDJSON line into ev. ok=false means "not fast-path
// parseable" — the line may still be valid JSON for the fallback decoder.
func (d *Decoder) scanEvent(b []byte) (ev obs.Event, ok bool) {
	i := skipWS(b, 0)
	if i >= len(b) || b[i] != '{' {
		return ev, false
	}
	i = skipWS(b, i+1)
	if i < len(b) && b[i] == '}' {
		return ev, skipWS(b, i+1) == len(b)
	}
	for {
		key, j, ok := scanSimpleString(b, i)
		if !ok {
			return obs.Event{}, false
		}
		i = skipWS(b, j)
		if i >= len(b) || b[i] != ':' {
			return obs.Event{}, false
		}
		i = skipWS(b, i+1)
		if i, ok = d.scanMember(b, i, key, &ev); !ok {
			return obs.Event{}, false
		}
		i = skipWS(b, i)
		if i >= len(b) {
			return obs.Event{}, false
		}
		if b[i] == '}' {
			if skipWS(b, i+1) != len(b) {
				return obs.Event{}, false
			}
			return ev, true
		}
		if b[i] != ',' {
			return obs.Event{}, false
		}
		i = skipWS(b, i+1)
	}
}

// scanMember consumes one member's value, storing it into the matching
// event field or validating and skipping it for unknown keys. A JSON null
// leaves the field untouched, exactly as encoding/json does.
func (d *Decoder) scanMember(b []byte, i int, key []byte, ev *obs.Event) (int, bool) {
	switch fieldOf(key) {
	case fT:
		return scanIntField(b, i, &ev.T)
	case fAddr:
		return scanIntField(b, i, &ev.Addr)
	case fSize:
		return scanIntField(b, i, &ev.Size)
	case fDur:
		return scanIntField(b, i, &ev.Dur)
	case fKind:
		return d.scanStringField(b, i, &ev.Kind)
	case fDev:
		return d.scanStringField(b, i, &ev.Dev)
	default:
		return skipValue(b, i, 0)
	}
}

func scanIntField(b []byte, i int, dst *int64) (int, bool) {
	if isNull(b, i) {
		return i + 4, true
	}
	v, end, ok := scanInt(b, i)
	if !ok {
		return i, false
	}
	*dst = v
	return end, true
}

func (d *Decoder) scanStringField(b []byte, i int, dst *string) (int, bool) {
	if isNull(b, i) {
		return i + 4, true
	}
	s, end, ok := scanSimpleString(b, i)
	if !ok {
		return i, false
	}
	*dst = d.intern(s)
	return end, true
}

// skipWS advances past JSON whitespace (the framing already consumed any
// newline, but interior \r and \n are still legal whitespace).
func skipWS(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\r', '\n':
			i++
		default:
			return i
		}
	}
	return i
}

func isNull(b []byte, i int) bool {
	return i+4 <= len(b) && string(b[i:i+4]) == "null"
}

// scanSimpleString scans a quoted string containing only printable ASCII
// and no escapes, returning its content. Anything richer (escapes,
// non-ASCII, control bytes) is out of the fast grammar: encoding/json's
// unquoting — escape decoding and invalid-UTF-8 replacement — is exactly
// what we refuse to reimplement.
func scanSimpleString(b []byte, i int) (s []byte, end int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, i, false
	}
	j := i + 1
	for j < len(b) {
		c := b[j]
		if c == '"' {
			return b[i+1 : j], j + 1, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, i, false
		}
		j++
	}
	return nil, i, false
}

// scanInt parses a JSON integer literal the way encoding/json decodes into
// an int64: strict number grammar, no fraction or exponent, no leading
// zeros, and range-checked. ok=false for anything else (the fallback path
// then reports encoding/json's own error).
func scanInt(b []byte, i int) (v int64, end int, ok bool) {
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	if i >= len(b) || b[i] < '0' || b[i] > '9' {
		return 0, i, false
	}
	var n uint64
	start := i
	if b[i] == '0' {
		i++
	} else {
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			d := uint64(b[i] - '0')
			if n > (math.MaxUint64-d)/10 {
				return 0, i, false // overflows uint64, certainly int64
			}
			n = n*10 + d
			i++
		}
	}
	if i == start {
		return 0, i, false
	}
	if i < len(b) {
		switch b[i] {
		case '.', 'e', 'E':
			return 0, i, false // valid JSON number, but not an int64
		case '0', '1', '2', '3', '4', '5', '6', '7', '8', '9':
			return 0, i, false // leading zero: invalid JSON number
		}
	}
	if neg {
		if n > 1<<63 {
			return 0, i, false
		}
		return -int64(n), i, true
	}
	if n > math.MaxInt64 {
		return 0, i, false
	}
	return int64(n), i, true
}

// skipValue validates and skips one JSON value of any type — the unknown-
// field case. It must never accept input encoding/json would reject
// (that would make the fast path succeed where the fallback errors), so it
// applies the full JSON grammar; content it does not need to interpret
// (escaped or non-ASCII string bytes, float numbers) is allowed through.
func skipValue(b []byte, i, depth int) (end int, ok bool) {
	if depth > maxSkipDepth {
		return i, false
	}
	i = skipWS(b, i)
	if i >= len(b) {
		return i, false
	}
	switch c := b[i]; {
	case c == '"':
		return skipString(b, i)
	case c == '{':
		i = skipWS(b, i+1)
		if i < len(b) && b[i] == '}' {
			return i + 1, true
		}
		for {
			if i, ok = skipString(b, skipWS(b, i)); !ok {
				return i, false
			}
			i = skipWS(b, i)
			if i >= len(b) || b[i] != ':' {
				return i, false
			}
			if i, ok = skipValue(b, i+1, depth+1); !ok {
				return i, false
			}
			i = skipWS(b, i)
			if i >= len(b) {
				return i, false
			}
			if b[i] == '}' {
				return i + 1, true
			}
			if b[i] != ',' {
				return i, false
			}
			i++
		}
	case c == '[':
		i = skipWS(b, i+1)
		if i < len(b) && b[i] == ']' {
			return i + 1, true
		}
		for {
			if i, ok = skipValue(b, i, depth+1); !ok {
				return i, false
			}
			i = skipWS(b, i)
			if i >= len(b) {
				return i, false
			}
			if b[i] == ']' {
				return i + 1, true
			}
			if b[i] != ',' {
				return i, false
			}
			i++
		}
	case c == 't':
		return expectLit(b, i, "true")
	case c == 'f':
		return expectLit(b, i, "false")
	case c == 'n':
		return expectLit(b, i, "null")
	case c == '-' || (c >= '0' && c <= '9'):
		return skipNumber(b, i)
	default:
		return i, false
	}
}

func expectLit(b []byte, i int, lit string) (int, bool) {
	if i+len(lit) > len(b) || string(b[i:i+len(lit)]) != lit {
		return i, false
	}
	return i + len(lit), true
}

// skipString validates a quoted string for skipping: escape sequences must
// be well-formed (that is all encoding/json checks — even lone surrogates
// are accepted and replaced) and control bytes are forbidden, but non-ASCII
// bytes pass through since the content is discarded.
func skipString(b []byte, i int) (end int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return i, false
	}
	j := i + 1
	for j < len(b) {
		switch c := b[j]; {
		case c == '"':
			return j + 1, true
		case c == '\\':
			j++
			if j >= len(b) {
				return i, false
			}
			switch b[j] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				j++
			case 'u':
				if j+4 >= len(b) {
					return i, false
				}
				for k := 1; k <= 4; k++ {
					if !isHex(b[j+k]) {
						return i, false
					}
				}
				j += 5
			default:
				return i, false
			}
		case c < 0x20:
			return i, false
		default:
			j++
		}
	}
	return i, false
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// skipNumber validates a full JSON number (integer, fraction, exponent).
func skipNumber(b []byte, i int) (end int, ok bool) {
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i >= len(b):
		return i, false
	case b[i] == '0':
		i++
	case b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return i, false
	}
	if i < len(b) && b[i] == '.' {
		i++
		j := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if i == j {
			return i, false
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		j := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if i == j {
			return i, false
		}
	}
	return i, true
}
