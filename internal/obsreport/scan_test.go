package obsreport

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
)

// scanOne runs just the fast scanner on one line.
func scanOne(line string) (obs.Event, bool) {
	d := &Decoder{}
	return d.scanEvent([]byte(line))
}

// jsonOne is the reference decode for one line.
func jsonOne(line string) (obs.Event, error) {
	var ej eventJSON
	if err := json.Unmarshal([]byte(line), &ej); err != nil {
		return obs.Event{}, err
	}
	return obs.Event{T: ej.T, Kind: ej.Kind, Dev: ej.Dev, Addr: ej.Addr, Size: ej.Size, Dur: ej.Dur}, nil
}

func TestScanEventFastPath(t *testing.T) {
	cases := []struct {
		line string
		want obs.Event
	}{
		{`{"t_us":123,"kind":"disk.spinup","dev":"cu140","dur_us":5000}`,
			obs.Event{T: 123, Kind: "disk.spinup", Dev: "cu140", Dur: 5000}},
		{`{"t_us":0,"kind":"cache.hit","size":4096}`,
			obs.Event{Kind: "cache.hit", Size: 4096}},
		{`{"kind":"x","addr":-7,"size":-0}`, obs.Event{Kind: "x", Addr: -7}},
		{`{ "t_us" : 1 , "kind" : "k" }`, obs.Event{T: 1, Kind: "k"}},
		{`{"kind":"k","future_field":{"a":[1,2.5,true,null],"b":"text"}}`,
			obs.Event{Kind: "k"}},
		{`{"kind":"k","t_us":null}`, obs.Event{Kind: "k"}},
		// Duplicate keys: last value wins, as with encoding/json.
		{`{"kind":"a","kind":"b"}`, obs.Event{Kind: "b"}},
		// Case-insensitive key match, as with encoding/json.
		{`{"KIND":"k","T_US":9,"Dur_Us":2}`, obs.Event{T: 9, Kind: "k", Dur: 2}},
		{`{}`, obs.Event{}},
		{`{"t_us":9223372036854775807,"kind":"k"}`, obs.Event{T: math.MaxInt64, Kind: "k"}},
		{`{"t_us":-9223372036854775808,"kind":"k"}`, obs.Event{T: math.MinInt64, Kind: "k"}},
	}
	for _, c := range cases {
		got, ok := scanOne(c.line)
		if !ok {
			t.Errorf("%s: fast scanner bailed, want success", c.line)
			continue
		}
		if got != c.want {
			t.Errorf("%s:\n got %+v\nwant %+v", c.line, got, c.want)
		}
		ref, err := jsonOne(c.line)
		if err != nil {
			t.Errorf("%s: reference decode failed: %v", c.line, err)
		} else if got != ref {
			t.Errorf("%s: fast %+v != reference %+v", c.line, got, ref)
		}
	}
}

// Lines the fast grammar must refuse — some are valid JSON the fallback
// accepts, others are malformed; either way the scanner may not guess.
func TestScanEventBails(t *testing.T) {
	cases := []string{
		`{"kind":"a\u0041"}`,                       // escape in captured string
		`{"dev":"caf\xc3\xa9"}`,                    // non-ASCII in captured string
		`{"t_us":1.5,"kind":"k"}`,                  // float in int field
		`{"t_us":1e3,"kind":"k"}`,                  // exponent in int field
		`{"t_us":01,"kind":"k"}`,                   // leading zero
		`{"t_us":18446744073709551616,"kind":"k"}`, // overflow
		`{"t_us":9223372036854775808,"kind":"k"}`,  // int64 overflow by one
		`{"kind":"k"} trailing`,                    // trailing garbage
		`{"kind":"k"`,                              // truncated
		`{"kind":123}`,                             // wrong type
		`[1,2,3]`,                                  // not an object
		`{"kind":"k","x":nul}`,                     // bad literal
		`{"kind":"k","x":"\q"}`,                    // bad escape in skipped string
		`{"kind":"k","x":"\u12g4"}`,                // bad \u escape in skipped string
		"{\"kind\":\"k\",\"x\":\"a\x01b\"}",        // control byte in skipped string
		`{"a\u0062c":1,"kind":"k"}`,                // escaped key
	}
	for _, c := range cases {
		if ev, ok := scanOne(c); ok {
			// If the scanner accepted it, encoding/json must agree exactly —
			// acceptance is only a bug when the reference disagrees.
			ref, err := jsonOne(c)
			if err != nil || ev != ref {
				t.Errorf("%q: fast scanner accepted (%+v) but reference gave (%+v, %v)", c, ev, ref, err)
			}
		}
	}
}

func TestScanInt(t *testing.T) {
	cases := []struct {
		in   string
		v    int64
		ok   bool
		rest string
	}{
		{"0", 0, true, ""},
		{"-0", 0, true, ""},
		{"42,", 42, true, ","},
		{"9223372036854775807}", math.MaxInt64, true, "}"},
		{"-9223372036854775808}", math.MinInt64, true, "}"},
		{"9223372036854775808", 0, false, ""},
		{"-9223372036854775809", 0, false, ""},
		{"1.5", 0, false, ""},
		{"2e8", 0, false, ""},
		{"007", 0, false, ""},
		{"-", 0, false, ""},
		{"+1", 0, false, ""},
		{"", 0, false, ""},
	}
	for _, c := range cases {
		v, end, ok := scanInt([]byte(c.in), 0)
		if ok != c.ok {
			t.Errorf("scanInt(%q): ok=%v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if v != c.v || c.in[end:] != c.rest {
			t.Errorf("scanInt(%q) = %d rest %q, want %d rest %q", c.in, v, c.in[end:], c.v, c.rest)
		}
	}
}

func TestSkipValue(t *testing.T) {
	good := []string{
		`"plain"`, `"esc \" \\ \n \u00e9"`, "\"caf\xc3\xa9 raw utf8\"",
		`0`, `-12.75`, `6.02e23`, `1E-9`, `true`, `false`, `null`,
		`[]`, `[1,[2,[3]],{"k":"v"}]`, `{}`, `{"a":{"b":{"c":[null]}}}`,
	}
	for _, c := range good {
		end, ok := skipValue([]byte(c), 0, 0)
		if !ok || end != len(c) {
			t.Errorf("skipValue(%q): end=%d ok=%v, want full consume", c, end, ok)
		}
	}
	bad := []string{
		`"unterminated`, `[1,2`, `{"a":}`, `{"a" 1}`, `tru`, `nulll`[:3],
		`01`, `1.`, `1e`, `.5`, `--1`, `[1 2]`, `{1:2}`, "\"a\x02b\"",
	}
	for _, c := range bad {
		if end, ok := skipValue([]byte(c), 0, 0); ok && end == len(c) {
			t.Errorf("skipValue(%q): accepted fully, want reject or partial", c)
		}
	}
	// Deep nesting beyond the cap falls back rather than recursing away.
	deep := strings.Repeat("[", 100) + strings.Repeat("]", 100)
	if _, ok := skipValue([]byte(deep), 0, 0); ok {
		t.Error("skipValue accepted nesting beyond maxSkipDepth")
	}
}

func TestFieldOf(t *testing.T) {
	cases := map[string]int{
		"t_us": fT, "kind": fKind, "dev": fDev, "addr": fAddr,
		"size": fSize, "dur_us": fDur,
		"KIND": fKind, "T_Us": fT, "DUR_US": fDur,
		"t-us": fUnknown, "kinds": fUnknown, "": fUnknown, "unknown": fUnknown,
		"t_usx": fUnknown, "dur_us2": fUnknown,
	}
	for k, want := range cases {
		if got := fieldOf([]byte(k)); got != want {
			t.Errorf("fieldOf(%q) = %d, want %d", k, got, want)
		}
	}
}

// The interning table returns identical string headers for repeated names
// and stays bounded under unbounded cardinality.
func TestIntern(t *testing.T) {
	d := &Decoder{}
	a := d.intern([]byte("cu140"))
	b := d.intern([]byte("cu140"))
	if a != b || a != "cu140" {
		t.Fatalf("intern: %q, %q", a, b)
	}
	if d.intern(nil) != "" {
		t.Error("intern(empty) != \"\"")
	}
	for i := 0; i < 2*maxInternStrings; i++ {
		d.intern([]byte(strings.Repeat("x", 1+i%40) + string(rune('a'+i%26))))
	}
	if len(d.strs) > maxInternStrings {
		t.Errorf("intern table grew to %d entries, cap is %d", len(d.strs), maxInternStrings)
	}
}

// The decoder produces identical results with the fast path on and off for
// a canonical emitter stream — the cheap always-on cousin of the
// differential fuzz target.
func TestDecoderFastMatchesJSON(t *testing.T) {
	data := benchStream(500)
	fast, err := ReadEvents(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(data))
	d.noFast = true
	var ref []obs.Event
	for {
		e, err := d.Next()
		if err != nil {
			break
		}
		ref = append(ref, e)
	}
	if len(fast) != len(ref) {
		t.Fatalf("fast %d events, reference %d", len(fast), len(ref))
	}
	for i := range fast {
		if fast[i] != ref[i] {
			t.Fatalf("event %d: fast %+v != reference %+v", i, fast[i], ref[i])
		}
	}
}
