package obsreport

import (
	"math"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/stats"
)

// Hist is obsreport's bucketed distribution: the same fixed log-spaced
// bucket layout as the simulator's histograms, plus exact N, sum, and
// min/max tracked alongside so the quantile estimator can interpolate
// within a bucket and clamp to the observed range.
//
// The simulator's own histograms report quantiles as bucket upper bounds —
// a conservative "p99 ≤ x" answer. For reports we want point estimates:
// Quantile interpolates geometrically inside the winning bucket (the right
// interpolation for log-spaced edges) and so lands within one bucket ratio
// of the true value instead of always on the pessimistic edge.
type Hist struct {
	Bounds   []float64 `json:"bounds"`
	Counts   []int64   `json:"counts"`
	Overflow int64     `json:"overflow"`
	N        int64     `json:"n"`
	Sum      float64   `json:"sum"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	// ExtremesKnown reports whether Min/Max are exact observed extremes
	// (sample-fed via Add, or adapted from a snapshot that tracks them)
	// rather than the zero placeholders of a width-only histogram
	// (FromStats). An explicit flag, not inferred from Max > 0: a
	// distribution whose samples are legitimately all zero has exact
	// extremes too.
	ExtremesKnown bool `json:"extremes_known,omitempty"`
}

// NewHist builds an empty histogram over ascending bucket bounds.
func NewHist(bounds []float64) *Hist {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obsreport: histogram bounds must be strictly ascending")
		}
	}
	return &Hist{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int64, len(bounds)),
	}
}

// latencyBounds covers 1 µs to ~1000 s in milliseconds at five buckets per
// decade — the layout shared with stats.NewLatencyHistogram.
func latencyBounds() []float64 {
	return obs.LogBuckets(1e-3, 1e6)
}

// Add records one sample.
func (h *Hist) Add(x float64) {
	if h.N == 0 || x < h.Min {
		h.Min = x
	}
	if h.N == 0 || x > h.Max {
		h.Max = x
	}
	h.ExtremesKnown = true
	h.N++
	h.Sum += x
	for i, b := range h.Bounds {
		if x <= b {
			h.Counts[i]++
			return
		}
	}
	h.Overflow++
}

// Mean returns the exact sample mean, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1). The winning bucket is
// found by cumulative rank; the estimate interpolates geometrically between
// the bucket's edges by the rank's position within it, then clamps to the
// observed [Min, Max]. Overflow-bucket quantiles return Max when the
// extremes are known (built via Add or FromSnapshot), +Inf when they are
// not (FromStats: width-only source). Returns 0 with no samples.
func (h *Hist) Quantile(q float64) float64 {
	total := h.total()
	if total == 0 {
		return 0
	}
	// The extreme quantiles are the observed extremes, exactly, when known.
	if h.ExtremesKnown {
		if q <= 0 {
			return h.Min
		}
		if q >= 1 {
			return h.Max
		}
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if seen+c >= target {
			frac := (float64(target-seen) - 0.5) / float64(c)
			return h.clamp(interpolate(h.lower(i), h.Bounds[i], frac))
		}
		seen += c
	}
	// Overflow bucket.
	if h.ExtremesKnown {
		return h.Max
	}
	return math.Inf(1)
}

// total returns the number of recorded samples (bucket counts + overflow,
// which equals N when built via Add).
func (h *Hist) total() int64 {
	t := h.Overflow
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// lower returns the lower edge of bucket i: the previous bound, or for the
// first bucket one bucket-ratio below it (log-spaced layouts have no zero
// edge to interpolate toward).
func (h *Hist) lower(i int) float64 {
	if i > 0 {
		return h.Bounds[i-1]
	}
	if len(h.Bounds) > 1 && h.Bounds[0] > 0 {
		return h.Bounds[0] * h.Bounds[0] / h.Bounds[1]
	}
	return 0
}

// clamp limits an estimate to the observed sample range when it is known
// (ExtremesKnown stays false for stats-built histograms).
func (h *Hist) clamp(v float64) float64 {
	if !h.ExtremesKnown {
		return v
	}
	if v < h.Min {
		return h.Min
	}
	if v > h.Max {
		return h.Max
	}
	return v
}

// interpolate places frac ∈ [0,1] between lo and hi, geometrically when
// both edges are positive (log-spaced buckets), linearly otherwise.
func interpolate(lo, hi, frac float64) float64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	if lo > 0 && hi > 0 {
		return lo * math.Pow(hi/lo, frac)
	}
	return lo + (hi-lo)*frac
}

// FromSnapshot adapts an obs registry histogram snapshot to the estimator.
// Registry histograms track exact extremes, so the adapted Hist clamps its
// estimates to the observed [Min, Max] just like one built via Add.
func FromSnapshot(s obs.HistogramSnapshot) *Hist {
	h := &Hist{
		Bounds:   append([]float64(nil), s.Bounds...),
		Counts:   append([]int64(nil), s.Counts...),
		Overflow: s.Overflow,
		Sum:      s.Sum,
		Min:      s.Min,
		Max:      s.Max,
	}
	for _, c := range h.Counts {
		h.N += c
	}
	h.N += h.Overflow
	h.ExtremesKnown = h.N > 0
	return h
}

// FromStats adapts one of the simulator's latency histograms (e.g.
// core.Result.ReadHist) to the estimator.
func FromStats(s *stats.Histogram) *Hist {
	if s == nil {
		return NewHist(latencyBounds())
	}
	h := &Hist{
		Bounds:   append([]float64(nil), s.Bounds...),
		Counts:   append([]int64(nil), s.Counts...),
		Overflow: s.Overflow,
	}
	for _, c := range h.Counts {
		h.N += c
	}
	h.N += h.Overflow
	return h
}
