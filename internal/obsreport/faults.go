package obsreport

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/plot"
)

// DeviceFaults is one device's share of the injected faults.
type DeviceFaults struct {
	Dev         string `json:"dev"`
	ReadFaults  int64  `json:"read_faults"`
	WriteFaults int64  `json:"write_faults"`
	EraseFaults int64  `json:"erase_faults"`
	Retries     int64  `json:"retries"`
	BackoffUs   int64  `json:"backoff_us"`
	Remaps      int64  `json:"remaps"`
	// SparesExhausted counts wear-out deaths past the device's spare pool.
	SparesExhausted int64 `json:"spares_exhausted"`
	// Reclaims counts retired units pressed back into service under
	// capacity pressure.
	Reclaims       int64 `json:"reclaims"`
	ReplayedBlocks int64 `json:"replayed_blocks"`
	// InjectionTimesUs are the simulated times of this device's injected
	// faults, in stream order — the raw series behind the cumulative chart.
	InjectionTimesUs []int64 `json:"injection_times_us"`
}

// FaultsReport summarizes a run's fault injection from fault.injected,
// retry.attempt, remap, reclaim, power.fail, and recovery.replayed
// events: how the
// injected errors distributed over devices and op classes, what the retries
// cost in backoff, and when power failed.
type FaultsReport struct {
	Devices  []DeviceFaults `json:"devices"`
	Injected int64          `json:"injected"`
	Retries  int64          `json:"retries"`
	// BackoffUs is the cumulative simulated backoff delay.
	BackoffUs int64 `json:"backoff_us"`
	// BackoffHist is the distribution of individual backoff delays in ms.
	BackoffHist     *Hist `json:"backoff_hist"`
	Remaps          int64 `json:"remaps"`
	SparesExhausted int64 `json:"spares_exhausted"`
	Reclaims        int64 `json:"reclaims"`
	// PowerFailures counts injected power failures; PowerFailUs carries the
	// individual failure times (dropped by Merge, which keeps only the
	// count).
	PowerFailures  int64   `json:"power_failures"`
	PowerFailUs    []int64 `json:"power_fail_us"`
	ReplayedBlocks int64   `json:"replayed_blocks"`
}

// backoffBounds covers retry backoff delays from 1 µs to 1 s, in ms.
func backoffBounds() []float64 { return obs.LogBuckets(1e-3, 1e3) }

// FaultsBuilder accumulates fault-injection activity incrementally.
type FaultsBuilder struct {
	r     *FaultsReport
	byDev map[string]*DeviceFaults
}

// NewFaultsBuilder returns an empty faults builder.
func NewFaultsBuilder() *FaultsBuilder {
	return &FaultsBuilder{
		r:     &FaultsReport{BackoffHist: NewHist(backoffBounds())},
		byDev: make(map[string]*DeviceFaults),
	}
}

func (b *FaultsBuilder) get(dev string) *DeviceFaults {
	d, ok := b.byDev[dev]
	if !ok {
		d = &DeviceFaults{Dev: dev}
		b.byDev[dev] = d
	}
	return d
}

// Observe implements Reporter. Fault events carry the op class in Addr
// (0 = read, 1 = write, 2 = erase); remap events carry the remaining spare
// count in Size, with -1 marking a death past the spare pool.
func (b *FaultsBuilder) Observe(e obs.Event) {
	switch e.Kind {
	case obs.EvFaultInjected:
		d := b.get(e.Dev)
		switch e.Addr {
		case 0:
			d.ReadFaults++
		case 1:
			d.WriteFaults++
		default:
			d.EraseFaults++
		}
		d.InjectionTimesUs = append(d.InjectionTimesUs, e.T)
		b.r.Injected++
	case obs.EvRetryAttempt:
		d := b.get(e.Dev)
		d.Retries++
		d.BackoffUs += e.Dur
		b.r.Retries++
		b.r.BackoffUs += e.Dur
		b.r.BackoffHist.Add(float64(e.Dur) / 1e3)
	case obs.EvRemap:
		d := b.get(e.Dev)
		if e.Size < 0 {
			d.SparesExhausted++
			b.r.SparesExhausted++
		} else {
			d.Remaps++
			b.r.Remaps++
		}
	case obs.EvReclaim:
		d := b.get(e.Dev)
		d.Reclaims++
		b.r.Reclaims++
	case obs.EvPowerFail:
		b.r.PowerFailures++
		b.r.PowerFailUs = append(b.r.PowerFailUs, e.T)
	case obs.EvRecoveryReplayed:
		b.get(e.Dev).ReplayedBlocks += e.Size
		b.r.ReplayedBlocks += e.Size
	}
}

// Finish returns the report with devices in sorted name order.
func (b *FaultsBuilder) Finish() *FaultsReport {
	devs := make([]string, 0, len(b.byDev))
	for d := range b.byDev {
		devs = append(devs, d)
	}
	sort.Strings(devs)
	b.r.Devices = b.r.Devices[:0]
	for _, d := range devs {
		b.r.Devices = append(b.r.Devices, *b.byDev[d])
	}
	return b.r
}

// Faults derives the fault-injection report from the stream. The report is
// zero-valued for fault-free runs (no fault.* events).
func Faults(events []obs.Event) *FaultsReport {
	b := NewFaultsBuilder()
	observeAll(b, events)
	return b.Finish()
}

// WriteFaults renders the faults report.
func WriteFaults(w io.Writer, r *FaultsReport, f Format) error {
	switch f {
	case JSON:
		return writeJSON(w, r)
	case SVG:
		return FaultsChart(r).Render(w)
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"dev", "read_faults", "write_faults", "erase_faults",
			"retries", "backoff_us", "remaps", "spares_exhausted", "reclaims", "replayed_blocks"}); err != nil {
			return err
		}
		for _, d := range r.Devices {
			cw.Write([]string{d.Dev, itoa(d.ReadFaults), itoa(d.WriteFaults), itoa(d.EraseFaults),
				itoa(d.Retries), itoa(d.BackoffUs), itoa(d.Remaps), itoa(d.SparesExhausted),
				itoa(d.Reclaims), itoa(d.ReplayedBlocks)})
		}
		cw.Flush()
		return cw.Error()
	default:
		if r.Injected == 0 && len(r.PowerFailUs) == 0 && r.Remaps+r.SparesExhausted == 0 {
			fmt.Fprintln(w, "no fault events in stream (run storagesim with -faults)")
			return nil
		}
		fmt.Fprintf(w, "%d faults injected, %d retries, %.1f ms total backoff\n",
			r.Injected, r.Retries, float64(r.BackoffUs)/1e3)
		if r.Remaps+r.SparesExhausted > 0 {
			fmt.Fprintf(w, "%d erase units remapped to spares, %d deaths past the spare pool\n",
				r.Remaps, r.SparesExhausted)
		}
		if r.Reclaims > 0 {
			fmt.Fprintf(w, "%d retired units reclaimed under capacity pressure\n", r.Reclaims)
		}
		if len(r.PowerFailUs) > 0 {
			fmt.Fprintf(w, "%d power failures at t =", len(r.PowerFailUs))
			for _, t := range r.PowerFailUs {
				fmt.Fprintf(w, " %.1f s", float64(t)/1e6)
			}
			fmt.Fprintf(w, "; %d blocks replayed from battery-backed SRAM\n", r.ReplayedBlocks)
		}
		if len(r.Devices) > 0 {
			fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %12s %7s %10s %9s\n",
				"dev", "read", "write", "erase", "retries", "backoff ms", "remaps", "exhausted", "replayed")
			for _, d := range r.Devices {
				name := d.Dev
				if name == "" {
					name = "(unnamed)"
				}
				fmt.Fprintf(w, "%-10s %8d %8d %8d %8d %12.1f %7d %10d %9d\n",
					name, d.ReadFaults, d.WriteFaults, d.EraseFaults, d.Retries,
					float64(d.BackoffUs)/1e3, d.Remaps, d.SparesExhausted, d.ReplayedBlocks)
			}
		}
		if r.BackoffHist.N > 0 {
			fmt.Fprintf(w, "backoff ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
				r.BackoffHist.Quantile(0.50), r.BackoffHist.Quantile(0.90),
				r.BackoffHist.Quantile(0.99), r.BackoffHist.Max)
			writeHistText(w, "", r.BackoffHist, "ms")
		}
		return nil
	}
}

// FaultsChart renders cumulative injected faults over simulated time, one
// line per device, with vertical markers at the injected power failures.
func FaultsChart(r *FaultsReport) *plot.Chart {
	c := &plot.Chart{
		Title:  "Injected faults over time",
		XLabel: "simulated time (s)",
		YLabel: "cumulative faults",
	}
	var peak float64
	for _, d := range r.Devices {
		if len(d.InjectionTimesUs) == 0 {
			continue
		}
		name := d.Dev
		if name == "" {
			name = "(unnamed)"
		}
		pts := make([]plot.Point, 0, len(d.InjectionTimesUs)+1)
		pts = append(pts, plot.Point{X: 0, Y: 0})
		for i, t := range d.InjectionTimesUs {
			pts = append(pts, plot.Point{X: float64(t) / 1e6, Y: float64(i + 1)})
		}
		if n := float64(len(d.InjectionTimesUs)); n > peak {
			peak = n
		}
		c.Series = append(c.Series, plot.Series{Name: name, Step: true, Points: pts})
	}
	if peak == 0 {
		peak = 1
	}
	for i, t := range r.PowerFailUs {
		x := float64(t) / 1e6
		c.Series = append(c.Series, plot.Series{
			Name:   fmt.Sprintf("power.fail %d", i+1),
			Points: []plot.Point{{X: x, Y: 0}, {X: x, Y: peak}},
		})
	}
	return c
}

// DiffFaults compares fault-injection totals between two runs.
func DiffFaults(a, b *FaultsReport) []DeltaRow {
	return []DeltaRow{
		row("injected", float64(a.Injected), float64(b.Injected)),
		row("retries", float64(a.Retries), float64(b.Retries)),
		row("backoff_ms", float64(a.BackoffUs)/1e3, float64(b.BackoffUs)/1e3),
		row("remaps", float64(a.Remaps), float64(b.Remaps)),
		row("spares_exhausted", float64(a.SparesExhausted), float64(b.SparesExhausted)),
		row("reclaims", float64(a.Reclaims), float64(b.Reclaims)),
		row("power_failures", float64(len(a.PowerFailUs)), float64(len(b.PowerFailUs))),
		row("replayed_blocks", float64(a.ReplayedBlocks), float64(b.ReplayedBlocks)),
	}
}
