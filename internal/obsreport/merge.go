package obsreport

// Mergeable builders: every report builder can fold another builder's
// accumulated state into itself, which is what lets a fleet of simulated
// devices aggregate at constant memory — each run feeds its own private
// builder set, and finished shards merge into one fleet-level set as they
// complete, in run order, without retaining any per-run event data.
//
// Merging is exact for counts, histogram buckets, and extremes. Float sums
// are added shard-by-shard, so a deterministic merged result additionally
// requires a deterministic merge order; internal/fleet merges shards in run
// index order regardless of worker count for exactly this reason.
//
// Unbounded per-run detail (timeline sleep intervals, fault injection
// timestamps, energy sample series) is deliberately NOT merged: a merged
// builder carries distributions and totals only, so fleet memory stays
// constant in the number of runs. The per-run builders keep that detail for
// single-run reports.

// Merge folds o's samples into h. Both histograms must share the same
// bucket layout (they do when built by the same constructor); mismatched
// bounds are a programming error and panic like NewHist does.
//
// Exact observed extremes survive a merge only when both sides know theirs;
// merging in a width-only histogram (FromStats) yields a width-only result,
// matching Quantile's "extremes unknown" behavior.
func (h *Hist) Merge(o *Hist) {
	if o == nil || h == o {
		return
	}
	if len(h.Bounds) != len(o.Bounds) {
		panic("obsreport: merging histograms with different bucket layouts")
	}
	for i, b := range h.Bounds {
		if o.Bounds[i] != b {
			panic("obsreport: merging histograms with different bucket layouts")
		}
	}
	if o.N == 0 {
		return
	}
	if h.N == 0 {
		copy(h.Counts, o.Counts)
		h.Overflow = o.Overflow
		h.N = o.N
		h.Sum = o.Sum
		h.Min = o.Min
		h.Max = o.Max
		h.ExtremesKnown = o.ExtremesKnown
		return
	}
	known := h.ExtremesKnown && o.ExtremesKnown
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Overflow += o.Overflow
	h.N += o.N
	h.Sum += o.Sum
	if known {
		if o.Min < h.Min {
			h.Min = o.Min
		}
		if o.Max > h.Max {
			h.Max = o.Max
		}
	} else {
		h.Min, h.Max = 0, 0
		h.ExtremesKnown = false
	}
}

// Merge folds o's per-device spin history into b: spin counts, completed
// sleep totals, and the sleep-duration distributions. The per-interval
// Sleeps lists and the trailing OpenSleepUs are per-run detail and are not
// merged — overlapping runs have no single interval timeline — so a merged
// builder renders as distributions (see SleepChart), not as square waves.
func (b *TimelineBuilder) Merge(o *TimelineBuilder) {
	if o == nil || b == o {
		return
	}
	for dev, otl := range o.byDev {
		tl := b.get(dev)
		tl.SpinUps += otl.SpinUps
		tl.SpinDowns += otl.SpinDowns
		tl.TotalSleepUs += otl.TotalSleepUs
		tl.SleepHist.Merge(otl.SleepHist)
	}
}

// Merge folds o's per-kind duration distributions into b.
func (b *LatencyBuilder) Merge(o *LatencyBuilder) {
	if o == nil || b == o {
		return
	}
	for kind, oh := range o.hists {
		h, ok := b.hists[kind]
		if !ok {
			h = NewHist(latencyBounds())
			b.hists[kind] = h
		}
		h.Merge(oh)
	}
}

// Merge folds o's per-segment erase counts into b by summing final counts:
// the merged report answers "how many erasures did segment i absorb across
// the fleet", so replicas of one device stack their wear.
func (b *WearBuilder) Merge(o *WearBuilder) {
	if o == nil || b == o {
		return
	}
	for seg, c := range o.counts {
		b.counts[seg] += c
	}
	b.total += o.total
}

// Merge folds o's cleaner work into b.
func (b *CleaningBuilder) Merge(o *CleaningBuilder) {
	if o == nil || b == o {
		return
	}
	b.r.Cleans += o.r.Cleans
	b.r.CopiedBlocks += o.r.CopiedBlocks
	b.r.Stalls += o.r.Stalls
	b.r.TotalCleanUs += o.r.TotalCleanUs
	b.r.LivePerClean.Merge(o.r.LivePerClean)
}

// Merge folds o's fault activity into b: totals, per-device counters, and
// the backoff distribution. The raw injection and power-fail timestamp
// series are per-run detail and are not merged; the merged PowerFailures
// count still reflects every failure.
func (b *FaultsBuilder) Merge(o *FaultsBuilder) {
	if o == nil || b == o {
		return
	}
	for dev, od := range o.byDev {
		d := b.get(dev)
		d.ReadFaults += od.ReadFaults
		d.WriteFaults += od.WriteFaults
		d.EraseFaults += od.EraseFaults
		d.Retries += od.Retries
		d.BackoffUs += od.BackoffUs
		d.Remaps += od.Remaps
		d.SparesExhausted += od.SparesExhausted
		d.Reclaims += od.Reclaims
		d.ReplayedBlocks += od.ReplayedBlocks
	}
	b.r.Injected += o.r.Injected
	b.r.Retries += o.r.Retries
	b.r.BackoffUs += o.r.BackoffUs
	b.r.BackoffHist.Merge(o.r.BackoffHist)
	b.r.Remaps += o.r.Remaps
	b.r.SparesExhausted += o.r.SparesExhausted
	b.r.Reclaims += o.r.Reclaims
	b.r.PowerFailures += o.r.PowerFailures
	b.r.ReplayedBlocks += o.r.ReplayedBlocks
}
