package obsreport

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
)

// arrayStream is a hand-written degraded-mode stream: member m0 of a
// mirror dies on schedule and is rebuilt, member m1 later dies of erase
// wear-out, latent faults surface on both members, and one cleaning job is
// carried across a power failure.
func arrayStream() []obs.Event {
	return []obs.Event{
		{T: 1_000_000, Kind: obs.EvFaultLatent, Dev: "fc#0", Addr: 40, Size: 2, Dur: 600},
		{T: 2_000_000, Kind: obs.EvDeviceDie, Dev: "fc#0", Addr: 0, Size: 0},
		{T: 2_000_000, Kind: obs.EvArrayDegraded, Dev: "mirror", Addr: 0, Size: 1},
		{T: 2_050_000, Kind: obs.EvArrayRebuild, Dev: "mirror", Addr: 0, Size: 128, Dur: 50_000},

		{T: 3_000_000, Kind: obs.EvFaultLatent, Dev: "fc#1", Addr: 7, Size: 1, Dur: 300},
		{T: 4_000_000, Kind: obs.EvDeviceDie, Dev: "fc#1", Addr: 1, Size: 1},

		{T: 5_000_000, Kind: obs.EvPowerFail},
		{T: 5_000_000, Kind: obs.EvCleaningBacklog, Dev: "fc#1", Addr: 3, Size: 14, Dur: 9_000},
	}
}

func TestArrayReport(t *testing.T) {
	r := Array(arrayStream())
	if r.Deaths != 2 || r.EraseDeaths != 1 || r.Degradations != 1 || r.Rebuilds != 1 {
		t.Fatalf("totals %+v", r)
	}
	if r.RebuildBlocks != 128 || r.RebuildUs != 50_000 {
		t.Fatalf("rebuild totals %+v", r)
	}
	if r.LatentSurfaced != 3 || r.ScrubUs != 900 {
		t.Fatalf("latent totals %+v", r)
	}
	if r.Backlogs != 1 || r.BacklogBlocks != 14 || r.DrainUs != 9_000 {
		t.Fatalf("backlog totals %+v", r)
	}
	if len(r.DeathUs) != 2 || r.DeathUs[0] != 2_000_000 || r.DeathUs[1] != 4_000_000 {
		t.Fatalf("death times %v", r.DeathUs)
	}
	if len(r.RebuildDoneUs) != 1 || r.RebuildDoneUs[0] != 2_050_000 {
		t.Fatalf("rebuild times %v", r.RebuildDoneUs)
	}
	if len(r.Devices) != 3 {
		t.Fatalf("%d devices, want 3 (fc#0, fc#1, mirror)", len(r.Devices))
	}
	m0, m1, mir := r.Devices[0], r.Devices[1], r.Devices[2]
	if m0.Dev != "fc#0" || m0.Deaths != 1 || m0.EraseDeaths != 0 || m0.LatentSurfaced != 2 {
		t.Errorf("fc#0 %+v", m0)
	}
	if len(m0.LatentTimesUs) != 1 || m0.LatentTimesUs[0] != 1_000_000 {
		t.Errorf("fc#0 latent times %v", m0.LatentTimesUs)
	}
	if m1.Dev != "fc#1" || m1.Deaths != 1 || m1.EraseDeaths != 1 || m1.Backlogs != 1 || m1.DrainUs != 9_000 {
		t.Errorf("fc#1 %+v", m1)
	}
	if mir.Dev != "mirror" || mir.Degradations != 1 || mir.Rebuilds != 1 || mir.RebuildBlocks != 128 {
		t.Errorf("mirror %+v", mir)
	}
}

func TestArrayReportEmptyStream(t *testing.T) {
	r := Array(syntheticStream())
	if r.Deaths != 0 || len(r.Devices) != 0 || r.Backlogs != 0 {
		t.Fatalf("array-free stream produced %+v", r)
	}
	var buf bytes.Buffer
	if err := WriteArray(&buf, r, Text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no array or recovery events") {
		t.Errorf("empty-report text = %q", buf.String())
	}
}

func TestWriteArrayFormats(t *testing.T) {
	r := Array(arrayStream())

	var txt bytes.Buffer
	if err := WriteArray(&txt, r, Text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 device deaths", "1 from erase wear-out", "1 mirror degradations",
		"3 latent faults surfaced", "1 cleaning jobs carried", "fc#0", "fc#1", "mirror"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, txt.String())
		}
	}

	var csvBuf bytes.Buffer
	if err := WriteArray(&csvBuf, r, CSV); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 devices
		t.Fatalf("%d csv rows, want 4", len(rows))
	}
	if rows[1][0] != "fc#0" || rows[1][1] != "1" || rows[1][7] != "2" {
		t.Errorf("csv fc#0 row %v", rows[1])
	}

	var jsonBuf bytes.Buffer
	if err := WriteArray(&jsonBuf, r, JSON); err != nil {
		t.Fatal(err)
	}
	var back ArrayReport
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Deaths != r.Deaths || len(back.Devices) != len(r.Devices) {
		t.Errorf("json round-trip %+v", back)
	}

	var svg bytes.Buffer
	if err := WriteArray(&svg, r, SVG); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") || !strings.Contains(svg.String(), "device.die 1") {
		t.Error("svg output missing chart or death marker")
	}
}

func TestArrayChartSeries(t *testing.T) {
	c := ArrayChart(Array(arrayStream()))
	// Two devices with latent series + two death markers + one rebuild marker.
	if len(c.Series) != 5 {
		t.Fatalf("%d series, want 5", len(c.Series))
	}
	m0 := c.Series[0]
	if m0.Name != "fc#0" || !m0.Step {
		t.Errorf("first series %+v", m0)
	}
	last := m0.Points[len(m0.Points)-1]
	if last.Y != 1 {
		t.Errorf("fc#0 cumulative end %v, want 1", last)
	}
	marker := c.Series[2]
	if marker.Name != "device.die 1" || marker.Points[0].X != 2.0 || marker.Points[1].X != 2.0 {
		t.Errorf("death marker %v, want x=2s", marker.Points)
	}
}

func TestDiffArraySelfIsZero(t *testing.T) {
	r := Array(arrayStream())
	for _, d := range DiffArray(r, r) {
		if d.Delta != 0 {
			t.Errorf("self-diff %s = %g, want 0", d.Name, d.Delta)
		}
	}
	other := Array(arrayStream()[:4]) // first death + rebuild only
	rows := DiffArray(other, r)
	if rows[0].Delta != 1 { // deaths: 1 → 2
		t.Errorf("deaths delta %+v", rows[0])
	}
}

// TestArrayBuilderMerge pins Merge against observing the concatenated
// stream directly (timestamp series excepted — Merge drops them).
func TestArrayBuilderMerge(t *testing.T) {
	a, b := NewArrayBuilder(), NewArrayBuilder()
	events := arrayStream()
	for _, e := range events[:4] {
		a.Observe(e)
	}
	for _, e := range events[4:] {
		b.Observe(e)
	}
	a.Merge(b)
	r := a.Finish()
	want := Array(events)
	if r.Deaths != want.Deaths || r.Rebuilds != want.Rebuilds ||
		r.LatentSurfaced != want.LatentSurfaced || r.Backlogs != want.Backlogs ||
		r.DrainUs != want.DrainUs || len(r.Devices) != len(want.Devices) {
		t.Errorf("merged %+v, want %+v", r, want)
	}
}
