package obsreport

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
)

// Round trip: events emitted by the canonical NDJSON sink decode back to
// the identical slice.
func TestDecodeRoundTrip(t *testing.T) {
	events := []obs.Event{
		{T: 0, Kind: obs.EvDiskSpinDown, Dev: "cu140", Dur: 5_000_000},
		{T: 51_234_000, Kind: obs.EvCardClean, Dev: "flashcard", Addr: 17, Size: 98, Dur: 1_742_318},
		{T: 60_000_000, Kind: obs.EvCacheHit, Size: 4096},
		{T: 61_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 123_456_789},
	}
	var buf bytes.Buffer
	sink := obs.NewNDJSONSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := []string{
		`{"t_us":1,"kind":"disk.spinup"` + "\n", // truncated object
		`not json at all` + "\n",
		`{"t_us":"twelve","kind":"x"}` + "\n", // wrong type
		`{"t_us":1}` + "\n",                   // missing kind
	}
	for _, in := range cases {
		_, err := ReadEvents(strings.NewReader(in))
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Errorf("input %q: error %v, want *DecodeError", in, err)
			continue
		}
		if de.Line != 1 {
			t.Errorf("input %q: line %d, want 1", in, de.Line)
		}
	}
}

func TestDecodeErrorReportsLine(t *testing.T) {
	in := `{"t_us":1,"kind":"a"}` + "\n" + `{"t_us":2,"kind":"b"}` + "\n" + `broken` + "\n"
	events, err := ReadEvents(strings.NewReader(in))
	var de *DecodeError
	if !errors.As(err, &de) || de.Line != 3 {
		t.Fatalf("err %v, want DecodeError at line 3", err)
	}
	if len(events) != 2 {
		t.Fatalf("%d events decoded before the error, want 2", len(events))
	}
}

func TestDecodeLenient(t *testing.T) {
	in := `{"t_us":1,"kind":"a"}` + "\n" +
		`garbage` + "\n" +
		"\n" + // blank lines are fine, not "skipped"
		`{"t_us":3,"kind":"unknown.kind","addr":9}` + "\n" +
		`{"no_kind":true}` + "\n"
	events, skipped, err := ReadEventsLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped %d, want 2", skipped)
	}
	if len(events) != 2 || events[1].Kind != "unknown.kind" || events[1].Addr != 9 {
		t.Errorf("events %+v", events)
	}
}

func TestDecodeOversizedLine(t *testing.T) {
	long := strings.Repeat("x", maxLineBytes+1)
	_, err := ReadEvents(strings.NewReader(long))
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	// Lenient mode must also abort (framing is unrecoverable), not loop.
	_, _, err = ReadEventsLenient(strings.NewReader(long))
	if err == nil {
		t.Fatal("lenient mode accepted an oversized line")
	}
}

// Malformed counts exactly the lenient-skippable lines: decode failures
// with the framing intact, not scanner-level aborts.
func TestDecoderMalformedCounter(t *testing.T) {
	in := `{"t_us":1,"kind":"a"}` + "\n" +
		`garbage` + "\n" +
		`{"no_kind":true}` + "\n" +
		`{"t_us":2,"kind":"b"}` + "\n"
	d := NewDecoder(strings.NewReader(in))
	var events, errs int
	for {
		_, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			errs++
			continue
		}
		events++
	}
	if events != 2 || errs != 2 {
		t.Fatalf("events %d errs %d, want 2 and 2", events, errs)
	}
	if d.Malformed() != 2 {
		t.Errorf("Malformed() = %d, want 2", d.Malformed())
	}

	// A scanner-level failure is terminal, not "malformed".
	d = NewDecoder(strings.NewReader(strings.Repeat("x", maxLineBytes+1)))
	if _, err := d.Next(); err == nil {
		t.Fatal("oversized line accepted")
	}
	if d.Malformed() != 0 {
		t.Errorf("Malformed() after scanner failure = %d, want 0", d.Malformed())
	}
}

func TestDecoderNextEOF(t *testing.T) {
	d := NewDecoder(strings.NewReader(""))
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("err %v, want io.EOF", err)
	}
	// Repeated calls stay at EOF.
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("second call: %v", err)
	}
}
