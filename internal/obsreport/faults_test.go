package obsreport

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
)

// faultStream is a hand-written fault-event stream: two devices with
// injected faults and retries, one remap, one spare-pool death, a power
// failure, and an SRAM replay.
func faultStream() []obs.Event {
	return []obs.Event{
		{T: 1_000_000, Kind: obs.EvFaultInjected, Dev: "disk", Addr: 0, Size: 1},
		{T: 1_000_000, Kind: obs.EvRetryAttempt, Dev: "disk", Addr: 0, Size: 2, Dur: 500},
		{T: 2_000_000, Kind: obs.EvFaultInjected, Dev: "disk", Addr: 1, Size: 1},
		{T: 2_000_000, Kind: obs.EvRetryAttempt, Dev: "disk", Addr: 1, Size: 2, Dur: 500},
		{T: 2_000_500, Kind: obs.EvFaultInjected, Dev: "disk", Addr: 1, Size: 2},
		{T: 2_000_500, Kind: obs.EvRetryAttempt, Dev: "disk", Addr: 1, Size: 3, Dur: 1_000},

		{T: 3_000_000, Kind: obs.EvFaultInjected, Dev: "fc", Addr: 2, Size: 1},
		{T: 3_000_000, Kind: obs.EvRetryAttempt, Dev: "fc", Addr: 2, Size: 2, Dur: 2_000},
		{T: 4_000_000, Kind: obs.EvRemap, Dev: "fc", Addr: 7, Size: 1},
		{T: 5_000_000, Kind: obs.EvRemap, Dev: "fc", Addr: 9, Size: -1},
		{T: 5_500_000, Kind: obs.EvReclaim, Dev: "fc", Addr: 9},

		{T: 6_000_000, Kind: obs.EvPowerFail},
		{T: 6_000_000, Kind: obs.EvRecoveryReplayed, Dev: "sram", Size: 5, Dur: 40_000},
	}
}

func TestFaultsReport(t *testing.T) {
	r := Faults(faultStream())
	if r.Injected != 4 || r.Retries != 4 || r.BackoffUs != 4_000 {
		t.Fatalf("totals %+v", r)
	}
	if r.Remaps != 1 || r.SparesExhausted != 1 || r.Reclaims != 1 || r.ReplayedBlocks != 5 {
		t.Fatalf("remap/reclaim/replay totals %+v", r)
	}
	if len(r.PowerFailUs) != 1 || r.PowerFailUs[0] != 6_000_000 {
		t.Fatalf("power failures %v", r.PowerFailUs)
	}
	if len(r.Devices) != 3 {
		t.Fatalf("%d devices, want 3 (disk, fc, sram)", len(r.Devices))
	}
	disk, fc, sram := r.Devices[0], r.Devices[1], r.Devices[2]
	if disk.Dev != "disk" || disk.ReadFaults != 1 || disk.WriteFaults != 2 || disk.EraseFaults != 0 {
		t.Errorf("disk %+v", disk)
	}
	if disk.Retries != 3 || disk.BackoffUs != 2_000 {
		t.Errorf("disk retries %+v", disk)
	}
	if len(disk.InjectionTimesUs) != 3 || disk.InjectionTimesUs[2] != 2_000_500 {
		t.Errorf("disk injection times %v", disk.InjectionTimesUs)
	}
	if fc.Dev != "fc" || fc.EraseFaults != 1 || fc.Remaps != 1 || fc.SparesExhausted != 1 || fc.Reclaims != 1 {
		t.Errorf("fc %+v", fc)
	}
	if sram.Dev != "sram" || sram.ReplayedBlocks != 5 {
		t.Errorf("sram %+v", sram)
	}
	if r.BackoffHist.N != 4 || r.BackoffHist.Max != 2.0 {
		t.Errorf("backoff hist N=%d max=%g", r.BackoffHist.N, r.BackoffHist.Max)
	}
}

func TestFaultsReportEmptyStream(t *testing.T) {
	r := Faults(syntheticStream())
	if r.Injected != 0 || len(r.Devices) != 0 || len(r.PowerFailUs) != 0 {
		t.Fatalf("fault-free stream produced %+v", r)
	}
	var buf bytes.Buffer
	if err := WriteFaults(&buf, r, Text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no fault events") {
		t.Errorf("empty-report text = %q", buf.String())
	}
}

func TestWriteFaultsFormats(t *testing.T) {
	r := Faults(faultStream())

	var txt bytes.Buffer
	if err := WriteFaults(&txt, r, Text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"4 faults injected", "1 erase units remapped", "1 retired units reclaimed", "1 power failures", "disk", "fc", "sram"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, txt.String())
		}
	}

	var csvBuf bytes.Buffer
	if err := WriteFaults(&csvBuf, r, CSV); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 devices
		t.Fatalf("%d csv rows, want 4", len(rows))
	}
	if rows[1][0] != "disk" || rows[1][1] != "1" || rows[1][2] != "2" {
		t.Errorf("csv disk row %v", rows[1])
	}

	var jsonBuf bytes.Buffer
	if err := WriteFaults(&jsonBuf, r, JSON); err != nil {
		t.Fatal(err)
	}
	var back FaultsReport
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Injected != r.Injected || len(back.Devices) != len(r.Devices) {
		t.Errorf("json round-trip %+v", back)
	}

	var svg bytes.Buffer
	if err := WriteFaults(&svg, r, SVG); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") || !strings.Contains(svg.String(), "power.fail 1") {
		t.Error("svg output missing chart or power-fail marker")
	}
}

func TestFaultsChartSeries(t *testing.T) {
	c := FaultsChart(Faults(faultStream()))
	// Two devices with injections (sram only replays) + one power-fail marker.
	if len(c.Series) != 3 {
		t.Fatalf("%d series, want 3", len(c.Series))
	}
	disk := c.Series[0]
	if disk.Name != "disk" || !disk.Step {
		t.Errorf("first series %+v", disk)
	}
	last := disk.Points[len(disk.Points)-1]
	if last.Y != 3 {
		t.Errorf("disk cumulative end %v, want 3", last)
	}
	marker := c.Series[2]
	if marker.Points[0].X != 6.0 || marker.Points[1].X != 6.0 {
		t.Errorf("power-fail marker at %v, want x=6s", marker.Points)
	}
}

func TestDiffFaultsSelfIsZero(t *testing.T) {
	r := Faults(faultStream())
	for _, d := range DiffFaults(r, r) {
		if d.Delta != 0 {
			t.Errorf("self-diff %s = %g, want 0", d.Name, d.Delta)
		}
	}
	other := Faults(faultStream()[:6]) // disk events only
	rows := DiffFaults(other, r)
	if rows[0].Delta != 1 { // injected: 3 → 4
		t.Errorf("injected delta %+v", rows[0])
	}
}

// TestFaultsBuilderMatchesSlice pins the streaming builder to the
// slice-based wrapper on an interleaved stream.
func TestFaultsBuilderMatchesSlice(t *testing.T) {
	b := NewFaultsBuilder()
	events := append(faultStream(), syntheticStream()...)
	for _, e := range events {
		b.Observe(e)
	}
	var got, want bytes.Buffer
	if err := WriteFaults(&got, b.Finish(), JSON); err != nil {
		t.Fatal(err)
	}
	if err := WriteFaults(&want, Faults(events), JSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("streaming and slice-based faults reports differ")
	}
}
