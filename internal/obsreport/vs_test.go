package obsreport

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
)

// diffAll aggregates two event slices independently through every report
// kind and returns the delta tables, keyed by report name.
func diffAll(a, b []obs.Event) map[string][]DeltaRow {
	return map[string][]DeltaRow{
		"timeline": DiffTimelines(StateTimelines(a), StateTimelines(b)),
		"latency":  DiffLatency(Latency(a), Latency(b)),
		"wear":     DiffWear(Wear(a), Wear(b)),
		"energy":   DiffEnergy(Energy(a), Energy(b)),
		"cleaning": DiffCleaning(Cleaning(a), Cleaning(b)),
	}
}

// The -vs self-diff property: comparing a run against itself yields
// all-zero deltas in every report.
func TestSelfDiffIsAllZero(t *testing.T) {
	events := figureEvents()
	for report, rows := range diffAll(events, events) {
		if len(rows) == 0 {
			t.Errorf("%s: self-diff produced no rows for a populated stream", report)
		}
		for _, r := range rows {
			if r.Delta != 0 {
				t.Errorf("%s: self-diff row %s has delta %g (A=%g B=%g)", report, r.Name, r.Delta, r.A, r.B)
			}
			if r.A != r.B {
				t.Errorf("%s: self-diff row %s: A=%g != B=%g", report, r.Name, r.A, r.B)
			}
		}
	}
}

// Quantities present in only one run must still appear, reading zero on
// the other side.
func TestDiffUnionAcrossRuns(t *testing.T) {
	a := []obs.Event{
		{T: 1_000_000, Kind: obs.EvDiskSpinDown, Dev: "cu140"},
		{T: 2_000_000, Kind: obs.EvDiskSpinUp, Dev: "cu140", Dur: 1_000_000},
		{T: 3_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 9_000_000},
	}
	b := []obs.Event{
		{T: 1_000_000, Kind: obs.EvDiskSpinDown, Dev: "kh"},
		{T: 5_000_000, Kind: obs.EvDiskSpinUp, Dev: "kh", Dur: 4_000_000},
		{T: 3_000_000, Kind: obs.EvEnergySample, Dev: "storage", Size: 4_000_000},
	}
	tl := DiffTimelines(StateTimelines(a), StateTimelines(b))
	byName := map[string]DeltaRow{}
	for _, r := range tl {
		byName[r.Name] = r
	}
	if r := byName["cu140.spin_ups"]; r.A != 1 || r.B != 0 || r.Delta != -1 {
		t.Errorf("cu140.spin_ups: %+v", r)
	}
	if r := byName["kh.spin_ups"]; r.A != 0 || r.B != 1 || r.Delta != 1 {
		t.Errorf("kh.spin_ups: %+v", r)
	}
	en := DiffEnergy(Energy(a), Energy(b))
	byName = map[string]DeltaRow{}
	for _, r := range en {
		byName[r.Name] = r
	}
	if r := byName["total.final_j"]; r.A != 9 || r.B != 0 {
		t.Errorf("total.final_j: %+v", r)
	}
	if r := byName["storage.final_j"]; r.A != 0 || r.B != 4 || r.Delta != 4 {
		t.Errorf("storage.final_j: %+v", r)
	}
}

func TestWriteDeltaFormats(t *testing.T) {
	rows := []DeltaRow{
		{Name: "x.n", A: 2, B: 5, Delta: 3},
		{Name: "y.mean_ms", A: 1.5, B: 1.25, Delta: -0.25},
	}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, rows, Text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "run A") || !strings.Contains(buf.String(), "x.n") {
		t.Errorf("text delta table: %q", buf.String())
	}

	buf.Reset()
	if err := WriteDelta(&buf, rows, CSV); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "name,a,b,delta\n") || !strings.Contains(buf.String(), "x.n,2,5,3\n") {
		t.Errorf("csv delta table: %q", buf.String())
	}

	buf.Reset()
	if err := WriteDelta(&buf, rows, JSON); err != nil {
		t.Fatal(err)
	}
	var decoded []DeltaRow
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[1].Delta != -0.25 {
		t.Errorf("json delta table: %+v", decoded)
	}

	if err := WriteDelta(&buf, rows, SVG); err == nil {
		t.Error("WriteDelta accepted svg format")
	}

	buf.Reset()
	if err := WriteDelta(&buf, nil, Text); err != nil || !strings.Contains(buf.String(), "nothing to compare") {
		t.Errorf("empty text delta: %v %q", err, buf.String())
	}
}

func TestMergeCharts(t *testing.T) {
	a := EnergyChart(Energy(figureEvents()))
	b := EnergyChart(nil)
	m := MergeCharts(a, b, "base", "candidate")
	if m.Title != "Cumulative energy — base vs candidate" {
		t.Errorf("merged title: %q", m.Title)
	}
	if len(m.Series) != len(a.Series) {
		t.Fatalf("merged series count %d, want %d", len(m.Series), len(a.Series))
	}
	for _, s := range m.Series {
		if !strings.HasSuffix(s.Name, " [base]") {
			t.Errorf("series %q missing run label", s.Name)
		}
	}
	out := m.SVG()
	checkWellFormed(t, out)
	if !strings.Contains(out, "total [base]") {
		t.Error("merged chart legend missing labelled series")
	}
}

// FuzzVsAggregation drives the two-stream aggregation with arbitrary
// NDJSON: it must never panic, every delta must be finite, and a run
// diffed against itself must always produce all-zero deltas. The merged
// SVG rendering must stay well-formed even with hostile device names.
// Seed corpus lives under testdata/fuzz/FuzzVsAggregation.
func FuzzVsAggregation(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"t_us":1000000,"kind":"disk.spindown","dev":"cu140"}` + "\n" +
			`{"t_us":4000000,"kind":"disk.spinup","dev":"cu140","dur_us":3000000}` + "\n" +
			`{"t_us":5000000,"kind":"flashcard.clean","addr":3,"size":40,"dur_us":120000}` + "\n" +
			`{"t_us":5000001,"kind":"flashcard.erase","addr":3,"size":1}` + "\n" +
			`{"t_us":6000000,"kind":"sample.energy","dev":"total","size":1500000}` + "\n"),
		[]byte(`{"t_us":1,"kind":"sram.flush","dur_us":1500}` + "\n" +
			`{"t_us":2,"kind":"sample.energy","dev":"storage","size":700000}` + "\n" +
			`{"t_us":3,"kind":"sample.energy","dev":"storage","size":900000}` + "\n"),
		[]byte(`{"t_us":9223372036854775807,"kind":"disk.spinup","dev":"d","dur_us":9223372036854775807}` + "\n" +
			`{"t_us":1,"kind":"flashcard.erase","addr":-5,"size":-9}` + "\n"),
		[]byte("not json\n{\"kind\":\"flashcard.clean\",\"size\":7}\n"),
		[]byte(""),
		[]byte(`{"kind":"sample.energy","dev":"Inf<&>","size":5}` + "\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, _, err := ReadEventsLenient(bytes.NewReader(data))
		if err != nil {
			return // scanner-level failure: nothing aggregated
		}

		// Self-diff: all-zero deltas for every report kind.
		for report, rows := range diffAll(events, events) {
			for _, r := range rows {
				if r.Delta != 0 {
					t.Fatalf("%s: self-diff row %s has delta %g", report, r.Name, r.Delta)
				}
			}
		}

		// Cross-diff of two different prefixes: no panic, finite deltas.
		half := len(events) / 2
		for report, rows := range diffAll(events[:half], events) {
			for _, r := range rows {
				for _, v := range []float64{r.A, r.B, r.Delta} {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("%s: non-finite value in row %s: A=%g B=%g Δ=%g",
							report, r.Name, r.A, r.B, r.Delta)
					}
				}
			}
		}

		// The merged side-by-side chart renders well-formed XML whatever the
		// component names contain.
		m := MergeCharts(EnergyChart(Energy(events[:half])), EnergyChart(Energy(events)), "A", "B")
		checkWellFormed(t, m.SVG())
	})
}
