package obsreport

import (
	"bytes"
	"encoding/xml"
	"flag"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
)

var updateSVG = flag.Bool("update", false, "rewrite the golden SVG files under testdata")

// figureEvents is a small hand-built stream exercising every report kind
// deterministically: two spin cycles on two disks, latency-bearing events,
// erases, cleans, and energy samples for two components.
func figureEvents() []obs.Event {
	return []obs.Event{
		{T: 1_000_000, Kind: obs.EvDiskSpinDown, Dev: "cu140"},
		{T: 4_000_000, Kind: obs.EvDiskSpinUp, Dev: "cu140", Dur: 3_000_000},
		{T: 2_000_000, Kind: obs.EvDiskSpinDown, Dev: "kh"},
		{T: 9_000_000, Kind: obs.EvDiskSpinUp, Dev: "kh", Dur: 7_000_000},
		{T: 10_000_000, Kind: obs.EvDiskSpinDown, Dev: "cu140"},

		{T: 3_000_000, Kind: obs.EvSRAMFlush, Size: 4096, Dur: 1500},
		{T: 3_500_000, Kind: obs.EvSRAMFlush, Size: 8192, Dur: 2500},
		{T: 5_000_000, Kind: obs.EvCardClean, Addr: 3, Size: 40, Dur: 120_000},
		{T: 7_000_000, Kind: obs.EvCardClean, Addr: 5, Size: 25, Dur: 90_000},
		{T: 7_100_000, Kind: obs.EvCardStall, Dur: 400},

		{T: 5_000_001, Kind: obs.EvCardErase, Addr: 3, Size: 1},
		{T: 7_000_001, Kind: obs.EvCardErase, Addr: 5, Size: 1},
		{T: 8_000_000, Kind: obs.EvCardErase, Addr: 3, Size: 2},

		{T: 2_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 1_500_000},
		{T: 4_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 2_900_000},
		{T: 8_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 6_100_000},
		{T: 2_000_000, Kind: obs.EvEnergySample, Dev: "storage", Size: 700_000},
		{T: 4_000_000, Kind: obs.EvEnergySample, Dev: "storage", Size: 1_200_000},
		{T: 8_000_000, Kind: obs.EvEnergySample, Dev: "storage", Size: 2_600_000},
	}
}

// renderReportSVG renders one report kind from an event slice.
func renderReportSVG(t *testing.T, report string, events []obs.Event) string {
	t.Helper()
	var buf bytes.Buffer
	var err error
	switch report {
	case "timeline":
		err = WriteTimelines(&buf, StateTimelines(events), SVG)
	case "latency":
		err = WriteLatency(&buf, Latency(events), SVG)
	case "wear":
		err = WriteWear(&buf, Wear(events), SVG)
	case "energy":
		err = WriteEnergy(&buf, Energy(events), SVG)
	case "cleaning":
		err = WriteCleaning(&buf, Cleaning(events), SVG)
	default:
		t.Fatalf("unknown report %q", report)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

var svgReports = []string{"timeline", "latency", "wear", "energy", "cleaning"}

// TestGoldenReportSVG pins every report's SVG rendering byte-for-byte.
// Regenerate with `go test ./internal/obsreport -run TestGoldenReportSVG
// -update` and review the diff.
func TestGoldenReportSVG(t *testing.T) {
	for _, report := range svgReports {
		t.Run(report, func(t *testing.T) {
			got := renderReportSVG(t, report, figureEvents())
			path := filepath.Join("testdata", report+".svg")
			if *updateSVG {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s SVG (regenerate with -update and review)", report)
			}
		})
	}
}

// TestGoldenVsSVG pins the merged two-run chart (the -vs svg rendering).
func TestGoldenVsSVG(t *testing.T) {
	a := Energy(figureEvents())
	// Run B: same shape, lower energy (a spun-down configuration).
	var bEvents []obs.Event
	for _, e := range figureEvents() {
		if e.Kind == obs.EvEnergySample {
			e.Size = e.Size / 2
		}
		bEvents = append(bEvents, e)
	}
	b := Energy(bEvents)
	merged := MergeCharts(EnergyChart(a), EnergyChart(b), "always-on", "spin-down")
	got := merged.SVG()

	path := filepath.Join("testdata", "energy-vs.svg")
	if *updateSVG {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Error("golden mismatch for merged energy-vs SVG (regenerate with -update and review)")
	}
}

func checkWellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		if _, err := dec.Token(); err == io.EOF {
			return
		} else if err != nil {
			t.Fatalf("not well-formed XML: %v", err)
		}
	}
}

// Every report SVG — populated or empty — must parse as well-formed XML
// and contain no non-finite coordinates.
func TestReportSVGWellFormedAndFinite(t *testing.T) {
	streams := map[string][]obs.Event{
		"full":   figureEvents(),
		"empty":  nil,
		"single": {{T: 1, Kind: obs.EvEnergySample, Dev: "total", Size: 5}},
	}
	for sname, events := range streams {
		for _, report := range svgReports {
			t.Run(sname+"/"+report, func(t *testing.T) {
				out := renderReportSVG(t, report, events)
				checkWellFormed(t, out)
				for _, bad := range []string{"NaN", "Inf"} {
					if strings.Contains(out, bad) {
						t.Errorf("%s/%s SVG contains %s", sname, report, bad)
					}
				}
			})
		}
	}
}

// Builder maps must not leak iteration order into the rendering: observing
// the same per-device/per-component event sequences interleaved differently
// must render byte-identical SVG.
func TestReportSVGIndependentOfInterleaving(t *testing.T) {
	events := figureEvents()
	rng := rand.New(rand.NewSource(7))
	for _, report := range svgReports {
		want := renderReportSVG(t, report, events)
		for trial := 0; trial < 5; trial++ {
			// Stable-partition the stream by device in a shuffled device
			// order: per-device event order (the semantic order) is
			// preserved, but map insertion order in the per-device and
			// per-component builders changes.
			groups := make(map[string][]obs.Event)
			var keys []string
			for _, e := range events {
				k := e.Dev
				if _, ok := groups[k]; !ok {
					keys = append(keys, k)
				}
				groups[k] = append(groups[k], e)
			}
			rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
			var shuffled []obs.Event
			for _, k := range keys {
				shuffled = append(shuffled, groups[k]...)
			}
			if got := renderReportSVG(t, report, shuffled); got != want {
				t.Errorf("%s: trial %d rendered differently under shuffled group interleaving", report, trial)
			}
		}
	}
}

// The latency chart must not depend on which kind appears first in the
// stream (its builder map is keyed by kind, not device).
func TestLatencySVGIndependentOfKindOrder(t *testing.T) {
	forward := []obs.Event{
		{T: 1, Kind: obs.EvSRAMFlush, Dur: 1500},
		{T: 2, Kind: obs.EvCardClean, Dur: 90_000},
		{T: 3, Kind: obs.EvSRAMFlush, Dur: 2500},
		{T: 4, Kind: obs.EvHybridDestage, Dur: 7000},
	}
	reversed := []obs.Event{forward[3], forward[1], forward[0], forward[2]}
	if renderReportSVG(t, "latency", forward) != renderReportSVG(t, "latency", reversed) {
		t.Error("latency SVG depends on kind first-appearance order")
	}
}

// Repeated rendering of the same finished builders is byte-identical (the
// streaming /plot endpoint re-renders live builders on every scrape).
func TestReportSVGRepeatableRendering(t *testing.T) {
	for _, report := range svgReports {
		first := renderReportSVG(t, report, figureEvents())
		for i := 0; i < 3; i++ {
			if got := renderReportSVG(t, report, figureEvents()); got != first {
				t.Fatalf("%s: render %d differs", report, i+2)
			}
		}
	}
}
