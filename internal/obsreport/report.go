package obsreport

import (
	"math"
	"sort"

	"mobilestorage/internal/obs"
)

// ---------------------------------------------------------------- timeline

// Interval is one closed span of simulated time, in microseconds.
type Interval struct {
	StartUs int64 `json:"start_us"`
	EndUs   int64 `json:"end_us"`
}

// DurationUs returns the interval length.
func (iv Interval) DurationUs() int64 { return iv.EndUs - iv.StartUs }

// DeviceTimeline reconstructs one device's power-state history from its
// spin-up/spin-down events: every completed sleep interval, the histogram
// of sleep durations (the idle-time distribution behind the paper's
// spin-down analysis), and totals.
type DeviceTimeline struct {
	Dev       string     `json:"dev"`
	SpinUps   int64      `json:"spin_ups"`
	SpinDowns int64      `json:"spin_downs"`
	Sleeps    []Interval `json:"sleeps"`
	// SleepHist is the distribution of completed sleep durations in
	// seconds.
	SleepHist *Hist `json:"sleep_hist"`
	// TotalSleepUs sums the completed sleep intervals.
	TotalSleepUs int64 `json:"total_sleep_us"`
	// OpenSleepUs is the start time of a trailing spin-down never followed
	// by a spin-up (the device ended the run asleep); -1 if none.
	OpenSleepUs int64 `json:"open_sleep_us"`
}

// sleepBounds covers sleep durations from 10 ms to ~28 h, in seconds.
func sleepBounds() []float64 { return obs.LogBuckets(1e-2, 1e5) }

// StateTimelines derives per-device spin timelines from the event stream.
// Devices appear in sorted name order; events with an empty Dev field group
// under the empty name. Spin-up events carry the sleep duration they ended
// (Dur), so intervals are exact even if the stream starts mid-sleep.
func StateTimelines(events []obs.Event) []*DeviceTimeline {
	byDev := make(map[string]*DeviceTimeline)
	get := func(dev string) *DeviceTimeline {
		tl, ok := byDev[dev]
		if !ok {
			tl = &DeviceTimeline{Dev: dev, SleepHist: NewHist(sleepBounds()), OpenSleepUs: -1}
			byDev[dev] = tl
		}
		return tl
	}
	for _, e := range events {
		switch e.Kind {
		case obs.EvDiskSpinDown:
			tl := get(e.Dev)
			tl.SpinDowns++
			tl.OpenSleepUs = e.T
		case obs.EvDiskSpinUp:
			tl := get(e.Dev)
			tl.SpinUps++
			iv := Interval{StartUs: e.T - e.Dur, EndUs: e.T}
			tl.Sleeps = append(tl.Sleeps, iv)
			tl.SleepHist.Add(float64(e.Dur) / 1e6)
			tl.TotalSleepUs += iv.DurationUs()
			tl.OpenSleepUs = -1
		}
	}
	out := make([]*DeviceTimeline, 0, len(byDev))
	for _, tl := range byDev {
		out = append(out, tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dev < out[j].Dev })
	return out
}

// ----------------------------------------------------------------- latency

// latencyKinds maps the event kinds whose Dur payload is a latency-like
// duration (service, drain, stall, or job time) — spin events carry sleep
// durations instead and are excluded.
var latencyKinds = map[string]bool{
	obs.EvSRAMFlush:      true,
	obs.EvSRAMStall:      true,
	obs.EvFlashDiskWrite: true,
	obs.EvCardClean:      true,
	obs.EvCardStall:      true,
	obs.EvHybridDestage:  true,
}

// KindLatency summarizes the durations of one event kind.
type KindLatency struct {
	Kind   string  `json:"kind"`
	N      int64   `json:"n"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	// Hist is the underlying log-bucket distribution in milliseconds.
	Hist *Hist `json:"hist"`
}

// Latency aggregates per-kind duration distributions from the stream and
// estimates p50/p90/p99 via bucket interpolation; mean and max are exact.
// Kinds are sorted by name.
func Latency(events []obs.Event) []KindLatency {
	hists := make(map[string]*Hist)
	for _, e := range events {
		if !latencyKinds[e.Kind] || e.Dur <= 0 {
			continue
		}
		h, ok := hists[e.Kind]
		if !ok {
			h = NewHist(latencyBounds())
			hists[e.Kind] = h
		}
		h.Add(float64(e.Dur) / 1e3) // µs → ms
	}
	kinds := make([]string, 0, len(hists))
	for k := range hists {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]KindLatency, 0, len(kinds))
	for _, k := range kinds {
		h := hists[k]
		out = append(out, KindLatency{
			Kind:   k,
			N:      h.N,
			MeanMs: h.Mean(),
			P50Ms:  h.Quantile(0.50),
			P90Ms:  h.Quantile(0.90),
			P99Ms:  h.Quantile(0.99),
			MaxMs:  h.Max,
			Hist:   h,
		})
	}
	return out
}

// -------------------------------------------------------------------- wear

// SegmentWear is one erase unit's final erase count.
type SegmentWear struct {
	Segment int64 `json:"segment"`
	Erases  int64 `json:"erases"`
}

// WearReport is the per-segment erase/wear distribution from flashcard
// erase events (§5.2 endurance). Each flashcard.erase event carries the
// segment's cumulative count, so the final count per segment is the
// maximum observed.
type WearReport struct {
	Segments    []SegmentWear `json:"segments"`
	TotalErases int64         `json:"total_erases"`
	MaxErase    int64         `json:"max_erase"`
	MinErase    int64         `json:"min_erase"`
	MeanErase   float64       `json:"mean_erase"`
	// StdDevErase measures wear imbalance; Spread is max/mean (1.0 =
	// perfectly level).
	StdDevErase float64 `json:"stddev_erase"`
	Spread      float64 `json:"spread"`
}

// Wear derives the wear distribution. Segments are sorted by index; the
// report is zero-valued when the stream has no flashcard.erase events
// (disk or flash-disk runs).
func Wear(events []obs.Event) *WearReport {
	counts := make(map[int64]int64)
	var total int64
	for _, e := range events {
		if e.Kind != obs.EvCardErase {
			continue
		}
		total++
		if e.Size > counts[e.Addr] {
			counts[e.Addr] = e.Size
		}
	}
	r := &WearReport{TotalErases: total}
	if len(counts) == 0 {
		return r
	}
	segs := make([]int64, 0, len(counts))
	for s := range counts {
		segs = append(segs, s)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	var sum, sumSq float64
	r.MinErase = math.MaxInt64
	for _, s := range segs {
		c := counts[s]
		r.Segments = append(r.Segments, SegmentWear{Segment: s, Erases: c})
		if c > r.MaxErase {
			r.MaxErase = c
		}
		if c < r.MinErase {
			r.MinErase = c
		}
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	n := float64(len(segs))
	r.MeanErase = sum / n
	r.StdDevErase = math.Sqrt(sumSq/n - r.MeanErase*r.MeanErase)
	if r.MeanErase > 0 {
		r.Spread = float64(r.MaxErase) / r.MeanErase
	}
	return r
}

// ------------------------------------------------------------------ energy

// EnergyPoint is one cumulative energy sample.
type EnergyPoint struct {
	TUs    int64   `json:"t_us"`
	Joules float64 `json:"joules"`
}

// EnergySeries is one component's cumulative energy over simulated time.
type EnergySeries struct {
	Component string        `json:"component"`
	Points    []EnergyPoint `json:"points"`
}

// Energy reconstructs per-component energy-over-time curves from the
// sampler's sample.energy events (cumulative µJ payloads). Components are
// sorted by name; the result is empty when the run was not sampled
// (storagesim -sample enables it).
func Energy(events []obs.Event) []EnergySeries {
	byComp := make(map[string][]EnergyPoint)
	for _, e := range events {
		if e.Kind != obs.EvEnergySample {
			continue
		}
		byComp[e.Dev] = append(byComp[e.Dev], EnergyPoint{TUs: e.T, Joules: float64(e.Size) / 1e6})
	}
	comps := make([]string, 0, len(byComp))
	for c := range byComp {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	out := make([]EnergySeries, 0, len(comps))
	for _, c := range comps {
		out = append(out, EnergySeries{Component: c, Points: byComp[c]})
	}
	return out
}

// ---------------------------------------------------------------- cleaning

// CleaningReport summarizes the flash-card cleaner's work from
// flashcard.clean/copy/erase/stall events: how often it ran, how much live
// data it relocated (the §5.3 overhead that grows with utilization), and
// the distribution of live blocks per victim segment (cleaning efficiency:
// fewer live blocks per clean is better).
type CleaningReport struct {
	Cleans       int64 `json:"cleans"`
	CopiedBlocks int64 `json:"copied_blocks"`
	Stalls       int64 `json:"stalls"`
	// LivePerClean is the distribution of live blocks copied out per
	// cleaning job.
	LivePerClean *Hist `json:"live_per_clean"`
	// MeanLivePerClean is CopiedBlocks / Cleans.
	MeanLivePerClean float64 `json:"mean_live_per_clean"`
	// TotalCleanUs sums cleaning job durations.
	TotalCleanUs int64 `json:"total_clean_us"`
}

// liveBounds covers live-blocks-per-clean from 1 to 100k.
func liveBounds() []float64 { return obs.LogBuckets(1, 1e5) }

// Cleaning derives the cleaning report from the stream.
func Cleaning(events []obs.Event) *CleaningReport {
	r := &CleaningReport{LivePerClean: NewHist(liveBounds())}
	for _, e := range events {
		switch e.Kind {
		case obs.EvCardClean:
			r.Cleans++
			r.CopiedBlocks += e.Size
			r.TotalCleanUs += e.Dur
			r.LivePerClean.Add(float64(e.Size))
		case obs.EvCardStall:
			r.Stalls++
		}
	}
	if r.Cleans > 0 {
		r.MeanLivePerClean = float64(r.CopiedBlocks) / float64(r.Cleans)
	}
	return r
}
