package obsreport

import (
	"math"
	"sort"

	"mobilestorage/internal/obs"
)

// Reporter is the incremental face of a report: feed it one event at a
// time. Builders implement it alongside a typed Finish method, so
// cmd/obsreport can stream a multi-gigabyte NDJSON file (or stdin) through
// a decoder at constant memory instead of materializing []obs.Event. The
// slice-based report functions below are thin wrappers over the builders;
// both paths produce identical results by construction.
type Reporter interface {
	Observe(obs.Event)
}

// observeAll replays a slice through a builder — the slice-based wrappers.
func observeAll(r Reporter, events []obs.Event) {
	for _, e := range events {
		r.Observe(e)
	}
}

// ---------------------------------------------------------------- timeline

// Interval is one closed span of simulated time, in microseconds.
type Interval struct {
	StartUs int64 `json:"start_us"`
	EndUs   int64 `json:"end_us"`
}

// DurationUs returns the interval length.
func (iv Interval) DurationUs() int64 { return iv.EndUs - iv.StartUs }

// DeviceTimeline reconstructs one device's power-state history from its
// spin-up/spin-down events: every completed sleep interval, the histogram
// of sleep durations (the idle-time distribution behind the paper's
// spin-down analysis), and totals.
type DeviceTimeline struct {
	Dev       string     `json:"dev"`
	SpinUps   int64      `json:"spin_ups"`
	SpinDowns int64      `json:"spin_downs"`
	Sleeps    []Interval `json:"sleeps"`
	// SleepHist is the distribution of completed sleep durations in
	// seconds.
	SleepHist *Hist `json:"sleep_hist"`
	// TotalSleepUs sums the completed sleep intervals.
	TotalSleepUs int64 `json:"total_sleep_us"`
	// OpenSleepUs is the start time of a trailing spin-down never followed
	// by a spin-up (the device ended the run asleep); -1 if none.
	OpenSleepUs int64 `json:"open_sleep_us"`
}

// sleepBounds covers sleep durations from 10 ms to ~28 h, in seconds.
func sleepBounds() []float64 { return obs.LogBuckets(1e-2, 1e5) }

// TimelineBuilder derives per-device spin timelines incrementally.
type TimelineBuilder struct {
	byDev map[string]*DeviceTimeline
}

// NewTimelineBuilder returns an empty timeline builder.
func NewTimelineBuilder() *TimelineBuilder {
	return &TimelineBuilder{byDev: make(map[string]*DeviceTimeline)}
}

func (b *TimelineBuilder) get(dev string) *DeviceTimeline {
	tl, ok := b.byDev[dev]
	if !ok {
		tl = &DeviceTimeline{Dev: dev, SleepHist: NewHist(sleepBounds()), OpenSleepUs: -1}
		b.byDev[dev] = tl
	}
	return tl
}

// Observe implements Reporter.
func (b *TimelineBuilder) Observe(e obs.Event) {
	switch e.Kind {
	case obs.EvDiskSpinDown:
		tl := b.get(e.Dev)
		tl.SpinDowns++
		tl.OpenSleepUs = e.T
	case obs.EvDiskSpinUp:
		tl := b.get(e.Dev)
		tl.SpinUps++
		iv := Interval{StartUs: e.T - e.Dur, EndUs: e.T}
		tl.Sleeps = append(tl.Sleeps, iv)
		tl.SleepHist.Add(float64(e.Dur) / 1e6)
		tl.TotalSleepUs += iv.DurationUs()
		tl.OpenSleepUs = -1
	}
}

// Finish returns the timelines in sorted device order. The builder may keep
// observing afterwards; Finish is a snapshot ordering, not a terminal state.
func (b *TimelineBuilder) Finish() []*DeviceTimeline {
	out := make([]*DeviceTimeline, 0, len(b.byDev))
	for _, tl := range b.byDev {
		out = append(out, tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dev < out[j].Dev })
	return out
}

// StateTimelines derives per-device spin timelines from the event stream.
// Devices appear in sorted name order; events with an empty Dev field group
// under the empty name. Spin-up events carry the sleep duration they ended
// (Dur), so intervals are exact even if the stream starts mid-sleep.
func StateTimelines(events []obs.Event) []*DeviceTimeline {
	b := NewTimelineBuilder()
	observeAll(b, events)
	return b.Finish()
}

// ----------------------------------------------------------------- latency

// latencyKinds maps the event kinds whose Dur payload is a latency-like
// duration (service, drain, stall, or job time) — spin events carry sleep
// durations instead and are excluded.
var latencyKinds = map[string]bool{
	obs.EvSRAMFlush:      true,
	obs.EvSRAMStall:      true,
	obs.EvFlashDiskWrite: true,
	obs.EvCardClean:      true,
	obs.EvCardStall:      true,
	obs.EvHybridDestage:  true,
}

// KindLatency summarizes the durations of one event kind.
type KindLatency struct {
	Kind   string  `json:"kind"`
	N      int64   `json:"n"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	// Hist is the underlying log-bucket distribution in milliseconds.
	Hist *Hist `json:"hist"`
}

// LatencyBuilder aggregates per-kind duration distributions incrementally.
type LatencyBuilder struct {
	hists map[string]*Hist
}

// NewLatencyBuilder returns an empty latency builder.
func NewLatencyBuilder() *LatencyBuilder {
	return &LatencyBuilder{hists: make(map[string]*Hist)}
}

// Observe implements Reporter.
func (b *LatencyBuilder) Observe(e obs.Event) {
	if !latencyKinds[e.Kind] || e.Dur <= 0 {
		return
	}
	h, ok := b.hists[e.Kind]
	if !ok {
		h = NewHist(latencyBounds())
		b.hists[e.Kind] = h
	}
	h.Add(float64(e.Dur) / 1e3) // µs → ms
}

// Finish summarizes the distributions, sorted by kind.
func (b *LatencyBuilder) Finish() []KindLatency {
	kinds := make([]string, 0, len(b.hists))
	for k := range b.hists {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]KindLatency, 0, len(kinds))
	for _, k := range kinds {
		h := b.hists[k]
		out = append(out, KindLatency{
			Kind:   k,
			N:      h.N,
			MeanMs: h.Mean(),
			P50Ms:  h.Quantile(0.50),
			P90Ms:  h.Quantile(0.90),
			P99Ms:  h.Quantile(0.99),
			MaxMs:  h.Max,
			Hist:   h,
		})
	}
	return out
}

// Latency aggregates per-kind duration distributions from the stream and
// estimates p50/p90/p99 via bucket interpolation; mean and max are exact.
// Kinds are sorted by name.
func Latency(events []obs.Event) []KindLatency {
	b := NewLatencyBuilder()
	observeAll(b, events)
	return b.Finish()
}

// -------------------------------------------------------------------- wear

// SegmentWear is one erase unit's final erase count.
type SegmentWear struct {
	Segment int64 `json:"segment"`
	Erases  int64 `json:"erases"`
}

// WearReport is the per-segment erase/wear distribution from flashcard
// erase events (§5.2 endurance). Each flashcard.erase event carries the
// segment's cumulative count, so the final count per segment is the
// maximum observed.
type WearReport struct {
	Segments    []SegmentWear `json:"segments"`
	TotalErases int64         `json:"total_erases"`
	MaxErase    int64         `json:"max_erase"`
	MinErase    int64         `json:"min_erase"`
	MeanErase   float64       `json:"mean_erase"`
	// StdDevErase measures wear imbalance; Spread is max/mean (1.0 =
	// perfectly level).
	StdDevErase float64 `json:"stddev_erase"`
	Spread      float64 `json:"spread"`
}

// WearBuilder accumulates per-segment erase counts incrementally.
type WearBuilder struct {
	counts map[int64]int64
	total  int64
}

// NewWearBuilder returns an empty wear builder.
func NewWearBuilder() *WearBuilder {
	return &WearBuilder{counts: make(map[int64]int64)}
}

// Observe implements Reporter.
func (b *WearBuilder) Observe(e obs.Event) {
	if e.Kind != obs.EvCardErase {
		return
	}
	b.total++
	if e.Size > b.counts[e.Addr] {
		b.counts[e.Addr] = e.Size
	}
}

// Finish computes the wear distribution, segments sorted by index.
func (b *WearBuilder) Finish() *WearReport {
	counts, total := b.counts, b.total
	r := &WearReport{TotalErases: total}
	if len(counts) == 0 {
		return r
	}
	segs := make([]int64, 0, len(counts))
	for s := range counts {
		segs = append(segs, s)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	var sum, sumSq float64
	r.MinErase = math.MaxInt64
	for _, s := range segs {
		c := counts[s]
		r.Segments = append(r.Segments, SegmentWear{Segment: s, Erases: c})
		if c > r.MaxErase {
			r.MaxErase = c
		}
		if c < r.MinErase {
			r.MinErase = c
		}
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	n := float64(len(segs))
	r.MeanErase = sum / n
	r.StdDevErase = math.Sqrt(sumSq/n - r.MeanErase*r.MeanErase)
	if r.MeanErase > 0 {
		r.Spread = float64(r.MaxErase) / r.MeanErase
	}
	return r
}

// Wear derives the wear distribution. Segments are sorted by index; the
// report is zero-valued when the stream has no flashcard.erase events
// (disk or flash-disk runs).
func Wear(events []obs.Event) *WearReport {
	b := NewWearBuilder()
	observeAll(b, events)
	return b.Finish()
}

// ------------------------------------------------------------------ energy

// EnergyPoint is one cumulative energy sample.
type EnergyPoint struct {
	TUs    int64   `json:"t_us"`
	Joules float64 `json:"joules"`
}

// EnergySeries is one component's cumulative energy over simulated time.
type EnergySeries struct {
	Component string        `json:"component"`
	Points    []EnergyPoint `json:"points"`
}

// EnergyBuilder accumulates per-component energy samples incrementally.
// Note: the energy report is the one reporter whose memory grows with the
// stream — one point per sample — but samples are emitted at a fixed
// simulated-time interval, so even week-long runs stay small next to the
// raw event volume.
type EnergyBuilder struct {
	byComp map[string][]EnergyPoint
}

// NewEnergyBuilder returns an empty energy builder.
func NewEnergyBuilder() *EnergyBuilder {
	return &EnergyBuilder{byComp: make(map[string][]EnergyPoint)}
}

// Observe implements Reporter.
func (b *EnergyBuilder) Observe(e obs.Event) {
	if e.Kind != obs.EvEnergySample {
		return
	}
	b.byComp[e.Dev] = append(b.byComp[e.Dev], EnergyPoint{TUs: e.T, Joules: float64(e.Size) / 1e6})
}

// Finish returns the series in sorted component order.
func (b *EnergyBuilder) Finish() []EnergySeries {
	comps := make([]string, 0, len(b.byComp))
	for c := range b.byComp {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	out := make([]EnergySeries, 0, len(comps))
	for _, c := range comps {
		out = append(out, EnergySeries{Component: c, Points: b.byComp[c]})
	}
	return out
}

// Energy reconstructs per-component energy-over-time curves from the
// sampler's sample.energy events (cumulative µJ payloads). Components are
// sorted by name; the result is empty when the run was not sampled
// (storagesim -sample enables it).
func Energy(events []obs.Event) []EnergySeries {
	b := NewEnergyBuilder()
	observeAll(b, events)
	return b.Finish()
}

// ---------------------------------------------------------------- cleaning

// CleaningReport summarizes the flash-card cleaner's work from
// flashcard.clean/copy/erase/stall events: how often it ran, how much live
// data it relocated (the §5.3 overhead that grows with utilization), and
// the distribution of live blocks per victim segment (cleaning efficiency:
// fewer live blocks per clean is better).
type CleaningReport struct {
	Cleans       int64 `json:"cleans"`
	CopiedBlocks int64 `json:"copied_blocks"`
	Stalls       int64 `json:"stalls"`
	// LivePerClean is the distribution of live blocks copied out per
	// cleaning job.
	LivePerClean *Hist `json:"live_per_clean"`
	// MeanLivePerClean is CopiedBlocks / Cleans.
	MeanLivePerClean float64 `json:"mean_live_per_clean"`
	// TotalCleanUs sums cleaning job durations.
	TotalCleanUs int64 `json:"total_clean_us"`
	// IndexEngine and IndexAmp carry the workload-level write amplification
	// from an index.writeamp event (index-engine traces only): the bytes the
	// engine physically wrote over the bytes the workload logically changed.
	// The cleaner's own amplification multiplies on top of this, so total
	// flash wear per logical byte is the product of the two. Empty/zero when
	// the stream has no index.writeamp event.
	IndexEngine       string  `json:"index_engine,omitempty"`
	IndexLogicalBytes int64   `json:"index_logical_bytes,omitempty"`
	IndexWrittenBytes int64   `json:"index_written_bytes,omitempty"`
	IndexAmp          float64 `json:"index_amp,omitempty"`
}

// liveBounds covers live-blocks-per-clean from 1 to 100k.
func liveBounds() []float64 { return obs.LogBuckets(1, 1e5) }

// CleaningBuilder accumulates cleaner work incrementally.
type CleaningBuilder struct {
	r *CleaningReport
}

// NewCleaningBuilder returns an empty cleaning builder.
func NewCleaningBuilder() *CleaningBuilder {
	return &CleaningBuilder{r: &CleaningReport{LivePerClean: NewHist(liveBounds())}}
}

// Observe implements Reporter.
func (b *CleaningBuilder) Observe(e obs.Event) {
	switch e.Kind {
	case obs.EvCardClean:
		b.r.Cleans++
		b.r.CopiedBlocks += e.Size
		b.r.TotalCleanUs += e.Dur
		b.r.LivePerClean.Add(float64(e.Size))
	case obs.EvCardStall:
		b.r.Stalls++
	case obs.EvIndexWriteAmp:
		// One summary event per run; on merged shards the last one wins,
		// matching concatenated-stream replay order.
		b.r.IndexEngine = e.Dev
		b.r.IndexLogicalBytes = e.Addr
		b.r.IndexWrittenBytes = e.Size
	}
}

// Finish computes the derived means and returns the report.
func (b *CleaningBuilder) Finish() *CleaningReport {
	if b.r.Cleans > 0 {
		b.r.MeanLivePerClean = float64(b.r.CopiedBlocks) / float64(b.r.Cleans)
	}
	if b.r.IndexLogicalBytes > 0 {
		b.r.IndexAmp = float64(b.r.IndexWrittenBytes) / float64(b.r.IndexLogicalBytes)
	}
	return b.r
}

// Cleaning derives the cleaning report from the stream.
func Cleaning(events []obs.Event) *CleaningReport {
	b := NewCleaningBuilder()
	observeAll(b, events)
	return b.Finish()
}
