package obsreport

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
)

// syntheticStream builds a hand-written event stream exercising every
// report: a disk that sleeps twice, flash-card cleaning and wear, stalls,
// and two energy samples.
func syntheticStream() []obs.Event {
	return []obs.Event{
		{T: 1_000_000, Kind: obs.EvDiskSpinDown, Dev: "cu140", Dur: 5_000_000},
		{T: 9_000_000, Kind: obs.EvDiskSpinUp, Dev: "cu140", Dur: 8_000_000},
		{T: 20_000_000, Kind: obs.EvDiskSpinDown, Dev: "cu140", Dur: 5_000_000},
		{T: 22_000_000, Kind: obs.EvDiskSpinUp, Dev: "cu140", Dur: 2_000_000},
		{T: 30_000_000, Kind: obs.EvDiskSpinDown, Dev: "cu140", Dur: 5_000_000}, // still asleep at end

		{T: 2_000_000, Kind: obs.EvCardClean, Dev: "fc", Addr: 3, Size: 10, Dur: 40_000},
		{T: 2_040_000, Kind: obs.EvCardErase, Dev: "fc", Addr: 3, Size: 1},
		{T: 4_000_000, Kind: obs.EvCardClean, Dev: "fc", Addr: 5, Size: 30, Dur: 60_000},
		{T: 4_060_000, Kind: obs.EvCardErase, Dev: "fc", Addr: 5, Size: 1},
		{T: 6_000_000, Kind: obs.EvCardClean, Dev: "fc", Addr: 3, Size: 20, Dur: 50_000},
		{T: 6_050_000, Kind: obs.EvCardErase, Dev: "fc", Addr: 3, Size: 2},
		{T: 6_100_000, Kind: obs.EvCardStall, Dev: "fc", Dur: 123_000},

		{T: 3_000_000, Kind: obs.EvSRAMFlush, Dev: "sram", Size: 8192, Dur: 2_000},
		{T: 5_000_000, Kind: obs.EvSRAMFlush, Dev: "sram", Size: 8192, Dur: 4_000},

		{T: 10_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 1_500_000},
		{T: 10_000_000, Kind: obs.EvEnergySample, Dev: "storage", Size: 1_000_000},
		{T: 20_000_000, Kind: obs.EvEnergySample, Dev: "total", Size: 3_000_000},
		{T: 20_000_000, Kind: obs.EvEnergySample, Dev: "storage", Size: 2_250_000},
	}
}

func TestStateTimelines(t *testing.T) {
	tls := StateTimelines(syntheticStream())
	if len(tls) != 1 {
		t.Fatalf("%d devices, want 1", len(tls))
	}
	tl := tls[0]
	if tl.Dev != "cu140" || tl.SpinUps != 2 || tl.SpinDowns != 3 {
		t.Fatalf("timeline %+v", tl)
	}
	if len(tl.Sleeps) != 2 {
		t.Fatalf("%d sleeps, want 2", len(tl.Sleeps))
	}
	if tl.Sleeps[0] != (Interval{StartUs: 1_000_000, EndUs: 9_000_000}) {
		t.Errorf("first sleep %+v", tl.Sleeps[0])
	}
	if tl.TotalSleepUs != 10_000_000 {
		t.Errorf("total sleep %d, want 10s", tl.TotalSleepUs)
	}
	if tl.OpenSleepUs != 30_000_000 {
		t.Errorf("open sleep start %d, want 30s", tl.OpenSleepUs)
	}
	if tl.SleepHist.N != 2 || tl.SleepHist.Max != 8.0 {
		t.Errorf("sleep hist N=%d max=%g", tl.SleepHist.N, tl.SleepHist.Max)
	}
}

func TestLatencyReport(t *testing.T) {
	kinds := Latency(syntheticStream())
	// Duration-bearing kinds present: flashcard.clean, flashcard.stall,
	// sram.flush (sorted).
	want := []string{obs.EvCardClean, obs.EvCardStall, obs.EvSRAMFlush}
	if len(kinds) != len(want) {
		t.Fatalf("kinds %+v, want %v", kinds, want)
	}
	for i, k := range kinds {
		if k.Kind != want[i] {
			t.Errorf("kind[%d] = %s, want %s", i, k.Kind, want[i])
		}
	}
	clean := kinds[0]
	if clean.N != 3 || clean.MaxMs != 60 {
		t.Errorf("clean latency %+v", clean)
	}
	if clean.MeanMs != 50 {
		t.Errorf("clean mean %g, want exactly 50", clean.MeanMs)
	}
	if clean.P50Ms < 40 || clean.P50Ms > 60 {
		t.Errorf("clean p50 %g outside [40, 60]", clean.P50Ms)
	}
	// Spin events are excluded: their durations are sleep times.
	for _, k := range kinds {
		if k.Kind == obs.EvDiskSpinUp || k.Kind == obs.EvDiskSpinDown {
			t.Errorf("spin event %s in latency report", k.Kind)
		}
	}
}

func TestWearReport(t *testing.T) {
	r := Wear(syntheticStream())
	if r.TotalErases != 3 {
		t.Fatalf("total erases %d, want 3", r.TotalErases)
	}
	if len(r.Segments) != 2 {
		t.Fatalf("segments %+v", r.Segments)
	}
	// Final counts: segment 3 erased twice (cumulative max 2), segment 5 once.
	if r.Segments[0] != (SegmentWear{Segment: 3, Erases: 2}) ||
		r.Segments[1] != (SegmentWear{Segment: 5, Erases: 1}) {
		t.Errorf("segments %+v", r.Segments)
	}
	if r.MaxErase != 2 || r.MinErase != 1 || r.MeanErase != 1.5 {
		t.Errorf("stats max=%d min=%d mean=%g", r.MaxErase, r.MinErase, r.MeanErase)
	}
	if got := r.Spread; got != 2.0/1.5 {
		t.Errorf("spread %g", got)
	}

	empty := Wear(nil)
	if empty.TotalErases != 0 || len(empty.Segments) != 0 {
		t.Errorf("empty wear %+v", empty)
	}
}

func TestEnergyReport(t *testing.T) {
	series := Energy(syntheticStream())
	if len(series) != 2 {
		t.Fatalf("%d series, want 2", len(series))
	}
	if series[0].Component != "storage" || series[1].Component != "total" {
		t.Fatalf("components %s, %s", series[0].Component, series[1].Component)
	}
	tot := series[1]
	if len(tot.Points) != 2 || tot.Points[1].Joules != 3.0 {
		t.Errorf("total series %+v", tot)
	}
	if tot.Points[0].TUs != 10_000_000 || tot.Points[0].Joules != 1.5 {
		t.Errorf("first point %+v", tot.Points[0])
	}
	if len(Energy(nil)) != 0 {
		t.Error("energy from empty stream")
	}
}

func TestCleaningReport(t *testing.T) {
	r := Cleaning(syntheticStream())
	if r.Cleans != 3 || r.CopiedBlocks != 60 || r.Stalls != 1 {
		t.Fatalf("cleaning %+v", r)
	}
	if r.MeanLivePerClean != 20 {
		t.Errorf("mean live/clean %g, want 20", r.MeanLivePerClean)
	}
	if r.TotalCleanUs != 150_000 {
		t.Errorf("total clean %d µs", r.TotalCleanUs)
	}
	if r.LivePerClean.N != 3 || r.LivePerClean.Max != 30 {
		t.Errorf("live hist %+v", r.LivePerClean)
	}
	if r.IndexEngine != "" || r.IndexAmp != 0 {
		t.Errorf("index fields set without an index.writeamp event: %+v", r)
	}
}

// TestCleaningIndexWriteAmp covers the index.writeamp summary event: the
// engine-level write amplification lands in the cleaning report and its
// text/CSV renderings.
func TestCleaningIndexWriteAmp(t *testing.T) {
	events := append(syntheticStream(), obs.Event{
		Kind: obs.EvIndexWriteAmp, Dev: "btree", Addr: 1000, Size: 25000,
	})
	r := Cleaning(events)
	if r.IndexEngine != "btree" || r.IndexLogicalBytes != 1000 || r.IndexWrittenBytes != 25000 {
		t.Fatalf("index fields %+v", r)
	}
	if r.IndexAmp != 25.0 {
		t.Fatalf("index amp %g, want 25", r.IndexAmp)
	}

	var buf bytes.Buffer
	if err := WriteCleaning(&buf, r, Text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "index btree: 25.00× write amplification") {
		t.Errorf("text rendering missing index line:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteCleaning(&buf, r, CSV); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][5] != "index_engine" || rows[0][6] != "index_amp" {
		t.Errorf("csv header missing index columns: %v", rows[0])
	}
	if rows[1][5] != "btree" || rows[1][6] != "25" {
		t.Errorf("csv row %v", rows[1])
	}

	// A run with index stats but a cleaner-free device (disk) still renders
	// the index line instead of the "no events" placeholder.
	only := Cleaning([]obs.Event{{Kind: obs.EvIndexWriteAmp, Dev: "lsm", Addr: 100, Size: 215}})
	buf.Reset()
	if err := WriteCleaning(&buf, only, Text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "index lsm: 2.15× write amplification") {
		t.Errorf("index-only text rendering:\n%s", buf.String())
	}

	// The -vs delta table gains an index_amp row when either run has one.
	deltas := DiffCleaning(r, only)
	last := deltas[len(deltas)-1]
	if last.Name != "index_amp" || last.A != 25.0 || last.B != 2.15 {
		t.Errorf("diff row %+v", last)
	}
}

// Renderers: every format produces parseable output and text output is
// deterministic across calls.
func TestRenderersAllFormats(t *testing.T) {
	events := syntheticStream()
	renders := map[string]func(f Format) error{
		"timeline": func(f Format) error { return WriteTimelines(&bytes.Buffer{}, StateTimelines(events), f) },
		"latency":  func(f Format) error { return WriteLatency(&bytes.Buffer{}, Latency(events), f) },
		"wear":     func(f Format) error { return WriteWear(&bytes.Buffer{}, Wear(events), f) },
		"energy":   func(f Format) error { return WriteEnergy(&bytes.Buffer{}, Energy(events), f) },
		"cleaning": func(f Format) error { return WriteCleaning(&bytes.Buffer{}, Cleaning(events), f) },
	}
	for name, render := range renders {
		for _, f := range []Format{Text, CSV, JSON} {
			if err := render(f); err != nil {
				t.Errorf("%s/%s: %v", name, f, err)
			}
		}
	}

	// JSON output must round-trip through the std decoder.
	var buf bytes.Buffer
	if err := WriteWear(&buf, Wear(events), JSON); err != nil {
		t.Fatal(err)
	}
	var decoded WearReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("wear JSON does not parse: %v", err)
	}
	if decoded.TotalErases != 3 {
		t.Errorf("decoded wear %+v", decoded)
	}

	// CSV output must parse with the std reader.
	buf.Reset()
	if err := WriteEnergy(&buf, Energy(events), CSV); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("energy CSV does not parse: %v", err)
	}
	if len(rows) != 5 { // header + 4 points
		t.Errorf("%d CSV rows, want 5", len(rows))
	}

	// Determinism: identical inputs render byte-identically.
	render := func() string {
		var b bytes.Buffer
		WriteTimelines(&b, StateTimelines(events), Text)
		WriteLatency(&b, Latency(events), Text)
		WriteWear(&b, Wear(events), Text)
		WriteEnergy(&b, Energy(events), Text)
		WriteCleaning(&b, Cleaning(events), Text)
		return b.String()
	}
	if render() != render() {
		t.Error("text rendering not deterministic")
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "csv", "json"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("ParseFormat(%q): %v", ok, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("xml accepted")
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	tl := &obs.Timeline{
		IntervalUs: 1_000_000,
		Points: []obs.SamplePoint{
			{TUs: 1_000_000, Counters: map[string]int64{"cache.hits": 2}, Gauges: map[string]float64{"energy.total_j": 0.5}},
			{TUs: 2_000_000, Counters: map[string]int64{"cache.hits": 5, "cache.misses": 1}, Gauges: map[string]float64{"energy.total_j": 1.25}},
		},
	}
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, tl); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := []string{"t_s", "energy.total_j", "cache.hits", "cache.misses"}
	if strings.Join(rows[0], ",") != strings.Join(wantHeader, ",") {
		t.Errorf("header %v, want %v", rows[0], wantHeader)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Missing counter on the first point renders as zero.
	if rows[1][3] != "0" {
		t.Errorf("missing counter cell %q, want 0", rows[1][3])
	}

	if err := WriteTimelineCSV(&buf, nil); err == nil {
		t.Error("nil timeline accepted")
	}
}
