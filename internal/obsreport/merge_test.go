package obsreport

import (
	"reflect"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
)

func TestHistMergeCounts(t *testing.T) {
	a := NewHist(latencyBounds())
	b := NewHist(latencyBounds())
	for _, v := range []float64{0.5, 2, 40} {
		a.Add(v)
	}
	for _, v := range []float64{0.1, 2, 1e9} { // 1e9 overflows the top bound
		b.Add(v)
	}
	a.Merge(b)
	if a.N != 6 {
		t.Errorf("N = %d, want 6", a.N)
	}
	if a.Overflow != 1 {
		t.Errorf("Overflow = %d, want 1", a.Overflow)
	}
	if want := 0.5 + 2 + 40 + 0.1 + 2 + 1e9; a.Sum != want {
		t.Errorf("Sum = %g, want %g", a.Sum, want)
	}
	if a.Min != 0.1 || a.Max != 1e9 {
		t.Errorf("extremes [%g, %g], want [0.1, 1e9]", a.Min, a.Max)
	}
	var total int64
	for _, c := range a.Counts {
		total += c
	}
	if total+a.Overflow != a.N {
		t.Errorf("bucket total %d + overflow %d != N %d", total, a.Overflow, a.N)
	}
}

func TestHistMergeIntoEmptyCopies(t *testing.T) {
	a := NewHist(latencyBounds())
	b := NewHist(latencyBounds())
	b.Add(3)
	b.Add(7)
	a.Merge(b)
	if a.N != 2 || a.Min != 3 || a.Max != 7 {
		t.Errorf("empty.Merge(b): N=%d Min=%g Max=%g", a.N, a.Min, a.Max)
	}
	// And the other direction: merging an empty histogram is a no-op.
	before := *a
	a.Merge(NewHist(latencyBounds()))
	if a.N != before.N || a.Sum != before.Sum {
		t.Error("merging an empty histogram changed state")
	}
}

// Merging a width-only histogram (extremes unknown, as FromStats builds)
// must yield a width-only result, not fabricate extremes.
func TestHistMergeWidthOnly(t *testing.T) {
	known := NewHist(latencyBounds())
	known.Add(5)
	widthOnly := NewHist(latencyBounds())
	widthOnly.Counts[10] = 3
	widthOnly.N = 3
	widthOnly.Sum = 12 // Max stays 0: extremes unknown

	known.Merge(widthOnly)
	if known.Min != 0 || known.Max != 0 {
		t.Errorf("extremes [%g, %g] after width-only merge, want [0, 0]", known.Min, known.Max)
	}
	if known.N != 4 {
		t.Errorf("N = %d, want 4", known.N)
	}
}

// A histogram whose samples are legitimately all zero still knows its exact
// extremes; merging it must keep the other side's Min/Max instead of
// degrading to width-only (regression: Max > 0 was the 'extremes known'
// sentinel, so an all-zero side looked like a FromStats histogram).
func TestHistMergeAllZeroSamplesKeepsExtremes(t *testing.T) {
	zero := NewHist(latencyBounds())
	zero.Add(0)
	zero.Add(0)
	if !zero.ExtremesKnown {
		t.Fatal("Add-built histogram must know its extremes")
	}
	if q := zero.Quantile(0.99); q != 0 {
		t.Errorf("all-zero p99 = %g, want exactly 0", q)
	}

	known := NewHist(latencyBounds())
	known.Add(5)
	known.Merge(zero)
	if !known.ExtremesKnown {
		t.Error("merge with an all-zero histogram lost the extremes")
	}
	if known.Min != 0 || known.Max != 5 {
		t.Errorf("extremes [%g, %g], want [0, 5]", known.Min, known.Max)
	}

	// And the symmetric direction: folding known samples into the zero side.
	zero.Merge(known)
	if !zero.ExtremesKnown || zero.Min != 0 || zero.Max != 5 {
		t.Errorf("reverse merge: known=%v extremes [%g, %g], want [0, 5]",
			zero.ExtremesKnown, zero.Min, zero.Max)
	}
}

func TestHistMergeLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different bucket layouts did not panic")
		}
	}()
	NewHist(latencyBounds()).Merge(NewHist(sleepBounds()))
}

// mergeStream is a deterministic event mix covering every builder: spin
// transitions, latency-kind durations, erases, cleans, and faults.
func mergeStream(n int) []obs.Event {
	var evs []obs.Event
	for i := 0; i < n; i++ {
		tUs := int64(i+1) * 500_000
		switch i % 8 {
		case 0:
			evs = append(evs, obs.Event{T: tUs, Kind: obs.EvDiskSpinDown, Dev: "disk"})
		case 1:
			evs = append(evs, obs.Event{T: tUs, Kind: obs.EvDiskSpinUp, Dev: "disk",
				Dur: int64(100_000 * (i%40 + 1))})
		case 2:
			evs = append(evs, obs.Event{T: tUs, Kind: obs.EvSRAMFlush, Dev: "sram",
				Size: 8192, Dur: int64(1000 + i%5000)})
		case 3:
			evs = append(evs, obs.Event{T: tUs, Kind: obs.EvCardErase, Dev: "fc",
				Addr: int64(i % 16), Size: int64(i/16 + 1)})
		case 4:
			evs = append(evs, obs.Event{T: tUs, Kind: obs.EvCardClean, Dev: "fc",
				Addr: int64(i % 16), Size: int64(i % 30), Dur: 40_000})
		case 5:
			evs = append(evs, obs.Event{T: tUs, Kind: obs.EvFaultInjected, Dev: "fc",
				Addr: 1, Size: int64(i % 3)})
		case 6:
			evs = append(evs, obs.Event{T: tUs, Kind: obs.EvRetryAttempt, Dev: "fc",
				Dur: int64(200 + i%900)})
		default:
			evs = append(evs, obs.Event{T: tUs, Kind: obs.EvCardStall, Dev: "fc",
				Dur: int64(10_000 + i%777)})
		}
	}
	return evs
}

// Splitting a stream across two builder sets and merging must equal one
// builder observing everything, for every field a merge retains.
func TestFigureSetMergeMatchesSequential(t *testing.T) {
	events := mergeStream(400)

	whole := NewFigureSet()
	for _, e := range events {
		whole.Observe(e)
	}
	partA, partB := NewFigureSet(), NewFigureSet()
	for i, e := range events {
		if i < len(events)/3 {
			partA.Observe(e)
		} else {
			partB.Observe(e)
		}
	}
	merged := NewFigureSet()
	merged.Merge(partA)
	merged.Merge(partB)

	// Timeline: merged retains spin counts, sleep totals, and the
	// distribution — not the interval lists.
	wTL, mTL := whole.Timeline.Finish(), merged.Timeline.Finish()
	if len(wTL) != len(mTL) {
		t.Fatalf("timeline device counts differ: %d vs %d", len(wTL), len(mTL))
	}
	for i := range wTL {
		w, m := wTL[i], mTL[i]
		if w.Dev != m.Dev || w.SpinUps != m.SpinUps || w.SpinDowns != m.SpinDowns ||
			w.TotalSleepUs != m.TotalSleepUs {
			t.Errorf("timeline[%s]: merged %+v != whole %+v", w.Dev, m, w)
		}
		if !reflect.DeepEqual(w.SleepHist, m.SleepHist) {
			t.Errorf("timeline[%s]: sleep hist differs", w.Dev)
		}
		if len(m.Sleeps) != 0 {
			t.Errorf("timeline[%s]: merged builder retained %d sleep intervals", m.Dev, len(m.Sleeps))
		}
	}

	// Latency: counts, bounds, and extremes merge exactly; the float Sum
	// (and so the mean) differs only by association order across the split,
	// hence the epsilon. Byte-identical fleet reports come from merging in
	// a fixed order, which this whole-vs-split comparison deliberately
	// does not do.
	wLat, mLat := whole.Latency.Finish(), merged.Latency.Finish()
	if len(wLat) != len(mLat) {
		t.Fatalf("latency kind counts differ: %d vs %d", len(wLat), len(mLat))
	}
	for i := range wLat {
		w, m := wLat[i], mLat[i]
		if w.Kind != m.Kind || w.N != m.N || w.MaxMs != m.MaxMs ||
			w.P50Ms != m.P50Ms || w.P90Ms != m.P90Ms || w.P99Ms != m.P99Ms {
			t.Errorf("latency[%s]: merged %+v != whole %+v", w.Kind, m, w)
		}
		if !histEqual(w.Hist, m.Hist) {
			t.Errorf("latency[%s]: hist differs", w.Kind)
		}
	}
	if w, m := whole.Cleaning.Finish(), merged.Cleaning.Finish(); !reflect.DeepEqual(w, m) {
		t.Errorf("cleaning reports differ:\nwhole  %+v\nmerged %+v", w, m)
	}

	wF, mF := whole.Faults.Finish(), merged.Faults.Finish()
	if wF.Injected != mF.Injected || wF.Retries != mF.Retries || wF.BackoffUs != mF.BackoffUs ||
		wF.PowerFailures != mF.PowerFailures {
		t.Errorf("fault totals differ:\nwhole  %+v\nmerged %+v", wF, mF)
	}
	if !reflect.DeepEqual(wF.BackoffHist, mF.BackoffHist) {
		t.Error("backoff hist differs")
	}
	if len(wF.Devices) != len(mF.Devices) {
		t.Fatalf("fault device counts differ: %d vs %d", len(wF.Devices), len(mF.Devices))
	}
	for i := range wF.Devices {
		w, m := wF.Devices[i], mF.Devices[i]
		// Injection timestamps are per-run detail a merge drops; blank them
		// before comparing the counters.
		w.InjectionTimesUs = nil
		if len(m.InjectionTimesUs) != 0 {
			t.Errorf("merged builder retained %d injection timestamps for %s", len(m.InjectionTimesUs), m.Dev)
		}
		m.InjectionTimesUs = nil
		if !reflect.DeepEqual(w, m) {
			t.Errorf("fault device %s: merged %+v != whole %+v", w.Dev, m, w)
		}
	}
}

// histEqual compares histograms exactly except for the float Sum, which may
// differ by association order.
func histEqual(a, b *Hist) bool {
	if a.N != b.N || a.Overflow != b.Overflow || a.Min != b.Min || a.Max != b.Max {
		return false
	}
	if !reflect.DeepEqual(a.Counts, b.Counts) || !reflect.DeepEqual(a.Bounds, b.Bounds) {
		return false
	}
	diff := a.Sum - b.Sum
	if diff < 0 {
		diff = -diff
	}
	return diff <= 1e-9*(1+a.Sum)
}

// Wear events carry cumulative per-segment counts, so WearBuilder.Merge sums
// FINAL counts — the right semantics for independent runs (replica wear
// stacks), not for splitting one run's stream. Feed it two whole runs.
func TestWearMergeStacksRuns(t *testing.T) {
	runA, runB := NewWearBuilder(), NewWearBuilder()
	for i := 1; i <= 5; i++ { // run A: segment 0 erased 5 times, segment 1 thrice
		runA.Observe(obs.Event{Kind: obs.EvCardErase, Addr: 0, Size: int64(i)})
	}
	for i := 1; i <= 3; i++ {
		runA.Observe(obs.Event{Kind: obs.EvCardErase, Addr: 1, Size: int64(i)})
		runB.Observe(obs.Event{Kind: obs.EvCardErase, Addr: 0, Size: int64(i)})
	}
	m := NewWearBuilder()
	m.Merge(runA)
	m.Merge(runB)
	r := m.Finish()
	if len(r.Segments) != 2 {
		t.Fatalf("segments: %+v", r.Segments)
	}
	if r.Segments[0].Erases != 8 { // 5 from run A + 3 from run B
		t.Errorf("segment 0 erases = %d, want 8", r.Segments[0].Erases)
	}
	if r.Segments[1].Erases != 3 {
		t.Errorf("segment 1 erases = %d, want 3", r.Segments[1].Erases)
	}
	if r.TotalErases != 11 {
		t.Errorf("total erases = %d, want 11", r.TotalErases)
	}
}

// Splitting mid-sleep must not lose the interval: spin-up events carry the
// sleep duration, so the second shard reconstructs it alone.
func TestTimelineMergeSplitMidSleep(t *testing.T) {
	down := obs.Event{T: 1_000_000, Kind: obs.EvDiskSpinDown, Dev: "d"}
	up := obs.Event{T: 4_000_000, Kind: obs.EvDiskSpinUp, Dev: "d", Dur: 3_000_000}

	a, b := NewTimelineBuilder(), NewTimelineBuilder()
	a.Observe(down)
	b.Observe(up)
	m := NewTimelineBuilder()
	m.Merge(a)
	m.Merge(b)

	tl := m.Finish()[0]
	if tl.SpinDowns != 1 || tl.SpinUps != 1 || tl.TotalSleepUs != 3_000_000 {
		t.Errorf("split-sleep merge: %+v", tl)
	}
	if tl.SleepHist.N != 1 {
		t.Errorf("sleep hist N = %d, want 1", tl.SleepHist.N)
	}
}

func TestFigureKindsAndUnknownKindError(t *testing.T) {
	kinds := FigureKinds()
	if len(kinds) != 7 {
		t.Fatalf("FigureKinds() = %v, want 7 kinds", kinds)
	}
	err := UnknownKindError("bogus")
	for _, k := range kinds {
		if !strings.Contains(err.Error(), k) {
			t.Errorf("UnknownKindError does not list %q: %v", k, err)
		}
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("UnknownKindError does not echo the bad kind: %v", err)
	}
}

// Every kind must render a chart from both a live set and a merged set.
func TestFigureSetCharts(t *testing.T) {
	live := NewFigureSet()
	for _, e := range mergeStream(100) {
		live.Observe(e)
	}
	merged := NewFigureSet()
	merged.Merge(live)

	for _, set := range []*FigureSet{live, merged} {
		for _, kind := range FigureKinds() {
			c, err := set.Chart(kind)
			if err != nil {
				t.Fatalf("Chart(%q): %v", kind, err)
			}
			if c == nil {
				t.Fatalf("Chart(%q) returned nil", kind)
			}
		}
	}
	if _, err := live.Chart("bogus"); err == nil {
		t.Error("Chart(bogus) did not error")
	}
}

// SleepChart renders merged timelines as distributions with one series per
// device that actually slept.
func TestSleepChart(t *testing.T) {
	b := NewTimelineBuilder()
	b.Observe(obs.Event{T: 2_000_000, Kind: obs.EvDiskSpinUp, Dev: "d0", Dur: 1_500_000})
	b.Observe(obs.Event{T: 9_000_000, Kind: obs.EvDiskSpinUp, Dev: "d0", Dur: 4_000_000})
	// d1 never sleeps: spin-down without a spin-up leaves its hist empty.
	b.Observe(obs.Event{T: 1_000_000, Kind: obs.EvDiskSpinDown, Dev: "d1"})

	c := SleepChart(b.Finish())
	if len(c.Series) != 1 {
		t.Fatalf("%d series, want 1 (only d0 slept)", len(c.Series))
	}
	if c.Series[0].Name != "d0" || !c.Series[0].Step {
		t.Errorf("series %+v, want step series named d0", c.Series[0])
	}
	if !c.LogX {
		t.Error("sleep chart should use a log X axis")
	}
}

// BenchmarkFleetAggregate measures the per-shard merge cost of fleet
// aggregation: folding one populated run-level figure set plus its two
// latency histograms into a fleet-level set — the obsreport share of the
// work internal/fleet does per completed run.
func BenchmarkFleetAggregate(b *testing.B) {
	run := NewFigureSet()
	for _, e := range mergeStream(1000) {
		run.Observe(e)
	}
	readH := NewHist(latencyBounds())
	writeH := NewHist(latencyBounds())
	for i := 0; i < 200; i++ {
		readH.Add(float64(i%50) + 0.5)
		writeH.Add(float64(i%80) + 0.25)
	}
	fleet := NewFigureSet()
	fleetRead := NewHist(latencyBounds())
	fleetWrite := NewHist(latencyBounds())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet.Merge(run)
		fleetRead.Merge(readH)
		fleetWrite.Merge(writeH)
	}
}
