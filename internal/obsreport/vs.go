package obsreport

// Multi-run comparison: each report kind can diff two independently
// aggregated runs (obsreport <report> -in a.ndjson -vs b.ndjson). The text,
// CSV, and JSON renderings are delta tables — one row per compared quantity
// with run-A value, run-B value, and B−A — while the SVG rendering overlays
// both runs' curves on one chart. Diffing a run against itself yields
// all-zero deltas by construction; the FuzzVsAggregation target pins that
// property for arbitrary streams.

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"

	"mobilestorage/internal/plot"
)

// DeltaRow compares one scalar quantity between two runs.
type DeltaRow struct {
	Name  string  `json:"name"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	Delta float64 `json:"delta"` // B − A
}

// row builds a DeltaRow, computing the delta.
func row(name string, a, b float64) DeltaRow {
	return DeltaRow{Name: name, A: a, B: b, Delta: b - a}
}

// DiffTimelines compares per-device spin activity. Devices present in only
// one run read as zero on the other side.
func DiffTimelines(a, b []*DeviceTimeline) []DeltaRow {
	am := make(map[string]*DeviceTimeline, len(a))
	bm := make(map[string]*DeviceTimeline, len(b))
	for _, tl := range a {
		am[tl.Dev] = tl
	}
	for _, tl := range b {
		bm[tl.Dev] = tl
	}
	var rows []DeltaRow
	for _, dev := range unionKeys(am, bm) {
		at, bt := am[dev], bm[dev]
		if at == nil {
			at = &DeviceTimeline{}
		}
		if bt == nil {
			bt = &DeviceTimeline{}
		}
		name := dev
		if name == "" {
			name = "(unnamed)"
		}
		rows = append(rows,
			row(name+".spin_ups", float64(at.SpinUps), float64(bt.SpinUps)),
			row(name+".spin_downs", float64(at.SpinDowns), float64(bt.SpinDowns)),
			row(name+".sleep_s", float64(at.TotalSleepUs)/1e6, float64(bt.TotalSleepUs)/1e6),
		)
	}
	return rows
}

// DiffLatency compares per-kind duration statistics.
func DiffLatency(a, b []KindLatency) []DeltaRow {
	am := make(map[string]KindLatency, len(a))
	bm := make(map[string]KindLatency, len(b))
	for _, k := range a {
		am[k.Kind] = k
	}
	for _, k := range b {
		bm[k.Kind] = k
	}
	var rows []DeltaRow
	for _, kind := range unionKeys(am, bm) {
		ak, bk := am[kind], bm[kind] // zero value when absent
		rows = append(rows,
			row(kind+".n", float64(ak.N), float64(bk.N)),
			row(kind+".mean_ms", ak.MeanMs, bk.MeanMs),
			row(kind+".p99_ms", ak.P99Ms, bk.P99Ms),
			row(kind+".max_ms", ak.MaxMs, bk.MaxMs),
		)
	}
	return rows
}

// DiffWear compares wear summaries (totals and balance, not per-segment
// counts: segment indices are an implementation detail of each run's
// allocation order).
func DiffWear(a, b *WearReport) []DeltaRow {
	return []DeltaRow{
		row("total_erases", float64(a.TotalErases), float64(b.TotalErases)),
		row("segments", float64(len(a.Segments)), float64(len(b.Segments))),
		row("max_erase", float64(a.MaxErase), float64(b.MaxErase)),
		row("mean_erase", a.MeanErase, b.MeanErase),
		row("spread", a.Spread, b.Spread),
	}
}

// DiffEnergy compares final cumulative energy per component — the paper's
// headline spin-down vs. always-on comparison.
func DiffEnergy(a, b []EnergySeries) []DeltaRow {
	final := func(series []EnergySeries) map[string]float64 {
		m := make(map[string]float64, len(series))
		for _, s := range series {
			if len(s.Points) > 0 {
				m[s.Component] = s.Points[len(s.Points)-1].Joules
			} else {
				m[s.Component] = 0
			}
		}
		return m
	}
	am, bm := final(a), final(b)
	var rows []DeltaRow
	for _, comp := range unionKeys(am, bm) {
		rows = append(rows, row(comp+".final_j", am[comp], bm[comp]))
	}
	return rows
}

// DiffCleaning compares cleaner workloads.
func DiffCleaning(a, b *CleaningReport) []DeltaRow {
	rows := []DeltaRow{
		row("cleans", float64(a.Cleans), float64(b.Cleans)),
		row("copied_blocks", float64(a.CopiedBlocks), float64(b.CopiedBlocks)),
		row("stalls", float64(a.Stalls), float64(b.Stalls)),
		row("mean_live_per_clean", a.MeanLivePerClean, b.MeanLivePerClean),
		row("total_clean_s", float64(a.TotalCleanUs)/1e6, float64(b.TotalCleanUs)/1e6),
	}
	if a.IndexEngine != "" || b.IndexEngine != "" {
		rows = append(rows, row("index_amp", a.IndexAmp, b.IndexAmp))
	}
	return rows
}

// unionKeys returns the sorted union of two maps' keys.
func unionKeys[V any](a, b map[string]V) []string {
	set := make(map[string]bool, len(a)+len(b))
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteDelta renders a delta table as text, CSV, or JSON. SVG is not a
// delta-table format — the -vs SVG path overlays both runs' charts via
// MergeCharts instead.
func WriteDelta(w io.Writer, rows []DeltaRow, f Format) error {
	switch f {
	case JSON:
		return writeJSON(w, rows)
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"name", "a", "b", "delta"}); err != nil {
			return err
		}
		for _, r := range rows {
			cw.Write([]string{r.Name, ftoa(r.A), ftoa(r.B), ftoa(r.Delta)})
		}
		cw.Flush()
		return cw.Error()
	case SVG:
		return fmt.Errorf("obsreport: delta tables have no svg rendering (merge the runs' charts instead)")
	default:
		if len(rows) == 0 {
			fmt.Fprintln(w, "nothing to compare in either stream")
			return nil
		}
		fmt.Fprintf(w, "%-32s %14s %14s %14s\n", "quantity", "run A", "run B", "Δ (B−A)")
		for _, r := range rows {
			fmt.Fprintf(w, "%-32s %14.4g %14.4g %+14.4g\n", r.Name, r.A, r.B, r.Delta)
		}
		return nil
	}
}

// MergeCharts overlays two runs' renderings of the same report on one
// chart: run A's series first (suffixed with labelA), then run B's
// (suffixed with labelB). Axis titles come from chart A.
func MergeCharts(a, b *plot.Chart, labelA, labelB string) *plot.Chart {
	out := &plot.Chart{
		Title:  a.Title + " — " + labelA + " vs " + labelB,
		XLabel: a.XLabel,
		YLabel: a.YLabel,
		LogX:   a.LogX,
		LogY:   a.LogY,
	}
	appendRun := func(src *plot.Chart, label string) {
		for _, s := range src.Series {
			name := s.Name
			if name == "" {
				name = "series"
			}
			out.Series = append(out.Series, plot.Series{
				Name:   name + " [" + label + "]",
				Points: s.Points,
				Step:   s.Step,
			})
		}
	}
	appendRun(a, labelA)
	appendRun(b, labelB)
	return out
}
