package obsreport

import (
	"bytes"
	"io"
	"testing"

	"mobilestorage/internal/obs"
)

// benchStream synthesizes an n-event NDJSON stream mixing the kinds the
// reports consume.
func benchStream(n int) []byte {
	var buf bytes.Buffer
	sink := obs.NewNDJSONSink(&buf)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			sink.Emit(obs.Event{T: int64(i) * 1000, Kind: obs.EvCacheHit, Size: 4096})
		case 1:
			sink.Emit(obs.Event{T: int64(i) * 1000, Kind: obs.EvCardClean, Dev: "fc",
				Addr: int64(i % 64), Size: int64(i % 90), Dur: 40_000})
		case 2:
			sink.Emit(obs.Event{T: int64(i) * 1000, Kind: obs.EvCardErase, Dev: "fc",
				Addr: int64(i % 64), Size: int64(i/64 + 1)})
		case 3:
			sink.Emit(obs.Event{T: int64(i) * 1000, Kind: obs.EvSRAMFlush, Dev: "sram",
				Size: 8192, Dur: int64(1000 + i%5000)})
		default:
			sink.Emit(obs.Event{T: int64(i) * 1000, Kind: obs.EvEnergySample, Dev: "total",
				Size: int64(i) * 100})
		}
	}
	sink.Flush()
	return buf.Bytes()
}

func BenchmarkDecodeNDJSON(b *testing.B) {
	data := benchStream(10_000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if len(events) != 10_000 {
			b.Fatalf("%d events", len(events))
		}
	}
}

// BenchmarkDecodeNDJSONFallback forces every line through the encoding/json
// path the fast scanner bails to — the cost of a stream the scanner cannot
// handle, and the denominator of the fast path's speedup.
func BenchmarkDecodeNDJSONFallback(b *testing.B) {
	data := benchStream(10_000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(bytes.NewReader(data))
		d.noFast = true
		n := 0
		for {
			_, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != 10_000 {
			b.Fatalf("%d events", n)
		}
	}
}

// BenchmarkStreamWear measures the full constant-memory pipeline: scanner →
// batches → wear builder, with no event slice ever materialized.
func BenchmarkStreamWear(b *testing.B) {
	data := benchStream(10_000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wb := NewWearBuilder()
		stats, err := StreamFiles([]string{"-"},
			StreamOptions{Stdin: bytes.NewReader(data)}, wb)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Events != 10_000 {
			b.Fatalf("%d events", stats.Events)
		}
	}
}

func BenchmarkReports(b *testing.B) {
	events, err := ReadEvents(bytes.NewReader(benchStream(10_000)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = StateTimelines(events)
		_ = Latency(events)
		_ = Wear(events)
		_ = Energy(events)
		_ = Cleaning(events)
	}
}

func BenchmarkQuantile(b *testing.B) {
	h := NewHist(latencyBounds())
	for i := 1; i <= 100_000; i++ {
		h.Add(float64(i % 997))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.50)
		_ = h.Quantile(0.99)
	}
}

func BenchmarkRenderText(b *testing.B) {
	events, err := ReadEvents(bytes.NewReader(benchStream(10_000)))
	if err != nil {
		b.Fatal(err)
	}
	lat := Latency(events)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteLatency(io.Discard, lat, Text); err != nil {
			b.Fatal(err)
		}
	}
}
