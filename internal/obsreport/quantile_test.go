package obsreport

import (
	"math"
	"testing"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/stats"
)

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

// Golden quantiles for a uniform distribution over [1, 1000]: with
// interpolation the estimates must land well inside one bucket ratio
// (10^0.2 ≈ 1.58×) of the exact answers — we require 10%.
func TestQuantileUniform(t *testing.T) {
	h := NewHist(latencyBounds())
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	golden := []struct {
		q, want float64
	}{
		{0.50, 500},
		{0.90, 900},
		{0.99, 990},
	}
	for _, g := range golden {
		got := h.Quantile(g.q)
		if relErr(got, g.want) > 0.10 {
			t.Errorf("uniform p%.0f = %.1f, want %.1f ± 10%%", g.q*100, got, g.want)
		}
	}
	if h.Max != 1000 || h.Min != 1 {
		t.Errorf("extremes [%g, %g], want [1, 1000]", h.Min, h.Max)
	}
	if got := h.Mean(); got != 500.5 {
		t.Errorf("mean %g, want 500.5 exactly", got)
	}
}

// A two-sided point-mass distribution has exactly computable quantiles:
// 90 samples at 1.0 and 10 at 100.0 put p50 at 1 and p99 at 100.
func TestQuantilePointMasses(t *testing.T) {
	h := NewHist(latencyBounds())
	for i := 0; i < 90; i++ {
		h.Add(1.0)
	}
	for i := 0; i < 10; i++ {
		h.Add(100.0)
	}
	if got := h.Quantile(0.50); relErr(got, 1.0) > 0.30 {
		t.Errorf("p50 = %g, want ≈ 1", got)
	}
	if got := h.Quantile(0.99); relErr(got, 100.0) > 0.30 {
		t.Errorf("p99 = %g, want ≈ 100", got)
	}
	// Quantiles never escape the observed range.
	if got := h.Quantile(1.0); got != 100.0 {
		t.Errorf("p100 = %g, want exactly max 100", got)
	}
	if got := h.Quantile(0.0); got != 1.0 {
		t.Errorf("p0 = %g, want exactly min 1", got)
	}
}

// Exponentially distributed latencies (the shape of real service-time
// tails), deterministic via inverse CDF sampling on a fixed grid.
func TestQuantileExponential(t *testing.T) {
	const mean = 5.0 // ms
	h := NewHist(latencyBounds())
	n := 10000
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / float64(n)
		h.Add(-mean * math.Log(1-u))
	}
	for _, g := range []struct{ q, want float64 }{
		{0.50, -mean * math.Log(0.50)},
		{0.90, -mean * math.Log(0.10)},
		{0.99, -mean * math.Log(0.01)},
	} {
		got := h.Quantile(g.q)
		if relErr(got, g.want) > 0.10 {
			t.Errorf("exp p%.0f = %.3f, want %.3f ± 10%%", g.q*100, got, g.want)
		}
	}
	if relErr(h.Mean(), mean) > 0.01 {
		t.Errorf("mean %.4f, want ≈ %g", h.Mean(), mean)
	}
}

func TestQuantileEmptyAndOverflow(t *testing.T) {
	h := NewHist([]float64{1, 10})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile %g, want 0", got)
	}
	h.Add(1e9) // overflow
	if got := h.Quantile(0.99); got != 1e9 {
		t.Errorf("overflow quantile %g, want the exact max 1e9", got)
	}
}

// The estimator must agree with the simulator's conservative bucket-edge
// quantiles: estimate ≤ edge bound, always.
func TestQuantileTighterThanStatsBound(t *testing.T) {
	sh := stats.NewLatencyHistogram()
	h := NewHist(sh.Bounds)
	for i := 1; i <= 500; i++ {
		v := float64(i) * 0.37
		sh.Add(v)
		h.Add(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		bound := sh.Quantile(q)
		est := h.Quantile(q)
		if est > bound {
			t.Errorf("q=%.2f: estimate %g exceeds the edge bound %g", q, est, bound)
		}
	}
}

func TestFromSnapshotAndFromStats(t *testing.T) {
	reg := obs.NewRegistry()
	oh := reg.Histogram("x", obs.LogBuckets(1e-3, 1e6))
	for i := 1; i <= 100; i++ {
		oh.Observe(float64(i))
	}
	snap := reg.Histograms()["x"]
	h := FromSnapshot(snap)
	if h.N != 100 {
		t.Fatalf("snapshot N = %d", h.N)
	}
	// Registry snapshots carry exact extremes, so the estimator clamps and
	// reports them exactly.
	if h.Min != 1 || h.Max != 100 {
		t.Errorf("snapshot extremes [%g, %g], want [1, 100]", h.Min, h.Max)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("snapshot p100 = %g, want exactly 100", got)
	}
	if got := h.Quantile(0.5); relErr(got, 50) > 0.6 {
		t.Errorf("snapshot p50 = %g, want ≈ 50", got)
	}
	if h.Sum != snap.Sum {
		t.Errorf("sum %g, want %g", h.Sum, snap.Sum)
	}

	sh := stats.NewLatencyHistogram()
	for i := 1; i <= 100; i++ {
		sh.Add(float64(i))
	}
	h2 := FromStats(sh)
	if h2.N != 100 {
		t.Fatalf("stats N = %d", h2.N)
	}
	if FromStats(nil).N != 0 {
		t.Error("nil stats histogram")
	}
}
