package obsreport

import (
	"fmt"
	"strings"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/plot"
)

// FigureKinds lists every report kind that renders as a figure, in
// presentation order. These are the <report> arguments of cmd/obsreport and
// the /plot/<report> endpoint paths of storagesim's serve mode.
func FigureKinds() []string {
	return []string{"timeline", "latency", "wear", "energy", "cleaning", "faults", "array"}
}

// UnknownKindError formats the 404/usage message for an unrecognized report
// kind, listing the valid ones.
func UnknownKindError(kind string) error {
	return fmt.Errorf("unknown report %q (valid reports: %s)", kind, strings.Join(FigureKinds(), ", "))
}

// FigureSet bundles one builder per report kind so a single event stream
// populates every figure at once — the live aggregation behind storagesim's
// /plot/<report> endpoints and the per-run shard state of a fleet job.
//
// A FigureSet is not safe for concurrent use; callers that feed it from one
// goroutine and render from another (the serve-mode live figures) wrap it
// in a mutex.
type FigureSet struct {
	Timeline *TimelineBuilder
	Latency  *LatencyBuilder
	Wear     *WearBuilder
	Energy   *EnergyBuilder
	Cleaning *CleaningBuilder
	Faults   *FaultsBuilder
	Array    *ArrayBuilder
}

// NewFigureSet returns an empty builder per report kind.
func NewFigureSet() *FigureSet {
	return &FigureSet{
		Timeline: NewTimelineBuilder(),
		Latency:  NewLatencyBuilder(),
		Wear:     NewWearBuilder(),
		Energy:   NewEnergyBuilder(),
		Cleaning: NewCleaningBuilder(),
		Faults:   NewFaultsBuilder(),
		Array:    NewArrayBuilder(),
	}
}

// Observe implements Reporter by fanning the event to every builder; each
// keeps only the kinds it understands.
func (s *FigureSet) Observe(e obs.Event) {
	s.Timeline.Observe(e)
	s.Latency.Observe(e)
	s.Wear.Observe(e)
	s.Energy.Observe(e)
	s.Cleaning.Observe(e)
	s.Faults.Observe(e)
	s.Array.Observe(e)
}

// Merge folds another set's accumulated state into s, builder by builder.
// The energy builder is the exception: per-run energy series are cumulative
// curves over each run's own simulated clock, so merging them across runs
// is meaningless (and unbounded) — fleet aggregation summarizes energy as a
// per-run distribution instead (see internal/fleet).
func (s *FigureSet) Merge(o *FigureSet) {
	if o == nil || s == o {
		return
	}
	s.Timeline.Merge(o.Timeline)
	s.Latency.Merge(o.Latency)
	s.Wear.Merge(o.Wear)
	s.Cleaning.Merge(o.Cleaning)
	s.Faults.Merge(o.Faults)
	s.Array.Merge(o.Array)
}

// Chart renders the named report kind from the current state. Unknown
// kinds return UnknownKindError. Snapshot semantics follow the builders:
// the set may keep observing afterwards.
func (s *FigureSet) Chart(kind string) (*plot.Chart, error) {
	switch kind {
	case "timeline":
		return TimelineChart(s.Timeline.Finish()), nil
	case "latency":
		return LatencyChart(s.Latency.Finish()), nil
	case "wear":
		return WearChart(s.Wear.Finish()), nil
	case "energy":
		return EnergyChart(s.Energy.Finish()), nil
	case "cleaning":
		return CleaningChart(s.Cleaning.Finish()), nil
	case "faults":
		return FaultsChart(s.Faults.Finish()), nil
	case "array":
		return ArrayChart(s.Array.Finish()), nil
	default:
		return nil, UnknownKindError(kind)
	}
}

// SleepChart renders per-device sleep-duration distributions as step
// outlines over the log-spaced buckets — the timeline figure for merged
// builders, where individual sleep intervals are not retained (fleet runs
// overlap in time, so only the distribution is meaningful).
func SleepChart(tls []*DeviceTimeline) *plot.Chart {
	c := &plot.Chart{
		Title:  "Sleep duration distribution",
		XLabel: "sleep duration (s)",
		YLabel: "sleeps per bucket",
		LogX:   true,
	}
	for _, tl := range tls {
		if tl.SleepHist == nil || tl.SleepHist.N == 0 {
			continue
		}
		name := tl.Dev
		if name == "" {
			name = "(unnamed)"
		}
		c.Series = append(c.Series, plot.Series{Name: name, Step: true, Points: HistPoints(tl.SleepHist)})
	}
	return c
}
