package obsreport

// Sharded streaming ingestion: StreamFiles decodes one or more NDJSON
// inputs through the fast scanner and feeds every event to a set of
// Reporters at constant memory — no []obs.Event is ever materialized.
// Multi-file inputs decode in parallel under a bounded worker pool (the
// internal/experiments pmap idiom), but events are always delivered in
// file-argument order, then line order within a file, so streaming output
// is byte-identical to concatenating the inputs and decoding serially.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"

	"mobilestorage/internal/obs"
)

// streamBatch is how many events a decode worker hands to the fan-in at a
// time. Batches amortize channel operations; with a small per-channel
// buffer they also bound each in-flight file to a few hundred KB.
const streamBatch = 2048

// StreamStats summarizes one streaming pass.
type StreamStats struct {
	// Events counts events delivered to the reporters.
	Events int64
	// Skipped counts malformed lines dropped in lenient mode.
	Skipped int64
}

// StreamOptions configures StreamFiles.
type StreamOptions struct {
	// Lenient skips malformed lines instead of aborting, mirroring
	// ReadEventsLenient (scanner-level errors still abort: past an
	// oversized line the framing is gone).
	Lenient bool
	// Workers caps decode concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// Stdin is the reader consumed for the "-" pseudo-path. It must appear
	// at most once in the path list.
	Stdin io.Reader
	// Context, when non-nil, cancels an in-flight stream: StreamFiles
	// returns ctx.Err() at the next batch boundary and the decode workers
	// wind down. Reporters never observe another event after the return.
	Context context.Context
}

// fileResult carries one input's decoded batches to the fan-in. err and
// skipped are written by the worker before it closes batches, so the
// channel close publishes them.
type fileResult struct {
	batches chan []obs.Event
	err     error
	skipped int64
}

// StreamFiles decodes the named NDJSON files ("-" means opt.Stdin) and
// calls every reporter's Observe for each event, in deterministic order:
// all of paths[0] first, then paths[1], and so on, each in line order.
// Decoding runs ahead on parallel workers, so the wall-clock cost of a
// multi-file sweep approaches max(file) rather than sum(file), while
// delivery order — and therefore every rendered report — is unchanged.
func StreamFiles(paths []string, opt StreamOptions, reporters ...Reporter) (StreamStats, error) {
	var stats StreamStats
	if len(paths) == 0 {
		return stats, errors.New("obsreport: no input streams")
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}

	// done aborts in-flight workers when the fan-in returns early on error.
	done := make(chan struct{})
	defer close(done)

	results := make([]*fileResult, len(paths))
	for i := range results {
		results[i] = &fileResult{batches: make(chan []obs.Event, 2)}
	}

	// Launch workers in file order under a semaphore. In-order launch is
	// what makes the fan-in deadlock-free: the file it is draining always
	// has a running (or finished) worker, never one parked behind later
	// files' slots.
	sem := make(chan struct{}, workers)
	go func() {
		for i, p := range paths {
			select {
			case sem <- struct{}{}:
			case <-done:
				// Fan-in already returned; nobody will read this channel,
				// but close it so the loop owns every unstarted result.
				close(results[i].batches)
				continue
			}
			go func(fr *fileResult, path string) {
				defer func() { <-sem }()
				decodeInto(path, opt, fr, done)
			}(results[i], p)
		}
	}()

	for i := range paths {
		fr := results[i]
		// Cancellation is checked between batches, not between events: a
		// batch already handed over is delivered whole, so reporters see a
		// clean prefix of the stream. With a nil Context, ctx.Done() is a
		// nil channel and the select always takes the batch arm.
	drain:
		for {
			select {
			case batch, ok := <-fr.batches:
				if !ok {
					break drain
				}
				for _, e := range batch {
					for _, r := range reporters {
						r.Observe(e)
					}
				}
				stats.Events += int64(len(batch))
			case <-ctx.Done():
				return stats, ctx.Err()
			}
		}
		if fr.err != nil {
			return stats, fr.err
		}
		stats.Skipped += fr.skipped
	}
	return stats, nil
}

// decodeInto decodes one input into fr.batches, closing the channel when
// done. Events decoded before a fatal error are dropped, matching the
// strict CLI behavior of aborting the whole report.
func decodeInto(path string, opt StreamOptions, fr *fileResult, done <-chan struct{}) {
	defer close(fr.batches)

	label := path
	var r io.Reader
	if path == "-" {
		label = "stdin"
		if opt.Stdin == nil {
			fr.err = errors.New("stdin: no reader configured for \"-\"")
			return
		}
		r = opt.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fr.err = err
			return
		}
		defer f.Close()
		r = f
	}

	d := NewDecoder(r)
	batch := make([]obs.Event, 0, streamBatch)
	send := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case fr.batches <- batch:
			batch = make([]obs.Event, 0, streamBatch)
			return true
		case <-done:
			return false
		}
	}
	defer func() { fr.skipped = int64(d.Malformed()) }()
	for {
		e, err := d.Next()
		if err == io.EOF {
			send()
			return
		}
		if err != nil {
			if opt.Lenient && d.sc.Err() == nil { // malformed line, framing intact
				continue
			}
			fr.err = fmt.Errorf("%s: %w", label, err)
			return
		}
		batch = append(batch, e)
		if len(batch) == cap(batch) && !send() {
			return
		}
	}
}
