package obsreport

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"mobilestorage/internal/obs"
)

// Format selects a report rendering.
type Format string

// The supported renderings.
const (
	Text Format = "text"
	CSV  Format = "csv"
	JSON Format = "json"
	SVG  Format = "svg"
)

// ParseFormat validates a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case Text, CSV, JSON, SVG:
		return Format(s), nil
	default:
		return "", fmt.Errorf("obsreport: unknown format %q (want text, csv, json, or svg)", s)
	}
}

// writeJSON renders any report as indented JSON with a trailing newline.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteTimelines renders the state-timeline report.
func WriteTimelines(w io.Writer, tls []*DeviceTimeline, f Format) error {
	switch f {
	case JSON:
		return writeJSON(w, tls)
	case SVG:
		return TimelineChart(tls).Render(w)
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"dev", "sleep_start_us", "sleep_end_us", "sleep_s"}); err != nil {
			return err
		}
		for _, tl := range tls {
			for _, iv := range tl.Sleeps {
				cw.Write([]string{tl.Dev, itoa(iv.StartUs), itoa(iv.EndUs),
					ftoa(float64(iv.DurationUs()) / 1e6)})
			}
		}
		cw.Flush()
		return cw.Error()
	default:
		if len(tls) == 0 {
			fmt.Fprintln(w, "no spin-state events in stream")
			return nil
		}
		for _, tl := range tls {
			name := tl.Dev
			if name == "" {
				name = "(unnamed)"
			}
			fmt.Fprintf(w, "device %s: %d spin-ups, %d spin-downs, %d completed sleeps, %.1f s asleep\n",
				name, tl.SpinUps, tl.SpinDowns, len(tl.Sleeps), float64(tl.TotalSleepUs)/1e6)
			if tl.OpenSleepUs >= 0 {
				fmt.Fprintf(w, "  ended the run asleep since t=%.1f s\n", float64(tl.OpenSleepUs)/1e6)
			}
			if tl.SleepHist.N > 0 {
				fmt.Fprintf(w, "  sleep duration s: p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
					tl.SleepHist.Quantile(0.50), tl.SleepHist.Quantile(0.90),
					tl.SleepHist.Quantile(0.99), tl.SleepHist.Max)
				writeHistText(w, "  ", tl.SleepHist, "s")
			}
		}
		return nil
	}
}

// WriteLatency renders the latency report.
func WriteLatency(w io.Writer, kinds []KindLatency, f Format) error {
	switch f {
	case JSON:
		return writeJSON(w, kinds)
	case SVG:
		return LatencyChart(kinds).Render(w)
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"kind", "n", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"}); err != nil {
			return err
		}
		for _, k := range kinds {
			cw.Write([]string{k.Kind, itoa(k.N), ftoa(k.MeanMs), ftoa(k.P50Ms),
				ftoa(k.P90Ms), ftoa(k.P99Ms), ftoa(k.MaxMs)})
		}
		cw.Flush()
		return cw.Error()
	default:
		if len(kinds) == 0 {
			fmt.Fprintln(w, "no duration-bearing events in stream")
			return nil
		}
		fmt.Fprintf(w, "%-18s %8s %10s %10s %10s %10s %10s\n",
			"kind", "n", "mean ms", "p50 ms", "p90 ms", "p99 ms", "max ms")
		for _, k := range kinds {
			fmt.Fprintf(w, "%-18s %8d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				k.Kind, k.N, k.MeanMs, k.P50Ms, k.P90Ms, k.P99Ms, k.MaxMs)
		}
		return nil
	}
}

// WriteWear renders the wear report.
func WriteWear(w io.Writer, r *WearReport, f Format) error {
	switch f {
	case JSON:
		return writeJSON(w, r)
	case SVG:
		return WearChart(r).Render(w)
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"segment", "erases"}); err != nil {
			return err
		}
		for _, s := range r.Segments {
			cw.Write([]string{itoa(s.Segment), itoa(s.Erases)})
		}
		cw.Flush()
		return cw.Error()
	default:
		if len(r.Segments) == 0 {
			fmt.Fprintln(w, "no flashcard.erase events in stream")
			return nil
		}
		fmt.Fprintf(w, "%d erases across %d segments: mean %.2f/unit, min %d, max %d (spread %.2f×, σ %.2f)\n",
			r.TotalErases, len(r.Segments), r.MeanErase, r.MinErase, r.MaxErase, r.Spread, r.StdDevErase)
		// Compact per-segment dump, eight segments per row.
		for i := 0; i < len(r.Segments); i += 8 {
			end := i + 8
			if end > len(r.Segments) {
				end = len(r.Segments)
			}
			for _, s := range r.Segments[i:end] {
				fmt.Fprintf(w, "  seg %4d: %-6d", s.Segment, s.Erases)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
}

// WriteEnergy renders the energy-over-time report.
func WriteEnergy(w io.Writer, series []EnergySeries, f Format) error {
	switch f {
	case JSON:
		return writeJSON(w, series)
	case SVG:
		return EnergyChart(series).Render(w)
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"component", "t_us", "joules"}); err != nil {
			return err
		}
		for _, s := range series {
			for _, p := range s.Points {
				cw.Write([]string{s.Component, itoa(p.TUs), ftoa(p.Joules)})
			}
		}
		cw.Flush()
		return cw.Error()
	default:
		if len(series) == 0 {
			fmt.Fprintln(w, "no sample.energy events in stream (run storagesim with -sample)")
			return nil
		}
		for _, s := range series {
			final := s.Points[len(s.Points)-1]
			fmt.Fprintf(w, "%-8s %4d samples, final %.1f J at t=%.1f s\n",
				s.Component, len(s.Points), final.Joules, float64(final.TUs)/1e6)
		}
		// A shared-axis table: one row per sample time of the densest
		// series.
		fmt.Fprintf(w, "%10s", "t_s")
		for _, s := range series {
			fmt.Fprintf(w, " %10s", s.Component+"_J")
		}
		fmt.Fprintln(w)
		longest := 0
		for i, s := range series {
			if len(s.Points) > len(series[longest].Points) {
				longest = i
			}
		}
		for i, p := range series[longest].Points {
			fmt.Fprintf(w, "%10.1f", float64(p.TUs)/1e6)
			for _, s := range series {
				if i < len(s.Points) {
					fmt.Fprintf(w, " %10.2f", s.Points[i].Joules)
				} else {
					fmt.Fprintf(w, " %10s", "")
				}
			}
			fmt.Fprintln(w)
		}
		return nil
	}
}

// WriteCleaning renders the cleaning report.
func WriteCleaning(w io.Writer, r *CleaningReport, f Format) error {
	switch f {
	case JSON:
		return writeJSON(w, r)
	case SVG:
		return CleaningChart(r).Render(w)
	case CSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"cleans", "copied_blocks", "stalls", "mean_live_per_clean", "total_clean_s",
			"index_engine", "index_amp"}); err != nil {
			return err
		}
		cw.Write([]string{itoa(r.Cleans), itoa(r.CopiedBlocks), itoa(r.Stalls),
			ftoa(r.MeanLivePerClean), ftoa(float64(r.TotalCleanUs) / 1e6),
			r.IndexEngine, ftoa(r.IndexAmp)})
		cw.Flush()
		return cw.Error()
	default:
		if r.Cleans == 0 && r.IndexEngine == "" {
			fmt.Fprintln(w, "no flashcard.clean events in stream")
			return nil
		}
		if r.Cleans > 0 {
			fmt.Fprintf(w, "%d cleans relocated %d live blocks (%.2f/clean), %d stalled writes, %.1f s cleaning\n",
				r.Cleans, r.CopiedBlocks, r.MeanLivePerClean, r.Stalls, float64(r.TotalCleanUs)/1e6)
			fmt.Fprintf(w, "live blocks per clean: p50=%.1f p90=%.1f p99=%.1f max=%.0f\n",
				r.LivePerClean.Quantile(0.50), r.LivePerClean.Quantile(0.90),
				r.LivePerClean.Quantile(0.99), r.LivePerClean.Max)
			writeHistText(w, "", r.LivePerClean, "blocks")
		}
		if r.IndexEngine != "" {
			fmt.Fprintf(w, "index %s: %.2f× write amplification (%d bytes written / %d logical)\n",
				r.IndexEngine, r.IndexAmp, r.IndexWrittenBytes, r.IndexLogicalBytes)
		}
		return nil
	}
}

// writeHistText prints the non-empty buckets of a histogram as an ASCII
// bar chart.
func writeHistText(w io.Writer, indent string, h *Hist, unit string) {
	var peak int64
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	if h.Overflow > peak {
		peak = h.Overflow
	}
	if peak == 0 {
		return
	}
	bar := func(c int64) string {
		n := int(c * 40 / peak)
		if n == 0 && c > 0 {
			n = 1
		}
		out := make([]byte, n)
		for i := range out {
			out[i] = '#'
		}
		return string(out)
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(w, "%s≤ %10.3g %-6s %8d %s\n", indent, h.Bounds[i], unit, c, bar(c))
	}
	if h.Overflow > 0 {
		fmt.Fprintf(w, "%s> %10.3g %-6s %8d %s\n", indent, h.Bounds[len(h.Bounds)-1], unit, h.Overflow, bar(h.Overflow))
	}
}

// WriteTimelineCSV renders a sampler timeline as CSV: one row per sample,
// the union of gauge and counter names as columns (sorted, gauges first),
// so a run's full metric history drops straight into a plotting tool.
func WriteTimelineCSV(w io.Writer, tl *obs.Timeline) error {
	if tl == nil || len(tl.Points) == 0 {
		return fmt.Errorf("obsreport: empty timeline")
	}
	gaugeSet := make(map[string]bool)
	counterSet := make(map[string]bool)
	for _, p := range tl.Points {
		for name := range p.Gauges {
			gaugeSet[name] = true
		}
		for name := range p.Counters {
			counterSet[name] = true
		}
	}
	gauges := sortedNames(gaugeSet)
	counters := sortedNames(counterSet)

	cw := csv.NewWriter(w)
	header := append([]string{"t_s"}, gauges...)
	header = append(header, counters...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, p := range tl.Points {
		row = row[:0]
		row = append(row, ftoa(float64(p.TUs)/1e6))
		for _, name := range gauges {
			row = append(row, ftoa(p.Gauges[name]))
		}
		for _, name := range counters {
			row = append(row, itoa(p.Counters[name]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func itoa[T ~int64](v T) string { return strconv.FormatInt(int64(v), 10) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
