package obsreport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"mobilestorage/internal/obs"
)

// writeStream splits data into n files in a temp dir, cutting only at line
// boundaries, and returns their paths.
func writeStream(t *testing.T, data []byte, n int) []string {
	t.Helper()
	dir := t.TempDir()
	lines := bytes.SplitAfter(data, []byte("\n"))
	per := (len(lines) + n - 1) / n
	var paths []string
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(lines) {
			lo = len(lines)
		}
		if hi > len(lines) {
			hi = len(lines)
		}
		path := filepath.Join(dir, fmt.Sprintf("part%d.ndjson", i))
		if err := os.WriteFile(path, bytes.Join(lines[lo:hi], nil), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}

// renderAll renders every report from a finished builder set.
func renderAll(w io.Writer, tb *TimelineBuilder, lb *LatencyBuilder, wb *WearBuilder,
	eb *EnergyBuilder, cb *CleaningBuilder, f Format) error {
	if err := WriteTimelines(w, tb.Finish(), f); err != nil {
		return err
	}
	if err := WriteLatency(w, lb.Finish(), f); err != nil {
		return err
	}
	if err := WriteWear(w, wb.Finish(), f); err != nil {
		return err
	}
	if err := WriteEnergy(w, eb.Finish(), f); err != nil {
		return err
	}
	return WriteCleaning(w, cb.Finish(), f)
}

// The acceptance bar for the streaming refactor: feeding the builders via
// StreamFiles renders byte-identical output to the slice-based functions,
// across every report and format, for single and sharded inputs.
func TestStreamingMatchesSliceRenders(t *testing.T) {
	data := benchStream(5_000)
	events, err := ReadEvents(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	sliceRender := func(f Format) string {
		var b bytes.Buffer
		if err := WriteTimelines(&b, StateTimelines(events), f); err != nil {
			t.Fatal(err)
		}
		if err := WriteLatency(&b, Latency(events), f); err != nil {
			t.Fatal(err)
		}
		if err := WriteWear(&b, Wear(events), f); err != nil {
			t.Fatal(err)
		}
		if err := WriteEnergy(&b, Energy(events), f); err != nil {
			t.Fatal(err)
		}
		if err := WriteCleaning(&b, Cleaning(events), f); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	streamRender := func(paths []string, workers int, f Format) string {
		tb, lb, wb, eb, cb := NewTimelineBuilder(), NewLatencyBuilder(), NewWearBuilder(),
			NewEnergyBuilder(), NewCleaningBuilder()
		stats, err := StreamFiles(paths, StreamOptions{Workers: workers}, tb, lb, wb, eb, cb)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Events != int64(len(events)) {
			t.Fatalf("streamed %d events, want %d", stats.Events, len(events))
		}
		var b bytes.Buffer
		if err := renderAll(&b, tb, lb, wb, eb, cb, f); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	one := writeStream(t, data, 1)
	four := writeStream(t, data, 4)
	for _, f := range []Format{Text, CSV, JSON} {
		want := sliceRender(f)
		if got := streamRender(one, 1, f); got != want {
			t.Errorf("%s: single-file streaming render differs from slice render", f)
		}
		for _, workers := range []int{1, 2, 8} {
			if got := streamRender(four, workers, f); got != want {
				t.Errorf("%s/workers=%d: sharded streaming render differs from slice render", f, workers)
			}
		}
	}
}

// Sharded delivery order is file order then line order, regardless of
// worker count or which shard finishes decoding first.
func TestStreamFilesDeterministicOrder(t *testing.T) {
	data := benchStream(3_000)
	want, err := ReadEvents(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	paths := writeStream(t, data, 5)
	for _, workers := range []int{1, 3, 16} {
		var got []obs.Event
		collect := reporterFunc(func(e obs.Event) { got = append(got, e) })
		if _, err := StreamFiles(paths, StreamOptions{Workers: workers}, collect); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: event %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// reporterFunc adapts a closure to the Reporter interface.
type reporterFunc func(obs.Event)

func (f reporterFunc) Observe(e obs.Event) { f(e) }

func TestStreamFilesErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ndjson")
	bad := filepath.Join(dir, "bad.ndjson")
	os.WriteFile(good, []byte(`{"t_us":1,"kind":"cache.hit","size":1}`+"\n"), 0o644)
	os.WriteFile(bad, []byte("{\"t_us\":1,\"kind\":\"cache.hit\"}\ngarbage\n"), 0o644)

	// Strict mode: the error names the offending file.
	var n int64
	count := reporterFunc(func(obs.Event) { n++ })
	_, err := StreamFiles([]string{good, bad}, StreamOptions{}, count)
	if err == nil || !strings.Contains(err.Error(), "bad.ndjson") {
		t.Errorf("error %v, want mention of bad.ndjson", err)
	}

	// Lenient mode: skipped lines are counted across shards.
	stats, err := StreamFiles([]string{good, bad, good}, StreamOptions{Lenient: true}, count)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 3 || stats.Skipped != 1 {
		t.Errorf("stats %+v, want 3 events / 1 skipped", stats)
	}

	if _, err := StreamFiles([]string{filepath.Join(dir, "missing")}, StreamOptions{}, count); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := StreamFiles(nil, StreamOptions{}, count); err == nil {
		t.Error("empty path list accepted")
	}
	if _, err := StreamFiles([]string{"-"}, StreamOptions{}, count); err == nil {
		t.Error("\"-\" accepted without a stdin reader")
	}
}

// Error paths must propagate without deadlocking the fan-in, even with
// healthy shards queued behind (and blocked on) the failing one, and must
// leave no decode worker behind.
func TestStreamFilesErrorPropagation(t *testing.T) {
	dir := t.TempDir()
	big := benchStream(20_000) // several batches per shard, so workers block on the fan-in
	good := filepath.Join(dir, "good.ndjson")
	if err := os.WriteFile(good, big, 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.ndjson")
	if err := os.WriteFile(bad, append(append([]byte{}, big[:len(big)/2]...), "garbage\n"...), 0o644); err != nil {
		t.Fatal(err)
	}
	oversized := filepath.Join(dir, "oversized.ndjson")
	if err := os.WriteFile(oversized, append(bytes.Repeat([]byte("x"), maxLineBytes+1), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		paths   []string
		lenient bool
		wantIn  string // substring the error must carry
	}{
		{"unreadable first of many", []string{filepath.Join(dir, "missing"), good, good, good}, false, "missing"},
		{"unreadable is a directory", []string{dir, good, good}, false, dir},
		{"decode error mid-file", []string{bad, good, good, good}, false, "bad.ndjson"},
		{"decode error in last shard", []string{good, good, bad}, false, "bad.ndjson"},
		{"oversized line aborts even lenient", []string{oversized, good}, true, "oversized.ndjson"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			var n int64
			count := reporterFunc(func(obs.Event) { n++ })
			_, err := StreamFiles(tc.paths, StreamOptions{Lenient: tc.lenient, Workers: 4}, count)
			if err == nil || !strings.Contains(err.Error(), tc.wantIn) {
				t.Fatalf("error %v, want mention of %q", err, tc.wantIn)
			}
			// The done-channel abort must wind the workers down; give the
			// scheduler a moment before declaring a leak.
			for i := 0; i < 100 && runtime.NumGoroutine() > before+2; i++ {
				time.Sleep(time.Millisecond)
			}
			if g := runtime.NumGoroutine(); g > before+2 {
				t.Errorf("goroutines grew from %d to %d after an aborted stream", before, g)
			}
		})
	}
}

// A cancelled Context stops the stream at a batch boundary and returns
// ctx.Err(), whether cancelled up front or mid-flight.
func TestStreamFilesContextCancel(t *testing.T) {
	data := benchStream(5_000)
	paths := writeStream(t, data, 2)

	// Already cancelled: nothing flows.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n int64
	count := reporterFunc(func(obs.Event) { n++ })
	_, err := StreamFiles(paths, StreamOptions{Context: ctx, Workers: 2}, count)
	if err != context.Canceled {
		t.Fatalf("pre-cancelled: err %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Errorf("pre-cancelled context delivered %d events", n)
	}

	// Cancelled mid-stream: the endless generator would run ~3M events;
	// cancellation from inside a reporter must cut it short at the next
	// batch boundary, with no events observed after StreamFiles returns.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	gen := &eventGen{remaining: 3_000_000}
	var seen, after int64
	done := false
	watch := reporterFunc(func(obs.Event) {
		if done {
			after++
		}
		if seen++; seen == 10_000 {
			cancel()
		}
	})
	stats, err := StreamFiles([]string{"-"}, StreamOptions{Stdin: gen, Context: ctx}, watch)
	done = true
	if err != context.Canceled {
		t.Fatalf("mid-stream: err %v, want context.Canceled", err)
	}
	if stats.Events >= 3_000_000 || seen >= 3_000_000 {
		t.Errorf("cancellation did not cut the stream short: %d events", stats.Events)
	}
	if stats.Events < 10_000 {
		t.Errorf("events before cancellation lost: stats %d, want >= 10000", stats.Events)
	}
	if after != 0 {
		t.Errorf("%d events observed after StreamFiles returned", after)
	}

	// A nil Context stays the zero-cost default.
	var m int64
	countAll := reporterFunc(func(obs.Event) { m++ })
	stats, err = StreamFiles(paths, StreamOptions{}, countAll)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != m || m == 0 {
		t.Errorf("nil-context stream delivered %d events (observed %d)", stats.Events, m)
	}
}

func TestStreamFilesStdin(t *testing.T) {
	data := benchStream(100)
	var n int64
	count := reporterFunc(func(obs.Event) { n++ })
	stats, err := StreamFiles([]string{"-"}, StreamOptions{Stdin: bytes.NewReader(data)}, count)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 100 || n != 100 {
		t.Errorf("stdin streamed %d events (observed %d), want 100", stats.Events, n)
	}
}

// eventGen synthesizes an endless NDJSON stream on the fly: a reader that
// never materializes the whole stream, so the constant-memory test can push
// hundreds of megabytes through the pipeline from a few KB of state.
type eventGen struct {
	remaining int64 // events left to emit
	seq       int64
	buf       bytes.Buffer
	bytesOut  int64
}

func (g *eventGen) Read(p []byte) (int, error) {
	for g.buf.Len() < len(p) && g.remaining > 0 {
		sink := obs.NewNDJSONSink(&g.buf)
		for i := 0; i < 512 && g.remaining > 0; i++ {
			g.seq++
			g.remaining--
			switch g.seq % 4 {
			case 0:
				sink.Emit(obs.Event{T: g.seq * 1000, Kind: obs.EvCardClean, Dev: "fc",
					Addr: g.seq % 64, Size: g.seq % 90, Dur: 40_000})
			case 1:
				sink.Emit(obs.Event{T: g.seq * 1000, Kind: obs.EvCardErase, Dev: "fc",
					Addr: g.seq % 64, Size: g.seq/64 + 1})
			case 2:
				sink.Emit(obs.Event{T: g.seq * 1000, Kind: obs.EvSRAMFlush, Dev: "sram",
					Size: 8192, Dur: 1000 + g.seq%5000})
			default:
				sink.Emit(obs.Event{T: g.seq * 1000, Kind: obs.EvDiskSpinUp, Dev: "cu140",
					Dur: g.seq % 900_000})
			}
		}
		sink.Flush()
	}
	if g.buf.Len() == 0 {
		return 0, io.EOF
	}
	n, err := g.buf.Read(p)
	g.bytesOut += int64(n)
	return n, err
}

// The constant-memory guarantee: a multi-hundred-MB stream flows through
// the full pipeline (scanner → builders) while the live heap stays within
// a small fixed bound, because no stage retains per-event state.
func TestStreamConstantMemory(t *testing.T) {
	events := int64(3_000_000) // ≈ 230 MB of NDJSON
	if testing.Short() {
		events = 400_000
	}
	gen := &eventGen{remaining: events}

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	const heapBudget = 64 << 20 // far below the stream size, far above builder state
	var peak uint64
	var seen int64
	tb, lb, wb, cb := NewTimelineBuilder(), NewLatencyBuilder(), NewWearBuilder(), NewCleaningBuilder()
	watch := reporterFunc(func(obs.Event) {
		seen++
		if seen%500_000 == 0 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > peak {
				peak = m.HeapAlloc
			}
		}
	})
	stats, err := StreamFiles([]string{"-"}, StreamOptions{Stdin: gen}, tb, lb, wb, cb, watch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != events {
		t.Fatalf("streamed %d events, want %d", stats.Events, events)
	}
	if !testing.Short() && gen.bytesOut < 200<<20 {
		t.Fatalf("stream was only %d MB, want a multi-hundred-MB input", gen.bytesOut>>20)
	}
	if peak > base.HeapAlloc+heapBudget {
		t.Errorf("heap grew to %d MB while streaming %d MB (budget %d MB above the %d MB baseline)",
			peak>>20, gen.bytesOut>>20, heapBudget>>20, base.HeapAlloc>>20)
	}
	// The reports themselves must be sane, proving events flowed through.
	if wb.Finish().TotalErases != (events+2)/4 {
		t.Errorf("wear erases %d, want %d", wb.Finish().TotalErases, (events+2)/4)
	}
}
