package index

import (
	"math/rand"
	"sort"
	"testing"

	"mobilestorage/internal/units"
)

// modelApply drives an engine and a model map through the same op,
// returning the op for reporting.
func modelApply(e Engine, model map[uint64]uint64, op Op) {
	switch op.Kind {
	case OpInsert:
		e.Insert(op.Key, op.Val)
		model[op.Key] = op.Val
	case OpLookup:
		e.Lookup(op.Key)
	case OpScan:
		n := 0
		e.Scan(op.Key, func(_, _ uint64) bool { n++; return n < op.N })
	case OpDelete:
		e.Delete(op.Key)
		delete(model, op.Key)
	}
}

// checkAgainstModel asserts full engine/model agreement: every model key
// looks up to its value, absent keys miss, and a full scan returns exactly
// the model's pairs in sorted order.
func checkAgainstModel(t *testing.T, e Engine, model map[uint64]uint64, rng *rand.Rand) {
	t.Helper()
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for _, k := range keys {
		v, ok := e.Lookup(k)
		if !ok || v != model[k] {
			t.Fatalf("Lookup(%d) = %d,%v; model has %d", k, v, ok, model[k])
		}
	}
	for i := 0; i < 32; i++ {
		k := uint64(rng.Int63())
		if _, in := model[k]; in {
			continue
		}
		if v, ok := e.Lookup(k); ok {
			t.Fatalf("Lookup(%d) = %d,true; model has no such key", k, v)
		}
	}

	var got []uint64
	e.Scan(0, func(k, v uint64) bool {
		if v != model[k] {
			t.Fatalf("Scan yields %d=%d; model says %d", k, v, model[k])
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("full scan yields %d keys; model has %d", len(got), len(keys))
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("scan key %d = %d, want %d", i, got[i], keys[i])
		}
		if i > 0 && got[i-1] >= got[i] {
			t.Fatalf("scan not strictly ascending at %d: %d then %d", i, got[i-1], got[i])
		}
	}
}

// TestBTreeProperty runs seeded random op sequences against the model map,
// checking after every batch that lookups/scans agree and the structural
// invariants (sorted keys, occupancy bounds, uniform depth, sibling chain)
// hold. Tiny pages force constant splits and merges.
func TestBTreeProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 17, 404} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			// 16 pages: deep enough pin chains fit (path + rebalance trio)
			// while the ~300-page tree still spills constantly.
			pg, err := NewPager(256, 16)
			if err != nil {
				t.Fatal(err)
			}
			tree := NewBTree(pg)
			g := NewOpGen(OpsConfig{
				Seed:     seed,
				Ops:      4000,
				KeySpace: 4096, // small space → plenty of overwrites and hits
				Mix:      Mix{Insert: 45, Lookup: 20, Scan: 10, Delete: 25},
			})
			model := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			for i := 0; i < g.cfg.Ops; i++ {
				modelApply(tree, model, g.Next())
				if i%500 == 499 {
					if err := tree.checkInvariants(); err != nil {
						t.Fatalf("after op %d: %v", i, err)
					}
					checkAgainstModel(t, tree, model, rng)
				}
			}
			if err := tree.checkInvariants(); err != nil {
				t.Fatal(err)
			}
			checkAgainstModel(t, tree, model, rng)
			if tree.Len() != len(model) {
				t.Fatalf("Len = %d, model has %d", tree.Len(), len(model))
			}
			tree.Flush()
			if err := pg.Trace("btree").Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBTreeDeleteReturn checks Delete reports presence correctly.
func TestBTreeDeleteReturn(t *testing.T) {
	pg, err := NewPager(256, minPoolPages)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewBTree(pg)
	if tree.Delete(42) {
		t.Fatal("delete of absent key returned true")
	}
	tree.Insert(42, 1)
	if !tree.Delete(42) {
		t.Fatal("delete of present key returned false")
	}
	if tree.Delete(42) {
		t.Fatal("second delete returned true")
	}
}

// TestBTreeDrainToEmpty inserts then deletes everything, requiring the
// tree to collapse back to a valid (possibly empty-leaf) root.
func TestBTreeDrainToEmpty(t *testing.T) {
	pg, err := NewPager(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewBTree(pg)
	const n = 1000
	perm := rand.New(rand.NewSource(9)).Perm(n)
	for _, k := range perm {
		tree.Insert(uint64(k), uint64(k)*3)
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range perm {
		if !tree.Delete(uint64(k)) {
			t.Fatalf("Delete(%d) missed", k)
		}
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d after drain", tree.Len())
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	tree.Scan(0, func(_, _ uint64) bool { count++; return true })
	if count != 0 {
		t.Fatalf("scan of drained tree yields %d keys", count)
	}
}

// TestBTreeSequentialInsert covers the classic ascending-insert pattern
// (rightmost-leaf splits) at production-ish page size.
func TestBTreeSequentialInsert(t *testing.T) {
	pg, err := NewPager(1*units.KB, 32)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewBTree(pg)
	const n = 5000
	for k := uint64(0); k < n; k++ {
		tree.Insert(k, k+1)
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != n {
		t.Fatalf("Len = %d, want %d", tree.Len(), n)
	}
	// Bounded scan from the middle.
	want := uint64(n / 2)
	tree.Scan(want, func(k, v uint64) bool {
		if k != want || v != k+1 {
			t.Fatalf("scan saw %d=%d, want %d=%d", k, v, want, want+1)
		}
		want++
		return want < n/2+100
	})
}

// TestBTreeWriteAmplification sanity-checks Stats: physical writes must
// exceed logical bytes (whole pages rewritten per entry) and the ratio
// must be finite and positive.
func TestBTreeWriteAmplification(t *testing.T) {
	tr, st, err := GenerateTrace(BenchTraceConfig(EngineBTree, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) == 0 {
		t.Fatal("empty trace")
	}
	if st.LogicalBytes <= 0 || st.WrittenBytes <= 0 {
		t.Fatalf("degenerate stats %+v", st)
	}
	if wa := st.WriteAmplification(); wa <= 1 {
		t.Fatalf("B+tree write amplification %.2f ≤ 1 — page-granular writes must amplify", wa)
	}
}
