package index

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilestorage/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden trace hashes")

// goldenConfigs are the workload shapes whose generated traces are pinned
// by hash: the exact configs the indexbench experiment replays, plus a
// read-heavy variant. Any change to the generator, pager, or either engine
// that alters a single emitted byte fails TestTraceGolden.
func goldenConfigs() []TraceConfig {
	var cfgs []TraceConfig
	for _, kind := range EngineKinds {
		cfgs = append(cfgs,
			BenchTraceConfig(kind, 1),
			TraceConfig{Engine: kind, Ops: OpsConfig{Seed: 1, Ops: 4000, Mix: ReadHeavyMix}},
		)
	}
	return cfgs
}

func goldenName(cfg TraceConfig) string {
	mix := "default"
	if cfg.Ops.Mix == ReadHeavyMix {
		mix = "readheavy"
	}
	return fmt.Sprintf("%s-%s-seed%d-ops%d.sha256", cfg.Engine, mix, cfg.Ops.Seed, cfg.Ops.Ops)
}

func traceHash(t *testing.T, cfg TraceConfig) string {
	t.Helper()
	tr, _, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestTraceGolden pins the generated traces byte-for-byte via sha256 of
// their binary encoding. Refresh with `go test ./internal/index -update`
// after an intentional generator change.
func TestTraceGolden(t *testing.T) {
	for _, cfg := range goldenConfigs() {
		cfg := cfg
		t.Run(goldenName(cfg), func(t *testing.T) {
			t.Parallel()
			got := traceHash(t, cfg)
			path := filepath.Join("testdata", "golden", goldenName(cfg))
			if *update {
				if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			want := strings.TrimSpace(string(raw))
			if got != want {
				t.Fatalf("trace hash drifted:\n got %s\nwant %s\nRun `go test ./internal/index -update` only if the change is intentional.", got, want)
			}
		})
	}
}

// TestTraceDeterminism generates each golden config twice in-process and
// requires byte-identical encodings and identical stats — the stronger
// same-process half of the determinism story (the golden hash covers
// cross-build drift).
func TestTraceDeterminism(t *testing.T) {
	for _, cfg := range goldenConfigs() {
		cfg := cfg
		t.Run(goldenName(cfg), func(t *testing.T) {
			t.Parallel()
			tr1, st1, err := GenerateTrace(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tr2, st2, err := GenerateTrace(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b1, b2 bytes.Buffer
			if err := trace.EncodeBinary(&b1, tr1); err != nil {
				t.Fatal(err)
			}
			if err := trace.EncodeBinary(&b2, tr2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatal("same config produced different traces")
			}
			if st1 != st2 {
				t.Fatalf("same config produced different stats:\n%+v\n%+v", st1, st2)
			}
		})
	}
}

// TestSeedsDiverge guards against the generator ignoring its seed: two
// different seeds must produce different traces.
func TestSeedsDiverge(t *testing.T) {
	cfgA := TraceConfig{Engine: EngineBTree, Ops: OpsConfig{Seed: 1, Ops: 500}}
	cfgB := TraceConfig{Engine: EngineBTree, Ops: OpsConfig{Seed: 2, Ops: 500}}
	if traceHash(t, cfgA) == traceHash(t, cfgB) {
		t.Fatal("seeds 1 and 2 produced identical traces")
	}
}
