package index

import (
	"testing"
)

// FuzzIndexOps is the native fuzz target over both index engines: the
// inputs pick a seed, an op budget, a mix, tiny pager geometry, and an
// engine, then the run is checked against an in-memory model map plus the
// structural invariants (B+tree shape, LSM level disjointness) and trace
// validity. Any divergence or panic is a finding. Corpus seeds live under
// testdata/fuzz/FuzzIndexOps; run with
//
//	go test ./internal/index -run='^$' -fuzz=FuzzIndexOps -fuzztime=30s
func FuzzIndexOps(f *testing.F) {
	f.Add(int64(1), uint16(200), uint8(0), uint8(0))
	f.Add(int64(2), uint16(800), uint8(1), uint8(1))
	f.Add(int64(3), uint16(1500), uint8(2), uint8(0))
	f.Add(int64(77), uint16(400), uint8(3), uint8(1))
	f.Add(int64(-9), uint16(1000), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, opBudget uint16, mixSel, engineSel uint8) {
		ops := int(opBudget)%2000 + 50
		mixes := []Mix{
			DefaultMix,
			ReadHeavyMix,
			{Insert: 40, Lookup: 20, Scan: 10, Delete: 30}, // churn-heavy
			{Insert: 90, Lookup: 5, Scan: 3, Delete: 2},    // load-heavy
		}
		kind := EngineKinds[int(engineSel)%len(EngineKinds)]

		pg, err := NewPager(256, 16)
		if err != nil {
			t.Fatal(err)
		}
		cfg := TraceConfig{Engine: kind, PageSize: 256, PoolPages: 16, MemtableBytes: 256}
		eng, err := NewEngine(cfg, pg)
		if err != nil {
			t.Fatal(err)
		}
		g := NewOpGen(OpsConfig{
			Seed:     seed,
			Ops:      ops,
			KeySpace: 1 << 12, // tiny: maximizes overwrite/delete collisions
			Mix:      mixes[int(mixSel)%len(mixes)],
		})
		model := make(map[uint64]uint64)
		for i := 0; i < ops; i++ {
			op := g.Next()
			pg.Advance(g.gap())
			switch op.Kind {
			case OpInsert:
				eng.Insert(op.Key, op.Val)
				model[op.Key] = op.Val
			case OpLookup:
				v, ok := eng.Lookup(op.Key)
				mv, min := model[op.Key]
				if ok != min || (ok && v != mv) {
					t.Fatalf("op %d: Lookup(%d) = %d,%v; model %d,%v", i, op.Key, v, ok, mv, min)
				}
			case OpScan:
				var prev uint64
				n := 0
				eng.Scan(op.Key, func(k, v uint64) bool {
					if k < op.Key {
						t.Fatalf("op %d: scan from %d yielded smaller key %d", i, op.Key, k)
					}
					if n > 0 && k <= prev {
						t.Fatalf("op %d: scan not ascending (%d then %d)", i, prev, k)
					}
					if mv, in := model[k]; !in || mv != v {
						t.Fatalf("op %d: scan yielded %d=%d; model %d,%v", i, k, v, mv, in)
					}
					prev = k
					n++
					return n < op.N
				})
			case OpDelete:
				_, want := model[op.Key]
				if got := eng.Delete(op.Key); got != want {
					t.Fatalf("op %d: Delete(%d) = %v, model presence %v", i, op.Key, got, want)
				}
				delete(model, op.Key)
			}
		}

		// Post-run: full equivalence and structural health.
		count := 0
		eng.Scan(0, func(k, v uint64) bool {
			if mv, in := model[k]; !in || mv != v {
				t.Fatalf("final scan yields %d=%d; model %d,%v", k, v, model[k], in)
			}
			count++
			return true
		})
		if count != len(model) {
			t.Fatalf("final scan yields %d keys; model has %d", count, len(model))
		}
		switch e := eng.(type) {
		case *BTree:
			if err := e.checkInvariants(); err != nil {
				t.Fatal(err)
			}
		case *LSM:
			for lvl := 1; lvl < len(e.levels); lvl++ {
				ssts := e.levels[lvl]
				for j := 1; j < len(ssts); j++ {
					if ssts[j-1].last >= ssts[j].first {
						t.Fatalf("L%d runs %d,%d overlap", lvl, j-1, j)
					}
				}
			}
		}
		eng.Flush()
		if err := pg.Trace("fuzz").Validate(); err != nil {
			t.Fatal(err)
		}
		st := eng.Stats()
		if st.LogicalBytes < 0 || st.WrittenBytes < 0 || st.PageWrites < 0 {
			t.Fatalf("negative stats %+v", st)
		}
	})
}
