package index

import (
	"math/rand"
	"sort"
	"testing"

	"mobilestorage/internal/units"
)

// checkLSMAgainstModel asserts full engine/model agreement including a
// complete iterator pass — the differential oracle the LSM's flush and
// compaction machinery must preserve.
func checkLSMAgainstModel(t *testing.T, l *LSM, model map[uint64]uint64, rng *rand.Rand) {
	t.Helper()
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for _, k := range keys {
		v, ok := l.Lookup(k)
		if !ok || v != model[k] {
			t.Fatalf("Lookup(%d) = %d,%v; model has %d", k, v, ok, model[k])
		}
	}
	for i := 0; i < 32; i++ {
		k := uint64(rng.Int63())
		if _, in := model[k]; in {
			continue
		}
		if v, ok := l.Lookup(k); ok {
			t.Fatalf("Lookup(%d) = %d,true; model has no such key", k, v)
		}
	}

	var got []uint64
	l.Scan(0, func(k, v uint64) bool {
		if v != model[k] {
			t.Fatalf("Scan yields %d=%d; model says %d (tombstone leak or stale shadow)", k, v, model[k])
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("full scan yields %d keys; model has %d", len(got), len(keys))
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("scan key %d = %d, want %d", i, got[i], keys[i])
		}
	}

	// Bounded scans from random points must agree with the model slice.
	for i := 0; i < 8; i++ {
		lo := uint64(rng.Int63()) % (1 << 14)
		start := sort.Search(len(keys), func(i int) bool { return keys[i] >= lo })
		var sub []uint64
		l.Scan(lo, func(k, _ uint64) bool {
			sub = append(sub, k)
			return len(sub) < 20
		})
		for j, k := range sub {
			if start+j >= len(keys) || keys[start+j] != k {
				t.Fatalf("Scan(%d) key %d = %d, want model key %d", lo, j, k, keys[start+j])
			}
		}
		wantLen := len(keys) - start
		if wantLen > 20 {
			wantLen = 20
		}
		if len(sub) != wantLen {
			t.Fatalf("Scan(%d) yields %d keys, want %d", lo, len(sub), wantLen)
		}
	}
}

// TestLSMDifferential drives the LSM and a model map through seeded random
// op sequences with a tiny memtable, so flushes and multi-level
// compactions happen constantly; full equivalence is rechecked at
// boundaries that straddle them. Run under -race in CI.
func TestLSMDifferential(t *testing.T) {
	for _, seed := range []int64{1, 5, 23, 99, 1234} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			pg, err := NewPager(256, 16)
			if err != nil {
				t.Fatal(err)
			}
			// Memtable of one page's worth: a flush every ~15 inserts, L0
			// compaction every ~60, deeper merges soon after.
			l := NewLSM(pg, 256)
			g := NewOpGen(OpsConfig{
				Seed:     seed,
				Ops:      5000,
				KeySpace: 1 << 14,
				Mix:      Mix{Insert: 45, Lookup: 20, Scan: 10, Delete: 25},
			})
			model := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(seed ^ 0x15a))
			for i := 0; i < g.cfg.Ops; i++ {
				modelApply(l, model, g.Next())
				if i%500 == 499 {
					checkLSMAgainstModel(t, l, model, rng)
				}
			}
			checkLSMAgainstModel(t, l, model, rng)

			// The shutdown flush must not change visible contents.
			l.Flush()
			checkLSMAgainstModel(t, l, model, rng)
			if l.Len() != len(model) {
				t.Fatalf("Len = %d, model has %d", l.Len(), len(model))
			}
			if err := pg.Trace("lsm").Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLSMFlushCompactionBoundaries pins equivalence exactly at the
// interesting structural moments: right before and after a memtable flush,
// and across a compaction that merges into a fresh level.
func TestLSMFlushCompactionBoundaries(t *testing.T) {
	pg, err := NewPager(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLSM(pg, 256)
	model := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(77))
	limit := l.memLimit

	insert := func(n int) {
		for i := 0; i < n; i++ {
			k := uint64(rng.Int63()) % (1 << 12)
			v := uint64(rng.Int63())
			l.Insert(k, v)
			model[k] = v
		}
	}

	// Fill to one below the flush threshold, check, then cross it.
	insert(limit - len(l.mem) - 1)
	checkLSMAgainstModel(t, l, model, rng)
	flushesBefore := len(l.levels[0])
	insert(2)
	if len(l.levels[0]) == flushesBefore && len(l.mem) >= limit {
		t.Fatal("crossing the memtable limit did not flush")
	}
	checkLSMAgainstModel(t, l, model, rng)

	// Force enough flushes to trigger L0→L1 compaction and beyond.
	for len(l.levels) < 3 {
		insert(limit)
	}
	checkLSMAgainstModel(t, l, model, rng)

	// Delete half the keys (tombstones must shadow across every level).
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, k := range keys {
		if i%2 == 0 {
			l.Delete(k)
			delete(model, k)
		}
	}
	checkLSMAgainstModel(t, l, model, rng)

	// Flush + settle; tombstones at the bottom level must be gone from
	// scans yet deleted keys stay invisible.
	l.Flush()
	checkLSMAgainstModel(t, l, model, rng)
}

// TestLSMDeleteReturn checks Delete reports prior presence.
func TestLSMDeleteReturn(t *testing.T) {
	pg, err := NewPager(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLSM(pg, 1*units.KB)
	if l.Delete(9) {
		t.Fatal("delete of absent key returned true")
	}
	l.Insert(9, 1)
	if !l.Delete(9) {
		t.Fatal("delete of present key returned false")
	}
	if l.Delete(9) {
		t.Fatal("second delete returned true")
	}
}

// TestLSMLevelInvariants checks structural health after a heavy run: runs
// in L1+ are key-disjoint and sorted, level budgets are respected after
// Flush, and freed SSTable files are never referenced again.
func TestLSMLevelInvariants(t *testing.T) {
	pg, err := NewPager(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLSM(pg, 256)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 8000; i++ {
		l.Insert(uint64(rng.Int63())%(1<<16), uint64(i))
	}
	l.Flush()
	if len(l.levels[0]) >= l0Trigger {
		t.Fatalf("L0 has %d runs after settle, trigger is %d", len(l.levels[0]), l0Trigger)
	}
	for lvl := 1; lvl < len(l.levels); lvl++ {
		ssts := l.levels[lvl]
		if len(ssts) > levelCap(lvl) {
			// The last level may legitimately exceed its budget only if a
			// deeper level was never opened; compact() opens one, so no.
			t.Fatalf("L%d has %d runs over budget %d after settle", lvl, len(ssts), levelCap(lvl))
		}
		for i := range ssts {
			if ssts[i].first > ssts[i].last {
				t.Fatalf("L%d run %d: first %d > last %d", lvl, i, ssts[i].first, ssts[i].last)
			}
			if i > 0 && ssts[i-1].last >= ssts[i].first {
				t.Fatalf("L%d runs %d,%d overlap: ..%d vs %d..", lvl, i-1, i, ssts[i-1].last, ssts[i].first)
			}
		}
	}
}
