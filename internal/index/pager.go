// Package index is the database-index workload family: a block-addressed
// pager with two index engines on top — a B+tree and an LSM-tree — whose
// page I/O is captured as a file-level trace.Trace and replayed through the
// core simulator on every storage alternative the paper compares.
//
// The paper asks which storage alternative wins under file-system traces;
// this package asks the same question for an on-device *database*, the
// dominant mobile workload today. The interesting interaction is between
// the LSM-tree's sequential compaction writes and the flash card's segment
// cleaner (Tehrany et al.'s GC survey), and — following Kim/Whang/Song's
// page-differential logging — write amplification is tracked per index
// engine, not just per device.
//
// Everything is deterministic: the same OpsConfig produces a byte-identical
// trace on every run, on every platform, so generated traces can be pinned
// by golden hashes exactly like the simulator's own outputs.
package index

import (
	"fmt"
	"sort"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// FileID identifies one pager-managed file (a B+tree's node file, or one
// LSM SSTable). It is the trace.Record File field.
type FileID = uint32

// pageKey addresses one fixed-size page within a pager file.
type pageKey struct {
	file FileID
	idx  int64
}

// frame is one resident page in the pager's buffer pool.
type frame struct {
	key        pageKey
	data       any // engine-owned node payload
	dirty      bool
	pins       int
	prev, next *frame // LRU list; head = MRU
}

// Pager is a block-addressed page store with a bounded buffer pool. Engines
// pin pages to use them and unpin them (optionally dirty) when done; a pin
// miss emits a Read record, a dirty eviction or flush emits a Write record,
// and freeing a file emits a Delete record — so one engine run yields a
// trace.Trace the core simulator replays on any device.
//
// The pager holds every page's payload in memory (resident frames plus a
// backing store standing in for the device), so engines stay correct while
// the records model the I/O a real pager would have issued.
type Pager struct {
	pageSize units.Bytes
	poolCap  int
	clock    units.Time

	frames     map[pageKey]*frame
	head, tail *frame // LRU list of resident frames
	store      map[pageKey]any
	filePages  []int64 // pages per file, indexed by FileID
	fileDead   []bool

	recs []trace.Record

	// Stats.
	pageReads, pageWrites int64
	readBytes, writeByts  units.Bytes
}

// minPoolPages keeps eviction meaningful while leaving room for the deepest
// pin chain an engine holds (a B+tree descent pins one page per level).
const minPoolPages = 8

// NewPager builds a pager with the given page size and buffer-pool
// capacity in pages.
func NewPager(pageSize units.Bytes, poolPages int) (*Pager, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("index: non-positive page size %d", pageSize)
	}
	if poolPages < minPoolPages {
		return nil, fmt.Errorf("index: pool of %d pages is under the minimum %d", poolPages, minPoolPages)
	}
	return &Pager{
		pageSize: pageSize,
		poolCap:  poolPages,
		frames:   make(map[pageKey]*frame, poolPages),
		store:    make(map[pageKey]any),
	}, nil
}

// PageSize returns the fixed page size.
func (p *Pager) PageSize() units.Bytes { return p.pageSize }

// Now returns the pager's logical clock.
func (p *Pager) Now() units.Time { return p.clock }

// Advance moves the logical clock forward; every record emitted afterwards
// carries the new time. The op generator calls this once per operation.
func (p *Pager) Advance(dt units.Time) {
	if dt > 0 {
		p.clock += dt
	}
}

// NewFile allocates a fresh file ID with no pages.
func (p *Pager) NewFile() FileID {
	p.filePages = append(p.filePages, 0)
	p.fileDead = append(p.fileDead, false)
	return FileID(len(p.filePages) - 1)
}

// Pages returns the number of pages in a file.
func (p *Pager) Pages(f FileID) int64 { return p.filePages[f] }

// emit appends one trace record at the current clock.
func (p *Pager) emit(op trace.Op, key pageKey, size units.Bytes) {
	p.recs = append(p.recs, trace.Record{
		Time:   p.clock,
		Op:     op,
		File:   key.file,
		Offset: units.Bytes(key.idx) * p.pageSize,
		Size:   size,
	})
}

// evictOne writes back and drops the least-recently-used unpinned frame.
func (p *Pager) evictOne() {
	victim := p.tail
	for victim != nil && victim.pins > 0 {
		victim = victim.prev
	}
	if victim == nil {
		panic("index: buffer pool exhausted by pinned pages")
	}
	if victim.dirty {
		p.emit(trace.Write, victim.key, p.pageSize)
		p.pageWrites++
		p.writeByts += p.pageSize
	}
	p.store[victim.key] = victim.data
	p.unlink(victim)
	delete(p.frames, victim.key)
}

// install makes room and inserts a new resident frame at the MRU position.
func (p *Pager) install(fr *frame) {
	for len(p.frames) >= p.poolCap {
		p.evictOne()
	}
	p.frames[fr.key] = fr
	p.pushFront(fr)
}

// AllocPin appends a new page holding data to file f and returns it pinned
// and dirty (a fresh page must reach the device eventually).
func (p *Pager) AllocPin(f FileID, data any) *Page {
	idx := p.filePages[f]
	p.filePages[f]++
	fr := &frame{key: pageKey{file: f, idx: idx}, data: data, dirty: true, pins: 1}
	p.install(fr)
	return &Page{p: p, fr: fr}
}

// Pin makes page (f, idx) resident and returns a handle. A pool miss emits
// a Read record (the page was written back before it left the pool, so a
// read never precedes the page's first device write).
func (p *Pager) Pin(f FileID, idx int64) *Page {
	key := pageKey{file: f, idx: idx}
	if fr, ok := p.frames[key]; ok {
		fr.pins++
		p.touch(fr)
		return &Page{p: p, fr: fr}
	}
	data, ok := p.store[key]
	if !ok {
		panic(fmt.Sprintf("index: pin of unallocated page %d/%d", f, idx))
	}
	delete(p.store, key)
	p.emit(trace.Read, key, p.pageSize)
	p.pageReads++
	p.readBytes += p.pageSize
	fr := &frame{key: key, data: data, pins: 1}
	p.install(fr)
	return &Page{p: p, fr: fr}
}

// WriteThrough stores a page's payload and emits its Write record
// immediately, bypassing the buffer pool — the shape of an LSM flush or
// compaction output stream, which a real engine writes sequentially without
// polluting the pool. The page must be the next unallocated page of f
// (streams only append).
func (p *Pager) WriteThrough(f FileID, data any) int64 {
	idx := p.filePages[f]
	p.filePages[f]++
	key := pageKey{file: f, idx: idx}
	p.store[key] = data
	p.emit(trace.Write, key, p.pageSize)
	p.pageWrites++
	p.writeByts += p.pageSize
	return idx
}

// FreeFile drops every page of f and emits one Delete record covering the
// file's extent. Resident frames are discarded without write-back — the
// file is gone. Freeing an empty or already-freed file emits nothing.
func (p *Pager) FreeFile(f FileID) {
	if p.fileDead[f] {
		return
	}
	p.fileDead[f] = true
	pages := p.filePages[f]
	if pages == 0 {
		return
	}
	// Walk the LRU list (deterministic order) collecting resident frames of
	// f; map iteration would be fine semantically but not reproducibly.
	for fr := p.head; fr != nil; {
		next := fr.next
		if fr.key.file == f {
			if fr.pins > 0 {
				panic(fmt.Sprintf("index: freeing file %d with pinned page %d", f, fr.key.idx))
			}
			p.unlink(fr)
			delete(p.frames, fr.key)
		}
		fr = next
	}
	for idx := int64(0); idx < pages; idx++ {
		delete(p.store, pageKey{file: f, idx: idx})
	}
	p.emit(trace.Delete, pageKey{file: f}, units.Bytes(pages)*p.pageSize)
}

// FlushAll writes back every dirty resident frame in ascending (file, page)
// order — the deterministic shutdown checkpoint that ends every run.
func (p *Pager) FlushAll() {
	var dirty []*frame
	for fr := p.head; fr != nil; fr = fr.next {
		if fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	sort.Slice(dirty, func(i, j int) bool {
		if dirty[i].key.file != dirty[j].key.file {
			return dirty[i].key.file < dirty[j].key.file
		}
		return dirty[i].key.idx < dirty[j].key.idx
	})
	for _, fr := range dirty {
		p.emit(trace.Write, fr.key, p.pageSize)
		p.pageWrites++
		p.writeByts += p.pageSize
		fr.dirty = false
	}
}

// Trace returns the accumulated records as a simulator-ready trace. The
// trace's block size is the page size, so placements align with pages.
func (p *Pager) Trace(name string) *trace.Trace {
	return &trace.Trace{Name: name, BlockSize: p.pageSize, Records: p.recs}
}

// Records returns how many trace records have been emitted so far.
func (p *Pager) Records() int { return len(p.recs) }

// PageReads / PageWrites / ReadBytes / WriteBytes report physical I/O.
func (p *Pager) PageReads() int64        { return p.pageReads }
func (p *Pager) PageWrites() int64       { return p.pageWrites }
func (p *Pager) ReadBytes() units.Bytes  { return p.readBytes }
func (p *Pager) WriteBytes() units.Bytes { return p.writeByts }
func (p *Pager) Resident() int           { return len(p.frames) }

// Page is a pinned page handle.
type Page struct {
	p  *Pager
	fr *frame
}

// Data returns the engine-owned payload.
func (pg *Page) Data() any { return pg.fr.data }

// SetData replaces the payload (pages holding slices or values rather than
// pointers need this after mutation).
func (pg *Page) SetData(d any) { pg.fr.data = d }

// Index returns the page's index within its file.
func (pg *Page) Index() int64 { return pg.fr.key.idx }

// Unpin releases the handle; dirty marks the page as needing write-back.
func (pg *Page) Unpin(dirty bool) {
	if pg.fr.pins <= 0 {
		panic("index: unpin of unpinned page")
	}
	pg.fr.pins--
	if dirty {
		pg.fr.dirty = true
	}
}

// LRU helpers (head = MRU).

func (p *Pager) touch(fr *frame) {
	p.unlink(fr)
	p.pushFront(fr)
}

func (p *Pager) pushFront(fr *frame) {
	fr.prev = nil
	fr.next = p.head
	if p.head != nil {
		p.head.prev = fr
	}
	p.head = fr
	if p.tail == nil {
		p.tail = fr
	}
}

func (p *Pager) unlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else if p.head == fr {
		p.head = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else if p.tail == fr {
		p.tail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}
