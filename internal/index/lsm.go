package index

import (
	"sort"

	"mobilestorage/internal/units"
)

// lsmEntry is one key's state: a value or a tombstone.
type lsmEntry struct {
	key       uint64
	val       uint64
	tombstone bool
}

// lsmEntrySize approximates the on-disk footprint of one entry: key, value,
// and a flag byte. It sets how many entries fill an SST page.
const lsmEntrySize = units.Bytes(17)

// sstPage is one page of an SSTable: a sorted run of entries.
type sstPage struct {
	entries []lsmEntry
}

// sstable is one immutable sorted file plus its fence index (first key per
// page), which a real engine keeps in memory to binary-search reads.
type sstable struct {
	file        FileID
	pages       int64
	fence       []uint64 // fence[i] = first key of page i
	first, last uint64
}

// LSM is a leveled log-structured merge tree: an in-memory memtable that
// flushes to L0 SSTables, with full-level merges pushing data down as
// levels fill. Flushes and compactions stream sequentially through
// Pager.WriteThrough — the access pattern whose interaction with the flash
// card's segment cleaner this workload family exists to measure.
type LSM struct {
	pg *Pager

	mem      map[uint64]lsmEntry
	memLimit int // entries before flush

	levels [][]sstable // levels[0] newest-first; deeper levels sorted by first key

	logicalBytes units.Bytes
}

const (
	// l0Trigger compactions L0 into L1 once this many runs pile up.
	l0Trigger = 4
	// levelBase is the max SSTables in L1; each deeper level holds 10×.
	levelBase = 4
	// sstTargetPages caps one output SSTable during compaction.
	sstTargetPages = 16
)

// NewLSM creates an empty tree backed by pg. memBytes bounds the memtable
// (at least one page's worth of entries).
func NewLSM(pg *Pager, memBytes units.Bytes) *LSM {
	limit := int(memBytes / lsmEntrySize)
	if minEntries := int(pg.PageSize() / lsmEntrySize); limit < minEntries {
		limit = minEntries
	}
	return &LSM{
		pg:       pg,
		mem:      make(map[uint64]lsmEntry),
		memLimit: limit,
		levels:   make([][]sstable, 1),
	}
}

// Name implements Engine.
func (l *LSM) Name() string { return "lsm" }

// Insert adds or overwrites key.
func (l *LSM) Insert(key, val uint64) {
	l.logicalBytes += lsmEntrySize
	l.mem[key] = lsmEntry{key: key, val: val}
	l.maybeFlush()
}

// Delete writes a tombstone for key.
func (l *LSM) Delete(key uint64) bool {
	_, existed := l.Lookup(key)
	l.logicalBytes += lsmEntrySize
	l.mem[key] = lsmEntry{key: key, tombstone: true}
	l.maybeFlush()
	return existed
}

func (l *LSM) maybeFlush() {
	if len(l.mem) >= l.memLimit {
		l.flushMemtable()
		l.compact()
	}
}

// entriesPerPage is how many entries one SST page holds.
func (l *LSM) entriesPerPage() int {
	n := int(l.pg.PageSize() / lsmEntrySize)
	if n < 1 {
		n = 1
	}
	return n
}

// flushMemtable sorts the memtable and streams it out as one L0 SSTable.
func (l *LSM) flushMemtable() {
	if len(l.mem) == 0 {
		return
	}
	entries := make([]lsmEntry, 0, len(l.mem))
	for _, e := range l.mem {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	sst := l.writeSST(entries)
	// L0 is newest-first so lookups see the freshest run first.
	l.levels[0] = append([]sstable{sst}, l.levels[0]...)
	l.mem = make(map[uint64]lsmEntry)
}

// writeSST streams sorted entries into a fresh file page by page.
func (l *LSM) writeSST(entries []lsmEntry) sstable {
	per := l.entriesPerPage()
	f := l.pg.NewFile()
	sst := sstable{file: f, first: entries[0].key, last: entries[len(entries)-1].key}
	for off := 0; off < len(entries); off += per {
		end := off + per
		if end > len(entries) {
			end = len(entries)
		}
		page := &sstPage{entries: append([]lsmEntry(nil), entries[off:end]...)}
		l.pg.WriteThrough(f, page)
		sst.fence = append(sst.fence, entries[off].key)
		sst.pages++
	}
	return sst
}

// levelCap is the run budget of level i (i ≥ 1).
func levelCap(i int) int {
	c := levelBase
	for ; i > 1; i-- {
		c *= 10
	}
	return c
}

// compact pushes overfull levels down until every level fits its budget.
// Each round merges one whole level with the next — coarse but simple, and
// it produces exactly the long sequential write bursts leveled compaction
// is known for.
func (l *LSM) compact() {
	for lvl := 0; lvl < len(l.levels); lvl++ {
		over := false
		if lvl == 0 {
			over = len(l.levels[0]) >= l0Trigger
		} else {
			over = len(l.levels[lvl]) > levelCap(lvl)
		}
		if !over {
			continue
		}
		if lvl+1 >= len(l.levels) {
			l.levels = append(l.levels, nil)
		}
		l.mergeLevels(lvl)
		// Re-examine the level that just received the data on the next
		// iteration of the loop (lvl+1 comes up naturally).
	}
}

// mergeLevels merges every SSTable in lvl and lvl+1 into fresh SSTables in
// lvl+1, then deletes the inputs. Newer runs shadow older ones; tombstones
// are dropped when the output level is the bottom of the tree.
func (l *LSM) mergeLevels(lvl int) {
	inputs := make([]sstable, 0, len(l.levels[lvl])+len(l.levels[lvl+1]))
	inputs = append(inputs, l.levels[lvl]...)   // newest-first within L0; L1+ disjoint
	inputs = append(inputs, l.levels[lvl+1]...) // older than everything in lvl
	merged := l.mergeSSTs(inputs, l.levelEmptyBelow(lvl+1))
	for _, sst := range inputs {
		l.pg.FreeFile(sst.file)
	}
	l.levels[lvl] = nil
	l.levels[lvl+1] = merged
}

// levelEmptyBelow reports whether every level deeper than lvl is empty,
// which makes lvl the effective bottom (safe to drop tombstones into).
func (l *LSM) levelEmptyBelow(lvl int) bool {
	for i := lvl + 1; i < len(l.levels); i++ {
		if len(l.levels[i]) > 0 {
			return false
		}
	}
	return true
}

// mergeSSTs k-way merges input runs (earlier runs win ties) into a stream
// of new SSTables capped at sstTargetPages each.
func (l *LSM) mergeSSTs(inputs []sstable, dropTombstones bool) []sstable {
	iters := make([]*sstIter, len(inputs))
	for i, sst := range inputs {
		iters[i] = l.newSSTIter(sst)
	}
	var out []sstable
	var pending []lsmEntry
	per := l.entriesPerPage()
	flushPending := func(force bool) {
		for len(pending) >= per*sstTargetPages || (force && len(pending) > 0) {
			n := per * sstTargetPages
			if n > len(pending) {
				n = len(pending)
			}
			out = append(out, l.writeSST(pending[:n]))
			pending = append([]lsmEntry(nil), pending[n:]...)
		}
	}
	for {
		// Pick the smallest current key; among equals the lowest input
		// index (newest run) wins.
		best := -1
		for i, it := range iters {
			if !it.valid() {
				continue
			}
			if best == -1 || it.cur().key < iters[best].cur().key {
				best = i
			}
		}
		if best == -1 {
			break
		}
		e := iters[best].cur()
		for _, it := range iters {
			if it.valid() && it.cur().key == e.key {
				it.next()
			}
		}
		if e.tombstone && dropTombstones {
			continue
		}
		pending = append(pending, e)
		flushPending(false)
	}
	flushPending(true)
	return out
}

// sstIter streams one SSTable's entries in order, pinning one page at a
// time (sequential reads through the pager).
type sstIter struct {
	l    *LSM
	sst  sstable
	page int64
	pos  int
	curE []lsmEntry
}

func (l *LSM) newSSTIter(sst sstable) *sstIter {
	it := &sstIter{l: l, sst: sst, page: -1}
	it.loadNextPage()
	return it
}

func (it *sstIter) loadNextPage() {
	it.page++
	it.pos = 0
	if it.page >= it.sst.pages {
		it.curE = nil
		return
	}
	pg := it.l.pg.Pin(it.sst.file, it.page)
	it.curE = pg.Data().(*sstPage).entries
	pg.Unpin(false)
}

func (it *sstIter) valid() bool { return it.curE != nil }

func (it *sstIter) cur() lsmEntry { return it.curE[it.pos] }

func (it *sstIter) next() {
	it.pos++
	if it.pos >= len(it.curE) {
		it.loadNextPage()
	}
}

// Lookup returns the value stored under key, consulting the memtable, then
// L0 newest-first, then each deeper level via fence-index binary search.
func (l *LSM) Lookup(key uint64) (uint64, bool) {
	if e, ok := l.mem[key]; ok {
		return e.val, !e.tombstone
	}
	for lvl, ssts := range l.levels {
		if lvl == 0 {
			for _, sst := range ssts {
				if e, ok := l.searchSST(sst, key); ok {
					return e.val, !e.tombstone
				}
			}
			continue
		}
		// Deeper levels hold disjoint runs sorted by first key.
		i := sort.Search(len(ssts), func(i int) bool { return ssts[i].first > key })
		if i == 0 {
			continue
		}
		sst := ssts[i-1]
		if key > sst.last {
			continue
		}
		if e, ok := l.searchSST(sst, key); ok {
			return e.val, !e.tombstone
		}
	}
	return 0, false
}

// searchSST binary-searches one SSTable for key via its fence index.
func (l *LSM) searchSST(sst sstable, key uint64) (lsmEntry, bool) {
	if key < sst.first || key > sst.last {
		return lsmEntry{}, false
	}
	pi := sort.Search(len(sst.fence), func(i int) bool { return sst.fence[i] > key })
	if pi == 0 {
		return lsmEntry{}, false
	}
	pg := l.pg.Pin(sst.file, int64(pi-1))
	entries := pg.Data().(*sstPage).entries
	pos := sort.Search(len(entries), func(i int) bool { return entries[i].key >= key })
	var e lsmEntry
	ok := pos < len(entries) && entries[pos].key == key
	if ok {
		e = entries[pos]
	}
	pg.Unpin(false)
	return e, ok
}

// entryIter streams lsmEntries in ascending key order.
type entryIter interface {
	valid() bool
	cur() lsmEntry
	next()
}

// sliceIter iterates a pre-sorted in-memory slice (the memtable snapshot).
type sliceIter struct {
	entries []lsmEntry
	pos     int
}

func (it *sliceIter) valid() bool   { return it.pos < len(it.entries) }
func (it *sliceIter) cur() lsmEntry { return it.entries[it.pos] }
func (it *sliceIter) next()         { it.pos++ }

// levelIter chains one disjoint level's SSTables lazily: the next run is
// only opened (and its pages read) once the scan actually reaches it.
type levelIter struct {
	l    *LSM
	ssts []sstable
	idx  int
	it   *sstIter
}

func (l *LSM) newLevelIter(ssts []sstable, lo uint64) *levelIter {
	i := sort.Search(len(ssts), func(i int) bool { return ssts[i].first > lo })
	if i > 0 && ssts[i-1].last >= lo {
		i--
	}
	li := &levelIter{l: l, ssts: ssts, idx: i}
	li.open()
	if li.it != nil {
		for li.it.valid() && li.it.cur().key < lo {
			li.it.next()
		}
		li.settle()
	}
	return li
}

func (li *levelIter) open() {
	if li.idx < len(li.ssts) {
		li.it = li.l.newSSTIter(li.ssts[li.idx])
	} else {
		li.it = nil
	}
}

// settle skips exhausted runs until a valid entry or the level's end.
func (li *levelIter) settle() {
	for li.it != nil && !li.it.valid() {
		li.idx++
		li.open()
	}
}

func (li *levelIter) valid() bool   { return li.it != nil && li.it.valid() }
func (li *levelIter) cur() lsmEntry { return li.it.cur() }
func (li *levelIter) next()         { li.it.next(); li.settle() }

// Scan visits live pairs in ascending key order starting at lo, calling fn
// until it returns false. It k-way merges the memtable and every run,
// suppressing shadowed entries and tombstones. Sources are ordered newest
// to oldest so the freshest version of each key wins.
func (l *LSM) Scan(lo uint64, fn func(k, v uint64) bool) {
	var sources []entryIter

	memKeys := make([]lsmEntry, 0, len(l.mem))
	for _, e := range l.mem {
		if e.key >= lo {
			memKeys = append(memKeys, e)
		}
	}
	sort.Slice(memKeys, func(i, j int) bool { return memKeys[i].key < memKeys[j].key })
	sources = append(sources, &sliceIter{entries: memKeys})

	for lvl, ssts := range l.levels {
		if lvl == 0 {
			for _, sst := range ssts {
				if sst.last < lo {
					continue
				}
				it := l.newSSTIter(sst)
				for it.valid() && it.cur().key < lo {
					it.next()
				}
				sources = append(sources, it)
			}
			continue
		}
		sources = append(sources, l.newLevelIter(ssts, lo))
	}

	for {
		best := -1
		for i, src := range sources {
			if !src.valid() {
				continue
			}
			if best == -1 || src.cur().key < sources[best].cur().key {
				best = i
			}
		}
		if best == -1 {
			return
		}
		e := sources[best].cur()
		for _, src := range sources {
			if src.valid() && src.cur().key == e.key {
				src.next()
			}
		}
		if e.tombstone {
			continue
		}
		if !fn(e.key, e.val) {
			return
		}
	}
}

// Flush persists the memtable and settles compaction — the shutdown
// checkpoint ending a run.
func (l *LSM) Flush() {
	l.flushMemtable()
	l.compact()
	l.pg.FlushAll()
}

// Len returns the number of live keys (full scan; test/reporting use only).
func (l *LSM) Len() int {
	n := 0
	l.Scan(0, func(_, _ uint64) bool { n++; return true })
	return n
}

// Stats implements Engine.
func (l *LSM) Stats() Stats {
	return Stats{
		Engine:       l.Name(),
		Keys:         l.Len(),
		LogicalBytes: l.logicalBytes,
		WrittenBytes: l.pg.WriteBytes(),
		ReadBytes:    l.pg.ReadBytes(),
		PageReads:    l.pg.PageReads(),
		PageWrites:   l.pg.PageWrites(),
	}
}
