package index

import (
	"testing"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

func newTestPager(t *testing.T, pageSize units.Bytes, pool int) *Pager {
	t.Helper()
	pg, err := NewPager(pageSize, pool)
	if err != nil {
		t.Fatalf("NewPager: %v", err)
	}
	return pg
}

func TestPagerRejectsBadConfig(t *testing.T) {
	if _, err := NewPager(0, 32); err == nil {
		t.Fatal("want error for zero page size")
	}
	if _, err := NewPager(1*units.KB, minPoolPages-1); err == nil {
		t.Fatal("want error for tiny pool")
	}
}

// TestPagerEvictionWritesBack pins more pages than the pool holds and
// checks a dirty page travels store→pool→store with exactly one write and
// one read, keeping its payload.
func TestPagerEvictionWritesBack(t *testing.T) {
	const pool = minPoolPages
	pg := newTestPager(t, 512, pool)
	f := pg.NewFile()
	for i := 0; i < pool; i++ {
		p := pg.AllocPin(f, i)
		p.Unpin(true)
	}
	if got := pg.Records(); got != 0 {
		t.Fatalf("allocations alone emitted %d records", got)
	}
	// One more allocation evicts page 0 (LRU), which is dirty → 1 write.
	p := pg.AllocPin(f, pool)
	p.Unpin(true)
	if got := pg.PageWrites(); got != 1 {
		t.Fatalf("eviction wrote %d pages, want 1", got)
	}
	// Re-pinning page 0 is a miss → 1 read, payload intact.
	rp := pg.Pin(f, 0)
	if got := rp.Data().(int); got != 0 {
		t.Fatalf("page 0 payload = %d after round trip", got)
	}
	rp.Unpin(false)
	if got := pg.PageReads(); got != 1 {
		t.Fatalf("re-pin read %d pages, want 1", got)
	}
}

// TestPagerNoReadBeforeWrite replays a whole engine run's records checking
// the pager never emits a Read for a page extent it has not written first —
// the invariant that makes generated traces physically sensible.
func TestPagerNoReadBeforeWrite(t *testing.T) {
	for _, kind := range EngineKinds {
		t.Run(string(kind), func(t *testing.T) {
			tr, _, err := GenerateTrace(TraceConfig{
				Engine:    kind,
				PageSize:  256,
				PoolPages: 16,
				Ops:       OpsConfig{Seed: 7, Ops: 3000},
			})
			if err != nil {
				t.Fatal(err)
			}
			type extent struct {
				file uint32
				off  units.Bytes
			}
			written := make(map[extent]bool)
			for i, r := range tr.Records {
				switch r.Op {
				case trace.Write:
					written[extent{r.File, r.Offset}] = true
				case trace.Read:
					if !written[extent{r.File, r.Offset}] {
						t.Fatalf("record %d reads %d/%d before any write", i, r.File, r.Offset)
					}
				case trace.Delete:
					for off := units.Bytes(0); off < r.Size; off += tr.BlockSize {
						delete(written, extent{r.File, off})
					}
				}
			}
		})
	}
}

// TestPagerFreeFileEmitsDelete checks Delete records carry the whole file
// extent and that double-free and empty-file-free are silent.
func TestPagerFreeFileEmitsDelete(t *testing.T) {
	pg := newTestPager(t, 512, minPoolPages)
	f := pg.NewFile()
	for i := 0; i < 3; i++ {
		pg.WriteThrough(f, i)
	}
	before := pg.Records()
	pg.FreeFile(f)
	recs := pg.Trace("t").Records
	if got := len(recs) - before; got != 1 {
		t.Fatalf("FreeFile emitted %d records, want 1", got)
	}
	last := recs[len(recs)-1]
	if last.Op != trace.Delete || last.Size != 3*512 || last.Offset != 0 {
		t.Fatalf("bad delete record %+v", last)
	}
	pg.FreeFile(f) // double free: no-op
	empty := pg.NewFile()
	pg.FreeFile(empty) // empty file: no-op
	if got := len(pg.Trace("t").Records) - before; got != 1 {
		t.Fatal("double/empty free emitted records")
	}
}

// TestPagerClockMonotonic checks Advance only moves forward and records
// carry non-decreasing times even with hostile deltas.
func TestPagerClockMonotonic(t *testing.T) {
	pg := newTestPager(t, 512, minPoolPages)
	f := pg.NewFile()
	pg.Advance(5)
	pg.WriteThrough(f, 0)
	pg.Advance(-100) // ignored
	pg.WriteThrough(f, 1)
	pg.Advance(0) // ignored
	pg.WriteThrough(f, 2)
	tr := pg.Trace("clock")
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Records[1].Time != 5 || tr.Records[2].Time != 5 {
		t.Fatalf("negative/zero Advance changed the clock: %+v", tr.Records)
	}
}

// TestPagerFlushAllOrder checks the shutdown checkpoint writes dirty pages
// in ascending (file, page) order regardless of dirtying order.
func TestPagerFlushAllOrder(t *testing.T) {
	pg := newTestPager(t, 512, 64)
	f0, f1 := pg.NewFile(), pg.NewFile()
	// Dirty in scrambled order.
	for _, p := range []struct {
		f   FileID
		val int
	}{{f1, 10}, {f0, 0}, {f1, 11}, {f0, 1}} {
		h := pg.AllocPin(p.f, p.val)
		h.Unpin(true)
	}
	pg.FlushAll()
	recs := pg.Trace("flush").Records
	if len(recs) != 4 {
		t.Fatalf("flush emitted %d records, want 4", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if a.File > b.File || (a.File == b.File && a.Offset >= b.Offset) {
			t.Fatalf("flush order violated at %d: %+v then %+v", i, a, b)
		}
	}
	// Second flush is a no-op: nothing is dirty anymore.
	pg.FlushAll()
	if got := len(pg.Trace("flush").Records); got != 4 {
		t.Fatalf("re-flush emitted %d extra records", got-4)
	}
}
