package index

import (
	"fmt"
	"math/rand"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// Engine is what the op generator drives: either index behind one
// interface, so both see byte-identical op sequences.
type Engine interface {
	Name() string
	Insert(key, val uint64)
	Delete(key uint64) bool
	Lookup(key uint64) (uint64, bool)
	Scan(lo uint64, fn func(k, v uint64) bool)
	Flush()
	Stats() Stats
}

// Stats summarizes one engine run. WriteAmplification is the ratio of
// bytes the pager physically wrote to bytes the workload logically changed
// — the per-index amplification Kim/Whang/Song's page-differential logging
// paper argues should be tracked separately from device-level cleaning.
type Stats struct {
	Engine       string
	Keys         int
	LogicalBytes units.Bytes
	WrittenBytes units.Bytes
	ReadBytes    units.Bytes
	PageReads    int64
	PageWrites   int64
}

// WriteAmplification returns WrittenBytes / LogicalBytes (0 when nothing
// was logically written).
func (s Stats) WriteAmplification() float64 {
	if s.LogicalBytes == 0 {
		return 0
	}
	return float64(s.WrittenBytes) / float64(s.LogicalBytes)
}

// OpKind is one generated operation type.
type OpKind uint8

const (
	OpInsert OpKind = iota
	OpLookup
	OpScan
	OpDelete
)

// Op is one generated index operation. N is the scan length for OpScan.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
	N    int
}

// Mix weights the four op kinds; they need not sum to any particular total.
type Mix struct {
	Insert, Lookup, Scan, Delete int
}

// DefaultMix is a write-heavy embedded-database profile: half inserts,
// frequent point reads, occasional range scans and deletes.
var DefaultMix = Mix{Insert: 50, Lookup: 35, Scan: 10, Delete: 5}

// ReadHeavyMix models a settled database serving mostly queries.
var ReadHeavyMix = Mix{Insert: 15, Lookup: 65, Scan: 15, Delete: 5}

func (m Mix) total() int { return m.Insert + m.Lookup + m.Scan + m.Delete }

// MixByName resolves a named op mix: "default" (or "") is DefaultMix,
// "read-heavy" is ReadHeavyMix. The names are the -mix flag values of
// storagesim and the indexbench variants.
func MixByName(name string) (Mix, error) {
	switch name {
	case "", "default":
		return DefaultMix, nil
	case "read-heavy":
		return ReadHeavyMix, nil
	default:
		return Mix{}, fmt.Errorf("index: unknown mix %q (want default or read-heavy)", name)
	}
}

// OpsConfig parameterizes one deterministic workload.
type OpsConfig struct {
	Seed int64
	Ops  int
	Mix  Mix

	// KeySpace bounds generated keys to [0, KeySpace). 0 means 1<<40.
	KeySpace uint64
	// HotFraction of targeting ops (lookup/delete, and the skewed share of
	// inserts) hit the most recently inserted HotKeys fraction of keys —
	// the locality real embedded databases show. Zero values default to
	// 0.8 targeting / 0.2 recent.
	HotFraction float64
	HotKeys     float64
	// MaxScan bounds scan lengths. 0 means 64.
	MaxScan int
	// MeanGap is the mean simulated time between ops. 0 means 50ms — an
	// interactive PDA-database rate (~20 ops/s) that keeps every simulated
	// device below open-loop saturation, so replay latencies measure the
	// device rather than unbounded queueing.
	MeanGap units.Time
}

func (c OpsConfig) withDefaults() OpsConfig {
	if c.Mix.total() == 0 {
		c.Mix = DefaultMix
	}
	if c.KeySpace == 0 {
		c.KeySpace = 1 << 40
	}
	if c.HotFraction == 0 {
		c.HotFraction = 0.8
	}
	if c.HotKeys == 0 {
		c.HotKeys = 0.2
	}
	if c.MaxScan == 0 {
		c.MaxScan = 64
	}
	if c.MeanGap == 0 {
		c.MeanGap = 50 * units.Millisecond
	}
	return c
}

// OpGen deterministically generates ops from a seed. It tracks the inserted
// key set itself (never consulting an engine), so every engine given the
// same config receives the identical op sequence.
type OpGen struct {
	cfg  OpsConfig
	rng  *rand.Rand
	keys []uint64 // insertion order; duplicates possible, deletions leave holes
	live map[uint64]bool
}

// NewOpGen builds a generator for cfg (defaults applied).
func NewOpGen(cfg OpsConfig) *OpGen {
	cfg = cfg.withDefaults()
	return &OpGen{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		live: make(map[uint64]bool),
	}
}

// pickKnown returns a previously inserted key, skewed toward recent ones.
func (g *OpGen) pickKnown() (uint64, bool) {
	if len(g.keys) == 0 {
		return 0, false
	}
	if g.rng.Float64() < g.cfg.HotFraction {
		hot := int(float64(len(g.keys)) * g.cfg.HotKeys)
		if hot < 1 {
			hot = 1
		}
		return g.keys[len(g.keys)-1-g.rng.Intn(hot)], true
	}
	return g.keys[g.rng.Intn(len(g.keys))], true
}

// freshKey draws a key not yet live. KeySpace is vastly larger than any
// run, so a couple of draws always suffice; the loop is bounded anyway.
func (g *OpGen) freshKey() uint64 {
	for i := 0; i < 64; i++ {
		k := uint64(g.rng.Int63()) % g.cfg.KeySpace
		if !g.live[k] {
			return k
		}
	}
	// Pathologically tiny key space: accept an overwrite.
	return uint64(g.rng.Int63()) % g.cfg.KeySpace
}

// Next produces the next operation.
func (g *OpGen) Next() Op {
	m := g.cfg.Mix
	r := g.rng.Intn(m.total())
	switch {
	case r < m.Insert:
		var key uint64
		// A slice of inserts are updates to recent keys; the rest are fresh.
		if len(g.keys) > 0 && g.rng.Float64() < 0.3 {
			key, _ = g.pickKnown()
		} else {
			key = g.freshKey()
		}
		if !g.live[key] {
			g.keys = append(g.keys, key)
			g.live[key] = true
		}
		return Op{Kind: OpInsert, Key: key, Val: uint64(g.rng.Int63())}
	case r < m.Insert+m.Lookup:
		if key, ok := g.pickKnown(); ok {
			return Op{Kind: OpLookup, Key: key}
		}
		return Op{Kind: OpLookup, Key: g.freshKey()}
	case r < m.Insert+m.Lookup+m.Scan:
		key, ok := g.pickKnown()
		if !ok {
			key = g.freshKey()
		}
		return Op{Kind: OpScan, Key: key, N: 1 + g.rng.Intn(g.cfg.MaxScan)}
	default:
		if key, ok := g.pickKnown(); ok {
			delete(g.live, key)
			return Op{Kind: OpDelete, Key: key}
		}
		return Op{Kind: OpDelete, Key: g.freshKey()}
	}
}

// gap draws an exponentially distributed inter-op time (≥ 1 µs so trace
// times strictly advance within float precision of the mean).
func (g *OpGen) gap() units.Time {
	dt := units.Time(g.rng.ExpFloat64() * float64(g.cfg.MeanGap))
	if dt < 1 {
		dt = 1
	}
	return dt
}

// Ops generates the full op sequence for cfg.
func (g *OpGen) Ops() []Op {
	ops := make([]Op, g.cfg.Ops)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}

// Apply drives engine through one op, advancing the pager clock first so
// the records each op emits carry its arrival time.
func Apply(pg *Pager, e Engine, g *OpGen, op Op) {
	pg.Advance(g.gap())
	switch op.Kind {
	case OpInsert:
		e.Insert(op.Key, op.Val)
	case OpLookup:
		e.Lookup(op.Key)
	case OpScan:
		n := 0
		e.Scan(op.Key, func(_, _ uint64) bool {
			n++
			return n < op.N
		})
	case OpDelete:
		e.Delete(op.Key)
	}
}

// EngineKind selects which index engine a trace run uses.
type EngineKind string

const (
	EngineBTree EngineKind = "btree"
	EngineLSM   EngineKind = "lsm"
)

// EngineKinds lists every engine in display order.
var EngineKinds = []EngineKind{EngineBTree, EngineLSM}

// TraceConfig is everything needed to produce one index workload trace.
type TraceConfig struct {
	Engine EngineKind
	Ops    OpsConfig

	// PageSize is the pager page size. 0 means 1 KiB.
	PageSize units.Bytes
	// PoolPages is the buffer-pool size in pages. 0 means 32 — small
	// enough that the working set spills and real I/O traffic appears.
	PoolPages int
	// MemtableBytes bounds the LSM memtable. 0 means 8 KiB.
	MemtableBytes units.Bytes
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.PageSize == 0 {
		c.PageSize = 1 * units.KB
	}
	if c.PoolPages == 0 {
		c.PoolPages = 32
	}
	if c.MemtableBytes == 0 {
		c.MemtableBytes = 8 * units.KB
	}
	return c
}

// NewEngine builds the configured engine over pg.
func NewEngine(cfg TraceConfig, pg *Pager) (Engine, error) {
	switch cfg.Engine {
	case EngineBTree:
		return NewBTree(pg), nil
	case EngineLSM:
		return NewLSM(pg, cfg.MemtableBytes), nil
	default:
		return nil, fmt.Errorf("index: unknown engine %q", cfg.Engine)
	}
}

// BenchOps is the op count of the canonical indexbench workload: large
// enough that both engines spill their pools and the LSM runs multi-level
// compactions, small enough that the 2×4×8 experiment grid replays fast.
const BenchOps = 12000

// BenchTraceConfig is the canonical workload the indexbench experiment
// replays (and the golden determinism tests pin): default mix, default
// pager geometry, BenchOps operations.
func BenchTraceConfig(engine EngineKind, seed int64) TraceConfig {
	return TraceConfig{Engine: engine, Ops: OpsConfig{Seed: seed, Ops: BenchOps}}
}

// BenchOpsReadHeavy is the op count of the read-heavy bench variant,
// scaled so its 15% insert share builds the same ~6000-key settled index
// the default mix's 50% share does. With equal index sizes the two
// sweeps differ only in the op stream served against them; at BenchOps
// the read-heavy tree would fit the pager pool and every lookup would
// hit cache, leaving nothing for the devices to serve.
const BenchOpsReadHeavy = 40000

// BenchTraceConfigMix is BenchTraceConfig under a named op mix
// (MixByName); the read-heavy mix swaps in BenchOpsReadHeavy.
func BenchTraceConfigMix(engine EngineKind, seed int64, mixName string) (TraceConfig, error) {
	mix, err := MixByName(mixName)
	if err != nil {
		return TraceConfig{}, err
	}
	cfg := BenchTraceConfig(engine, seed)
	cfg.Ops.Mix = mix
	if mix == ReadHeavyMix {
		cfg.Ops.Ops = BenchOpsReadHeavy
	}
	return cfg, nil
}

// GenerateTrace runs the configured engine over the generated op sequence
// and returns the resulting trace plus the engine's run stats. The same
// config always yields a byte-identical trace.
func GenerateTrace(cfg TraceConfig) (*trace.Trace, Stats, error) {
	cfg = cfg.withDefaults()
	pg, err := NewPager(cfg.PageSize, cfg.PoolPages)
	if err != nil {
		return nil, Stats{}, err
	}
	eng, err := NewEngine(cfg, pg)
	if err != nil {
		return nil, Stats{}, err
	}
	g := NewOpGen(cfg.Ops)
	for i := 0; i < g.cfg.Ops; i++ {
		Apply(pg, eng, g, g.Next())
	}
	eng.Flush()
	st := eng.Stats()
	t := pg.Trace(fmt.Sprintf("index-%s", eng.Name()))
	if err := t.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("index: generated trace invalid: %w", err)
	}
	return t, st, nil
}
