package index

import (
	"fmt"
	"sort"

	"mobilestorage/internal/units"
)

// bnode is one B+tree page: a leaf holds keys+vals and a next-sibling page
// index; an interior node holds keys and kids, with kids[i] covering keys
// < keys[i] and kids[len(keys)] covering the rest.
type bnode struct {
	leaf bool
	keys []uint64
	vals []uint64 // leaf only
	kids []int64  // interior only
	next int64    // leaf sibling chain; -1 at the tail
}

// btreeHeader is the per-page bookkeeping a real node would serialize
// (leaf flag, count, sibling pointer, checksum); entries fill the rest.
const btreeHeader = units.Bytes(64)

// btreeEntry is one key/value or key/child pair: two uint64s.
const btreeEntry = units.Bytes(16)

// BTree is a paged B+tree mapping uint64 keys to uint64 values. All node
// access goes through the pager, so every lookup, split, and merge shows up
// in the generated trace.
type BTree struct {
	pg   *Pager
	file FileID
	root int64
	cap  int // max entries per node
	n    int // live keys

	logicalBytes units.Bytes // sum of entry sizes the workload asked to write
}

// NewBTree creates an empty tree backed by pg. The node fan-out follows the
// page size; tiny pages (tests use 256 B) force deep trees and frequent
// splits, big pages behave like a production index.
func NewBTree(pg *Pager) *BTree {
	capEntries := int((pg.PageSize() - btreeHeader) / btreeEntry)
	if capEntries < 4 {
		capEntries = 4
	}
	t := &BTree{pg: pg, file: pg.NewFile(), cap: capEntries}
	root := pg.AllocPin(t.file, &bnode{leaf: true, next: -1})
	t.root = root.Index()
	root.Unpin(true)
	return t
}

// Name implements Engine.
func (t *BTree) Name() string { return "btree" }

// Len returns the number of live keys.
func (t *BTree) Len() int { return t.n }

func (t *BTree) node(pg *Page) *bnode { return pg.Data().(*bnode) }

// Insert adds or overwrites key.
func (t *BTree) Insert(key, val uint64) {
	t.logicalBytes += btreeEntry
	midKey, rightIdx, grew := t.insertAt(t.root, key, val)
	if !grew {
		return
	}
	// Root split: new interior root over the two halves.
	newRoot := t.pg.AllocPin(t.file, &bnode{
		keys: []uint64{midKey},
		kids: []int64{t.root, rightIdx},
		next: -1,
	})
	t.root = newRoot.Index()
	newRoot.Unpin(true)
}

// insertAt inserts into the subtree rooted at page idx. When the node
// splits it returns the separator key and the new right sibling's page.
func (t *BTree) insertAt(idx int64, key, val uint64) (midKey uint64, rightIdx int64, grew bool) {
	pg := t.pg.Pin(t.file, idx)
	n := t.node(pg)
	if n.leaf {
		pos := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if pos < len(n.keys) && n.keys[pos] == key {
			n.vals[pos] = val
			pg.Unpin(true)
			return 0, 0, false
		}
		n.keys = insertU64(n.keys, pos, key)
		n.vals = insertU64(n.vals, pos, val)
		t.n++
		if len(n.keys) <= t.cap {
			pg.Unpin(true)
			return 0, 0, false
		}
		midKey, rightIdx = t.splitLeaf(n)
		pg.Unpin(true)
		return midKey, rightIdx, true
	}

	pos := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	childMid, childRight, childGrew := t.insertAt(n.kids[pos], key, val)
	if !childGrew {
		pg.Unpin(false)
		return 0, 0, false
	}
	n.keys = insertU64(n.keys, pos, childMid)
	n.kids = insertI64(n.kids, pos+1, childRight)
	if len(n.keys) <= t.cap {
		pg.Unpin(true)
		return 0, 0, false
	}
	midKey, rightIdx = t.splitInterior(n)
	pg.Unpin(true)
	return midKey, rightIdx, true
}

// splitLeaf moves the upper half of n into a fresh right sibling and
// returns the first right key as separator.
func (t *BTree) splitLeaf(n *bnode) (midKey uint64, rightIdx int64) {
	half := len(n.keys) / 2
	right := &bnode{
		leaf: true,
		keys: append([]uint64(nil), n.keys[half:]...),
		vals: append([]uint64(nil), n.vals[half:]...),
		next: n.next,
	}
	rp := t.pg.AllocPin(t.file, right)
	n.keys = n.keys[:half:half]
	n.vals = n.vals[:half:half]
	n.next = rp.Index()
	midKey = right.keys[0]
	rightIdx = rp.Index()
	rp.Unpin(true)
	return midKey, rightIdx
}

// splitInterior moves the upper half of n into a fresh right sibling,
// promoting the middle key.
func (t *BTree) splitInterior(n *bnode) (midKey uint64, rightIdx int64) {
	half := len(n.keys) / 2
	midKey = n.keys[half]
	right := &bnode{
		keys: append([]uint64(nil), n.keys[half+1:]...),
		kids: append([]int64(nil), n.kids[half+1:]...),
		next: -1,
	}
	rp := t.pg.AllocPin(t.file, right)
	n.keys = n.keys[:half:half]
	n.kids = n.kids[: half+1 : half+1]
	rightIdx = rp.Index()
	rp.Unpin(true)
	return midKey, rightIdx
}

// Lookup returns the value stored under key.
func (t *BTree) Lookup(key uint64) (uint64, bool) {
	idx := t.root
	for {
		pg := t.pg.Pin(t.file, idx)
		n := t.node(pg)
		if n.leaf {
			pos := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
			var v uint64
			ok := pos < len(n.keys) && n.keys[pos] == key
			if ok {
				v = n.vals[pos]
			}
			pg.Unpin(false)
			return v, ok
		}
		pos := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		idx = n.kids[pos]
		pg.Unpin(false)
	}
}

// Scan visits live pairs in ascending key order starting at lo, calling
// fn for each until fn returns false or keys run out. It walks the leaf
// sibling chain, so long scans read consecutive leaf pages.
func (t *BTree) Scan(lo uint64, fn func(k, v uint64) bool) {
	idx := t.root
	for {
		pg := t.pg.Pin(t.file, idx)
		n := t.node(pg)
		if n.leaf {
			pg.Unpin(false)
			break
		}
		pos := sort.Search(len(n.keys), func(i int) bool { return lo < n.keys[i] })
		idx = n.kids[pos]
		pg.Unpin(false)
	}
	for idx != -1 {
		pg := t.pg.Pin(t.file, idx)
		n := t.node(pg)
		pos := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		for ; pos < len(n.keys); pos++ {
			if !fn(n.keys[pos], n.vals[pos]) {
				pg.Unpin(false)
				return
			}
		}
		idx = n.next
		pg.Unpin(false)
	}
}

// Delete removes key, rebalancing by borrow-or-merge so no node (root
// aside) falls under half occupancy. It reports whether the key existed.
func (t *BTree) Delete(key uint64) bool {
	t.logicalBytes += btreeEntry
	removed, _ := t.deleteAt(t.root, key)
	if !removed {
		return false
	}
	t.n--
	// Collapse a childless interior root.
	pg := t.pg.Pin(t.file, t.root)
	n := t.node(pg)
	if !n.leaf && len(n.keys) == 0 {
		t.root = n.kids[0]
	}
	pg.Unpin(false)
	return true
}

func (t *BTree) minKeys() int { return t.cap / 2 }

// deleteAt removes key from the subtree at page idx; underflow reports the
// node fell below half occupancy so the parent can rebalance it.
func (t *BTree) deleteAt(idx int64, key uint64) (removed, underflow bool) {
	pg := t.pg.Pin(t.file, idx)
	n := t.node(pg)
	if n.leaf {
		pos := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if pos >= len(n.keys) || n.keys[pos] != key {
			pg.Unpin(false)
			return false, false
		}
		n.keys = append(n.keys[:pos], n.keys[pos+1:]...)
		n.vals = append(n.vals[:pos], n.vals[pos+1:]...)
		pg.Unpin(true)
		return true, len(n.keys) < t.minKeys()
	}

	pos := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	removed, childUnder := t.deleteAt(n.kids[pos], key)
	if !removed {
		pg.Unpin(false)
		return false, false
	}
	if !childUnder {
		pg.Unpin(false)
		return true, false
	}
	t.rebalance(n, pos)
	pg.Unpin(true)
	return true, len(n.keys) < t.minKeys()
}

// rebalance fixes the underfull child at kids[pos] by borrowing from a
// sibling when one has spare entries, merging otherwise.
func (t *BTree) rebalance(parent *bnode, pos int) {
	child := t.pg.Pin(t.file, parent.kids[pos])
	c := t.node(child)

	// Try borrowing from the left sibling.
	if pos > 0 {
		left := t.pg.Pin(t.file, parent.kids[pos-1])
		l := t.node(left)
		if len(l.keys) > t.minKeys() {
			if c.leaf {
				last := len(l.keys) - 1
				c.keys = insertU64(c.keys, 0, l.keys[last])
				c.vals = insertU64(c.vals, 0, l.vals[last])
				l.keys = l.keys[:last]
				l.vals = l.vals[:last]
				parent.keys[pos-1] = c.keys[0]
			} else {
				last := len(l.keys) - 1
				c.keys = insertU64(c.keys, 0, parent.keys[pos-1])
				c.kids = insertI64(c.kids, 0, l.kids[last+1])
				parent.keys[pos-1] = l.keys[last]
				l.keys = l.keys[:last]
				l.kids = l.kids[:last+1]
			}
			left.Unpin(true)
			child.Unpin(true)
			return
		}
		left.Unpin(false)
	}

	// Try borrowing from the right sibling.
	if pos < len(parent.kids)-1 {
		right := t.pg.Pin(t.file, parent.kids[pos+1])
		r := t.node(right)
		if len(r.keys) > t.minKeys() {
			if c.leaf {
				c.keys = append(c.keys, r.keys[0])
				c.vals = append(c.vals, r.vals[0])
				r.keys = r.keys[1:]
				r.vals = r.vals[1:]
				parent.keys[pos] = r.keys[0]
			} else {
				c.keys = append(c.keys, parent.keys[pos])
				c.kids = append(c.kids, r.kids[0])
				parent.keys[pos] = r.keys[0]
				r.keys = r.keys[1:]
				r.kids = r.kids[1:]
			}
			right.Unpin(true)
			child.Unpin(true)
			return
		}
		right.Unpin(false)
	}

	// Merge with a sibling. Prefer absorbing the right sibling into child;
	// at the rightmost position, absorb child into the left sibling.
	if pos < len(parent.kids)-1 {
		right := t.pg.Pin(t.file, parent.kids[pos+1])
		r := t.node(right)
		if c.leaf {
			c.keys = append(c.keys, r.keys...)
			c.vals = append(c.vals, r.vals...)
			c.next = r.next
		} else {
			c.keys = append(c.keys, parent.keys[pos])
			c.keys = append(c.keys, r.keys...)
			c.kids = append(c.kids, r.kids...)
		}
		parent.keys = append(parent.keys[:pos], parent.keys[pos+1:]...)
		parent.kids = append(parent.kids[:pos+1], parent.kids[pos+2:]...)
		right.Unpin(true) // page becomes garbage; a real tree would free-list it
		child.Unpin(true)
		return
	}

	left := t.pg.Pin(t.file, parent.kids[pos-1])
	l := t.node(left)
	if c.leaf {
		l.keys = append(l.keys, c.keys...)
		l.vals = append(l.vals, c.vals...)
		l.next = c.next
	} else {
		l.keys = append(l.keys, parent.keys[pos-1])
		l.keys = append(l.keys, c.keys...)
		l.kids = append(l.kids, c.kids...)
	}
	parent.keys = parent.keys[:pos-1]
	parent.kids = parent.kids[:pos]
	left.Unpin(true)
	child.Unpin(true)
}

// Flush checkpoints all dirty pages.
func (t *BTree) Flush() { t.pg.FlushAll() }

// Stats implements Engine.
func (t *BTree) Stats() Stats {
	return Stats{
		Engine:       t.Name(),
		Keys:         t.n,
		LogicalBytes: t.logicalBytes,
		WrittenBytes: t.pg.WriteBytes(),
		ReadBytes:    t.pg.ReadBytes(),
		PageReads:    t.pg.PageReads(),
		PageWrites:   t.pg.PageWrites(),
	}
}

// checkInvariants walks the whole tree validating B+tree structure: sorted
// keys everywhere, occupancy bounds, separator correctness, uniform leaf
// depth, and an intact sibling chain. Tests call it after every batch of
// ops; the error message pinpoints the violating page.
func (t *BTree) checkInvariants() error {
	leafDepth := -1
	var prevLeaf int64 = -1
	var walk func(idx int64, depth int, min, max uint64, isRoot bool) error
	walk = func(idx int64, depth int, min, max uint64, isRoot bool) error {
		pg := t.pg.Pin(t.file, idx)
		defer pg.Unpin(false)
		n := t.node(pg)
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("page %d: keys out of order at %d", idx, i)
			}
		}
		for i, k := range n.keys {
			if k < min || k >= max {
				return fmt.Errorf("page %d: key %d=%d outside [%d,%d)", idx, i, k, min, max)
			}
		}
		if len(n.keys) > t.cap {
			return fmt.Errorf("page %d: %d keys over cap %d", idx, len(n.keys), t.cap)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("page %d: leaf depth %d != %d", idx, depth, leafDepth)
			}
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("page %d: %d vals for %d keys", idx, len(n.vals), len(n.keys))
			}
			if !isRoot && len(n.keys) < t.minKeys() {
				return fmt.Errorf("page %d: leaf underfull (%d < %d)", idx, len(n.keys), t.minKeys())
			}
			if prevLeaf != -1 {
				// Scan order must match the sibling chain.
				prev := t.pg.Pin(t.file, prevLeaf)
				pn := t.node(prev)
				chained := pn.next
				prev.Unpin(false)
				if chained != idx {
					return fmt.Errorf("page %d: sibling chain broken (prev %d links to %d)", idx, prevLeaf, chained)
				}
			}
			prevLeaf = idx
			return nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return fmt.Errorf("page %d: %d kids for %d keys", idx, len(n.kids), len(n.keys))
		}
		if !isRoot && len(n.keys) < t.minKeys() {
			return fmt.Errorf("page %d: interior underfull (%d < %d)", idx, len(n.keys), t.minKeys())
		}
		if isRoot && len(n.keys) < 1 {
			return fmt.Errorf("page %d: interior root with no keys", idx)
		}
		lo := min
		for i, kid := range n.kids {
			hi := max
			if i < len(n.keys) {
				hi = n.keys[i]
			}
			if err := walk(kid, depth+1, lo, hi, false); err != nil {
				return err
			}
			lo = hi
		}
		return nil
	}
	if err := walk(t.root, 0, 0, ^uint64(0), true); err != nil {
		return err
	}
	// Tail of the sibling chain must be open-ended.
	if prevLeaf != -1 {
		pg := t.pg.Pin(t.file, prevLeaf)
		n := t.node(pg)
		next := n.next
		pg.Unpin(false)
		if next != -1 {
			return fmt.Errorf("page %d: last leaf links to %d, want -1", prevLeaf, next)
		}
	}
	return nil
}

func insertU64(s []uint64, pos int, v uint64) []uint64 {
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}

func insertI64(s []int64, pos int, v int64) []int64 {
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}
