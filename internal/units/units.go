// Package units defines the simulated time base and byte-size helpers used
// throughout the storage simulator.
//
// Simulated time is an int64 count of microseconds since the start of a
// simulation. Microsecond resolution is fine enough to resolve the fastest
// modeled operations (DRAM transfers of a fraction of a block) while leaving
// ample headroom: 2^63 µs is roughly 292,000 years of simulated time.
package units

import (
	"fmt"
	"math"
)

// Time is a simulated instant or duration in microseconds.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
	Day         Time = 24 * Hour
)

// Seconds converts a simulated duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts a simulated duration to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to simulated time, rounding to
// the nearest microsecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// FromMilliseconds converts floating-point milliseconds to simulated time.
func FromMilliseconds(ms float64) Time { return Time(math.Round(ms * float64(Millisecond))) }

// String renders a duration with an auto-selected unit, e.g. "25.7ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Millisecond:
		return fmt.Sprintf("%dµs", int64(t))
	case t < Second:
		return fmt.Sprintf("%.3gms", t.Milliseconds())
	case t < Minute:
		return fmt.Sprintf("%.3gs", t.Seconds())
	case t < Hour:
		return fmt.Sprintf("%.3gmin", float64(t)/float64(Minute))
	default:
		return fmt.Sprintf("%.3gh", float64(t)/float64(Hour))
	}
}

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two times.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Bytes is a byte count or capacity.
type Bytes int64

// Common sizes.
const (
	B  Bytes = 1
	KB Bytes = 1024 * B
	MB Bytes = 1024 * KB
	GB Bytes = 1024 * MB
)

// KBytes converts to floating-point kilobytes.
func (b Bytes) KBytes() float64 { return float64(b) / float64(KB) }

// MBytes converts to floating-point megabytes.
func (b Bytes) MBytes() float64 { return float64(b) / float64(MB) }

// String renders a size with an auto-selected unit, e.g. "64KB".
func (b Bytes) String() string {
	switch {
	case b < 0:
		return "-" + (-b).String()
	case b < KB:
		return fmt.Sprintf("%dB", int64(b))
	case b < MB:
		return fmt.Sprintf("%.4gKB", b.KBytes())
	case b < GB:
		return fmt.Sprintf("%.4gMB", b.MBytes())
	default:
		return fmt.Sprintf("%.4gGB", float64(b)/float64(GB))
	}
}

// TransferTime returns the time needed to move b bytes at the given
// bandwidth (expressed in KB per second, the unit every datasheet in the
// paper uses). A non-positive bandwidth yields zero time, which callers use
// for "instantaneous" byte-addressable accesses.
func TransferTime(b Bytes, kbPerSec float64) Time {
	if kbPerSec <= 0 || b <= 0 {
		return 0
	}
	sec := float64(b) / (kbPerSec * float64(KB))
	return FromSeconds(sec)
}

// TransferMemo caches TransferTime results for one fixed bandwidth. Device
// models compute transfer times with a handful of datasheet bandwidths over
// a heavily repeated set of sizes (trace record sizes, block multiples), and
// the float divide + round per call was a measurable slice of whole-trace
// replays. Sizes below transferMemoLimit are cached in a lazily grown dense
// table; each cached value is produced by the same TransferTime call, so
// results are bit-identical with or without the memo. Larger sizes fall
// through to TransferTime. The zero value (zero bandwidth) is usable and
// simply forwards.
type TransferMemo struct {
	kbPerSec float64
	dense    []Time
}

// NewTransferMemo returns a memo for the given bandwidth.
func NewTransferMemo(kbPerSec float64) TransferMemo {
	return TransferMemo{kbPerSec: kbPerSec}
}

// transferMemoLimit bounds the dense size table (entries, i.e. bytes of
// transfer size): 32 K entries × 8 bytes caps a fully grown memo at 256 KB.
// Workload transfer sizes nearly all fall below it; the rare larger size
// recomputes directly, which costs less than zeroing a bigger table on
// every device construction.
const transferMemoLimit = 32 * 1024

// Time returns TransferTime(b, kbPerSec), cached. Kept small enough to
// inline; the miss path computes and stores.
func (m *TransferMemo) Time(b Bytes) Time {
	// A zero entry is "not cached yet": TransferTime only returns 0 for
	// sub-round-off sizes, which just recompute (cheaply) every call. The
	// unsigned compare also routes b ≤ 0 to the slow path's guards.
	if uint64(b) < uint64(len(m.dense)) {
		if t := m.dense[b]; t > 0 {
			return t
		}
	}
	return m.slow(b)
}

func (m *TransferMemo) slow(b Bytes) Time {
	t := TransferTime(b, m.kbPerSec)
	if b > 0 && b < transferMemoLimit {
		if int64(b) >= int64(len(m.dense)) {
			if int64(b) < int64(cap(m.dense)) {
				m.dense = m.dense[:b+1]
			} else {
				n := 2 * cap(m.dense)
				if n < 4096 {
					n = 4096
				}
				if int64(b) >= int64(n) {
					n = int(b) + 1
				}
				grown := make([]Time, int(b)+1, n)
				copy(grown, m.dense)
				m.dense = grown
			}
		}
		m.dense[b] = t
	}
	return t
}

// BandwidthKBs returns the bandwidth, in KB/s, implied by transferring b
// bytes in duration d. Returns 0 when d is zero (infinite bandwidth has no
// useful finite rendering; callers treat 0 as "not meaningful").
func BandwidthKBs(b Bytes, d Time) float64 {
	if d <= 0 {
		return 0
	}
	return b.KBytes() / d.Seconds()
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b Bytes) Bytes {
	if b <= 0 {
		panic("units: CeilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}
