package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		tm  Time
		sec float64
		ms  float64
	}{
		{0, 0, 0},
		{Microsecond, 1e-6, 1e-3},
		{Millisecond, 1e-3, 1},
		{Second, 1, 1000},
		{Minute, 60, 60000},
		{Hour, 3600, 3.6e6},
		{Day, 86400, 8.64e7},
	}
	for _, c := range cases {
		if got := c.tm.Seconds(); got != c.sec {
			t.Errorf("%d.Seconds() = %g, want %g", c.tm, got, c.sec)
		}
		if got := c.tm.Milliseconds(); got != c.ms {
			t.Errorf("%d.Milliseconds() = %g, want %g", c.tm, got, c.ms)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %d, want %d", got, 1500*Millisecond)
	}
	if got := FromSeconds(0.0000005); got != 1 { // rounds to nearest µs
		t.Errorf("FromSeconds(0.5µs) = %d, want 1", got)
	}
	if got := FromMilliseconds(25.7); got != 25700 {
		t.Errorf("FromMilliseconds(25.7) = %d, want 25700", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		tm   Time
		want string
	}{
		{500, "500µs"},
		{25700, "25.7ms"},
		{1600 * Millisecond, "1.6s"},
		{90 * Second, "1.5min"},
		{2 * Hour, "2h"},
		{-Second, "-1s"},
	}
	for _, c := range cases {
		if got := c.tm.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.tm, got, c.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		b    Bytes
		want string
	}{
		{512, "512B"},
		{KB, "1KB"},
		{64 * KB, "64KB"},
		{10 * MB, "10MB"},
		{3 * GB, "3GB"},
		{-KB, "-1KB"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.b, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Max(Time(3), Time(5)) != 5 || Max(Time(5), Time(3)) != 5 {
		t.Error("Max wrong")
	}
	if Min(Time(3), Time(5)) != 3 || Min(Time(5), Time(3)) != 3 {
		t.Error("Min wrong")
	}
}

func TestTransferTime(t *testing.T) {
	// 75 KB at 75 KB/s is one second.
	if got := TransferTime(75*KB, 75); got != Second {
		t.Errorf("TransferTime(75KB, 75) = %v, want 1s", got)
	}
	// Zero bandwidth means instantaneous (byte-addressable idealization).
	if got := TransferTime(MB, 0); got != 0 {
		t.Errorf("TransferTime with 0 bandwidth = %v, want 0", got)
	}
	if got := TransferTime(0, 100); got != 0 {
		t.Errorf("TransferTime of 0 bytes = %v, want 0", got)
	}
}

func TestBandwidthKBs(t *testing.T) {
	if got := BandwidthKBs(75*KB, Second); got != 75 {
		t.Errorf("BandwidthKBs(75KB, 1s) = %g, want 75", got)
	}
	if got := BandwidthKBs(KB, 0); got != 0 {
		t.Errorf("BandwidthKBs with zero time = %g, want 0", got)
	}
}

// TestTransferBandwidthRoundTrip checks that converting bytes→time→bandwidth
// recovers the bandwidth within rounding error.
func TestTransferBandwidthRoundTrip(t *testing.T) {
	f := func(sizeKB uint16, rate uint16) bool {
		if sizeKB == 0 || rate == 0 {
			return true
		}
		size := Bytes(sizeKB) * KB
		kbs := float64(rate)
		d := TransferTime(size, kbs)
		got := BandwidthKBs(size, d)
		return math.Abs(got-kbs)/kbs < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want Bytes }{
		{0, 512, 0},
		{1, 512, 1},
		{512, 512, 1},
		{513, 512, 2},
		{1024, 512, 2},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(1, 0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

// TestCeilDivProperty: result×b is the smallest multiple of b that is ≥ a.
func TestCeilDivProperty(t *testing.T) {
	f := func(a uint32, b uint16) bool {
		if b == 0 {
			return true
		}
		av, bv := Bytes(a), Bytes(b)
		q := CeilDiv(av, bv)
		return q*bv >= av && (q == 0 || (q-1)*bv < av)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
