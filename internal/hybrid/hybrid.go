// Package hybrid models the fourth architecture the paper points to in its
// related work (§6): flash memory as a cache for disk blocks, after Marsh,
// Douglis & Krishnan, "Flash Memory File Caching for Mobile Computers"
// (HICSS '94) — by the same authors as the paper itself. A small flash
// card sits between the DRAM buffer cache and the magnetic disk:
//
//   - reads that hit flash are served at flash speed, without touching the
//     disk — so the disk can stay spun down;
//   - writes land in flash and are destaged to the disk in the background,
//     in batches, when the dirty fraction passes a high-water mark (waking
//     the disk at most once per batch);
//   - the flash is managed log-structured like the flash card (it *is* a
//     flashcard.Card), so cleaning and endurance behave as in §5.2.
//
// The result combines disk capacity with flash energy: the disk wakes only
// for cache-miss reads and batched destages.
package hybrid

import (
	"fmt"
	"sort"

	"mobilestorage/internal/device"
	"mobilestorage/internal/disk"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/flashcard"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// dirtyHighWater is the dirty fraction of the flash cache that triggers a
// background destage batch.
const dirtyHighWater = 0.25

// slot tracks one cached disk block's state in the flash cache.
type slot struct {
	diskBlock  int64
	cacheBlock int64
	dirty      bool
	prev, next *slot // LRU list; head = MRU
}

// Cache is a flash-cache-over-disk storage device.
type Cache struct {
	dsk       *disk.Disk
	card      *flashcard.Card
	blockSize units.Bytes
	capBlocks int64

	slots      map[int64]*slot // disk block → slot
	head, tail *slot
	freeCache  []int64 // free cache block indices
	dirtyCount int64

	destageDoneAt units.Time

	// Counters.
	hits, misses  int64
	destageWrites int64
	destages      int64

	// Observability (nil-safe no-ops without a scope).
	sc        *obs.Scope
	evName    string
	cHits     *obs.Counter
	cMisses   *obs.Counter
	cDestages *obs.Counter
}

// Config sizes the hybrid stack.
type Config struct {
	Disk      device.DiskParams
	SpinDown  units.Time
	Card      device.FlashCardParams
	CacheSize units.Bytes
	BlockSize units.Bytes
	// Scope receives metrics and events from the hybrid layer and both
	// underlying devices; nil disables observability.
	Scope *obs.Scope
	// Faults injects transient errors, wear-out, and power failures into
	// both underlying devices; nil disables fault injection.
	Faults *fault.Injector
}

// New builds a hybrid device: a disk with a flash block cache in front.
func New(cfg Config) (*Cache, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("hybrid: block size must be positive")
	}
	capBlocks := int64(cfg.CacheSize / cfg.BlockSize)
	if capBlocks < 8 {
		return nil, fmt.Errorf("hybrid: cache %v holds under 8 blocks", cfg.CacheSize)
	}
	d, err := disk.New(cfg.Disk, disk.WithSpinDown(cfg.SpinDown), disk.WithScope(cfg.Scope),
		disk.WithFaults(cfg.Faults))
	if err != nil {
		return nil, err
	}
	// The flash substrate needs headroom over the cache capacity for its
	// own cleaning (the paper's utilization lesson applied to ourselves):
	// run the cache flash at ~60% utilization so cleaning keeps up with
	// cache churn even under write-heavy workloads.
	flashCapacity := units.CeilDiv(units.Bytes(float64(cfg.CacheSize)/0.60), cfg.Card.SegmentSize) * cfg.Card.SegmentSize
	minCapacity := (4 + units.CeilDiv(cfg.CacheSize, cfg.Card.SegmentSize)) * cfg.Card.SegmentSize
	if flashCapacity < minCapacity {
		flashCapacity = minCapacity
	}
	card, err := flashcard.New(cfg.Card, flashCapacity, cfg.BlockSize, flashcard.WithScope(cfg.Scope),
		flashcard.WithFaults(cfg.Faults))
	if err != nil {
		return nil, err
	}
	c := &Cache{
		dsk:       d,
		card:      card,
		blockSize: cfg.BlockSize,
		capBlocks: capBlocks,
		slots:     make(map[int64]*slot, capBlocks),
		sc:        cfg.Scope,
		cHits:     cfg.Scope.Counter("hybrid.hits"),
		cMisses:   cfg.Scope.Counter("hybrid.misses"),
		cDestages: cfg.Scope.Counter("hybrid.destages"),
	}
	for i := capBlocks - 1; i >= 0; i-- {
		c.freeCache = append(c.freeCache, i)
	}
	c.evName = c.Name()
	return c, nil
}

// Name implements device.Device.
func (c *Cache) Name() string {
	return fmt.Sprintf("%s+flashcache%v(%s)", c.dsk.Name(), c.blockSize*units.Bytes(c.capBlocks), c.card.Params().Name)
}

// Meter implements device.Device, returning the combined energy of the
// disk and the flash cache.
func (c *Cache) Meter() *energy.Meter {
	m := energy.NewMeter()
	c.MeterInto(m)
	return m
}

// MeterInto rebuilds the combined disk+flash energy attribution in dst,
// reusing its storage. The per-tick sampler path uses this with a scratch
// meter so snapshotting allocates nothing; the merge order matches Meter
// exactly, so totals are bit-identical.
func (c *Cache) MeterInto(dst *energy.Meter) {
	dst.Reset()
	dst.Merge(c.dsk.Meter())
	dst.Merge(c.card.Meter())
}

// Disk exposes the underlying disk (spin-up statistics).
func (c *Cache) Disk() *disk.Disk { return c.dsk }

// Card exposes the flash cache substrate (wear statistics).
func (c *Cache) Card() *flashcard.Card { return c.card }

// HitRate returns the flash-cache hit rate over reads.
func (c *Cache) HitRate() float64 {
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// Destages returns the number of destage batches written to the disk.
func (c *Cache) Destages() int64 { return c.destages }

// Idle implements device.Device.
func (c *Cache) Idle(now units.Time) {
	c.dsk.Idle(now)
	c.card.Idle(now)
}

// Finish implements device.Device. Dirty cached data stays in flash — it is
// non-volatile, which is the whole point of the architecture.
func (c *Cache) Finish(now units.Time) {
	c.dsk.Finish(now)
	c.card.Finish(now)
}

// Access implements device.Device.
func (c *Cache) Access(req device.Request) units.Time {
	switch req.Op {
	case trace.Delete:
		c.invalidate(req)
		return req.Time
	case trace.Read:
		return c.read(req)
	case trace.Write:
		return c.write(req)
	default:
		panic(fmt.Sprintf("hybrid: unknown op %v", req.Op))
	}
}

// ReadExtent services a coalesced run of read requests back to back,
// equivalent by construction to Idle(reqs[k].Time) followed by
// Access(reqs[k]) for each k in order. completions[k] receives request k's
// completion time.
func (c *Cache) ReadExtent(reqs []device.Request, completions []units.Time) {
	for k := range reqs {
		c.Idle(reqs[k].Time)
		completions[k] = c.Access(reqs[k])
	}
}

// WriteExtent is ReadExtent's write-path counterpart.
func (c *Cache) WriteExtent(reqs []device.Request, completions []units.Time) {
	for k := range reqs {
		c.Idle(reqs[k].Time)
		completions[k] = c.Access(reqs[k])
	}
}

// read serves from flash when every requested block is cached; otherwise
// the disk services the whole request and the blocks are installed into
// flash off the critical path.
func (c *Cache) read(req device.Request) units.Time {
	first, last := c.blockRange(req)
	allCached := true
	for b := first; b <= last; b++ {
		if _, ok := c.slots[b]; !ok {
			allCached = false
			break
		}
	}
	if allCached {
		c.hits++
		c.cHits.Inc()
		var completion units.Time
		for b := first; b <= last; b++ {
			s := c.slots[b]
			c.touch(s)
			completion = c.card.Access(device.Request{
				Time: units.Max(req.Time, completion), Op: trace.Read, File: req.File,
				Addr: units.Bytes(s.cacheBlock) * c.blockSize, Size: c.blockSize,
			})
		}
		return completion
	}
	c.misses++
	c.cMisses.Inc()
	completion := c.dsk.Access(req)
	// Install the blocks into flash at disk-read completion: flash writes
	// off the host's critical path (the host already has the data).
	install := completion
	for b := first; b <= last; b++ {
		install = c.installClean(install, b, req.File)
	}
	return completion
}

// write lands in flash and returns at flash speed; a destage batch is
// scheduled when the dirty share passes the high-water mark.
func (c *Cache) write(req device.Request) units.Time {
	first, last := c.blockRange(req)
	completion := req.Time
	for b := first; b <= last; b++ {
		s, ok := c.slots[b]
		if !ok {
			s = c.allocate(completion, b)
		}
		if !s.dirty {
			s.dirty = true
			c.dirtyCount++
		}
		c.touch(s)
		completion = c.card.Access(device.Request{
			Time: completion, Op: trace.Write, File: req.File,
			Addr: units.Bytes(s.cacheBlock) * c.blockSize, Size: c.blockSize,
		})
	}
	if float64(c.dirtyCount) >= dirtyHighWater*float64(c.capBlocks) && c.destageDoneAt <= completion {
		c.destage(completion)
	}
	return completion
}

// installClean adds a clean (just-read) block to the cache at the given
// time, returning when the flash write finishes.
func (c *Cache) installClean(at units.Time, diskBlock int64, file uint32) units.Time {
	if _, ok := c.slots[diskBlock]; ok {
		return at
	}
	s := c.allocate(at, diskBlock)
	c.touch(s)
	// Installs run off the host's critical path: the host already has the
	// data (the disk just returned it); the flash write must not delay
	// subsequent host operations.
	return c.card.Background(device.Request{
		Time: at, Op: trace.Write, File: file,
		Addr: units.Bytes(s.cacheBlock) * c.blockSize, Size: c.blockSize,
	})
}

// allocate finds a cache slot for a disk block, evicting the LRU clean
// block if needed; if everything is dirty, it forces a destage first.
func (c *Cache) allocate(at units.Time, diskBlock int64) *slot {
	if len(c.freeCache) == 0 {
		// Evict the least-recently-used clean block.
		victim := c.tail
		for victim != nil && victim.dirty {
			victim = victim.prev
		}
		if victim == nil {
			// All dirty: synchronous destage frees everything.
			c.destage(at)
			victim = c.tail
		}
		c.card.Access(device.Request{
			Time: at, Op: trace.Delete,
			Addr: units.Bytes(victim.cacheBlock) * c.blockSize, Size: c.blockSize,
		})
		c.unlink(victim)
		delete(c.slots, victim.diskBlock)
		c.freeCache = append(c.freeCache, victim.cacheBlock)
	}
	cb := c.freeCache[len(c.freeCache)-1]
	c.freeCache = c.freeCache[:len(c.freeCache)-1]
	s := &slot{diskBlock: diskBlock, cacheBlock: cb}
	c.slots[diskBlock] = s
	c.pushFront(s)
	return s
}

// destage writes all dirty blocks to the disk in one batch via the disk's
// background path (it spins the disk up once), marking them clean.
func (c *Cache) destage(at units.Time) {
	if c.dirtyCount == 0 {
		return
	}
	var blocks []int64
	for b, s := range c.slots {
		if s.dirty {
			blocks = append(blocks, b)
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	completion := at
	runStart, runLen := blocks[0], int64(1)
	emit := func() {
		completion = c.dsk.Background(device.Request{
			Time: completion, Op: trace.Write, File: ^uint32(0),
			Addr: units.Bytes(runStart) * c.blockSize, Size: units.Bytes(runLen) * c.blockSize,
		})
		c.destageWrites++
	}
	for _, b := range blocks[1:] {
		if b == runStart+runLen {
			runLen++
			continue
		}
		emit()
		runStart, runLen = b, 1
	}
	emit()
	for _, b := range blocks {
		c.slots[b].dirty = false
	}
	c.destages++
	c.cDestages.Inc()
	if c.sc.Tracing() {
		c.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvHybridDestage, Dev: c.evName,
			Size: c.dirtyCount, Dur: int64(completion - at)})
	}
	c.dirtyCount = 0
	if completion > c.destageDoneAt {
		c.destageDoneAt = completion
	}
}

// invalidate drops cached copies of a deleted extent; the disk sees the
// delete too (a no-op for the disk model).
func (c *Cache) invalidate(req device.Request) {
	first, last := c.blockRange(req)
	for b := first; b <= last; b++ {
		s, ok := c.slots[b]
		if !ok {
			continue
		}
		c.card.Access(device.Request{
			Time: req.Time, Op: trace.Delete,
			Addr: units.Bytes(s.cacheBlock) * c.blockSize, Size: c.blockSize,
		})
		if s.dirty {
			c.dirtyCount--
		}
		c.unlink(s)
		delete(c.slots, b)
		c.freeCache = append(c.freeCache, s.cacheBlock)
	}
	c.dsk.Access(req)
}

func (c *Cache) blockRange(req device.Request) (first, last int64) {
	return int64(req.Addr / c.blockSize), int64((req.Addr + req.Size - 1) / c.blockSize)
}

func (c *Cache) touch(s *slot) {
	c.unlink(s)
	c.pushFront(s)
}

func (c *Cache) pushFront(s *slot) {
	s.prev = nil
	s.next = c.head
	if c.head != nil {
		c.head.prev = s
	}
	c.head = s
	if c.tail == nil {
		c.tail = s
	}
}

func (c *Cache) unlink(s *slot) {
	if s.prev != nil {
		s.prev.next = s.next
	} else if c.head == s {
		c.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else if c.tail == s {
		c.tail = s.prev
	}
	s.prev, s.next = nil, nil
}

// Crash implements device.Crasher. The flash cache is non-volatile — cached
// blocks, dirty ones included, survive (the whole point of the
// architecture). An in-flight destage batch's writes were already applied to
// the disk's model state when they were issued, so abandoning its timing
// loses nothing; the crash propagates to both devices.
func (c *Cache) Crash(at units.Time) {
	if c.destageDoneAt > at {
		c.destageDoneAt = at
	}
	c.dsk.Crash(at)
	c.card.Crash(at)
}

// Recover implements device.Crasher: both devices recover (the flash cache's
// map scan dominates); dirty cached blocks need no replay — they are still
// in flash and will destage normally.
func (c *Cache) Recover(at units.Time) units.Time {
	done := c.dsk.Recover(at)
	return units.Max(done, c.card.Recover(at))
}

var (
	_ device.Device  = (*Cache)(nil)
	_ device.Crasher = (*Cache)(nil)
)
