package hybrid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mobilestorage/internal/device"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

func cfg() Config {
	return Config{
		Disk:      device.CU140Datasheet(),
		SpinDown:  5 * units.Second,
		Card:      device.IntelSeries2Datasheet(),
		CacheSize: 512 * units.KB,
		BlockSize: units.KB,
	}
}

func rd(at units.Time, addr, size units.Bytes) device.Request {
	return device.Request{Time: at, Op: trace.Read, File: 1, Addr: addr, Size: size}
}

func wr(at units.Time, addr, size units.Bytes) device.Request {
	return device.Request{Time: at, Op: trace.Write, File: 1, Addr: addr, Size: size}
}

func TestReadMissGoesToDiskThenHits(t *testing.T) {
	c, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// First read: disk speed (tens of ms).
	miss := c.Access(rd(0, 0, units.KB))
	if miss < 20*units.Millisecond {
		t.Errorf("miss served in %v, faster than the disk", miss)
	}
	// Second read of the same block: flash speed (sub-ms).
	start := miss + units.Second
	hit := c.Access(rd(start, 0, units.KB)) - start
	if hit > units.Millisecond {
		t.Errorf("hit took %v, want flash speed", hit)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", c.HitRate())
	}
}

func TestWritesDoNotWakeTheDisk(t *testing.T) {
	c, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Let the disk spin down, then write below the destage high-water mark.
	c.Idle(10 * units.Second)
	var clock units.Time = 10 * units.Second
	for i := 0; i < 16; i++ {
		clock = c.Access(wr(clock+units.Second, units.Bytes(i)*units.KB, units.KB))
	}
	if got := c.Disk().SpinUps(); got != 0 {
		t.Errorf("writes below high water spun the disk up %d times", got)
	}
	// Write service is flash-fast.
	before := clock + units.Second
	after := c.Access(wr(before, 100*units.KB, units.KB))
	// 1 KB at the card's 214 KB/s is ≈4.7 ms — flash speed, no spin-up.
	if after-before > 6*units.Millisecond {
		t.Errorf("hybrid write took %v", after-before)
	}
}

func TestDestageAtHighWater(t *testing.T) {
	c, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Dirty more than 25% of the 512-block cache.
	var clock units.Time
	for i := 0; i < 140; i++ {
		clock = c.Access(wr(clock+100*units.Millisecond, units.Bytes(i)*units.KB, units.KB))
	}
	if c.Destages() == 0 {
		t.Error("no destage despite crossing the high-water mark")
	}
	// Destaged data woke the disk (once per batch, not per block).
	if ups := c.Disk().SpinUps(); ups == 0 || ups > c.Destages()+1 {
		t.Errorf("spinUps = %d for %d destages", ups, c.Destages())
	}
}

func TestEvictionPrefersClean(t *testing.T) {
	small := cfg()
	small.CacheSize = 16 * units.KB // 16 blocks
	c, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	var clock units.Time
	// Fill with clean blocks (reads), then stream more reads through:
	// evictions must not touch the disk beyond the misses themselves.
	for i := 0; i < 64; i++ {
		clock = c.Access(rd(clock+units.Second, units.Bytes(i)*units.KB, units.KB))
	}
	if c.HitRate() != 0 {
		t.Errorf("hit rate %g on a pure-miss stream", c.HitRate())
	}
}

func TestDeleteInvalidates(t *testing.T) {
	c, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	c.Access(wr(0, 0, 4*units.KB))
	c.Access(device.Request{Time: units.Second, Op: trace.Delete, Addr: 0, Size: 4 * units.KB})
	// Re-read misses (goes to disk).
	resp := c.Access(rd(2*units.Second, 0, units.KB)) - 2*units.Second
	if resp < units.Millisecond {
		t.Errorf("read of deleted block served from cache (%v)", resp)
	}
}

func TestEnergyCombinesComponents(t *testing.T) {
	c, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	c.Access(wr(0, 0, units.KB))
	c.Finish(units.Hour)
	total := c.Meter().TotalJ()
	if total <= 0 {
		t.Fatal("no energy")
	}
	sum := c.Disk().Meter().TotalJ() + c.Card().Meter().TotalJ()
	if total != sum {
		t.Errorf("combined meter %g ≠ disk+card %g", total, sum)
	}
}

func TestConstructionErrors(t *testing.T) {
	bad := cfg()
	bad.CacheSize = units.KB
	if _, err := New(bad); err == nil {
		t.Error("tiny cache accepted")
	}
	bad = cfg()
	bad.BlockSize = 0
	if _, err := New(bad); err == nil {
		t.Error("zero block size accepted")
	}
}

// TestHybridInvariants: random traffic never loses cache-state consistency:
// hit rate stays in [0,1], destage count is monotone, the underlying card
// never exceeds utilization 1, and the LRU map matches the list.
func TestHybridInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		small := cfg()
		small.CacheSize = 32 * units.KB
		c, err := New(small)
		if err != nil {
			return false
		}
		var clock units.Time
		for i := 0; i < 400; i++ {
			clock += units.Time(rng.Intn(2000)) * units.Millisecond
			addr := units.Bytes(rng.Intn(128)) * units.KB
			n := units.Bytes(rng.Intn(3)+1) * units.KB
			switch rng.Intn(4) {
			case 0:
				c.Access(device.Request{Time: clock, Op: trace.Delete, Addr: addr, Size: n})
			case 1:
				clock = c.Access(rd(clock, addr, n))
			default:
				clock = c.Access(wr(clock, addr, n))
			}
		}
		if hr := c.HitRate(); hr < 0 || hr > 1 {
			return false
		}
		if u := c.Card().Utilization(); u > 1 {
			return false
		}
		// LRU list length equals map size.
		n := 0
		for s := c.head; s != nil; s = s.next {
			n++
		}
		return n == len(c.slots)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
