package energy

import "fmt"

// BatteryModel captures the whole-system power budget the paper uses to
// translate storage energy savings into battery-life extension (§1, §7).
//
// Marsh & Zenel [14] measured the storage subsystem at 20–54% of total
// notebook energy. If storage is fraction f of system energy and a new
// storage technology saves fraction s of storage energy, system energy
// shrinks to (1 − f·s) and battery life extends by 1/(1 − f·s) − 1.
type BatteryModel struct {
	// StorageFraction is the share of total system energy consumed by the
	// storage subsystem under the baseline configuration (0–1).
	StorageFraction float64
	// BaselineJ and AlternativeJ are storage-subsystem energies for the same
	// workload under the baseline (disk) and alternative (flash) systems,
	// e.g. two Table 4 rows.
	BaselineJ    float64
	AlternativeJ float64
}

// StorageSavings returns the fraction of storage energy saved (0–1).
func (b BatteryModel) StorageSavings() float64 {
	if b.BaselineJ <= 0 {
		return 0
	}
	s := 1 - b.AlternativeJ/b.BaselineJ
	if s < 0 {
		return 0
	}
	return s
}

// SystemSavings returns the fraction of total system energy saved.
func (b BatteryModel) SystemSavings() float64 {
	return b.StorageFraction * b.StorageSavings()
}

// LifeExtension returns the fractional battery-life extension, e.g. 0.22 for
// the paper's 22% headline (storage ≈ 20% of system energy, flash saving
// ≈ 90% of storage energy gives 1/(1−0.18) − 1 ≈ 0.22).
func (b BatteryModel) LifeExtension() float64 {
	sys := b.SystemSavings()
	if sys >= 1 {
		return 0 // degenerate: storage was all the energy and is now free
	}
	return 1/(1-sys) - 1
}

// String summarizes the model's conclusions.
func (b BatteryModel) String() string {
	return fmt.Sprintf("storage %.0f%% of system, storage savings %.0f%% → battery life +%.0f%%",
		b.StorageFraction*100, b.StorageSavings()*100, b.LifeExtension()*100)
}
