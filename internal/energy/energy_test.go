package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mobilestorage/internal/units"
)

func TestMeterAccrue(t *testing.T) {
	m := NewMeter()
	m.Accrue(StateIdle, 0.7, 10*units.Second) // 7 J
	m.Accrue(StateActive, 1.75, 2*units.Second)
	m.Accrue(StateIdle, 0.7, 10*units.Second)
	if got := m.StateJ(StateIdle); math.Abs(got-14) > 1e-9 {
		t.Errorf("idle = %g J, want 14", got)
	}
	if got := m.StateJ(StateActive); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("active = %g J, want 3.5", got)
	}
	if got := m.TotalJ(); math.Abs(got-17.5) > 1e-9 {
		t.Errorf("total = %g J, want 17.5", got)
	}
}

func TestMeterAccrueJoules(t *testing.T) {
	m := NewMeter()
	m.AccrueJoules(StateSpinUp, 3.0)
	if m.TotalJ() != 3.0 || m.StateJ(StateSpinUp) != 3.0 {
		t.Errorf("AccrueJoules: total %g, spinup %g", m.TotalJ(), m.StateJ(StateSpinUp))
	}
}

func TestMeterNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	NewMeter().Accrue(StateIdle, 1, -units.Second)
}

func TestMeterNegativePowerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative power did not panic")
		}
	}()
	NewMeter().Accrue(StateIdle, -1, units.Second)
}

func TestMeterMerge(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.Accrue(StateIdle, 1, units.Second)
	b.Accrue(StateIdle, 1, 2*units.Second)
	b.Accrue(StateErase, 0.5, 2*units.Second)
	a.Merge(b)
	if math.Abs(a.StateJ(StateIdle)-3) > 1e-9 || math.Abs(a.StateJ(StateErase)-1) > 1e-9 {
		t.Errorf("merge: %v", a)
	}
	if math.Abs(a.TotalJ()-4) > 1e-9 {
		t.Errorf("merged total = %g, want 4", a.TotalJ())
	}
}

func TestMeterString(t *testing.T) {
	m := NewMeter()
	m.Accrue(StateIdle, 1, units.Second)
	m.Accrue(StateActive, 2, units.Second)
	s := m.String()
	// States must be sorted for deterministic output.
	if !strings.Contains(s, "active=2.0J, idle=1.0J") {
		t.Errorf("String() = %q", s)
	}
}

// TestMeterTotalIsSum: the total always equals the sum over states.
func TestMeterTotalIsSum(t *testing.T) {
	f := func(durations []uint16) bool {
		m := NewMeter()
		states := []State{StateActive, StateIdle, StateSleep, StateErase}
		for i, d := range durations {
			m.Accrue(states[i%len(states)], 0.5, units.Time(d))
		}
		var sum float64
		for _, j := range m.ByState() {
			sum += j
		}
		return math.Abs(sum-m.TotalJ()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBatteryModelHeadline(t *testing.T) {
	// The paper's headline: storage at 20% of system energy, flash saving
	// ~90% of it, extends battery life by ≈22%.
	m := BatteryModel{StorageFraction: 0.20, BaselineJ: 1000, AlternativeJ: 100}
	if got := m.StorageSavings(); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("savings = %g, want 0.9", got)
	}
	if got := m.LifeExtension(); math.Abs(got-0.2195) > 0.001 {
		t.Errorf("extension = %g, want ≈0.22", got)
	}
}

func TestBatteryModelEdgeCases(t *testing.T) {
	// No baseline: no savings.
	if (BatteryModel{StorageFraction: 0.2}).StorageSavings() != 0 {
		t.Error("zero baseline should have zero savings")
	}
	// Alternative worse than baseline: clamp savings at zero.
	m := BatteryModel{StorageFraction: 0.2, BaselineJ: 100, AlternativeJ: 200}
	if m.StorageSavings() != 0 || m.LifeExtension() != 0 {
		t.Error("worse alternative should not extend battery life")
	}
	// Degenerate full savings of all system energy.
	m = BatteryModel{StorageFraction: 1.0, BaselineJ: 100, AlternativeJ: 0}
	if ext := m.LifeExtension(); ext != 0 {
		t.Errorf("degenerate model returned %g", ext)
	}
}

func TestBatteryModelMonotonic(t *testing.T) {
	// More storage share → more extension, for a fixed savings ratio.
	prev := -1.0
	for _, share := range []float64{0.1, 0.2, 0.3, 0.4, 0.54} {
		m := BatteryModel{StorageFraction: share, BaselineJ: 10, AlternativeJ: 1}
		if ext := m.LifeExtension(); ext <= prev {
			t.Errorf("extension not monotonic at share %g", share)
		} else {
			prev = ext
		}
	}
}
