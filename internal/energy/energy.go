// Package energy provides power-state energy accounting for simulated
// devices, plus the battery-life model used for the paper's headline
// "22% battery-life extension" claim.
//
// Every device in the simulator owns a Meter. The device tells the meter
// which power state it is in as simulated time advances; the meter integrates
// power × time into joules, attributed per state so experiments can report
// where the energy went (idle vs. spin-up vs. transfer vs. erase).
package energy

import (
	"fmt"
	"sort"
	"strings"

	"mobilestorage/internal/units"
)

// State identifies a device power state for attribution purposes.
type State string

// Common states shared across device models. Devices may define their own.
const (
	StateActive  State = "active"  // transferring data
	StateIdle    State = "idle"    // powered and ready (disk spinning, chip idle)
	StateSleep   State = "sleep"   // spun down / deep standby
	StateSpinUp  State = "spinup"  // disk spin-up transient
	StateErase   State = "erase"   // flash erase operation
	StateCleaner State = "cleaner" // flash cleaning copies
	StateStandby State = "standby" // memory retention (DRAM refresh, SRAM data hold)
)

// Meter integrates energy across labelled power states.
//
// A Meter is driven by calls to Accrue(state, watts, duration). It does not
// track a clock itself; devices own their notion of time and simply report
// intervals. This keeps the meter trivially correct and lets devices account
// overlapping background work (e.g. a flash erase that proceeds during host
// idle time) however their model requires.
type Meter struct {
	joules map[State]float64
	total  float64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{joules: make(map[State]float64)}
}

// Accrue adds watts × duration of energy attributed to state.
// Negative durations are rejected with a panic: a device accounting backwards
// in time is a simulator bug we want to fail loudly.
func (m *Meter) Accrue(state State, watts float64, d units.Time) {
	if d < 0 {
		panic(fmt.Sprintf("energy: negative duration %v in state %s", d, state))
	}
	if watts < 0 {
		panic(fmt.Sprintf("energy: negative power %g W in state %s", watts, state))
	}
	j := watts * d.Seconds()
	m.joules[state] += j
	m.total += j
}

// AccrueJoules adds a precomputed energy amount to a state. Used for
// fixed-energy events (e.g. a disk spin-up charged as a lump).
func (m *Meter) AccrueJoules(state State, j float64) {
	if j < 0 {
		panic(fmt.Sprintf("energy: negative energy %g J in state %s", j, state))
	}
	m.joules[state] += j
	m.total += j
}

// TotalJ returns total accumulated energy in joules.
func (m *Meter) TotalJ() float64 { return m.total }

// ByState returns a copy of the per-state attribution map.
func (m *Meter) ByState() map[State]float64 {
	out := make(map[State]float64, len(m.joules))
	for k, v := range m.joules {
		out[k] = v
	}
	return out
}

// StateJ returns the energy attributed to one state.
func (m *Meter) StateJ(s State) float64 { return m.joules[s] }

// Merge adds all of other's energy into m. States are merged in sorted
// order: float addition is order-sensitive in the last ulp, and map
// iteration order would make merged totals vary between identical runs.
func (m *Meter) Merge(other *Meter) {
	states := make([]State, 0, len(other.joules))
	for k := range other.joules {
		states = append(states, k)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	for _, k := range states {
		v := other.joules[k]
		m.joules[k] += v
		m.total += v
	}
}

// String renders the meter as "total J (state=J, ...)" with states sorted
// for deterministic output.
func (m *Meter) String() string {
	states := make([]string, 0, len(m.joules))
	for k := range m.joules {
		states = append(states, string(k))
	}
	sort.Strings(states)
	parts := make([]string, 0, len(states))
	for _, s := range states {
		parts = append(parts, fmt.Sprintf("%s=%.1fJ", s, m.joules[State(s)]))
	}
	return fmt.Sprintf("%.1fJ (%s)", m.total, strings.Join(parts, ", "))
}
