// Package energy provides power-state energy accounting for simulated
// devices, plus the battery-life model used for the paper's headline
// "22% battery-life extension" claim.
//
// Every device in the simulator owns a Meter. The device tells the meter
// which power state it is in as simulated time advances; the meter integrates
// power × time into joules, attributed per state so experiments can report
// where the energy went (idle vs. spin-up vs. transfer vs. erase).
package energy

import (
	"fmt"
	"sort"
	"strings"

	"mobilestorage/internal/units"
)

// State identifies a device power state for attribution purposes.
type State string

// Common states shared across device models. Devices may define their own.
const (
	StateActive  State = "active"  // transferring data
	StateIdle    State = "idle"    // powered and ready (disk spinning, chip idle)
	StateSleep   State = "sleep"   // spun down / deep standby
	StateSpinUp  State = "spinup"  // disk spin-up transient
	StateErase   State = "erase"   // flash erase operation
	StateCleaner State = "cleaner" // flash cleaning copies
	StateStandby State = "standby" // memory retention (DRAM refresh, SRAM data hold)
)

// knownStates lists the predefined states in sorted name order. The meter
// stores their energy in a flat array indexed by this order — Accrue is on
// every device's per-operation path, and hashing a string key per accrual
// dominated whole-trace replay profiles. Keeping the array in sorted name
// order means Merge's in-order walk reproduces the exact float-addition
// order of the original sorted-map implementation.
var knownStates = [...]State{
	StateActive, StateCleaner, StateErase, StateIdle,
	StateSleep, StateSpinUp, StateStandby,
}

const numKnown = len(knownStates)

// knownIndex maps a predefined state to its array slot, or -1 for a
// device-defined custom state (those spill to a map).
func knownIndex(s State) int {
	switch s {
	case StateActive:
		return 0
	case StateCleaner:
		return 1
	case StateErase:
		return 2
	case StateIdle:
		return 3
	case StateSleep:
		return 4
	case StateSpinUp:
		return 5
	case StateStandby:
		return 6
	}
	return -1
}

// Meter integrates energy across labelled power states.
//
// A Meter is driven by calls to Accrue(state, watts, duration). It does not
// track a clock itself; devices own their notion of time and simply report
// intervals. This keeps the meter trivially correct and lets devices account
// overlapping background work (e.g. a flash erase that proceeds during host
// idle time) however their model requires.
type Meter struct {
	known [numKnown]float64
	// present[i] records that known state i was ever accrued, preserving the
	// map implementation's distinction between "absent" and "zero joules" in
	// ByState and String output.
	present [numKnown]bool
	// spill holds device-defined custom states; nil until one appears.
	spill map[State]float64
	total float64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{}
}

// Accrue adds watts × duration of energy attributed to state.
// Negative durations are rejected with a panic: a device accounting backwards
// in time is a simulator bug we want to fail loudly.
func (m *Meter) Accrue(state State, watts float64, d units.Time) {
	if d < 0 {
		panic(fmt.Sprintf("energy: negative duration %v in state %s", d, state))
	}
	if watts < 0 {
		panic(fmt.Sprintf("energy: negative power %g W in state %s", watts, state))
	}
	m.AccrueJoules(state, watts*d.Seconds())
}

// Slot is a precomputed index for one of the predefined states. Device hot
// paths accrue through a slot to skip the per-call state-name dispatch;
// AccrueSlot(SlotX, w, d) is exactly Accrue(StateX, w, d).
type Slot int8

// Slots for the predefined states, in knownStates order.
const (
	SlotActive  Slot = 0
	SlotCleaner Slot = 1
	SlotErase   Slot = 2
	SlotIdle    Slot = 3
	SlotSleep   Slot = 4
	SlotSpinUp  Slot = 5
	SlotStandby Slot = 6
)

// AccrueSlot adds watts × duration of energy attributed to the slot's state,
// with the same negative-input panics as Accrue.
func (m *Meter) AccrueSlot(i Slot, watts float64, d units.Time) {
	if d < 0 || watts < 0 {
		m.Accrue(knownStates[i], watts, d) // reproduce Accrue's panic
	}
	j := watts * d.Seconds()
	m.known[i] += j
	m.present[i] = true
	m.total += j
}

// AccrueJoules adds a precomputed energy amount to a state. Used for
// fixed-energy events (e.g. a disk spin-up charged as a lump).
func (m *Meter) AccrueJoules(state State, j float64) {
	if j < 0 {
		panic(fmt.Sprintf("energy: negative energy %g J in state %s", j, state))
	}
	if i := knownIndex(state); i >= 0 {
		m.known[i] += j
		m.present[i] = true
	} else {
		if m.spill == nil {
			m.spill = make(map[State]float64)
		}
		m.spill[state] += j
	}
	m.total += j
}

// TotalJ returns total accumulated energy in joules.
func (m *Meter) TotalJ() float64 { return m.total }

// Reset returns the meter to its empty state, retaining the spill map's
// storage for reuse. Combined with ByStateInto and Merge it lets periodic
// samplers rebuild aggregate meters without allocating every tick.
func (m *Meter) Reset() {
	m.known = [numKnown]float64{}
	m.present = [numKnown]bool{}
	m.total = 0
	for k := range m.spill {
		delete(m.spill, k)
	}
}

// ByStateInto writes the per-state attribution into dst (cleared first) and
// returns it, allocating only when dst is nil or too small. The allocation-
// free sibling of ByState for callers that snapshot every tick.
func (m *Meter) ByStateInto(dst map[State]float64) map[State]float64 {
	if dst == nil {
		return m.ByState()
	}
	for k := range dst {
		delete(dst, k)
	}
	for i, s := range knownStates {
		if m.present[i] {
			dst[s] = m.known[i]
		}
	}
	for k, v := range m.spill {
		dst[k] = v
	}
	return dst
}

// ByState returns a copy of the per-state attribution map.
func (m *Meter) ByState() map[State]float64 {
	out := make(map[State]float64, numKnown+len(m.spill))
	for i, s := range knownStates {
		if m.present[i] {
			out[s] = m.known[i]
		}
	}
	for k, v := range m.spill {
		out[k] = v
	}
	return out
}

// StateJ returns the energy attributed to one state.
func (m *Meter) StateJ(s State) float64 {
	if i := knownIndex(s); i >= 0 {
		return m.known[i]
	}
	return m.spill[s]
}

// Merge adds all of other's energy into m. States are merged in sorted
// order: float addition is order-sensitive in the last ulp, and arbitrary
// order would make merged totals vary between identical runs.
func (m *Meter) Merge(other *Meter) {
	if other.spill == nil {
		// knownStates is already in sorted name order.
		for i := range knownStates {
			if !other.present[i] {
				continue
			}
			v := other.known[i]
			m.known[i] += v
			m.present[i] = true
			m.total += v
		}
		return
	}
	by := other.ByState()
	states := make([]State, 0, len(by))
	for k := range by {
		states = append(states, k)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	for _, k := range states {
		m.AccrueJoules(k, by[k])
	}
}

// String renders the meter as "total J (state=J, ...)" with states sorted
// for deterministic output.
func (m *Meter) String() string {
	by := m.ByState()
	states := make([]string, 0, len(by))
	for k := range by {
		states = append(states, string(k))
	}
	sort.Strings(states)
	parts := make([]string, 0, len(states))
	for _, s := range states {
		parts = append(parts, fmt.Sprintf("%s=%.1fJ", s, by[State(s)]))
	}
	return fmt.Sprintf("%.1fJ (%s)", m.total, strings.Join(parts, ", "))
}
