package disk

import (
	"math"
	"testing"

	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/units"
)

// forcedInjector returns an injector whose read attempts always fail:
// exactly MaxRetries+1 physical attempts per read, deterministic backoff.
func forcedInjector(t *testing.T) *fault.Injector {
	t.Helper()
	in := fault.NewInjector(&fault.Plan{
		ReadErrorRate: 1, MaxRetries: 2, BackoffUs: 1000, MaxBackoffUs: 2000,
	}, 1, nil)
	if in == nil {
		t.Fatal("no injector for an enabled plan")
	}
	return in
}

// TestRetryChargesPerAttempt pins the satellite fix: a failed-then-retried
// operation charges service time and active energy for EVERY physical
// attempt, and idle energy for the backoff waits — attempts × per-op cost,
// not one op plus free retries.
func TestRetryChargesPerAttempt(t *testing.T) {
	base, _ := New(testParams())
	baseDone := base.Access(read(0, 1, 10*units.KB))
	baseActiveJ := base.Meter().StateJ(energy.StateActive)

	d, err := New(testParams(), WithFaults(forcedInjector(t)))
	if err != nil {
		t.Fatal(err)
	}
	done := d.Access(read(0, 1, 10*units.KB))

	// 3 attempts (MaxRetries=2 exhausted) with backoff 1000+2000 between.
	const attempts, backoffUs = 3, 3000
	wantDone := baseDone*attempts + backoffUs
	if done != wantDone {
		t.Errorf("retried completion = %v, want %v (= %d attempts + %dµs backoff)",
			done, wantDone, attempts, backoffUs)
	}
	gotActive := d.Meter().StateJ(energy.StateActive)
	if math.Abs(gotActive-attempts*baseActiveJ) > 1e-12 {
		t.Errorf("active energy = %g J, want %d × %g J", gotActive, attempts, baseActiveJ)
	}
	// Backoff waits at idle power: 3000 µs × 1 W.
	wantIdle := 3000e-6 * 1.0
	if got := d.Meter().StateJ(energy.StateIdle); math.Abs(got-wantIdle) > 1e-12 {
		t.Errorf("backoff idle energy = %g J, want %g J", got, wantIdle)
	}
}

// TestRetryDelaysQueue verifies retries occupy the device: a second request
// arriving during the retries queues behind them.
func TestRetryDelaysQueue(t *testing.T) {
	d, _ := New(testParams(), WithFaults(forcedInjector(t)))
	first := d.Access(read(0, 1, 10*units.KB))
	second := d.Access(read(first-1, 1, 10*units.KB))
	if second <= first {
		t.Errorf("second op (%v) not queued behind retried first (%v)", second, first)
	}
}

// TestCrashForcesSleepWithoutSpinDownCount pins crash semantics: power loss
// stops the spindle (state sleeping, in-flight work dropped) but is not a
// policy-initiated spin-down, so SpinDowns does not count it.
func TestCrashForcesSleepWithoutSpinDownCount(t *testing.T) {
	d, _ := New(testParams())
	d.Access(read(0, 1, units.KB)) // spins the disk up
	at := 5 * units.Second
	d.Idle(at)
	downs := d.SpinDowns()
	d.Crash(at)
	if got := d.Recover(at); got != at {
		t.Errorf("disk recovery returned %v, want %v (nothing to repair)", got, at)
	}
	if d.Spinning(at) {
		t.Error("disk still spinning after power failure")
	}
	if d.SpinDowns() != downs {
		t.Error("crash counted as a policy spin-down")
	}
	// The next access pays a spin-up, like any wake from sleep.
	ups := d.SpinUps()
	d.Access(read(at+units.Second, 2, units.KB))
	if d.SpinUps() != ups+1 {
		t.Error("post-crash access did not spin up")
	}
}
