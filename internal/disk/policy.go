package disk

import (
	"fmt"

	"mobilestorage/internal/units"
)

// SpinPolicy decides when an idle disk spins down. The paper simulates a
// fixed 5-second threshold, "a good compromise between energy consumption
// and response time" (§5.1), citing the policy studies it builds on
// (Douglis, Krishnan & Marsh, "Thwarting the Power Hungry Disk"; Li et
// al.'s quantitative analysis [13]). This interface makes the policy a
// first-class experiment axis: the fixed threshold the paper uses, the
// degenerate always-on/immediate endpoints, and the adaptive scheme the
// cited work proposes.
//
// NextSpinDown is consulted when an operation completes: it returns how
// long the disk should stay spinning if no further request arrives
// (0 = never spin down). OnSpinUp feeds the policy the outcome — how long
// the disk actually slept before being woken — so adaptive policies can
// learn.
type SpinPolicy interface {
	// NextSpinDown returns the idle time to wait before spinning down,
	// or 0 to keep spinning indefinitely.
	NextSpinDown() units.Time
	// OnSpinUp reports that the disk was woken after sleeping for slept
	// (the portion of the idle period spent spun down; 0 means the spin-up
	// happened immediately after spin-down, i.e. the spin-down was a loss).
	OnSpinUp(slept units.Time)
	// Name identifies the policy in results.
	Name() string
}

// FixedThreshold is the paper's policy: spin down after a constant idle
// period. Threshold 0 never spins down.
type FixedThreshold struct {
	Threshold units.Time
}

// NextSpinDown implements SpinPolicy.
func (p FixedThreshold) NextSpinDown() units.Time { return p.Threshold }

// OnSpinUp implements SpinPolicy.
func (p FixedThreshold) OnSpinUp(units.Time) {}

// Name implements SpinPolicy.
func (p FixedThreshold) Name() string {
	if p.Threshold == 0 {
		return "always-on"
	}
	return fmt.Sprintf("fixed-%v", p.Threshold)
}

// Immediate spins down the moment the disk goes idle — the minimum-energy,
// maximum-latency endpoint of the policy space.
type Immediate struct{}

// NextSpinDown implements SpinPolicy. One tick, not zero: zero means never.
func (Immediate) NextSpinDown() units.Time { return units.Microsecond }

// OnSpinUp implements SpinPolicy.
func (Immediate) OnSpinUp(units.Time) {}

// Name implements SpinPolicy.
func (Immediate) Name() string { return "immediate" }

// Adaptive adjusts its threshold multiplicatively from observed outcomes:
// a spin-down that barely slept (woken within the break-even time) was a
// mistake, so back off; a spin-down that slept long was cheap, so lean in.
// This is the family of adaptive policies from the spin-down literature
// the paper cites.
type Adaptive struct {
	// Min and Max bound the threshold; Start is the initial value.
	Min, Max, Start units.Time
	// BreakEven is the sleep duration below which a spin-down wastes
	// energy (sleeping must save at least the spin-up cost). For the
	// CU140: spin-up 3 W × 1 s against idle 0.7 W ⇒ ≈4.3 s.
	BreakEven units.Time

	current units.Time
}

// NewAdaptive returns an adaptive policy with bounds fit to the CU140's
// break-even point.
func NewAdaptive() *Adaptive {
	return &Adaptive{
		Min:       1 * units.Second,
		Max:       30 * units.Second,
		Start:     5 * units.Second,
		BreakEven: 4300 * units.Millisecond,
	}
}

// NextSpinDown implements SpinPolicy.
func (p *Adaptive) NextSpinDown() units.Time {
	if p.current == 0 {
		p.current = p.Start
	}
	return p.current
}

// OnSpinUp implements SpinPolicy: multiplicative increase on premature
// wake-ups, gentle decay when sleeps pay off.
func (p *Adaptive) OnSpinUp(slept units.Time) {
	if p.current == 0 {
		p.current = p.Start
	}
	if slept < p.BreakEven {
		p.current *= 2
		if p.current > p.Max {
			p.current = p.Max
		}
	} else {
		p.current -= p.current / 4
		if p.current < p.Min {
			p.current = p.Min
		}
	}
}

// Name implements SpinPolicy.
func (p *Adaptive) Name() string { return "adaptive" }
