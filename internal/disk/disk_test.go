package disk

import (
	"math"
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// testParams is a round-number disk for exact arithmetic: 10 ms access,
// 1024 KB/s transfer, 1 s spin-up; 2 W active, 1 W idle, 4 W spin-up,
// 0.1 W sleeping.
func testParams() device.DiskParams {
	return device.DiskParams{
		Name:          "test",
		Source:        device.Datasheet,
		AccessLatency: 10 * units.Millisecond,
		TransferKBs:   1024,
		SpinUpTime:    1 * units.Second,
		ActiveW:       2,
		IdleW:         1,
		SpinUpW:       4,
		SleepW:        0.1,
	}
}

func read(at units.Time, file uint32, size units.Bytes) device.Request {
	return device.Request{Time: at, Op: trace.Read, File: file, Addr: units.Bytes(file) * units.MB, Size: size}
}

func TestDiskServiceTime(t *testing.T) {
	d, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	// 1024 KB/s → 10 KB in 9.765625 ms ≈ 9766 µs; plus 10 ms latency.
	done := d.Access(read(0, 1, 10*units.KB))
	want := 10*units.Millisecond + 9766*units.Microsecond
	if done != want {
		t.Errorf("completion = %v, want %v", done, want)
	}
}

func TestDiskSameFileAndSequentialLatency(t *testing.T) {
	d, _ := New(testParams())
	first := d.Access(device.Request{Time: 0, Op: trace.Read, File: 1, Addr: 0, Size: units.KB})

	// Sequential continuation: 10% of the latency.
	seqStart := first
	seqDone := d.Access(device.Request{Time: seqStart, Op: trace.Read, File: 1, Addr: units.KB, Size: units.KB})
	seqService := seqDone - seqStart
	wantSeq := units.Time(float64(10*units.Millisecond)*sequentialLatencyFraction) + 977*units.Microsecond
	if math.Abs(float64(seqService-wantSeq)) > 2 {
		t.Errorf("sequential service = %v, want %v", seqService, wantSeq)
	}

	// Same file, random offset: 35%.
	rndDone := d.Access(device.Request{Time: seqDone, Op: trace.Read, File: 1, Addr: 100 * units.KB, Size: units.KB})
	rndService := rndDone - seqDone
	wantRnd := units.Time(float64(10*units.Millisecond)*sameFileLatencyFraction) + 977*units.Microsecond
	if math.Abs(float64(rndService-wantRnd)) > 2 {
		t.Errorf("same-file service = %v, want %v", rndService, wantRnd)
	}

	// Different file: full latency.
	otherDone := d.Access(device.Request{Time: rndDone, Op: trace.Read, File: 2, Addr: units.MB, Size: units.KB})
	otherService := otherDone - rndDone
	wantOther := 10*units.Millisecond + 977*units.Microsecond
	if math.Abs(float64(otherService-wantOther)) > 2 {
		t.Errorf("cross-file service = %v, want %v", otherService, wantOther)
	}
}

func TestDiskSpinDownAndUp(t *testing.T) {
	d, _ := New(testParams(), WithSpinDown(5*units.Second))
	done := d.Access(read(0, 1, units.KB))

	// Ten seconds later the disk has slept for 5 of them.
	wake := done + 10*units.Second
	if d.Spinning(wake - units.Second) {
		t.Error("disk still spinning 9s into idle with a 5s threshold")
	}
	done2 := d.Access(read(wake, 2, units.KB))
	service := done2 - wake
	if service < d.Params().SpinUpTime {
		t.Errorf("access to sleeping disk took %v, less than spin-up", service)
	}
	if d.SpinUps() != 1 {
		t.Errorf("spinUps = %d, want 1", d.SpinUps())
	}

	// Energy: idle exactly 5 s at 1 W, sleep 5 s at 0.1 W, spin-up 1 s at 4 W.
	m := d.Meter()
	if j := m.StateJ(energy.StateIdle); math.Abs(j-5.0) > 0.01 {
		t.Errorf("idle energy = %g J, want 5", j)
	}
	if j := m.StateJ(energy.StateSleep); math.Abs(j-0.5) > 0.01 {
		t.Errorf("sleep energy = %g J, want 0.5", j)
	}
	if j := m.StateJ(energy.StateSpinUp); math.Abs(j-4.0) > 0.01 {
		t.Errorf("spin-up energy = %g J, want 4", j)
	}
}

func TestDiskNeverSpinsDownWithoutPolicy(t *testing.T) {
	d, _ := New(testParams()) // no spin-down
	d.Access(read(0, 1, units.KB))
	d.Finish(units.Hour)
	if d.SpinUps() != 0 {
		t.Error("spun up without ever sleeping")
	}
	// All idle energy, no sleep.
	if d.Meter().StateJ(energy.StateSleep) != 0 {
		t.Error("slept without a spin-down policy")
	}
	if !d.Spinning(units.Hour) {
		t.Error("not spinning without a spin-down policy")
	}
}

func TestDiskFirmwareSpinDownWins(t *testing.T) {
	p := testParams()
	p.FirmwareSpinDown = 2 * units.Second
	d, _ := New(p, WithSpinDown(5*units.Second))
	d.Access(read(0, 1, units.KB))
	if d.Spinning(3 * units.Second) {
		t.Error("firmware threshold (2s) not applied")
	}
	// And the firmware threshold holds even with no host policy at all.
	d2, _ := New(p)
	d2.Access(read(0, 1, units.KB))
	if d2.Spinning(3 * units.Second) {
		t.Error("firmware threshold ignored without host policy")
	}
}

func TestDiskQueueing(t *testing.T) {
	d, _ := New(testParams())
	first := d.Access(read(0, 1, 100*units.KB))
	// A request arriving mid-service queues.
	second := d.Access(read(first/2, 2, units.KB))
	if second <= first {
		t.Error("second op did not queue behind the first")
	}
	resp := second - first/2
	service := 10*units.Millisecond + 977*units.Microsecond
	wait := first - first/2
	if math.Abs(float64(resp-(wait+service))) > 2 {
		t.Errorf("queued response = %v, want wait %v + service %v", resp, wait, service)
	}
}

func TestDiskBackgroundDoesNotBlockHost(t *testing.T) {
	d, _ := New(testParams(), WithSpinDown(5*units.Second))
	// Let the disk fall asleep, then issue a long background write.
	d.Idle(10 * units.Second)
	bgDone := d.Background(device.Request{Time: 10 * units.Second, Op: trace.Write, File: 9, Addr: 0, Size: 512 * units.KB})
	if bgDone <= 11*units.Second {
		t.Fatalf("background write finished unrealistically fast: %v", bgDone)
	}
	// A host read right after the background write started waits for the
	// platters (spin-up) but NOT for the queued background data.
	hostStart := 10*units.Second + 100*units.Millisecond
	hostDone := d.Access(read(hostStart, 1, units.KB))
	spinUpDone := 11 * units.Second
	maxExpected := spinUpDone + 11*units.Millisecond + units.Millisecond
	if hostDone > maxExpected {
		t.Errorf("host read done at %v, want ≤ %v (must not queue behind background)", hostDone, maxExpected)
	}
	if hostDone < spinUpDone {
		t.Errorf("host read done at %v, before platters ready at %v", hostDone, spinUpDone)
	}
	if d.SpinUps() != 1 {
		t.Errorf("spinUps = %d, want 1 (shared between bg and host)", d.SpinUps())
	}
}

func TestDiskEnergyNoDoubleCountWithBackground(t *testing.T) {
	d, _ := New(testParams())
	// Interleave background and host work, then verify total energy is
	// bounded by (duration × max power) — a double-count would exceed it.
	var clock units.Time
	for i := 0; i < 50; i++ {
		clock += 50 * units.Millisecond
		d.Background(device.Request{Time: clock, Op: trace.Write, File: 1, Addr: 0, Size: 8 * units.KB})
		clock += 50 * units.Millisecond
		d.Access(read(clock, 2, 8*units.KB))
	}
	d.Finish(clock + units.Second)
	dur := (clock + units.Second).Seconds()
	if total := d.Meter().TotalJ(); total > dur*2*1.05 {
		t.Errorf("energy %g J exceeds %g s at max 2 W — double counting", total, dur)
	}
}

func TestDiskDeleteIsFree(t *testing.T) {
	d, _ := New(testParams())
	done := d.Access(device.Request{Time: 5, Op: trace.Delete, File: 1, Size: units.MB})
	if done != 5 {
		t.Errorf("delete completion = %v, want 5", done)
	}
}

func TestDiskValidatesParams(t *testing.T) {
	p := testParams()
	p.TransferKBs = 0
	if _, err := New(p); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestDiskName(t *testing.T) {
	d, _ := New(testParams())
	if d.Name() != "test-datasheet" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestSpinPolicyNames(t *testing.T) {
	if (FixedThreshold{}).Name() != "always-on" {
		t.Error("zero threshold name")
	}
	if (FixedThreshold{Threshold: 5 * units.Second}).Name() != "fixed-5s" {
		t.Errorf("fixed name = %q", (FixedThreshold{Threshold: 5 * units.Second}).Name())
	}
	if (Immediate{}).Name() != "immediate" || NewAdaptive().Name() != "adaptive" {
		t.Error("policy names wrong")
	}
}

func TestImmediatePolicy(t *testing.T) {
	d, _ := New(testParams(), WithPolicy(Immediate{}))
	d.Access(read(0, 1, units.KB))
	// Any idle instant later the disk is asleep.
	if d.Spinning(d.Params().AccessLatency + 10*units.Second) {
		t.Error("immediate policy left the disk spinning")
	}
}

func TestAdaptivePolicyLearns(t *testing.T) {
	p := NewAdaptive()
	start := p.NextSpinDown()
	// Premature wake-ups (slept less than break-even) back the policy off.
	p.OnSpinUp(100 * units.Millisecond)
	if p.NextSpinDown() <= start {
		t.Error("threshold did not grow after a premature wake")
	}
	// Long, profitable sleeps pull the threshold back down toward Min.
	for i := 0; i < 40; i++ {
		p.OnSpinUp(units.Minute)
	}
	if got := p.NextSpinDown(); got != p.Min {
		t.Errorf("threshold %v did not decay to Min %v", got, p.Min)
	}
	// Bounded above.
	for i := 0; i < 40; i++ {
		p.OnSpinUp(0)
	}
	if got := p.NextSpinDown(); got != p.Max {
		t.Errorf("threshold %v did not cap at Max %v", got, p.Max)
	}
}

func TestAdaptiveOnDiskEndToEnd(t *testing.T) {
	// Bursts separated by short idle gaps: the adaptive policy should end
	// up spinning down less often than a 1s fixed threshold.
	run := func(opt Option) (spinUps int64, energy float64) {
		d, _ := New(testParams(), opt)
		var clock units.Time
		for i := 0; i < 200; i++ {
			clock += 3 * units.Second // gaps just above the 1s threshold
			clock = d.Access(read(clock, uint32(i%4), units.KB))
		}
		d.Finish(clock + units.Second)
		return d.SpinUps(), d.Meter().TotalJ()
	}
	fixedUps, _ := run(WithSpinDown(units.Second))
	adaptUps, _ := run(WithPolicy(NewAdaptive()))
	if adaptUps >= fixedUps {
		t.Errorf("adaptive spin-ups %d not below aggressive fixed %d", adaptUps, fixedUps)
	}
}
