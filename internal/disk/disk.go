// Package disk models a magnetic hard disk with power management: a
// spinning/sleeping state machine driven by a spin-down policy, spin-up
// delays and energy on wake, and the paper's seek-avoidance assumption for
// repeated accesses to the same file (§4.2).
package disk

import (
	"fmt"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// sameFileLatencyFraction is the share of the full random-access latency
// charged when the previous operation touched the same file: the seek is
// avoided but controller overhead and rotational latency remain (§4.2:
// "Repeated accesses to the same file are assumed never to require a seek
// ... Each transfer requires the average rotational latency as well").
const sameFileLatencyFraction = 0.35

// sequentialLatencyFraction is charged when an access continues exactly
// where the previous one ended in the same file: track-buffer read-ahead
// and contiguous layout leave only controller overhead.
const sequentialLatencyFraction = 0.10

// state is the disk power state.
type state uint8

const (
	spinning state = iota
	sleeping
)

// Disk is a magnetic hard disk device model.
type Disk struct {
	p        device.DiskParams
	policy   SpinPolicy
	spinDown units.Time // current effective spin-down threshold; 0 = never
	meter    *energy.Meter

	sleepStart units.Time // when the current sleep began

	st          state
	lastUpdate  units.Time // energy integrated up to this instant
	idleSince   units.Time // start of the current idle period (while spinning)
	busyUntil   units.Time // completion time of the last host operation
	bgBusyUntil units.Time // completion time of the last background write
	spinUpUntil units.Time // platters reach speed at this instant

	lastFile    uint32
	hasLastFile bool
	lastEnd     units.Bytes // device address one past the last access

	spinUps   int64
	spinDowns int64
	ops       int64

	// xferMemo caches transfer times at the fixed media bandwidth;
	// results are bit-identical to calling units.TransferTime directly.
	xferMemo units.TransferMemo

	// Observability (nil-safe no-ops without a scope).
	sc         *obs.Scope
	evName     string // cached Name() for event emission
	cSpinUps   *obs.Counter
	cSpinDowns *obs.Counter
	cOps       *obs.Counter
	hSleepMs   *obs.Histogram

	// inj injects transient I/O errors; nil disables fault handling at the
	// cost of one nil check per access.
	inj *fault.Injector
}

// Option configures a Disk.
type Option func(*Disk)

// WithSpinDown sets a fixed host spin-down timeout. Zero keeps the disk
// spinning forever. The paper's simulations use 5 s "except where noted".
// If the drive has a firmware timeout (Kittyhawk), the effective threshold
// is the smaller of the two.
func WithSpinDown(threshold units.Time) Option {
	return WithPolicy(FixedThreshold{Threshold: threshold})
}

// WithPolicy installs a spin-down policy (fixed, immediate, adaptive). The
// drive's firmware timeout, if any, still caps the effective threshold.
func WithPolicy(p SpinPolicy) Option {
	return func(d *Disk) {
		d.policy = p
		d.refreshThreshold()
	}
}

// WithScope attaches an observability scope: spin-up/spin-down counters and
// events, and a histogram of sleep durations. A nil scope is free.
func WithScope(sc *obs.Scope) Option {
	return func(d *Disk) {
		d.sc = sc
		d.evName = d.Name()
		d.cSpinUps = sc.Counter("disk.spin_ups")
		d.cSpinDowns = sc.Counter("disk.spin_downs")
		d.cOps = sc.Counter("disk.ops")
		d.hSleepMs = sc.Histogram("disk.sleep_ms", obs.LogBuckets(1e-3, 1e7))
	}
}

// WithFaults attaches a fault injector: transient read/write errors are
// retried with exponential backoff, charging full service energy for every
// physical attempt and idle energy for the backoff. A nil injector is free.
func WithFaults(in *fault.Injector) Option {
	return func(d *Disk) { d.inj = in }
}

// refreshThreshold re-evaluates the policy and applies the firmware cap.
func (d *Disk) refreshThreshold() {
	d.spinDown = d.policy.NextSpinDown()
	if fw := d.p.FirmwareSpinDown; fw > 0 && (d.spinDown == 0 || fw < d.spinDown) {
		d.spinDown = fw
	}
}

// New builds a disk. The disk starts spinning at time zero.
func New(p device.DiskParams, opts ...Option) (*Disk, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &Disk{
		p:        p,
		policy:   FixedThreshold{},
		meter:    energy.NewMeter(),
		st:       spinning,
		xferMemo: units.NewTransferMemo(p.TransferKBs),
	}
	d.refreshThreshold()
	for _, o := range opts {
		o(d)
	}
	if d.evName == "" {
		d.evName = d.Name()
	}
	return d, nil
}

// Policy returns the installed spin-down policy.
func (d *Disk) Policy() SpinPolicy { return d.policy }

// Name implements device.Device.
func (d *Disk) Name() string { return fmt.Sprintf("%s-%s", d.p.Name, d.p.Source) }

// Meter implements device.Device.
func (d *Disk) Meter() *energy.Meter { return d.meter }

// Params returns the device parameters.
func (d *Disk) Params() device.DiskParams { return d.p }

// SpinUps returns the number of spin-ups performed.
func (d *Disk) SpinUps() int64 { return d.spinUps }

// SpinDowns returns the number of spin-downs performed.
func (d *Disk) SpinDowns() int64 { return d.spinDowns }

// Spinning reports whether the platters are spinning at the given instant,
// assuming no intervening operations. Used by the SRAM write buffer for
// opportunistic flushing.
func (d *Disk) Spinning(now units.Time) bool {
	if now < d.busyUntil || now < d.bgBusyUntil {
		return true
	}
	if d.st == sleeping {
		return false
	}
	return d.spinDown == 0 || now < d.idleSince+d.spinDown
}

// Background performs a write off the host's critical path (SRAM buffer
// drains): it spins the disk up if needed and charges the same time and
// energy as Access, but does not delay subsequent host operations — real
// drives service host requests ahead of background writeback. Returns the
// completion time of the background write.
func (d *Disk) Background(req device.Request) units.Time {
	start := units.Max(req.Time, d.bgBusyUntil)
	d.advance(start)
	if d.st == sleeping {
		d.wake(start)
		start += d.p.SpinUpTime
		d.spinUpUntil = start
	} else if start < d.spinUpUntil {
		start = d.spinUpUntil
	}
	service := d.serviceTime(req)
	d.meter.AccrueSlot(energy.SlotActive, d.p.ActiveW, service)
	if d.inj != nil {
		service += d.retry(req, service, start)
	}
	completion := start + service
	if completion > d.lastUpdate {
		d.lastUpdate = completion
	}
	if completion > d.idleSince {
		d.idleSince = completion
	}
	d.bgBusyUntil = completion
	d.lastFile = req.File
	d.hasLastFile = true
	return completion
}

// Idle implements device.Device: integrates idle/sleep energy and applies
// the spin-down policy up to now.
func (d *Disk) Idle(now units.Time) { d.advance(now) }

// Finish implements device.Device.
func (d *Disk) Finish(now units.Time) { d.advance(now) }

// Access implements device.Device.
func (d *Disk) Access(req device.Request) units.Time {
	if req.Op == trace.Delete {
		// File deletion is a metadata operation handled above the device.
		d.hasLastFile = false
		return req.Time
	}
	start := units.Max(req.Time, d.busyUntil)
	d.advance(start)

	// Wake the disk if it is asleep; if a background drain already started
	// the spin-up, wait only for the platters to reach speed.
	if d.st == sleeping {
		d.wake(start)
		start += d.p.SpinUpTime
		d.spinUpUntil = start
	} else if start < d.spinUpUntil {
		start = d.spinUpUntil
	}

	service := d.serviceTime(req)
	d.meter.AccrueSlot(energy.SlotActive, d.p.ActiveW, service)
	if d.inj != nil {
		service += d.retry(req, service, start)
	}
	completion := start + service

	// A concurrent background write may already have advanced the energy
	// clock past this completion; never move it backwards.
	if completion > d.lastUpdate {
		d.lastUpdate = completion
	}
	if completion > d.idleSince {
		d.idleSince = completion
	}
	d.busyUntil = completion
	d.lastFile = req.File
	d.hasLastFile = true
	d.ops++
	d.cOps.Inc()
	return completion
}

// ReadExtent services a coalesced run of read requests back to back,
// equivalent by construction to Idle(reqs[k].Time) followed by
// Access(reqs[k]) for each k in order. Within a run the records are
// same-file and byte-contiguous, so after the first request the sequential
// latency fraction applies — the extent costs one seek plus N transfers
// without any change to the per-request arithmetic. completions[k] receives
// request k's completion time.
func (d *Disk) ReadExtent(reqs []device.Request, completions []units.Time) {
	for k := range reqs {
		d.advance(reqs[k].Time)
		completions[k] = d.Access(reqs[k])
	}
}

// WriteExtent is ReadExtent's write-path counterpart.
func (d *Disk) WriteExtent(reqs []device.Request, completions []units.Time) {
	for k := range reqs {
		d.advance(reqs[k].Time)
		completions[k] = d.Access(reqs[k])
	}
}

// retry applies the injector's transient-fault schedule to one operation:
// the extra service time of the retried attempts (each charged at full
// active power — the platters keep turning, heads re-seek) plus the backoff
// waits between them (charged at idle power). Returns the added time.
func (d *Disk) retry(req device.Request, service, start units.Time) units.Time {
	att, backoff := d.inj.Attempts(fault.FromTraceOp(req.Op), d.evName, start)
	if att <= 1 {
		return 0
	}
	extra := service * units.Time(att-1)
	d.meter.AccrueSlot(energy.SlotActive, d.p.ActiveW, extra)
	d.meter.AccrueSlot(energy.SlotIdle, d.p.IdleW, backoff)
	return extra + backoff
}

// Crash implements device.Crasher: a power failure halts the spindle and
// clears queued work. The platters are non-volatile, so no data is lost;
// the spin-up on the next access is the crash's lasting cost.
func (d *Disk) Crash(at units.Time) {
	d.advance(at)
	if d.st == spinning {
		d.st = sleeping
		d.sleepStart = at
	}
	// Pending completions were already returned to callers; the restarted
	// device no longer owes them work.
	if d.busyUntil > at {
		d.busyUntil = at
	}
	if d.bgBusyUntil > at {
		d.bgBusyUntil = at
	}
	if d.spinUpUntil > at {
		d.spinUpUntil = at
	}
	d.hasLastFile = false
}

// Recover implements device.Crasher: the disk needs no repair pass and
// spins up lazily on the next access.
func (d *Disk) Recover(at units.Time) units.Time { return at }

// wake spins the disk up at the given instant, charging spin-up energy and
// feeding the observed sleep duration back to the policy.
func (d *Disk) wake(at units.Time) {
	d.meter.AccrueSlot(energy.SlotSpinUp, d.p.SpinUpW, d.p.SpinUpTime)
	d.st = spinning
	d.spinUps++
	slept := at - d.sleepStart
	if slept < 0 {
		slept = 0
	}
	d.cSpinUps.Inc()
	d.hSleepMs.Observe(slept.Milliseconds())
	if d.sc.Tracing() {
		d.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvDiskSpinUp, Dev: d.evName, Dur: int64(slept)})
	}
	d.policy.OnSpinUp(slept)
	d.refreshThreshold()
}

// serviceTime returns seek/rotation/controller overhead plus transfer time.
func (d *Disk) serviceTime(req device.Request) units.Time {
	latency := d.p.AccessLatency
	if d.hasLastFile && req.File == d.lastFile {
		if req.Addr == d.lastEnd {
			latency = units.Time(float64(latency) * sequentialLatencyFraction)
		} else {
			latency = units.Time(float64(latency) * sameFileLatencyFraction)
		}
	}
	d.lastEnd = req.Addr + req.Size
	return latency + d.xferMemo.Time(req.Size)
}

// advance integrates energy from lastUpdate to now, spinning down when the
// idle period crosses the threshold.
func (d *Disk) advance(now units.Time) {
	if now <= d.lastUpdate {
		return
	}
	switch d.st {
	case spinning:
		if d.spinDown > 0 {
			downAt := d.idleSince + d.spinDown
			if now > downAt {
				if downAt > d.lastUpdate {
					d.meter.AccrueSlot(energy.SlotIdle, d.p.IdleW, downAt-d.lastUpdate)
				} else {
					downAt = d.lastUpdate
				}
				d.meter.AccrueSlot(energy.SlotSleep, d.p.SleepW, now-downAt)
				d.st = sleeping
				d.sleepStart = downAt
				d.spinDowns++
				d.cSpinDowns.Inc()
				if d.sc.Tracing() {
					d.sc.Emit(obs.Event{T: int64(downAt), Kind: obs.EvDiskSpinDown, Dev: d.evName, Dur: int64(d.spinDown)})
				}
				d.lastUpdate = now
				return
			}
		}
		d.meter.AccrueSlot(energy.SlotIdle, d.p.IdleW, now-d.lastUpdate)
	case sleeping:
		d.meter.AccrueSlot(energy.SlotSleep, d.p.SleepW, now-d.lastUpdate)
	}
	d.lastUpdate = now
}

var (
	_ device.Device  = (*Disk)(nil)
	_ device.Crasher = (*Disk)(nil)
)
