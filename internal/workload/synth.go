package workload

import (
	"fmt"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// SynthConfig parameterizes the synthetic workload of §4.1, which the paper
// specifies exactly: it is based loosely on the hot-and-cold workload used
// to evaluate Sprite LFS cleaning policies, and small enough (6 MB) to fit
// on the 10 MB flash devices so it can run on both the OmniBook testbed and
// the simulator (§5.1 validation).
type SynthConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Ops is the number of operations to generate.
	Ops int
	// DataMB is the dataset size in MB (paper: 6 MB of 32 KB files).
	DataMB int
}

// DefaultSynthOps is the trace length used when none is specified; long
// enough to cycle the 6 MB dataset several times so cleaning happens.
const DefaultSynthOps = 20000

// Paper constants for the synth workload.
const (
	synthFileSize  = 32 * units.KB
	synthBlockSize = 512 * units.B
)

// Synth generates the paper's synthetic workload:
//
//   - 6 MB of 32 KB files, with 7/8 of accesses going to 1/8 of the data;
//   - operations split 60% reads, 35% writes, 5% erases;
//   - an erase deletes an entire file, and the next write to that file
//     rewrites the whole 32 KB unit;
//   - otherwise 40% of accesses are 0.5 KB, 40% uniform in (0.5 KB, 16 KB],
//     and 20% uniform in (16 KB, 32 KB];
//   - inter-arrival times are bimodal: 90% uniform with mean 10 ms, the
//     rest 20 ms plus an exponential with mean 3 s.
func Synth(c SynthConfig) (*trace.Trace, error) {
	if c.Ops <= 0 {
		c.Ops = DefaultSynthOps
	}
	if c.DataMB <= 0 {
		c.DataMB = 6
	}
	numFiles := int(units.Bytes(c.DataMB) * units.MB / synthFileSize)
	if numFiles < 8 {
		return nil, fmt.Errorf("workload: synth dataset too small (%d MB)", c.DataMB)
	}
	hotFiles := numFiles / 8
	g := NewRNG(c.Seed)

	interArrival := Mixture{Components: []Component{
		{Weight: 0.90, Kind: UniformComponent, Mean: 0.010},
		{Weight: 0.10, Kind: ExpComponent, Mean: 3.0, Shift: 0.020},
	}}

	t := &trace.Trace{Name: "synth", BlockSize: synthBlockSize}
	erased := make(map[uint32]bool)
	now := units.Time(0)
	for i := 0; i < c.Ops; i++ {
		now += interArrival.Draw(g)

		// Hot-and-cold: 7/8 of accesses to the 1/8 hot files.
		var file uint32
		if g.Float64() < 7.0/8.0 {
			file = uint32(g.Intn(hotFiles))
		} else {
			file = uint32(hotFiles + g.Intn(numFiles-hotFiles))
		}

		u := g.Float64()
		switch {
		case u < 0.05: // erase
			if erased[file] {
				// Already erased: turn into the recreating write instead so
				// the op mix stays close to specification.
				t.Records = append(t.Records, fullWrite(now, file))
				delete(erased, file)
				continue
			}
			erased[file] = true
			t.Records = append(t.Records, trace.Record{
				Time: now, Op: trace.Delete, File: file, Size: synthFileSize,
			})
		case u < 0.05+0.35: // write
			if erased[file] {
				// First write after an erase rewrites the whole 32 KB unit.
				t.Records = append(t.Records, fullWrite(now, file))
				delete(erased, file)
				continue
			}
			off, size := synthExtent(g)
			t.Records = append(t.Records, trace.Record{
				Time: now, Op: trace.Write, File: file, Offset: off, Size: size,
			})
		default: // read
			if erased[file] {
				// Cannot read erased data; recreate it (keeps trace legal).
				t.Records = append(t.Records, fullWrite(now, file))
				delete(erased, file)
				continue
			}
			off, size := synthExtent(g)
			t.Records = append(t.Records, trace.Record{
				Time: now, Op: trace.Read, File: file, Offset: off, Size: size,
			})
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload: synth generated invalid trace: %w", err)
	}
	return t, nil
}

func fullWrite(now units.Time, file uint32) trace.Record {
	return trace.Record{Time: now, Op: trace.Write, File: file, Offset: 0, Size: synthFileSize}
}

// synthExtent draws the access size per §4.1 (40% half-KB, 40% in
// (0.5 KB, 16 KB], 20% in (16 KB, 32 KB]) and a block-aligned offset such
// that the access fits in the 32 KB file.
func synthExtent(g *RNG) (off, size units.Bytes) {
	u := g.Float64()
	switch {
	case u < 0.40:
		size = 512 * units.B
	case u < 0.80:
		size = units.Bytes(g.Uniform(float64(512*units.B)+1, float64(16*units.KB)))
	default:
		size = units.Bytes(g.Uniform(float64(16*units.KB)+1, float64(32*units.KB)))
	}
	// Round to whole blocks so transfers align with the file system.
	size = units.CeilDiv(size, synthBlockSize) * synthBlockSize
	if size > synthFileSize {
		size = synthFileSize
	}
	maxOff := (synthFileSize - size) / synthBlockSize
	if maxOff > 0 {
		off = units.Bytes(g.Intn(int(maxOff)+1)) * synthBlockSize
	}
	return off, size
}

// TPCAConfig parameterizes the transaction-processing workload used for
// the eNVy comparison (§6): eNVy evaluated flash storage under TPC-A, a
// stream of small random account updates.
type TPCAConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Ops is the number of transactions.
	Ops int
	// DataMB is the account-table size (uniformly accessed).
	DataMB int
	// TPS is the offered transaction rate per second.
	TPS float64
}

// TPCA generates a TPC-A-like workload: each transaction reads one block
// and writes it back, at uniformly random locations over the whole dataset
// — the worst case for log-structured cleaning (no hot/cold skew at all).
func TPCA(c TPCAConfig) (*trace.Trace, error) {
	if c.Ops <= 0 {
		c.Ops = 20000
	}
	if c.DataMB <= 0 {
		c.DataMB = 16
	}
	if c.TPS <= 0 {
		c.TPS = 50
	}
	const blockSize = 512 * units.B
	numFiles := int(units.Bytes(c.DataMB) * units.MB / synthFileSize)
	if numFiles < 1 {
		return nil, fmt.Errorf("workload: tpca dataset too small (%d MB)", c.DataMB)
	}
	g := NewRNG(c.Seed)
	t := &trace.Trace{Name: "tpca", BlockSize: blockSize}
	gap := 1.0 / c.TPS
	now := units.Time(0)
	blocksPerFile := int(synthFileSize / blockSize)
	for i := 0; i < c.Ops; i++ {
		now += units.FromSeconds(g.Exp(gap))
		file := uint32(g.Intn(numFiles))
		off := units.Bytes(g.Intn(blocksPerFile)) * blockSize
		t.Records = append(t.Records,
			trace.Record{Time: now, Op: trace.Read, File: file, Offset: off, Size: blockSize},
			trace.Record{Time: now + units.Millisecond, Op: trace.Write, File: file, Offset: off, Size: blockSize},
		)
		now += units.Millisecond
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload: tpca generated invalid trace: %w", err)
	}
	return t, nil
}
