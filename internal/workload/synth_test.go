package workload

import (
	"math"
	"reflect"
	"testing"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

func TestSynthSpec(t *testing.T) {
	tr, err := Synth(SynthConfig{Seed: 1, Ops: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.BlockSize != 512 {
		t.Errorf("block size %v, want 512B", tr.BlockSize)
	}

	var reads, writes, deletes int
	var small, mid, large int
	hotAccesses := 0
	const numFiles = 192 // 6 MB of 32 KB files
	const hotFiles = numFiles / 8
	fullAfterErase := true
	erased := map[uint32]bool{}

	for _, r := range tr.Records {
		if int(r.File) >= numFiles {
			t.Fatalf("file %d outside the 6 MB dataset", r.File)
		}
		if int(r.File) < hotFiles {
			hotAccesses++
		}
		switch r.Op {
		case trace.Delete:
			deletes++
			erased[r.File] = true
		case trace.Write:
			writes++
			if erased[r.File] {
				// §4.1: the next write to an erased file writes the whole
				// 32 KB unit.
				if r.Offset != 0 || r.Size != 32*units.KB {
					fullAfterErase = false
				}
				delete(erased, r.File)
			}
			fallthrough
		case trace.Read:
			if r.Op == trace.Read {
				reads++
			}
			if r.End() > 32*units.KB {
				t.Fatalf("access beyond the 32 KB file: %+v", r)
			}
			switch {
			case r.Size == 512:
				small++
			case r.Size <= 16*units.KB:
				mid++
			default:
				large++
			}
		}
	}
	total := float64(reads + writes + deletes)

	// Op mix: 60% reads, 35% writes, 5% erases. Erase slots that hit
	// already-erased or erased-file accesses become recreating writes, so
	// allow a few percent of drift.
	if f := float64(reads) / total; math.Abs(f-0.60) > 0.04 {
		t.Errorf("read fraction %.3f, want ≈0.60", f)
	}
	if f := float64(writes) / total; math.Abs(f-0.35) > 0.05 {
		t.Errorf("write fraction %.3f, want ≈0.35", f)
	}
	if f := float64(deletes) / total; math.Abs(f-0.05) > 0.02 {
		t.Errorf("delete fraction %.3f, want ≈0.05", f)
	}

	// Hot-and-cold: 7/8 of accesses to 1/8 of the data.
	if f := float64(hotAccesses) / total; math.Abs(f-0.875) > 0.02 {
		t.Errorf("hot access fraction %.3f, want ≈0.875", f)
	}

	// Size mix: 40% half-KB, 40% (0.5 KB, 16 KB], 20% (16 KB, 32 KB] —
	// full-file rewrites after erases inflate the large bucket slightly.
	sized := float64(small + mid + large)
	if f := float64(small) / sized; math.Abs(f-0.40) > 0.05 {
		t.Errorf("small fraction %.3f, want ≈0.40", f)
	}
	if f := float64(mid) / sized; math.Abs(f-0.40) > 0.05 {
		t.Errorf("mid fraction %.3f, want ≈0.40", f)
	}
	if f := float64(large) / sized; math.Abs(f-0.20) > 0.08 {
		t.Errorf("large fraction %.3f, want ≈0.20", f)
	}

	if !fullAfterErase {
		t.Error("write after erase did not rewrite the whole 32 KB unit")
	}

	// Inter-arrival: bimodal, 90% uniform mean 10 ms + 10% of 20 ms + exp(3 s)
	// gives an overall mean of 0.9×0.010 + 0.1×3.020 ≈ 0.311 s.
	c := trace.Characterize(tr, 0)
	if got := c.InterArrival.Mean(); math.Abs(got-0.311)/0.311 > 0.10 {
		t.Errorf("inter-arrival mean %.3f, want ≈0.311", got)
	}
}

func TestSynthDeterminism(t *testing.T) {
	a, _ := Synth(SynthConfig{Seed: 5, Ops: 1000})
	b, _ := Synth(SynthConfig{Seed: 5, Ops: 1000})
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Error("synth not deterministic")
	}
}

func TestSynthDefaults(t *testing.T) {
	tr, err := Synth(SynthConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != DefaultSynthOps {
		t.Errorf("default ops = %d, want %d", len(tr.Records), DefaultSynthOps)
	}
	// Footprint fits the 10 MB flash devices (the whole point of synth).
	sizes := tr.MaxFileSizes()
	var total units.Bytes
	for _, s := range sizes {
		total += s
	}
	if total > 6*units.MB {
		t.Errorf("synth dataset %v exceeds 6 MB", total)
	}
}

func TestSynthTooSmall(t *testing.T) {
	if _, err := Synth(SynthConfig{Seed: 1, DataMB: 0}); err != nil {
		t.Errorf("default DataMB failed: %v", err)
	}
	cfg := SynthConfig{Seed: 1, Ops: 10}
	cfg.DataMB = -1
	if _, err := Synth(cfg); err != nil {
		t.Errorf("negative DataMB should default, got %v", err)
	}
}
