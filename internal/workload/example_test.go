package workload_test

import (
	"fmt"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/workload"
)

// Example generates the paper's synthetic stress-test workload and counts
// its operation mix (§4.1: 60% reads, 35% writes, 5% erases).
func Example() {
	t, err := workload.Synth(workload.SynthConfig{Seed: 1, Ops: 10000})
	if err != nil {
		fmt.Println(err)
		return
	}
	var reads, writes, deletes int
	for _, r := range t.Records {
		switch r.Op {
		case trace.Read:
			reads++
		case trace.Write:
			writes++
		case trace.Delete:
			deletes++
		}
	}
	fmt.Printf("reads %d%%, writes %d%%, erases %d%%\n",
		reads*100/len(t.Records), writes*100/len(t.Records), deletes*100/len(t.Records))
	// Output:
	// reads 56%, writes 38%, erases 5%
}

// ExampleGenerate builds a custom workload from scratch rather than using
// a preset: a small, write-heavy configuration with bursty arrivals.
func ExampleGenerate() {
	cfg := workload.Config{
		Name:            "custom",
		Seed:            7,
		BlockSize:       512,
		Duration:        60_000_000, // one minute, in µs
		NumFiles:        20,
		MeanFileSize:    8 * 1024,
		FileSizeCV:      0.5,
		ReadFraction:    0.25,
		MeanReadBlocks:  2,
		MeanWriteBlocks: 4,
		HotFileFraction: 0.2, HotAccessFraction: 0.8,
		InterArrival: workload.Mixture{Components: []workload.Component{
			{Weight: 1, Kind: workload.ExpComponent, Mean: 0.05},
		}},
	}
	t, err := workload.Generate(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("valid:", t.Validate() == nil, "sorted:", t.Sorted())
	// Output:
	// valid: true sorted: true
}
