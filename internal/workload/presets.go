package workload

import (
	"fmt"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// The presets below are calibrated against Table 3 of the paper. The
// inter-arrival mixtures were fit analytically to the published mean/max/σ:
// a dominant short "burst" arm plus one or two long "pause" arms whose
// weight and scale reproduce the heavy tails (see EXPERIMENTS.md for the
// generated-vs-published comparison).

// Mac returns the configuration for the mac workload: PowerBook Duo 230
// file-level traces (Finder, Excel, FrameMaker, email, editing, Newton
// Toolkit). 3.5 hours, 22,000 distinct KB, 50% reads, 1 KB blocks,
// 1.3/1.2-block mean transfers, 0.078 s mean inter-arrival (max 90.8,
// σ 0.57). No deletions.
func Mac(seed int64) Config {
	return Config{
		Name:            "mac",
		Seed:            seed,
		BlockSize:       1 * units.KB,
		Duration:        units.Time(3.5 * float64(units.Hour)),
		NumFiles:        900,
		MeanFileSize:    24 * units.KB,
		FileSizeCV:      1.2,
		ReadFraction:    0.50,
		DeleteFraction:  0,
		MeanReadBlocks:  1.3,
		MeanWriteBlocks: 1.2,
		// Interactive editing: most accesses hammer the documents in use,
		// and the hot set fits the 2 MB buffer cache (the paper's read
		// response times imply a ~90% hit rate on this trace).
		HotFileFraction:      0.06,
		HotAccessFraction:    0.93,
		SequentialFraction:   0.09,
		ReadRecentFraction:   0.35,
		WriteBurstStickiness: 0.85,
		InterArrival: Mixture{Components: []Component{
			{Weight: 0.9796, Kind: ExpComponent, Mean: 0.04},
			{Weight: 0.0200, Kind: ExpComponent, Mean: 1.2},
			{Weight: 0.0004, Kind: ExpComponent, Mean: 18, Cap: 90.8},
		}},
	}
}

// Dos returns the configuration for the dos workload: Kester Li's UC
// Berkeley traces of IBM desktop PCs running Windows 3.1 (PowerPoint,
// Word). 1.5 hours, 16,300 distinct KB, 24% reads, 0.5 KB blocks,
// 3.8/3.4-block mean transfers, 0.528 s mean inter-arrival (max 713,
// σ 10.8). Includes deletions.
func Dos(seed int64) Config {
	return Config{
		Name:            "dos",
		Seed:            seed,
		BlockSize:       512 * units.B,
		Duration:        units.Time(1.5 * float64(units.Hour)),
		NumFiles:        1400,
		MeanFileSize:    12 * units.KB,
		FileSizeCV:      1.0,
		ReadFraction:    0.28,
		DeleteFraction:  0.02,
		MeanReadBlocks:  3.8,
		MeanWriteBlocks: 3.4,
		// Office applications stream whole documents: high sequential
		// fraction gives the near-unique footprint Table 3 implies
		// (≈17 MB touched, 16.3 MB distinct).
		HotFileFraction:      0.10,
		HotAccessFraction:    0.35,
		SequentialFraction:   0.70,
		ReadRecentFraction:   0.75,
		WriteBurstStickiness: 0.55,
		// Autosave behavior: activity resuming after a long idle gap starts
		// with writes, so the disk's spin-ups are mostly absorbed by the
		// SRAM write buffer rather than paid by reads.
		SyncBurstGap: 5 * units.Second,
		SyncBurstOps: 10,
		// Roughly six long breaks (5–12 min) carry 55% of the 1.5 h span,
		// yielding the paper's 713 s maximum and σ ≈ 11 without making the
		// record count lurch with the seed; the disk sleeps through them.
		PauseEvery: 15 * units.Minute,
		PauseMinS:  300,
		PauseMaxS:  713,
		InterArrival: Mixture{Components: []Component{
			{Weight: 0.90, Kind: ExpComponent, Mean: 0.09},
			{Weight: 0.10, Kind: ExpComponent, Mean: 1.5},
		}},
	}
}

// HP returns the configuration for the hp workload: Ruemmler & Wilkes
// disk-level traces of an HP-UX workstation. 4.4 days, 32,000 distinct KB,
// 38% reads, 1 KB blocks, 4.3/6.2-block mean transfers, 11.1 s mean
// inter-arrival (max 30 min, σ 112.3). No deletions; traces are below the
// buffer cache, so simulations use a zero-sized DRAM cache.
func HP(seed int64) Config {
	return Config{
		Name:            "hp",
		Seed:            seed,
		BlockSize:       1 * units.KB,
		Duration:        units.FromSeconds(4.4 * 24 * 3600),
		NumFiles:        1600,
		MeanFileSize:    20 * units.KB,
		FileSizeCV:      1.2,
		ReadFraction:    0.50,
		DeleteFraction:  0,
		MeanReadBlocks:  4.3,
		MeanWriteBlocks: 6.2,
		// Below-cache traffic has little re-reference locality (the cache
		// absorbed it), so random accesses spread widely.
		HotFileFraction:      0.25,
		HotAccessFraction:    0.45,
		SequentialFraction:   0.35,
		ReadRecentFraction:   0.10,
		WriteBurstStickiness: 0.75,
		// The HP-UX update daemon: activity after an idle period starts
		// with a run of sync writes (Ruemmler & Wilkes observed most idle
		// gaps broken by periodic metadata flushes). ReadFraction is set
		// above the Table 3 value of 0.38 so the trace-wide read share
		// still lands at ≈0.38 after these forced write runs.
		SyncBurstGap: 5 * units.Second,
		SyncBurstOps: 4,
		InterArrival: Mixture{Components: []Component{
			{Weight: 0.902, Kind: ExpComponent, Mean: 0.30},
			{Weight: 0.089, Kind: ExpComponent, Mean: 9},
			// Long idle periods: uniform on [10 min, 30 min]; these ~1% of
			// gaps cover ~80% of the 4.4-day span, giving the paper's
			// 30-minute maximum and σ ≈ 112.
			{Weight: 0.009, Kind: UniformComponent, Mean: 600, Shift: 600},
		}},
	}
}

// ByName returns the preset configuration for "mac", "dos", or "hp".
func ByName(name string, seed int64) (Config, error) {
	switch name {
	case "mac":
		return Mac(seed), nil
	case "dos":
		return Dos(seed), nil
	case "hp":
		return HP(seed), nil
	default:
		return Config{}, fmt.Errorf("workload: unknown preset %q (want mac, dos, hp, or synth)", name)
	}
}

// GenerateByName builds the named workload, including "synth".
func GenerateByName(name string, seed int64) (*trace.Trace, error) {
	if name == "synth" {
		return Synth(SynthConfig{Seed: seed, Ops: DefaultSynthOps})
	}
	cfg, err := ByName(name, seed)
	if err != nil {
		return nil, err
	}
	return Generate(cfg)
}

// Names lists the available workload presets.
func Names() []string { return []string{"mac", "dos", "hp", "synth"} }
