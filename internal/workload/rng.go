// Package workload synthesizes the four trace workloads the paper studies
// (§4.1): mac, dos, hp, and synth.
//
// The original traces are not publicly available, so mac, dos, and hp are
// generated synthetically, calibrated to reproduce the aggregate statistics
// the paper publishes in Table 3 (duration, distinct Kbytes accessed,
// fraction of reads, block size, mean transfer sizes, and the mean/max/σ of
// the inter-arrival distribution) plus the qualitative properties the
// results depend on: burstiness, hot/cold locality, and (for dos) file
// deletions. The synth workload is specified fully in the paper and is
// implemented exactly as described.
package workload

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the draw primitives the generators need.
// All generators are seeded explicitly so traces are reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential draw with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Geometric returns a draw from {1, 2, ...} with the given mean (≥1):
// P(k) = p(1−p)^(k−1) with p = 1/mean. Used for transfer sizes in blocks,
// matching the small means in Table 3.
func (g *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	// Inverse transform on the geometric CDF.
	u := g.r.Float64()
	k := 1 + int(math.Floor(math.Log(1-u)/math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// LogNormalish returns a positive draw with the given mean and a coefficient
// of variation cv, using a lognormal distribution. Used for file sizes.
func (g *RNG) LogNormalish(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*g.r.NormFloat64())
}
