package workload

import (
	"fmt"
	"math"
	"strings"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// Targets are the published Table 3 statistics a generated trace should
// approximate. Zero-valued fields are not checked.
type Targets struct {
	DistinctKB      float64
	FractionReads   float64
	BlockSize       units.Bytes
	MeanReadBlocks  float64
	MeanWriteBlocks float64
	IAMeanS         float64
	IAMaxS          float64
	IASigmaS        float64
}

// PaperTargets returns the Table 3 statistics for a preset name.
func PaperTargets(name string) (Targets, error) {
	switch name {
	case "mac":
		return Targets{22000, 0.50, 1 * units.KB, 1.3, 1.2, 0.078, 90.8, 0.57}, nil
	case "dos":
		return Targets{16300, 0.24, 512 * units.B, 3.8, 3.4, 0.528, 713, 10.8}, nil
	case "hp":
		return Targets{32000, 0.38, 1 * units.KB, 4.3, 6.2, 11.1, 1800, 112.3}, nil
	default:
		return Targets{}, fmt.Errorf("workload: no published targets for %q", name)
	}
}

// Deviation is one fidelity-check line: a statistic, its target, the
// generated value, and the relative error.
type Deviation struct {
	Metric   string
	Target   float64
	Got      float64
	RelError float64 // |got−target| / target
}

// Fidelity compares a generated trace against targets and returns the
// per-metric deviations (post-warm-start, like Table 3). Use it when
// re-fitting a preset: `tracegen -workload dos -check` prints it.
func Fidelity(t *trace.Trace, tgt Targets) []Deviation {
	c := trace.Characterize(t, 0.1)
	var out []Deviation
	add := func(metric string, target, got float64) {
		if target == 0 {
			return
		}
		out = append(out, Deviation{
			Metric:   metric,
			Target:   target,
			Got:      got,
			RelError: math.Abs(got-target) / math.Abs(target),
		})
	}
	add("distinct KB", tgt.DistinctKB, c.DistinctKBytes)
	add("fraction reads", tgt.FractionReads, c.FractionReads)
	add("block size B", float64(tgt.BlockSize), float64(c.BlockSize))
	add("mean read blocks", tgt.MeanReadBlocks, c.MeanReadBlocks)
	add("mean write blocks", tgt.MeanWriteBlocks, c.MeanWriteBlocks)
	add("IA mean s", tgt.IAMeanS, c.InterArrival.Mean())
	add("IA max s", tgt.IAMaxS, c.InterArrival.Max())
	add("IA sigma s", tgt.IASigmaS, c.InterArrival.StdDev())
	return out
}

// RenderFidelity formats deviations as an aligned report.
func RenderFidelity(devs []Deviation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %12s %9s\n", "metric", "target", "generated", "rel err")
	for _, d := range devs {
		fmt.Fprintf(&b, "%-18s %12.3f %12.3f %8.1f%%\n", d.Metric, d.Target, d.Got, d.RelError*100)
	}
	return b.String()
}

// WorstDeviation returns the largest relative error, or 0 with no checks.
func WorstDeviation(devs []Deviation) float64 {
	var worst float64
	for _, d := range devs {
		if d.RelError > worst {
			worst = d.RelError
		}
	}
	return worst
}
