package workload

import (
	"fmt"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// Config parameterizes a synthetic file-level workload generator.
//
// The generator models a population of files accessed by a mix of random
// (hot/cold biased) and sequential-scan operations, with bursty
// inter-arrival times. The presets in presets.go calibrate these knobs to
// the Table 3 statistics of the paper's mac, dos, and hp traces.
type Config struct {
	// Name labels the generated trace.
	Name string
	// Seed makes generation deterministic.
	Seed int64
	// BlockSize is the file-system block size (Table 3).
	BlockSize units.Bytes
	// Duration is the simulated span of the trace.
	Duration units.Time
	// NumFiles and MeanFileSize describe the file population; sizes are
	// lognormal with coefficient of variation FileSizeCV, rounded up to a
	// whole number of blocks.
	NumFiles     int
	MeanFileSize units.Bytes
	FileSizeCV   float64
	// ReadFraction is the probability a non-delete operation is a read.
	ReadFraction float64
	// DeleteFraction is the probability an operation deletes a file
	// (0 for mac and hp, which recorded no deletions).
	DeleteFraction float64
	// MeanReadBlocks / MeanWriteBlocks set the geometric transfer-size
	// means, in blocks.
	MeanReadBlocks  float64
	MeanWriteBlocks float64
	// HotFileFraction of the files receive HotAccessFraction of the random
	// accesses (hot/cold locality).
	HotFileFraction   float64
	HotAccessFraction float64
	// SequentialFraction of operations advance a scan cursor that walks the
	// whole file population, modeling application loads and saves that
	// stream entire files. Scans are what make the trace's distinct-bytes
	// footprint approach the full population size.
	SequentialFraction float64
	// ReadRecentFraction of reads re-read a recently written extent
	// (read-after-write locality: applications verify or re-display what
	// they just saved). This is what gives the traces the high buffer-cache
	// hit rates the paper's response times imply.
	ReadRecentFraction float64
	// WriteBurstStickiness is the probability a random-access write stays
	// on the same file as the previous write (applications save one file
	// as a burst of small writes). Clustered writes mean clustered
	// invalidation on log-structured flash, which is what lets the cleaner
	// find cheap victims.
	WriteBurstStickiness float64
	// PauseEvery, when positive, inserts a long idle pause (drawn
	// uniformly from [PauseMinS, PauseMaxS] seconds) once per period of
	// generated time. A handful of long pauses carries a third or more of
	// a desktop trace's span; scheduling them (rather than drawing them
	// i.i.d.) keeps the realized record count stable across seeds while
	// still producing the published inter-arrival maxima and σ.
	PauseEvery units.Time
	PauseMinS  float64
	PauseMaxS  float64
	// SyncBurstGap, when positive, models periodic-sync behavior (the
	// HP-UX update daemon, application autosave): activity resuming after
	// an idle gap longer than this starts with a run of writes, so reads
	// concentrate in periods when the disk is already spinning. The run
	// length is geometric with mean SyncBurstOps.
	SyncBurstGap units.Time
	SyncBurstOps float64
	// InterArrival is the gap distribution between operations.
	InterArrival Mixture
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("workload: missing name")
	case c.BlockSize <= 0:
		return fmt.Errorf("workload %s: block size must be positive", c.Name)
	case c.Duration <= 0:
		return fmt.Errorf("workload %s: duration must be positive", c.Name)
	case c.NumFiles <= 0:
		return fmt.Errorf("workload %s: need at least one file", c.Name)
	case c.MeanFileSize < c.BlockSize:
		return fmt.Errorf("workload %s: mean file size below one block", c.Name)
	case c.ReadFraction < 0 || c.ReadFraction > 1:
		return fmt.Errorf("workload %s: read fraction out of range", c.Name)
	case c.DeleteFraction < 0 || c.DeleteFraction > 0.5:
		return fmt.Errorf("workload %s: delete fraction out of range", c.Name)
	case c.MeanReadBlocks < 1 || c.MeanWriteBlocks < 1:
		return fmt.Errorf("workload %s: mean transfer sizes must be ≥ 1 block", c.Name)
	case c.HotFileFraction <= 0 || c.HotFileFraction > 1:
		return fmt.Errorf("workload %s: hot file fraction out of range", c.Name)
	case c.HotAccessFraction < 0 || c.HotAccessFraction > 1:
		return fmt.Errorf("workload %s: hot access fraction out of range", c.Name)
	case c.SequentialFraction < 0 || c.SequentialFraction > 1:
		return fmt.Errorf("workload %s: sequential fraction out of range", c.Name)
	case c.ReadRecentFraction < 0 || c.ReadRecentFraction > 1:
		return fmt.Errorf("workload %s: read-recent fraction out of range", c.Name)
	case c.WriteBurstStickiness < 0 || c.WriteBurstStickiness > 1:
		return fmt.Errorf("workload %s: write-burst stickiness out of range", c.Name)
	}
	return c.InterArrival.Validate()
}

// Generate produces the full synthetic trace for the configuration.
func Generate(c Config) (*trace.Trace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := NewRNG(c.Seed)

	// Build the file population. File sizes are block-rounded lognormals.
	sizes := make([]units.Bytes, c.NumFiles)
	for i := range sizes {
		raw := g.LogNormalish(float64(c.MeanFileSize), c.FileSizeCV)
		blocks := units.CeilDiv(units.Bytes(raw), c.BlockSize)
		if blocks < 1 {
			blocks = 1
		}
		sizes[i] = blocks * c.BlockSize
	}
	hotCount := int(float64(c.NumFiles) * c.HotFileFraction)
	if hotCount < 1 {
		hotCount = 1
	}

	t := &trace.Trace{Name: c.Name, BlockSize: c.BlockSize}
	deleted := make(map[uint32]bool)

	// Scan cursor state: walks files in order, block by block.
	scanFile, scanOff := 0, units.Bytes(0)

	// Per-file write cursors: successive writes to a file continue where
	// the previous one ended (wrapping), modeling applications that save
	// files as runs of small sequential writes. Individual writes stay
	// small (Table 3's 1.2–6.2 block means) but their addresses cluster,
	// so whole runs of flash blocks are invalidated together — the
	// invalidation pattern file-level traces actually exhibit, and the
	// reason log-structured cleaners find cheap victims.
	writeCursor := make(map[int]units.Bytes)

	// Ring of recent write extents for read-after-write locality.
	type extent struct {
		file      int
		off, size units.Bytes
	}
	const recentRing = 64
	var recent []extent
	recentIdx := 0
	remember := func(file int, off, size units.Bytes) {
		e := extent{file, off, size}
		if len(recent) < recentRing {
			recent = append(recent, e)
			return
		}
		recent[recentIdx] = e
		recentIdx = (recentIdx + 1) % recentRing
	}

	now := units.Time(0)
	forcedWrites := 0
	lastWriteFile := -1
	nextPause := c.PauseEvery
	for {
		gap := c.InterArrival.Draw(g)
		if c.PauseEvery > 0 && now+gap >= nextPause {
			gap += units.FromSeconds(g.Uniform(c.PauseMinS, c.PauseMaxS))
			nextPause += c.PauseEvery
		}
		now += gap
		if now > c.Duration {
			break
		}
		if c.SyncBurstGap > 0 && gap > c.SyncBurstGap {
			// At least a few writes per sync run, geometric above that.
			forcedWrites = 2 + g.Geometric(c.SyncBurstOps-2)
		}

		// Deletions (dos trace only).
		if c.DeleteFraction > 0 && g.Float64() < c.DeleteFraction {
			f := uint32(g.Intn(c.NumFiles))
			if deleted[f] {
				continue // already gone; skip this slot
			}
			deleted[f] = true
			t.Records = append(t.Records, trace.Record{
				Time: now, Op: trace.Delete, File: f, Size: sizes[f],
			})
			continue
		}

		isRead := g.Float64() < c.ReadFraction
		if forcedWrites > 0 {
			isRead = false
			forcedWrites--
		}

		// Read-after-write locality: re-read a recently written extent.
		if isRead && len(recent) > 0 && g.Float64() < c.ReadRecentFraction {
			e := recent[g.Intn(len(recent))]
			if !deleted[uint32(e.file)] {
				t.Records = append(t.Records, trace.Record{
					Time: now, Op: trace.Read, File: uint32(e.file), Offset: e.off, Size: e.size,
				})
				continue
			}
		}

		meanBlocks := c.MeanWriteBlocks
		if isRead {
			meanBlocks = c.MeanReadBlocks
		}
		nblocks := g.Geometric(meanBlocks)

		var file int
		var off units.Bytes
		if g.Float64() < c.SequentialFraction {
			// Continue the global scan. Deleted files are recreated by
			// writes and skipped by reads.
			for deleted[uint32(scanFile)] && isRead {
				scanFile = (scanFile + 1) % c.NumFiles
				scanOff = 0
			}
			file, off = scanFile, scanOff
			scanOff += units.Bytes(nblocks) * c.BlockSize
			if scanOff >= sizes[scanFile] {
				scanFile = (scanFile + 1) % c.NumFiles
				scanOff = 0
			}
		} else {
			// Random access with hot/cold bias; writes stick to the file
			// being saved with probability WriteBurstStickiness.
			if !isRead && lastWriteFile >= 0 && !deleted[uint32(lastWriteFile)] &&
				g.Float64() < c.WriteBurstStickiness {
				file = lastWriteFile
			} else if g.Float64() < c.HotAccessFraction {
				file = g.Intn(hotCount)
			} else {
				file = hotCount + g.Intn(c.NumFiles-hotCount)
				if c.NumFiles == hotCount {
					file = g.Intn(c.NumFiles)
				}
			}
			if deleted[uint32(file)] && isRead {
				// Can't read a deleted file; make this a write that
				// recreates it (applications recreate scratch files).
				isRead = false
				nblocks = g.Geometric(c.MeanWriteBlocks)
			}
			if isRead {
				fileBlocks := int(sizes[file] / c.BlockSize)
				off = units.Bytes(g.Intn(fileBlocks)) * c.BlockSize
			} else {
				// Writes continue the file's save run.
				off = writeCursor[file]
				if off >= sizes[file] {
					off = 0
				}
				next := off + units.Bytes(nblocks)*c.BlockSize
				if next >= sizes[file] {
					next = 0
				}
				writeCursor[file] = next
			}
		}

		size := units.Bytes(nblocks) * c.BlockSize
		if off+size > sizes[file] {
			size = sizes[file] - off
		}
		if size <= 0 {
			continue
		}
		op := trace.Write
		if isRead {
			op = trace.Read
		} else {
			delete(deleted, uint32(file))
			remember(file, off, size)
			lastWriteFile = file
		}
		t.Records = append(t.Records, trace.Record{
			Time: now, Op: op, File: uint32(file), Offset: off, Size: size,
		})
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload %s: generated invalid trace: %w", c.Name, err)
	}
	return t, nil
}
