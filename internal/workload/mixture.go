package workload

import (
	"fmt"

	"mobilestorage/internal/units"
)

// ComponentKind selects the distribution family of one mixture component.
type ComponentKind uint8

// Supported component families.
const (
	// ExpComponent draws Shift + Exp(Mean), capped at Cap when Cap > 0.
	ExpComponent ComponentKind = iota
	// UniformComponent draws uniformly on [Shift, Shift+2·Mean), so the
	// component mean is Shift + Mean.
	UniformComponent
)

// Component is one arm of an inter-arrival mixture distribution.
// All durations are in seconds.
type Component struct {
	Weight float64
	Kind   ComponentKind
	Mean   float64 // mean of the un-shifted distribution
	Shift  float64 // constant offset added to every draw
	Cap    float64 // if > 0, draws are truncated to this value
}

// Mixture models bursty inter-arrival times as a weighted mixture: a short
// "burst" component plus one or more long "pause" components. The paper's
// traces all show this pattern (Table 3: mean inter-arrivals of 0.078–11.1 s
// with maxima of 90 s – 30 min); the synth workload is explicitly specified
// as a bimodal mixture (§4.1).
type Mixture struct {
	Components []Component
}

// Validate checks weights are positive and sum to ~1.
func (m Mixture) Validate() error {
	if len(m.Components) == 0 {
		return fmt.Errorf("workload: empty mixture")
	}
	var sum float64
	for i, c := range m.Components {
		if c.Weight <= 0 {
			return fmt.Errorf("workload: mixture component %d has non-positive weight", i)
		}
		if c.Mean < 0 || c.Shift < 0 {
			return fmt.Errorf("workload: mixture component %d has negative parameter", i)
		}
		sum += c.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: mixture weights sum to %g, want 1", sum)
	}
	return nil
}

// Mean returns the analytic mean of the mixture in seconds (ignoring caps,
// which for the calibrated presets shift the mean by well under a percent).
func (m Mixture) Mean() float64 {
	var mean float64
	for _, c := range m.Components {
		mean += c.Weight * (c.Shift + c.Mean)
	}
	return mean
}

// Draw samples one inter-arrival gap.
func (m Mixture) Draw(g *RNG) units.Time {
	u := g.Float64()
	var acc float64
	comp := m.Components[len(m.Components)-1]
	for _, c := range m.Components {
		acc += c.Weight
		if u < acc {
			comp = c
			break
		}
	}
	var v float64
	switch comp.Kind {
	case ExpComponent:
		v = g.Exp(comp.Mean)
	case UniformComponent:
		v = g.Uniform(0, 2*comp.Mean)
	default:
		panic(fmt.Sprintf("workload: unknown component kind %d", comp.Kind))
	}
	if comp.Cap > 0 && v > comp.Cap {
		v = comp.Cap
	}
	v += comp.Shift
	return units.FromSeconds(v)
}
