package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	g := NewRNG(1)
	const n = 200000
	for _, mean := range []float64{1.0, 1.3, 3.8, 6.2} {
		var sum float64
		for i := 0; i < n; i++ {
			v := g.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric(%g) returned %d < 1", mean, v)
			}
			sum += float64(v)
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.03 {
			t.Errorf("Geometric(%g) sample mean = %g", mean, got)
		}
	}
}

func TestLogNormalishMean(t *testing.T) {
	g := NewRNG(2)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := g.LogNormalish(24*1024, 1.2)
		if v <= 0 {
			t.Fatal("LogNormalish returned non-positive")
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-24*1024)/(24*1024) > 0.05 {
		t.Errorf("LogNormalish mean = %g, want ≈ 24576", got)
	}
}

func TestMixtureValidate(t *testing.T) {
	good := Mixture{Components: []Component{
		{Weight: 0.9, Kind: ExpComponent, Mean: 0.01},
		{Weight: 0.1, Kind: UniformComponent, Mean: 1},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("good mixture rejected: %v", err)
	}
	bad := []Mixture{
		{}, // empty
		{Components: []Component{{Weight: 0.5, Mean: 1}}},                      // weights don't sum to 1
		{Components: []Component{{Weight: 1, Mean: -1}}},                       // negative mean
		{Components: []Component{{Weight: -1, Mean: 1}, {Weight: 2, Mean: 1}}}, // negative weight
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad mixture %d accepted", i)
		}
	}
}

func TestMixtureDrawStats(t *testing.T) {
	m := Mixture{Components: []Component{
		{Weight: 0.90, Kind: UniformComponent, Mean: 0.010},
		{Weight: 0.10, Kind: ExpComponent, Mean: 3.0, Shift: 0.020},
	}}
	g := NewRNG(3)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		d := m.Draw(g)
		if d < 0 {
			t.Fatal("negative inter-arrival")
		}
		sum += d.Seconds()
	}
	want := m.Mean()
	got := sum / n
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("mixture sample mean = %g, analytic %g", got, want)
	}
}

func TestMixtureCap(t *testing.T) {
	m := Mixture{Components: []Component{{Weight: 1, Kind: ExpComponent, Mean: 100, Cap: 5}}}
	g := NewRNG(4)
	for i := 0; i < 10000; i++ {
		if d := m.Draw(g); d > units.FromSeconds(5) {
			t.Fatalf("draw %v exceeded cap", d)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Mac(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Mac(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Error("same seed produced different traces")
	}
	c, err := Generate(Mac(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Records, c.Records) {
		t.Error("different seeds produced identical traces")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Mac(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("mac preset invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.BlockSize = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.NumFiles = 0 },
		func(c *Config) { c.MeanFileSize = 1 },
		func(c *Config) { c.ReadFraction = 1.5 },
		func(c *Config) { c.DeleteFraction = 0.9 },
		func(c *Config) { c.MeanReadBlocks = 0.5 },
		func(c *Config) { c.HotFileFraction = 0 },
		func(c *Config) { c.HotAccessFraction = -0.1 },
		func(c *Config) { c.SequentialFraction = 2 },
		func(c *Config) { c.ReadRecentFraction = -1 },
		func(c *Config) { c.WriteBurstStickiness = 2 },
		func(c *Config) { c.InterArrival = Mixture{} },
	}
	for i, mut := range mutations {
		cfg := Mac(1)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestPresetCharacteristics checks each preset lands near its Table 3
// calibration targets. Tolerances are deliberately loose: the generators
// are stochastic fits, and EXPERIMENTS.md records the exact values.
func TestPresetCharacteristics(t *testing.T) {
	targets := []struct {
		name            string
		distinctKB      float64
		fracReads       float64
		blockSize       units.Bytes
		readBlks        float64
		writeBlks       float64
		iaMean          float64
		duration        units.Time
		allowDeletes    bool
		distinctRelTol  float64
		fracReadsAbsTol float64
	}{
		{"mac", 22000, 0.50, 1024, 1.3, 1.2, 0.078, units.FromSeconds(3.5 * 3600), false, 0.35, 0.05},
		{"dos", 16300, 0.24, 512, 3.8, 3.4, 0.528, units.FromSeconds(1.5 * 3600), true, 0.35, 0.06},
		{"hp", 32000, 0.38, 1024, 4.3, 6.2, 11.1, units.FromSeconds(4.4 * 24 * 3600), false, 0.35, 0.06},
	}
	for _, tgt := range targets {
		tr, err := GenerateByName(tgt.name, 1)
		if err != nil {
			t.Fatalf("%s: %v", tgt.name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid trace: %v", tgt.name, err)
		}
		c := trace.Characterize(tr, 0.1)
		if c.BlockSize != tgt.blockSize {
			t.Errorf("%s: block size %v, want %v", tgt.name, c.BlockSize, tgt.blockSize)
		}
		if rel := math.Abs(c.DistinctKBytes-tgt.distinctKB) / tgt.distinctKB; rel > tgt.distinctRelTol {
			t.Errorf("%s: distinct KB %.0f, target %.0f (off %.0f%%)",
				tgt.name, c.DistinctKBytes, tgt.distinctKB, rel*100)
		}
		if math.Abs(c.FractionReads-tgt.fracReads) > tgt.fracReadsAbsTol {
			t.Errorf("%s: fraction reads %.3f, target %.2f", tgt.name, c.FractionReads, tgt.fracReads)
		}
		if rel := math.Abs(c.MeanReadBlocks-tgt.readBlks) / tgt.readBlks; rel > 0.25 {
			t.Errorf("%s: mean read blocks %.2f, target %.1f", tgt.name, c.MeanReadBlocks, tgt.readBlks)
		}
		if rel := math.Abs(c.MeanWriteBlocks-tgt.writeBlks) / tgt.writeBlks; rel > 0.25 {
			t.Errorf("%s: mean write blocks %.2f, target %.1f", tgt.name, c.MeanWriteBlocks, tgt.writeBlks)
		}
		if rel := math.Abs(c.InterArrival.Mean()-tgt.iaMean) / tgt.iaMean; rel > 0.35 {
			t.Errorf("%s: inter-arrival mean %.3f, target %.3f", tgt.name, c.InterArrival.Mean(), tgt.iaMean)
		}
		if got := tr.Duration(); got > tgt.duration {
			t.Errorf("%s: duration %v exceeds configured %v", tgt.name, got, tgt.duration)
		}
		if !tgt.allowDeletes && c.Deletes > 0 {
			t.Errorf("%s: %d deletes in a no-delete trace", tgt.name, c.Deletes)
		}
		if tgt.allowDeletes && c.Deletes == 0 {
			t.Errorf("%s: expected deletions", tgt.name)
		}
	}
}

// TestGeneratorNeverReadsDeleted: reads never target a file while it is
// deleted.
func TestGeneratorNeverReadsDeleted(t *testing.T) {
	tr, err := GenerateByName("dos", 3)
	if err != nil {
		t.Fatal(err)
	}
	deleted := map[uint32]bool{}
	for i, r := range tr.Records {
		switch r.Op {
		case trace.Delete:
			deleted[r.File] = true
		case trace.Write:
			delete(deleted, r.File)
		case trace.Read:
			if deleted[r.File] {
				t.Fatalf("record %d reads deleted file %d", i, r.File)
			}
		}
	}
}

// TestGeneratorOffsetsWithinFiles: every access stays within its file's
// maximum extent and is block-aligned at the start.
func TestGeneratorOffsetsWithinFiles(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Dos(seed)
		cfg.Duration /= 20 // keep the property test quick
		tr, err := Generate(cfg)
		if err != nil {
			return false
		}
		sizes := tr.MaxFileSizes()
		for _, r := range tr.Records {
			if r.Op == trace.Delete {
				continue
			}
			if r.Offset%tr.BlockSize != 0 {
				return false
			}
			if r.End() > sizes[r.File] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := GenerateByName("nope", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("Names() = %v", names)
	}
	for _, n := range names {
		if _, err := GenerateByName(n, 1); err != nil {
			t.Errorf("GenerateByName(%q): %v", n, err)
		}
	}
}

func TestFidelity(t *testing.T) {
	for _, name := range []string{"mac", "dos", "hp"} {
		tr, err := GenerateByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		tgt, err := PaperTargets(name)
		if err != nil {
			t.Fatal(err)
		}
		devs := Fidelity(tr, tgt)
		if len(devs) != 8 {
			t.Fatalf("%s: %d deviations, want 8", name, len(devs))
		}
		// The presets are fits: no metric drifts past 40% and block size is
		// always exact.
		if w := WorstDeviation(devs); w > 0.40 {
			t.Errorf("%s: worst deviation %.0f%%", name, w*100)
		}
		for _, d := range devs {
			if d.Metric == "block size B" && d.RelError != 0 {
				t.Errorf("%s: block size off by %.0f%%", name, d.RelError*100)
			}
			if d.RelError < 0 {
				t.Errorf("%s: negative relative error", name)
			}
		}
		out := RenderFidelity(devs)
		if !strings.Contains(out, "distinct KB") {
			t.Errorf("%s: render missing metrics:\n%s", name, out)
		}
	}
	if _, err := PaperTargets("synth"); err == nil {
		t.Error("synth has no published Table 3 targets")
	}
}

func TestTPCA(t *testing.T) {
	tr, err := TPCA(TPCAConfig{Seed: 1, Ops: 500, DataMB: 4, TPS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1000 { // read+write per transaction
		t.Fatalf("records = %d, want 1000", len(tr.Records))
	}
	var reads, writes int
	for i := 0; i < len(tr.Records); i += 2 {
		r, w := tr.Records[i], tr.Records[i+1]
		if r.Op != trace.Read || w.Op != trace.Write {
			t.Fatalf("transaction %d ops: %v %v", i/2, r.Op, w.Op)
		}
		if r.File != w.File || r.Offset != w.Offset || r.Size != w.Size {
			t.Fatalf("transaction %d read/write mismatch", i/2)
		}
		reads++
		writes++
	}
	if reads != writes {
		t.Error("unbalanced transactions")
	}
	// Defaults apply.
	if _, err := TPCA(TPCAConfig{Seed: 1}); err != nil {
		t.Errorf("defaults: %v", err)
	}
}
