package mffs

import (
	"testing"

	"mobilestorage/internal/compress"
	"mobilestorage/internal/units"
)

func TestWriteCostGrowsWithFileSize(t *testing.T) {
	m := New()
	var f File
	var prev units.Bytes
	// The Figure 1 anomaly: the device bytes per 4 KB write grow
	// monotonically as the file grows.
	for i := 0; i < 16; i++ {
		deviceBytes, software := m.WriteCost(&f, 4*units.KB, compress.MobyDick)
		if software < m.WriteOverhead {
			t.Fatal("software cost below fixed overhead")
		}
		if i > 0 && deviceBytes <= prev {
			t.Fatalf("write %d device bytes %v not above previous %v", i, deviceBytes, prev)
		}
		prev = deviceBytes
	}
	// The growth is linear: byte cost at 512 KB written ≈ base + 10% of it.
	want := 2*units.KB + units.Bytes(float64(f.Written())*m.RewriteFraction)
	deviceBytes, _ := m.WriteCost(&f, 4*units.KB, compress.MobyDick)
	if diff := deviceBytes - want; diff < -units.KB || diff > units.KB {
		t.Errorf("device bytes %v, want ≈%v", deviceBytes, want)
	}
}

func TestReadCostGrowsWithOffset(t *testing.T) {
	m := New()
	_, near := m.ReadCost(0, 4*units.KB, compress.MobyDick)
	_, far := m.ReadCost(units.MB, 4*units.KB, compress.MobyDick)
	if far <= near {
		t.Errorf("far read %v not above near read %v", far, near)
	}
	// The linked-list walk dominates large offsets: 1 MB at 200 µs/KB ≈ 205 ms.
	if far < 200*units.Millisecond {
		t.Errorf("far read %v, want ≥ 200ms of scanning", far)
	}
}

func TestFixedModelRemovesAnomalies(t *testing.T) {
	m := Fixed()
	var f File
	first, _ := m.WriteCost(&f, 4*units.KB, compress.MobyDick)
	for i := 0; i < 100; i++ {
		m.WriteCost(&f, 4*units.KB, compress.MobyDick)
	}
	last, _ := m.WriteCost(&f, 4*units.KB, compress.MobyDick)
	if last != first {
		t.Errorf("fixed MFFS write grew: %v → %v", first, last)
	}
	_, near := m.ReadCost(0, 4*units.KB, compress.MobyDick)
	_, far := m.ReadCost(units.MB, 4*units.KB, compress.MobyDick)
	if far != near {
		t.Errorf("fixed MFFS read grew with offset: %v vs %v", near, far)
	}
}

func TestFileReset(t *testing.T) {
	m := New()
	var f File
	m.WriteCost(&f, 32*units.KB, compress.MobyDick)
	if f.Written() == 0 {
		t.Fatal("file state not updated")
	}
	f.Reset()
	if f.Written() != 0 {
		t.Error("reset did not clear state")
	}
}

func TestCompressionApplied(t *testing.T) {
	m := New()
	var f File
	deviceBytes, _ := m.WriteCost(&f, 4*units.KB, compress.MobyDick)
	if deviceBytes != 2*units.KB {
		t.Errorf("compressible write wrote %v to the device, want 2KB", deviceBytes)
	}
	var g File
	deviceBytes, _ = m.WriteCost(&g, 4*units.KB, compress.Random)
	if deviceBytes != 4*units.KB {
		t.Errorf("random write wrote %v, want 4KB", deviceBytes)
	}
}
