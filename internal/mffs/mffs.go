// Package mffs is a behavioral model of version 2.00 of the Microsoft
// Flash File System, as characterized by the paper's micro-benchmarks (§3):
//
//   - Writes: "the latency of each write increases linearly as the file
//     grows, apparently because data already written to the flash card are
//     written again, even in the absence of cleaning" (Figure 1). The model
//     charges each write a fixed bookkeeping overhead plus a rewrite of a
//     fixed fraction of the file's bytes written so far.
//   - Reads: "throughput is unexpectedly poor for reading large files"
//     (Table 1). MFFS chains file extents through linked lists in flash;
//     the model charges a scan cost proportional to the file offset.
//   - Compression is built in (§3) and always on.
//
// The constants are fits to the paper's measurements, not structural
// parameters; they live here so the testbed and the experiments share one
// definition.
package mffs

import (
	"mobilestorage/internal/compress"
	"mobilestorage/internal/units"
)

// Model holds the MFFS 2.00 cost parameters.
type Model struct {
	// Compression is the built-in compressor.
	Compression compress.Model
	// WriteOverhead is the fixed per-write bookkeeping cost (FAT-style
	// table updates done in software on the 25 MHz OmniBook).
	WriteOverhead units.Time
	// RewriteFraction is the share of the file's previously written
	// (compressed) bytes rewritten on each subsequent write — the Figure 1
	// anomaly. Zero models a fixed MFFS.
	RewriteFraction float64
	// ReadScanPerKB is the linked-list walk cost per KB of file offset.
	ReadScanPerKB units.Time
	// ReadOverhead is the fixed per-read software cost.
	ReadOverhead units.Time
}

// New returns the MFFS 2.00 model fit to the paper's Table 1 and Figure 1.
func New() Model {
	return Model{
		Compression:     compress.MFFS(),
		WriteOverhead:   38 * units.Millisecond,
		RewriteFraction: 0.10,
		ReadScanPerKB:   200 * units.Microsecond,
		ReadOverhead:    500 * units.Microsecond,
	}
}

// Fixed returns a hypothetical repaired MFFS without the large-file
// pathologies ("newer versions of the Microsoft Flash File System should
// address the degradation imposed by large files", §7). Used by ablation
// experiments.
func Fixed() Model {
	m := New()
	m.RewriteFraction = 0
	m.ReadScanPerKB = 0
	return m
}

// File tracks the per-file state the cost model needs.
type File struct {
	// written is the compressed bytes appended to the file so far.
	written units.Bytes
}

// Reset empties the file (truncation or deletion).
func (f *File) Reset() { f.written = 0 }

// Written returns the compressed bytes the file holds.
func (f *File) Written() units.Bytes { return f.written }

// WriteCost returns the device bytes and software time for appending size
// logical bytes of the given payload to the file, updating file state.
//
// deviceBytes covers the new (compressed) data plus the anomalous rewrite
// of earlier file data; software covers compression CPU time and fixed
// bookkeeping.
func (m Model) WriteCost(f *File, size units.Bytes, d compress.Data) (deviceBytes units.Bytes, software units.Time) {
	compressed := m.Compression.CompressedSize(size, d)
	rewrite := units.Bytes(float64(f.written) * m.RewriteFraction)
	f.written += compressed
	return compressed + rewrite, m.WriteOverhead + m.Compression.CPUTime(size, d)
}

// ReadCost returns the device bytes and software time for reading size
// logical bytes at the given offset of a file holding the given payload.
func (m Model) ReadCost(offset, size units.Bytes, d compress.Data) (deviceBytes units.Bytes, software units.Time) {
	compressed := m.Compression.CompressedSize(size, d)
	scan := units.Time(float64(m.ReadScanPerKB) * offset.KBytes())
	return compressed, m.ReadOverhead + scan + m.Compression.CPUTime(size, d)
}
