package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mobilestorage/internal/units"
)

// Binary trace format: a compact alternative to the text codec for large
// generated traces (the hp workload is ~29k records; a day-scale desktop
// trace at the paper's op rates would be millions). Layout:
//
//	magic "MSTB1" | name len+bytes | blocksize uvarint | record count uvarint
//	per record: time-delta uvarint (µs) | op byte | file uvarint |
//	            offset uvarint | size uvarint
//
// Time deltas exploit the sortedness invariant; varints make small values
// (the common case: sub-second gaps, small files) one or two bytes. The
// binary form of the mac trace is ~6× smaller than the text form.

// binaryMagic identifies the format and version.
var binaryMagic = []byte("MSTB1")

// EncodeBinary serializes a trace in the binary format. The trace must be
// sorted (Validate enforces this for all constructed traces).
func EncodeBinary(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(t.BlockSize)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Records))); err != nil {
		return err
	}
	var prev units.Time
	for _, r := range t.Records {
		if err := putUvarint(uint64(r.Time - prev)); err != nil {
			return err
		}
		prev = r.Time
		if err := bw.WriteByte(byte(r.Op)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.File)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Offset)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Size)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeBinary parses a trace in the binary format.
func DecodeBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != string(binaryMagic) {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: name: %w", err)
	}
	blockSize, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: block size: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: record count: %w", err)
	}
	const maxRecords = 1 << 30
	if count > maxRecords {
		return nil, fmt.Errorf("trace: unreasonable record count %d", count)
	}
	t := &Trace{
		Name:      string(name),
		BlockSize: units.Bytes(blockSize),
		Records:   make([]Record, 0, count),
	}
	var now units.Time
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d time: %w", i, err)
		}
		now += units.Time(delta)
		opByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d op: %w", i, err)
		}
		if opByte > byte(Delete) {
			return nil, fmt.Errorf("trace: record %d bad op %d", i, opByte)
		}
		file, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d file: %w", i, err)
		}
		if file > 1<<32-1 {
			return nil, fmt.Errorf("trace: record %d file id %d overflows", i, file)
		}
		offset, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d offset: %w", i, err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d size: %w", i, err)
		}
		t.Records = append(t.Records, Record{
			Time:   now,
			Op:     Op(opByte),
			File:   uint32(file),
			Offset: units.Bytes(offset),
			Size:   units.Bytes(size),
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
