package trace

import (
	"fmt"

	"mobilestorage/internal/units"
)

// RefLayout is the original map-backed layout implementation, frozen as the
// behavioral reference for the simulator's differential test harness
// (internal/core/difftest). It must stay byte-for-byte equivalent to Layout:
// same placement addresses, same free-list reuse, same panics. Do not
// optimize this type — its whole value is being the slow, obviously-correct
// path the fast one is diffed against.
type RefLayout struct {
	blockSize units.Bytes
	next      units.Bytes
	extents   map[uint32]extent
	free      []extent // sorted by offset, coalesced
}

// NewRefLayout builds a reference layout that rounds file extents to
// blockSize.
func NewRefLayout(blockSize units.Bytes) *RefLayout {
	if blockSize <= 0 {
		panic("trace: layout block size must be positive")
	}
	return &RefLayout{
		blockSize: blockSize,
		extents:   make(map[uint32]extent),
	}
}

// Place returns the device byte address of (file, offset), allocating an
// extent the first time a file is seen.
func (l *RefLayout) Place(file uint32, offset, sizeHint units.Bytes) units.Bytes {
	e, ok := l.extents[file]
	if !ok {
		e = refAllocate(&l.free, &l.next, roundUp(sizeHint, l.blockSize), l.blockSize)
		l.extents[file] = e
	}
	if offset > e.size {
		panic(fmt.Sprintf("trace: file %d accessed at %d beyond hinted extent %d", file, offset, e.size))
	}
	return e.off + offset
}

// Extent returns the placement of a file, if it has one.
func (l *RefLayout) Extent(file uint32) (off, size units.Bytes, ok bool) {
	e, found := l.extents[file]
	return e.off, e.size, found
}

// Delete releases a file's extent for reuse.
func (l *RefLayout) Delete(file uint32) {
	e, ok := l.extents[file]
	if !ok {
		return
	}
	delete(l.extents, file)
	refRelease(&l.free, e)
}

// HighWater returns one past the highest byte address ever allocated.
func (l *RefLayout) HighWater() units.Bytes { return l.next }

// LiveBytes returns the total bytes currently allocated to files.
func (l *RefLayout) LiveBytes() units.Bytes {
	var total units.Bytes
	for _, e := range l.extents {
		total += e.size
	}
	return total
}

// refAllocate is the frozen first-fit allocator shared by RefLayout.
func refAllocate(free *[]extent, next *units.Bytes, size, blockSize units.Bytes) extent {
	if size <= 0 {
		size = blockSize
	}
	for i, f := range *free {
		if f.size >= size {
			e := extent{off: f.off, size: size}
			if f.size == size {
				*free = append((*free)[:i], (*free)[i+1:]...)
			} else {
				(*free)[i] = extent{off: f.off + size, size: f.size - size}
			}
			return e
		}
	}
	e := extent{off: *next, size: size}
	*next += size
	return e
}

// refRelease is the frozen sorted-insert-and-coalesce release shared by
// RefLayout.
func refRelease(freep *[]extent, e extent) {
	free := *freep
	i := 0
	for i < len(free) && free[i].off < e.off {
		i++
	}
	free = append(free, extent{})
	copy(free[i+1:], free[i:])
	free[i] = e
	if i+1 < len(free) && free[i].off+free[i].size == free[i+1].off {
		free[i].size += free[i+1].size
		free = append(free[:i+1], free[i+2:]...)
	}
	if i > 0 && free[i-1].off+free[i-1].size == free[i].off {
		free[i-1].size += free[i].size
		free = append(free[:i], free[i+1:]...)
	}
	*freep = free
}
