// Package trace defines the file-level I/O trace format the simulator
// consumes, mirroring the traces used in the paper (§4.1): each record says
// which file is accessed, whether the operation is a read, write, or delete,
// the location within the file, the size of the transfer, and the time of
// the access.
//
// Like the paper, file-level traces are preprocessed into disk-level
// operations by associating a unique disk location with each file
// (see Layout). Records retain the file ID so device models can apply the
// paper's "repeated accesses to the same file never seek" assumption.
package trace

import (
	"fmt"
	"sort"

	"mobilestorage/internal/units"
)

// Op is the operation type of a trace record.
type Op uint8

// Operation kinds. Delete removes a whole file (the dos and synth traces
// include deletions; mac and hp do not).
const (
	Read Op = iota
	Write
	Delete
)

// String returns "read", "write", or "delete".
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp converts a string produced by Op.String back into an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "read", "r":
		return Read, nil
	case "write", "w":
		return Write, nil
	case "delete", "d":
		return Delete, nil
	}
	return 0, fmt.Errorf("trace: unknown op %q", s)
}

// Record is one file-level trace event.
type Record struct {
	// Time is the arrival instant of the operation.
	Time units.Time
	// Op is the operation type.
	Op Op
	// File identifies the file accessed. File IDs are dense small integers.
	File uint32
	// Offset is the byte offset within the file (0 for Delete).
	Offset units.Bytes
	// Size is the transfer size in bytes (whole file size for Delete, which
	// lets device models invalidate the right extent).
	Size units.Bytes
}

// End returns the first byte past the accessed range.
func (r Record) End() units.Bytes { return r.Offset + r.Size }

// Validate reports structural problems with a record.
func (r Record) Validate() error {
	if r.Time < 0 {
		return fmt.Errorf("trace: negative time %d", r.Time)
	}
	if r.Offset < 0 {
		return fmt.Errorf("trace: negative offset %d", r.Offset)
	}
	if r.Size < 0 {
		return fmt.Errorf("trace: negative size %d", r.Size)
	}
	if r.Op != Delete && r.Size == 0 {
		return fmt.Errorf("trace: zero-size %s", r.Op)
	}
	return nil
}

// Trace is an ordered sequence of records plus the metadata the simulator
// needs to interpret them.
type Trace struct {
	// Name labels the workload ("mac", "dos", "hp", "synth", ...).
	Name string
	// BlockSize is the file-system block size the workload was collected
	// under (Table 3: 1 KB for mac and hp, 0.5 KB for dos).
	BlockSize units.Bytes
	// Records are the events in non-decreasing time order.
	Records []Record
}

// Duration returns the time span from zero to the last record.
func (t *Trace) Duration() units.Time {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time
}

// Sorted reports whether records are in non-decreasing time order.
func (t *Trace) Sorted() bool {
	return sort.SliceIsSorted(t.Records, func(i, j int) bool {
		return t.Records[i].Time < t.Records[j].Time
	})
}

// Sort orders records by time, stably so same-instant operations keep their
// generation order.
func (t *Trace) Sort() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].Time < t.Records[j].Time
	})
}

// Validate checks every record and the global ordering invariant.
func (t *Trace) Validate() error {
	if t.BlockSize <= 0 {
		return fmt.Errorf("trace %q: non-positive block size %d", t.Name, t.BlockSize)
	}
	var prev units.Time
	for i, r := range t.Records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("trace %q record %d: %w", t.Name, i, err)
		}
		if r.Time < prev {
			return fmt.Errorf("trace %q record %d: time goes backwards (%d < %d)", t.Name, i, r.Time, prev)
		}
		prev = r.Time
	}
	return nil
}

// WarmSplit returns the index of the first record belonging to the measured
// portion of the trace: the paper processes the first 10% of each trace to
// warm the buffer cache and reports statistics on the remainder (§4.2).
// The split is by record count.
func (t *Trace) WarmSplit(warmFraction float64) int {
	if warmFraction <= 0 {
		return 0
	}
	if warmFraction >= 1 {
		return len(t.Records)
	}
	return int(float64(len(t.Records)) * warmFraction)
}

// MaxFileSizes returns, per file ID, the largest extent (in bytes) any record
// touches, which the Layout uses to place files on the simulated device.
func (t *Trace) MaxFileSizes() map[uint32]units.Bytes {
	sizes := make(map[uint32]units.Bytes)
	for _, r := range t.Records {
		if end := r.End(); end > sizes[r.File] {
			sizes[r.File] = end
		}
	}
	return sizes
}

// FileSizes is the dense-slice form of MaxFileSizes, built for the
// simulator's per-record hot loop: file IDs below denseFileLimit index a
// flat slice, larger (adversarial) IDs spill to a map. Get returns the same
// value MaxFileSizes' map would for every ID.
type FileSizes struct {
	dense  []units.Bytes
	sparse map[uint32]units.Bytes
}

// Get returns the largest extent any record touches for the file, or 0 for
// a file the trace never touches.
func (s *FileSizes) Get(file uint32) units.Bytes {
	if uint64(file) < uint64(len(s.dense)) {
		return s.dense[file]
	}
	if s.sparse != nil {
		return s.sparse[file]
	}
	return 0
}

// MaxFileExtents returns per-file maximum extents as a FileSizes, the
// allocation-light equivalent of MaxFileSizes.
func (t *Trace) MaxFileExtents() *FileSizes {
	s := &FileSizes{}
	for _, r := range t.Records {
		end := r.End()
		if r.File < denseFileLimit {
			if int(r.File) >= len(s.dense) {
				if int(r.File) < cap(s.dense) {
					s.dense = s.dense[:r.File+1]
				} else {
					n := 2 * cap(s.dense)
					if n < 64 {
						n = 64
					}
					if int(r.File) >= n {
						n = int(r.File) + 1
					}
					grown := make([]units.Bytes, int(r.File)+1, n)
					copy(grown, s.dense)
					s.dense = grown
				}
			}
			if end > s.dense[r.File] {
				s.dense[r.File] = end
			}
			continue
		}
		if s.sparse == nil {
			s.sparse = make(map[uint32]units.Bytes)
		}
		if end > s.sparse[r.File] {
			s.sparse[r.File] = end
		}
	}
	return s
}

// TotalBytes returns the bytes moved by reads and writes (deletes excluded).
func (t *Trace) TotalBytes() (read, written units.Bytes) {
	for _, r := range t.Records {
		switch r.Op {
		case Read:
			read += r.Size
		case Write:
			written += r.Size
		}
	}
	return read, written
}
