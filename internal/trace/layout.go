package trace

import (
	"fmt"

	"mobilestorage/internal/units"
)

// Layout maps file IDs to disk locations, converting file-level trace
// accesses into device-level (byte-address) operations. This mirrors the
// paper's preprocessing step: "The traces were preprocessed to convert
// file-level accesses into disk-level operations, by associating a unique
// disk location with each file" (§4.1).
//
// Files are placed first-touch, contiguously, rounded up to whole blocks.
// Deleted files release their extent to a free list that is reused
// first-fit, so the dos and synth traces (which contain deletions) do not
// grow the address space without bound.
type Layout struct {
	blockSize units.Bytes
	next      units.Bytes
	extents   map[uint32]extent
	free      []extent // sorted by offset, coalesced
}

type extent struct {
	off, size units.Bytes
}

// NewLayout builds a layout that rounds file extents to blockSize.
func NewLayout(blockSize units.Bytes) *Layout {
	if blockSize <= 0 {
		panic("trace: layout block size must be positive")
	}
	return &Layout{
		blockSize: blockSize,
		extents:   make(map[uint32]extent),
	}
}

// Place returns the device byte address of (file, offset), allocating an
// extent the first time a file is seen. The size hint must be the file's
// maximum extent (from Trace.MaxFileSizes) so the allocation is stable
// across the whole trace.
func (l *Layout) Place(file uint32, offset, sizeHint units.Bytes) units.Bytes {
	e, ok := l.extents[file]
	if !ok {
		e = l.allocate(roundUp(sizeHint, l.blockSize))
		l.extents[file] = e
	}
	if offset > e.size {
		// The hint must cover all accesses; failing this indicates the
		// caller computed sizes from a different trace.
		panic(fmt.Sprintf("trace: file %d accessed at %d beyond hinted extent %d", file, offset, e.size))
	}
	return e.off + offset
}

// Extent returns the placement of a file, if it has one.
func (l *Layout) Extent(file uint32) (off, size units.Bytes, ok bool) {
	e, found := l.extents[file]
	return e.off, e.size, found
}

// Delete releases a file's extent for reuse. Deleting an unplaced file is a
// no-op (a trace may delete a file it never read or wrote).
func (l *Layout) Delete(file uint32) {
	e, ok := l.extents[file]
	if !ok {
		return
	}
	delete(l.extents, file)
	l.release(e)
}

// HighWater returns one past the highest byte address ever allocated: the
// device capacity needed to replay the trace.
func (l *Layout) HighWater() units.Bytes { return l.next }

// LiveBytes returns the total bytes currently allocated to files.
func (l *Layout) LiveBytes() units.Bytes {
	var total units.Bytes
	for _, e := range l.extents {
		total += e.size
	}
	return total
}

func (l *Layout) allocate(size units.Bytes) extent {
	if size <= 0 {
		size = l.blockSize
	}
	// First-fit from the free list.
	for i, f := range l.free {
		if f.size >= size {
			e := extent{off: f.off, size: size}
			if f.size == size {
				l.free = append(l.free[:i], l.free[i+1:]...)
			} else {
				l.free[i] = extent{off: f.off + size, size: f.size - size}
			}
			return e
		}
	}
	e := extent{off: l.next, size: size}
	l.next += size
	return e
}

func (l *Layout) release(e extent) {
	// Insert sorted by offset, then coalesce neighbours.
	i := 0
	for i < len(l.free) && l.free[i].off < e.off {
		i++
	}
	l.free = append(l.free, extent{})
	copy(l.free[i+1:], l.free[i:])
	l.free[i] = e
	// Coalesce with next.
	if i+1 < len(l.free) && l.free[i].off+l.free[i].size == l.free[i+1].off {
		l.free[i].size += l.free[i+1].size
		l.free = append(l.free[:i+1], l.free[i+2:]...)
	}
	// Coalesce with previous.
	if i > 0 && l.free[i-1].off+l.free[i-1].size == l.free[i].off {
		l.free[i-1].size += l.free[i].size
		l.free = append(l.free[:i], l.free[i+1:]...)
	}
}

func roundUp(v, to units.Bytes) units.Bytes {
	if v <= 0 {
		return to
	}
	return units.CeilDiv(v, to) * to
}
