package trace

import (
	"fmt"

	"mobilestorage/internal/units"
)

// Layout maps file IDs to disk locations, converting file-level trace
// accesses into device-level (byte-address) operations. This mirrors the
// paper's preprocessing step: "The traces were preprocessed to convert
// file-level accesses into disk-level operations, by associating a unique
// disk location with each file" (§4.1).
//
// Files are placed first-touch, contiguously, rounded up to whole blocks.
// Deleted files release their extent to a free list that is reused
// first-fit, so the dos and synth traces (which contain deletions) do not
// grow the address space without bound.
//
// File IDs are dense small integers in every real workload, so extents live
// in a flat slice indexed by file ID — the map lookup this replaces was the
// single hottest operation in whole-trace replays. IDs past denseFileLimit
// (possible only in adversarial/fuzzed traces) spill to a map so behavior
// is unchanged for arbitrary inputs. RefLayout keeps the original map-only
// implementation for differential testing.
type Layout struct {
	blockSize units.Bytes
	next      units.Bytes
	// dense[f] holds file f's extent; size > 0 marks presence (allocate
	// never returns an empty extent). Grown on demand, never beyond
	// denseFileLimit entries.
	dense []extent
	// sparse holds extents for file IDs ≥ denseFileLimit; nil until needed.
	sparse map[uint32]extent
	free   []extent // sorted by offset, coalesced
}

// denseFileLimit bounds the dense extent table: IDs below it index a slice,
// IDs at or above it fall back to a map. 1M entries × 16 bytes caps the
// dense table at 16 MB, and it only grows as far as the largest ID seen.
const denseFileLimit = 1 << 20

type extent struct {
	off, size units.Bytes
}

// NewLayout builds a layout that rounds file extents to blockSize.
func NewLayout(blockSize units.Bytes) *Layout {
	if blockSize <= 0 {
		panic("trace: layout block size must be positive")
	}
	return &Layout{blockSize: blockSize}
}

// Place returns the device byte address of (file, offset), allocating an
// extent the first time a file is seen. The size hint must be the file's
// maximum extent (from Trace.MaxFileSizes) so the allocation is stable
// across the whole trace.
func (l *Layout) Place(file uint32, offset, sizeHint units.Bytes) units.Bytes {
	if uint64(file) < uint64(len(l.dense)) {
		if e := l.dense[file]; e.size > 0 {
			if offset > e.size {
				panic(fmt.Sprintf("trace: file %d accessed at %d beyond hinted extent %d", file, offset, e.size))
			}
			return e.off + offset
		}
	}
	return l.placeSlow(file, offset, sizeHint)
}

// placeSlow handles first placement and spilled file IDs.
func (l *Layout) placeSlow(file uint32, offset, sizeHint units.Bytes) units.Bytes {
	e, ok := l.lookup(file)
	if !ok {
		e = refAllocate(&l.free, &l.next, roundUp(sizeHint, l.blockSize), l.blockSize)
		l.store(file, e)
	}
	if offset > e.size {
		// The hint must cover all accesses; failing this indicates the
		// caller computed sizes from a different trace.
		panic(fmt.Sprintf("trace: file %d accessed at %d beyond hinted extent %d", file, offset, e.size))
	}
	return e.off + offset
}

// Extent returns the placement of a file, if it has one.
func (l *Layout) Extent(file uint32) (off, size units.Bytes, ok bool) {
	e, found := l.lookup(file)
	return e.off, e.size, found
}

// Delete releases a file's extent for reuse. Deleting an unplaced file is a
// no-op (a trace may delete a file it never read or wrote).
func (l *Layout) Delete(file uint32) {
	e, ok := l.lookup(file)
	if !ok {
		return
	}
	if file < denseFileLimit {
		l.dense[file] = extent{}
	} else {
		delete(l.sparse, file)
	}
	refRelease(&l.free, e)
}

// HighWater returns one past the highest byte address ever allocated: the
// device capacity needed to replay the trace.
func (l *Layout) HighWater() units.Bytes { return l.next }

// LiveBytes returns the total bytes currently allocated to files.
func (l *Layout) LiveBytes() units.Bytes {
	var total units.Bytes
	for _, e := range l.dense {
		total += e.size
	}
	for _, e := range l.sparse {
		total += e.size
	}
	return total
}

func (l *Layout) lookup(file uint32) (extent, bool) {
	if file < denseFileLimit {
		if uint64(file) < uint64(len(l.dense)) {
			e := l.dense[file]
			return e, e.size > 0
		}
		return extent{}, false
	}
	e, ok := l.sparse[file]
	return e, ok
}

func (l *Layout) store(file uint32, e extent) {
	if file < denseFileLimit {
		if int(file) >= len(l.dense) {
			if int(file) < cap(l.dense) {
				// The tail of the backing array is always zero: writes only
				// land below len, and Delete zeroes in place.
				l.dense = l.dense[:file+1]
			} else {
				n := 2 * cap(l.dense)
				if n < 64 {
					n = 64
				}
				if int(file) >= n {
					n = int(file) + 1
				}
				grown := make([]extent, int(file)+1, n)
				copy(grown, l.dense)
				l.dense = grown
			}
		}
		l.dense[file] = e
		return
	}
	if l.sparse == nil {
		l.sparse = make(map[uint32]extent)
	}
	l.sparse[file] = e
}

func roundUp(v, to units.Bytes) units.Bytes {
	if v <= 0 {
		return to
	}
	return units.CeilDiv(v, to) * to
}
