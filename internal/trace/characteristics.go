package trace

import (
	"mobilestorage/internal/stats"
	"mobilestorage/internal/units"
)

// Characteristics summarizes a trace the way the paper's Table 3 does.
// Like the paper, the statistics apply to the measured (post-warm-start)
// portion of the trace.
type Characteristics struct {
	Name            string
	Duration        units.Time  // span of the measured portion
	DistinctKBytes  float64     // number of distinct KB accessed
	FractionReads   float64     // reads / (reads + writes)
	BlockSize       units.Bytes // file-system block size
	MeanReadBlocks  float64     // mean read size in blocks
	MeanWriteBlocks float64     // mean write size in blocks
	InterArrival    stats.Summary
	Records         int
	Deletes         int
}

// Characterize computes Table 3-style statistics over the measured portion
// of the trace (after skipping warmFraction of the records, 0.1 in the
// paper).
func Characterize(t *Trace, warmFraction float64) Characteristics {
	start := t.WarmSplit(warmFraction)
	recs := t.Records[start:]
	c := Characteristics{
		Name:      t.Name,
		BlockSize: t.BlockSize,
		Records:   len(recs),
	}
	if len(recs) == 0 {
		return c
	}
	c.Duration = recs[len(recs)-1].Time - recs[0].Time

	// Distinct bytes accessed, counted at block granularity like the paper
	// ("number of distinct Kbytes accessed").
	type blockKey struct {
		file  uint32
		block units.Bytes
	}
	distinct := make(map[blockKey]struct{})
	var reads, writes int
	var readBlocks, writeBlocks float64
	prev := recs[0].Time
	for i, r := range recs {
		if i > 0 {
			c.InterArrival.Add((r.Time - prev).Seconds())
			prev = r.Time
		}
		if r.Op == Delete {
			c.Deletes++
			continue
		}
		nblocks := float64(units.CeilDiv(r.Size, t.BlockSize))
		for b := r.Offset / t.BlockSize; b*t.BlockSize < r.End(); b++ {
			distinct[blockKey{r.File, b}] = struct{}{}
		}
		if r.Op == Read {
			reads++
			readBlocks += nblocks
		} else {
			writes++
			writeBlocks += nblocks
		}
	}
	c.DistinctKBytes = float64(len(distinct)) * t.BlockSize.KBytes()
	if reads+writes > 0 {
		c.FractionReads = float64(reads) / float64(reads+writes)
	}
	if reads > 0 {
		c.MeanReadBlocks = readBlocks / float64(reads)
	}
	if writes > 0 {
		c.MeanWriteBlocks = writeBlocks / float64(writes)
	}
	return c
}
