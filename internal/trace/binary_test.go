package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mobilestorage/internal/units"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.BlockSize != tr.BlockSize {
		t.Errorf("header: %q %v", got.Name, got.BlockSize)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Errorf("records mismatch")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "bprop", BlockSize: 512}
		now := units.Time(0)
		for i := 0; i < int(n); i++ {
			now += units.Time(rng.Intn(1_000_000))
			op := Op(rng.Intn(3))
			size := units.Bytes(rng.Intn(64 * 1024))
			if op != Delete {
				size++
			}
			tr.Records = append(tr.Records, Record{
				Time: now, Op: op,
				File:   uint32(rng.Intn(1 << 20)),
				Offset: units.Bytes(rng.Intn(1 << 24)),
				Size:   size,
			})
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, tr); err != nil {
			return false
		}
		got, err := DecodeBinary(&buf)
		if err != nil {
			return false
		}
		if len(tr.Records) == 0 {
			return len(got.Records) == 0
		}
		return reflect.DeepEqual(got.Records, tr.Records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	// Build a realistic-sized trace and compare encodings.
	tr := &Trace{Name: "size", BlockSize: 512}
	rng := rand.New(rand.NewSource(1))
	now := units.Time(0)
	for i := 0; i < 5000; i++ {
		now += units.Time(rng.Intn(100_000))
		tr.Records = append(tr.Records, Record{
			Time: now, Op: Op(rng.Intn(2)),
			File:   uint32(rng.Intn(500)),
			Offset: units.Bytes(rng.Intn(32)) * 512,
			Size:   units.Bytes(rng.Intn(16)+1) * 512,
		})
	}
	var text, bin bytes.Buffer
	if err := Encode(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len()/2 {
		t.Errorf("binary %d B not < half of text %d B", bin.Len(), text.Len())
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,             // empty
		[]byte("XXXXX"), // bad magic
		[]byte("MSTB1"), // truncated after magic
	}
	for i, c := range cases {
		if _, err := DecodeBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// A valid header with a bad op byte.
	var buf bytes.Buffer
	tr := &Trace{Name: "x", BlockSize: 512, Records: []Record{{Time: 1, Op: Write, Size: 512}}}
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the op byte (after magic+namelen+name+blocksize+count+delta).
	idx := bytes.LastIndexByte(b, byte(Write))
	b[idx] = 9
	if _, err := DecodeBinary(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "bad op") {
		t.Errorf("corrupted op accepted: %v", err)
	}
}

func TestBinaryRejectsInvalidTrace(t *testing.T) {
	tr := &Trace{Name: "bad", BlockSize: 0}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err == nil {
		t.Error("invalid trace encoded")
	}
}

func BenchmarkEncodeText(b *testing.B)   { benchCodec(b, false, true) }
func BenchmarkEncodeBinary(b *testing.B) { benchCodec(b, true, true) }
func BenchmarkDecodeText(b *testing.B)   { benchCodec(b, false, false) }
func BenchmarkDecodeBinary(b *testing.B) { benchCodec(b, true, false) }

func benchCodec(b *testing.B, binaryFmt, encode bool) {
	tr := &Trace{Name: "bench", BlockSize: 512}
	rng := rand.New(rand.NewSource(1))
	now := units.Time(0)
	for i := 0; i < 20000; i++ {
		now += units.Time(rng.Intn(100_000))
		tr.Records = append(tr.Records, Record{
			Time: now, Op: Op(rng.Intn(2)), File: uint32(rng.Intn(500)),
			Offset: units.Bytes(rng.Intn(32)) * 512, Size: 512,
		})
	}
	var data bytes.Buffer
	if binaryFmt {
		EncodeBinary(&data, tr)
	} else {
		Encode(&data, tr)
	}
	raw := data.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if encode {
			var buf bytes.Buffer
			if binaryFmt {
				EncodeBinary(&buf, tr)
			} else {
				Encode(&buf, tr)
			}
		} else {
			var err error
			if binaryFmt {
				_, err = DecodeBinary(bytes.NewReader(raw))
			} else {
				_, err = Decode(bytes.NewReader(raw))
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
