package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mobilestorage/internal/units"
)

// The on-disk trace format is a line-oriented text format chosen for easy
// inspection with standard tools:
//
//	# comment
//	trace <name> blocksize=<bytes>
//	<time-µs> <r|w|d> <file> <offset> <size>
//
// Times are absolute microseconds. One header line is required before the
// first record.

// Encode serializes a trace in the text format.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# mobilestorage trace, %d records\n", len(t.Records)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "trace %s blocksize=%d\n", t.Name, t.BlockSize); err != nil {
		return err
	}
	for _, r := range t.Records {
		var op byte
		switch r.Op {
		case Read:
			op = 'r'
		case Write:
			op = 'w'
		case Delete:
			op = 'd'
		default:
			return fmt.Errorf("trace: cannot encode op %v", r.Op)
		}
		if _, err := fmt.Fprintf(bw, "%d %c %d %d %d\n", r.Time, op, r.File, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses a trace in the text format.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	sawHeader := false
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sawHeader {
			name, bs, err := parseHeader(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineno, err)
			}
			t.Name, t.BlockSize = name, bs
			sawHeader = true
			continue
		}
		rec, err := parseRecord(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineno, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: missing header line")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseHeader(line string) (string, units.Bytes, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "trace" {
		return "", 0, fmt.Errorf("malformed header %q", line)
	}
	const prefix = "blocksize="
	if !strings.HasPrefix(fields[2], prefix) {
		return "", 0, fmt.Errorf("malformed header %q: missing blocksize", line)
	}
	bs, err := strconv.ParseInt(fields[2][len(prefix):], 10, 64)
	if err != nil || bs <= 0 {
		return "", 0, fmt.Errorf("malformed blocksize in %q", line)
	}
	return fields[1], units.Bytes(bs), nil
}

func parseRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 {
		return Record{}, fmt.Errorf("malformed record %q: want 5 fields, got %d", line, len(fields))
	}
	tm, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad time in %q: %v", line, err)
	}
	op, err := ParseOp(fields[1])
	if err != nil {
		return Record{}, err
	}
	file, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return Record{}, fmt.Errorf("bad file id in %q: %v", line, err)
	}
	off, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad offset in %q: %v", line, err)
	}
	size, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad size in %q: %v", line, err)
	}
	return Record{
		Time:   units.Time(tm),
		Op:     op,
		File:   uint32(file),
		Offset: units.Bytes(off),
		Size:   units.Bytes(size),
	}, nil
}
