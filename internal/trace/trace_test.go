package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mobilestorage/internal/units"
)

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Delete.String() != "delete" {
		t.Error("op names wrong")
	}
	if got := Op(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown op = %q", got)
	}
}

func TestParseOp(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Op
	}{{"read", Read}, {"r", Read}, {"write", Write}, {"w", Write}, {"delete", Delete}, {"d", Delete}} {
		got, err := ParseOp(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseOp(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseOp("bogus"); err == nil {
		t.Error("ParseOp accepted junk")
	}
}

func TestRecordValidate(t *testing.T) {
	ok := Record{Time: 10, Op: Read, Size: 512}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := []Record{
		{Time: -1, Op: Read, Size: 1},
		{Time: 0, Op: Read, Offset: -1, Size: 1},
		{Time: 0, Op: Read, Size: -1},
		{Time: 0, Op: Write, Size: 0}, // zero-size write
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	// Zero-size deletes are fine (deleting an empty file).
	if err := (Record{Op: Delete}).Validate(); err != nil {
		t.Errorf("zero-size delete rejected: %v", err)
	}
}

func testTrace() *Trace {
	return &Trace{
		Name:      "test",
		BlockSize: 512,
		Records: []Record{
			{Time: 0, Op: Write, File: 1, Offset: 0, Size: 1024},
			{Time: 1000, Op: Read, File: 1, Offset: 512, Size: 512},
			{Time: 2000, Op: Delete, File: 1, Size: 1024},
			{Time: 3000, Op: Write, File: 2, Offset: 0, Size: 2048},
		},
	}
}

func TestTraceValidateAndSort(t *testing.T) {
	tr := testTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if !tr.Sorted() {
		t.Error("sorted trace reported unsorted")
	}
	tr.Records[0], tr.Records[3] = tr.Records[3], tr.Records[0]
	if tr.Sorted() {
		t.Error("unsorted trace reported sorted")
	}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-order trace accepted")
	}
	tr.Sort()
	if !tr.Sorted() {
		t.Error("Sort did not sort")
	}
	tr.BlockSize = 0
	if err := tr.Validate(); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestWarmSplit(t *testing.T) {
	tr := testTrace()
	if got := tr.WarmSplit(0.25); got != 1 {
		t.Errorf("WarmSplit(0.25) = %d, want 1", got)
	}
	if got := tr.WarmSplit(0); got != 0 {
		t.Errorf("WarmSplit(0) = %d, want 0", got)
	}
	if got := tr.WarmSplit(1.5); got != len(tr.Records) {
		t.Errorf("WarmSplit(1.5) = %d, want all", got)
	}
}

func TestMaxFileSizes(t *testing.T) {
	tr := testTrace()
	sizes := tr.MaxFileSizes()
	if sizes[1] != 1024 || sizes[2] != 2048 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestTotalBytes(t *testing.T) {
	tr := testTrace()
	r, w := tr.TotalBytes()
	if r != 512 || w != 3072 {
		t.Errorf("TotalBytes = %d, %d; want 512, 3072", r, w)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.BlockSize != tr.BlockSize {
		t.Errorf("header mismatch: %q/%v", got.Name, got.BlockSize)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Errorf("records mismatch:\n got %v\nwant %v", got.Records, tr.Records)
	}
}

// TestCodecRoundTripProperty round-trips randomized traces.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "prop", BlockSize: 512}
		now := units.Time(0)
		for i := 0; i < int(n); i++ {
			now += units.Time(rng.Intn(1000))
			op := Op(rng.Intn(3))
			size := units.Bytes(rng.Intn(4096))
			if op != Delete {
				size++ // reads/writes must be non-empty
			}
			tr.Records = append(tr.Records, Record{
				Time: now, Op: op,
				File:   uint32(rng.Intn(10)),
				Offset: units.Bytes(rng.Intn(8192)),
				Size:   size,
			})
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Records, tr.Records) || (len(got.Records) == 0 && len(tr.Records) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",                                   // no header
		"trace x\n",                          // malformed header
		"trace x blocksize=0\n",              // bad block size
		"trace x blocksize=512\n1 r\n",       // short record
		"trace x blocksize=512\nz r 1 0 1\n", // bad time
		"trace x blocksize=512\n1 q 1 0 1\n", // bad op
		"trace x blocksize=512\n2 r 1 0 1\n1 r 1 0 1\n", // unsorted
	}
	for i, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

func TestDecodeSkipsComments(t *testing.T) {
	in := "# hello\n\ntrace t blocksize=512\n# mid\n5 w 1 0 512\n"
	got, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 1 || got.Records[0].Op != Write {
		t.Errorf("records = %v", got.Records)
	}
}
