package trace

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mobilestorage/internal/units"
)

func TestLayoutPlace(t *testing.T) {
	l := NewLayout(512)
	a := l.Place(1, 0, 1000) // rounds to 1024
	b := l.Place(2, 0, 512)
	if a != 0 {
		t.Errorf("first placement at %d, want 0", a)
	}
	if b != 1024 {
		t.Errorf("second placement at %d, want 1024", b)
	}
	// Re-placing the same file is stable and offset-relative.
	if got := l.Place(1, 512, 1000); got != 512 {
		t.Errorf("Place(1, 512) = %d, want 512", got)
	}
	if l.HighWater() != 1536 {
		t.Errorf("HighWater = %d, want 1536", l.HighWater())
	}
}

func TestLayoutDeleteReuse(t *testing.T) {
	l := NewLayout(512)
	l.Place(1, 0, 1024)
	l.Place(2, 0, 1024)
	l.Delete(1)
	// A new file of the same size reuses the freed extent (first fit).
	if got := l.Place(3, 0, 1024); got != 0 {
		t.Errorf("reuse placement at %d, want 0", got)
	}
	if l.HighWater() != 2048 {
		t.Errorf("HighWater grew to %d after reuse", l.HighWater())
	}
	// Deleting an unknown file is a no-op.
	l.Delete(99)
}

func TestLayoutExtentDeleteRecreate(t *testing.T) {
	l := NewLayout(512)
	l.Place(1, 0, 2048)
	off, size, ok := l.Extent(1)
	if !ok || off != 0 || size != 2048 {
		t.Fatalf("Extent(1) = (%d, %d, %v), want (0, 2048, true)", off, size, ok)
	}
	l.Delete(1)
	if _, _, ok := l.Extent(1); ok {
		t.Fatal("Extent(1) still ok after Delete")
	}
	// Re-creating the same file ID allocates afresh: the freed extent is
	// first-fit reused, and Extent reports the new placement.
	l.Place(1, 0, 1024)
	off, size, ok = l.Extent(1)
	if !ok || off != 0 || size != 1024 {
		t.Fatalf("re-created Extent(1) = (%d, %d, %v), want (0, 1024, true)", off, size, ok)
	}
	// The tail of the original extent remains free for another file.
	if got := l.Place(2, 0, 1024); got != 1024 {
		t.Errorf("Place(2) = %d, want 1024 (tail of freed extent)", got)
	}
	if l.HighWater() != 2048 {
		t.Errorf("HighWater = %d, want 2048 (no growth across delete/re-create)", l.HighWater())
	}
}

func TestLayoutExtentUnknownFile(t *testing.T) {
	l := NewLayout(512)
	if _, _, ok := l.Extent(7); ok {
		t.Error("Extent of never-placed file reported ok")
	}
	l.Place(7, 0, 512)
	l.Delete(7)
	l.Delete(7) // double delete is a no-op
	if _, _, ok := l.Extent(7); ok {
		t.Error("Extent ok after double delete")
	}
}

func TestLayoutCoalesce(t *testing.T) {
	l := NewLayout(512)
	l.Place(1, 0, 512)
	l.Place(2, 0, 512)
	l.Place(3, 0, 512)
	// Free the middle then its neighbours; the extents must coalesce so a
	// large allocation fits in the freed space.
	l.Delete(2)
	l.Delete(1)
	l.Delete(3)
	if got := l.Place(4, 0, 1536); got != 0 {
		t.Errorf("coalesced placement at %d, want 0", got)
	}
}

func TestLayoutLiveBytes(t *testing.T) {
	l := NewLayout(512)
	l.Place(1, 0, 1024)
	l.Place(2, 0, 512)
	if got := l.LiveBytes(); got != 1536 {
		t.Errorf("LiveBytes = %d, want 1536", got)
	}
	l.Delete(1)
	if got := l.LiveBytes(); got != 512 {
		t.Errorf("LiveBytes after delete = %d, want 512", got)
	}
}

func TestLayoutPanicsBeyondHint(t *testing.T) {
	l := NewLayout(512)
	l.Place(1, 0, 512)
	defer func() {
		if recover() == nil {
			t.Error("access beyond hinted extent did not panic")
		}
	}()
	l.Place(1, 4096, 512)
}

// TestLayoutNoOverlap: under random place/delete sequences, no two live
// extents ever overlap and every extent is block-aligned.
func TestLayoutNoOverlap(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLayout(512)
		live := map[uint32]units.Bytes{} // file → hint
		for i := 0; i < int(steps); i++ {
			file := uint32(rng.Intn(16))
			if rng.Intn(3) == 0 {
				l.Delete(file)
				delete(live, file)
				continue
			}
			hint, ok := live[file]
			if !ok {
				hint = units.Bytes(rng.Intn(8192) + 1)
				live[file] = hint
			}
			l.Place(file, 0, hint)
		}
		// Collect extents and check pairwise disjointness.
		type ext struct{ off, size units.Bytes }
		var exts []ext
		for f := range live {
			off, size, ok := l.Extent(f)
			if !ok {
				return false
			}
			if off%512 != 0 || size%512 != 0 {
				return false
			}
			exts = append(exts, ext{off, size})
		}
		sort.Slice(exts, func(i, j int) bool { return exts[i].off < exts[j].off })
		for i := 1; i < len(exts); i++ {
			if exts[i-1].off+exts[i-1].size > exts[i].off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCharacterize(t *testing.T) {
	tr := &Trace{
		Name:      "char",
		BlockSize: 512,
		Records: []Record{
			{Time: 0, Op: Write, File: 1, Size: 1024},               // warm (20%→idx 0)
			{Time: 1 * units.Second, Op: Read, File: 1, Size: 512},  // measured
			{Time: 2 * units.Second, Op: Read, File: 1, Size: 1024}, // measured
			{Time: 4 * units.Second, Op: Write, File: 2, Size: 512}, // measured
			{Time: 5 * units.Second, Op: Delete, File: 2, Size: 512},
		},
	}
	c := Characterize(tr, 0.2)
	if c.Records != 4 {
		t.Fatalf("records = %d, want 4", c.Records)
	}
	if c.Deletes != 1 {
		t.Errorf("deletes = %d, want 1", c.Deletes)
	}
	// 2 reads, 1 write in the measured portion.
	if got := c.FractionReads; got < 0.66 || got > 0.67 {
		t.Errorf("fraction reads = %g", got)
	}
	// Reads: (1 + 2) blocks / 2 = 1.5.
	if c.MeanReadBlocks != 1.5 {
		t.Errorf("mean read blocks = %g, want 1.5", c.MeanReadBlocks)
	}
	if c.MeanWriteBlocks != 1 {
		t.Errorf("mean write blocks = %g, want 1", c.MeanWriteBlocks)
	}
	// Distinct: file1 blocks 0,1 + file2 block 0 = 3 × 0.5 KB.
	if c.DistinctKBytes != 1.5 {
		t.Errorf("distinct KB = %g, want 1.5", c.DistinctKBytes)
	}
	if c.Duration != 4*units.Second {
		t.Errorf("duration = %v, want 4s", c.Duration)
	}
	// Inter-arrival gaps 1,2,1 s → mean 4/3.
	if got := c.InterArrival.Mean(); got < 1.33 || got > 1.34 {
		t.Errorf("inter-arrival mean = %g", got)
	}
}

func TestCharacterizeEmpty(t *testing.T) {
	c := Characterize(&Trace{Name: "e", BlockSize: 512}, 0.1)
	if c.Records != 0 || c.DistinctKBytes != 0 {
		t.Errorf("empty characterize = %+v", c)
	}
}
