// Package plot is a zero-dependency SVG chart renderer for the paper's
// figure reproductions: energy vs. time (Fig. 2–3), response time and
// cleaning overhead vs. utilization (Fig. 4–5), wear distributions, and
// spin-state timelines.
//
// The renderer is deliberately small and deterministic rather than general:
// given the same Chart it emits byte-identical SVG on every call, on every
// platform, so rendered figures can be pinned by golden files and diffed
// across runs exactly like the simulator's NDJSON event streams. All float
// formatting goes through strconv with fixed precision, series render in
// slice order, and no map is ever iterated during rendering.
//
// Non-finite input never reaches the output: NaN/Inf points are dropped
// before layout, empty and single-point series render without dividing by
// a zero range, and a chart with no drawable points still renders a valid
// frame with a "no data" note. These properties are pinned by the package's
// property tests.
package plot

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Point is one sample in data space.
type Point struct {
	X float64
	Y float64
}

// Series is one named curve.
type Series struct {
	Name   string
	Points []Point
	// Step renders the series as a post-step line (the value holds until
	// the next point) — the right shape for histogram outlines and state
	// timelines. Default is a straight polyline.
	Step bool
}

// Chart is a renderable line/step chart. The zero value plus at least a
// title renders a sensible 720×405 figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the outer SVG dimensions in pixels; zero means
	// the 720×405 default.
	Width  int
	Height int
	// LogX / LogY switch an axis to log₁₀ scale. Points with a non-positive
	// coordinate on a log axis are dropped (energy and latency plots span
	// orders of magnitude; zero has no logarithm).
	LogX bool
	LogY bool
	// Series render in slice order; colors cycle through a fixed palette.
	Series []Series
}

// Default outer dimensions (16:9, wide enough for four-series legends).
const (
	defaultWidth  = 720
	defaultHeight = 405
)

// Fixed layout margins around the plot area.
const (
	marginLeft   = 64
	marginRight  = 20
	marginTop    = 34
	marginBottom = 48
)

// palette is the series color cycle (Okabe–Ito, colorblind-safe).
var palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7",
	"#e69f00", "#56b4e9", "#f0e442", "#000000",
}

// Render writes the chart as a standalone SVG document. The output is a
// pure function of the Chart value: byte-identical across calls.
func (c *Chart) Render(w io.Writer) error {
	b := &strings.Builder{}
	c.render(b)
	_, err := io.WriteString(w, b.String())
	return err
}

// SVG returns the rendered document as a string.
func (c *Chart) SVG() string {
	b := &strings.Builder{}
	c.render(b)
	return b.String()
}

// frame is the resolved geometry and scales for one render pass.
type frame struct {
	w, h           int     // outer dimensions
	x0, y0, x1, y1 float64 // plot-area pixel corners (x0<x1, y0<y1; y grows down)
	xmin, xmax     float64 // data range (log10-transformed when LogX)
	ymin, ymax     float64
	logX, logY     bool
	hasData        bool
}

func (c *Chart) render(b *strings.Builder) {
	f := c.layout()

	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		f.w, f.h, f.w, f.h)
	c.renderFrame(b, f)
	b.WriteString("</svg>\n")
}

// renderFrame draws everything inside the chart's own coordinate space —
// background, title, axes, series, legend — without the enclosing <svg>
// element, so Grid can embed the same bytes in a nested viewport.
func (c *Chart) renderFrame(b *strings.Builder, f frame) {
	fmt.Fprintf(b, `<rect x="0" y="0" width="%d" height="%d" fill="#ffffff"/>`+"\n", f.w, f.h)
	if c.Title != "" {
		fmt.Fprintf(b, `<text x="%s" y="20" font-size="14" font-weight="bold" text-anchor="middle">%s</text>`+"\n",
			px(float64(f.w)/2), esc(c.Title))
	}

	c.renderAxes(b, f)
	if f.hasData {
		c.renderSeries(b, f)
	} else {
		fmt.Fprintf(b, `<text x="%s" y="%s" font-size="12" fill="#888888" text-anchor="middle">no data</text>`+"\n",
			px((f.x0+f.x1)/2), px((f.y0+f.y1)/2))
	}
	c.renderLegend(b, f)
}

// layout computes the frame: pixel geometry plus the data range over every
// finite (and, on log axes, positive) point.
func (c *Chart) layout() frame {
	f := frame{w: c.Width, h: c.Height, logX: c.LogX, logY: c.LogY}
	if f.w <= 0 {
		f.w = defaultWidth
	}
	if f.h <= 0 {
		f.h = defaultHeight
	}
	f.x0, f.y0 = marginLeft, marginTop
	f.x1, f.y1 = float64(f.w-marginRight), float64(f.h-marginBottom)

	first := true
	for _, s := range c.Series {
		for _, p := range s.Points {
			x, y, ok := f.transform(p)
			if !ok {
				continue
			}
			if first {
				f.xmin, f.xmax, f.ymin, f.ymax = x, x, y, y
				first = false
				continue
			}
			f.xmin, f.xmax = math.Min(f.xmin, x), math.Max(f.xmax, x)
			f.ymin, f.ymax = math.Min(f.ymin, y), math.Max(f.ymax, y)
		}
	}
	f.hasData = !first
	if !f.hasData {
		// A stable placeholder range so the axes still render.
		f.xmin, f.xmax, f.ymin, f.ymax = 0, 1, 0, 1
	}
	// Degenerate (single-value) ranges expand symmetrically so the scale
	// below never divides by zero.
	if f.xmax == f.xmin {
		pad := rangePad(f.xmin)
		f.xmin, f.xmax = f.xmin-pad, f.xmax+pad
	}
	if f.ymax == f.ymin {
		pad := rangePad(f.ymin)
		f.ymin, f.ymax = f.ymin-pad, f.ymax+pad
	}
	return f
}

// rangePad is the half-width used to open up a zero-width data range.
func rangePad(v float64) float64 {
	if p := math.Abs(v) * 0.05; p > 0 {
		return p
	}
	return 1
}

// transform maps a data point into scale space (log10 on log axes),
// reporting false for points that cannot be drawn: non-finite coordinates,
// or non-positive values on a log axis.
func (f *frame) transform(p Point) (x, y float64, ok bool) {
	x, y = p.X, p.Y
	if f.logX {
		if x <= 0 {
			return 0, 0, false
		}
		x = math.Log10(x)
	}
	if f.logY {
		if y <= 0 {
			return 0, 0, false
		}
		y = math.Log10(y)
	}
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return 0, 0, false
	}
	return x, y, true
}

// sx / sy map scale space to pixels.
func (f *frame) sx(x float64) float64 {
	return f.x0 + (x-f.xmin)/(f.xmax-f.xmin)*(f.x1-f.x0)
}

func (f *frame) sy(y float64) float64 {
	return f.y1 - (y-f.ymin)/(f.ymax-f.ymin)*(f.y1-f.y0)
}

// renderAxes draws the plot frame, gridlines, tick marks and labels, and
// the axis titles.
func (c *Chart) renderAxes(b *strings.Builder, f frame) {
	fmt.Fprintf(b, `<rect x="%s" y="%s" width="%s" height="%s" fill="none" stroke="#333333"/>`+"\n",
		px(f.x0), px(f.y0), px(f.x1-f.x0), px(f.y1-f.y0))

	for _, t := range ticks(f.xmin, f.xmax, f.logX) {
		x := f.sx(t)
		fmt.Fprintf(b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#dddddd"/>`+"\n",
			px(x), px(f.y0), px(x), px(f.y1))
		fmt.Fprintf(b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#333333"/>`+"\n",
			px(x), px(f.y1), px(x), px(f.y1+4))
		fmt.Fprintf(b, `<text x="%s" y="%s" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(x), px(f.y1+16), esc(tickLabel(t, f.logX)))
	}
	for _, t := range ticks(f.ymin, f.ymax, f.logY) {
		y := f.sy(t)
		fmt.Fprintf(b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#dddddd"/>`+"\n",
			px(f.x0), px(y), px(f.x1), px(y))
		fmt.Fprintf(b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#333333"/>`+"\n",
			px(f.x0-4), px(y), px(f.x0), px(y))
		fmt.Fprintf(b, `<text x="%s" y="%s" font-size="10" text-anchor="end">%s</text>`+"\n",
			px(f.x0-7), px(y+3.5), esc(tickLabel(t, f.logY)))
	}

	if c.XLabel != "" {
		fmt.Fprintf(b, `<text x="%s" y="%s" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px((f.x0+f.x1)/2), px(float64(f.h)-10), esc(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(b, `<text x="14" y="%s" font-size="11" text-anchor="middle" transform="rotate(-90 14 %s)">%s</text>`+"\n",
			px((f.y0+f.y1)/2), px((f.y0+f.y1)/2), esc(c.YLabel))
	}
}

// renderSeries draws every series as one <path>.
func (c *Chart) renderSeries(b *strings.Builder, f frame) {
	for i, s := range c.Series {
		var d strings.Builder
		pen := false
		var lastX, lastY float64
		for _, p := range s.Points {
			x, y, ok := f.transform(p)
			if !ok {
				pen = false // break the line at undrawable points
				continue
			}
			cx, cy := f.sx(x), f.sy(y)
			if !pen {
				fmt.Fprintf(&d, "M%s %s", px(cx), px(cy))
				pen = true
			} else if s.Step {
				fmt.Fprintf(&d, "H%s V%s", px(cx), px(cy))
			} else {
				fmt.Fprintf(&d, "L%s %s", px(cx), px(cy))
			}
			lastX, lastY = cx, cy
		}
		if d.Len() == 0 {
			continue
		}
		color := palette[i%len(palette)]
		fmt.Fprintf(b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", d.String(), color)
		// A single drawable point has zero path length; mark it so it shows.
		if !strings.ContainsAny(d.String()[1:], "MLHV") {
			fmt.Fprintf(b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`+"\n", px(lastX), px(lastY), color)
		}
	}
}

// renderLegend draws one swatch+name row per named series in the top-left
// of the plot area.
func (c *Chart) renderLegend(b *strings.Builder, f frame) {
	row := 0
	for i, s := range c.Series {
		if s.Name == "" {
			continue
		}
		y := f.y0 + 14 + float64(row)*15
		fmt.Fprintf(b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="2"/>`+"\n",
			px(f.x0+8), px(y), px(f.x0+26), px(y), palette[i%len(palette)])
		fmt.Fprintf(b, `<text x="%s" y="%s" font-size="10">%s</text>`+"\n",
			px(f.x0+31), px(y+3.5), esc(s.Name))
		row++
	}
}

// ticks returns 4–8 tick positions covering [lo, hi] in scale space. Linear
// axes use a 1/2/5·10ᵏ step; log axes tick whole decades (and fall back to
// the linear rule in log space when the range spans less than a decade,
// which still yields round labels after exponentiation).
func ticks(lo, hi float64, log bool) []float64 {
	if log && hi-lo >= 1 {
		first := math.Ceil(lo - 1e-9)
		var out []float64
		step := math.Max(1, math.Round((hi-lo)/6))
		for t := first; t <= hi+1e-9; t += step {
			out = append(out, t)
		}
		return out
	}
	span := hi - lo
	step := niceStep(span / 5)
	first := math.Ceil(lo/step-1e-9) * step
	var out []float64
	for t := first; t <= hi+step*1e-9; t += step {
		// Snap near-zero accumulation error so labels read "0", not "1e-17".
		if math.Abs(t) < step*1e-6 {
			t = 0
		}
		out = append(out, t)
	}
	return out
}

// niceStep rounds v up to the nearest 1, 2, or 5 times a power of ten.
func niceStep(v float64) float64 {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	exp := math.Floor(math.Log10(v))
	base := math.Pow(10, exp)
	switch frac := v / base; {
	case frac <= 1:
		return base
	case frac <= 2:
		return 2 * base
	case frac <= 5:
		return 5 * base
	default:
		return 10 * base
	}
}

// tickLabel formats a tick value for display, undoing the log transform.
func tickLabel(t float64, log bool) string {
	if log {
		t = math.Pow(10, t)
	}
	return strconv.FormatFloat(t, 'g', 4, 64)
}

// px formats a pixel coordinate with two decimals — enough for sub-pixel
// placement, few enough to keep the output stable and compact.
func px(v float64) string {
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// esc escapes text content for XML and replaces characters the XML 1.0
// grammar forbids (control characters, stray surrogates) with U+FFFD, so a
// chart built from hostile series names still renders well-formed.
func esc(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		default:
			if r == 0x9 || r == 0xA || r == 0xD ||
				(r >= 0x20 && r <= 0xD7FF) || (r >= 0xE000 && r <= 0xFFFD) || r >= 0x10000 {
				b.WriteRune(r)
			} else {
				b.WriteRune('�')
			}
		}
	}
	return b.String()
}
