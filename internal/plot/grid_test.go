package plot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenGrid is the small-multiples figure pinned byte-for-byte: a 2×2
// metric-by-device family with per-panel scales (one log panel), an empty
// panel, and a shared title.
func goldenGrid() *Grid {
	return &Grid{
		Title: "latency / energy × device",
		Cols:  2,
		Cells: []Chart{
			{
				Title: "disk", XLabel: "utilization", YLabel: "ms",
				Series: []Series{
					{Name: "btree", Points: []Point{{0.4, 12.1}, {0.6, 12.3}, {0.8, 12.2}}},
					{Name: "lsm", Points: []Point{{0.4, 8.9}, {0.6, 9.1}, {0.8, 9.0}}},
				},
			},
			{
				Title: "flash card", XLabel: "utilization", YLabel: "ms", LogY: true,
				Series: []Series{
					{Name: "btree", Points: []Point{{0.4, 1.1}, {0.6, 2.7}, {0.8, 19.4}}},
					{Name: "lsm", Points: []Point{{0.4, 0.9}, {0.6, 1.3}, {0.8, 4.2}}},
				},
			},
			{
				Title: "flash disk", XLabel: "utilization", YLabel: "J",
				Series: []Series{
					{Name: "btree", Points: []Point{{0.4, 31}, {0.6, 33}, {0.8, 36}}},
				},
			},
			{Title: "hybrid", XLabel: "utilization", YLabel: "J"},
		},
	}
}

func TestGridGoldenSVG(t *testing.T) {
	got := goldenGrid().SVG()
	path := filepath.Join("testdata", "grid-small-multiples.svg")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("grid golden mismatch (regenerate with -update and review the diff)\n--- got\n%.600s", got)
	}
}

func TestGridWellFormedAndDeterministic(t *testing.T) {
	g := goldenGrid()
	first := g.SVG()
	wellFormed(t, first)
	for i := 0; i < 3; i++ {
		if g.SVG() != first {
			t.Fatal("grid render not byte-identical across calls")
		}
	}
	// Hostile title must be escaped in the outer document too.
	hostile := &Grid{Title: `<svg>&"x"</svg>`, Cells: []Chart{{Title: "a&b"}}}
	wellFormed(t, hostile.SVG())
}

// TestGridGeometry checks the outer dimensions and per-cell viewports
// follow the column/row layout.
func TestGridGeometry(t *testing.T) {
	g := goldenGrid()
	svg := g.SVG()
	if !strings.Contains(svg, `width="720" height="508"`) {
		t.Fatalf("outer dims wrong (want 2×360 wide, 28+2×240 tall):\n%.200s", svg)
	}
	for _, viewport := range []string{
		`<svg x="0" y="28" width="360" height="240"`,
		`<svg x="360" y="28" width="360" height="240"`,
		`<svg x="0" y="268" width="360" height="240"`,
		`<svg x="360" y="268" width="360" height="240"`,
	} {
		if !strings.Contains(svg, viewport) {
			t.Fatalf("missing cell viewport %q", viewport)
		}
	}
	// Cell Width/Height are overridden by grid geometry.
	forced := &Grid{Cols: 1, Cells: []Chart{{Width: 9999, Height: 9999}}}
	if out := forced.SVG(); !strings.Contains(out, `<svg x="0" y="0" width="360" height="240"`) {
		t.Fatalf("cell dims not forced to grid geometry:\n%.200s", out)
	}
	// Empty and zero-column grids still render a valid frame.
	empty := &Grid{}
	wellFormed(t, empty.SVG())
	if !strings.Contains(empty.SVG(), `width="360" height="240"`) {
		t.Fatalf("empty grid frame wrong:\n%.200s", empty.SVG())
	}
}

// TestGridEmbedsChartBytes checks a nested panel's content matches the
// standalone render of the same chart (minus the outer element) — the
// refactor contract that keeps single-chart goldens and grid panels in
// lockstep.
func TestGridEmbedsChartBytes(t *testing.T) {
	cell := goldenGrid().Cells[1]
	g := &Grid{Cols: 1, Cells: []Chart{cell}}

	standalone := cell
	standalone.Width, standalone.Height = defaultCellWidth, defaultCellHeight
	solo := standalone.SVG()
	// Strip the outer <svg ...> line and trailing </svg>.
	body := solo[strings.Index(solo, "\n")+1 : strings.LastIndex(solo, "</svg>")]

	if !strings.Contains(g.SVG(), body) {
		t.Fatal("grid panel bytes diverge from the standalone chart render")
	}
}
