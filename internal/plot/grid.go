package plot

import (
	"fmt"
	"io"
	"strings"
)

// Grid lays out charts as small multiples: a fixed column count, row-major
// cell order, one shared title. Each cell is a full Chart rendered into a
// nested <svg> viewport, so every panel keeps its own axes and scales —
// the right shape for "metric × device" figure families where absolute
// ranges differ by orders of magnitude between panels.
//
// Like Chart, rendering is deterministic: the same Grid value yields
// byte-identical SVG on every call, so grid figures golden-pin and diff
// exactly like single charts.
type Grid struct {
	Title string
	// Cols is the column count; zero means a single column.
	Cols int
	// CellWidth and CellHeight are per-panel pixel dimensions; zero means
	// the 360×240 default (half-scale panels keep a 12-cell grid readable).
	CellWidth  int
	CellHeight int
	// Cells render in row-major slice order. A cell's own Width/Height are
	// overridden by the grid's cell dimensions.
	Cells []Chart
}

// Default per-cell dimensions.
const (
	defaultCellWidth  = 360
	defaultCellHeight = 240
)

// gridTitleBand is the height reserved for a non-empty grid title.
const gridTitleBand = 28

// Render writes the grid as a standalone SVG document.
func (g *Grid) Render(w io.Writer) error {
	b := &strings.Builder{}
	g.render(b)
	_, err := io.WriteString(w, b.String())
	return err
}

// SVG returns the rendered document as a string.
func (g *Grid) SVG() string {
	b := &strings.Builder{}
	g.render(b)
	return b.String()
}

func (g *Grid) render(b *strings.Builder) {
	cols := g.Cols
	if cols <= 0 {
		cols = 1
	}
	cw, ch := g.CellWidth, g.CellHeight
	if cw <= 0 {
		cw = defaultCellWidth
	}
	if ch <= 0 {
		ch = defaultCellHeight
	}
	rows := (len(g.Cells) + cols - 1) / cols
	top := 0
	if g.Title != "" {
		top = gridTitleBand
	}
	w := cols * cw
	if w == 0 {
		w = cw
	}
	h := top + rows*ch
	if rows == 0 {
		h = top + ch // an empty grid still renders a valid frame
	}

	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		w, h, w, h)
	fmt.Fprintf(b, `<rect x="0" y="0" width="%d" height="%d" fill="#ffffff"/>`+"\n", w, h)
	if g.Title != "" {
		fmt.Fprintf(b, `<text x="%s" y="19" font-size="15" font-weight="bold" text-anchor="middle">%s</text>`+"\n",
			px(float64(w)/2), esc(g.Title))
	}
	for i := range g.Cells {
		c := g.Cells[i] // copy: the grid's cell geometry must win
		c.Width, c.Height = cw, ch
		f := c.layout()
		x := (i % cols) * cw
		y := top + (i/cols)*ch
		fmt.Fprintf(b, `<svg x="%d" y="%d" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
			x, y, cw, ch, cw, ch)
		c.renderFrame(b, f)
		b.WriteString("</svg>\n")
	}
	b.WriteString("</svg>\n")
}
