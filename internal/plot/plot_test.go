package plot

import (
	"bytes"
	"encoding/xml"
	"flag"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata")

// goldenCharts is the fixed set of figures pinned byte-for-byte. Each
// exercises a distinct renderer feature: multi-series lines, step series,
// log scales, degenerate ranges, and the empty chart.
func goldenCharts() map[string]*Chart {
	return map[string]*Chart{
		"energy-lines": {
			Title: "Cumulative energy", XLabel: "simulated time (s)", YLabel: "energy (J)",
			Series: []Series{
				{Name: "total", Points: []Point{{0, 0}, {60, 21.5}, {120, 44.2}, {180, 70.9}, {240, 96.1}}},
				{Name: "storage", Points: []Point{{0, 0}, {60, 9.1}, {120, 17.6}, {180, 30.3}, {240, 41.8}}},
				{Name: "dram", Points: []Point{{0, 0}, {60, 7.3}, {120, 14.6}, {180, 21.9}, {240, 29.2}}},
			},
		},
		"wear-step": {
			Title: "Erase counts", XLabel: "segment", YLabel: "erases",
			Series: []Series{
				{Name: "erases", Step: true, Points: []Point{{0, 12}, {1, 14}, {2, 11}, {3, 19}, {4, 13}, {5, 12}}},
			},
		},
		"latency-logx": {
			Title: "Service time distribution", XLabel: "latency (ms)", YLabel: "count",
			LogX: true,
			Series: []Series{
				{Name: "sram.flush", Step: true, Points: []Point{{0.1, 3}, {1, 41}, {10, 18}, {100, 2}}},
				{Name: "flashcard.clean", Step: true, Points: []Point{{10, 7}, {100, 29}, {1000, 4}}},
			},
		},
		"energy-logy": {
			Title: "Energy by threshold", XLabel: "spin-down threshold (s)", YLabel: "energy (J)",
			LogY: true,
			Series: []Series{
				{Name: "disk", Points: []Point{{1, 900}, {5, 310}, {30, 120}, {300, 85}}},
				{Name: "flash", Points: []Point{{1, 12}, {5, 12}, {30, 12.5}, {300, 13}}},
			},
		},
		"single-point": {
			Title: "One sample", XLabel: "x", YLabel: "y",
			Series: []Series{{Name: "lonely", Points: []Point{{3, 7}}}},
		},
		"empty": {
			Title: "Nothing to plot", XLabel: "x", YLabel: "y",
		},
	}
}

func TestGoldenSVG(t *testing.T) {
	for name, c := range goldenCharts() {
		t.Run(name, func(t *testing.T) {
			got := c.SVG()
			path := filepath.Join("testdata", name+".svg")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s (regenerate with -update and review the diff)\n--- got\n%.600s", name, got)
			}
		})
	}
}

// wellFormed parses the document with encoding/xml and fails on any
// tokenizer error — the property every rendered SVG must satisfy.
func wellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		if _, err := dec.Token(); err == io.EOF {
			return
		} else if err != nil {
			t.Fatalf("not well-formed XML: %v\n%.400s", err, doc)
		}
	}
}

func TestRenderedSVGIsWellFormedXML(t *testing.T) {
	for name, c := range goldenCharts() {
		t.Run(name, func(t *testing.T) {
			wellFormed(t, c.SVG())
		})
	}
	// Hostile text content must be escaped, not break the document.
	hostile := &Chart{
		Title: `<script>&"boom"</script>`, XLabel: "a<b", YLabel: `"q&a"`,
		Series: []Series{
			{Name: "x > y & z", Points: []Point{{1, 1}, {2, 2}}},
			{Name: "ctrl\x00\x01chars\x7f￾", Points: []Point{{1, 2}, {2, 3}}},
			{Name: "bad utf8 \xff\xfe", Points: []Point{{1, 3}, {2, 4}}},
		},
	}
	wellFormed(t, hostile.SVG())
	if strings.Contains(hostile.SVG(), "<script>") {
		t.Error("unescaped text content in output")
	}
}

func TestRenderByteIdenticalAcrossRuns(t *testing.T) {
	for name, c := range goldenCharts() {
		first := c.SVG()
		for i := 0; i < 3; i++ {
			if got := c.SVG(); got != first {
				t.Errorf("%s: render %d differs from first render", name, i+2)
			}
		}
		var buf bytes.Buffer
		if err := c.Render(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.String() != first {
			t.Errorf("%s: Render differs from SVG()", name)
		}
	}
}

// Series identity (not insertion history) determines the output: building
// the same chart by inserting series in shuffled order, then restoring the
// canonical order, must render byte-identically. This is the map-order
// trap the obsreport builders guard against upstream.
func TestRenderIndependentOfInsertionOrder(t *testing.T) {
	base := goldenCharts()["energy-lines"]
	want := base.SVG()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(base.Series))
		shuffled := make([]Series, len(base.Series))
		for i, j := range perm {
			shuffled[i] = base.Series[j]
		}
		// Restore canonical order the way callers do: sort by name via the
		// inverse permutation.
		restored := make([]Series, len(base.Series))
		for i, j := range perm {
			restored[j] = shuffled[i]
		}
		c := &Chart{Title: base.Title, XLabel: base.XLabel, YLabel: base.YLabel, Series: restored}
		if got := c.SVG(); got != want {
			t.Fatalf("trial %d: shuffled-then-restored chart renders differently", trial)
		}
	}
}

// No rendered coordinate may ever be NaN or Inf, whatever the input —
// including empty series, single points, constant series, and non-finite
// or non-positive (log-axis) samples.
func TestNeverEmitsNonFiniteCoordinates(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := map[string]*Chart{
		"empty-chart":    {},
		"empty-series":   {Series: []Series{{Name: "e"}}},
		"single":         {Series: []Series{{Points: []Point{{5, 5}}}}},
		"constant":       {Series: []Series{{Points: []Point{{0, 3}, {1, 3}, {2, 3}}}}},
		"all-nan":        {Series: []Series{{Points: []Point{{nan, 1}, {1, nan}, {nan, nan}}}}},
		"all-inf":        {Series: []Series{{Points: []Point{{inf, 1}, {1, -inf}}}}},
		"mixed":          {Series: []Series{{Points: []Point{{1, 1}, {nan, 2}, {3, 3}, {inf, 4}, {5, 5}}}}},
		"log-nonpos":     {LogX: true, LogY: true, Series: []Series{{Points: []Point{{0, 1}, {-3, 5}, {2, 0}, {4, -2}}}}},
		"log-one-usable": {LogY: true, Series: []Series{{Points: []Point{{1, 0}, {2, 10}}}}},
		"zero-only":      {Series: []Series{{Points: []Point{{0, 0}}}}},
		"huge-range":     {Series: []Series{{Points: []Point{{-1e300, -1e300}, {1e300, 1e300}}}}},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			out := c.SVG()
			for _, bad := range []string{"NaN", "Inf", "inf", "nan"} {
				if strings.Contains(out, bad) {
					t.Fatalf("output contains %q:\n%.600s", bad, out)
				}
			}
			wellFormed(t, out)
			if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
				t.Error("output is not a complete SVG document")
			}
		})
	}
}

func TestLegendAndAxisContent(t *testing.T) {
	c := goldenCharts()["energy-lines"]
	out := c.SVG()
	for _, want := range []string{"Cumulative energy", "simulated time (s)", "energy (J)", "total", "storage", "dram"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Tick labels from the data range must be present (x spans 0..240).
	if !strings.Contains(out, ">0<") || !strings.Contains(out, ">200<") {
		t.Error("expected x tick labels 0 and 200")
	}
}

func TestLogTicksAreDecades(t *testing.T) {
	c := &Chart{LogX: true, Series: []Series{{Points: []Point{{0.1, 1}, {1000, 2}}}}}
	out := c.SVG()
	for _, want := range []string{">0.1<", ">1<", ">10<", ">100<", ">1000<"} {
		if !strings.Contains(out, want) {
			t.Errorf("log axis missing decade label %s", want)
		}
	}
}
