package sram

import (
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/units"
)

// TestRecoveryReplaysBufferedWrites pins the battery-backed guarantee: dirty
// blocks survive a power failure and are replayed to the device during
// recovery, leaving the buffer empty — no acknowledged write is lost.
func TestRecoveryReplaysBufferedWrites(t *testing.T) {
	in := fault.NewInjector(&fault.Plan{PowerFailAtUs: []int64{1}}, 1, nil)
	inner := newFake(10 * units.Millisecond)
	b, err := New(device.NECSRAM(), 32*units.KB, units.KB, inner, WithFaults(in))
	if err != nil {
		t.Fatal(err)
	}
	// Three small writes, all absorbed by the buffer (below the high-water
	// mark), so the device has seen nothing.
	for i := units.Bytes(0); i < 3; i++ {
		b.Access(wr(units.Time(i), i*units.KB, units.KB))
	}
	if len(inner.requests) != 0 {
		t.Fatalf("device saw %d requests before the drain", len(inner.requests))
	}
	if b.BufferedBytes() != 3*units.KB {
		t.Fatalf("buffered %v, want 3 KB", b.BufferedBytes())
	}

	at := units.Second
	b.Crash(at)
	if b.BufferedBytes() != 3*units.KB {
		t.Error("battery-backed buffer lost data at power failure")
	}
	done := b.Recover(at)
	if done <= at {
		t.Error("replay took no time")
	}
	if b.BufferedBytes() != 0 {
		t.Errorf("buffer holds %v after recovery", b.BufferedBytes())
	}
	if len(inner.requests) == 0 {
		t.Fatal("replay never reached the device")
	}
	rep := in.Report()
	if rep.ReplayedBlocks != 3 {
		t.Errorf("replayed blocks = %d, want 3", rep.ReplayedBlocks)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("violations: %v", rep.Violations)
	}
}

// TestCrashClampsInFlightDrain verifies that a drain in flight at the crash
// loses only its timing: the drained blocks were already applied to the
// device's model state, so nothing needs replaying twice.
func TestCrashClampsInFlightDrain(t *testing.T) {
	in := fault.NewInjector(&fault.Plan{PowerFailAtUs: []int64{1}}, 1, nil)
	inner := newFake(100 * units.Millisecond)
	b, err := New(device.NECSRAM(), 8*units.KB, units.KB, inner, WithFaults(in))
	if err != nil {
		t.Fatal(err)
	}
	// Fill past the high-water mark to kick off a background drain.
	var at units.Time
	for i := units.Bytes(0); i < 6; i++ {
		at = b.Access(wr(at, i*units.KB, units.KB))
	}
	if b.drainDoneAt <= at {
		t.Fatal("test setup: no drain in flight")
	}
	crashAt := at + units.Millisecond
	b.Crash(crashAt)
	if b.drainDoneAt > crashAt {
		t.Error("drain timing survived the crash")
	}
	done := b.Recover(crashAt)
	if b.BufferedBytes() != 0 {
		t.Errorf("buffer holds %v after recovery", b.BufferedBytes())
	}
	if done < crashAt {
		t.Error("recovery completed before the crash")
	}
	if v := in.Report().Violations; len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
